package nylon_test

import (
	"fmt"
	"time"

	nylon "repro"
)

// A complete in-process overlay: two nodes on the in-memory switch, one of
// them behind a simulated port-restricted NAT.
func ExampleNewNode() {
	sw := nylon.NewSwitch(time.Millisecond)

	pubTr := sw.Attach()
	pub, err := nylon.NewNode(nylon.Config{
		ID:        1,
		Transport: pubTr,
		Advertise: pubTr.LocalAddr(),
		Period:    20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}

	natTr, mapped := sw.AttachNAT(nylon.PortRestrictedCone, 90*time.Second)
	natted, err := nylon.NewNode(nylon.Config{
		ID:        2,
		Transport: natTr,
		Advertise: mapped,
		NAT:       nylon.PortRestrictedCone,
		Bootstrap: []nylon.Descriptor{pub.Self()},
		Period:    20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}

	pub.Start()
	natted.Start()
	defer pub.Close()
	defer natted.Close()

	time.Sleep(200 * time.Millisecond)
	fmt.Println(len(natted.Sample(1)) > 0)
	// Output: true
}

// Joining a live overlay through an introducer: the handshake discovers the
// caller's NAT class and mapping, and returns pre-punched seeds.
func ExampleJoin() {
	sw := nylon.NewSwitch(time.Millisecond)
	primary := sw.Attach()
	defer primary.Close()
	in := nylon.NewIntroducer(nylon.IntroducerConfig{
		Primary: primary,
		AltPort: sw.AttachSibling(primary, 3479),
		AltIP:   sw.Attach(),
	})
	defer in.Close()

	tr, _ := sw.AttachNAT(nylon.RestrictedCone, 90*time.Second)
	defer tr.Close()
	// The timeout bounds each classification probe; blocked probes (which
	// are how restrictive filtering is detected) cost one timeout each.
	res, err := nylon.Join(tr, primary.LocalAddr(), 42, 200*time.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Class)
	// Output: rc
}

func ExampleParseEndpoint() {
	ep, err := nylon.ParseEndpoint("192.0.2.10:9000")
	if err != nil {
		panic(err)
	}
	fmt.Println(ep)
	// Output: 192.0.2.10:9000
}

func ExampleParseNATClass() {
	class, err := nylon.ParseNATClass("prc")
	if err != nil {
		panic(err)
	}
	fmt.Println(class.Natted())
	// Output: true
}
