package nylon

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/boot"
	"repro/internal/core"
	"repro/internal/wire"
)

// Config configures a Node. ID, Transport and Advertise are required;
// everything else has paper defaults.
type Config struct {
	// ID is the node's unique identity. Callers assign it (e.g. from an
	// introducer or a collision-resistant random draw).
	ID NodeID
	// Transport carries the node's datagrams. The node takes ownership
	// and closes it on Close.
	Transport Transport
	// Advertise is the endpoint other peers should contact: the node's
	// own address if public, or its NAT mapping as discovered through an
	// introducer.
	Advertise Endpoint
	// NAT is the node's connectivity class as discovered at join time
	// (e.g. via STUN-style probing). Defaults to Public.
	NAT NATClass
	// Bootstrap seeds the view; for natted seeds the introducer must have
	// opened the corresponding holes.
	Bootstrap []Descriptor

	// ViewSize is the partial view size. Default 15 (paper §5).
	ViewSize int
	// Period is the shuffling period. Default 5 s (paper §5).
	Period time.Duration
	// HoleTimeout is the assumed NAT rule lifetime. Default 90 s.
	HoleTimeout time.Duration
	// LatencyBound is the assumed one-way latency upper bound used to
	// discount relayed route TTLs. Default 500 ms.
	LatencyBound time.Duration
	// Selection and Merge choose the gossip policies. Defaults: rand,
	// healer — the basis configuration of the paper's Fig. 6.
	Selection Selection
	Merge     Merge
	// Seed makes the node's randomness reproducible; 0 derives one from
	// the ID.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ViewSize == 0 {
		c.ViewSize = 15
	}
	if c.Period == 0 {
		c.Period = 5 * time.Second
	}
	if c.HoleTimeout == 0 {
		c.HoleTimeout = 90 * time.Second
	}
	if c.LatencyBound == 0 {
		c.LatencyBound = 500 * time.Millisecond
	}
	if c.Merge == 0 {
		c.Merge = MergeHealer
	}
	if c.Seed == 0 {
		c.Seed = int64(c.ID)*2654435761 + 1
	}
	return c
}

// Stats is a snapshot of the node's protocol counters (see core.Stats for
// field semantics).
type Stats = core.Stats

// Node runs the Nylon protocol in real time over a Transport. Create with
// NewNode, then Start. All methods are safe for concurrent use.
type Node struct {
	cfg    Config
	engine *core.Nylon
	start  time.Time

	// requests serializes access to the engine with the run loop.
	requests chan func()
	done     chan struct{}
	wg       sync.WaitGroup

	// mu guards engine access before Start, when no run loop exists yet.
	mu      sync.Mutex
	started bool

	startOnce sync.Once
	closeOnce sync.Once
}

// NewNode builds a node. The node is inert until Start.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.ID.IsNil() {
		return nil, errors.New("nylon: Config.ID is required")
	}
	if cfg.Transport == nil {
		return nil, errors.New("nylon: Config.Transport is required")
	}
	if cfg.Advertise.IsZero() {
		return nil, errors.New("nylon: Config.Advertise is required")
	}
	if !cfg.NAT.Valid() {
		return nil, fmt.Errorf("nylon: invalid NAT class %v", cfg.NAT)
	}
	self := Descriptor{ID: cfg.ID, Addr: cfg.Advertise, Class: cfg.NAT}
	engine := core.NewNylon(core.Config{
		Self:         self,
		ViewSize:     cfg.ViewSize,
		Selection:    cfg.Selection,
		Merge:        cfg.Merge,
		PushPull:     true,
		HoleTimeout:  cfg.HoleTimeout.Milliseconds(),
		LatencyBound: cfg.LatencyBound.Milliseconds(),
		RNG:          rand.New(rand.NewSource(cfg.Seed)),
		// Deployed nodes must shed departed peers: evict targets that
		// never answer.
		EvictUnanswered: true,
	})
	n := &Node{
		cfg:      cfg,
		engine:   engine,
		requests: make(chan func(), 16),
		done:     make(chan struct{}),
	}
	return n, nil
}

// Start begins gossiping. It is idempotent.
func (n *Node) Start() {
	n.startOnce.Do(func() {
		n.mu.Lock()
		n.start = time.Now()
		n.engine.Bootstrap(0, n.cfg.Bootstrap)
		n.started = true
		n.mu.Unlock()
		n.wg.Add(1)
		go n.run()
	})
}

func (n *Node) now() int64 { return time.Since(n.start).Milliseconds() }

// run is the single goroutine owning the engine.
func (n *Node) run() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-n.done:
			return
		case <-ticker.C:
			n.dispatch(n.engine.Tick(n.now()))
		case pkt, ok := <-n.cfg.Transport.Packets():
			if !ok {
				return
			}
			if boot.IsBoot(pkt.Data) {
				n.handleBoot(pkt.Data)
				continue
			}
			msg, err := wire.Unmarshal(pkt.Data)
			if err != nil {
				continue // hostile or corrupt datagram
			}
			n.dispatch(n.engine.Receive(n.now(), pkt.From, msg))
		case req := <-n.requests:
			req()
		}
	}
}

// handleBoot processes introducer-protocol datagrams arriving on the shared
// socket. A Punch message means a new peer joined and the introducer (or the
// joiner itself) asks us to open our NAT toward it: we answer with a punch of
// our own — the outbound datagram that installs the filtering rule — and
// adopt the joiner into the view so the overlay absorbs newcomers even
// before they gossip.
func (n *Node) handleBoot(data []byte) {
	m, err := boot.Unmarshal(data)
	if err != nil || m.Kind != boot.KindPunch {
		return
	}
	joiner := m.Self
	if joiner.ID.IsNil() || joiner.ID == n.cfg.ID || joiner.Addr.IsZero() {
		return
	}
	// Reply only on first contact, so two nodes punching each other do not
	// bounce punches forever.
	if !n.engine.View().Contains(joiner.ID) {
		reply := &boot.Message{Kind: boot.KindPunch, Self: n.engine.Self()}
		if out, err := reply.Marshal(); err == nil {
			_ = n.cfg.Transport.Send(joiner.Addr, out)
		}
	}
	n.engine.Bootstrap(n.now(), []Descriptor{joiner})
}

func (n *Node) dispatch(sends []core.Send) {
	for _, s := range sends {
		data, err := s.Msg.Marshal()
		if err != nil {
			continue
		}
		// Best effort, like UDP itself.
		_ = n.cfg.Transport.Send(s.To, data)
	}
}

// inLoop runs fn with exclusive engine access: on the run-loop goroutine
// once started, directly under the mutex before that. After Close, fn runs
// directly too — the loop is gone and nothing else touches the engine.
func (n *Node) inLoop(fn func()) bool {
	n.mu.Lock()
	started := n.started
	n.mu.Unlock()
	if !started {
		n.mu.Lock()
		defer n.mu.Unlock()
		fn()
		return true
	}
	doneCh := make(chan struct{})
	select {
	case n.requests <- func() { fn(); close(doneCh) }:
	case <-n.done:
		n.wg.Wait()
		fn()
		return true
	}
	select {
	case <-doneCh:
		return true
	case <-n.done:
		n.wg.Wait()
		fn()
		return true
	}
}

// Self returns the node's own descriptor.
func (n *Node) Self() Descriptor { return n.engine.Self() }

// View returns a snapshot of the current partial view.
func (n *Node) View() []Descriptor {
	var out []Descriptor
	n.inLoop(func() { out = n.engine.View().Entries() })
	return out
}

// Sample returns up to k peers drawn uniformly at random from the current
// view — the "peer sampling service" interface.
func (n *Node) Sample(k int) []Descriptor {
	entries := n.View()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	rng.Shuffle(len(entries), func(i, j int) { entries[i], entries[j] = entries[j], entries[i] })
	if k < len(entries) {
		entries = entries[:k]
	}
	return entries
}

// Stats returns a snapshot of the protocol counters.
func (n *Node) Stats() Stats {
	var out Stats
	n.inLoop(func() { out = *n.engine.Stats() })
	return out
}

// Close stops the node and closes its transport. It is idempotent.
func (n *Node) Close() error {
	var err error
	n.closeOnce.Do(func() {
		close(n.done)
		err = n.cfg.Transport.Close()
		n.wg.Wait()
	})
	return err
}
