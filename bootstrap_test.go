package nylon

import (
	"testing"
	"time"
)

// TestJoinThenGossip is the full deployable flow: an introducer, then two
// natted peers that join (getting classified, mapped, seeded and punched) and
// gossip with each other directly through their NATs.
func TestJoinThenGossip(t *testing.T) {
	sw := NewSwitch(time.Millisecond)
	primary := sw.Attach()
	altPort := sw.AttachSibling(primary, 3479)
	altIP := sw.Attach()
	in := NewIntroducer(IntroducerConfig{Primary: primary, AltPort: altPort, AltIP: altIP})
	defer func() {
		in.Close()
		primary.Close()
		altPort.Close()
		altIP.Close()
	}()

	var nodes []*Node
	for i := 1; i <= 2; i++ {
		tr, _ := sw.AttachNAT(PortRestrictedCone, 90*time.Second)
		res, err := Join(tr, primary.LocalAddr(), NodeID(i), 300*time.Millisecond)
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if res.Class != PortRestrictedCone {
			t.Fatalf("join %d classified %v, want prc", i, res.Class)
		}
		node, err := NewNode(Config{
			ID: NodeID(i), Transport: tr,
			Advertise: res.Mapped, NAT: res.Class, Bootstrap: res.Seeds,
			ViewSize: 4, Period: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		node.Start()
		nodes = append(nodes, node)
	}
	defer func() {
		for _, n := range nodes {
			n.Close()
		}
	}()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		// Both natted peers must complete shuffles with each other: the
		// second got the first as a seed; the first must adopt the
		// second via the introducer's punch.
		if nodes[0].Stats().ShufflesCompleted > 0 && nodes[1].Stats().ShufflesCompleted > 0 {
			found := false
			for _, d := range nodes[0].View() {
				if d.ID == 2 {
					found = true
				}
			}
			if found {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("natted joiners never gossiped: n1=%+v view=%v n2=%+v",
		nodes[0].Stats(), nodes[0].View(), nodes[1].Stats())
}
