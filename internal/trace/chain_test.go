package trace

import (
	"testing"

	"repro/internal/ident"
)

// hop builds one chain event at the given hop depth.
func hop(at int64, seq uint64, op Op, origin ident.NodeID, oseq uint32, h uint8, path uint64) Event {
	return Event{At: at, Actor: uint64(origin), Seq: seq, Op: op,
		Src: origin, OriginSeq: oseq, Hop: h, Path: path}
}

func TestFollowAndVerifyChain(t *testing.T) {
	const origin = ident.NodeID(7)
	root := PathRoot(origin, 1)
	p1 := PathExtend(root, 9)
	chain := []Event{
		hop(10, 1, OpSend, origin, 1, 0, root),
		hop(60, 2, OpDeliver, origin, 1, 0, root),
		hop(60, 2, OpSend, origin, 1, 1, p1),
		hop(110, 3, OpDeliver, origin, 1, 1, p1),
	}
	noise := []Event{
		hop(5, 1, OpSend, 3, 1, 0, PathRoot(3, 1)),
		hop(70, 4, OpSend, origin, 2, 0, PathRoot(origin, 2)),
	}
	all := append(append([]Event{}, noise[0]), chain...)
	all = append(all, noise[1])

	got := Follow(all, ChainID{Origin: origin, Seq: 1})
	if len(got) != len(chain) {
		t.Fatalf("Follow returned %d events, want %d", len(got), len(chain))
	}
	head, err := VerifyChain(got)
	if err != nil || !head {
		t.Errorf("VerifyChain: head=%v err=%v", head, err)
	}

	ids, byID := Chains(all)
	if len(ids) != 3 || len(byID[ChainID{Origin: origin, Seq: 1}]) != 4 {
		t.Errorf("Chains: %d ids (%v)", len(ids), ids)
	}
}

func TestVerifyChainRejects(t *testing.T) {
	const origin = ident.NodeID(5)
	root := PathRoot(origin, 1)
	if _, err := VerifyChain(nil); err == nil {
		t.Error("empty chain verified")
	}
	// Decreasing hop.
	bad := []Event{
		hop(1, 1, OpSend, origin, 1, 1, PathExtend(root, 2)),
		hop(2, 2, OpSend, origin, 1, 0, root),
	}
	if _, err := VerifyChain(bad); err == nil {
		t.Error("hop regression verified")
	}
	// Corrupt head path.
	bad = []Event{hop(1, 1, OpSend, origin, 1, 0, root^1)}
	if _, err := VerifyChain(bad); err == nil {
		t.Error("corrupt head path verified")
	}
	// Truncated chain: no head, but still consistent.
	trunc := []Event{hop(9, 4, OpDeliver, origin, 1, 2, PathExtend(PathExtend(root, 2), 3))}
	head, err := VerifyChain(trunc)
	if err != nil || head {
		t.Errorf("truncated chain: head=%v err=%v", head, err)
	}
}

func TestPathHashProperties(t *testing.T) {
	if PathRoot(1, 1) == PathRoot(1, 2) || PathRoot(1, 1) == PathRoot(2, 1) {
		t.Error("PathRoot collides on trivial inputs")
	}
	p := PathRoot(1, 1)
	if PathExtend(p, 3) == PathExtend(p, 4) || PathExtend(p, 3) == p {
		t.Error("PathExtend collides on trivial inputs")
	}
	// Pin the hash across platforms: determinism contracts elsewhere
	// compare traces byte-for-byte.
	if got := PathRoot(7, 1); got != PathRoot(7, 1) {
		t.Errorf("PathRoot not deterministic: %#x", got)
	}
}

// TestDropTaxonomyTable pins the single-source-of-truth property: every
// cause maps to a distinct op, metric and stat field, ops round-trip
// through DropCauseOf and ParseOp, and non-drop ops stay outside.
func TestDropTaxonomyTable(t *testing.T) {
	ops := map[Op]bool{}
	metrics := map[string]bool{}
	fields := map[string]bool{}
	for i, d := range DropCauses {
		if d.Cause != DropCause(i) {
			t.Errorf("DropCauses[%d].Cause = %d", i, d.Cause)
		}
		if ops[d.Op] || metrics[d.Metric] || fields[d.StatField] {
			t.Errorf("duplicate taxonomy entry: %+v", d)
		}
		ops[d.Op], metrics[d.Metric], fields[d.StatField] = true, true, true
		if c, ok := DropCauseOf(d.Op); !ok || c != d.Cause {
			t.Errorf("DropCauseOf(%v) = %v,%v", d.Op, c, ok)
		}
		if !d.Op.IsDrop() {
			t.Errorf("%v not IsDrop", d.Op)
		}
		if d.Op.String() != d.OpName {
			t.Errorf("op %v renders %q, table says %q", d.Op, d.Op.String(), d.OpName)
		}
		if op, err := ParseOp(d.OpName); err != nil || op != d.Op {
			t.Errorf("ParseOp(%q) = %v,%v", d.OpName, op, err)
		}
	}
	for _, op := range []Op{OpSend, OpDeliver} {
		if op.IsDrop() {
			t.Errorf("%v claims to be a drop", op)
		}
		if p, err := ParseOp(op.String()); err != nil || p != op {
			t.Errorf("ParseOp(%q) = %v,%v", op.String(), p, err)
		}
	}
}
