package trace

import (
	"fmt"

	"repro/internal/ident"
)

// Causal stamps. The simulated network stamps every datagram at send time:
// a message leaving its origin (hop 0) gets a fresh (origin, OriginSeq)
// chain identity and a PathRoot hash; every relay folds its own id into the
// hash with PathExtend. The stamp travels in in-memory message fields (not
// on the wire — see internal/wire), so a delivered or dropped datagram's
// event names both the chain it belongs to and the exact relay path it
// took, and Follow can reassemble the chain from a merged trace.

// PathRoot hashes a chain identity into the initial path value.
func PathRoot(origin ident.NodeID, seq uint32) uint64 {
	return mix(mix(0x9e3779b97f4a7c15, uint64(origin)), uint64(seq))
}

// PathExtend folds one relay hop into a path hash.
func PathExtend(path uint64, relay ident.NodeID) uint64 {
	return mix(path, uint64(relay))
}

// mix is splitmix64's finalizer over h^v — cheap, deterministic, and
// platform-independent.
func mix(h, v uint64) uint64 {
	z := h ^ v
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// ChainID names one causal forwarding chain: all transmissions descended
// from one origin send.
type ChainID struct {
	Origin ident.NodeID `json:"origin"`
	Seq    uint32       `json:"seq"`
}

// String implements fmt.Stringer.
func (c ChainID) String() string { return fmt.Sprintf("%v:%d", c.Origin, c.Seq) }

// Chain returns the event's chain identity.
func (e Event) Chain() ChainID { return ChainID{Origin: e.Src, Seq: e.OriginSeq} }

// Follow extracts the events of one chain from a merged trace, preserving
// order. Events predating the stamp (OriginSeq 0 with a different origin)
// never match a real chain because origin counters start at 1.
func Follow(events []Event, id ChainID) []Event {
	var out []Event
	for _, e := range events {
		if e.Src == id.Origin && e.OriginSeq == id.Seq {
			out = append(out, e)
		}
	}
	return out
}

// Chains groups a merged trace by chain identity, preserving event order
// within each chain and returning chain ids in first-appearance order.
func Chains(events []Event) ([]ChainID, map[ChainID][]Event) {
	var order []ChainID
	byID := make(map[ChainID][]Event)
	for _, e := range events {
		id := e.Chain()
		if _, ok := byID[id]; !ok {
			order = append(order, id)
		}
		byID[id] = append(byID[id], e)
	}
	return order, byID
}

// VerifyChain checks a chain's internal consistency: events must be in
// global key order, hop indices must never decrease, and a surviving head
// (the origin's hop-0 send) must carry exactly the PathRoot hash of its
// chain identity. The chain may be truncated (ring eviction can lose the
// head); headSurvived reports whether the true head is still present.
func VerifyChain(chain []Event) (headSurvived bool, err error) {
	if len(chain) == 0 {
		return false, fmt.Errorf("trace: empty chain")
	}
	id := chain[0].Chain()
	headSurvived = chain[0].Op == OpSend && chain[0].Hop == 0
	if headSurvived && chain[0].Path != PathRoot(id.Origin, id.Seq) {
		return headSurvived, fmt.Errorf("trace: chain %v: head path %#x != root %#x",
			id, chain[0].Path, PathRoot(id.Origin, id.Seq))
	}
	lastHop := -1
	for i := range chain {
		e := &chain[i]
		if e.Chain() != id {
			return headSurvived, fmt.Errorf("trace: chain %v: event %d belongs to %v", id, i, e.Chain())
		}
		if int(e.Hop) < lastHop {
			return headSurvived, fmt.Errorf("trace: chain %v: hop %d after hop %d", id, e.Hop, lastHop)
		}
		lastHop = int(e.Hop)
		if i > 0 {
			if prev := &chain[i-1]; keyLess(e, prev) {
				return headSurvived, fmt.Errorf("trace: chain %v: event %d out of order", id, i)
			}
		}
	}
	return headSurvived, nil
}
