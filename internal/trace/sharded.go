package trace

import (
	"sync/atomic"
	"time"
)

// Sharded is a set of per-shard rings plus a deterministic merge. Each
// simulation shard writes its own ring lock-free from the delivery hot
// path; because a shard executes its events in scheduler-key order, every
// ring is individually sorted by (At, Actor, Seq, Sub), and Merged
// reassembles the global order with a k-way merge.
//
// Every ring gets the full capacity. The merged tail is trimmed to that
// same capacity, which makes it independent of the shard count: the global
// last-C events are always a subset of the union of the per-shard last-C
// sets, so a 1-shard and a 16-shard run of the same experiment produce
// byte-identical merged traces.
//
// A nil *Sharded is a valid no-op recorder.
type Sharded struct {
	rings []*Ring
	cap   int

	// tap is the live-read mailbox: an HTTP handler posts a request and a
	// barrier (where no shard worker is running) serves it. This is the
	// only safe way to read the rings mid-run.
	tap atomic.Pointer[tapRequest]
}

type tapRequest struct {
	n    int
	done chan []Event
}

// NewSharded creates one ring of the given capacity per shard.
func NewSharded(shards, capacity int) *Sharded {
	if shards <= 0 {
		panic("trace: shards must be positive")
	}
	s := &Sharded{rings: make([]*Ring, shards), cap: capacity}
	for i := range s.rings {
		s.rings[i] = New(capacity)
	}
	return s
}

// Shards returns the number of per-shard rings (0 on nil).
func (s *Sharded) Shards() int {
	if s == nil {
		return 0
	}
	return len(s.rings)
}

// Capacity returns the per-ring (and merged-tail) capacity.
func (s *Sharded) Capacity() int {
	if s == nil {
		return 0
	}
	return s.cap
}

// Shard returns shard i's ring for lock-free recording. Nil receiver or
// out-of-range index yield a nil (no-op) ring.
func (s *Sharded) Shard(i int) *Ring {
	if s == nil || i < 0 || i >= len(s.rings) {
		return nil
	}
	return s.rings[i]
}

// Total returns the number of events ever recorded across all shards.
func (s *Sharded) Total() uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, r := range s.rings {
		t += r.Total()
	}
	return t
}

// OpTotal returns the number of events ever recorded with the given op
// across all shards, including evicted ones.
func (s *Sharded) OpTotal(op Op) uint64 {
	if s == nil {
		return 0
	}
	var t uint64
	for _, r := range s.rings {
		t += r.OpTotal(op)
	}
	return t
}

// Merged k-way merges the per-shard rings by (At, Actor, Seq, Sub) and
// returns the most recent Capacity events of the union, oldest first. The
// result is bit-identical for any worker or shard count. Only call when no
// shard worker can be recording: at a barrier, or after the run.
func (s *Sharded) Merged() []Event {
	if s == nil {
		return nil
	}
	return s.MergedTail(s.cap)
}

// MergedTail is Merged trimmed to the most recent n events (n <= Capacity
// is exact; larger n cannot see past the per-ring capacity).
func (s *Sharded) MergedTail(n int) []Event {
	if s == nil || n <= 0 {
		return nil
	}
	runs := make([][]Event, 0, len(s.rings))
	total := 0
	for _, r := range s.rings {
		if ev := r.Events(); len(ev) > 0 {
			runs = append(runs, ev)
			total += len(ev)
		}
	}
	merged := mergeRuns(runs, total)
	if len(merged) > n {
		merged = merged[len(merged)-n:]
	}
	return merged
}

// mergeRuns merges key-sorted runs into one key-sorted slice.
func mergeRuns(runs [][]Event, total int) []Event {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	out := make([]Event, 0, total)
	for {
		best := -1
		for i, run := range runs {
			if len(run) == 0 {
				continue
			}
			if best < 0 || keyLess(&run[0], &runs[best][0]) {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		out = append(out, runs[best][0])
		runs[best] = runs[best][1:]
	}
}

// RequestTail asks the next barrier for the most recent n merged events and
// waits up to timeout for it to be served. It is the race-free way to read
// a live trace from another goroutine (e.g. an HTTP handler): shard rings
// are only touched from barrier context. ok is false on timeout — the run
// may be finished (no more barriers; use Merged directly once no writer
// remains) or wedged.
func (s *Sharded) RequestTail(n int, timeout time.Duration) (events []Event, ok bool) {
	if s == nil {
		return nil, false
	}
	req := &tapRequest{n: n, done: make(chan []Event, 1)}
	// Single-flight: a concurrent request already in the mailbox wins.
	if !s.tap.CompareAndSwap(nil, req) {
		return nil, false
	}
	select {
	case ev := <-req.done:
		return ev, true
	case <-time.After(timeout):
		// Best-effort cancel; a barrier may still serve the stale request
		// into the buffered channel, which is then garbage.
		s.tap.CompareAndSwap(req, nil)
		return nil, false
	}
}

// ServeTap answers a pending RequestTail, if any. The simulated network
// calls it at every barrier, where all shard workers are quiescent. The
// check is one atomic load when no request is pending.
func (s *Sharded) ServeTap() {
	if s == nil {
		return
	}
	req := s.tap.Swap(nil)
	if req == nil {
		return
	}
	req.done <- s.MergedTail(req.n)
}
