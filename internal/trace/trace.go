// Package trace records protocol-level events (transmissions, deliveries,
// drops) into a bounded ring buffer, for debugging simulations and live
// nodes. Tracing is opt-in and designed to be cheap enough to leave wired
// into the simulator: a nil *Ring records nothing.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/ident"
)

// Op classifies an event.
type Op uint8

// Event operations.
const (
	// OpSend is a datagram leaving a peer.
	OpSend Op = iota + 1
	// OpDeliver is a datagram reaching a peer's engine.
	OpDeliver
	// OpDropNAT is a datagram refused by a NAT filter.
	OpDropNAT
	// OpDropAddr is a datagram addressed to nobody.
	OpDropAddr
	// OpDropDead is a datagram to a departed peer.
	OpDropDead
	// OpDropLink is a datagram lost in flight by the link model.
	OpDropLink
	// OpDropPartition is a datagram dropped at a network partition cut.
	OpDropPartition
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpDeliver:
		return "deliver"
	case OpDropNAT:
		return "drop-nat"
	case OpDropAddr:
		return "drop-addr"
	case OpDropDead:
		return "drop-dead"
	case OpDropLink:
		return "drop-link"
	case OpDropPartition:
		return "drop-part"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one recorded protocol event.
type Event struct {
	// At is the virtual (or relative real) time in milliseconds.
	At int64
	// Op classifies the event.
	Op Op
	// From and To are the transport endpoints involved.
	From, To ident.Endpoint
	// Kind is the wire message kind byte (see internal/wire.Kind).
	Kind uint8
	// Size is the datagram size in bytes.
	Size int
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%8dms %-9s kind=%d %v -> %v (%dB)", e.At, e.Op, e.Kind, e.From, e.To, e.Size)
}

// Ring is a fixed-capacity event recorder. The zero Ring is invalid; use New.
// A nil *Ring is a valid no-op recorder, so call sites need no conditionals.
// Ring is not safe for concurrent use (the simulator is single-threaded; a
// live node records from its run loop only).
type Ring struct {
	events []Event
	next   int
	filled bool
	total  uint64
}

// New creates a ring holding the most recent capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Ring{events: make([]Event, capacity)}
}

// Record appends an event, evicting the oldest when full. Recording on a nil
// ring is a no-op.
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	r.events[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Total returns the number of events ever recorded, including evicted ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// Events returns the held events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns the held events matching the predicate, oldest first.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the held events one per line.
func (r *Ring) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
