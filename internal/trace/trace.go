// Package trace records protocol-level events (transmissions, deliveries,
// drops) into bounded per-shard ring buffers and reconstructs causal
// forwarding chains from them. Tracing is opt-in and cheap enough to leave
// wired into the simulator: a nil *Ring (or nil *Sharded) records nothing
// and recording never allocates.
//
// Every event carries the scheduler key (time, actor, seq) of the simulation
// event that produced it, plus a Sub ordinal for multiple records under one
// key. Per-shard rings are written lock-free (each shard writes only its
// own ring) and are individually key-sorted, because a shard executes its
// events in key order; merging the rings by (At, Actor, Seq, Sub) therefore
// reconstructs the exact global order a single-shard run would have
// recorded, for any worker or shard count.
package trace

import (
	"fmt"
	"strings"

	"repro/internal/ident"
)

// Op classifies an event.
type Op uint8

// Event operations. The drop variants are generated from the DropCauses
// table in drops.go — add new drop kinds there, not here.
const (
	// OpSend is a datagram leaving a peer.
	OpSend Op = iota + 1
	// OpDeliver is a datagram reaching a peer's engine.
	OpDeliver
	// OpDropNAT is a datagram refused by a NAT filter.
	OpDropNAT
	// OpDropAddr is a datagram addressed to nobody.
	OpDropAddr
	// OpDropDead is a datagram to a departed peer.
	OpDropDead
	// OpDropLink is a datagram lost in flight by the link model.
	OpDropLink
	// OpDropPartition is a datagram dropped at a network partition cut.
	OpDropPartition

	// numOps bounds the Op space for per-op totals.
	numOps = int(OpDropPartition) + 1
)

// NumOps returns the exclusive upper bound of the Op space: every valid op
// satisfies OpSend <= op < NumOps(). Exporters iterate with it.
func NumOps() int { return numOps }

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpSend:
		return "send"
	case OpDeliver:
		return "deliver"
	}
	if c, ok := DropCauseOf(o); ok {
		return DropCauses[c].OpName
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp parses an op name as printed by Op.String.
func ParseOp(s string) (Op, error) {
	switch s {
	case "send":
		return OpSend, nil
	case "deliver":
		return OpDeliver, nil
	}
	for _, d := range DropCauses {
		if s == d.OpName {
			return d.Op, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown op %q", s)
}

// IsDrop reports whether the op is one of the drop variants.
func (o Op) IsDrop() bool {
	_, ok := DropCauseOf(o)
	return ok
}

// Event is one recorded protocol event.
//
// (At, Actor, Seq, Sub) is the event's position in the global total order:
// the scheduler key of the simulation event that produced it plus an
// intra-key ordinal. (Src, OriginSeq) identifies the causal forwarding
// chain the datagram belongs to; Hop and Path locate the datagram within
// that chain (see chain.go). All of these are pure functions of
// (Config, Scenario, Seed) — never of the worker or shard count — so a
// merged trace is bit-identical across execution shapes.
type Event struct {
	// At is the virtual time in milliseconds.
	At int64 `json:"at"`
	// Actor and Seq are the scheduler key of the producing event.
	Actor uint64 `json:"actor"`
	Seq   uint64 `json:"seq"`
	// Sub orders multiple records produced under one scheduler key.
	Sub uint32 `json:"sub"`
	// Op classifies the event.
	Op Op `json:"op"`
	// Kind is the wire message kind byte (see internal/wire.Kind).
	Kind uint8 `json:"kind"`
	// Hop is the datagram's forwarding depth: 0 at the origin, +1 per relay.
	Hop uint8 `json:"hop"`
	// Src and Dst are the message's origin and final-destination peers.
	Src ident.NodeID `json:"src"`
	Dst ident.NodeID `json:"dst"`
	// OriginSeq is the origin peer's per-message counter; (Src, OriginSeq)
	// names the causal chain.
	OriginSeq uint32 `json:"oseq"`
	// Path is the causal path hash: PathRoot at the origin, folded with
	// each relay by PathExtend.
	Path uint64 `json:"path"`
	// From and To are the transport endpoints involved.
	From ident.Endpoint `json:"from"`
	To   ident.Endpoint `json:"to"`
	// Size is the datagram size in bytes.
	Size uint32 `json:"size"`
}

// Key compares two events by global order (At, Actor, Seq, Sub).
func keyLess(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Actor != b.Actor {
		return a.Actor < b.Actor
	}
	if a.Seq != b.Seq {
		return a.Seq < b.Seq
	}
	return a.Sub < b.Sub
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%8dms %-9s kind=%d hop=%d chain=%v:%d %v -> %v (%dB)",
		e.At, e.Op, e.Kind, e.Hop, e.Src, e.OriginSeq, e.From, e.To, e.Size)
}

// Ring is a fixed-capacity event recorder holding the most recent events.
// The zero Ring is invalid; use New. A nil *Ring is a valid no-op recorder,
// so call sites need no conditionals. Ring is not safe for concurrent use:
// in the sharded simulator each shard owns exactly one ring and writes it
// from its own worker only.
type Ring struct {
	events []Event
	next   int
	filled bool
	total  uint64
	// totals counts every recorded event per op, including evicted ones,
	// so drop accounting survives ring wrap.
	totals [numOps]uint64
	// lastAt/lastActor/lastSeq/lastSub assign Sub ordinals: consecutive
	// records under one scheduler key get increasing Sub.
	lastAt    int64
	lastActor uint64
	lastSeq   uint64
	lastSub   uint32
}

// New creates a ring holding the most recent capacity events.
func New(capacity int) *Ring {
	if capacity <= 0 {
		panic("trace: capacity must be positive")
	}
	return &Ring{events: make([]Event, capacity), lastAt: -1}
}

// Record appends an event, evicting the oldest when full, and assigns the
// event's Sub ordinal from its scheduler key. Recording on a nil ring is a
// no-op; recording never allocates.
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	if e.At == r.lastAt && e.Actor == r.lastActor && e.Seq == r.lastSeq {
		r.lastSub++
	} else {
		r.lastAt, r.lastActor, r.lastSeq, r.lastSub = e.At, e.Actor, e.Seq, 0
	}
	e.Sub = r.lastSub
	r.events[r.next] = e
	r.next++
	r.total++
	if int(e.Op) < numOps {
		r.totals[e.Op]++
	}
	if r.next == len(r.events) {
		r.next = 0
		r.filled = true
	}
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	if r.filled {
		return len(r.events)
	}
	return r.next
}

// Total returns the number of events ever recorded, including evicted ones.
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	return r.total
}

// OpTotal returns the number of events ever recorded with the given op,
// including evicted ones.
func (r *Ring) OpTotal(op Op) uint64 {
	if r == nil || int(op) >= numOps {
		return 0
	}
	return r.totals[op]
}

// Events returns the held events, oldest first.
func (r *Ring) Events() []Event {
	if r == nil {
		return nil
	}
	out := make([]Event, 0, r.Len())
	if r.filled {
		out = append(out, r.events[r.next:]...)
	}
	out = append(out, r.events[:r.next]...)
	return out
}

// Filter returns the held events matching the predicate, oldest first.
func (r *Ring) Filter(keep func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if keep(e) {
			out = append(out, e)
		}
	}
	return out
}

// Dump renders the held events one per line.
func (r *Ring) Dump() string {
	return Format(r.Events())
}

// Format renders events one per line.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
