package trace

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/ident"
)

// keyed builds an event with an explicit scheduler key.
func keyed(at int64, actor, seq uint64, op Op) Event {
	return Event{At: at, Actor: actor, Seq: seq, Op: op,
		From: ident.Endpoint{IP: 1, Port: 1}, To: ident.Endpoint{IP: 2, Port: 2}}
}

func TestSubAssignment(t *testing.T) {
	r := New(8)
	r.Record(keyed(1, 7, 1, OpDeliver))
	r.Record(keyed(1, 7, 1, OpSend)) // same key: sub 1
	r.Record(keyed(1, 7, 1, OpSend)) // same key: sub 2
	r.Record(keyed(1, 9, 2, OpSend)) // new key: sub resets
	es := r.Events()
	want := []uint32{0, 1, 2, 0}
	for i, e := range es {
		if e.Sub != want[i] {
			t.Errorf("event %d Sub=%d, want %d", i, e.Sub, want[i])
		}
	}
}

func TestOpTotalsSurviveEviction(t *testing.T) {
	r := New(2)
	for i := int64(1); i <= 5; i++ {
		r.Record(keyed(i, 1, uint64(i), OpDropLink))
	}
	r.Record(keyed(6, 1, 6, OpSend))
	if got := r.OpTotal(OpDropLink); got != 5 {
		t.Errorf("OpTotal(drop-link)=%d, want 5 despite eviction", got)
	}
	if got := r.OpTotal(OpSend); got != 1 {
		t.Errorf("OpTotal(send)=%d, want 1", got)
	}
}

func TestNilShardedIsNoOp(t *testing.T) {
	var s *Sharded
	s.Shard(0).Record(keyed(1, 1, 1, OpSend))
	if s.Shards() != 0 || s.Total() != 0 || s.Merged() != nil || s.Capacity() != 0 {
		t.Error("nil Sharded not inert")
	}
	s.ServeTap()
	if _, ok := s.RequestTail(4, time.Millisecond); ok {
		t.Error("nil Sharded served a tap")
	}
}

// TestMergedShardInvariance is the heart of the sharded design: recording
// one global key-ordered stream split across different shard counts must
// merge back to the identical trace, including after per-ring eviction.
func TestMergedShardInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	const n, capacity = 5000, 512
	// One global stream in scheduler-key order: bursts of records under
	// distinct (at, actor, seq) keys, sorted the way the kernel executes
	// them. Records of one burst share a key and hence a shard, as in the
	// simulator.
	type burst struct {
		at    int64
		actor uint64
		seq   uint64
		n     int
	}
	var bursts []burst
	at, seq := int64(0), uint64(0)
	for total := 0; total < n; {
		at += int64(rng.Intn(3))
		seq += uint64(1 + rng.Intn(4))
		b := burst{at: at, actor: uint64(1 + rng.Intn(97)), seq: seq, n: 1 + rng.Intn(3)}
		bursts = append(bursts, b)
		total += b.n
	}
	sort.Slice(bursts, func(i, j int) bool {
		a, b := &bursts[i], &bursts[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.actor != b.actor {
			return a.actor < b.actor
		}
		return a.seq < b.seq
	})
	var stream []Event
	for _, b := range bursts {
		for k := 0; k < b.n; k++ {
			op := OpSend
			if k > 0 {
				op = OpDeliver
			}
			stream = append(stream, keyed(b.at, b.actor, b.seq, op))
		}
	}
	var want []Event
	for _, shards := range []int{1, 3, 16} {
		s := NewSharded(shards, capacity)
		for _, e := range stream {
			// Same placement rule as the simulator: an event's shard is a
			// pure function of its actor, never of time or load.
			s.Shard(int(e.Actor) % shards).Record(e)
		}
		got := s.Merged()
		if len(got) != capacity {
			t.Fatalf("shards=%d: merged %d events, want %d", shards, len(got), capacity)
		}
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d: merged trace differs from 1-shard merge", shards)
		}
	}
	// The merged tail must equal the tail of the original stream with Subs
	// assigned.
	for i, e := range want {
		src := stream[len(stream)-capacity+i]
		if e.At != src.At || e.Actor != src.Actor || e.Seq != src.Seq {
			t.Fatalf("merged[%d] key (%d,%d,%d) != stream key (%d,%d,%d)",
				i, e.At, e.Actor, e.Seq, src.At, src.Actor, src.Seq)
		}
	}
}

func TestMergedTailBound(t *testing.T) {
	s := NewSharded(2, 64)
	for i := 0; i < 100; i++ {
		s.Shard(i % 2).Record(keyed(int64(i), uint64(i%2+1), uint64(i), OpSend))
	}
	if got := len(s.MergedTail(10)); got != 10 {
		t.Errorf("MergedTail(10) returned %d events", got)
	}
	if got := len(s.MergedTail(0)); got != 0 {
		t.Errorf("MergedTail(0) returned %d events", got)
	}
}

func TestTapServedAtBarrier(t *testing.T) {
	s := NewSharded(2, 16)
	s.Shard(0).Record(keyed(1, 1, 1, OpSend))
	s.Shard(1).Record(keyed(2, 2, 2, OpDeliver))
	done := make(chan struct{})
	var got []Event
	var ok bool
	go func() {
		got, ok = s.RequestTail(8, 5*time.Second)
		close(done)
	}()
	// Emulate the barrier loop: serve until the request lands.
	for {
		select {
		case <-done:
			if !ok || len(got) != 2 {
				t.Fatalf("tap: ok=%v events=%d, want 2", ok, len(got))
			}
			return
		default:
			s.ServeTap()
		}
	}
}

func TestTapTimesOutWithoutBarrier(t *testing.T) {
	s := NewSharded(1, 4)
	if _, ok := s.RequestTail(4, 10*time.Millisecond); ok {
		t.Error("tap served with no barrier running")
	}
	// The mailbox must be clean again: a later served request works.
	done := make(chan struct{})
	go func() {
		if _, ok := s.RequestTail(4, 5*time.Second); !ok {
			t.Error("tap not served after a previous timeout")
		}
		close(done)
	}()
	for {
		select {
		case <-done:
			return
		default:
			s.ServeTap()
		}
	}
}

// TestRecordAllocs pins the hot-path cost: recording on a live ring and on
// a nil ring (tracing disabled) both allocate nothing.
func TestRecordAllocs(t *testing.T) {
	r := New(128)
	e := keyed(1, 2, 3, OpSend)
	if a := testing.AllocsPerRun(1000, func() { r.Record(e) }); a != 0 {
		t.Errorf("live Record allocates %.1f/op, want 0", a)
	}
	var nilRing *Ring
	if a := testing.AllocsPerRun(1000, func() { nilRing.Record(e) }); a != 0 {
		t.Errorf("nil Record allocates %.1f/op, want 0", a)
	}
}
