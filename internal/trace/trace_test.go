package trace

import (
	"strings"
	"testing"

	"repro/internal/ident"
)

func ev(at int64, op Op) Event {
	return Event{At: at, Op: op, From: ident.Endpoint{IP: 1, Port: 1}, To: ident.Endpoint{IP: 2, Port: 2}, Kind: 1, Size: 62}
}

func TestNilRingIsNoOp(t *testing.T) {
	var r *Ring
	r.Record(ev(1, OpSend))
	if r.Len() != 0 || r.Total() != 0 || r.Events() != nil {
		t.Error("nil ring recorded something")
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

func TestRecordAndOrder(t *testing.T) {
	r := New(4)
	for i := int64(1); i <= 3; i++ {
		r.Record(ev(i, OpSend))
	}
	if r.Len() != 3 || r.Total() != 3 {
		t.Fatalf("Len=%d Total=%d", r.Len(), r.Total())
	}
	es := r.Events()
	for i, e := range es {
		if e.At != int64(i+1) {
			t.Errorf("event %d at %d, want %d", i, e.At, i+1)
		}
	}
}

func TestEviction(t *testing.T) {
	r := New(3)
	for i := int64(1); i <= 5; i++ {
		r.Record(ev(i, OpDeliver))
	}
	if r.Len() != 3 || r.Total() != 5 {
		t.Fatalf("Len=%d Total=%d, want 3/5", r.Len(), r.Total())
	}
	es := r.Events()
	if es[0].At != 3 || es[2].At != 5 {
		t.Errorf("oldest-first order wrong: %v", es)
	}
}

func TestFilter(t *testing.T) {
	r := New(8)
	r.Record(ev(1, OpSend))
	r.Record(ev(2, OpDropNAT))
	r.Record(ev(3, OpSend))
	drops := r.Filter(func(e Event) bool { return e.Op == OpDropNAT })
	if len(drops) != 1 || drops[0].At != 2 {
		t.Errorf("Filter = %v", drops)
	}
}

func TestDumpAndStrings(t *testing.T) {
	r := New(2)
	r.Record(ev(1, OpSend))
	d := r.Dump()
	if !strings.Contains(d, "send") || !strings.Contains(d, "0.0.0.1:1") {
		t.Errorf("Dump = %q", d)
	}
	for _, op := range []Op{OpSend, OpDeliver, OpDropNAT, OpDropAddr, OpDropDead, Op(99)} {
		if op.String() == "" {
			t.Errorf("Op(%d).String() empty", op)
		}
	}
}
