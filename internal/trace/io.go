package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL writes events as JSON lines (one event object per line), the
// raw trace file format of the CLIs' -trace-out flag. The format streams
// and greps well and is what nylon-trace reads back.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range events {
		if err := enc.Encode(&events[i]); err != nil {
			return fmt.Errorf("trace: write event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSON-lines event stream written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for {
		var e Event
		if err := dec.Decode(&e); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", len(events), err)
		}
		events = append(events, e)
	}
}
