package trace

// DropCause enumerates why the network dropped a datagram. It is the single
// source of truth for the drop taxonomy: the trace Op variants, the
// simulated network's DropStats fields, and the nylon_net_drops_* metric
// names are all derived from the DropCauses table below, so the three views
// can never drift apart (a cross-check test in exp pins the equality at
// runtime too).
type DropCause int

// Drop causes, in DropStats field order.
const (
	// DropNAT: refused by the destination NAT filter.
	DropNAT DropCause = iota
	// DropAddr: addressed to an endpoint nobody owns.
	DropAddr
	// DropDead: addressed to a departed peer.
	DropDead
	// DropLink: lost in flight by the link model.
	DropLink
	// DropPartition: dropped at a network partition cut.
	DropPartition

	// NumDropCauses sizes per-cause counter arrays.
	NumDropCauses
)

// DropCauseInfo describes one drop cause across its three representations.
type DropCauseInfo struct {
	// Cause is the table index, for self-checks.
	Cause DropCause
	// Op is the trace op recorded for this cause.
	Op Op
	// OpName is the op's render name (Op.String output).
	OpName string
	// Metric is the Prometheus counter name registered by simnet.SetObs.
	Metric string
	// Help is the counter's help string.
	Help string
	// StatField is the simnet.DropStats field fed by this cause.
	StatField string
}

// DropCauses is the taxonomy table, indexed by DropCause.
var DropCauses = [NumDropCauses]DropCauseInfo{
	DropNAT: {
		Cause:     DropNAT,
		Op:        OpDropNAT,
		OpName:    "drop-nat",
		Metric:    "nylon_net_drops_nat_total",
		Help:      "datagrams refused by the destination NAT",
		StatField: "NATFiltered",
	},
	DropAddr: {
		Cause:     DropAddr,
		Op:        OpDropAddr,
		OpName:    "drop-addr",
		Metric:    "nylon_net_drops_addr_total",
		Help:      "datagrams to endpoints with no live mapping",
		StatField: "NoSuchAddr",
	},
	DropDead: {
		Cause:     DropDead,
		Op:        OpDropDead,
		OpName:    "drop-dead",
		Metric:    "nylon_net_drops_dead_total",
		Help:      "datagrams to departed peers",
		StatField: "DeadPeer",
	},
	DropLink: {
		Cause:     DropLink,
		Op:        OpDropLink,
		OpName:    "drop-link",
		Metric:    "nylon_net_drops_link_total",
		Help:      "datagrams lost in flight by the link model",
		StatField: "LinkLost",
	},
	DropPartition: {
		Cause:     DropPartition,
		Op:        OpDropPartition,
		OpName:    "drop-part",
		Metric:    "nylon_net_drops_partition_total",
		Help:      "datagrams dropped at a partition cut",
		StatField: "Partitioned",
	},
}

// DropCauseOf maps a trace op back to its drop cause. ok is false for
// non-drop ops.
func DropCauseOf(op Op) (DropCause, bool) {
	for _, d := range DropCauses {
		if d.Op == op {
			return d.Cause, true
		}
	}
	return 0, false
}
