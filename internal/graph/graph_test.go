package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func ids(ns ...uint64) []ident.NodeID {
	out := make([]ident.NodeID, len(ns))
	for i, n := range ns {
		out[i] = ident.NodeID(n)
	}
	return out
}

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(ids(1, 2, 3, 4, 5))
	if u.Components() != 5 {
		t.Fatalf("Components = %d, want 5", u.Components())
	}
	u.Union(1, 2)
	u.Union(2, 3)
	if u.Components() != 3 {
		t.Errorf("Components = %d, want 3", u.Components())
	}
	if u.Find(1) != u.Find(3) {
		t.Error("1 and 3 not merged")
	}
	if u.Find(1) == u.Find(4) {
		t.Error("1 and 4 spuriously merged")
	}
	if got := u.LargestComponent(); got != 3 {
		t.Errorf("LargestComponent = %d, want 3", got)
	}
	// Union of already-joined nodes is a no-op.
	u.Union(1, 3)
	if u.Components() != 3 {
		t.Error("redundant union changed component count")
	}
	// Unknown nodes are ignored.
	u.Union(1, 99)
	u.Union(99, 1)
	if u.Components() != 3 {
		t.Error("union with unknown node changed components")
	}
	if u.Find(99) != 99 {
		t.Error("Find of unknown node not identity")
	}
}

func TestBiggestClusterFraction(t *testing.T) {
	nodes := ids(1, 2, 3, 4, 5, 6)
	edges := []Edge{{1, 2}, {2, 3}, {4, 5}}
	got := BiggestClusterFraction(nodes, edges)
	if got != 0.5 {
		t.Errorf("fraction = %v, want 0.5", got)
	}
	if BiggestClusterFraction(nil, nil) != 0 {
		t.Error("empty node set should yield 0")
	}
	// Fully connected ring.
	ring := []Edge{{1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1}}
	if BiggestClusterFraction(nodes, ring) != 1 {
		t.Error("ring not fully connected")
	}
	// Edges to nodes outside the set are ignored.
	if got := BiggestClusterFraction(ids(1, 2), []Edge{{1, 9}, {9, 2}}); got != 0.5 {
		t.Errorf("external edges merged components: %v", got)
	}
}

func TestInDegrees(t *testing.T) {
	nodes := ids(1, 2, 3)
	edges := []Edge{{1, 2}, {3, 2}, {2, 1}, {1, 9}}
	deg := InDegrees(nodes, edges)
	if deg[2] != 2 || deg[1] != 1 || deg[3] != 0 {
		t.Errorf("InDegrees = %v", deg)
	}
	if _, ok := deg[9]; ok {
		t.Error("degree recorded for external node")
	}
}

func TestSummarize(t *testing.T) {
	deg := map[ident.NodeID]int{1: 2, 2: 4, 3: 4, 4: 6}
	s := Summarize(deg)
	if s.Min != 2 || s.Max != 6 || s.Mean != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.StdDev < 1.41 || s.StdDev > 1.42 {
		t.Errorf("StdDev = %v, want ~1.414", s.StdDev)
	}
	if s.P50 != 4 {
		t.Errorf("P50 = %d, want 4", s.P50)
	}
	if got := Summarize(nil); got != (DegreeSummary{}) {
		t.Errorf("Summarize(nil) = %+v, want zero", got)
	}
}

// TestUnionFindMatchesBFS cross-checks union-find component sizes against a
// simple BFS on random graphs.
func TestUnionFindMatchesBFS(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(60)
		nodes := make([]ident.NodeID, n)
		for i := range nodes {
			nodes[i] = ident.NodeID(i + 1)
		}
		var edges []Edge
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.7 {
				edges = append(edges, Edge{
					From: nodes[rng.Intn(n)],
					To:   nodes[rng.Intn(n)],
				})
			}
		}
		got := BiggestClusterFraction(nodes, edges)

		// BFS reference.
		adj := make(map[ident.NodeID][]ident.NodeID)
		for _, e := range edges {
			adj[e.From] = append(adj[e.From], e.To)
			adj[e.To] = append(adj[e.To], e.From)
		}
		seen := make(map[ident.NodeID]bool)
		best := 0
		for _, start := range nodes {
			if seen[start] {
				continue
			}
			size := 0
			queue := []ident.NodeID{start}
			seen[start] = true
			for len(queue) > 0 {
				cur := queue[0]
				queue = queue[1:]
				size++
				for _, nb := range adj[cur] {
					if !seen[nb] {
						seen[nb] = true
						queue = append(queue, nb)
					}
				}
			}
			if size > best {
				best = size
			}
		}
		want := float64(best) / float64(n)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
