// Package graph computes the overlay-graph metrics of the paper's
// evaluation: the size of the biggest cluster (largest weakly-connected
// component of the usable view edges — Figures 2 and 10) and in-degree
// statistics used by the randomness analysis.
package graph

import (
	"math"
	"sort"

	"repro/internal/ident"
)

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent map[ident.NodeID]ident.NodeID
	rank   map[ident.NodeID]int
	comps  int
}

// NewUnionFind creates a structure over the given nodes, each initially its
// own component.
func NewUnionFind(nodes []ident.NodeID) *UnionFind {
	u := &UnionFind{
		parent: make(map[ident.NodeID]ident.NodeID, len(nodes)),
		rank:   make(map[ident.NodeID]int, len(nodes)),
		comps:  len(nodes),
	}
	for _, n := range nodes {
		u.parent[n] = n
	}
	return u
}

// Find returns the representative of n's component. Unknown nodes return n
// itself.
func (u *UnionFind) Find(n ident.NodeID) ident.NodeID {
	p, ok := u.parent[n]
	if !ok {
		return n
	}
	for p != n {
		gp := u.parent[p]
		u.parent[n] = gp // path halving
		n, p = gp, u.parent[gp]
	}
	return n
}

// Union merges the components of a and b; unknown nodes are ignored.
func (u *UnionFind) Union(a, b ident.NodeID) {
	if _, ok := u.parent[a]; !ok {
		return
	}
	if _, ok := u.parent[b]; !ok {
		return
	}
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.comps--
}

// Components returns the number of components.
func (u *UnionFind) Components() int { return u.comps }

// LargestComponent returns the size of the biggest component.
func (u *UnionFind) LargestComponent() int {
	sizes := make(map[ident.NodeID]int)
	best := 0
	for n := range u.parent {
		r := u.Find(n)
		sizes[r]++
		if sizes[r] > best {
			best = sizes[r]
		}
	}
	return best
}

// Edge is one directed view edge.
type Edge struct {
	From, To ident.NodeID
}

// BiggestClusterFraction treats the directed edges as undirected, restricted
// to the given node set, and returns the fraction (0..1) of nodes in the
// largest weakly-connected component. An empty node set yields 0.
func BiggestClusterFraction(nodes []ident.NodeID, edges []Edge) float64 {
	if len(nodes) == 0 {
		return 0
	}
	u := NewUnionFind(nodes)
	for _, e := range edges {
		u.Union(e.From, e.To)
	}
	return float64(u.LargestComponent()) / float64(len(nodes))
}

// InDegrees counts, for every node in nodes, how many of the given edges
// point at it. Nodes without incoming edges report zero.
func InDegrees(nodes []ident.NodeID, edges []Edge) map[ident.NodeID]int {
	deg := make(map[ident.NodeID]int, len(nodes))
	for _, n := range nodes {
		deg[n] = 0
	}
	for _, e := range edges {
		if _, ok := deg[e.To]; ok {
			deg[e.To]++
		}
	}
	return deg
}

// DegreeSummary condenses a degree distribution.
type DegreeSummary struct {
	Min, Max int
	Mean     float64
	// StdDev is the population standard deviation.
	StdDev float64
	// P50, P90, P99 are percentiles of the distribution.
	P50, P90, P99 int
}

// Summarize computes summary statistics over the in-degree map. It returns
// the zero summary for an empty map.
func Summarize(deg map[ident.NodeID]int) DegreeSummary {
	if len(deg) == 0 {
		return DegreeSummary{}
	}
	vals := make([]int, 0, len(deg))
	sum := 0
	for _, d := range deg {
		vals = append(vals, d)
		sum += d
	}
	sort.Ints(vals)
	mean := float64(sum) / float64(len(vals))
	var sq float64
	for _, v := range vals {
		dv := float64(v) - mean
		sq += dv * dv
	}
	pct := func(p float64) int {
		i := int(p * float64(len(vals)-1))
		return vals[i]
	}
	return DegreeSummary{
		Min:    vals[0],
		Max:    vals[len(vals)-1],
		Mean:   mean,
		StdDev: math.Sqrt(sq / float64(len(vals))),
		P50:    pct(0.50),
		P90:    pct(0.90),
		P99:    pct(0.99),
	}
}
