package snapshot

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{
		nil,
		{},
		{0x00},
		[]byte("hello"),
		bytes.Repeat([]byte{0xab}, 1<<16),
	} {
		data := Encode(payload)
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("payload %d bytes: round trip mutated content", len(payload))
		}
	}
}

// TestEnvelopeTruncation cuts an encoded snapshot at every length from zero
// to one byte short and requires ErrTruncated for each — the exact artifact
// of a process killed mid-write without the atomic rename.
func TestEnvelopeTruncation(t *testing.T) {
	data := Encode([]byte("the quick brown fox"))
	for n := 0; n < len(data); n++ {
		_, err := Decode(data[:n])
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncated to %d/%d bytes: err = %v, want ErrTruncated", n, len(data), err)
		}
	}
}

// TestEnvelopeBitFlips flips one bit in every payload byte position and a
// sample of checksum positions; each flip must yield ErrChecksum.
func TestEnvelopeBitFlips(t *testing.T) {
	payload := []byte("some state worth protecting")
	data := Encode(payload)
	start := len(Magic) + 8 // first payload byte
	for i := start; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); !errors.Is(err, ErrChecksum) {
			t.Fatalf("bit flip at %d: err = %v, want ErrChecksum", i, err)
		}
	}
}

func TestEnvelopeVersionAndFraming(t *testing.T) {
	payload := []byte("payload")
	data := Encode(payload)

	// Unknown version string.
	v9 := append([]byte(nil), data...)
	copy(v9, "nylon-snap/v9\n")
	if _, err := Decode(v9); !errors.Is(err, ErrVersion) {
		t.Errorf("wrong version: err = %v, want ErrVersion", err)
	}
	// A different format entirely.
	if _, err := Decode([]byte("GIF89a-definitely-not-a-snapshot")); !errors.Is(err, ErrVersion) {
		t.Errorf("foreign format: err = %v, want ErrVersion", err)
	}
	// Trailing garbage after the checksum: framing violation, not a flip.
	if _, err := Decode(append(append([]byte(nil), data...), "junk"...)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
	// A length field pointing past the file.
	huge := append([]byte(nil), data...)
	huge[len(Magic)] = 0xff
	if _, err := Decode(huge); !errors.Is(err, ErrTruncated) {
		t.Errorf("oversized length: err = %v, want ErrTruncated", err)
	}
}

func TestWriteFileAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "world.snap")
	if err := WriteFile(path, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Overwrite: the reader must only ever see a complete old or new file.
	if err := WriteFile(path, []byte("v2 with more bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2 with more bytes" {
		t.Fatalf("read %q after overwrite", got)
	}
	// No temp-file litter once writes complete.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "world.snap" {
		t.Errorf("directory holds %d entries after atomic writes", len(entries))
	}
	// Reading a nonexistent path surfaces the I/O error, not a typed
	// envelope error — callers must be able to tell "no snapshot" from
	// "bad snapshot".
	if _, err := ReadFile(filepath.Join(dir, "absent.snap")); err == nil || errors.Is(err, ErrTruncated) {
		t.Errorf("absent file: err = %v", err)
	}
}

// TestCodecRoundTrip drives every primitive through an encode/decode cycle
// and requires exact consumption (Finish) at the end.
func TestCodecRoundTrip(t *testing.T) {
	ep := ident.Endpoint{IP: 0x0a000001, Port: 4242}
	desc := view.Descriptor{ID: 7, Addr: ep, Class: ident.NATClass(1), Age: 3}

	enc := &Encoder{}
	enc.Section("test")
	enc.U8(0xfe)
	enc.Bool(true)
	enc.Bool(false)
	enc.U16(0xbeef)
	enc.U32(0xdeadbeef)
	enc.U64(1 << 60)
	enc.I64(-12345)
	enc.F64(3.14159)
	enc.Bytes32([]byte("blob"))
	enc.Bytes32(nil)
	enc.Endpoint(ep)
	enc.Desc(desc)

	dec := NewDecoder(enc.Bytes())
	dec.Section("test")
	if v := dec.U8(); v != 0xfe {
		t.Errorf("U8 = %#x", v)
	}
	if !dec.Bool() || dec.Bool() {
		t.Error("Bool round trip failed")
	}
	if v := dec.U16(); v != 0xbeef {
		t.Errorf("U16 = %#x", v)
	}
	if v := dec.U32(); v != 0xdeadbeef {
		t.Errorf("U32 = %#x", v)
	}
	if v := dec.U64(); v != 1<<60 {
		t.Errorf("U64 = %#x", v)
	}
	if v := dec.I64(); v != -12345 {
		t.Errorf("I64 = %d", v)
	}
	if v := dec.F64(); v != 3.14159 {
		t.Errorf("F64 = %v", v)
	}
	if v := dec.Bytes32(); string(v) != "blob" {
		t.Errorf("Bytes32 = %q", v)
	}
	if v := dec.Bytes32(); len(v) != 0 {
		t.Errorf("empty Bytes32 = %q", v)
	}
	if v := dec.Endpoint(); v != ep {
		t.Errorf("Endpoint = %+v", v)
	}
	if v := dec.Desc(); v != desc {
		t.Errorf("Desc = %+v", v)
	}
	if err := dec.Finish(); err != nil {
		t.Errorf("Finish: %v", err)
	}
}

func TestDecoderStickyErrors(t *testing.T) {
	// Reading past the end fails once and stays failed; subsequent reads
	// return zero values without advancing or panicking.
	dec := NewDecoder([]byte{0x01})
	if v := dec.U64(); v != 0 {
		t.Errorf("short U64 = %d", v)
	}
	if dec.Err() == nil || !errors.Is(dec.Err(), ErrCorrupt) {
		t.Fatalf("short read error = %v", dec.Err())
	}
	first := dec.Err()
	dec.U32()
	dec.Desc()
	dec.Fail("later failure")
	if dec.Err() != first {
		t.Error("sticky error was overwritten")
	}

	// A wrong section tag names both tags.
	enc := &Encoder{}
	enc.Section("aaaa")
	dec = NewDecoder(enc.Bytes())
	dec.Section("bbbb")
	if err := dec.Err(); err == nil || !strings.Contains(err.Error(), "aaaa") || !strings.Contains(err.Error(), "bbbb") {
		t.Errorf("section mismatch error = %v", err)
	}

	// Bool bytes other than 0/1 are corruption, not truthiness.
	dec = NewDecoder([]byte{0x02})
	if dec.Bool() || !errors.Is(dec.Err(), ErrCorrupt) {
		t.Errorf("Bool(2): %v, err %v", false, dec.Err())
	}

	// Finish rejects unconsumed bytes.
	dec = NewDecoder([]byte{0x00, 0x00})
	dec.U8()
	if err := dec.Finish(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Finish with leftovers: %v", err)
	}
}

// TestDecoderCountBound pins the allocation guard: a hostile element count
// larger than the remaining payload could hold fails immediately instead of
// sizing a huge allocation.
func TestDecoderCountBound(t *testing.T) {
	enc := &Encoder{}
	enc.U32(1 << 30) // one billion elements...
	enc.U64(0)       // ...backed by eight bytes
	dec := NewDecoder(enc.Bytes())
	if n := dec.Count(8); n != 0 || !errors.Is(dec.Err(), ErrCorrupt) {
		t.Errorf("hostile count: n = %d, err = %v", n, dec.Err())
	}

	// An honest count within bounds passes.
	enc = &Encoder{}
	enc.U32(2)
	enc.U64(1)
	enc.U64(2)
	dec = NewDecoder(enc.Bytes())
	if n := dec.Count(8); n != 2 || dec.Err() != nil {
		t.Errorf("honest count: n = %d, err = %v", n, dec.Err())
	}

	// elemSize below one is clamped, so a zero lower bound cannot bypass
	// the check via n*0 == 0.
	enc = &Encoder{}
	enc.U32(1 << 20)
	dec = NewDecoder(enc.Bytes())
	if n := dec.Count(0); n != 0 || !errors.Is(dec.Err(), ErrCorrupt) {
		t.Errorf("zero elemSize: n = %d, err = %v", n, dec.Err())
	}
}

// TestDeterministicEncoding pins that the same sequence of writes yields the
// same bytes — the property the shard-count-invariant snapshot format builds
// on — and that the envelope is a pure function of the payload.
func TestDeterministicEncoding(t *testing.T) {
	build := func() []byte {
		enc := &Encoder{}
		enc.Section("sect")
		for i := 0; i < 100; i++ {
			enc.U64(uint64(i * 7))
			enc.F64(float64(i) / 3)
		}
		return enc.Bytes()
	}
	a, b := build(), build()
	if !bytes.Equal(a, b) {
		t.Fatal("identical writes produced different payload bytes")
	}
	if !bytes.Equal(Encode(a), Encode(b)) {
		t.Fatal("identical payloads produced different envelopes")
	}
}
