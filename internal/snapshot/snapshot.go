// Package snapshot defines the nylon-snap/v1 checkpoint container and the
// deterministic binary encoding simulation state serializes through.
//
// A snapshot file is a fixed envelope around one opaque payload:
//
//	magic   "nylon-snap/v1\n"        (14 bytes, carries the format version)
//	length  uint64 big-endian        (payload length in bytes)
//	payload length bytes             (the world state, schema owned by exp)
//	sum     SHA-256 of the payload   (32 bytes)
//
// The envelope makes corruption detection exact and cheap: a truncated file
// fails the length check (ErrTruncated), a bit flip anywhere in the payload
// fails the checksum (ErrChecksum), and a future format bump fails the magic
// (ErrVersion). Readers verify the whole envelope before decoding a single
// payload byte, so a rejected snapshot can never half-mutate a world.
//
// The payload itself is written through Encoder and read back through
// Decoder: fixed-width big-endian integers, length-prefixed byte strings,
// and explicit section tags. Nothing in the encoding depends on map
// iteration order or pointer identity — callers must sort any map-derived
// data before encoding — so the same world state always serializes to the
// same bytes, whatever the worker or shard count of the writing run.
package snapshot

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"repro/internal/ident"
	"repro/internal/view"
)

// Magic identifies the container format and its version.
const Magic = "nylon-snap/v1\n"

// Typed envelope errors. Restore paths surface them unwrapped through
// errors.Is so callers (the sweep's prefix cache, the CLIs) can distinguish
// "re-run from scratch" conditions from real I/O failures.
var (
	// ErrTruncated reports a file shorter than its envelope declares —
	// the classic kill-mid-write artifact.
	ErrTruncated = errors.New("snapshot: truncated file")
	// ErrChecksum reports a payload whose SHA-256 does not match the
	// envelope's trailer.
	ErrChecksum = errors.New("snapshot: checksum mismatch")
	// ErrVersion reports an unknown magic string (a different format or a
	// version this binary does not speak).
	ErrVersion = errors.New("snapshot: unknown format version")
	// ErrCorrupt reports a payload that passed the checksum but does not
	// decode: a schema mismatch between writer and reader.
	ErrCorrupt = errors.New("snapshot: corrupt payload")
)

// Encode wraps a payload in the envelope.
func Encode(payload []byte) []byte {
	out := make([]byte, 0, len(Magic)+8+len(payload)+sha256.Size)
	out = append(out, Magic...)
	out = binary.BigEndian.AppendUint64(out, uint64(len(payload)))
	out = append(out, payload...)
	sum := sha256.Sum256(payload)
	return append(out, sum[:]...)
}

// Decode verifies the envelope and returns the payload.
func Decode(data []byte) ([]byte, error) {
	if len(data) < len(Magic) {
		return nil, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, ErrVersion
	}
	rest := data[len(Magic):]
	if len(rest) < 8 {
		return nil, ErrTruncated
	}
	n := binary.BigEndian.Uint64(rest)
	rest = rest[8:]
	if uint64(len(rest)) < n+sha256.Size {
		return nil, ErrTruncated
	}
	if uint64(len(rest)) > n+sha256.Size {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, uint64(len(rest))-n-sha256.Size)
	}
	payload := rest[:n]
	sum := sha256.Sum256(payload)
	if string(sum[:]) != string(rest[n:]) {
		return nil, ErrChecksum
	}
	return payload, nil
}

// WriteFile writes an enveloped payload atomically: temp file plus rename,
// so a kill mid-write leaves no partial snapshot under the final name.
func WriteFile(path string, payload []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := tmp.Write(Encode(payload)); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadFile reads and verifies a snapshot file, returning its payload.
func ReadFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Encoder serializes payload state as fixed-width big-endian fields. The
// zero Encoder is ready to use; Bytes returns the accumulated payload.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

// Section writes a 4-byte tag delimiting a payload section. Tags cost
// nothing at scale and turn a writer/reader schema drift into an immediate
// ErrCorrupt naming the section, instead of garbage decoded fields.
func (e *Encoder) Section(tag string) {
	if len(tag) != 4 {
		panic("snapshot: section tags are exactly 4 bytes")
	}
	e.buf = append(e.buf, tag...)
}

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool writes a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U16 writes a big-endian uint16.
func (e *Encoder) U16(v uint16) { e.buf = binary.BigEndian.AppendUint16(e.buf, v) }

// U32 writes a big-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.BigEndian.AppendUint32(e.buf, v) }

// U64 writes a big-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.BigEndian.AppendUint64(e.buf, v) }

// I64 writes a big-endian int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes a float64 as its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes32 writes a length-prefixed byte string (uint32 length).
func (e *Encoder) Bytes32(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Endpoint writes an ident.Endpoint.
func (e *Encoder) Endpoint(ep ident.Endpoint) {
	e.U32(uint32(ep.IP))
	e.U16(ep.Port)
}

// Desc writes a view.Descriptor.
func (e *Encoder) Desc(d view.Descriptor) {
	e.U64(uint64(d.ID))
	e.Endpoint(d.Addr)
	e.U8(uint8(d.Class))
	e.U32(d.Age)
}

// Decoder reads fields written by Encoder. Errors are sticky: after the
// first failure every read returns the zero value and Err reports the
// failure, so decode paths can run straight-line and check once per
// section. A fresh Decoder over a verified payload never panics on hostile
// input — every read bounds-checks.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over a payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the sticky decode error, nil if none.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unread payload bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Finish reports success only if no decode error occurred and the payload
// was consumed exactly.
func (d *Decoder) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d undecoded trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

// Fail records a semantic decode failure (a value that parsed but cannot
// describe a valid world, e.g. an out-of-range enum). Like every decoder
// error it is sticky and wraps ErrCorrupt.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail("need %d bytes at offset %d, have %d", n, d.off, len(d.buf)-d.off)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Section consumes and verifies a section tag written by Encoder.Section.
func (d *Decoder) Section(tag string) {
	b := d.take(4)
	if b != nil && string(b) != tag {
		d.fail("section %q, want %q at offset %d", b, tag, d.off-4)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail("invalid bool byte at offset %d", d.off-1)
		return false
	}
}

// U16 reads a big-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// I64 reads a big-endian int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes32 reads a length-prefixed byte string. The returned slice aliases
// the payload; copy it if it must outlive the decoder's buffer.
func (d *Decoder) Bytes32() []byte {
	n := int(d.U32())
	return d.take(n)
}

// Count reads a uint32 element count and validates it against what the
// remaining payload could possibly hold (elemSize is a lower bound on the
// encoded size of one element), so hostile counts fail fast instead of
// driving huge allocations.
func (d *Decoder) Count(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if n < 0 || n*elemSize > d.Remaining() {
		d.fail("count %d exceeds remaining payload (%d bytes)", n, d.Remaining())
		return 0
	}
	return n
}

// Endpoint reads an ident.Endpoint.
func (d *Decoder) Endpoint() ident.Endpoint {
	ip := ident.IP(d.U32())
	port := d.U16()
	return ident.Endpoint{IP: ip, Port: port}
}

// Desc reads a view.Descriptor.
func (d *Decoder) Desc() view.Descriptor {
	id := ident.NodeID(d.U64())
	addr := d.Endpoint()
	class := ident.NATClass(d.U8())
	age := d.U32()
	return view.Descriptor{ID: id, Addr: addr, Class: class, Age: age}
}
