package rt

import (
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/view"
)

func d(id uint64) view.Descriptor {
	return view.Descriptor{ID: ident.NodeID(id), Addr: ident.Endpoint{IP: ident.IP(id), Port: 1}}
}

func TestSetAndNext(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 100)
	rvp, ok := tb.Next(5, 50)
	if !ok || rvp.ID != 3 {
		t.Fatalf("Next = %v, %v; want RVP n3", rvp, ok)
	}
	// Live through the expiry instant.
	if _, ok := tb.Next(5, 100); !ok {
		t.Error("route dead at exactly ExpireAt")
	}
	if _, ok := tb.Next(5, 101); ok {
		t.Error("route alive past ExpireAt")
	}
	// Expired lookup purged the entry.
	if tb.Len() != 0 {
		t.Errorf("Len = %d after expiry, want 0", tb.Len())
	}
}

func TestSetIgnoresSelfAndNil(t *testing.T) {
	tb := New(1)
	tb.Set(1, d(3), 100)
	tb.Set(0, d(3), 100)
	tb.Set(5, view.Descriptor{}, 100)
	if tb.Len() != 0 {
		t.Errorf("Len = %d, want 0", tb.Len())
	}
}

func TestSetKeepsFresherRoute(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 200)
	tb.Set(5, d(4), 100) // staler: ignored
	rvp, _ := tb.Next(5, 0)
	if rvp.ID != 3 {
		t.Errorf("stale Set overwrote fresher route: RVP = %v", rvp.ID)
	}
	tb.Set(5, d(4), 300) // fresher: replaces
	rvp, _ = tb.Next(5, 0)
	if rvp.ID != 4 {
		t.Errorf("fresher Set did not replace: RVP = %v", rvp.ID)
	}
}

func TestDirectRoutePreferred(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 1000)
	// A direct hole with an earlier expiry still replaces an indirect route.
	tb.SetDirect(d(5), 500)
	if !tb.Direct(5, 0) {
		t.Error("SetDirect did not install direct route over fresher indirect one")
	}
	rvp, _ := tb.Next(5, 0)
	if rvp.ID != 5 {
		t.Errorf("Next = %v, want direct n5", rvp.ID)
	}
}

func TestDirect(t *testing.T) {
	tb := New(1)
	tb.SetDirect(d(5), 100)
	if !tb.Direct(5, 50) {
		t.Error("Direct = false for open hole")
	}
	if tb.Direct(5, 101) {
		t.Error("Direct = true after expiry")
	}
	tb.Set(6, d(3), 100)
	if tb.Direct(6, 50) {
		t.Error("Direct = true for indirect route")
	}
}

func TestTTL(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 150)
	if got := tb.TTL(5, 50); got != 100 {
		t.Errorf("TTL = %d, want 100", got)
	}
	if got := tb.TTL(5, 200); got != 0 {
		t.Errorf("TTL after expiry = %d, want 0", got)
	}
	if got := tb.TTL(99, 0); got != 0 {
		t.Errorf("TTL of unknown dest = %d, want 0", got)
	}
}

func TestPurge(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 100)
	tb.Set(6, d(3), 300)
	tb.Purge(200)
	if tb.Len() != 1 {
		t.Errorf("Len after purge = %d, want 1", tb.Len())
	}
	if _, ok := tb.Get(6, 200); !ok {
		t.Error("live entry purged")
	}
}

func TestDestinations(t *testing.T) {
	tb := New(1)
	tb.Set(9, d(3), 300)
	tb.Set(5, d(3), 100)
	tb.Set(7, d(3), 300)
	got := tb.Destinations(200)
	if len(got) != 2 || got[0] != 7 || got[1] != 9 {
		t.Errorf("Destinations = %v, want [n7 n9]", got)
	}
}

func TestString(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 100)
	if tb.String() == "" {
		t.Error("String() empty")
	}
}

// TestTTLNeverNegative is a property test: TTL is always >= 0 and an entry is
// routable iff its TTL is positive-or-zero at a time not later than expiry.
func TestTTLNeverNegative(t *testing.T) {
	f := func(expireRaw uint32, nowRaw uint32) bool {
		expire, now := int64(expireRaw), int64(nowRaw)
		tb := New(1)
		tb.Set(5, d(3), expire)
		ttl := tb.TTL(5, now)
		if ttl < 0 {
			return false
		}
		_, routable := tb.Next(5, now)
		// Entries to self are refused, so presence implies consistency.
		return routable == (expire >= now && tb.Len() >= 0 && ttl == expire-now) || (!routable && ttl == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRefreshVia(t *testing.T) {
	tb := New(1)
	tb.Set(5, d(3), 100)
	tb.Set(6, d(3), 200)
	tb.Set(7, d(4), 100)
	tb.RefreshVia(3, 500)
	if got := tb.TTL(5, 0); got != 500 {
		t.Errorf("TTL(5) = %d, want 500", got)
	}
	if got := tb.TTL(6, 0); got != 500 {
		t.Errorf("TTL(6) = %d, want 500", got)
	}
	// Entries through other RVPs are untouched.
	if got := tb.TTL(7, 0); got != 100 {
		t.Errorf("TTL(7) = %d, want 100", got)
	}
	// RefreshVia never shortens an entry.
	tb.RefreshVia(3, 50)
	if got := tb.TTL(5, 0); got != 500 {
		t.Errorf("TTL(5) after shorter refresh = %d, want 500", got)
	}
}
