package rt

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
)

// refTable is a map-backed reference implementation of the Set/Next/Purge
// semantics, used to cross-check the open-addressed index under heavy
// insert/expire churn.
type refTable struct {
	self    ident.NodeID
	entries map[ident.NodeID]Entry
}

func (r *refTable) set(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	if dest == r.self || dest.IsNil() || rvp.ID.IsNil() {
		return
	}
	if cur, ok := r.entries[dest]; ok {
		if cur.ExpireAt > expireAt && !(rvp.ID == dest && cur.RVP.ID != dest) {
			return
		}
	}
	r.entries[dest] = Entry{RVP: rvp, ExpireAt: expireAt}
}

func (r *refTable) next(dest ident.NodeID, now int64) (view.Descriptor, bool) {
	e, ok := r.entries[dest]
	if !ok {
		return view.Descriptor{}, false
	}
	if e.ExpireAt < now {
		delete(r.entries, dest)
		return view.Descriptor{}, false
	}
	return e.RVP, true
}

func (r *refTable) purge(now int64) {
	for dest, e := range r.entries {
		if e.ExpireAt < now {
			delete(r.entries, dest)
		}
	}
}

// TestIndexMatchesReference drives a long random workload of installs,
// lookups, refreshes and purges through the table and the reference and
// requires identical observable behaviour throughout.
func TestIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := New(1)
	ref := &refTable{self: 1, entries: map[ident.NodeID]Entry{}}
	rvpFor := func(id uint64) view.Descriptor {
		return view.Descriptor{ID: ident.NodeID(id), Addr: ident.Endpoint{IP: ident.IP(id)}}
	}
	now := int64(0)
	for step := 0; step < 200_000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // install/refresh a route
			dest := ident.NodeID(rng.Intn(400))
			rvp := rvpFor(uint64(rng.Intn(400)))
			exp := now + int64(rng.Intn(2000)-200)
			tb.Set(dest, rvp, exp)
			ref.set(dest, rvp, exp)
		case op < 8: // lookup
			dest := ident.NodeID(rng.Intn(400))
			gotRVP, gotOK := tb.Next(dest, now)
			wantRVP, wantOK := ref.next(dest, now)
			if gotOK != wantOK || gotRVP != wantRVP {
				t.Fatalf("step %d: Next(%v) = %v,%v; want %v,%v", step, dest, gotRVP, gotOK, wantRVP, wantOK)
			}
		case op < 9: // purge
			tb.Purge(now)
			ref.purge(now)
			if tb.Len() != len(ref.entries) {
				t.Fatalf("step %d: Len = %d, want %d", step, tb.Len(), len(ref.entries))
			}
		default: // time advances
			now += int64(rng.Intn(300))
		}
		if step%10_000 == 0 {
			// Deep check: every reference entry is found with the right
			// expiry, and the sizes agree.
			tb.Purge(now)
			ref.purge(now)
			if tb.Len() != len(ref.entries) {
				t.Fatalf("step %d: Len = %d, want %d", step, tb.Len(), len(ref.entries))
			}
			for dest, e := range ref.entries {
				got, ok := tb.Get(dest, now)
				if !ok || got != e {
					t.Fatalf("step %d: Get(%v) = %+v,%v; want %+v", step, dest, got, ok, e)
				}
			}
		}
	}
}

// TestSetSteadyStateAllocs locks in that refreshing existing routes and
// purging allocate nothing.
func TestSetSteadyStateAllocs(t *testing.T) {
	tb := New(1)
	rvp := view.Descriptor{ID: 7, Addr: ident.Endpoint{IP: 7}}
	for id := uint64(2); id < 200; id++ {
		tb.Set(ident.NodeID(id), rvp, 1000)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for id := uint64(2); id < 200; id++ {
			tb.Set(ident.NodeID(id), rvp, 2000)
		}
		tb.Purge(500)
	})
	if allocs != 0 {
		t.Errorf("steady-state Set/Purge allocates %.1f times, want 0", allocs)
	}
}
