package rt

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/intern"
	"repro/internal/view"
)

// refTable is a map-backed reference implementation of the Set/Next/Purge
// semantics, used to cross-check the open-addressed index under heavy
// insert/expire churn.
type refTable struct {
	self    ident.NodeID
	entries map[ident.NodeID]Entry
}

func (r *refTable) set(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	if dest == r.self || dest.IsNil() || rvp.ID.IsNil() {
		return
	}
	if cur, ok := r.entries[dest]; ok {
		if cur.ExpireAt > expireAt && !(rvp.ID == dest && cur.RVP.ID != dest) {
			return
		}
	}
	r.entries[dest] = Entry{RVP: rvp, ExpireAt: expireAt}
}

func (r *refTable) next(dest ident.NodeID, now int64) (view.Descriptor, bool) {
	e, ok := r.entries[dest]
	if !ok {
		return view.Descriptor{}, false
	}
	if e.ExpireAt < now {
		delete(r.entries, dest)
		return view.Descriptor{}, false
	}
	return e.RVP, true
}

func (r *refTable) purge(now int64) {
	for dest, e := range r.entries {
		if e.ExpireAt < now {
			delete(r.entries, dest)
		}
	}
}

// TestIndexMatchesReference drives a long random workload of installs,
// lookups, refreshes and purges through the table and the reference and
// requires identical observable behaviour throughout.
func TestIndexMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tb := New(1)
	ref := &refTable{self: 1, entries: map[ident.NodeID]Entry{}}
	rvpFor := func(id uint64) view.Descriptor {
		return view.Descriptor{ID: ident.NodeID(id), Addr: ident.Endpoint{IP: ident.IP(id)}}
	}
	now := int64(0)
	for step := 0; step < 200_000; step++ {
		switch op := rng.Intn(10); {
		case op < 5: // install/refresh a route
			dest := ident.NodeID(rng.Intn(400))
			rvp := rvpFor(uint64(rng.Intn(400)))
			exp := now + int64(rng.Intn(2000)-200)
			tb.Set(dest, rvp, exp)
			ref.set(dest, rvp, exp)
		case op < 8: // lookup
			dest := ident.NodeID(rng.Intn(400))
			gotRVP, gotOK := tb.Next(dest, now)
			wantRVP, wantOK := ref.next(dest, now)
			if gotOK != wantOK || gotRVP != wantRVP {
				t.Fatalf("step %d: Next(%v) = %v,%v; want %v,%v", step, dest, gotRVP, gotOK, wantRVP, wantOK)
			}
		case op < 9: // purge
			tb.Purge(now)
			ref.purge(now)
			if tb.Len() != len(ref.entries) {
				t.Fatalf("step %d: Len = %d, want %d", step, tb.Len(), len(ref.entries))
			}
		default: // time advances
			now += int64(rng.Intn(300))
		}
		if step%10_000 == 0 {
			// Deep check: every reference entry is found with the right
			// expiry, and the sizes agree.
			tb.Purge(now)
			ref.purge(now)
			if tb.Len() != len(ref.entries) {
				t.Fatalf("step %d: Len = %d, want %d", step, tb.Len(), len(ref.entries))
			}
			for dest, e := range ref.entries {
				got, ok := tb.Get(dest, now)
				if !ok || got != e {
					t.Fatalf("step %d: Get(%v) = %+v,%v; want %+v", step, dest, got, ok, e)
				}
			}
		}
	}
}

// TestSetSteadyStateAllocs locks in that refreshing existing routes and
// purging allocate nothing.
func TestSetSteadyStateAllocs(t *testing.T) {
	tb := New(1)
	rvp := view.Descriptor{ID: 7, Addr: ident.Endpoint{IP: 7}}
	for id := uint64(2); id < 200; id++ {
		tb.Set(ident.NodeID(id), rvp, 1000)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for id := uint64(2); id < 200; id++ {
			tb.Set(ident.NodeID(id), rvp, 2000)
		}
		tb.Purge(500)
	})
	if allocs != 0 {
		t.Errorf("steady-state Set/Purge allocates %.1f times, want 0", allocs)
	}
}

// TestSharedInternEquivalence drives the same random workload through two
// sets of tables: one sharing a single intern table (the per-shard layout of
// the simulator), one with private interns — requiring identical observable
// behaviour. Interning changes where descriptor bytes live, never what any
// call returns.
func TestSharedInternEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var in intern.Descriptors
	const nTables = 8
	shared := make([]*Table, nTables)
	private := make([]*Table, nTables)
	for i := range shared {
		shared[i] = NewShared(ident.NodeID(i+1), &in)
		private[i] = New(ident.NodeID(i + 1))
	}
	rvpFor := func(id uint64) view.Descriptor {
		return view.Descriptor{
			ID:    ident.NodeID(id),
			Addr:  ident.Endpoint{IP: ident.IP(id), Port: uint16(id % 7)},
			Class: ident.NATClass(id % 5),
			Age:   uint32(id % 3),
		}
	}
	now := int64(0)
	for step := 0; step < 100_000; step++ {
		i := rng.Intn(nTables)
		switch op := rng.Intn(10); {
		case op < 5:
			dest := ident.NodeID(rng.Intn(300))
			rvp := rvpFor(uint64(rng.Intn(300)))
			exp := now + int64(rng.Intn(2000)-200)
			shared[i].Set(dest, rvp, exp)
			private[i].Set(dest, rvp, exp)
		case op < 8:
			dest := ident.NodeID(rng.Intn(300))
			gs, oks := shared[i].Next(dest, now)
			gp, okp := private[i].Next(dest, now)
			if oks != okp || gs != gp {
				t.Fatalf("step %d table %d: Next(%v) = %v,%v vs %v,%v", step, i, dest, gs, oks, gp, okp)
			}
		case op < 9:
			shared[i].Purge(now)
			private[i].Purge(now)
			if shared[i].Len() != private[i].Len() {
				t.Fatalf("step %d table %d: Len %d vs %d", step, i, shared[i].Len(), private[i].Len())
			}
		default:
			now += int64(rng.Intn(300))
		}
	}
	for i := range shared {
		if shared[i].String() != private[i].String() {
			t.Fatalf("table %d diverged:\n shared  %v\n private %v", i, shared[i], private[i])
		}
	}
}

// TestIndexAdversarialIDs fills a table with destination IDs crafted to share
// an index home slot (IDs differing only in bits the Fibonacci fingerprint
// maps to the same cell for small tables), then churns them through
// expire/reinstall cycles: long probe chains and backward-shift deletion in
// clustered clusters must stay exact.
func TestIndexAdversarialIDs(t *testing.T) {
	tb := New(1)
	ref := &refTable{self: 1, entries: map[ident.NodeID]Entry{}}
	// Brute-force IDs whose fingerprints land in one home slot of the
	// initial table.
	var ids []ident.NodeID
	mask := initialSlots - 1
	for id := uint64(2); len(ids) < 120; id++ {
		if int(fpOf(ident.NodeID(id)))&mask == 0 {
			ids = append(ids, ident.NodeID(id))
		}
	}
	rvp := view.Descriptor{ID: 9999, Addr: ident.Endpoint{IP: 1, Port: 1}}
	rng := rand.New(rand.NewSource(3))
	now := int64(0)
	for round := 0; round < 300; round++ {
		for _, id := range ids {
			if rng.Intn(3) > 0 {
				exp := now + int64(rng.Intn(500))
				tb.Set(id, rvp, exp)
				ref.set(id, rvp, exp)
			}
		}
		now += int64(rng.Intn(400))
		tb.Purge(now)
		ref.purge(now)
		if tb.Len() != len(ref.entries) {
			t.Fatalf("round %d: Len = %d, want %d", round, tb.Len(), len(ref.entries))
		}
		for _, id := range ids {
			got, gok := tb.Get(id, now)
			want, wok := ref.entries[id]
			if wok && want.ExpireAt < now {
				wok = false
			}
			if gok != wok || (gok && got.RVP != want.RVP) {
				t.Fatalf("round %d: Get(%v) = %+v,%v; want %+v,%v", round, id, got, gok, want, wok)
			}
		}
	}
}
