// Package rt implements the Nylon routing table (Fig. 5 of the paper): a map
// from destination peers to the rendez-vous peer (RVP) through which they can
// be reached, with a time-to-live per entry.
//
// The RVP for a destination is the peer a node shuffled with to obtain the
// destination's descriptor. An entry whose RVP is the destination itself
// means direct communication is possible (a NAT hole is open). TTLs decay in
// real (virtual) time; expired entries are unusable and purged lazily.
//
// The table is optimized for the simulator's per-datagram access pattern
// (every received datagram installs or refreshes several routes, every
// shuffle period purges): rows live in parallel slices — destination IDs,
// RVP descriptors, and a compact expiry array the purge scan runs over —
// indexed by a small open-addressed hash table of int32 row indices. All
// operations are allocation-free once the table has reached its high-water
// size; a generic map was measurably slower here (hashing dominated) and a
// plain linear scan stopped winning past ~100 live routes.
package rt

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"repro/internal/ident"
	"repro/internal/view"
)

// Entry is one routing table row: the next RVP toward a destination and the
// absolute time at which the route expires.
type Entry struct {
	RVP      view.Descriptor
	ExpireAt int64 // virtual time, milliseconds
}

// Slot markers for the open-addressed index.
const (
	slotEmpty = -1
	slotDead  = -2 // tombstone: probe chains continue across it
)

// slot is one cell of the open-addressed index. The destination ID is
// duplicated here so a probe compares against a single cache line instead of
// chasing the row index into the dests array.
type slot struct {
	id  ident.NodeID
	row int32 // row index, slotEmpty or slotDead
}

// Table maps destinations to RVP entries. The zero Table is unusable;
// construct with New. Table is not safe for concurrent use.
type Table struct {
	self ident.NodeID
	// Parallel row storage: rvps[i] and expires[i] belong to dests[i].
	// Deletion swaps with the last row, so order is arbitrary.
	dests   []ident.NodeID
	rvps    []view.Descriptor
	expires []int64
	// slots is the open-addressed index. len(slots) is a power of two;
	// used counts non-empty cells (live rows plus tombstones) for the
	// load-factor check.
	slots []slot
	used  int
}

// New returns an empty routing table owned by the given peer.
func New(self ident.NodeID) *Table {
	return &Table{self: self}
}

// hashSlot returns the starting probe position for id.
func (t *Table) hashSlot(id ident.NodeID) int {
	// Fibonacci hashing: sequential IDs (as the simulator assigns) spread
	// across the table instead of clustering.
	h := uint64(id) * 0x9e3779b97f4a7c15
	return int(h >> (64 - uint(bits.TrailingZeros(uint(len(t.slots))))))
}

// find returns the row index of dest, or -1.
func (t *Table) find(dest ident.NodeID) int {
	if len(t.slots) == 0 {
		return -1
	}
	mask := len(t.slots) - 1
	for j := t.hashSlot(dest); ; j = (j + 1) & mask {
		s := t.slots[j]
		if s.row == slotEmpty {
			return -1
		}
		if s.id == dest && s.row >= 0 {
			return int(s.row)
		}
	}
}

// slotOf returns the index position whose slot points at row i. The row must
// exist.
func (t *Table) slotOf(i int) int {
	mask := len(t.slots) - 1
	for j := t.hashSlot(t.dests[i]); ; j = (j + 1) & mask {
		if t.slots[j].row == int32(i) {
			return j
		}
	}
}

// insert adds dest's row index to the index, growing or rebuilding first if
// the load factor would exceed 3/4.
func (t *Table) insert(dest ident.NodeID, row int) {
	if 4*(t.used+1) > 3*len(t.slots) {
		t.rebuild()
	}
	mask := len(t.slots) - 1
	for j := t.hashSlot(dest); ; j = (j + 1) & mask {
		if r := t.slots[j].row; r == slotEmpty || r == slotDead {
			if r == slotEmpty {
				t.used++
			}
			t.slots[j] = slot{id: dest, row: int32(row)}
			return
		}
	}
}

// rebuild re-indexes every live row into a slot array sized for roughly
// double the live count, shedding tombstones (and growing capacity when
// genuinely full). The headroom is what keeps rebuilds rare under the
// steady delete/insert churn of per-tick purges.
func (t *Table) rebuild() {
	want := 512 // floor sized for the typical steady-state table
	for want*3 < 8*(len(t.dests)+1) {
		want *= 2
	}
	if want > len(t.slots) {
		t.slots = make([]slot, want)
	}
	for j := range t.slots {
		t.slots[j] = slot{row: slotEmpty}
	}
	t.used = 0
	mask := len(t.slots) - 1
	for i, dest := range t.dests {
		for j := t.hashSlot(dest); ; j = (j + 1) & mask {
			if t.slots[j].row == slotEmpty {
				t.slots[j] = slot{id: dest, row: int32(i)}
				t.used++
				break
			}
		}
	}
}

// removeAt deletes row i by swapping in the last row and fixing the index.
func (t *Table) removeAt(i int) {
	t.slots[t.slotOf(i)].row = slotDead
	last := len(t.dests) - 1
	if i != last {
		t.slots[t.slotOf(last)].row = int32(i)
		t.dests[i] = t.dests[last]
		t.rvps[i] = t.rvps[last]
		t.expires[i] = t.expires[last]
	}
	t.dests = t.dests[:last]
	t.rvps[last] = view.Descriptor{}
	t.rvps = t.rvps[:last]
	t.expires = t.expires[:last]
}

// Set installs or refreshes the route to dest through rvp, expiring at the
// given time. A fresher (later-expiring) existing route through a different
// RVP is kept: routes are only replaced by strictly better information.
// Routes to the owner itself are ignored.
func (t *Table) Set(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	if dest == t.self || dest.IsNil() || rvp.ID.IsNil() {
		return
	}
	if i := t.find(dest); i >= 0 {
		// A direct route (RVP == dest) always beats an indirect one with
		// the same or earlier expiry; otherwise keep the later expiry.
		if t.expires[i] > expireAt && !(rvp.ID == dest && t.rvps[i].ID != dest) {
			return
		}
		t.rvps[i] = rvp
		t.expires[i] = expireAt
		return
	}
	if t.dests == nil {
		// Reserve the typical steady-state size up front: growing three
		// parallel arrays through append doubling was a large share of
		// the simulator's total allocation (a Nylon table averages ~120
		// live routes at the paper's parameters).
		const initialRows = 192
		t.dests = make([]ident.NodeID, 0, initialRows)
		t.rvps = make([]view.Descriptor, 0, initialRows)
		t.expires = make([]int64, 0, initialRows)
	}
	t.insert(dest, len(t.dests))
	t.dests = append(t.dests, dest)
	t.rvps = append(t.rvps, rvp)
	t.expires = append(t.expires, expireAt)
}

// SetDirect records that dest itself is directly reachable until expireAt
// (update_next_RVP(p, p, HOLE_TIMEOUT) in the paper's pseudocode).
func (t *Table) SetDirect(dest view.Descriptor, expireAt int64) {
	t.Set(dest.ID, dest, expireAt)
}

// Next returns the next RVP to use for dest, per the paper's next_RVP(): the
// destination itself when a direct hole is open, otherwise the stored RVP.
// The boolean is false when no live route exists. Public destinations never
// need a table entry and are handled by the caller.
func (t *Table) Next(dest ident.NodeID, now int64) (view.Descriptor, bool) {
	i := t.find(dest)
	if i < 0 {
		return view.Descriptor{}, false
	}
	if t.expires[i] < now {
		t.removeAt(i)
		return view.Descriptor{}, false
	}
	return t.rvps[i], true
}

// Direct reports whether a live direct route (open hole) to dest exists.
func (t *Table) Direct(dest ident.NodeID, now int64) bool {
	rvp, ok := t.Next(dest, now)
	return ok && rvp.ID == dest
}

// TTL returns the remaining lifetime, in milliseconds, of the route to dest,
// or zero if none exists. The result is what a peer advertises alongside the
// destination's descriptor during a shuffle.
func (t *Table) TTL(dest ident.NodeID, now int64) int64 {
	i := t.find(dest)
	if i < 0 || t.expires[i] < now {
		return 0
	}
	if ttl := t.expires[i] - now; ttl >= 0 {
		return ttl
	}
	// Guard against overflow on pathological inputs.
	return 0
}

// RefreshVia extends, to at least expireAt, the expiry of every entry whose
// RVP is the given peer. The paper's §4 prescribes it: TTLs are updated
// "every time a message from one RVP stored in the routing table is
// received" — a datagram from the RVP proves the hole toward it alive, which
// is the local half of the route's lifetime.
func (t *Table) RefreshVia(rvp ident.NodeID, expireAt int64) {
	for i := range t.rvps {
		if t.rvps[i].ID == rvp && t.expires[i] < expireAt {
			t.expires[i] = expireAt
		}
	}
}

// Purge removes expired entries (decrease_routing_table_ttls in the paper's
// pseudocode; this implementation stores absolute expiry times instead of
// decrementing counters, which is equivalent and cheaper). The scan runs
// over the compact expiry array, touching descriptor rows only on removal.
func (t *Table) Purge(now int64) {
	for i := 0; i < len(t.expires); {
		if t.expires[i] < now {
			t.removeAt(i)
			continue // the swapped-in row still needs checking
		}
		i++
	}
}

// Len returns the number of entries, including any not yet purged.
func (t *Table) Len() int { return len(t.dests) }

// Destinations returns the destinations with live routes at the given time,
// sorted for determinism.
func (t *Table) Destinations(now int64) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(t.dests))
	for i, dest := range t.dests {
		if t.expires[i] >= now {
			out = append(out, dest)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get returns the raw entry for dest, if present and live.
func (t *Table) Get(dest ident.NodeID, now int64) (Entry, bool) {
	i := t.find(dest)
	if i < 0 || t.expires[i] < now {
		return Entry{}, false
	}
	return Entry{RVP: t.rvps[i], ExpireAt: t.expires[i]}, true
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rt(%v, %d entries):", t.self, len(t.dests))
	order := make([]int, len(t.dests))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.dests[order[a]] < t.dests[order[b]] })
	for _, i := range order {
		fmt.Fprintf(&b, " %v->%v@%d", t.dests[i], t.rvps[i].ID, t.expires[i])
	}
	return b.String()
}
