// Package rt implements the Nylon routing table (Fig. 5 of the paper): a map
// from destination peers to the rendez-vous peer (RVP) through which they can
// be reached, with a time-to-live per entry.
//
// The RVP for a destination is the peer a node shuffled with to obtain the
// destination's descriptor. An entry whose RVP is the destination itself
// means direct communication is possible (a NAT hole is open). TTLs decay in
// real (virtual) time; expired entries are unusable and purged lazily.
//
// The table is optimized for the simulator's per-datagram access pattern
// (every received datagram installs or refreshes several routes, every
// shuffle period purges) and for its memory profile (one table per simulated
// peer, a hundred-odd rows each, hundreds of thousands of tables):
//
//   - Rows live whole — destination ID, interned RVP handle, expiry — in
//     fixed-size chunks, 24 bytes per row instead of the 40 a raw
//     descriptor row costs. Row-major beats the parallel-column layout an
//     earlier version used because the dominant access is a point access
//     (find a destination, check its expiry, rewrite its RVP), which now
//     touches one or two cache lines instead of three; the purge scan the
//     columns favoured is paced down by the caller (see Purge) and runs
//     sequentially either way.
//     Chunks are never copied: growing the table allocates one more chunk,
//     so the bytes ever allocated equal the high-water row count instead of
//     the ~2× that slice doubling costs (the difference is measurable when
//     there is one table per simulated peer). RVP descriptors are resolved
//     through an intern table (see package intern), normally shared by every
//     table of a simulation shard: the same peer's descriptor is referenced
//     by thousands of routing rows, so sharing turns O(rows) descriptor
//     storage into O(distinct peers).
//   - The index is a small open-addressed hash of 8-byte {fingerprint, row}
//     cells with backward-shift deletion, so the steady delete/insert churn
//     of per-tick purges leaves no tombstones behind and the table never
//     rehashes except to grow.
//
// All operations are allocation-free once the table has reached its
// high-water size; a generic map was measurably slower here (hashing
// dominated) and a plain linear scan stopped winning past ~100 live routes.
package rt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ident"
	"repro/internal/intern"
	"repro/internal/view"
)

// Entry is one routing table row: the next RVP toward a destination and the
// absolute time at which the route expires.
type Entry struct {
	RVP      view.Descriptor
	ExpireAt int64 // virtual time, milliseconds
}

// A slot of the open-addressed index packs an 8-bit hash fingerprint (top
// byte) with a 1-based row index (low 24 bits); 0 marks an empty cell.
// Probes reject on the fingerprint without touching the row storage and only
// confirm a match against the dests column, which halves the row loads of a
// find at zero footprint cost (a separate fingerprint array — doubling the
// index, which exists once per simulated peer — was tried earlier and lost).
// 24 bits cap a table at ~16M rows; tables hold one row per known peer.
type slot = uint32

// slotRowMask extracts the 1-based row index of a cell; the byte above it is
// the fingerprint.
const slotRowMask = 1<<24 - 1

// rowChunkSize is the row-storage granularity: 64 rows (1.25 KB) per chunk.
// Two chunks cover the median Nylon table at the paper's parameters; small
// tables (real nodes, tests) stay at one.
const rowChunkSize = 64

// initialSlots sizes a table's first index: holds up to ~170 rows at the 2/3
// growth bound, which covers most tables for a whole run.
const initialSlots = 256

// rtRow is one routing-table row: 24 bytes (the Handle pads to 8), at most
// two cache lines, usually one.
type rtRow struct {
	dest   ident.NodeID
	expire int64
	rvph   intern.Handle
}

// rowChunk is one block of rows.
type rowChunk struct {
	r [rowChunkSize]rtRow
}

// Table maps destinations to RVP entries. The zero Table is unusable;
// construct with New or NewShared. Table is not safe for concurrent use.
type Table struct {
	self ident.NodeID
	in   *intern.Descriptors
	// Chunked row storage: row i lives at rows[i/64] offset i%64. Deletion
	// swaps with the last row, so order is arbitrary. nrows is the live row
	// count.
	rows  []*rowChunk
	nrows int
	// Backward-shift deletion keeps it tombstone-free, so its load is
	// always exactly nrows/len(slots).
	slots []slot
	// memoDest/memoRow cache the last successful find: the per-datagram
	// pattern installs a route for a peer and immediately looks the same
	// peer up again (install src → answer src), so a one-entry cache
	// removes the second index probe and its row load. memoRow is -1 when
	// empty; removeAt invalidates it (rows move), in-place rewrites and
	// appends keep it valid (row indices are stable).
	memoDest ident.NodeID
	memoRow  int
	// minExpire is a conservative lower bound on the earliest expiry of any
	// row (maxInt64 when empty): installs lower it, removals and refreshes
	// only raise the true minimum and leave it untouched. Purge skips its
	// whole scan while now <= minExpire — no row can have expired — which at
	// simulation scale (one purge per peer per period against 90 s TTLs)
	// removes ~98% of the scans. Observable behaviour is identical: the
	// bound never claims a live row expired, and whenever any row truly
	// expired the scan still runs.
	minExpire int64
}

// noExpiry is minExpire's empty-table sentinel.
const noExpiry = int64(^uint64(0) >> 1)

// noteExpiry lowers the minimum-expiry bound to cover a row installed or
// rewritten with the given expiry.
func (t *Table) noteExpiry(e int64) {
	if e < t.minExpire {
		t.minExpire = e
	}
}

// rowAt returns row i; dest/rvpH/expire/setRow are its point accessors.
func (t *Table) rowAt(i int) *rtRow       { return &t.rows[i/rowChunkSize].r[i%rowChunkSize] }
func (t *Table) dest(i int) ident.NodeID  { return t.rowAt(i).dest }
func (t *Table) rvpH(i int) intern.Handle { return t.rowAt(i).rvph }
func (t *Table) expire(i int) int64       { return t.rowAt(i).expire }
func (t *Table) setRow(i int, d ident.NodeID, h intern.Handle, e int64) {
	*t.rowAt(i) = rtRow{dest: d, expire: e, rvph: h}
}

// home returns the starting probe position of id in the current index.
func (t *Table) home(id ident.NodeID) int {
	return int(fpOf(id)) & (len(t.slots) - 1)
}

// fpBits returns id's fingerprint in cell position: the top byte of the hash,
// disjoint from the low bits home consumes for any index of ≤16M cells.
func fpBits(id ident.NodeID) slot {
	return slot(fpOf(id)) &^ slotRowMask
}

// appendRow adds a row at index nrows, allocating a chunk when the last one
// is full.
func (t *Table) appendRow(d ident.NodeID, h intern.Handle, e int64) {
	if t.nrows == len(t.rows)*rowChunkSize {
		t.rows = append(t.rows, &rowChunk{})
	}
	t.nrows++
	t.setRow(t.nrows-1, d, h, e)
	t.memoDest, t.memoRow = d, t.nrows-1
}

// New returns an empty routing table owned by the given peer, with a private
// descriptor intern table.
func New(self ident.NodeID) *Table {
	return NewShared(self, &intern.Descriptors{})
}

// NewShared is New with a caller-owned descriptor intern table, shared by
// every routing table whose operations are serialized on one goroutine (the
// engines of one simulation shard). Sharing changes nothing observable — the
// equivalence test pins it — only where the descriptor bytes live. in must
// not be nil.
func NewShared(self ident.NodeID, in *intern.Descriptors) *Table {
	if in == nil {
		panic("rt: NewShared called with nil intern table")
	}
	return &Table{self: self, in: in, minExpire: noExpiry, memoRow: -1}
}

// fpOf returns the index fingerprint of a destination ID: Fibonacci hashing,
// so the sequential IDs the simulator assigns spread across the table instead
// of clustering.
func fpOf(id ident.NodeID) uint32 {
	return uint32((uint64(id) * 0x9e3779b97f4a7c15) >> 32)
}

// find returns the row index of dest, or -1.
func (t *Table) find(dest ident.NodeID) int {
	if t.memoRow >= 0 && t.memoDest == dest {
		return t.memoRow
	}
	if len(t.slots) == 0 {
		return -1
	}
	mask := len(t.slots) - 1
	fp := fpBits(dest)
	for j := t.home(dest); ; j = (j + 1) & mask {
		cell := t.slots[j]
		if cell == 0 {
			return -1
		}
		if cell&^slotRowMask == fp {
			if row := int(cell & slotRowMask); t.dest(row-1) == dest {
				t.memoDest, t.memoRow = dest, row-1
				return row - 1
			}
		}
	}
}

// Warm touches the index cell and row a subsequent find(dest) will read,
// with pure loads and no mutation, returning the loaded bits so callers can
// fold them into a sink the compiler cannot elide. Issuing the probes for a
// whole batch of destinations back-to-back lets their cache misses resolve
// in parallel, where the branchy install loop that follows walks the same
// dependent load chains one at a time. Only the home cell is probed: at the
// index's 2/3 load bound almost every find resolves there or in the
// adjacent cell of the same cache line.
func (t *Table) Warm(dest ident.NodeID) uint64 {
	if len(t.slots) == 0 {
		return 0
	}
	cell := t.slots[t.home(dest)]
	if row := int(cell & slotRowMask); row > 0 && row <= t.nrows {
		return uint64(cell) + uint64(t.rowAt(row-1).expire)
	}
	return uint64(cell)
}

// slotOf returns the index position whose cell points at row i. The row must
// exist.
func (t *Table) slotOf(i int) int {
	mask := len(t.slots) - 1
	d := t.dest(i)
	want := fpBits(d) | slot(i+1)
	for j := t.home(d); ; j = (j + 1) & mask {
		if t.slots[j] == want {
			return j
		}
	}
}

// insert adds dest's row index to the index, growing first if the load would
// exceed 2/3.
func (t *Table) insert(dest ident.NodeID, row int) {
	if 3*(t.nrows+1) > 2*len(t.slots) {
		t.grow()
	}
	mask := len(t.slots) - 1
	for j := t.home(dest); ; j = (j + 1) & mask {
		if t.slots[j] == 0 {
			t.slots[j] = fpBits(dest) | slot(row+1)
			return
		}
	}
}

// grow re-indexes every row into a slot array sized to keep the load below
// 2/3 with room to spare.
func (t *Table) grow() {
	want := initialSlots
	for 3*(t.nrows+1) > 2*want {
		want *= 2
	}
	t.slots = make([]slot, want)
	mask := want - 1
	for i := 0; i < t.nrows; i++ {
		d := t.dest(i)
		for j := t.home(d); ; j = (j + 1) & mask {
			if t.slots[j] == 0 {
				t.slots[j] = fpBits(d) | slot(i+1)
				break
			}
		}
	}
}

// deleteSlot empties index cell j, shifting the following cluster back so no
// tombstone is left behind (standard backward-shift deletion for linear
// probing).
func (t *Table) deleteSlot(j int) {
	mask := len(t.slots) - 1
	k := j
	for {
		k = (k + 1) & mask
		cell := t.slots[k]
		if cell == 0 {
			break
		}
		// The entry at k may fill the hole iff its home position lies at or
		// before the hole on the cyclic probe path ending at k.
		home := t.home(t.dest(int(cell&slotRowMask) - 1))
		if (k-home)&mask >= (k-j)&mask {
			t.slots[j] = cell
			j = k
		}
	}
	t.slots[j] = 0
}

// removeAt deletes row i by swapping in the last row and fixing the index.
func (t *Table) removeAt(i int) {
	t.deleteSlot(t.slotOf(i))
	last := t.nrows - 1
	if i != last {
		// slotOf(last) must run after the shift above: the delete may have
		// moved the last row's cell.
		k := t.slotOf(last)
		t.slots[k] = t.slots[k]&^slotRowMask | slot(i+1)
		t.setRow(i, t.dest(last), t.rvpH(last), t.expire(last))
	}
	t.setRow(last, 0, 0, 0)
	t.nrows = last
	t.memoRow = -1
	if last == 0 {
		t.minExpire = noExpiry
	}
}

// Set installs or refreshes the route to dest through rvp, expiring at the
// given time. A fresher (later-expiring) existing route through a different
// RVP is kept: routes are only replaced by strictly better information.
// Routes to the owner itself are ignored.
func (t *Table) Set(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	if dest == t.self || dest.IsNil() || rvp.ID.IsNil() {
		return
	}
	if i := t.find(dest); i >= 0 {
		// A direct route (RVP == dest) always beats an indirect one with
		// the same or earlier expiry; otherwise keep the later expiry.
		r := t.rowAt(i)
		if r.expire > expireAt && !(rvp.ID == dest && t.in.At(r.rvph).ID != dest) {
			return
		}
		r.rvph = t.in.Intern(rvp)
		r.expire = expireAt
		t.noteExpiry(expireAt)
		return
	}
	t.insert(dest, t.nrows)
	t.appendRow(dest, t.in.Intern(rvp), expireAt)
	t.noteExpiry(expireAt)
}

// Intern resolves the canonical handle of a descriptor in the table's intern
// table, for callers that install the same RVP under many destinations (one
// received datagram installs its Via as the route to every entry it carried)
// and want to hash the descriptor once. Handles are only meaningful with
// SetInterned on the same table (or tables sharing the intern table).
func (t *Table) Intern(rvp view.Descriptor) intern.Handle {
	return t.in.Intern(rvp)
}

// SetInterned is Set with a pre-resolved RVP handle: rvpID and h must be the
// ID and Intern handle of the same descriptor. It exists for the
// per-datagram path, where one Via descriptor becomes the RVP of up to a
// dozen Set calls — interning it once removes the descriptor hash from all
// but the first.
func (t *Table) SetInterned(dest, rvpID ident.NodeID, h intern.Handle, expireAt int64) {
	if dest == t.self || dest.IsNil() || rvpID.IsNil() {
		return
	}
	if i := t.find(dest); i >= 0 {
		r := t.rowAt(i)
		if r.expire > expireAt && !(rvpID == dest && t.in.At(r.rvph).ID != dest) {
			return
		}
		r.rvph = h
		r.expire = expireAt
		t.noteExpiry(expireAt)
		return
	}
	t.insert(dest, t.nrows)
	t.appendRow(dest, h, expireAt)
	t.noteExpiry(expireAt)
}

// SetDirect records that dest itself is directly reachable until expireAt
// (update_next_RVP(p, p, HOLE_TIMEOUT) in the paper's pseudocode).
func (t *Table) SetDirect(dest view.Descriptor, expireAt int64) {
	t.Set(dest.ID, dest, expireAt)
}

// Next returns the next RVP to use for dest, per the paper's next_RVP(): the
// destination itself when a direct hole is open, otherwise the stored RVP.
// The boolean is false when no live route exists. Public destinations never
// need a table entry and are handled by the caller.
func (t *Table) Next(dest ident.NodeID, now int64) (view.Descriptor, bool) {
	i := t.find(dest)
	if i < 0 {
		return view.Descriptor{}, false
	}
	if t.expire(i) < now {
		t.removeAt(i)
		return view.Descriptor{}, false
	}
	return t.in.At(t.rvpH(i)), true
}

// Direct reports whether a live direct route (open hole) to dest exists.
func (t *Table) Direct(dest ident.NodeID, now int64) bool {
	rvp, ok := t.Next(dest, now)
	return ok && rvp.ID == dest
}

// TTL returns the remaining lifetime, in milliseconds, of the route to dest,
// or zero if none exists. The result is what a peer advertises alongside the
// destination's descriptor during a shuffle.
func (t *Table) TTL(dest ident.NodeID, now int64) int64 {
	i := t.find(dest)
	if i < 0 || t.expire(i) < now {
		return 0
	}
	if ttl := t.expire(i) - now; ttl >= 0 {
		return ttl
	}
	// Guard against overflow on pathological inputs.
	return 0
}

// RefreshVia extends, to at least expireAt, the expiry of every entry whose
// RVP is the given peer. The paper's §4 prescribes it: TTLs are updated
// "every time a message from one RVP stored in the routing table is
// received" — a datagram from the RVP proves the hole toward it alive, which
// is the local half of the route's lifetime.
func (t *Table) RefreshVia(rvp ident.NodeID, expireAt int64) {
	for i := 0; i < t.nrows; i++ {
		r := t.rowAt(i)
		if t.in.At(r.rvph).ID == rvp && r.expire < expireAt {
			r.expire = expireAt
		}
	}
}

// Purge removes expired entries (decrease_routing_table_ttls in the paper's
// pseudocode; this implementation stores absolute expiry times instead of
// decrementing counters, which is equivalent and cheaper). The scan runs
// sequentially over the row chunks, touching the index only on removal.
func (t *Table) Purge(now int64) {
	if now <= t.minExpire {
		// No row can have expired: every expiry is >= minExpire >= now.
		return
	}
	newMin := noExpiry
	for i := 0; i < t.nrows; {
		e := t.expire(i)
		if e < now {
			t.removeAt(i)
			continue // the swapped-in row still needs checking
		}
		if e < newMin {
			newMin = e
		}
		i++
	}
	// The scan visited every surviving row, so the bound is exact again.
	t.minExpire = newMin
}

// Len returns the number of entries, including any not yet purged.
func (t *Table) Len() int { return t.nrows }

// EachRow visits every row in storage order, resolving the RVP handle to its
// descriptor. Checkpoint capture uses it: storage order is part of the
// table's exact state (deletion swaps depend on it), so replaying rows in
// this order through LoadRow rebuilds an identical table. Expired rows are
// visited too — they are still live state (RefreshVia can resurrect them
// until a purge runs).
func (t *Table) EachRow(fn func(dest ident.NodeID, rvp view.Descriptor, expireAt int64)) {
	for i := 0; i < t.nrows; i++ {
		r := t.rowAt(i)
		fn(r.dest, t.in.At(r.rvph), r.expire)
	}
}

// LoadRow appends a row verbatim during checkpoint restore: no freshness
// arbitration (Set's job, already done by the original run), no self or nil
// filtering, expired rows accepted. Rows must be loaded in EachRow order
// into a fresh table; the RVP descriptor is re-interned through the table's
// own intern table, since handles do not survive serialization.
func (t *Table) LoadRow(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	t.insert(dest, t.nrows)
	t.appendRow(dest, t.in.Intern(rvp), expireAt)
	t.noteExpiry(expireAt)
}

// MinExpireBound returns the table's conservative earliest-expiry bound, and
// RestoreMinExpire restores it. The bound is pure scan-avoidance state — a
// lower bound never claims a live row expired — but capturing it keeps a
// restored table byte-identical to the original rather than merely
// equivalent.
func (t *Table) MinExpireBound() int64 { return t.minExpire }

// RestoreMinExpire sets the earliest-expiry bound to a captured value. Call
// after the LoadRow replay; v must be a valid lower bound for the loaded
// rows (any value MinExpireBound returned for the same rows is).
func (t *Table) RestoreMinExpire(v int64) { t.minExpire = v }

// Destinations returns the destinations with live routes at the given time,
// sorted for determinism.
func (t *Table) Destinations(now int64) []ident.NodeID {
	out := make([]ident.NodeID, 0, t.nrows)
	for i := 0; i < t.nrows; i++ {
		if t.expire(i) >= now {
			out = append(out, t.dest(i))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get returns the raw entry for dest, if present and live.
func (t *Table) Get(dest ident.NodeID, now int64) (Entry, bool) {
	i := t.find(dest)
	if i < 0 || t.expire(i) < now {
		return Entry{}, false
	}
	return Entry{RVP: t.in.At(t.rvpH(i)), ExpireAt: t.expire(i)}, true
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rt(%v, %d entries):", t.self, t.nrows)
	order := make([]int, t.nrows)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return t.dest(order[a]) < t.dest(order[b]) })
	for _, i := range order {
		fmt.Fprintf(&b, " %v->%v@%d", t.dest(i), t.in.At(t.rvpH(i)).ID, t.expire(i))
	}
	return b.String()
}
