// Package rt implements the Nylon routing table (Fig. 5 of the paper): a map
// from destination peers to the rendez-vous peer (RVP) through which they can
// be reached, with a time-to-live per entry.
//
// The RVP for a destination is the peer a node shuffled with to obtain the
// destination's descriptor. An entry whose RVP is the destination itself
// means direct communication is possible (a NAT hole is open). TTLs decay in
// real (virtual) time; expired entries are unusable and purged lazily.
package rt

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ident"
	"repro/internal/view"
)

// Entry is one routing table row: the next RVP toward a destination and the
// absolute time at which the route expires.
type Entry struct {
	RVP      view.Descriptor
	ExpireAt int64 // virtual time, milliseconds
}

// Table maps destinations to RVP entries. The zero Table is unusable;
// construct with New. Table is not safe for concurrent use.
type Table struct {
	self    ident.NodeID
	entries map[ident.NodeID]Entry
}

// New returns an empty routing table owned by the given peer.
func New(self ident.NodeID) *Table {
	return &Table{self: self, entries: make(map[ident.NodeID]Entry)}
}

// Set installs or refreshes the route to dest through rvp, expiring at the
// given time. A fresher (later-expiring) existing route through a different
// RVP is kept: routes are only replaced by strictly better information.
// Routes to the owner itself are ignored.
func (t *Table) Set(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
	if dest == t.self || dest.IsNil() || rvp.ID.IsNil() {
		return
	}
	if cur, ok := t.entries[dest]; ok {
		// A direct route (RVP == dest) always beats an indirect one with
		// the same or earlier expiry; otherwise keep the later expiry.
		if cur.ExpireAt > expireAt && !(rvp.ID == dest && cur.RVP.ID != dest) {
			return
		}
	}
	t.entries[dest] = Entry{RVP: rvp, ExpireAt: expireAt}
}

// SetDirect records that dest itself is directly reachable until expireAt
// (update_next_RVP(p, p, HOLE_TIMEOUT) in the paper's pseudocode).
func (t *Table) SetDirect(dest view.Descriptor, expireAt int64) {
	t.Set(dest.ID, dest, expireAt)
}

// Next returns the next RVP to use for dest, per the paper's next_RVP(): the
// destination itself when a direct hole is open, otherwise the stored RVP.
// The boolean is false when no live route exists. Public destinations never
// need a table entry and are handled by the caller.
func (t *Table) Next(dest ident.NodeID, now int64) (view.Descriptor, bool) {
	e, ok := t.entries[dest]
	if !ok {
		return view.Descriptor{}, false
	}
	if e.ExpireAt < now {
		delete(t.entries, dest)
		return view.Descriptor{}, false
	}
	return e.RVP, true
}

// Direct reports whether a live direct route (open hole) to dest exists.
func (t *Table) Direct(dest ident.NodeID, now int64) bool {
	rvp, ok := t.Next(dest, now)
	return ok && rvp.ID == dest
}

// TTL returns the remaining lifetime, in milliseconds, of the route to dest,
// or zero if none exists. The result is what a peer advertises alongside the
// destination's descriptor during a shuffle.
func (t *Table) TTL(dest ident.NodeID, now int64) int64 {
	e, ok := t.entries[dest]
	if !ok || e.ExpireAt < now {
		return 0
	}
	if ttl := e.ExpireAt - now; ttl >= 0 {
		return ttl
	}
	// Guard against overflow on pathological inputs.
	return 0
}

// RefreshVia extends, to at least expireAt, the expiry of every entry whose
// RVP is the given peer. The paper's §4 prescribes it: TTLs are updated
// "every time a message from one RVP stored in the routing table is
// received" — a datagram from the RVP proves the hole toward it alive, which
// is the local half of the route's lifetime.
func (t *Table) RefreshVia(rvp ident.NodeID, expireAt int64) {
	for dest, e := range t.entries {
		if e.RVP.ID == rvp && e.ExpireAt < expireAt {
			e.ExpireAt = expireAt
			t.entries[dest] = e
		}
	}
}

// Purge removes expired entries (decrease_routing_table_ttls in the paper's
// pseudocode; this implementation stores absolute expiry times instead of
// decrementing counters, which is equivalent and cheaper).
func (t *Table) Purge(now int64) {
	for dest, e := range t.entries {
		if e.ExpireAt < now {
			delete(t.entries, dest)
		}
	}
}

// Len returns the number of entries, including any not yet purged.
func (t *Table) Len() int { return len(t.entries) }

// Destinations returns the destinations with live routes at the given time,
// sorted for determinism.
func (t *Table) Destinations(now int64) []ident.NodeID {
	out := make([]ident.NodeID, 0, len(t.entries))
	for dest, e := range t.entries {
		if e.ExpireAt >= now {
			out = append(out, dest)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Get returns the raw entry for dest, if present and live.
func (t *Table) Get(dest ident.NodeID, now int64) (Entry, bool) {
	e, ok := t.entries[dest]
	if !ok || e.ExpireAt < now {
		return Entry{}, false
	}
	return e, true
}

// String implements fmt.Stringer.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "rt(%v, %d entries):", t.self, len(t.entries))
	dests := make([]ident.NodeID, 0, len(t.entries))
	for d := range t.entries {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	for _, d := range dests {
		e := t.entries[d]
		fmt.Fprintf(&b, " %v->%v@%d", d, e.RVP.ID, e.ExpireAt)
	}
	return b.String()
}
