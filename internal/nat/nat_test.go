package nat

import (
	"testing"

	"repro/internal/ident"
)

const ttl = 90_000 // 90 s, the paper's hole timeout

var (
	priv = ident.Endpoint{IP: 0x0a000001, Port: 5000} // 10.0.0.1:5000
	rem1 = ident.Endpoint{IP: 0x01010101, Port: 7000} // 1.1.1.1:7000
	rem2 = ident.Endpoint{IP: 0x02020202, Port: 8000} // 2.2.2.2:8000
	// rem1alt shares rem1's IP but uses a different port.
	rem1alt = ident.Endpoint{IP: 0x01010101, Port: 7001}
	pubIP   = ident.IP(0x05050505)
)

func newDev(t *testing.T, c ident.NATClass) *Device {
	t.Helper()
	return NewDevice(c, pubIP, ttl)
}

func TestNewDevicePanicsOnPublic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice(Public) did not panic")
		}
	}()
	NewDevice(ident.Public, pubIP, ttl)
}

func TestNewDevicePanicsOnBadTTL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice with ttl=0 did not panic")
		}
	}()
	NewDevice(ident.FullCone, pubIP, 0)
}

// TestConeMappingStable verifies that FC, RC and PRC NATs assign the same
// public endpoint to all sessions from one private endpoint (paper §2.1).
func TestConeMappingStable(t *testing.T) {
	for _, c := range []ident.NATClass{ident.FullCone, ident.RestrictedCone, ident.PortRestrictedCone} {
		d := newDev(t, c)
		p1 := d.Outbound(0, priv, rem1)
		p2 := d.Outbound(10, priv, rem2)
		if p1 != p2 {
			t.Errorf("%v: mappings differ across destinations: %v vs %v", c, p1, p2)
		}
		if p1.IP != pubIP {
			t.Errorf("%v: mapping uses IP %v, want %v", c, p1.IP, pubIP)
		}
	}
}

// TestSymmetricMappingPerDestination verifies that a symmetric NAT assigns a
// distinct port per destination but keeps the same public IP (paper §2.1).
func TestSymmetricMappingPerDestination(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	p1 := d.Outbound(0, priv, rem1)
	p2 := d.Outbound(0, priv, rem2)
	if p1 == p2 {
		t.Fatalf("symmetric NAT reused mapping %v for two destinations", p1)
	}
	if p1.IP != p2.IP || p1.IP != pubIP {
		t.Errorf("symmetric NAT changed public IP: %v, %v", p1, p2)
	}
	// Same destination again: mapping must be stable.
	if p3 := d.Outbound(5, priv, rem1); p3 != p1 {
		t.Errorf("mapping toward same destination changed: %v vs %v", p3, p1)
	}
}

func TestFullConeAcceptsAnyoneAfterOutbound(t *testing.T) {
	d := newDev(t, ident.FullCone)
	pub := d.Outbound(0, priv, rem1)
	// A peer never contacted may send in.
	got, ok := d.Inbound(100, rem2, pub)
	if !ok || got != priv {
		t.Fatalf("full cone rejected unsolicited inbound: ok=%v got=%v", ok, got)
	}
}

func TestRestrictedConeFiltersByIP(t *testing.T) {
	d := newDev(t, ident.RestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	if _, ok := d.Inbound(1, rem2, pub); ok {
		t.Error("RC admitted packet from uncontacted IP")
	}
	// Same IP, different port: RC filters by IP only, so this is admitted.
	if _, ok := d.Inbound(1, rem1alt, pub); !ok {
		t.Error("RC rejected packet from contacted IP on a different port")
	}
	if got, ok := d.Inbound(1, rem1, pub); !ok || got != priv {
		t.Errorf("RC rejected contacted peer: ok=%v got=%v", ok, got)
	}
}

func TestPortRestrictedConeFiltersByIPAndPort(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	if _, ok := d.Inbound(1, rem1alt, pub); ok {
		t.Error("PRC admitted packet from contacted IP but different port")
	}
	if _, ok := d.Inbound(1, rem1, pub); !ok {
		t.Error("PRC rejected exactly-contacted peer")
	}
}

func TestSymmetricFiltersPerSession(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	pub1 := d.Outbound(0, priv, rem1)
	pub2 := d.Outbound(0, priv, rem2)
	// rem2 may not reach the mapping opened toward rem1.
	if _, ok := d.Inbound(1, rem2, pub1); ok {
		t.Error("SYM admitted cross-session inbound")
	}
	if _, ok := d.Inbound(1, rem1, pub1); !ok {
		t.Error("SYM rejected the session peer")
	}
	if _, ok := d.Inbound(1, rem2, pub2); !ok {
		t.Error("SYM rejected the session peer on its own mapping")
	}
}

func TestRuleExpiry(t *testing.T) {
	for _, c := range []ident.NATClass{ident.FullCone, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric} {
		d := newDev(t, c)
		pub := d.Outbound(0, priv, rem1)
		if _, ok := d.Inbound(ttl, rem1, pub); !ok {
			t.Errorf("%v: rule dead at exactly ttl", c)
		}
		d2 := newDev(t, c)
		pub2 := d2.Outbound(0, priv, rem1)
		if _, ok := d2.Inbound(ttl+1, rem1, pub2); ok {
			t.Errorf("%v: rule alive after ttl elapsed", c)
		}
	}
}

// TestInboundRefreshesSession checks that receiving traffic keeps the session
// alive, per the paper: the rule is valid a limited time after the last
// message sent or received.
func TestInboundRefreshesSession(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	if _, ok := d.Inbound(ttl-1, rem1, pub); !ok {
		t.Fatal("inbound within ttl rejected")
	}
	// The inbound at ttl-1 must have refreshed the session.
	if _, ok := d.Inbound(2*ttl-2, rem1, pub); !ok {
		t.Error("session not refreshed by inbound traffic")
	}
}

func TestOutboundRefreshesMapping(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	d.Outbound(ttl-1, priv, rem2) // same session, refreshes lastUse
	if got := d.Outbound(2*ttl-2, priv, rem1); got != pub {
		t.Errorf("mapping changed despite continuous activity: %v vs %v", got, pub)
	}
}

func TestExpiredMappingReallocated(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	got := d.Outbound(ttl+1, priv, rem1)
	if got == pub {
		t.Errorf("expired mapping was reused: %v", got)
	}
}

func TestWouldAdmitDoesNotMutate(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Outbound(0, priv, rem1)
	if !d.WouldAdmit(1, rem1, pub) {
		t.Fatal("WouldAdmit rejected admitted peer")
	}
	if d.WouldAdmit(1, rem2, pub) {
		t.Fatal("WouldAdmit admitted stranger")
	}
	// WouldAdmit at ttl-1 must not refresh: session dies at ttl+1.
	if !d.WouldAdmit(ttl-1, rem1, pub) {
		t.Fatal("WouldAdmit rejected within ttl")
	}
	if d.WouldAdmit(ttl+1, rem1, pub) {
		t.Error("WouldAdmit refreshed the session")
	}
}

func TestPublicMapping(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	if _, ok := d.PublicMapping(0, priv, rem1); ok {
		t.Error("PublicMapping invented a session")
	}
	pub := d.Outbound(0, priv, rem1)
	got, ok := d.PublicMapping(1, priv, rem1)
	if !ok || got != pub {
		t.Errorf("PublicMapping = %v, %v; want %v, true", got, ok, pub)
	}
	if _, ok := d.PublicMapping(ttl+1, priv, rem1); ok {
		t.Error("PublicMapping returned expired session")
	}
}

func TestGCAndSessionCount(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	d.Outbound(0, priv, rem1)
	d.Outbound(0, priv, rem2)
	if got := d.SessionCount(1); got != 2 {
		t.Fatalf("SessionCount = %d, want 2", got)
	}
	if got := len(d.Sessions(1)); got != 2 {
		t.Fatalf("Sessions returned %d endpoints, want 2", got)
	}
	d.GC(ttl + 1)
	if got := d.SessionCount(ttl + 1); got != 0 {
		t.Errorf("SessionCount after GC = %d, want 0", got)
	}
	if got := len(d.Sessions(ttl + 1)); got != 0 {
		t.Errorf("Sessions after GC = %d, want 0", got)
	}
}

func TestPortAllocationSkipsTaken(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	seen := make(map[ident.Endpoint]bool)
	for i := 0; i < 500; i++ {
		dst := ident.Endpoint{IP: ident.IP(0x0b000000 + uint32(i)), Port: 9000}
		pub := d.Outbound(0, priv, dst)
		if seen[pub] {
			t.Fatalf("duplicate public mapping %v", pub)
		}
		seen[pub] = true
	}
}

func TestInboundToUnknownMapping(t *testing.T) {
	d := newDev(t, ident.FullCone)
	if _, ok := d.Inbound(0, rem1, ident.Endpoint{IP: pubIP, Port: 4242}); ok {
		t.Error("inbound to never-allocated mapping admitted")
	}
}

func TestPinhole(t *testing.T) {
	d := newDev(t, ident.PortRestrictedCone)
	pub := d.Pinhole(priv)
	// Unsolicited traffic from anyone, at any time, is admitted.
	if got, ok := d.Inbound(0, rem1, pub); !ok || got != priv {
		t.Fatalf("pinhole rejected unsolicited inbound: %v, %v", got, ok)
	}
	if _, ok := d.Inbound(100*ttl, rem2, pub); !ok {
		t.Error("pinhole expired")
	}
	// Idempotent.
	if again := d.Pinhole(priv); again != pub {
		t.Errorf("second Pinhole returned %v, want %v", again, pub)
	}
	// Outbound traffic reuses the pinned mapping on cone NATs.
	if out := d.Outbound(0, priv, rem1); out != pub {
		t.Errorf("outbound used %v, want pinned %v", out, pub)
	}
	// GC never collects a pinhole.
	d.GC(100 * ttl)
	if _, ok := d.Inbound(101*ttl, rem1, pub); !ok {
		t.Error("GC collected the pinhole")
	}
}

func TestPinholeOnSymmetric(t *testing.T) {
	d := newDev(t, ident.Symmetric)
	pub := d.Pinhole(priv)
	if _, ok := d.Inbound(0, rem1, pub); !ok {
		t.Fatal("symmetric pinhole rejected inbound")
	}
	// Regular outbound still allocates per-destination mappings.
	out := d.Outbound(0, priv, rem1)
	if out == pub {
		t.Error("symmetric outbound reused the pinhole mapping")
	}
}

// TestFilterTableBoundedByLiveRules pins the compact-on-grow behaviour: a
// session whose remotes keep changing (rules constantly expiring) must keep
// its filter table sized by the live rule count, not by the total number of
// remotes ever seen — while still admitting exactly the live remotes.
func TestFilterTableBoundedByLiveRules(t *testing.T) {
	const ttl = 1000
	d := NewDevice(ident.PortRestrictedCone, 0x01000001, ttl)
	priv := ident.Endpoint{IP: 0x0a000001, Port: 9000}
	now := int64(0)
	var pub ident.Endpoint
	for i := 0; i < 50_000; i++ {
		remote := ident.Endpoint{IP: ident.IP(0x02000000 + i), Port: 1000}
		pub = d.Outbound(now, priv, remote)
		// A rule installed just now admits its remote...
		if _, ok := d.Inbound(now, remote, pub); !ok {
			t.Fatalf("step %d: fresh rule does not admit", i)
		}
		now += 100 // ~10 live rules at any time (ttl 1000)
	}
	_, slots, _ := d.DebugSizes()
	if slots > 1024 {
		t.Errorf("filter table grew to %d slots for ~20 live rules", slots)
	}
	// Expired remotes are refused.
	old := ident.Endpoint{IP: ident.IP(0x02000000), Port: 1000}
	if d.WouldAdmit(now, old, pub) {
		t.Error("long-expired rule still admits")
	}
}

// TestSymmetricSessionSweep pins that a symmetric device contacting many
// destinations over a long run does not accumulate dead sessions — and that
// sweeping them never recycles a public port (which would change observable
// mappings).
func TestSymmetricSessionSweep(t *testing.T) {
	const ttl = 1000
	d := NewDevice(ident.Symmetric, 0x01000001, ttl)
	priv := ident.Endpoint{IP: 0x0a000001, Port: 9000}
	now := int64(0)
	seen := map[ident.Endpoint]bool{}
	for i := 0; i < 2000; i++ {
		dst := ident.Endpoint{IP: ident.IP(0x02000000 + i), Port: 1000}
		pub := d.Outbound(now, priv, dst)
		if seen[pub] {
			t.Fatalf("step %d: public endpoint %v reused", i, pub)
		}
		seen[pub] = true
		now += 200 // ~5 live sessions at any time
	}
	sessions, _, _ := d.DebugSizes()
	if sessions > 2*sweepSessions {
		t.Errorf("symmetric device holds %d sessions, want bounded near %d live", sessions, sweepSessions)
	}
	// Live sessions still resolve.
	last := ident.Endpoint{IP: ident.IP(0x02000000 + 1999), Port: 1000}
	if _, ok := d.PublicMapping(now, priv, last); !ok {
		t.Error("most recent session lost by sweep")
	}
}
