// Package nat simulates the four NAT device behaviours described in Section
// 2.1 of the Nylon paper: full cone, restricted cone, port-restricted cone,
// and symmetric. A Device translates outbound packets from private endpoints
// to public mappings, installs filtering rules, and decides whether inbound
// packets are forwarded or dropped.
//
// Time is an explicit int64 millisecond parameter on every call so the same
// device works under the discrete-event simulator (virtual time) and under a
// real-time driver (milliseconds since start). Mappings and filtering rules
// expire ruleTTL milliseconds after the last packet sent or received on the
// session, matching the paper's "valid a limited time after the last message
// was sent (or received)".
package nat

import (
	"fmt"
	"sort"

	"repro/internal/ident"
)

// Device models one NAT box with a single public IP. One or more private
// endpoints may sit behind it (the paper evaluates one peer per device, but
// the model is general).
//
// Device is not safe for concurrent use; callers in the simulator are
// single-threaded, and the real-time driver serializes access.
type Device struct {
	class    ident.NATClass
	publicIP ident.IP
	ruleTTL  int64 // milliseconds

	nextPort uint16
	// sessions is keyed per class:
	//   FC/RC/PRC: one session per private endpoint
	//   SYM:       one session per (private endpoint, destination endpoint)
	// A device fronts one peer, so the live list stays short (one session
	// for cone classes, one per destination for symmetric); linear scans
	// beat any map at that size, and the per-datagram path allocates
	// nothing. byPort additionally indexes sessions by public port —
	// ports are handed out sequentially, so the inbound lookup is one
	// array access even on symmetric devices with many live mappings.
	sessions []*session
	byPort   []*session // index: public port - portBase
}

// portBase is the first public port a device hands out.
const portBase = 1024

type sessionKey struct {
	private ident.Endpoint
	dst     ident.Endpoint // zero except for symmetric NATs
}

type session struct {
	key    sessionKey
	public ident.Endpoint
	// filters holds the peers allowed to send inbound traffic, with the
	// virtual time at which each permission expires. The key granularity
	// depends on the NAT class: full IP:port for PRC/SYM, IP only (port 0)
	// for RC. Full-cone sessions use the wildcard zero endpoint.
	filters filterTable
	// lastUse is the most recent send or receive on the session; the
	// mapping itself dies ruleTTL after it.
	lastUse int64
	// pinned marks an explicit port mapping (NAT-PMP / UPnP): it never
	// expires and forwards all inbound traffic, like a full-cone rule.
	pinned bool
}

// filterTable is a small open-addressed hash from packed remote endpoints to
// rule expiry times. Refreshing a rule is the per-datagram hot operation of
// the whole NAT model, and a generic map's hashing dominated its profile; a
// flat table with inline values reduces it to one multiply and usually one
// probe, allocation-free once grown.
type filterTable struct {
	slots []filterSlot
	used  int
}

// filterSlot is one cell: expire == 0 marks an empty slot (live rules
// always expire at a positive time).
type filterSlot struct {
	key    uint64
	expire int64
}

// packEP packs an endpoint into the table's key form.
func packEP(e ident.Endpoint) uint64 { return uint64(e.IP)<<16 | uint64(e.Port) }

func (f *filterTable) hashSlot(key uint64) int {
	h := (key | 1) * 0x9e3779b97f4a7c15
	return int(h & uint64(len(f.slots)-1))
}

// set installs or refreshes the rule for key.
func (f *filterTable) set(key uint64, expire int64) {
	if 4*(f.used+1) > 3*len(f.slots) {
		f.grow()
	}
	for j := f.hashSlot(key); ; j = (j + 1) & (len(f.slots) - 1) {
		s := &f.slots[j]
		if s.expire == 0 {
			*s = filterSlot{key: key, expire: expire}
			f.used++
			return
		}
		if s.key == key {
			s.expire = expire
			return
		}
	}
}

// get returns the expiry recorded for key, if any.
func (f *filterTable) get(key uint64) (int64, bool) {
	if len(f.slots) == 0 {
		return 0, false
	}
	for j := f.hashSlot(key); ; j = (j + 1) & (len(f.slots) - 1) {
		s := f.slots[j]
		if s.expire == 0 {
			return 0, false
		}
		if s.key == key {
			return s.expire, true
		}
	}
}

// grow rehashes into a table sized for double the live entries.
func (f *filterTable) grow() {
	old := f.slots
	want := 64 // floor sized for a typical session's rule count
	for want*3 < 8*(f.used+1) {
		want *= 2
	}
	f.slots = make([]filterSlot, want)
	f.used = 0
	for _, s := range old {
		if s.expire == 0 {
			continue
		}
		for j := f.hashSlot(s.key); ; j = (j + 1) & (want - 1) {
			if f.slots[j].expire == 0 {
				f.slots[j] = s
				f.used++
				break
			}
		}
	}
}

// compact drops rules that expired before now, rehashing the rest in place.
func (f *filterTable) compact(now int64) {
	if len(f.slots) == 0 {
		return
	}
	old := append([]filterSlot(nil), f.slots...)
	for j := range f.slots {
		f.slots[j] = filterSlot{}
	}
	f.used = 0
	for _, s := range old {
		if s.expire == 0 || s.expire < now {
			continue
		}
		for j := f.hashSlot(s.key); ; j = (j + 1) & (len(f.slots) - 1) {
			if f.slots[j].expire == 0 {
				f.slots[j] = s
				f.used++
				break
			}
		}
	}
}

// NewDevice creates a NAT device of the given class with the given public IP.
// ruleTTL is the lifetime, in milliseconds, of mappings and filtering rules
// after the last activity (the paper uses 90 s, a typical vendor value).
// NewDevice panics if class is Public or invalid: public peers have no NAT.
func NewDevice(class ident.NATClass, publicIP ident.IP, ruleTTL int64) *Device {
	if !class.Natted() || !class.Valid() {
		panic(fmt.Sprintf("nat: NewDevice called with class %v", class))
	}
	if ruleTTL <= 0 {
		panic("nat: NewDevice called with non-positive ruleTTL")
	}
	return &Device{
		class:    class,
		publicIP: publicIP,
		ruleTTL:  ruleTTL,
		nextPort: 1024,
	}
}

// sessionByKey returns the session for the given key, or nil.
func (d *Device) sessionByKey(key sessionKey) *session {
	for _, s := range d.sessions {
		if s.key == key {
			return s
		}
	}
	return nil
}

// sessionByPublic returns the session owning the given public endpoint, or
// nil.
func (d *Device) sessionByPublic(ep ident.Endpoint) *session {
	if ep.IP != d.publicIP {
		return nil
	}
	i := int(ep.Port) - portBase
	if i < 0 || i >= len(d.byPort) {
		return nil
	}
	return d.byPort[i]
}

// Class returns the NAT behaviour class of the device.
func (d *Device) Class() ident.NATClass { return d.class }

// PublicIP returns the public IP address shared by all mappings.
func (d *Device) PublicIP() ident.IP { return d.publicIP }

// wildcard marks a full-cone "accept anyone" filter entry.
var wildcard ident.Endpoint

func (d *Device) keyFor(private, dst ident.Endpoint) sessionKey {
	if d.class == ident.Symmetric {
		return sessionKey{private: private, dst: dst}
	}
	return sessionKey{private: private}
}

// filterKey reduces a remote endpoint to the granularity at which this
// device's class filters: IP-only for restricted cone, IP:port otherwise.
func (d *Device) filterKey(remote ident.Endpoint) ident.Endpoint {
	switch d.class {
	case ident.FullCone:
		return wildcard
	case ident.RestrictedCone:
		return ident.Endpoint{IP: remote.IP}
	default: // PRC, SYM
		return remote
	}
}

func (d *Device) expired(s *session, now int64) bool {
	return !s.pinned && now-s.lastUse > d.ruleTTL
}

func (d *Device) drop(s *session) {
	if i := int(s.public.Port) - portBase; i >= 0 && i < len(d.byPort) {
		d.byPort[i] = nil
	}
	for i, c := range d.sessions {
		if c == s {
			last := len(d.sessions) - 1
			d.sessions[i] = d.sessions[last]
			d.sessions[last] = nil
			d.sessions = d.sessions[:last]
			return
		}
	}
}

func (d *Device) allocPort() uint16 {
	for {
		p := d.nextPort
		d.nextPort++
		if d.nextPort == 0 {
			d.nextPort = portBase
		}
		if p >= portBase && d.sessionByPublic(ident.Endpoint{IP: d.publicIP, Port: p}) == nil {
			return p
		}
	}
}

// adopt registers a freshly built session in both indexes.
func (d *Device) adopt(s *session) {
	d.sessions = append(d.sessions, s)
	i := int(s.public.Port) - portBase
	for len(d.byPort) <= i {
		d.byPort = append(d.byPort, nil)
	}
	d.byPort[i] = s
}

// Outbound records a packet sent from the private endpoint src to the remote
// endpoint dst at the given time. It returns the public endpoint the packet
// appears to come from, creating or refreshing the mapping and the filtering
// rule that will admit return traffic.
func (d *Device) Outbound(now int64, src, dst ident.Endpoint) ident.Endpoint {
	key := d.keyFor(src, dst)
	s := d.sessionByKey(key)
	if s != nil && d.expired(s, now) {
		d.drop(s)
		s = nil
	}
	if s == nil {
		s = &session{
			key:    key,
			public: ident.Endpoint{IP: d.publicIP, Port: d.allocPort()},
		}
		d.adopt(s)
	}
	s.lastUse = now
	s.filters.set(packEP(d.filterKey(dst)), now+d.ruleTTL)
	return s.public
}

// Inbound decides the fate of a packet arriving from the remote endpoint
// `from` addressed to the public endpoint `to`. If a live mapping and
// filtering rule admit it, Inbound returns the private destination endpoint
// and true, refreshing the session lifetime. Otherwise it returns the zero
// endpoint and false and the packet must be dropped.
func (d *Device) Inbound(now int64, from, to ident.Endpoint) (ident.Endpoint, bool) {
	s := d.sessionByPublic(to)
	if s == nil {
		return ident.Zero, false
	}
	if d.expired(s, now) {
		d.drop(s)
		return ident.Zero, false
	}
	if !d.admits(s, now, from) {
		return ident.Zero, false
	}
	// Inbound traffic on a live session refreshes it, per the paper: the
	// rule remains valid a limited time after the last message sent *or
	// received* in the session.
	s.lastUse = now
	s.filters.set(packEP(d.filterKey(from)), now+d.ruleTTL)
	return s.key.private, true
}

// Pinhole installs an explicit permanent port mapping for the private
// endpoint, as NAT-PMP or UPnP IGD would (the paper's related work discusses
// these as an alternative to traversal, with the caveat that not all devices
// support them). The returned public endpoint accepts unsolicited traffic
// from anyone and never expires. Symmetric semantics do not apply: the
// mapping is destination-independent by construction.
func (d *Device) Pinhole(priv ident.Endpoint) ident.Endpoint {
	key := sessionKey{private: priv}
	if s := d.sessionByKey(key); s != nil {
		if s.pinned {
			return s.public
		}
		// An expirable mapping for the same private endpoint exists;
		// the explicit port mapping supersedes it (two sessions must
		// never share a key, or lookups become ambiguous).
		d.drop(s)
	}
	s := &session{
		key:    key,
		public: ident.Endpoint{IP: d.publicIP, Port: d.allocPort()},
		pinned: true,
	}
	s.filters.set(packEP(wildcard), 1<<62)
	d.adopt(s)
	return s.public
}

func (d *Device) admits(s *session, now int64, from ident.Endpoint) bool {
	if s.pinned {
		return true
	}
	var key ident.Endpoint
	switch d.class {
	case ident.FullCone:
		key = wildcard
	case ident.RestrictedCone:
		key = ident.Endpoint{IP: from.IP}
	default:
		key = from
	}
	exp, ok := s.filters.get(packEP(key))
	return ok && exp >= now
}

// WouldAdmit reports, without mutating any state, whether a packet from the
// remote endpoint `from` addressed to the public endpoint `to` would be
// forwarded at the given time. Metrics code uses this to classify view
// entries as stale without perturbing the simulation.
func (d *Device) WouldAdmit(now int64, from, to ident.Endpoint) bool {
	s := d.sessionByPublic(to)
	if s == nil || d.expired(s, now) {
		return false
	}
	return d.admits(s, now, from)
}

// PublicMapping returns the current public endpoint that traffic from the
// private endpoint src toward dst would use, without creating one. The second
// result reports whether a live mapping exists. For non-symmetric devices dst
// is ignored beyond determining session liveness.
func (d *Device) PublicMapping(now int64, src, dst ident.Endpoint) (ident.Endpoint, bool) {
	s := d.sessionByKey(d.keyFor(src, dst))
	if s == nil || d.expired(s, now) {
		return ident.Zero, false
	}
	return s.public, true
}

// GC removes all sessions whose lifetime has elapsed. The simulator calls it
// periodically to bound memory; correctness never depends on it because every
// lookup re-checks expiry.
func (d *Device) GC(now int64) {
	for i := 0; i < len(d.sessions); {
		s := d.sessions[i]
		if d.expired(s, now) {
			d.drop(s)
			continue // drop swapped another session into i
		}
		s.filters.compact(now)
		i++
	}
}

// SessionCount returns the number of live sessions at the given time.
func (d *Device) SessionCount(now int64) int {
	n := 0
	for _, s := range d.sessions {
		if !d.expired(s, now) {
			n++
		}
	}
	return n
}

// Sessions returns a deterministic snapshot of live public endpoints, sorted,
// for debugging and tests.
func (d *Device) Sessions(now int64) []ident.Endpoint {
	var eps []ident.Endpoint
	for _, s := range d.sessions {
		if !d.expired(s, now) {
			eps = append(eps, s.public)
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].IP != eps[j].IP {
			return eps[i].IP < eps[j].IP
		}
		return eps[i].Port < eps[j].Port
	})
	return eps
}
