// Package nat simulates the four NAT device behaviours described in Section
// 2.1 of the Nylon paper: full cone, restricted cone, port-restricted cone,
// and symmetric. A Device translates outbound packets from private endpoints
// to public mappings, installs filtering rules, and decides whether inbound
// packets are forwarded or dropped.
//
// Time is an explicit int64 millisecond parameter on every call so the same
// device works under the discrete-event simulator (virtual time) and under a
// real-time driver (milliseconds since start). Mappings and filtering rules
// expire ruleTTL milliseconds after the last packet sent or received on the
// session, matching the paper's "valid a limited time after the last message
// was sent (or received)".
//
// The memory layout is sized for simulations that keep one device per peer
// across hundreds of thousands of peers: sessions live inline in one slice
// (no per-session allocation), the per-port inbound index holds session
// indices, and filter tables recycle the space of expired rules whenever they
// would otherwise grow — a device's footprint tracks its live rule count, not
// the total number of remotes it ever saw.
package nat

import (
	"fmt"
	"sort"

	"repro/internal/ident"
	"repro/internal/snapshot"
)

// Device models one NAT box with a single public IP. One or more private
// endpoints may sit behind it (the paper evaluates one peer per device, but
// the model is general).
//
// Device is not safe for concurrent use; callers in the simulator are
// single-threaded, and the real-time driver serializes access.
type Device struct {
	class    ident.NATClass
	publicIP ident.IP
	ruleTTL  int64 // milliseconds

	nextPort uint16
	// sessions is keyed per class:
	//   FC/RC/PRC: one session per private endpoint
	//   SYM:       one session per (private endpoint, destination endpoint)
	// A device fronts one peer, so the live list stays short (one session
	// for cone classes, one per destination for symmetric); linear scans
	// beat any map at that size, and the per-datagram path allocates
	// nothing. Sessions are stored by value and addressed by index — byPort
	// maps public port - portBase to the owning session's index (-1: none),
	// so the inbound lookup is one array access even on symmetric devices
	// with many live mappings.
	sessions []session
	byPort   []int32
}

// portBase is the first public port a device hands out.
const portBase = 1024

// sweepSessions is the session count past which creating a new session first
// sweeps expired ones. Cone devices never reach it; symmetric devices — which
// allocate one session per destination and would otherwise accumulate dead
// sessions for every peer they ever contacted — stay bounded by their live
// destination set. Sweeping never frees a port for reuse (ports are handed
// out by a monotone counter), so behaviour is identical with or without it.
const sweepSessions = 16

type sessionKey struct {
	private ident.Endpoint
	dst     ident.Endpoint // zero except for symmetric NATs
}

type session struct {
	key    sessionKey
	public ident.Endpoint
	// filters holds the peers allowed to send inbound traffic, with the
	// virtual time at which each permission expires. The key granularity
	// depends on the NAT class: full IP:port for PRC/SYM, IP only (port 0)
	// for RC. Full-cone sessions use the wildcard zero endpoint.
	filters filterTable
	// lastUse is the most recent send or receive on the session; the
	// mapping itself dies ruleTTL after it.
	lastUse int64
	// pinned marks an explicit port mapping (NAT-PMP / UPnP): it never
	// expires and forwards all inbound traffic, like a full-cone rule.
	pinned bool
}

// filterTable is a small open-addressed hash from packed remote endpoints to
// rule expiry times. Refreshing a rule is the per-datagram hot operation of
// the whole NAT model, and a generic map's hashing dominated its profile; a
// flat table with inline values reduces it to one multiply and usually one
// probe. When an insert would grow the table, expired rules are dropped
// first and the table is sized for the survivors — so its footprint follows
// the live rule count instead of growing monotonically with every remote the
// session ever exchanged a datagram with.
type filterTable struct {
	slots []filterSlot
	used  int
	// floor is the smallest table size rehash will produce. Sessions whose
	// class accumulates one rule per distinct remote (RC/PRC: the single
	// long-lived session of a cone device) start at the steady-state size
	// and skip the doubling chain; wildcard (FC, pinned) and per-destination
	// (SYM) sessions hold a handful of rules and stay at the minimum.
	floor uint16
}

// filterSlot is one cell: expire == 0 marks an empty slot (live rules
// always expire at a positive time).
type filterSlot struct {
	key    uint64
	expire int64
}

// packEP packs an endpoint into the table's key form.
func packEP(e ident.Endpoint) uint64 { return uint64(e.IP)<<16 | uint64(e.Port) }

func (f *filterTable) hashSlot(key uint64) int {
	h := (key | 1) * 0x9e3779b97f4a7c15
	return int(h & uint64(len(f.slots)-1))
}

// set installs or refreshes the rule for key. now is the current time, used
// to shed expired rules when the table would otherwise grow.
func (f *filterTable) set(key uint64, expire, now int64) {
	if 4*(f.used+1) > 3*len(f.slots) {
		f.rehash(now)
	}
	for j := f.hashSlot(key); ; j = (j + 1) & (len(f.slots) - 1) {
		s := &f.slots[j]
		if s.expire == 0 {
			*s = filterSlot{key: key, expire: expire}
			f.used++
			return
		}
		if s.key == key {
			s.expire = expire
			return
		}
	}
}

// refresh extends the rule for key to the new expiry iff the rule is live
// at now, and reports whether it was. One probe replaces the admit-time get
// and refresh-time set of the inbound hot path; the end state is identical
// (a live rule always takes set's update branch, and the rehash set might
// have triggered is housekeeping a later insert performs instead).
func (f *filterTable) refresh(key uint64, expire, now int64) bool {
	if len(f.slots) == 0 {
		return false
	}
	for j := f.hashSlot(key); ; j = (j + 1) & (len(f.slots) - 1) {
		s := &f.slots[j]
		if s.expire == 0 {
			return false
		}
		if s.key == key {
			if s.expire < now {
				return false
			}
			s.expire = expire
			return true
		}
	}
}

// get returns the expiry recorded for key, if any.
func (f *filterTable) get(key uint64) (int64, bool) {
	if len(f.slots) == 0 {
		return 0, false
	}
	for j := f.hashSlot(key); ; j = (j + 1) & (len(f.slots) - 1) {
		s := f.slots[j]
		if s.expire == 0 {
			return 0, false
		}
		if s.key == key {
			return s.expire, true
		}
	}
}

// rehash rebuilds the table sized for the rules still live at now, dropping
// expired ones. Dropping them is invisible: an expired rule already admits
// nothing.
func (f *filterTable) rehash(now int64) {
	live := 0
	for _, s := range f.slots {
		if s.expire != 0 && s.expire >= now {
			live++
		}
	}
	want := 16
	if f.floor > 16 {
		want = int(f.floor)
	}
	for 4*(live+1) > 3*want {
		want *= 2
	}
	old := f.slots
	f.slots = make([]filterSlot, want)
	f.used = 0
	for _, s := range old {
		if s.expire == 0 || s.expire < now {
			continue
		}
		for j := f.hashSlot(s.key); ; j = (j + 1) & (want - 1) {
			if f.slots[j].expire == 0 {
				f.slots[j] = s
				f.used++
				break
			}
		}
	}
}

// compact drops rules that expired before now. The simulator's GC path uses
// it; the per-datagram path compacts opportunistically through set.
func (f *filterTable) compact(now int64) {
	if len(f.slots) == 0 {
		return
	}
	f.rehash(now)
}

// NewDevice creates a NAT device of the given class with the given public IP.
// ruleTTL is the lifetime, in milliseconds, of mappings and filtering rules
// after the last activity (the paper uses 90 s, a typical vendor value).
// NewDevice panics if class is Public or invalid: public peers have no NAT.
func NewDevice(class ident.NATClass, publicIP ident.IP, ruleTTL int64) *Device {
	d := new(Device)
	*d = MakeDevice(class, publicIP, ruleTTL)
	return d
}

// MakeDevice is NewDevice returning the device by value, for hosts that
// embed devices in slab storage instead of allocating each one (see
// simnet). The result must not be copied once any method has been called.
func MakeDevice(class ident.NATClass, publicIP ident.IP, ruleTTL int64) Device {
	if !class.Natted() || !class.Valid() {
		panic(fmt.Sprintf("nat: NewDevice called with class %v", class))
	}
	if ruleTTL <= 0 {
		panic("nat: NewDevice called with non-positive ruleTTL")
	}
	return Device{
		class:    class,
		publicIP: publicIP,
		ruleTTL:  ruleTTL,
		nextPort: 1024,
	}
}

// sessionByKey returns the index of the session for the given key, or -1.
func (d *Device) sessionByKey(key sessionKey) int {
	for i := range d.sessions {
		if d.sessions[i].key == key {
			return i
		}
	}
	return -1
}

// sessionByPublic returns the index of the session owning the given public
// endpoint, or -1.
func (d *Device) sessionByPublic(ep ident.Endpoint) int {
	if ep.IP != d.publicIP {
		return -1
	}
	i := int(ep.Port) - portBase
	if i < 0 || i >= len(d.byPort) {
		return -1
	}
	return int(d.byPort[i])
}

// Class returns the NAT behaviour class of the device.
func (d *Device) Class() ident.NATClass { return d.class }

// PublicIP returns the public IP address shared by all mappings.
func (d *Device) PublicIP() ident.IP { return d.publicIP }

// wildcard marks a full-cone "accept anyone" filter entry.
var wildcard ident.Endpoint

func (d *Device) keyFor(private, dst ident.Endpoint) sessionKey {
	if d.class == ident.Symmetric {
		return sessionKey{private: private, dst: dst}
	}
	return sessionKey{private: private}
}

// filterKey reduces a remote endpoint to the granularity at which this
// device's class filters: IP-only for restricted cone, IP:port otherwise.
func (d *Device) filterKey(remote ident.Endpoint) ident.Endpoint {
	switch d.class {
	case ident.FullCone:
		return wildcard
	case ident.RestrictedCone:
		return ident.Endpoint{IP: remote.IP}
	default: // PRC, SYM
		return remote
	}
}

// filterFloor returns the initial filter-table size for this device's
// class: restricted and port-restricted cones keep one rule per distinct
// remote on a single session, so they start at the observed steady-state
// size; full-cone (one wildcard rule) and symmetric (per-destination
// sessions with few rules each) stay at the minimum.
func (d *Device) filterFloor() uint16 {
	switch d.class {
	case ident.RestrictedCone, ident.PortRestrictedCone:
		return 64
	default:
		return 16
	}
}

func (d *Device) expired(s *session, now int64) bool {
	return !s.pinned && now-s.lastUse > d.ruleTTL
}

// drop removes session i, swapping the last session into its place and
// fixing the port index.
func (d *Device) drop(i int) {
	if p := int(d.sessions[i].public.Port) - portBase; p >= 0 && p < len(d.byPort) {
		d.byPort[p] = -1
	}
	last := len(d.sessions) - 1
	if i != last {
		d.sessions[i] = d.sessions[last]
		if p := int(d.sessions[i].public.Port) - portBase; p >= 0 && p < len(d.byPort) {
			d.byPort[p] = int32(i)
		}
	}
	d.sessions[last] = session{}
	d.sessions = d.sessions[:last]
}

// sweep drops every expired session. Ports are never reused afterwards (the
// allocator is a monotone counter), so sweeping changes no observable
// behaviour — expired sessions admit nothing and resolve to nothing.
func (d *Device) sweep(now int64) {
	for i := 0; i < len(d.sessions); {
		if d.expired(&d.sessions[i], now) {
			d.drop(i)
			continue // drop swapped another session into i
		}
		i++
	}
}

func (d *Device) allocPort() uint16 {
	for {
		p := d.nextPort
		d.nextPort++
		if d.nextPort == 0 {
			d.nextPort = portBase
		}
		if p >= portBase && d.sessionByPublic(ident.Endpoint{IP: d.publicIP, Port: p}) < 0 {
			return p
		}
	}
}

// adopt registers a freshly built session in both indexes and returns its
// index.
func (d *Device) adopt(s session) int {
	i := len(d.sessions)
	d.sessions = append(d.sessions, s)
	p := int(s.public.Port) - portBase
	for len(d.byPort) <= p {
		d.byPort = append(d.byPort, -1)
	}
	d.byPort[p] = int32(i)
	return i
}

// Outbound records a packet sent from the private endpoint src to the remote
// endpoint dst at the given time. It returns the public endpoint the packet
// appears to come from, creating or refreshing the mapping and the filtering
// rule that will admit return traffic.
func (d *Device) Outbound(now int64, src, dst ident.Endpoint) ident.Endpoint {
	key := d.keyFor(src, dst)
	i := d.sessionByKey(key)
	if i >= 0 && d.expired(&d.sessions[i], now) {
		d.drop(i)
		i = -1
	}
	if i < 0 {
		if len(d.sessions) >= sweepSessions {
			d.sweep(now)
		}
		i = d.adopt(session{
			key:     key,
			public:  ident.Endpoint{IP: d.publicIP, Port: d.allocPort()},
			filters: filterTable{floor: d.filterFloor()},
		})
	}
	s := &d.sessions[i]
	s.lastUse = now
	s.filters.set(packEP(d.filterKey(dst)), now+d.ruleTTL, now)
	return s.public
}

// Inbound decides the fate of a packet arriving from the remote endpoint
// `from` addressed to the public endpoint `to`. If a live mapping and
// filtering rule admit it, Inbound returns the private destination endpoint
// and true, refreshing the session lifetime. Otherwise it returns the zero
// endpoint and false and the packet must be dropped.
func (d *Device) Inbound(now int64, from, to ident.Endpoint) (ident.Endpoint, bool) {
	i := d.sessionByPublic(to)
	if i < 0 {
		return ident.Zero, false
	}
	s := &d.sessions[i]
	if d.expired(s, now) {
		d.drop(i)
		return ident.Zero, false
	}
	// Inbound traffic on a live session refreshes it, per the paper: the
	// rule remains valid a limited time after the last message sent *or
	// received* in the session. For unpinned sessions the admit check and
	// the refresh touch the same class-reduced rule key, so one combined
	// probe decides and refreshes together (end state identical to the old
	// admits-then-set pair; the rehash set might have triggered on the way
	// is housekeeping a later insert performs instead).
	if s.pinned {
		s.lastUse = now
		s.filters.set(packEP(d.filterKey(from)), now+d.ruleTTL, now)
		return s.key.private, true
	}
	if !s.filters.refresh(packEP(d.filterKey(from)), now+d.ruleTTL, now) {
		return ident.Zero, false
	}
	s.lastUse = now
	return s.key.private, true
}

// Prefetch touches the state Inbound(now, from, to) would read — the port
// index, the session, and the sender's filter slot — with pure loads and no
// mutation, and returns the session's private endpoint (zero if no session
// owns `to`). Hosts call it for a queued datagram ahead of its delivery so
// the lines are cached when Inbound runs; the sink return folds the loaded
// values so the loads survive the compiler.
func (d *Device) Prefetch(from, to ident.Endpoint) (priv ident.Endpoint, sink uint64) {
	i := d.sessionByPublic(to)
	if i < 0 {
		return ident.Zero, 0
	}
	s := &d.sessions[i]
	sink = uint64(s.lastUse)
	if f := &s.filters; len(f.slots) > 0 {
		sl := &f.slots[f.hashSlot(packEP(d.filterKey(from)))]
		sink += sl.key + uint64(sl.expire)
	}
	return s.key.private, sink
}

// Pinhole installs an explicit permanent port mapping for the private
// endpoint, as NAT-PMP or UPnP IGD would (the paper's related work discusses
// these as an alternative to traversal, with the caveat that not all devices
// support them). The returned public endpoint accepts unsolicited traffic
// from anyone and never expires. Symmetric semantics do not apply: the
// mapping is destination-independent by construction.
func (d *Device) Pinhole(priv ident.Endpoint) ident.Endpoint {
	key := sessionKey{private: priv}
	if i := d.sessionByKey(key); i >= 0 {
		if d.sessions[i].pinned {
			return d.sessions[i].public
		}
		// An expirable mapping for the same private endpoint exists;
		// the explicit port mapping supersedes it (two sessions must
		// never share a key, or lookups become ambiguous).
		d.drop(i)
	}
	s := session{
		key:    key,
		public: ident.Endpoint{IP: d.publicIP, Port: d.allocPort()},
		pinned: true,
	}
	s.filters.set(packEP(wildcard), 1<<62, 0)
	i := d.adopt(s)
	return d.sessions[i].public
}

func (d *Device) admits(s *session, now int64, from ident.Endpoint) bool {
	if s.pinned {
		return true
	}
	var key ident.Endpoint
	switch d.class {
	case ident.FullCone:
		key = wildcard
	case ident.RestrictedCone:
		key = ident.Endpoint{IP: from.IP}
	default:
		key = from
	}
	exp, ok := s.filters.get(packEP(key))
	return ok && exp >= now
}

// WouldAdmit reports, without mutating any state, whether a packet from the
// remote endpoint `from` addressed to the public endpoint `to` would be
// forwarded at the given time. Metrics code uses this to classify view
// entries as stale without perturbing the simulation.
func (d *Device) WouldAdmit(now int64, from, to ident.Endpoint) bool {
	i := d.sessionByPublic(to)
	if i < 0 {
		return false
	}
	s := &d.sessions[i]
	if d.expired(s, now) {
		return false
	}
	return d.admits(s, now, from)
}

// PublicMapping returns the current public endpoint that traffic from the
// private endpoint src toward dst would use, without creating one. The second
// result reports whether a live mapping exists. For non-symmetric devices dst
// is ignored beyond determining session liveness.
func (d *Device) PublicMapping(now int64, src, dst ident.Endpoint) (ident.Endpoint, bool) {
	i := d.sessionByKey(d.keyFor(src, dst))
	if i < 0 || d.expired(&d.sessions[i], now) {
		return ident.Zero, false
	}
	return d.sessions[i].public, true
}

// GC removes all sessions whose lifetime has elapsed. The simulator calls it
// periodically to bound memory; correctness never depends on it because every
// lookup re-checks expiry.
func (d *Device) GC(now int64) {
	d.sweep(now)
	for i := range d.sessions {
		d.sessions[i].filters.compact(now)
	}
}

// SessionCount returns the number of live sessions at the given time.
func (d *Device) SessionCount(now int64) int {
	n := 0
	for i := range d.sessions {
		if !d.expired(&d.sessions[i], now) {
			n++
		}
	}
	return n
}

// Sessions returns a deterministic snapshot of live public endpoints, sorted,
// for debugging and tests.
func (d *Device) Sessions(now int64) []ident.Endpoint {
	var eps []ident.Endpoint
	for i := range d.sessions {
		if !d.expired(&d.sessions[i], now) {
			eps = append(eps, d.sessions[i].public)
		}
	}
	sort.Slice(eps, func(i, j int) bool {
		if eps[i].IP != eps[j].IP {
			return eps[i].IP < eps[j].IP
		}
		return eps[i].Port < eps[j].Port
	})
	return eps
}

// SnapshotTo serializes the device's complete translation state — the port
// allocator, every session in slice order, and every session's filter rules
// — so a restored device is behaviourally identical to the original from the
// snapshot time onward. Rules are emitted sorted by packed key: the filter
// table is a hash whose slot order depends on insertion history, and the
// snapshot encoding must not leak it (same state, same bytes). Expired
// sessions and rules are included verbatim; they admit nothing either way,
// but keeping them makes the capture exact rather than "equivalent".
func (d *Device) SnapshotTo(enc *snapshot.Encoder) {
	enc.U8(uint8(d.class))
	enc.U32(uint32(d.publicIP))
	enc.I64(d.ruleTTL)
	enc.U16(d.nextPort)
	enc.U32(uint32(len(d.sessions)))
	for i := range d.sessions {
		s := &d.sessions[i]
		enc.Endpoint(s.key.private)
		enc.Endpoint(s.key.dst)
		enc.Endpoint(s.public)
		enc.I64(s.lastUse)
		enc.Bool(s.pinned)
		rules := make([]filterSlot, 0, s.filters.used)
		for _, sl := range s.filters.slots {
			if sl.expire != 0 {
				rules = append(rules, sl)
			}
		}
		sort.Slice(rules, func(a, b int) bool { return rules[a].key < rules[b].key })
		enc.U32(uint32(len(rules)))
		for _, r := range rules {
			enc.U64(r.key)
			enc.I64(r.expire)
		}
	}
}

// RestoreDevice decodes a device serialized by SnapshotTo, returning it by
// value for slab embedding (see MakeDevice). Sessions are re-adopted in the
// serialized order, so the port index maps every public port to the same
// session as the original; filter tables are rebuilt by inserting the rules,
// which may land them in a different slot permutation or growth stage than
// the original's insertion history produced — unobservable, since lookups
// are key-addressed and rehash timing is housekeeping. On corrupt input the
// decoder's sticky error is set and the zero Device returned; callers check
// Decoder.Err before using the result.
func RestoreDevice(dec *snapshot.Decoder) Device {
	class := ident.NATClass(dec.U8())
	publicIP := ident.IP(dec.U32())
	ruleTTL := dec.I64()
	nextPort := dec.U16()
	if dec.Err() != nil {
		return Device{}
	}
	if !class.Natted() || !class.Valid() || ruleTTL <= 0 {
		dec.Fail("nat device with class %d, ruleTTL %d", class, ruleTTL)
		return Device{}
	}
	d := MakeDevice(class, publicIP, ruleTTL)
	nSess := dec.Count(6*3 + 8 + 1 + 4)
	for i := 0; i < nSess; i++ {
		s := session{
			key:     sessionKey{private: dec.Endpoint(), dst: dec.Endpoint()},
			public:  dec.Endpoint(),
			lastUse: dec.I64(),
			pinned:  dec.Bool(),
			filters: filterTable{floor: d.filterFloor()},
		}
		nRules := dec.Count(8 + 8)
		if dec.Err() != nil {
			return Device{}
		}
		if s.public.IP != publicIP || s.public.Port < portBase {
			dec.Fail("nat session with public endpoint %v outside device %v", s.public, publicIP)
			return Device{}
		}
		for j := 0; j < nRules; j++ {
			key, expire := dec.U64(), dec.I64()
			if expire == 0 {
				dec.Fail("nat filter rule with zero expiry")
				return Device{}
			}
			s.filters.set(key, expire, 0)
		}
		d.adopt(s)
	}
	d.nextPort = nextPort
	return d
}

// DebugSizes reports internal table sizes for memory diagnostics: total
// sessions, total filter slots, and filter rules counted as used.
func (d *Device) DebugSizes() (sessions, filterSlots, filterRules int) {
	for i := range d.sessions {
		sessions++
		filterSlots += len(d.sessions[i].filters.slots)
		filterRules += d.sessions[i].filters.used
	}
	return
}
