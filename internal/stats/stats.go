// Package stats provides the statistical tests used to assess the
// randomness of the peer samples (the paper validates randomness with the
// diehard suite; this package substitutes uniformity-focused tests —
// chi-square goodness of fit, Kolmogorov–Smirnov, and serial correlation —
// which capture the property the peer-sampling literature actually relies
// on: every peer is selected with equal probability).
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrNoData is returned when a test receives insufficient input.
var ErrNoData = errors.New("stats: not enough data")

// ChiSquareUniform performs a chi-square goodness-of-fit test of the observed
// counts against the uniform distribution. It returns the test statistic and
// the number of degrees of freedom (len(counts)-1).
func ChiSquareUniform(counts []int) (statistic float64, dof int, err error) {
	if len(counts) < 2 {
		return 0, 0, ErrNoData
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, ErrNoData
	}
	expected := float64(total) / float64(len(counts))
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	return chi2, len(counts) - 1, nil
}

// ChiSquareUniformOK reports whether the observed counts pass the chi-square
// uniformity test at roughly the 0.01 significance level, using the
// Wilson–Hilferty normal approximation for the critical value (accurate for
// the large degree-of-freedom counts that arise with thousands of peers).
func ChiSquareUniformOK(counts []int) (bool, error) {
	chi2, dof, err := ChiSquareUniform(counts)
	if err != nil {
		return false, err
	}
	return chi2 <= chiSquareCritical(float64(dof), 2.326), nil
}

// chiSquareCritical approximates the upper critical value of the chi-square
// distribution with the given degrees of freedom at the significance level
// corresponding to the z-score (2.326 ≈ 1%).
func chiSquareCritical(dof, z float64) float64 {
	// Wilson–Hilferty: chi2/dof ~ N(1-2/(9 dof), 2/(9 dof)) cubed.
	t := 1 - 2/(9*dof) + z*math.Sqrt(2/(9*dof))
	return dof * t * t * t
}

// KSUniform performs a one-sample Kolmogorov–Smirnov test of the samples
// (which must lie in [0,1)) against the uniform distribution, returning the
// D statistic.
func KSUniform(samples []float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoData
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		if x < 0 || x >= 1 {
			return 0, errors.New("stats: KS sample outside [0,1)")
		}
		lo := x - float64(i)/n
		hi := float64(i+1)/n - x
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d, nil
}

// KSUniformOK reports whether the samples pass the KS uniformity test at the
// 1% level (critical value 1.63/sqrt(n) for large n).
func KSUniformOK(samples []float64) (bool, error) {
	d, err := KSUniform(samples)
	if err != nil {
		return false, err
	}
	return d <= 1.63/math.Sqrt(float64(len(samples))), nil
}

// SerialCorrelation returns the lag-1 autocorrelation coefficient of the
// series, a cheap detector of streak structure in the sampled-peer stream.
func SerialCorrelation(series []float64) (float64, error) {
	if len(series) < 3 {
		return 0, ErrNoData
	}
	n := len(series)
	var mean float64
	for _, v := range series {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := series[i] - mean
		den += d * d
		if i+1 < n {
			num += d * (series[i+1] - mean)
		}
	}
	if den == 0 {
		return 0, nil
	}
	return num / den, nil
}

// Summary condenses a float series.
type Summary struct {
	N           int
	Min, Max    float64
	Mean        float64
	StdDev      float64
	P50, P90    float64
	P99         float64
	SampleTotal float64
}

// Summarize computes the summary of a series. Empty input returns the zero
// Summary.
func Summarize(series []float64) Summary {
	if len(series) == 0 {
		return Summary{}
	}
	s := make([]float64, len(series))
	copy(s, series)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var sq float64
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	pct := func(p float64) float64 { return s[int(p*float64(len(s)-1))] }
	return Summary{
		N:           len(s),
		Min:         s[0],
		Max:         s[len(s)-1],
		Mean:        mean,
		StdDev:      math.Sqrt(sq / float64(len(s))),
		P50:         pct(0.50),
		P90:         pct(0.90),
		P99:         pct(0.99),
		SampleTotal: sum,
	}
}

// Quantile returns the q-quantile of xs using linear interpolation between
// order statistics (the "R-7" definition shared by numpy and R). NaN samples
// are ignored; q is clamped to [0,1]. With no remaining samples the result is
// NaN — quantiles of nothing are not a number, and callers aggregating empty
// cells should detect that rather than mistake a silent 0 for data.
func Quantile(xs []float64, q float64) float64 {
	return quantileSorted(sortedClean(xs), q)
}

// Quantiles evaluates several quantiles of xs with one sort. The result is
// index-aligned with qs; every entry is NaN when xs has no non-NaN samples.
func Quantiles(xs []float64, qs []float64) []float64 {
	s := sortedClean(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(s, q)
	}
	return out
}

// PerRoundQuantiles computes quantile bands across aligned series: out[r][i]
// is the qs[i]-quantile of the runs' values at index r — e.g. the p10/p50/p90
// biggest-cluster band at each sampled round across the seeds of a sweep
// cell. Ragged runs contribute to the indices they reach; an index no run
// reaches yields NaNs. Nil or empty input yields an empty (non-nil) band.
func PerRoundQuantiles(runs [][]float64, qs []float64) [][]float64 {
	rounds := 0
	for _, run := range runs {
		if len(run) > rounds {
			rounds = len(run)
		}
	}
	out := make([][]float64, rounds)
	col := make([]float64, 0, len(runs))
	for r := range out {
		col = col[:0]
		for _, run := range runs {
			if r < len(run) {
				col = append(col, run[r])
			}
		}
		out[r] = Quantiles(col, qs)
	}
	return out
}

// sortedClean returns a sorted copy of xs with NaNs removed.
func sortedClean(xs []float64) []float64 {
	s := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			s = append(s, x)
		}
	}
	sort.Float64s(s)
	return s
}

// quantileSorted evaluates one quantile of an already-sorted, NaN-free slice.
func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if frac == 0 || lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 for empty input.
func Mean(series []float64) float64 {
	if len(series) == 0 {
		return 0
	}
	var sum float64
	for _, v := range series {
		sum += v
	}
	return sum / float64(len(series))
}
