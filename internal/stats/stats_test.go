package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestChiSquareUniformExact(t *testing.T) {
	// Perfectly uniform counts give statistic 0.
	chi2, dof, err := ChiSquareUniform([]int{10, 10, 10, 10})
	if err != nil || chi2 != 0 || dof != 3 {
		t.Errorf("ChiSquareUniform = %v, %v, %v", chi2, dof, err)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform(nil); !errors.Is(err, ErrNoData) {
		t.Error("nil counts did not yield ErrNoData")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); !errors.Is(err, ErrNoData) {
		t.Error("all-zero counts did not yield ErrNoData")
	}
	if _, _, err := ChiSquareUniform([]int{1, -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestChiSquareUniformOKAcceptsUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 100)
	for i := 0; i < 100_000; i++ {
		counts[rng.Intn(100)]++
	}
	ok, err := ChiSquareUniformOK(counts)
	if err != nil || !ok {
		t.Errorf("uniform counts rejected: ok=%v err=%v", ok, err)
	}
}

func TestChiSquareUniformOKRejectsSkew(t *testing.T) {
	counts := make([]int, 100)
	for i := range counts {
		counts[i] = 100
	}
	counts[0] = 5000 // heavy skew
	ok, err := ChiSquareUniformOK(counts)
	if err != nil || ok {
		t.Errorf("skewed counts accepted: ok=%v err=%v", ok, err)
	}
}

func TestKSUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	samples := make([]float64, 10_000)
	for i := range samples {
		samples[i] = rng.Float64()
	}
	ok, err := KSUniformOK(samples)
	if err != nil || !ok {
		t.Errorf("uniform samples rejected: ok=%v err=%v", ok, err)
	}
	// Clustered samples must fail.
	for i := range samples {
		samples[i] = 0.5 + 0.01*rng.Float64()
	}
	ok, err = KSUniformOK(samples)
	if err != nil || ok {
		t.Errorf("clustered samples accepted: ok=%v err=%v", ok, err)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KSUniform(nil); !errors.Is(err, ErrNoData) {
		t.Error("empty KS input did not yield ErrNoData")
	}
	if _, err := KSUniform([]float64{1.5}); err == nil {
		t.Error("out-of-range KS sample accepted")
	}
}

func TestSerialCorrelation(t *testing.T) {
	// A strongly alternating series has correlation near -1.
	alt := make([]float64, 1000)
	for i := range alt {
		alt[i] = float64(i % 2)
	}
	r, err := SerialCorrelation(alt)
	if err != nil || r > -0.9 {
		t.Errorf("alternating series correlation = %v, %v", r, err)
	}
	// An i.i.d. series has correlation near 0.
	rng := rand.New(rand.NewSource(3))
	iid := make([]float64, 10_000)
	for i := range iid {
		iid[i] = rng.Float64()
	}
	r, err = SerialCorrelation(iid)
	if err != nil || math.Abs(r) > 0.05 {
		t.Errorf("iid series correlation = %v, %v", r, err)
	}
	if _, err := SerialCorrelation([]float64{1, 2}); !errors.Is(err, ErrNoData) {
		t.Error("short series did not yield ErrNoData")
	}
	// A constant series has zero variance and zero correlation.
	r, err = SerialCorrelation([]float64{5, 5, 5, 5})
	if err != nil || r != 0 {
		t.Errorf("constant series correlation = %v, %v", r, err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{4, 1, 3, 2})
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.SampleTotal != 10 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.P50 != 2 {
		t.Errorf("P50 = %v, want 2", s.P50)
	}
	if got := Summarize(nil); got != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", got)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Error("Mean wrong")
	}
}

func TestQuantileExact(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 1.75}, {0.5, 2.5}, {0.75, 3.25}, {1, 4},
		{-0.5, 1}, {1.5, 4}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); got != c.want {
			t.Errorf("Quantile(%v, %v) = %v, want %v", xs, c.q, got, c.want)
		}
	}
	// A singleton answers every quantile with itself.
	for _, q := range []float64{0, 0.5, 1} {
		if got := Quantile([]float64{7}, q); got != 7 {
			t.Errorf("Quantile([7], %v) = %v", q, got)
		}
	}
}

func TestQuantileGuards(t *testing.T) {
	if got := Quantile(nil, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(nil) = %v, want NaN", got)
	}
	if got := Quantile([]float64{math.NaN(), math.NaN()}, 0.5); !math.IsNaN(got) {
		t.Errorf("Quantile(all-NaN) = %v, want NaN", got)
	}
	// NaNs are ignored, not sorted to an end.
	if got := Quantile([]float64{math.NaN(), 1, 3}, 0.5); got != 2 {
		t.Errorf("Quantile with NaN = %v, want 2", got)
	}
	// Input is not mutated.
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
}

func TestQuantiles(t *testing.T) {
	got := Quantiles([]float64{1, 2, 3, 4, 5}, []float64{0.1, 0.5, 0.9})
	want := []float64{1.4, 3, 4.6}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("Quantiles[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if out := Quantiles(nil, []float64{0.5}); !math.IsNaN(out[0]) {
		t.Errorf("Quantiles(nil) = %v, want [NaN]", out)
	}
}

func TestPerRoundQuantiles(t *testing.T) {
	runs := [][]float64{
		{1, 10, 100},
		{3, 30, 300},
		{2, 20, 200},
	}
	band := PerRoundQuantiles(runs, []float64{0, 0.5, 1})
	if len(band) != 3 {
		t.Fatalf("band has %d rounds, want 3", len(band))
	}
	want := [][]float64{{1, 2, 3}, {10, 20, 30}, {100, 200, 300}}
	for r := range want {
		for i := range want[r] {
			if band[r][i] != want[r][i] {
				t.Errorf("band[%d][%d] = %v, want %v", r, i, band[r][i], want[r][i])
			}
		}
	}
	// Ragged runs contribute to the indices they reach.
	band = PerRoundQuantiles([][]float64{{1, 5}, {3}}, []float64{0.5})
	if band[0][0] != 2 || band[1][0] != 5 {
		t.Errorf("ragged band = %v, want [[2] [5]]", band)
	}
	// Empty input yields an empty band, not a panic.
	if band = PerRoundQuantiles(nil, []float64{0.5}); len(band) != 0 {
		t.Errorf("PerRoundQuantiles(nil) = %v, want empty", band)
	}
}

func TestChiSquareCriticalMonotonic(t *testing.T) {
	// Critical value grows with dof.
	prev := 0.0
	for dof := 10.0; dof <= 1000; dof *= 2 {
		c := chiSquareCritical(dof, 2.326)
		if c <= prev {
			t.Fatalf("critical value not monotonic at dof=%v: %v <= %v", dof, c, prev)
		}
		prev = c
	}
	// Sanity: for dof=100 the 1% critical value is about 135.8.
	c := chiSquareCritical(100, 2.326)
	if c < 130 || c > 142 {
		t.Errorf("critical(100) = %v, want ≈135.8", c)
	}
}
