// Package view implements the partial view maintained by gossip peer
// sampling protocols, together with the policy dimensions of the generic
// protocol in Section 3 of the Nylon paper (after Jelasity et al., TOCS
// 2007): gossip target selection (rand or tail), and view merging (blind,
// healer, or swapper).
//
// A view is a bounded list of peer descriptors. Each descriptor carries an
// age, increased once per shuffling period, that the tail selection and the
// healer merge policy use to prefer fresh information.
package view

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ident"
)

// Descriptor describes one peer as known by another peer: identity, contact
// address, NAT class, and the age of this piece of information in shuffling
// periods.
type Descriptor struct {
	ID    ident.NodeID
	Addr  ident.Endpoint // public contact endpoint (NAT mapping for natted peers)
	Class ident.NATClass
	Age   uint32
}

// Fresh returns a copy of d with age zero, as exchanged by a peer describing
// itself.
func (d Descriptor) Fresh() Descriptor {
	d.Age = 0
	return d
}

// String implements fmt.Stringer.
func (d Descriptor) String() string {
	return fmt.Sprintf("%v@%v/%v age=%d", d.ID, d.Addr, d.Class, d.Age)
}

// Selection is the gossip target selection policy.
type Selection uint8

const (
	// SelectRand picks a uniformly random view entry.
	SelectRand Selection = iota
	// SelectTail picks the entry with the highest age.
	SelectTail
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectRand:
		return "rand"
	case SelectTail:
		return "tail"
	}
	return "selection(" + strconv.Itoa(int(s)) + ")"
}

// Merge is the view merging (truncation) policy applied after a shuffle.
type Merge uint8

const (
	// MergeBlind keeps a uniformly random subset of the union.
	MergeBlind Merge = iota
	// MergeHealer keeps the youngest entries of the union.
	MergeHealer
	// MergeSwapper prefers the entries received from the other peer,
	// filling any remaining room with its own entries.
	MergeSwapper
)

// String implements fmt.Stringer.
func (m Merge) String() string {
	switch m {
	case MergeBlind:
		return "blind"
	case MergeHealer:
		return "healer"
	case MergeSwapper:
		return "swapper"
	}
	return "merge(" + strconv.Itoa(int(m)) + ")"
}

// ParseSelection parses "rand" or "tail".
func ParseSelection(s string) (Selection, error) {
	switch strings.ToLower(s) {
	case "rand":
		return SelectRand, nil
	case "tail":
		return SelectTail, nil
	}
	return 0, fmt.Errorf("view: unknown selection policy %q", s)
}

// ParseMerge parses "blind", "healer" or "swapper".
func ParseMerge(s string) (Merge, error) {
	switch strings.ToLower(s) {
	case "blind":
		return MergeBlind, nil
	case "healer":
		return MergeHealer, nil
	case "swapper":
		return MergeSwapper, nil
	}
	return 0, fmt.Errorf("view: unknown merge policy %q", s)
}

// View is a bounded partial view of the overlay. The zero View is unusable;
// construct with New. View is not safe for concurrent use.
type View struct {
	self    ident.NodeID
	maxSize int
	entries []Descriptor
}

// New returns an empty view of the given maximum size owned by the given
// peer. It panics if maxSize is not positive.
func New(self ident.NodeID, maxSize int) *View {
	if maxSize <= 0 {
		panic("view: New called with non-positive maxSize")
	}
	return &View{self: self, maxSize: maxSize}
}

// MaxSize returns the view's capacity.
func (v *View) MaxSize() int { return v.maxSize }

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// Entries returns a copy of the current entries. Callers may mutate the
// returned slice freely.
func (v *View) Entries() []Descriptor {
	out := make([]Descriptor, len(v.entries))
	copy(out, v.entries)
	return out
}

// Contains reports whether the view holds a descriptor for the given peer.
func (v *View) Contains(id ident.NodeID) bool {
	return v.indexOf(id) >= 0
}

// Get returns the descriptor for the given peer, if present.
func (v *View) Get(id ident.NodeID) (Descriptor, bool) {
	if i := v.indexOf(id); i >= 0 {
		return v.entries[i], true
	}
	return Descriptor{}, false
}

func (v *View) indexOf(id ident.NodeID) int {
	for i, e := range v.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Add inserts a descriptor if the peer is not the owner, not already present,
// and there is room. It reports whether the descriptor was inserted. Existing
// entries are never evicted: eviction is the merge policy's job.
func (v *View) Add(d Descriptor) bool {
	if d.ID == v.self || d.ID.IsNil() || len(v.entries) >= v.maxSize || v.indexOf(d.ID) >= 0 {
		return false
	}
	v.entries = append(v.entries, d)
	return true
}

// Remove deletes the entry for the given peer, reporting whether it existed.
func (v *View) Remove(id ident.NodeID) bool {
	if i := v.indexOf(id); i >= 0 {
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
		return true
	}
	return false
}

// IncreaseAge adds one period to the age of every entry (Fig. 1, line 7).
func (v *View) IncreaseAge() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Select picks the gossip target according to the policy, using rng for the
// random policy. It returns false if the view is empty.
func (v *View) Select(policy Selection, rng *rand.Rand) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	switch policy {
	case SelectTail:
		best := 0
		for i, e := range v.entries {
			if e.Age > v.entries[best].Age {
				best = i
			}
		}
		return v.entries[best], true
	default:
		return v.entries[rng.Intn(len(v.entries))], true
	}
}

// HS maps the merge policy to the healing and swapping parameters of the
// generic protocol of Jelasity et al. (TOCS 2007), which the paper's Section
// 3 configurations instantiate: blind is (H=0, S=0), healer is (H=c/2, S=0),
// swapper is (H=0, S=c/2).
func (m Merge) HS(c int) (h, s int) {
	switch m {
	case MergeHealer:
		return c / 2, 0
	case MergeSwapper:
		return 0, c / 2
	default:
		return 0, 0
	}
}

// ExchangeLen returns how many view entries accompany the sender's own fresh
// descriptor in a shuffle buffer: c/2 - 1, per the generic protocol.
func (v *View) ExchangeLen() int {
	n := v.maxSize/2 - 1
	if n < 0 {
		n = 0
	}
	if n > len(v.entries) {
		n = len(v.entries)
	}
	return n
}

// PrepareExchange builds the shuffle buffer (excluding the caller's own
// descriptor, which the engine prepends): the view is permuted in place, the
// H oldest entries are moved to its end, and the first ExchangeLen entries —
// now at the head — are returned as the entries to ship. The returned slice
// is a copy; the head placement is what lets ApplyExchange implement the
// swapper policy ("discard the entries just sent").
func (v *View) PrepareExchange(policy Merge, rng *rand.Rand) []Descriptor {
	h, _ := policy.HS(v.maxSize)
	rng.Shuffle(len(v.entries), func(i, j int) { v.entries[i], v.entries[j] = v.entries[j], v.entries[i] })
	moveOldestToEnd(v.entries, h)
	sent := make([]Descriptor, v.ExchangeLen())
	copy(sent, v.entries)
	return sent
}

// moveOldestToEnd stably moves the h oldest entries (by age) to the end of
// the slice, preserving the order of the rest.
func moveOldestToEnd(ds []Descriptor, h int) {
	if h <= 0 || len(ds) <= 1 {
		return
	}
	if h > len(ds) {
		h = len(ds)
	}
	// Find the age threshold of the h oldest.
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ds[idx[a]].Age > ds[idx[b]].Age })
	oldest := make(map[int]bool, h)
	for _, i := range idx[:h] {
		oldest[i] = true
	}
	rest := make([]Descriptor, 0, len(ds))
	tail := make([]Descriptor, 0, h)
	for i, d := range ds {
		if oldest[i] {
			tail = append(tail, d)
		} else {
			rest = append(rest, d)
		}
	}
	copy(ds, append(rest, tail...))
}

// ApplyExchange merges a received shuffle buffer into the view
// (merge_and_truncate of Fig. 1, with the select semantics of the generic
// protocol): the received entries are appended, duplicates are resolved by
// keeping the youngest, then — while the view exceeds its maximum size — the
// H oldest entries are dropped (healer), up to S of the entries listed in
// sent are dropped (swapper), and finally uniformly random entries are
// dropped. sent must be the slice returned by the PrepareExchange call of
// the same exchange (nil for bootstrap-style merges).
func (v *View) ApplyExchange(policy Merge, received, sent []Descriptor, rng *rand.Rand) {
	union := make([]Descriptor, 0, len(v.entries)+len(received))
	union = append(union, v.entries...)
	for _, d := range received {
		if d.ID == v.self || d.ID.IsNil() {
			continue
		}
		if i := indexIn(union, d.ID); i >= 0 {
			if d.Age < union[i].Age {
				union[i] = d
			}
			continue
		}
		union = append(union, d)
	}
	c := v.maxSize
	h, s := policy.HS(c)
	// Healing: drop min(h, size-c) oldest.
	for drop := min(h, len(union)-c); drop > 0; drop-- {
		oldest := 0
		for i := 1; i < len(union); i++ {
			if union[i].Age > union[oldest].Age {
				oldest = i
			}
		}
		union = append(union[:oldest], union[oldest+1:]...)
	}
	// Swapping: drop min(s, size-c) of the entries just sent.
	if drop := min(s, len(union)-c); drop > 0 {
		for _, d := range sent {
			if drop == 0 {
				break
			}
			if i := indexIn(union, d.ID); i >= 0 {
				union = append(union[:i], union[i+1:]...)
				drop--
			}
		}
	}
	// Random truncation to c.
	for len(union) > c {
		i := rng.Intn(len(union))
		union = append(union[:i], union[i+1:]...)
	}
	v.entries = union
}

func indexIn(ds []Descriptor, id ident.NodeID) int {
	for i, d := range ds {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Validate checks the structural invariants of the view: no self entry, no
// nil IDs, no duplicates, size within bounds. It returns a descriptive error
// on the first violation. Tests and the simulator's self-checks use it.
func (v *View) Validate() error {
	if len(v.entries) > v.maxSize {
		return fmt.Errorf("view: %d entries exceed max %d", len(v.entries), v.maxSize)
	}
	seen := make(map[ident.NodeID]bool, len(v.entries))
	for _, e := range v.entries {
		if e.ID == v.self {
			return fmt.Errorf("view: contains owner %v", v.self)
		}
		if e.ID.IsNil() {
			return fmt.Errorf("view: contains nil ID")
		}
		if seen[e.ID] {
			return fmt.Errorf("view: duplicate entry %v", e.ID)
		}
		seen[e.ID] = true
	}
	return nil
}

// String implements fmt.Stringer.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view(%v, %d/%d):", v.self, len(v.entries), v.maxSize)
	for _, e := range v.entries {
		fmt.Fprintf(&b, " %v", e)
	}
	return b.String()
}
