// Package view implements the partial view maintained by gossip peer
// sampling protocols, together with the policy dimensions of the generic
// protocol in Section 3 of the Nylon paper (after Jelasity et al., TOCS
// 2007): gossip target selection (rand or tail), and view merging (blind,
// healer, or swapper).
//
// A view is a bounded list of peer descriptors. Each descriptor carries an
// age, increased once per shuffling period, that the tail selection and the
// healer merge policy use to prefer fresh information.
package view

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/ident"
)

// Descriptor describes one peer as known by another peer: identity, contact
// address, NAT class, and the age of this piece of information in shuffling
// periods.
type Descriptor struct {
	ID    ident.NodeID
	Addr  ident.Endpoint // public contact endpoint (NAT mapping for natted peers)
	Class ident.NATClass
	Age   uint32
}

// Fresh returns a copy of d with age zero, as exchanged by a peer describing
// itself.
func (d Descriptor) Fresh() Descriptor {
	d.Age = 0
	return d
}

// String implements fmt.Stringer.
func (d Descriptor) String() string {
	return fmt.Sprintf("%v@%v/%v age=%d", d.ID, d.Addr, d.Class, d.Age)
}

// Selection is the gossip target selection policy.
type Selection uint8

const (
	// SelectRand picks a uniformly random view entry.
	SelectRand Selection = iota
	// SelectTail picks the entry with the highest age.
	SelectTail
)

// String implements fmt.Stringer.
func (s Selection) String() string {
	switch s {
	case SelectRand:
		return "rand"
	case SelectTail:
		return "tail"
	}
	return "selection(" + strconv.Itoa(int(s)) + ")"
}

// Merge is the view merging (truncation) policy applied after a shuffle.
type Merge uint8

const (
	// MergeBlind keeps a uniformly random subset of the union.
	MergeBlind Merge = iota
	// MergeHealer keeps the youngest entries of the union.
	MergeHealer
	// MergeSwapper prefers the entries received from the other peer,
	// filling any remaining room with its own entries.
	MergeSwapper
)

// String implements fmt.Stringer.
func (m Merge) String() string {
	switch m {
	case MergeBlind:
		return "blind"
	case MergeHealer:
		return "healer"
	case MergeSwapper:
		return "swapper"
	}
	return "merge(" + strconv.Itoa(int(m)) + ")"
}

// ParseSelection parses "rand" or "tail".
func ParseSelection(s string) (Selection, error) {
	switch strings.ToLower(s) {
	case "rand":
		return SelectRand, nil
	case "tail":
		return SelectTail, nil
	}
	return 0, fmt.Errorf("view: unknown selection policy %q", s)
}

// ParseMerge parses "blind", "healer" or "swapper".
func ParseMerge(s string) (Merge, error) {
	switch strings.ToLower(s) {
	case "blind":
		return MergeBlind, nil
	case "healer":
		return MergeHealer, nil
	case "swapper":
		return MergeSwapper, nil
	}
	return 0, fmt.Errorf("view: unknown merge policy %q", s)
}

// Scratch is the reusable working storage of a view's exchange operations:
// union is where ApplyExchange builds the merged entry set, tail holds the
// entries displaced by the partial selection of moveOldestToEnd, and ids and
// ages are compact copies of the descriptor fields the merge scans repeatedly
// — scanning 8-byte words instead of whole descriptors keeps the inner loops
// in cache; a negative age doubles as the "selected/dropped" mark.
//
// A Scratch is only ever live during one exchange call, so any number of
// views driven by the same goroutine (all engines of one simulation shard)
// may share a single instance: at 1M peers that turns ~1.5 KB of per-peer
// scratch into ~1.5 KB per shard. The zero Scratch is ready to use.
type Scratch struct {
	union []Descriptor
	tail  []Descriptor
	ids   []uint64
	ages  []int64
	// cnt is markOldest's age histogram; only the prefix up to the call's
	// maximum age is ever read or written, so it needs no clearing between
	// calls.
	cnt [256]uint16
}

// Observer receives view membership changes: one call per entry entering or
// leaving a view, fired from Add, Remove and ApplyExchange. Duplicate
// resolution (a younger descriptor replacing an older one for the same ID)
// is not a membership change and fires nothing.
//
// Hooks run in the view owner's execution context — under the sharded
// simulation kernel that is the owner's shard goroutine, so one Observer
// shared by many views must either be bound to a single shard or tolerate
// concurrent calls from different owners. Implementations must only
// accumulate: a hook that feeds anything back into protocol state would
// break the determinism contract instrumentation relies on.
type Observer interface {
	ViewEntryAdded(owner ident.NodeID, d Descriptor)
	ViewEntryRemoved(owner ident.NodeID, d Descriptor)
}

// View is a bounded partial view of the overlay. The zero View is unusable;
// construct with New or NewShared. View is not safe for concurrent use.
type View struct {
	self    ident.NodeID
	maxSize int
	entries []Descriptor
	sc      *Scratch
	obs     Observer
}

// New returns an empty view of the given maximum size owned by the given
// peer, with private scratch storage. It panics if maxSize is not positive.
func New(self ident.NodeID, maxSize int) *View {
	return NewShared(self, maxSize, &Scratch{})
}

// NewShared is New with caller-owned scratch storage, shared by every view
// whose exchange calls are serialized on one goroutine (the engines of one
// simulation shard). sc must not be nil.
func NewShared(self ident.NodeID, maxSize int, sc *Scratch) *View {
	if maxSize <= 0 {
		panic("view: New called with non-positive maxSize")
	}
	if sc == nil {
		panic("view: NewShared called with nil scratch")
	}
	// The entries slice reaches exactly maxSize in steady state; reserving
	// it up front replaces the append-doubling chain (and the merge-time
	// spill past maxSize lives in the scratch, never here).
	return &View{self: self, maxSize: maxSize, entries: make([]Descriptor, 0, maxSize), sc: sc}
}

// SetObserver installs the membership hook (nil to remove). Attach before
// the view's first entry if the observer's tallies are to be complete.
func (v *View) SetObserver(o Observer) { v.obs = o }

// MaxSize returns the view's capacity.
func (v *View) MaxSize() int { return v.maxSize }

// Len returns the number of entries currently held.
func (v *View) Len() int { return len(v.entries) }

// At returns the i-th entry without copying the view. Indices are stable
// only until the next mutation; pair with Len for zero-copy iteration where
// EntriesInto's copy would be measurable (the simulator's samplers).
func (v *View) At(i int) Descriptor { return v.entries[i] }

// Entries returns a copy of the current entries. Callers may mutate the
// returned slice freely. Hot paths should prefer EntriesInto with a reused
// buffer.
func (v *View) Entries() []Descriptor {
	out := make([]Descriptor, len(v.entries))
	copy(out, v.entries)
	return out
}

// EntriesInto overwrites buf (truncated to length zero) with a copy of the
// current entries and returns the extended slice. With a buffer of sufficient
// capacity the call performs no allocation; the returned slice is the
// caller's to mutate and is valid until its next reuse.
func (v *View) EntriesInto(buf []Descriptor) []Descriptor {
	return append(buf[:0], v.entries...)
}

// Contains reports whether the view holds a descriptor for the given peer.
func (v *View) Contains(id ident.NodeID) bool {
	return v.indexOf(id) >= 0
}

// Get returns the descriptor for the given peer, if present.
func (v *View) Get(id ident.NodeID) (Descriptor, bool) {
	if i := v.indexOf(id); i >= 0 {
		return v.entries[i], true
	}
	return Descriptor{}, false
}

func (v *View) indexOf(id ident.NodeID) int {
	for i, e := range v.entries {
		if e.ID == id {
			return i
		}
	}
	return -1
}

// Add inserts a descriptor if the peer is not the owner, not already present,
// and there is room. It reports whether the descriptor was inserted. Existing
// entries are never evicted: eviction is the merge policy's job.
func (v *View) Add(d Descriptor) bool {
	if d.ID == v.self || d.ID.IsNil() || len(v.entries) >= v.maxSize || v.indexOf(d.ID) >= 0 {
		return false
	}
	v.entries = append(v.entries, d)
	if v.obs != nil {
		v.obs.ViewEntryAdded(v.self, d)
	}
	return true
}

// Remove deletes the entry for the given peer, reporting whether it existed.
func (v *View) Remove(id ident.NodeID) bool {
	if i := v.indexOf(id); i >= 0 {
		d := v.entries[i]
		v.entries = append(v.entries[:i], v.entries[i+1:]...)
		if v.obs != nil {
			v.obs.ViewEntryRemoved(v.self, d)
		}
		return true
	}
	return false
}

// IncreaseAge adds one period to the age of every entry (Fig. 1, line 7).
func (v *View) IncreaseAge() {
	for i := range v.entries {
		v.entries[i].Age++
	}
}

// Select picks the gossip target according to the policy, using rng for the
// random policy. It returns false if the view is empty.
func (v *View) Select(policy Selection, rng *rand.Rand) (Descriptor, bool) {
	if len(v.entries) == 0 {
		return Descriptor{}, false
	}
	switch policy {
	case SelectTail:
		best := 0
		for i, e := range v.entries {
			if e.Age > v.entries[best].Age {
				best = i
			}
		}
		return v.entries[best], true
	default:
		return v.entries[rng.Intn(len(v.entries))], true
	}
}

// HS maps the merge policy to the healing and swapping parameters of the
// generic protocol of Jelasity et al. (TOCS 2007), which the paper's Section
// 3 configurations instantiate: blind is (H=0, S=0), healer is (H=c/2, S=0),
// swapper is (H=0, S=c/2).
func (m Merge) HS(c int) (h, s int) {
	switch m {
	case MergeHealer:
		return c / 2, 0
	case MergeSwapper:
		return 0, c / 2
	default:
		return 0, 0
	}
}

// ExchangeLen returns how many view entries accompany the sender's own fresh
// descriptor in a shuffle buffer: c/2 - 1, per the generic protocol.
func (v *View) ExchangeLen() int {
	n := v.maxSize/2 - 1
	if n < 0 {
		n = 0
	}
	if n > len(v.entries) {
		n = len(v.entries)
	}
	return n
}

// PrepareExchange builds the shuffle buffer (excluding the caller's own
// descriptor, which the engine prepends): the view is permuted in place, the
// H oldest entries are moved to its end, and the first ExchangeLen entries —
// now at the head — are returned as the entries to ship. The returned slice
// is a copy; the head placement is what lets ApplyExchange implement the
// swapper policy ("discard the entries just sent"). Hot paths should prefer
// PrepareExchangeInto with a reused buffer.
func (v *View) PrepareExchange(policy Merge, rng *rand.Rand) []Descriptor {
	return v.PrepareExchangeInto(policy, rng, nil)
}

// PrepareExchangeInto is PrepareExchange with a caller-owned destination: the
// shipped entries are appended to buf (usually a reused slice truncated to
// length zero) and the extended slice is returned. With a buffer of
// sufficient capacity the call performs no allocation.
func (v *View) PrepareExchangeInto(policy Merge, rng *rand.Rand, buf []Descriptor) []Descriptor {
	h, _ := policy.HS(v.maxSize)
	shuffle(rng, v.entries)
	v.moveOldestToEnd(v.entries, h)
	return append(buf, v.entries[:v.ExchangeLen()]...)
}

// shuffle is rng.Shuffle specialized to a descriptor slice: it draws the
// exact same RNG stream (Fisher-Yates over math/rand's internal int31n,
// which the equivalence tests pin), but swaps directly instead of calling a
// closure per step — PrepareExchange permutes the view on every shuffle
// buffer, so the call overhead was measurable at simulation scale.
func shuffle(rng *rand.Rand, ds []Descriptor) {
	if len(ds) > 1<<31-1 {
		panic("view: shuffle of preposterous view size")
	}
	for i := len(ds) - 1; i > 0; i-- {
		j := randInt31n(rng, int32(i+1))
		ds[i], ds[j] = ds[j], ds[i]
	}
}

// randInt31n reproduces math/rand's unexported Rand.int31n — the unbiased
// [0,n) draw Shuffle uses internally — on top of the public Int63.
func randInt31n(r *rand.Rand, n int32) int32 {
	v := uint32(r.Int63() >> 31)
	prod := uint64(v) * uint64(n)
	low := uint32(prod)
	if low < uint32(n) {
		thresh := uint32(-n) % uint32(n)
		for low < thresh {
			v = uint32(r.Int63() >> 31)
			prod = uint64(v) * uint64(n)
			low = uint32(prod)
		}
	}
	return int32(prod >> 32)
}

// moveOldestToEnd stably moves the h oldest entries (by age, ties resolved
// toward the earlier index) to the end of the slice, preserving the order of
// the rest. It selects the h oldest by in-place partial selection over the
// view's reusable age scratch, then compacts in one pass — no sorting, no
// per-call allocation.
func (v *View) moveOldestToEnd(ds []Descriptor, h int) {
	if h <= 0 || len(ds) <= 1 {
		return
	}
	if h > len(ds) {
		h = len(ds)
	}
	ages := v.ageScratch(len(ds))
	for i := range ds {
		ages[i] = int64(ds[i].Age)
	}
	markOldest(ages, h, &v.sc.cnt)
	tail := v.sc.tail[:0]
	w := 0
	for i, d := range ds {
		if ages[i] < 0 {
			tail = append(tail, d)
		} else {
			ds[w] = d
			w++
		}
	}
	copy(ds[w:], tail)
	v.sc.tail = tail
}

// ageScratch returns the reusable age scratch resized to n entries.
func (v *View) ageScratch(n int) []int64 {
	if cap(v.sc.ages) < n {
		v.sc.ages = make([]int64, n)
	}
	return v.sc.ages[:n]
}

// markOldest sets ages[i] = -1 for the h oldest entries, ties resolved
// toward the earlier index (the first index wins the argmax, so the marked
// set matches repeated oldest-first removal exactly).
//
// The hot path is a counting select: descriptor ages count shuffle rounds,
// so in any live view they are tiny — a 256-bucket histogram locates the
// exact h-th-oldest threshold with nothing but predictable single-compare
// loops, where the earlier top-h insertion buffer paid a branch mispredict
// per insertion. Everything age-above-threshold is marked, plus the first
// (earliest-index) survivors sitting exactly on the threshold — precisely
// the set repeated oldest-first argmax removes.
func markOldest(ages []int64, h int, cnt *[256]uint16) {
	if h > len(ages) {
		h = len(ages)
	}
	if h <= 0 {
		return
	}
	maxA := int64(0)
	for _, a := range ages {
		if a < 0 || a > 255 {
			markOldestGeneric(ages, h)
			return
		}
		if a > maxA {
			maxA = a
		}
	}
	// The histogram is caller-owned scratch, zeroed only up to the observed
	// maximum age — a few tens of bytes — instead of paying a 512-byte
	// stack clear per call; stale counts beyond maxA are never read.
	c := cnt[:maxA+1]
	for i := range c {
		c[i] = 0
	}
	for _, a := range ages {
		c[a]++
	}
	need, th := h, maxA
	for ; ; th-- {
		c := int(cnt[th])
		if need <= c {
			break
		}
		need -= c
	}
	for i, a := range ages {
		if a > th {
			ages[i] = -1
		} else if a == th && need > 0 {
			ages[i] = -1
			need--
		}
	}
}

// markOldestGeneric is markOldest for ages outside the histogram range
// (never produced by the protocols, which age by one per round): repeated
// argmax, the literal reference semantics.
func markOldestGeneric(ages []int64, h int) {
	for k := 0; k < h; k++ {
		best, bestAge := 0, int64(-1)
		for i, a := range ages {
			if a > bestAge {
				best, bestAge = i, a
			}
		}
		ages[best] = -1
	}
}

// ApplyExchange merges a received shuffle buffer into the view
// (merge_and_truncate of Fig. 1, with the select semantics of the generic
// protocol): the received entries are appended, duplicates are resolved by
// keeping the youngest, then — while the view exceeds its maximum size — the
// H oldest entries are dropped (healer), up to S of the entries listed in
// sent are dropped (swapper), and finally uniformly random entries are
// dropped. sent must be the slice returned by the PrepareExchange call of
// the same exchange (nil for bootstrap-style merges).
//
// The merge runs over the view's reusable union/mark scratch — dropped
// entries are marked, survivors compacted in a single pass — so the
// steady-state call performs no allocation.
func (v *View) ApplyExchange(policy Merge, received, sent []Descriptor, rng *rand.Rand) {
	// Build the deduplicated union in the scratch (merge order puts
	// existing entries first, so appending is the union), mirroring IDs and
	// ages into the compact scratch the scans below run over. A negative
	// age marks a dropped entry. Building in the scratch rather than in the
	// entries backing array keeps every view's entries slice at exactly
	// maxSize capacity — the merge-time spill above maxSize is shared
	// per-shard state, not per-peer state.
	union := append(v.sc.union[:0], v.entries...)
	origLen := len(union)
	ids := v.sc.ids[:0]
	for _, d := range union {
		ids = append(ids, uint64(d.ID))
	}
	for _, d := range received {
		if d.ID == v.self || d.ID.IsNil() {
			continue
		}
		dup := -1
		for i, id := range ids {
			if id == uint64(d.ID) {
				dup = i
				break
			}
		}
		if dup >= 0 {
			if d.Age < union[dup].Age {
				union[dup] = d
			}
			continue
		}
		union = append(union, d)
		ids = append(ids, uint64(d.ID))
	}
	v.sc.ids = ids
	ages := v.ageScratch(len(union))
	for i := range union {
		ages[i] = int64(union[i].Age)
	}
	c := v.maxSize
	h, s := policy.HS(c)
	left := len(union)
	// Healing: drop min(h, size-c) oldest (ties resolved toward the earlier
	// index, matching repeated oldest-first removal).
	if drop := min(h, left-c); drop > 0 {
		markOldest(ages, drop, &v.sc.cnt)
		left -= drop
	}
	// Swapping: drop min(s, size-c) of the entries just sent.
	if drop := min(s, left-c); drop > 0 {
		for _, d := range sent {
			if drop == 0 {
				break
			}
			for i, id := range ids {
				if id == uint64(d.ID) && ages[i] >= 0 {
					ages[i] = -1
					left--
					drop--
					break
				}
			}
		}
	}
	// Random truncation to c: drop the k-th surviving entry, which consumes
	// the RNG exactly as removing index k from a spliced slice would.
	for left > c {
		k := rng.Intn(left)
		for i, a := range ages {
			if a < 0 {
				continue
			}
			if k == 0 {
				ages[i] = -1
				break
			}
			k--
		}
		left--
	}
	// Stable compaction of the survivors back into the entries slice (at
	// most maxSize survive, so the reserved capacity always suffices).
	ents := v.entries[:0]
	for i := range union {
		if ages[i] >= 0 {
			ents = append(ents, union[i])
		}
	}
	v.entries = ents
	if v.obs != nil {
		// Membership diff: union[:origLen] mirrors the pre-merge entries
		// (dropped ones carry a negative age mark), entries beyond origLen
		// are received newcomers (surviving ones were added). Duplicate
		// resolution replaced descriptors in place — same ID, no hook.
		for i := 0; i < origLen; i++ {
			if ages[i] < 0 {
				v.obs.ViewEntryRemoved(v.self, union[i])
			}
		}
		for i := origLen; i < len(union); i++ {
			if ages[i] >= 0 {
				v.obs.ViewEntryAdded(v.self, union[i])
			}
		}
	}
	v.sc.union = union[:0]
}

func indexIn(ds []Descriptor, id ident.NodeID) int {
	for i, d := range ds {
		if d.ID == id {
			return i
		}
	}
	return -1
}

// Validate checks the structural invariants of the view: no self entry, no
// nil IDs, no duplicates, size within bounds. It returns a descriptive error
// on the first violation. Tests and the simulator's self-checks use it.
func (v *View) Validate() error {
	if len(v.entries) > v.maxSize {
		return fmt.Errorf("view: %d entries exceed max %d", len(v.entries), v.maxSize)
	}
	seen := make(map[ident.NodeID]bool, len(v.entries))
	for _, e := range v.entries {
		if e.ID == v.self {
			return fmt.Errorf("view: contains owner %v", v.self)
		}
		if e.ID.IsNil() {
			return fmt.Errorf("view: contains nil ID")
		}
		if seen[e.ID] {
			return fmt.Errorf("view: duplicate entry %v", e.ID)
		}
		seen[e.ID] = true
	}
	return nil
}

// String implements fmt.Stringer.
func (v *View) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "view(%v, %d/%d):", v.self, len(v.entries), v.maxSize)
	for _, e := range v.entries {
		fmt.Fprintf(&b, " %v", e)
	}
	return b.String()
}
