package view

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
)

// tallyObserver records the net membership per peer ID plus hook call counts.
type tallyObserver struct {
	owner         ident.NodeID
	present       map[ident.NodeID]int
	adds, removes int
	ownerMismatch bool
}

func newTally(owner ident.NodeID) *tallyObserver {
	return &tallyObserver{owner: owner, present: map[ident.NodeID]int{}}
}

func (o *tallyObserver) ViewEntryAdded(owner ident.NodeID, d Descriptor) {
	if owner != o.owner {
		o.ownerMismatch = true
	}
	o.present[d.ID]++
	o.adds++
}

func (o *tallyObserver) ViewEntryRemoved(owner ident.NodeID, d Descriptor) {
	if owner != o.owner {
		o.ownerMismatch = true
	}
	o.present[d.ID]--
	o.removes++
}

// check asserts the observer's net tallies mirror the view exactly: every
// entry present once, everything else at zero.
func (o *tallyObserver) check(t *testing.T, v *View) {
	t.Helper()
	if o.ownerMismatch {
		t.Fatal("hook fired with the wrong owner ID")
	}
	want := map[ident.NodeID]int{}
	for i := 0; i < v.Len(); i++ {
		want[v.At(i).ID] = 1
	}
	for id, n := range o.present {
		if n != want[id] {
			t.Fatalf("observer tally for peer %v = %d, want %d (view %v)", id, n, want[id], v)
		}
		delete(want, id)
	}
	for id := range want {
		t.Fatalf("observer never saw peer %v, which is in the view", id)
	}
}

func TestObserverAddRemove(t *testing.T) {
	v := New(1, 3)
	o := newTally(1)
	v.SetObserver(o)

	v.Add(desc(2, 0))
	v.Add(desc(3, 0))
	v.Add(desc(2, 5)) // duplicate: rejected, no hook
	v.Add(desc(1, 0)) // self: rejected, no hook
	if o.adds != 2 {
		t.Fatalf("adds = %d after 2 accepted Adds, want 2", o.adds)
	}
	v.Remove(3)
	v.Remove(3) // already gone: no hook
	if o.removes != 1 {
		t.Fatalf("removes = %d after 1 effective Remove, want 1", o.removes)
	}
	o.check(t, v)
}

func TestObserverApplyExchange(t *testing.T) {
	v := New(1, 2)
	o := newTally(1)
	v.SetObserver(o)
	v.Add(desc(2, 5))
	v.Add(desc(3, 1))
	rng := rand.New(rand.NewSource(1))
	// Union {2(5), 3(1), 4(0), 5(9)} truncates to 2: hooks must report the
	// dropped originals as removed and the surviving newcomers as added.
	v.ApplyExchange(MergeHealer, []Descriptor{desc(4, 0), desc(5, 9)}, nil, rng)
	o.check(t, v)
	if o.adds < 2 {
		t.Fatalf("adds = %d, want at least the 2 initial entries", o.adds)
	}
}

// TestObserverRandomizedExchanges drives two observed views through many
// random exchanges and checks the tallies still mirror the views after each
// merge — the property the incremental health accumulators depend on.
func TestObserverRandomizedExchanges(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		a, b := New(1, 4), New(2, 4)
		oa, ob := newTally(1), newTally(2)
		a.SetObserver(oa)
		b.SetObserver(ob)
		for id := uint64(3); id < 9; id++ {
			a.Add(desc(id, uint32(rng.Intn(10))))
			b.Add(desc(id+6, uint32(rng.Intn(10))))
		}
		for step := 0; step < 20; step++ {
			policy := MergeHealer
			if step%2 == 1 {
				policy = MergeSwapper
			}
			sent := a.PrepareExchange(policy, rng)
			reply := b.PrepareExchange(policy, rng)
			a.ApplyExchange(policy, reply, sent, rng)
			b.ApplyExchange(policy, sent, reply, rng)
			oa.check(t, a)
			ob.check(t, b)
		}
	}
}

// TestObserverDedupNoHooks pins the duplicate-resolution rule: replacing a
// descriptor for an ID already in the view (younger age, new address) is not
// a membership change and must not fire hooks for it.
func TestObserverDedupNoHooks(t *testing.T) {
	v := New(1, 4)
	v.Add(desc(2, 9))
	o := newTally(1)
	v.SetObserver(o)
	o.present[2] = 1 // seed the tally with the pre-observer entry
	rng := rand.New(rand.NewSource(1))
	fresh := desc(2, 1)
	fresh.Addr = ident.Endpoint{IP: 99, Port: 99}
	v.ApplyExchange(MergeHealer, []Descriptor{fresh}, nil, rng)
	if o.adds != 0 || o.removes != 0 {
		t.Fatalf("dedup fired hooks: %d adds, %d removes, want 0/0", o.adds, o.removes)
	}
	o.check(t, v)
}
