package view

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// The reference implementations below are verbatim copies of the pre-scratch
// exchange code (index-sort moveOldestToEnd, splice-based ApplyExchange).
// The equivalence tests drive the optimized code and the reference with
// identical inputs and RNG seeds and require bit-identical resulting views
// and identical RNG consumption, locking in that the zero-allocation rewrite
// changed nothing observable.

func refMoveOldestToEnd(ds []Descriptor, h int) {
	if h <= 0 || len(ds) <= 1 {
		return
	}
	if h > len(ds) {
		h = len(ds)
	}
	idx := make([]int, len(ds))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return ds[idx[a]].Age > ds[idx[b]].Age })
	oldest := make(map[int]bool, h)
	for _, i := range idx[:h] {
		oldest[i] = true
	}
	rest := make([]Descriptor, 0, len(ds))
	tail := make([]Descriptor, 0, h)
	for i, d := range ds {
		if oldest[i] {
			tail = append(tail, d)
		} else {
			rest = append(rest, d)
		}
	}
	copy(ds, append(rest, tail...))
}

func refPrepareExchange(v *View, policy Merge, rng *rand.Rand) []Descriptor {
	h, _ := policy.HS(v.maxSize)
	rng.Shuffle(len(v.entries), func(i, j int) { v.entries[i], v.entries[j] = v.entries[j], v.entries[i] })
	refMoveOldestToEnd(v.entries, h)
	sent := make([]Descriptor, v.ExchangeLen())
	copy(sent, v.entries)
	return sent
}

func refApplyExchange(v *View, policy Merge, received, sent []Descriptor, rng *rand.Rand) {
	union := make([]Descriptor, 0, len(v.entries)+len(received))
	union = append(union, v.entries...)
	for _, d := range received {
		if d.ID == v.self || d.ID.IsNil() {
			continue
		}
		if i := indexIn(union, d.ID); i >= 0 {
			if d.Age < union[i].Age {
				union[i] = d
			}
			continue
		}
		union = append(union, d)
	}
	c := v.maxSize
	h, s := policy.HS(c)
	for drop := min(h, len(union)-c); drop > 0; drop-- {
		oldest := 0
		for i := 1; i < len(union); i++ {
			if union[i].Age > union[oldest].Age {
				oldest = i
			}
		}
		union = append(union[:oldest], union[oldest+1:]...)
	}
	if drop := min(s, len(union)-c); drop > 0 {
		for _, d := range sent {
			if drop == 0 {
				break
			}
			if i := indexIn(union, d.ID); i >= 0 {
				union = append(union[:i], union[i+1:]...)
				drop--
			}
		}
	}
	for len(union) > c {
		i := rng.Intn(len(union))
		union = append(union[:i], union[i+1:]...)
	}
	v.entries = union
}

// sameDescs compares two descriptor slices elementwise, treating nil and
// empty as equal.
func sameDescs(a, b []Descriptor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// buildView constructs a view of the given size holding one descriptor per
// (id, age) pair, skipping invalid ones.
func buildView(maxSize int, ids []uint16, ageMod uint32) *View {
	v := New(1, maxSize)
	for _, id := range ids {
		v.Add(desc(uint64(id), uint32(id)%ageMod))
	}
	return v
}

// TestExchangeEquivalence drives a full shuffle round (PrepareExchange then
// ApplyExchange) through the optimized and the reference implementations with
// identical seeds, for every merge policy, and requires identical view
// contents, identical shipped buffers, and identical RNG positions.
func TestExchangeEquivalence(t *testing.T) {
	f := func(ownIDs, recvIDs []uint16, policyRaw uint8, maxSizeRaw uint8, seed int64) bool {
		policy := Merge(policyRaw % 3)
		maxSize := int(maxSizeRaw%30) + 1
		vNew := buildView(maxSize, ownIDs, 13)
		vRef := buildView(maxSize, ownIDs, 13)

		var recv []Descriptor
		for _, id := range recvIDs {
			recv = append(recv, desc(uint64(id), uint32(id)%7))
		}

		rngNew := rand.New(rand.NewSource(seed))
		rngRef := rand.New(rand.NewSource(seed))

		sentNew := vNew.PrepareExchangeInto(policy, rngNew, nil)
		sentRef := refPrepareExchange(vRef, policy, rngRef)
		if !sameDescs(sentNew, sentRef) {
			t.Logf("sent mismatch: %v vs %v", sentNew, sentRef)
			return false
		}
		vNew.ApplyExchange(policy, recv, sentNew, rngNew)
		refApplyExchange(vRef, policy, recv, sentRef, rngRef)
		if !sameDescs(vNew.Entries(), vRef.Entries()) {
			t.Logf("view mismatch:\n new %v\n ref %v", vNew, vRef)
			return false
		}
		// Identical RNG position: the next draw must agree.
		return rngNew.Uint64() == rngRef.Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestExchangeEquivalenceSteadyState runs many consecutive exchanges on one
// long-lived view (the scratch-reuse case) against the reference on a twin
// view, checking equality after every round.
func TestExchangeEquivalenceSteadyState(t *testing.T) {
	for _, policy := range []Merge{MergeBlind, MergeHealer, MergeSwapper} {
		vNew := buildView(15, []uint16{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 11)
		vRef := buildView(15, []uint16{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 11)
		rngNew := rand.New(rand.NewSource(99))
		rngRef := rand.New(rand.NewSource(99))
		recvRNG := rand.New(rand.NewSource(7))
		var sentBuf []Descriptor
		for round := 0; round < 200; round++ {
			recv := make([]Descriptor, recvRNG.Intn(8))
			for i := range recv {
				recv[i] = desc(uint64(recvRNG.Intn(40)+2), uint32(recvRNG.Intn(20)))
			}
			sentBuf = vNew.PrepareExchangeInto(policy, rngNew, sentBuf[:0])
			sentRef := refPrepareExchange(vRef, policy, rngRef)
			if !sameDescs(sentBuf, sentRef) {
				t.Fatalf("%v round %d: sent mismatch", policy, round)
			}
			vNew.ApplyExchange(policy, recv, sentBuf, rngNew)
			refApplyExchange(vRef, policy, recv, sentRef, rngRef)
			if !sameDescs(vNew.Entries(), vRef.Entries()) {
				t.Fatalf("%v round %d:\n new %v\n ref %v", policy, round, vNew, vRef)
			}
			vNew.IncreaseAge()
			vRef.IncreaseAge()
		}
	}
}

// TestExchangeZeroAllocs locks in the tentpole: a steady-state shuffle round
// (PrepareExchangeInto with a reused buffer + ApplyExchange) allocates
// nothing.
func TestExchangeZeroAllocs(t *testing.T) {
	for _, policy := range []Merge{MergeBlind, MergeHealer, MergeSwapper} {
		v := buildView(15, []uint16{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 11)
		rng := rand.New(rand.NewSource(1))
		recv := make([]Descriptor, 8)
		for i := range recv {
			recv[i] = desc(uint64(100+i), uint32(i))
		}
		var sent []Descriptor
		// Warm the scratch buffers once; steady state begins afterwards.
		sent = v.PrepareExchangeInto(policy, rng, sent[:0])
		v.ApplyExchange(policy, recv, sent, rng)
		allocs := testing.AllocsPerRun(100, func() {
			sent = v.PrepareExchangeInto(policy, rng, sent[:0])
			v.ApplyExchange(policy, recv, sent, rng)
			v.IncreaseAge()
		})
		if allocs != 0 {
			t.Errorf("%v: exchange round allocates %.1f times, want 0", policy, allocs)
		}
	}
}

// TestSharedScratchEquivalence interleaves exchanges of many views sharing
// one Scratch (the per-shard layout of the simulator) against twin views with
// private scratch, requiring bit-identical contents and RNG positions: the
// scratch is pure working storage, never carried state.
func TestSharedScratchEquivalence(t *testing.T) {
	const nViews = 16
	var sc Scratch
	shared := make([]*View, nViews)
	private := make([]*View, nViews)
	rngS := make([]*rand.Rand, nViews)
	rngP := make([]*rand.Rand, nViews)
	for i := range shared {
		shared[i] = NewShared(1, 15, &sc)
		private[i] = New(1, 15)
		for id := 2; id < 18; id++ {
			d := desc(uint64(id+i), uint32((id*7+i)%11))
			shared[i].Add(d)
			private[i].Add(d)
		}
		rngS[i] = rand.New(rand.NewSource(int64(i + 1)))
		rngP[i] = rand.New(rand.NewSource(int64(i + 1)))
	}
	order := rand.New(rand.NewSource(42))
	recvRNG := rand.New(rand.NewSource(7))
	var sentS, sentP []Descriptor
	for step := 0; step < 2000; step++ {
		i := order.Intn(nViews)
		policy := Merge(order.Intn(3))
		recv := make([]Descriptor, recvRNG.Intn(8))
		for k := range recv {
			recv[k] = desc(uint64(recvRNG.Intn(60)+2), uint32(recvRNG.Intn(20)))
		}
		sentS = shared[i].PrepareExchangeInto(policy, rngS[i], sentS[:0])
		sentP = private[i].PrepareExchangeInto(policy, rngP[i], sentP[:0])
		if !sameDescs(sentS, sentP) {
			t.Fatalf("step %d view %d: sent mismatch", step, i)
		}
		shared[i].ApplyExchange(policy, recv, sentS, rngS[i])
		private[i].ApplyExchange(policy, recv, sentP, rngP[i])
		if !sameDescs(shared[i].Entries(), private[i].Entries()) {
			t.Fatalf("step %d view %d:\n shared  %v\n private %v", step, i, shared[i], private[i])
		}
		shared[i].IncreaseAge()
		private[i].IncreaseAge()
	}
	for i := range shared {
		if rngS[i].Uint64() != rngP[i].Uint64() {
			t.Fatalf("view %d: RNG positions diverged", i)
		}
	}
}

// TestEntriesInto pins the overwrite semantics and allocation-free reuse of
// the buffered snapshot API.
func TestEntriesInto(t *testing.T) {
	v := buildView(15, []uint16{2, 3, 4, 5, 6}, 11)
	buf := v.EntriesInto(nil)
	if !sameDescs(buf, v.Entries()) {
		t.Fatalf("EntriesInto = %v, want %v", buf, v.Entries())
	}
	// Reuse overwrites, even from a longer previous snapshot.
	v.Remove(2)
	buf = v.EntriesInto(buf)
	if !sameDescs(buf, v.Entries()) {
		t.Fatalf("reused EntriesInto = %v, want %v", buf, v.Entries())
	}
	allocs := testing.AllocsPerRun(100, func() {
		buf = v.EntriesInto(buf)
	})
	if allocs != 0 {
		t.Errorf("EntriesInto with warm buffer allocates %.1f times, want 0", allocs)
	}
}
