package view

import (
	"math/rand"
	"testing"
)

// TestMarkOldestEquivalence pins the one-pass top-h selection in markOldest
// against the reference repeated-argmax (oldest first, ties toward the
// earlier index) it replaced: the marked sets must be identical for every
// (ages, h), including h = 0, h > len, and heavy age ties.
func TestMarkOldestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20000; iter++ {
		n := 1 + rng.Intn(40)
		ages := make([]int64, n)
		for i := range ages {
			ages[i] = int64(rng.Intn(6)) // few distinct ages: force ties
		}
		if iter%7 == 0 {
			// Push one age outside the histogram range to exercise the
			// generic fallback path.
			ages[rng.Intn(n)] = 256 + int64(rng.Intn(1000))
		}
		h := rng.Intn(n + 2)
		ref := append([]int64(nil), ages...)
		hh := min(h, len(ref))
		for k := 0; k < hh; k++ {
			best, bestAge := 0, int64(-1)
			for i, a := range ref {
				if a > bestAge {
					best, bestAge = i, a
				}
			}
			ref[best] = -1
		}
		got := append([]int64(nil), ages...)
		var cnt [256]uint16
		markOldest(got, h, &cnt)
		for i := range ref {
			if (ref[i] < 0) != (got[i] < 0) {
				t.Fatalf("iter %d: mismatch at index %d\nages=%v h=%d\nref=%v\ngot=%v",
					iter, i, ages, h, ref, got)
			}
		}
	}
}
