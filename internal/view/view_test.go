package view

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ident"
)

func desc(id uint64, age uint32) Descriptor {
	return Descriptor{
		ID:    ident.NodeID(id),
		Addr:  ident.Endpoint{IP: ident.IP(id), Port: uint16(id)},
		Class: ident.Public,
		Age:   age,
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestAddRules(t *testing.T) {
	v := New(1, 3)
	if v.Add(desc(1, 0)) {
		t.Error("Add accepted the owner's own descriptor")
	}
	if v.Add(Descriptor{}) {
		t.Error("Add accepted a nil ID")
	}
	if !v.Add(desc(2, 0)) || !v.Add(desc(3, 0)) || !v.Add(desc(4, 0)) {
		t.Fatal("Add rejected valid descriptors")
	}
	if v.Add(desc(2, 5)) {
		t.Error("Add accepted a duplicate")
	}
	if v.Add(desc(5, 0)) {
		t.Error("Add accepted beyond maxSize")
	}
	if v.Len() != 3 {
		t.Errorf("Len = %d, want 3", v.Len())
	}
	if err := v.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestGetContainsRemove(t *testing.T) {
	v := New(1, 4)
	v.Add(desc(2, 7))
	if !v.Contains(2) || v.Contains(3) {
		t.Error("Contains wrong")
	}
	d, ok := v.Get(2)
	if !ok || d.Age != 7 {
		t.Errorf("Get(2) = %v, %v", d, ok)
	}
	if !v.Remove(2) || v.Remove(2) {
		t.Error("Remove wrong")
	}
}

func TestIncreaseAge(t *testing.T) {
	v := New(1, 4)
	v.Add(desc(2, 0))
	v.Add(desc(3, 9))
	v.IncreaseAge()
	d2, _ := v.Get(2)
	d3, _ := v.Get(3)
	if d2.Age != 1 || d3.Age != 10 {
		t.Errorf("ages after increase: %d, %d; want 1, 10", d2.Age, d3.Age)
	}
}

func TestSelectEmpty(t *testing.T) {
	v := New(1, 4)
	rng := rand.New(rand.NewSource(1))
	if _, ok := v.Select(SelectRand, rng); ok {
		t.Error("Select on empty view returned an entry")
	}
}

func TestSelectTailPicksOldest(t *testing.T) {
	v := New(1, 4)
	v.Add(desc(2, 3))
	v.Add(desc(3, 9))
	v.Add(desc(4, 1))
	rng := rand.New(rand.NewSource(1))
	d, ok := v.Select(SelectTail, rng)
	if !ok || d.ID != 3 {
		t.Errorf("SelectTail = %v, %v; want n3", d, ok)
	}
}

func TestSelectRandIsUniformish(t *testing.T) {
	v := New(1, 3)
	v.Add(desc(2, 0))
	v.Add(desc(3, 0))
	v.Add(desc(4, 0))
	rng := rand.New(rand.NewSource(42))
	counts := map[ident.NodeID]int{}
	const trials = 3000
	for i := 0; i < trials; i++ {
		d, _ := v.Select(SelectRand, rng)
		counts[d.ID]++
	}
	for id, c := range counts {
		if c < trials/3-200 || c > trials/3+200 {
			t.Errorf("peer %v selected %d times out of %d, far from uniform", id, c, trials)
		}
	}
}

func TestApplyExchangeHealerDropsOldest(t *testing.T) {
	v := New(1, 2)
	v.Add(desc(2, 5))
	v.Add(desc(3, 1))
	rng := rand.New(rand.NewSource(1))
	// Union is {2(age5), 3(age1), 4(age0), 5(age9)}; healer drops
	// min(c/2=1, size-c=2) = 1 oldest (5), then random truncation to 2.
	v.ApplyExchange(MergeHealer, []Descriptor{desc(4, 0), desc(5, 9)}, nil, rng)
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Contains(5) {
		t.Errorf("healer kept the oldest entry: %v", v)
	}
}

func TestApplyExchangeSwapperDropsSent(t *testing.T) {
	v := New(1, 2)
	v.Add(desc(2, 0))
	v.Add(desc(3, 0))
	rng := rand.New(rand.NewSource(1))
	sent := []Descriptor{desc(2, 0)}
	// Union has 4 entries, c=2, S=c/2=1: the sent entry n2 is dropped
	// first, then one random drop brings the view to 2.
	v.ApplyExchange(MergeSwapper, []Descriptor{desc(4, 50), desc(5, 60)}, sent, rng)
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.Contains(2) {
		t.Errorf("swapper kept the sent entry: %v", v)
	}
}

func TestApplyExchangeDedupKeepsYoungerAndUpdatesAddr(t *testing.T) {
	v := New(1, 4)
	old := desc(2, 9)
	v.Add(old)
	fresh := desc(2, 1)
	fresh.Addr = ident.Endpoint{IP: 99, Port: 99}
	rng := rand.New(rand.NewSource(1))
	v.ApplyExchange(MergeHealer, []Descriptor{fresh}, nil, rng)
	d, ok := v.Get(2)
	if !ok || d.Age != 1 || d.Addr != fresh.Addr {
		t.Errorf("dedup kept stale descriptor: %v", d)
	}
	// An older duplicate must not replace a younger existing entry.
	v.ApplyExchange(MergeHealer, []Descriptor{desc(2, 8)}, nil, rng)
	d, _ = v.Get(2)
	if d.Age != 1 {
		t.Errorf("older duplicate overwrote younger entry: %v", d)
	}
}

func TestApplyExchangeExcludesSelfAndNil(t *testing.T) {
	v := New(1, 4)
	rng := rand.New(rand.NewSource(1))
	v.ApplyExchange(MergeBlind, []Descriptor{desc(1, 0), {}, desc(2, 0)}, nil, rng)
	if v.Contains(1) || v.Len() != 1 {
		t.Errorf("merge admitted self or nil: %v", v)
	}
}

func TestApplyExchangeNoTruncationNeeded(t *testing.T) {
	v := New(1, 10)
	v.Add(desc(2, 0))
	rng := rand.New(rand.NewSource(1))
	v.ApplyExchange(MergeBlind, []Descriptor{desc(3, 0)}, nil, rng)
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
}

func TestPrepareExchangeShipsHalfView(t *testing.T) {
	v := New(1, 8)
	for i := 2; i <= 9; i++ {
		v.Add(desc(uint64(i), uint32(i)))
	}
	rng := rand.New(rand.NewSource(7))
	sent := v.PrepareExchange(MergeHealer, rng)
	if len(sent) != 3 { // c/2 - 1 = 3
		t.Fatalf("sent %d entries, want 3", len(sent))
	}
	// With H = c/2 = 4, the 4 oldest (ages 6..9) are moved to the end and
	// must not be shipped.
	for _, d := range sent {
		if d.Age >= 6 {
			t.Errorf("healer shipped old entry %v", d)
		}
	}
	// The view itself is only permuted, never shrunk.
	if v.Len() != 8 {
		t.Errorf("PrepareExchange changed view size to %d", v.Len())
	}
	if err := v.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPrepareExchangeSmallView(t *testing.T) {
	v := New(1, 8)
	v.Add(desc(2, 0))
	rng := rand.New(rand.NewSource(7))
	if sent := v.PrepareExchange(MergeBlind, rng); len(sent) != 1 {
		t.Errorf("sent %d entries from 1-entry view, want 1", len(sent))
	}
	empty := New(1, 2)
	if sent := empty.PrepareExchange(MergeBlind, rng); len(sent) != 0 {
		t.Errorf("sent %d entries from empty view", len(sent))
	}
}

func TestExchangeLen(t *testing.T) {
	v := New(1, 15)
	if v.ExchangeLen() != 0 {
		t.Errorf("ExchangeLen on empty view = %d", v.ExchangeLen())
	}
	for i := 2; i <= 16; i++ {
		v.Add(desc(uint64(i), 0))
	}
	if v.ExchangeLen() != 6 { // 15/2 - 1
		t.Errorf("ExchangeLen = %d, want 6", v.ExchangeLen())
	}
}

func TestHSMapping(t *testing.T) {
	cases := []struct {
		m    Merge
		h, s int
	}{
		{MergeBlind, 0, 0},
		{MergeHealer, 7, 0},
		{MergeSwapper, 0, 7},
	}
	for _, c := range cases {
		h, s := c.m.HS(15)
		if h != c.h || s != c.s {
			t.Errorf("%v.HS(15) = (%d,%d), want (%d,%d)", c.m, h, s, c.h, c.s)
		}
	}
}

// TestMergeInvariants is a property test: after any merge, the view holds no
// duplicates, no self, and at most maxSize entries, and every kept entry came
// from the union of the previous view and the received slice.
func TestMergeInvariants(t *testing.T) {
	f := func(ownIDs, recvIDs []uint16, policyRaw uint8, seed int64) bool {
		policy := Merge(policyRaw % 3)
		rng := rand.New(rand.NewSource(seed))
		v := New(1, 8)
		valid := map[ident.NodeID]bool{}
		for _, id := range ownIDs {
			d := desc(uint64(id), uint32(id%13))
			if v.Add(d) {
				valid[d.ID] = true
			}
		}
		var recv []Descriptor
		for _, id := range recvIDs {
			d := desc(uint64(id), uint32(id%7))
			recv = append(recv, d)
			if d.ID != 1 && !d.ID.IsNil() {
				valid[d.ID] = true
			}
		}
		var sent []Descriptor
		if len(ownIDs) > 0 {
			sent = v.PrepareExchange(policy, rng)
		}
		v.ApplyExchange(policy, recv, sent, rng)
		if err := v.Validate(); err != nil {
			return false
		}
		for _, e := range v.Entries() {
			if !valid[e.ID] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestApplyExchangeHealerProperty: with healer, the H oldest entries of an
// oversized union never survive.
func TestApplyExchangeHealerProperty(t *testing.T) {
	f := func(ownIDs, recvIDs []uint16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const c = 5
		v := New(1, c)
		for _, id := range ownIDs {
			v.Add(desc(uint64(id), uint32(id)))
		}
		union := map[ident.NodeID]uint32{}
		for _, e := range v.Entries() {
			union[e.ID] = e.Age
		}
		var recv []Descriptor
		for _, id := range recvIDs {
			d := desc(uint64(id), uint32(id/2))
			recv = append(recv, d)
			if d.ID == 1 || d.ID.IsNil() {
				continue
			}
			if age, ok := union[d.ID]; !ok || d.Age < age {
				union[d.ID] = d.Age
			}
		}
		v.ApplyExchange(MergeHealer, recv, nil, rng)
		if len(union) <= c {
			return v.Len() == len(union)
		}
		// The drop-count h = min(c/2, |union|-c) oldest entries must be gone.
		h := c / 2
		if over := len(union) - c; over < h {
			h = over
		}
		ages := make([]int, 0, len(union))
		for _, age := range union {
			ages = append(ages, int(age))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(ages)))
		// Any kept entry strictly older than the h-th oldest age proves a
		// violation only when ages are distinct; allow ties by checking
		// counts instead: at most (number of union entries with age >=
		// threshold) - h entries of such age may survive.
		threshold := ages[h-1]
		oldCount := 0
		for _, a := range ages {
			if a >= threshold {
				oldCount++
			}
		}
		keptOld := 0
		for _, e := range v.Entries() {
			if int(e.Age) >= threshold {
				keptOld++
			}
		}
		return keptOld <= oldCount-h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPolicyParsersAndStrings(t *testing.T) {
	for _, s := range []Selection{SelectRand, SelectTail} {
		got, err := ParseSelection(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSelection(%q) = %v, %v", s.String(), got, err)
		}
	}
	for _, m := range []Merge{MergeBlind, MergeHealer, MergeSwapper} {
		got, err := ParseMerge(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMerge(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseSelection("x"); err == nil {
		t.Error("ParseSelection(x) succeeded")
	}
	if _, err := ParseMerge("x"); err == nil {
		t.Error("ParseMerge(x) succeeded")
	}
	if Selection(9).String() == "" || Merge(9).String() == "" {
		t.Error("String on unknown policy empty")
	}
}

func TestDescriptorFreshAndString(t *testing.T) {
	d := desc(7, 42)
	if f := d.Fresh(); f.Age != 0 || f.ID != d.ID {
		t.Errorf("Fresh = %v", f)
	}
	if d.String() == "" || New(1, 2).String() == "" {
		t.Error("String() empty")
	}
}
