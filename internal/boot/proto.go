// Package boot implements the join-time machinery every experiment in the
// paper presupposes but the protocol pseudocode leaves out: an introducer
// service that (a) tells joining peers their public mapping and NAT class
// (STUN-style binding probes, RFC 3489 flavour), (b) hands them an initial
// view of seed peers, and (c) coordinates the first hole punches so those
// seeds are immediately usable — the live analogue of the simulator's
// InstallHole bootstrap.
//
// The wire format is deliberately distinct from the gossip protocol's
// (different magic byte), so both can share a socket without ambiguity.
package boot

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// Kind discriminates bootstrap message types.
type Kind uint8

// Bootstrap message kinds.
const (
	// KindBindingReq asks the introducer to report the sender's observed
	// endpoint, optionally replying from an alternate socket to probe NAT
	// filtering.
	KindBindingReq Kind = iota + 1
	// KindBindingResp carries the observed endpoint and the introducer's
	// alternate endpoints.
	KindBindingResp
	// KindJoinReq registers the joiner and requests seeds.
	KindJoinReq
	// KindJoinResp carries the assigned seed descriptors.
	KindJoinResp
	// KindPunch asks the receiver to open a NAT hole toward the carried
	// peer (sent by the introducer to seeds, and by the joiner to seeds as
	// the hole-opening datagram itself).
	KindPunch
)

// ReplyVia selects which introducer socket answers a binding request.
type ReplyVia uint8

// Reply paths for binding probes.
const (
	// ViaPrimary answers from the socket that received the request.
	ViaPrimary ReplyVia = iota
	// ViaAltPort answers from the same IP, different port (RC vs PRC
	// discrimination).
	ViaAltPort
	// ViaAltIP answers from a different IP (FC vs RC discrimination).
	ViaAltIP
)

// Message is one bootstrap datagram.
type Message struct {
	Kind Kind
	// Seq matches responses to requests.
	Seq uint32
	// Via is the requested reply path (binding requests only).
	Via ReplyVia
	// Mapped is the observed endpoint of the requester (binding responses).
	Mapped ident.Endpoint
	// AltPort and AltIP advertise the introducer's alternate sockets
	// (binding responses; zero when unavailable).
	AltPort ident.Endpoint
	AltIP   ident.Endpoint
	// Self describes the joiner (join requests) or the peer to punch
	// toward (punch messages).
	Self view.Descriptor
	// Seeds carries the assigned initial view (join responses).
	Seeds []view.Descriptor
}

const magic = 0xB0

// MaxSeeds bounds the seed list accepted by Unmarshal.
const MaxSeeds = 64

// ErrMalformed is wrapped by every Unmarshal error.
var ErrMalformed = errors.New("boot: malformed message")

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if m.Kind < KindBindingReq || m.Kind > KindPunch {
		return nil, fmt.Errorf("boot: cannot marshal invalid kind %d", m.Kind)
	}
	if len(m.Seeds) > MaxSeeds {
		return nil, fmt.Errorf("boot: %d seeds exceed limit %d", len(m.Seeds), MaxSeeds)
	}
	b := make([]byte, 0, 64+len(m.Seeds)*wire.DescriptorSize)
	b = append(b, magic, byte(m.Kind), byte(m.Via))
	b = binary.BigEndian.AppendUint32(b, m.Seq)
	b = wire.AppendEndpoint(b, m.Mapped)
	b = wire.AppendEndpoint(b, m.AltPort)
	b = wire.AppendEndpoint(b, m.AltIP)
	b = wire.AppendDescriptor(b, m.Self)
	b = binary.BigEndian.AppendUint16(b, uint16(len(m.Seeds)))
	for _, s := range m.Seeds {
		b = wire.AppendDescriptor(b, s)
	}
	return b, nil
}

// headerLen is the fixed prefix before the seed list.
const headerLen = 3 + 4 + 3*6 + wire.DescriptorSize + 2

// IsBoot reports whether the datagram looks like a bootstrap message (as
// opposed to a gossip protocol message), so both protocols can share a
// socket.
func IsBoot(data []byte) bool { return len(data) > 0 && data[0] == magic }

// Unmarshal decodes a bootstrap message.
func Unmarshal(data []byte) (*Message, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrMalformed, len(data), headerLen)
	}
	if data[0] != magic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrMalformed, data[0])
	}
	m := &Message{Kind: Kind(data[1]), Via: ReplyVia(data[2])}
	if m.Kind < KindBindingReq || m.Kind > KindPunch {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, data[1])
	}
	if m.Via > ViaAltIP {
		return nil, fmt.Errorf("%w: unknown reply path %d", ErrMalformed, data[2])
	}
	m.Seq = binary.BigEndian.Uint32(data[3:])
	off := 7
	var err error
	if m.Mapped, err = wire.DecodeEndpoint(data[off:]); err != nil {
		return nil, err
	}
	off += 6
	if m.AltPort, err = wire.DecodeEndpoint(data[off:]); err != nil {
		return nil, err
	}
	off += 6
	if m.AltIP, err = wire.DecodeEndpoint(data[off:]); err != nil {
		return nil, err
	}
	off += 6
	if m.Self, err = wire.DecodeDescriptor(data[off:]); err != nil {
		return nil, err
	}
	off += wire.DescriptorSize
	n := int(binary.BigEndian.Uint16(data[off:]))
	off += 2
	if n > MaxSeeds {
		return nil, fmt.Errorf("%w: %d seeds exceed limit %d", ErrMalformed, n, MaxSeeds)
	}
	if len(data) != off+n*wire.DescriptorSize {
		return nil, fmt.Errorf("%w: %d bytes for %d seeds, want %d", ErrMalformed, len(data), n, off+n*wire.DescriptorSize)
	}
	for i := 0; i < n; i++ {
		d, err := wire.DecodeDescriptor(data[off:])
		if err != nil {
			return nil, err
		}
		m.Seeds = append(m.Seeds, d)
		off += wire.DescriptorSize
	}
	return m, nil
}
