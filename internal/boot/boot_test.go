package boot

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/ident"
	"repro/internal/transport"
	"repro/internal/view"
)

func fastJoin() JoinConfig {
	return JoinConfig{Timeout: 150 * time.Millisecond, Probes: 1}
}

// newIntroducer stands up a fully-equipped introducer (primary + alternate
// port + alternate IP) on the given switch.
func newIntroducer(t *testing.T, sw *transport.Switch) (*Introducer, ident.Endpoint) {
	t.Helper()
	primary := sw.Attach()
	altPort := sw.AttachSibling(primary, 9001)
	altIP := sw.Attach()
	in := NewIntroducer(IntroducerConfig{Primary: primary, AltPort: altPort, AltIP: altIP})
	t.Cleanup(func() {
		in.Close()
		primary.Close()
		altPort.Close()
		altIP.Close()
	})
	return in, primary.LocalAddr()
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []*Message{
		{Kind: KindBindingReq, Seq: 7, Via: ViaAltIP},
		{
			Kind: KindBindingResp, Seq: 7,
			Mapped:  ident.Endpoint{IP: 1, Port: 2},
			AltPort: ident.Endpoint{IP: 3, Port: 4},
			AltIP:   ident.Endpoint{IP: 5, Port: 6},
		},
		{Kind: KindJoinReq, Self: view.Descriptor{ID: 9, Addr: ident.Endpoint{IP: 9, Port: 9}, Class: ident.Symmetric}},
		{Kind: KindJoinResp, Seeds: []view.Descriptor{
			{ID: 1, Addr: ident.Endpoint{IP: 1, Port: 1}, Class: ident.Public},
			{ID: 2, Addr: ident.Endpoint{IP: 2, Port: 2}, Class: ident.RestrictedCone},
		}},
		{Kind: KindPunch, Self: view.Descriptor{ID: 3, Class: ident.PortRestrictedCone}},
	}
	for _, m := range msgs {
		data, err := m.Marshal()
		if err != nil {
			t.Fatalf("%v: %v", m.Kind, err)
		}
		if !IsBoot(data) {
			t.Errorf("%v: IsBoot = false", m.Kind)
		}
		got, err := Unmarshal(data)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", m.Kind, got, m)
		}
	}
}

func TestCodecErrors(t *testing.T) {
	good, err := (&Message{Kind: KindJoinResp, Seeds: []view.Descriptor{{ID: 1}}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		good[:5],
		append(append([]byte{}, good...), 1), // trailing byte
		func() []byte { b := append([]byte{}, good...); b[0] = 0x7f; return b }(), // bad magic
		func() []byte { b := append([]byte{}, good...); b[1] = 99; return b }(),   // bad kind
		func() []byte { b := append([]byte{}, good...); b[2] = 99; return b }(),   // bad via
	}
	for i, data := range cases {
		if _, err := Unmarshal(data); !errors.Is(err, ErrMalformed) {
			t.Errorf("case %d: err = %v, want ErrMalformed", i, err)
		}
	}
	if _, err := (&Message{Kind: 0}).Marshal(); err == nil {
		t.Error("bad kind marshalled")
	}
	if _, err := (&Message{Kind: KindJoinResp, Seeds: make([]view.Descriptor, MaxSeeds+1)}).Marshal(); err == nil {
		t.Error("oversized seed list marshalled")
	}
}

func TestIsBootDistinguishesGossip(t *testing.T) {
	if IsBoot([]byte{1, 2, 3}) {
		t.Error("gossip wire version byte mistaken for boot magic")
	}
	if IsBoot(nil) {
		t.Error("empty datagram is boot")
	}
}

// TestClassification joins through every NAT class and checks the inferred
// class — the live RFC 3489 decision tree over simulated devices.
func TestClassification(t *testing.T) {
	cases := []ident.NATClass{
		ident.Public,
		ident.FullCone,
		ident.RestrictedCone,
		ident.PortRestrictedCone,
		ident.Symmetric,
	}
	for _, class := range cases {
		t.Run(class.String(), func(t *testing.T) {
			sw := transport.NewSwitch(time.Millisecond)
			defer sw.Close()
			_, introducer := newIntroducer(t, sw)

			var tr transport.Transport
			if class == ident.Public {
				p := sw.Attach()
				defer p.Close()
				tr = p
			} else {
				p, _ := sw.AttachNAT(class, time.Minute)
				defer p.Close()
				tr = p
			}
			res, err := Join(tr, introducer, 42, fastJoin())
			if err != nil {
				t.Fatal(err)
			}
			if res.Class != class {
				t.Errorf("classified as %v, want %v", res.Class, class)
			}
			if res.Mapped.IsZero() {
				t.Error("no mapped endpoint")
			}
		})
	}
}

func TestJoinHandsOutSeeds(t *testing.T) {
	sw := transport.NewSwitch(time.Millisecond)
	defer sw.Close()
	in, introducer := newIntroducer(t, sw)

	var members []*transport.MemTransport
	for i := 1; i <= 5; i++ {
		tr, _ := sw.AttachNAT(ident.PortRestrictedCone, time.Minute)
		members = append(members, tr)
		res, err := Join(tr, introducer, ident.NodeID(i), fastJoin())
		if err != nil {
			t.Fatalf("join %d: %v", i, err)
		}
		if want := i - 1; len(res.Seeds) != min(want, 8) {
			t.Errorf("join %d got %d seeds, want %d", i, len(res.Seeds), want)
		}
		// Seeds must never include the joiner.
		for _, s := range res.Seeds {
			if s.ID == ident.NodeID(i) {
				t.Errorf("join %d was handed itself as a seed", i)
			}
		}
	}
	defer func() {
		for _, m := range members {
			m.Close()
		}
	}()
	if in.Members() != 5 {
		t.Errorf("Members = %d, want 5", in.Members())
	}
}

// TestJoinOpensUsableHoles verifies the whole point: after two natted peers
// join, the second can message the first directly even though both sit
// behind port-restricted NATs.
func TestJoinOpensUsableHoles(t *testing.T) {
	sw := transport.NewSwitch(time.Millisecond)
	defer sw.Close()
	_, introducer := newIntroducer(t, sw)

	trA, _ := sw.AttachNAT(ident.PortRestrictedCone, time.Minute)
	defer trA.Close()
	resA, err := Join(trA, introducer, 1, fastJoin())
	if err != nil {
		t.Fatal(err)
	}

	trB, _ := sw.AttachNAT(ident.PortRestrictedCone, time.Minute)
	defer trB.Close()
	resB, err := Join(trB, introducer, 2, fastJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(resB.Seeds) != 1 || resB.Seeds[0].ID != 1 {
		t.Fatalf("B's seeds = %v, want [n1]", resB.Seeds)
	}

	// Give the punch datagrams a moment to cross the switch.
	time.Sleep(50 * time.Millisecond)

	// B sends directly to A's advertised mapping; A's NAT must admit it
	// thanks to the punch A sent after the introducer's request.
	probe, err := (&Message{Kind: KindPunch, Self: view.Descriptor{ID: 2, Addr: resB.Mapped, Class: resB.Class}}).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if err := trB.Send(resA.Mapped, probe); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-trA.Packets():
		m, err := Unmarshal(pkt.Data)
		if err != nil || m.Kind != KindPunch || m.Self.ID != 2 {
			t.Errorf("A received %v, %v", m, err)
		}
	case <-time.After(time.Second):
		t.Fatal("hole not open: B's datagram never reached A")
	}
}

func TestJoinTimeout(t *testing.T) {
	sw := transport.NewSwitch(0)
	defer sw.Close()
	tr := sw.Attach()
	defer tr.Close()
	// Nobody listening at the target endpoint.
	_, err := Join(tr, ident.Endpoint{IP: 0x7e000001, Port: 1}, 1, fastJoin())
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestIntroducerWithoutAlternates(t *testing.T) {
	sw := transport.NewSwitch(time.Millisecond)
	defer sw.Close()
	primary := sw.Attach()
	defer primary.Close()
	in := NewIntroducer(IntroducerConfig{Primary: primary})
	defer in.Close()

	tr, _ := sw.AttachNAT(ident.RestrictedCone, time.Minute)
	defer tr.Close()
	res, err := Join(tr, primary.LocalAddr(), 1, fastJoin())
	if err != nil {
		t.Fatal(err)
	}
	// Without alternate sockets RC degrades to the conservative PRC.
	if res.Class != ident.PortRestrictedCone {
		t.Errorf("degraded classification = %v, want prc", res.Class)
	}
}

func TestIntroducerCloseIdempotent(t *testing.T) {
	sw := transport.NewSwitch(0)
	defer sw.Close()
	primary := sw.Attach()
	defer primary.Close()
	in := NewIntroducer(IntroducerConfig{Primary: primary})
	in.Close()
	in.Close()
}
