package boot

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ident"
	"repro/internal/transport"
	"repro/internal/view"
)

// JoinResult is what a peer needs to start gossiping: its public mapping, its
// NAT class, and an initial view whose holes the introducer pre-punched.
type JoinResult struct {
	// Mapped is the joiner's endpoint as the introducer observed it: the
	// advertised address for the node's descriptor.
	Mapped ident.Endpoint
	// Class is the inferred NAT class.
	Class ident.NATClass
	// Seeds is the assigned initial view.
	Seeds []view.Descriptor
}

// ErrTimeout is returned when the introducer does not answer.
var ErrTimeout = errors.New("boot: introducer timed out")

// JoinConfig parametrizes a Join.
type JoinConfig struct {
	// Timeout bounds each probe round trip (default 2 s; tests use less).
	Timeout time.Duration
	// Probes is the number of retries per probe (default 2).
	Probes int
}

func (c JoinConfig) withDefaults() JoinConfig {
	if c.Timeout == 0 {
		c.Timeout = 2 * time.Second
	}
	if c.Probes == 0 {
		c.Probes = 2
	}
	return c
}

// Join runs the full bootstrap handshake for the peer with the given ID over
// tr: STUN-style binding probes to discover the mapping and classify the NAT,
// then registration for seeds. After Join returns, the caller should pass
// Seeds to nylon.Config.Bootstrap and keep using tr for the node (the
// introducer's Punch messages and the holes they opened remain valid).
//
// Classification follows RFC 3489's decision tree, degraded gracefully when
// the introducer lacks alternate sockets: ambiguous cone classes resolve to
// port-restricted cone, the safe direction (the protocol relays rather than
// punches in its ambiguous corners).
func Join(tr transport.Transport, introducer ident.Endpoint, id ident.NodeID, cfg JoinConfig) (JoinResult, error) {
	cfg = cfg.withDefaults()
	c := &client{tr: tr, cfg: cfg}

	// Probe 1: primary mapping.
	resp1, err := c.binding(introducer, ViaPrimary)
	if err != nil {
		return JoinResult{}, fmt.Errorf("boot: primary binding probe: %w", err)
	}
	res := JoinResult{Mapped: resp1.Mapped}

	switch {
	case resp1.Mapped == tr.LocalAddr():
		res.Class = ident.Public
	default:
		res.Class = c.classify(introducer, resp1)
	}

	// Registration.
	self := view.Descriptor{ID: id, Addr: res.Mapped, Class: res.Class}
	join, err := c.request(introducer, &Message{Kind: KindJoinReq, Seq: c.nextSeq(), Self: self},
		func(m *Message) bool { return m.Kind == KindJoinResp })
	if err != nil {
		return JoinResult{}, fmt.Errorf("boot: join request: %w", err)
	}
	res.Seeds = join.Seeds

	// Open our own holes toward the seeds; their side is handled by the
	// introducer's Punch messages.
	for _, s := range res.Seeds {
		punch, err := (&Message{Kind: KindPunch, Self: self}).Marshal()
		if err == nil {
			_ = tr.Send(s.Addr, punch)
		}
	}
	return res, nil
}

// client sequences request/response exchanges over the transport.
type client struct {
	tr  transport.Transport
	cfg JoinConfig
	seq uint32
}

func (c *client) nextSeq() uint32 { c.seq++; return c.seq }

// binding sends a binding request asking for a reply over the given path and
// waits for the matching response. A timeout is returned when the reply path
// is blocked by the local NAT — which is the signal classification uses.
func (c *client) binding(to ident.Endpoint, via ReplyVia) (*Message, error) {
	seq := c.nextSeq()
	return c.request(to, &Message{Kind: KindBindingReq, Seq: seq, Via: via},
		func(m *Message) bool { return m.Kind == KindBindingResp && m.Seq == seq })
}

func (c *client) request(to ident.Endpoint, req *Message, match func(*Message) bool) (*Message, error) {
	data, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	for attempt := 0; attempt < c.cfg.Probes; attempt++ {
		if err := c.tr.Send(to, data); err != nil {
			return nil, err
		}
		deadline := time.NewTimer(c.cfg.Timeout)
		for {
			select {
			case <-deadline.C:
				goto retry
			case pkt, ok := <-c.tr.Packets():
				if !ok {
					deadline.Stop()
					return nil, errors.New("boot: transport closed")
				}
				m, err := Unmarshal(pkt.Data)
				if err != nil {
					continue // not a bootstrap message; the node isn't running yet
				}
				if match(m) {
					deadline.Stop()
					return m, nil
				}
			}
		}
	retry:
	}
	return nil, ErrTimeout
}

// classify runs the filtering and mapping probes of RFC 3489 against the
// introducer's alternate sockets.
func (c *client) classify(introducer ident.Endpoint, first *Message) ident.NATClass {
	// Filtering test first (RFC 3489 Test II): it must run before anything
	// is sent to the alternate sockets, or cone NATs would admit their
	// replies because of that contact rather than permissive filtering.
	fullCone := false
	if !first.AltIP.IsZero() {
		if _, err := c.binding(introducer, ViaAltIP); err == nil {
			fullCone = true
		}
	}
	// Mapping test (Test I against an alternate destination): symmetric
	// NATs allocate a new mapping per destination.
	usedAltPort := false
	for _, alt := range []ident.Endpoint{first.AltIP, first.AltPort} {
		if alt.IsZero() {
			continue
		}
		if alt == first.AltPort {
			usedAltPort = true
		}
		if resp, err := c.binding(alt, ViaPrimary); err == nil {
			if resp.Mapped != first.Mapped {
				return ident.Symmetric
			}
			break
		}
	}
	if fullCone {
		return ident.FullCone
	}
	// Port-sensitivity test (Test III): only meaningful if the alternate
	// port was never contacted, otherwise a PRC NAT would admit its reply.
	if !first.AltPort.IsZero() && !usedAltPort {
		if _, err := c.binding(introducer, ViaAltPort); err == nil {
			return ident.RestrictedCone
		}
		return ident.PortRestrictedCone
	}
	// Indistinguishable: assume the stricter cone class, which the
	// protocol treats more conservatively (relaying instead of punching in
	// the symmetric corner cases).
	return ident.PortRestrictedCone
}
