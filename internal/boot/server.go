package boot

import (
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/transport"
	"repro/internal/view"
)

// IntroducerConfig configures an introducer service.
type IntroducerConfig struct {
	// Primary is the socket joiners contact. Required.
	Primary transport.Transport
	// AltPort is an optional socket on the same IP, different port, used
	// for the RC/PRC filtering probe.
	AltPort transport.Transport
	// AltIP is an optional socket on a different IP, used for the FC/RC
	// filtering probe and symmetric-mapping detection.
	AltIP transport.Transport
	// MaxSeeds is the number of seeds handed to each joiner (default 8).
	MaxSeeds int
	// MemberTTL is how long a registered member stays eligible as a seed
	// (default 90 s — the NAT hole lifetime, since the hole between the
	// member and the introducer is what keeps PunchRequests deliverable).
	MemberTTL time.Duration
}

// Introducer is the bootstrap server: a public rendez-vous that classifies
// joiners' NATs, registers them, and introduces them to seed peers with
// coordinated hole punching. Create with NewIntroducer, stop with Close.
type Introducer struct {
	cfg IntroducerConfig

	mu      sync.Mutex
	members map[ident.NodeID]*member
	order   []ident.NodeID // registration order, oldest first

	done chan struct{}
	wg   sync.WaitGroup
}

type member struct {
	desc     view.Descriptor
	observed ident.Endpoint
	lastSeen time.Time
}

// NewIntroducer starts the service's receive loops.
func NewIntroducer(cfg IntroducerConfig) *Introducer {
	if cfg.Primary == nil {
		panic("boot: IntroducerConfig.Primary is required")
	}
	if cfg.MaxSeeds == 0 {
		cfg.MaxSeeds = 8
	}
	if cfg.MemberTTL == 0 {
		cfg.MemberTTL = 90 * time.Second
	}
	in := &Introducer{
		cfg:     cfg,
		members: make(map[ident.NodeID]*member),
		done:    make(chan struct{}),
	}
	for _, tr := range []transport.Transport{cfg.Primary, cfg.AltPort, cfg.AltIP} {
		if tr != nil {
			in.wg.Add(1)
			go in.serve(tr)
		}
	}
	return in
}

// Members returns the number of currently registered members.
func (in *Introducer) Members() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.members)
}

func (in *Introducer) serve(tr transport.Transport) {
	defer in.wg.Done()
	for {
		select {
		case <-in.done:
			return
		case pkt, ok := <-tr.Packets():
			if !ok {
				return
			}
			msg, err := Unmarshal(pkt.Data)
			if err != nil {
				continue
			}
			in.handle(tr, pkt.From, msg)
		}
	}
}

func (in *Introducer) send(tr transport.Transport, to ident.Endpoint, m *Message) {
	data, err := m.Marshal()
	if err != nil {
		return
	}
	_ = tr.Send(to, data)
}

func (in *Introducer) altEndpoints() (altPort, altIP ident.Endpoint) {
	if in.cfg.AltPort != nil {
		altPort = in.cfg.AltPort.LocalAddr()
	}
	if in.cfg.AltIP != nil {
		altIP = in.cfg.AltIP.LocalAddr()
	}
	return altPort, altIP
}

func (in *Introducer) handle(tr transport.Transport, from ident.Endpoint, msg *Message) {
	switch msg.Kind {
	case KindBindingReq:
		altPort, altIP := in.altEndpoints()
		resp := &Message{
			Kind: KindBindingResp, Seq: msg.Seq,
			Mapped: from, AltPort: altPort, AltIP: altIP,
		}
		switch msg.Via {
		case ViaAltPort:
			if in.cfg.AltPort != nil {
				in.send(in.cfg.AltPort, from, resp)
			}
		case ViaAltIP:
			if in.cfg.AltIP != nil {
				in.send(in.cfg.AltIP, from, resp)
			}
		default:
			// Reply from the socket that received the request, so
			// mapping probes against the alternate sockets work.
			in.send(tr, from, resp)
		}
	case KindJoinReq:
		seeds := in.register(msg.Self, from)
		in.send(tr, from, &Message{Kind: KindJoinResp, Seq: msg.Seq, Seeds: seeds})
		// Ask each seed to open a hole toward the joiner. The punch
		// travels through the hole the seed's own join (or keepalive)
		// left open toward the introducer.
		joiner := msg.Self
		in.mu.Lock()
		for _, s := range seeds {
			if mem, ok := in.members[s.ID]; ok {
				in.send(in.cfg.Primary, mem.observed, &Message{Kind: KindPunch, Self: joiner})
			}
		}
		in.mu.Unlock()
	case KindPunch:
		// Joiner-side punches never target the introducer; ignore.
	}
}

// register adds or refreshes the member and returns up to MaxSeeds other
// live members, most recent first.
func (in *Introducer) register(d view.Descriptor, observed ident.Endpoint) []view.Descriptor {
	now := time.Now()
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, known := in.members[d.ID]; !known {
		in.order = append(in.order, d.ID)
	}
	in.members[d.ID] = &member{desc: d, observed: observed, lastSeen: now}

	var seeds []view.Descriptor
	for i := len(in.order) - 1; i >= 0 && len(seeds) < in.cfg.MaxSeeds; i-- {
		id := in.order[i]
		mem, ok := in.members[id]
		if !ok || id == d.ID {
			continue
		}
		if now.Sub(mem.lastSeen) > in.cfg.MemberTTL {
			delete(in.members, id)
			continue
		}
		seeds = append(seeds, mem.desc)
	}
	return seeds
}

// Close stops the service. It does not close the transports (the caller owns
// them).
func (in *Introducer) Close() {
	select {
	case <-in.done:
	default:
		close(in.done)
	}
	in.wg.Wait()
}
