// Package xrand provides a tiny, fast random source for per-peer engine
// RNGs. math/rand's default source carries ~5 KB of state and seeds itself
// with hundreds of multiplications, which at 10k-peer simulation scale is
// megabytes of allocation and a measurable share of setup time; SplitMix64
// (Steele et al., "Fast splittable pseudorandom number generators", OOPSLA
// 2014) carries 8 bytes, seeds in one assignment, and passes BigCrush.
//
// The package also derives independent sub-seeds from a root seed, so every
// peer of an experiment gets its own deterministic stream regardless of
// construction order and of which worker runs the experiment point.
package xrand

import "math/rand"

// SplitMix64 implements rand.Source64 with 8 bytes of state.
type SplitMix64 struct {
	state uint64
}

// NewSource returns a SplitMix64 source seeded with seed.
func NewSource(seed int64) *SplitMix64 {
	return &SplitMix64{state: uint64(seed)}
}

// New returns a *rand.Rand drawing from a SplitMix64 source seeded with
// seed. It is a drop-in replacement for rand.New(rand.NewSource(seed)).
func New(seed int64) *rand.Rand {
	return rand.New(NewSource(seed))
}

// Seed implements rand.Source.
func (s *SplitMix64) Seed(seed int64) { s.state = uint64(seed) }

// State returns the source's 8 bytes of state. Together with SetState it
// lets a checkpoint capture and replay a stream exactly: a source restored
// to a captured state produces the same tail of draws as the original.
func (s *SplitMix64) State() uint64 { return s.state }

// SetState restores the source to a state previously returned by State.
func (s *SplitMix64) SetState(v uint64) { s.state = v }

// Stream couples a *rand.Rand with its underlying SplitMix64 source so
// holders of long-lived RNG streams can capture and restore stream state
// (see State/SetState). The embedded Rand is the draw surface; Src is the
// checkpoint surface. rand.Rand buffers nothing relevant on top of its
// source (only Read keeps spare bytes, which nothing here uses), so the
// source state alone replays the stream.
type Stream struct {
	*rand.Rand
	Src *SplitMix64
}

// NewStream returns a capturable RNG stream seeded with seed.
func NewStream(seed int64) *Stream {
	src := NewSource(seed)
	return &Stream{Rand: rand.New(src), Src: src}
}

// Uint64 implements rand.Source64: the splitmix64 output function over a
// Weyl sequence with the golden-ratio increment.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 implements rand.Source.
func (s *SplitMix64) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Mix derives an independent sub-seed from a root seed and a salt (e.g. a
// peer index) by running one splitmix64 step over their combination. Two
// distinct (seed, salt) pairs yield uncorrelated streams, which is what lets
// parallel experiment workers seed their peers without sharing an RNG chain.
func Mix(seed int64, salt uint64) int64 {
	s := SplitMix64{state: uint64(seed) ^ (salt+1)*0xd6e8feb86659fd93}
	return int64(s.Uint64() >> 1)
}
