package xrand

import (
	"math/rand"
	"testing"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if New(1).Uint64() == New(2).Uint64() {
		t.Error("different seeds produced the same first draw")
	}
}

func TestSeedResets(t *testing.T) {
	s := NewSource(7)
	first := s.Uint64()
	s.Uint64()
	s.Seed(7)
	if s.Uint64() != first {
		t.Error("Seed did not reset the stream")
	}
}

func TestMixIndependence(t *testing.T) {
	seen := make(map[int64]bool)
	for seed := int64(1); seed <= 10; seed++ {
		for salt := uint64(0); salt < 100; salt++ {
			v := Mix(seed, salt)
			if v != Mix(seed, salt) {
				t.Fatal("Mix is not deterministic")
			}
			if seen[v] {
				t.Fatalf("Mix collision at seed=%d salt=%d", seed, salt)
			}
			seen[v] = true
		}
	}
}

// TestUniformish sanity-checks the wrapped rand.Rand: Intn over a small
// range should be roughly uniform.
func TestUniformish(t *testing.T) {
	rng := New(3)
	counts := make([]int, 10)
	const trials = 100_000
	for i := 0; i < trials; i++ {
		counts[rng.Intn(10)]++
	}
	for v, c := range counts {
		if c < trials/10-1000 || c > trials/10+1000 {
			t.Errorf("value %d drawn %d times out of %d, far from uniform", v, c, trials)
		}
	}
}

// TestSourceInterface locks in that SplitMix64 satisfies rand.Source64, so
// rand.Rand uses the fast Uint64 path.
func TestSourceInterface(t *testing.T) {
	var _ rand.Source64 = (*SplitMix64)(nil)
}
