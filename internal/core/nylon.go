package core

import (
	"repro/internal/ident"
	"repro/internal/intern"
	"repro/internal/rt"
	"repro/internal/view"
	"repro/internal/wire"
)

// Nylon is the NAT-resilient gossip peer-sampling engine of Fig. 6 of the
// paper. On top of the (push/pull, rand, healer) baseline it adds:
//
//   - a routing table mapping natted view entries to the rendez-vous peer
//     (RVP) that provided them, with TTLs that travel along with view entries
//     during shuffles;
//   - reactive hole punching: OPEN_HOLE messages routed hop-by-hop along RVP
//     chains, a PING that opens the initiator's own NAT, and a PONG that
//     confirms the hole, after which the REQUEST flows directly;
//   - full relaying of exchanges that hole punching cannot serve (symmetric
//     NAT combinations, Fig. 6 lines 5-7 and 20-22).
//
// Two engineering choices go slightly beyond the pseudocode and are
// documented in DESIGN.md: (1) endpoint learning — the engine records the
// observed transport endpoint of every datagram's Via peer, which is what
// makes replies to symmetric-NAT mappings work; (2) routes for received view
// entries are installed toward the transport-level sender (Via) rather than
// the logical shuffle partner, and relays snoop forwarded shuffles the same
// way. For every exchange that completes directly (all non-symmetric
// combinations) Via equals the shuffle partner, so this matches the paper
// exactly; for relayed exchanges it is what keeps the RVP chain invariant —
// "every hop can route the message onward" — actually true.
type Nylon struct {
	cfg    Config
	view   *view.View
	routes *rt.Table
	// pending tracks hole punches started this period, so a PONG triggers
	// exactly one REQUEST (the pseudocode would answer every PONG). It
	// holds at most a couple of IDs, so a slice beats a map.
	pending []ident.NodeID
	// pendingSent remembers the buffer shipped with the round's REQUEST
	// for the swapper policy; pendingTarget is the shuffle partner that
	// must answer before the next period or be evicted from the view
	// (Jelasity et al.'s no-reply eviction — the mechanism that lets the
	// overlay shed departed peers after churn).
	pendingSent   []view.Descriptor
	pendingTarget ident.NodeID
	stats         Stats
	// reqSent backs pendingSent across rounds (it must survive until the
	// RESPONSE arrives), so it stays per-engine; the per-call scratch — the
	// responder-side swapper buffer, the received descriptors, the returned
	// command slice — lives in sh, shared across the shard's engines.
	reqSent []view.Descriptor
	sh      *Shared
	// Route-refresh memo: the per-datagram update_next_RVP(Via, Via,
	// HOLE_TIMEOUT) is idempotent within one virtual instant for one
	// observed Via descriptor — the stored expiry is always <= now +
	// HoleTimeout, so the refresh unconditionally rewrites the row, and
	// nothing else can displace a live direct row within the same instant
	// (all other install paths use strictly earlier expiries and indirect
	// RVPs, which the replacement policy rejects; removals only touch
	// expired rows). Receive therefore skips the table walk entirely when
	// the same (descriptor, virtual time) repeats — a batch of datagrams
	// from one sender refreshes its route once — and reuses the interned
	// handle it recorded. lastViaAt doubles as the generation stamp: any
	// clock advance invalidates the memo by key mismatch.
	lastVia   view.Descriptor
	lastViaH  intern.Handle
	lastViaAt int64
	// tick counts Tick calls, driving the thinned purge cadence below.
	tick uint64
	// warmSink accumulates the values loaded by the routing-table warm
	// passes (see installRoutes) so the compiler cannot elide the loads.
	// Its value is meaningless and never read.
	warmSink uint64
}

// purgeEvery is the Tick cadence at which expired routing-table rows are
// reclaimed. Expired rows are invisible to every read (Next/Get/TTL
// self-filter, Set overwrites them under the same policy either way), so
// the cadence is unobservable; it only bounds how long dead rows occupy
// memory. The exception is RefreshRoutesOnTraffic: RefreshVia extends an
// existing row without checking expiry, so it could resurrect an
// expired-but-unpurged row — that configuration purges every Tick.
const purgeEvery = 4

var _ Engine = (*Nylon)(nil)

// NewNylon builds a Nylon engine. It panics on an invalid Config.
func NewNylon(cfg Config) *Nylon {
	cfg.validate()
	if cfg.HoleTimeout <= 0 {
		panic("core: Nylon requires a positive HoleTimeout")
	}
	sh := cfg.shared()
	return &Nylon{
		cfg:    cfg,
		sh:     sh,
		view:   view.NewShared(cfg.Self.ID, cfg.ViewSize, sh.View),
		routes: rt.NewShared(cfg.Self.ID, sh.Intern),
	}
}

// pendingPunch reports whether a hole punch toward id was started this
// period, removing it when found.
func (n *Nylon) pendingPunch(id ident.NodeID) bool {
	for i, p := range n.pending {
		if p == id {
			n.pending[i] = n.pending[len(n.pending)-1]
			n.pending = n.pending[:len(n.pending)-1]
			return true
		}
	}
	return false
}

// Self implements Engine.
func (n *Nylon) Self() view.Descriptor { return n.cfg.Self.Fresh() }

// View implements Engine.
func (n *Nylon) View() *view.View { return n.view }

// Stats implements Engine.
func (n *Nylon) Stats() *Stats { return &n.stats }

// Routes exposes the routing table for metrics and tests (read-only use).
func (n *Nylon) Routes() *rt.Table { return n.routes }

// Bootstrap seeds the view and installs direct routes to the seeds, modelling
// the join handshake performed through an introducer. The host must install
// the matching NAT state (see the simulator's bootstrap).
func (n *Nylon) Bootstrap(now int64, ds []view.Descriptor) {
	for _, d := range ds {
		if n.view.Add(d) {
			n.routes.SetDirect(d, now+n.cfg.HoleTimeout)
		}
	}
}

// reachableDirect reports whether dest accepts our datagrams without any
// traversal, and returns the endpoint to use.
func (n *Nylon) reachableDirect(dest view.Descriptor, now int64) (ident.Endpoint, bool) {
	if !dest.Class.Natted() || dest.Class == ident.FullCone {
		return dest.Addr, true
	}
	if e, ok := n.routes.Get(dest.ID, now); ok && e.RVP.ID == dest.ID {
		// Use the learned endpoint: for symmetric peers it is the only
		// mapping that admits us.
		return e.RVP.Addr, true
	}
	return ident.Zero, false
}

// resolveHop walks the routing table from dest to the first peer that can be
// reached directly, which is where the datagram must be transmitted. The
// second result is false when no live chain exists.
func (n *Nylon) resolveHop(dest view.Descriptor, now int64) (view.Descriptor, bool) {
	cur := dest
	for depth := 0; depth < 8; depth++ {
		rvp, ok := n.routes.Next(cur.ID, now)
		if !ok {
			return view.Descriptor{}, false
		}
		if rvp.ID == cur.ID && cur.ID == dest.ID {
			// Direct hole to the destination itself.
			return rvp, true
		}
		if addr, ok := n.reachableDirect(rvp, now); ok {
			rvp.Addr = addr
			return rvp, true
		}
		if rvp.ID == cur.ID {
			return view.Descriptor{}, false
		}
		cur = rvp
	}
	return view.Descriptor{}, false
}

// buffer fills m's entries with the peer's fresh self-descriptor plus the
// exchange half of its view, each natted entry annotated with the remaining
// route TTL toward it ("TTLs are exchanged by peers together with their
// views", §4). The raw sent descriptors are appended to buf and returned for
// the swapper bookkeeping.
func (n *Nylon) buffer(now int64, m *wire.Message, buf []view.Descriptor) []view.Descriptor {
	sent := n.view.PrepareExchangeInto(n.cfg.Merge, n.cfg.RNG, buf)
	var w uint64
	for i := range sent {
		w += n.routes.Warm(sent[i].ID) // overlap the TTL lookups' misses
	}
	n.warmSink += w
	m.Entries = append(m.Entries[:0], wire.ViewEntry{Desc: n.Self()})
	for _, d := range sent {
		e := wire.ViewEntry{Desc: d}
		if d.Class.Natted() {
			ttl := n.routes.TTL(d.ID, now)
			if ttl > 0 {
				e.RouteTTL = uint32(ttl)
			}
		}
		m.Entries = append(m.Entries, e)
	}
	return sent
}

// installRoutes records RVP routes for received (or snooped) natted view
// entries: the next hop toward each of them is the peer that physically
// handed us the message, and the TTL is the advertised remainder capped by
// the hole lifetime and discounted by the latency bound. viaH is via's
// interned handle when the caller already has it (0 otherwise); all entries
// share one via, so it is interned at most once here.
func (n *Nylon) installRoutes(now int64, entries []wire.ViewEntry, via view.Descriptor, viaH intern.Handle) {
	// Warm pass: touch every entry's index cell and row before the install
	// loop below walks them. The probes are independent, so their cache
	// misses — the table is one random peer's out of tens of thousands —
	// resolve in parallel instead of one per loop iteration.
	var w uint64
	for i := range entries {
		w += n.routes.Warm(entries[i].Desc.ID)
	}
	n.warmSink += w
	for _, e := range entries {
		if !e.Desc.Class.Natted() || e.RouteTTL == 0 || e.Desc.ID == n.cfg.Self.ID {
			continue
		}
		ttl := int64(e.RouteTTL)
		if ttl > n.cfg.HoleTimeout {
			ttl = n.cfg.HoleTimeout
		}
		ttl -= n.cfg.LatencyBound
		if ttl <= 0 {
			continue
		}
		if viaH == 0 {
			viaH = n.routes.Intern(via)
		}
		n.routes.SetInterned(e.Desc.ID, via.ID, viaH, now+ttl)
	}
}

// relayInitiate is the condition of Fig. 6 line 5: the initiator must relay
// the REQUEST when the target is symmetric and it is port-restricted, or when
// it is itself symmetric — hole punching cannot serve those combinations.
func relayInitiate(self, target view.Descriptor) bool {
	return (target.Class == ident.Symmetric && self.Class == ident.PortRestrictedCone) ||
		self.Class == ident.Symmetric
}

// relayRespond is the condition of Fig. 6 line 20: the responder sends the
// RESPONSE back along the RVP chain when either side is symmetric and the
// other is not public.
func relayRespond(self, src view.Descriptor) bool {
	return (src.Class == ident.Symmetric && self.Class != ident.Public) ||
		(self.Class == ident.Symmetric && src.Class != ident.Public)
}

// Tick implements Engine: Fig. 6 lines 1-14.
func (n *Nylon) Tick(now int64) []Send {
	// Purge on a thinned cadence (see purgeEvery): expired rows are already
	// invisible to every read, so reclaiming them is pure memory hygiene —
	// except under RefreshRoutesOnTraffic, where RefreshVia could resurrect
	// a stale row and the purge must stay per-period.
	n.tick++
	if n.tick%purgeEvery == 0 || n.cfg.RefreshRoutesOnTraffic {
		n.routes.Purge(now)
	}
	// Hole punches from previous periods are void: each PONG must map to a
	// punch from the current round.
	n.pending = n.pending[:0]
	if n.cfg.EvictUnanswered && !n.pendingTarget.IsNil() {
		// Last round's target never answered — dead peer or broken
		// chain. Evict it so churn cannot freeze the view.
		n.view.Remove(n.pendingTarget)
	}
	n.pendingTarget = ident.Nil
	defer n.view.IncreaseAge()

	target, ok := n.view.Select(n.cfg.Selection, n.cfg.RNG)
	if !ok {
		return nil
	}
	n.stats.ShufflesInitiated++
	n.pendingTarget = target.ID
	self := n.Self()

	if addr, ok := n.reachableDirect(target, now); ok {
		// Fig. 6 line 3: target public or next_RVP(target) = target.
		msg := newMsg(n.cfg.Msgs, wire.KindRequest, self, target, self)
		n.reqSent = n.buffer(now, msg, n.reqSent[:0])
		n.pendingSent = n.reqSent
		n.sh.out = append(n.sh.out[:0], Send{To: addr, ToID: target.ID, Msg: msg})
		return n.sh.out
	}
	hop, ok := n.resolveHop(target, now)
	if !ok {
		n.stats.NoRoute++
		return nil
	}
	if relayInitiate(self, target) {
		// Fig. 6 lines 5-7: relay the REQUEST itself along the chain.
		n.stats.Relayed++
		msg := newMsg(n.cfg.Msgs, wire.KindRequest, self, target, self)
		n.reqSent = n.buffer(now, msg, n.reqSent[:0])
		n.pendingSent = n.reqSent
		n.sh.out = append(n.sh.out[:0], Send{To: hop.Addr, ToID: hop.ID, Msg: msg})
		return n.sh.out
	}
	// Fig. 6 lines 8-12: reactive hole punching.
	n.stats.HolePunchesStarted++
	n.pending = append(n.pending, target.ID)
	out := append(n.sh.out[:0], Send{
		To: hop.Addr, ToID: hop.ID,
		Msg: newMsg(n.cfg.Msgs, wire.KindOpenHole, self, target, self),
	})
	if self.Class.Natted() {
		// The PING opens our own NAT toward the target; the target's NAT
		// will normally drop it, which is fine.
		out = append(out, Send{
			To: target.Addr, ToID: target.ID,
			Msg: newMsg(n.cfg.Msgs, wire.KindPing, self, target, self),
		})
	}
	n.sh.out = out
	return out
}

// Receive implements Engine: Fig. 6 lines 15-46.
func (n *Nylon) Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send {
	// update_next_RVP(p, p, HOLE_TIMEOUT): the transport sender reached us,
	// so a direct return path exists. Record its observed endpoint. The
	// memo (see lastVia) collapses repeated refreshes of one Via within one
	// virtual instant to a single table walk and descriptor hash.
	via := msg.Via
	via.Addr = from
	var viaH intern.Handle
	if via.ID != n.cfg.Self.ID && !via.ID.IsNil() {
		if via == n.lastVia && now == n.lastViaAt {
			// This engine already wrote this via's direct row at this
			// instant; the handle of an unchanged descriptor never
			// changes, so both the write and the intern can be skipped.
			viaH = n.lastViaH
		} else {
			if via == n.sh.lastVia {
				// Another delivery on this shard (possibly to a
				// different engine — the tables share one intern)
				// interned this descriptor already.
				viaH = n.sh.lastViaH
			} else {
				viaH = n.routes.Intern(via)
				n.sh.lastVia, n.sh.lastViaH = via, viaH
			}
			n.routes.SetInterned(via.ID, via.ID, viaH, now+n.cfg.HoleTimeout)
			n.lastVia, n.lastViaH, n.lastViaAt = via, viaH, now
		}
		if n.cfg.RefreshRoutesOnTraffic {
			// §4 offers this reading — TTLs updated "every time a
			// message from one RVP stored in the routing table is
			// received" — but refreshing a route only proves its local
			// leg alive, not the RVP's onward legs; the A3 ablation
			// shows it breaks chains, which is why it defaults off.
			n.routes.RefreshVia(via.ID, now+n.cfg.HoleTimeout-n.cfg.LatencyBound)
		}
	}
	// Reverse-path learning: the originator is reachable back through the
	// peer that handed us this datagram.
	if msg.Src.ID != via.ID && msg.Src.ID != n.cfg.Self.ID && !msg.Src.ID.IsNil() {
		if viaH != 0 {
			n.routes.SetInterned(msg.Src.ID, via.ID, viaH, now+n.cfg.HoleTimeout-n.cfg.LatencyBound)
		} else {
			n.routes.Set(msg.Src.ID, via, now+n.cfg.HoleTimeout-n.cfg.LatencyBound)
		}
	}

	switch msg.Kind {
	case wire.KindRequest:
		if msg.Dst.ID != n.cfg.Self.ID {
			return n.forward(now, msg, via, viaH)
		}
		return n.handleRequest(now, from, msg, via, viaH)
	case wire.KindResponse:
		if msg.Dst.ID != n.cfg.Self.ID {
			return n.forward(now, msg, via, viaH)
		}
		if via.ID != msg.Src.ID {
			n.stats.ChainHopsTotal += uint64(msg.Hops)
			n.stats.ChainSamples++
		}
		if msg.Src.ID == n.pendingTarget {
			n.pendingTarget = ident.Nil
		}
		n.sh.recv = msg.AppendDescriptors(n.sh.recv[:0])
		n.view.ApplyExchange(n.cfg.Merge, n.sh.recv, n.pendingSent, n.cfg.RNG)
		n.pendingSent = nil
		n.installRoutes(now, msg.Entries, via, viaH)
		n.stats.ShufflesCompleted++
		return nil
	case wire.KindOpenHole:
		if msg.Dst.ID != n.cfg.Self.ID {
			return n.forward(now, msg, via, viaH)
		}
		// Fig. 6 lines 37-38: we are the hole-punch target; answer the
		// originator directly so both NATs now hold matching rules.
		n.stats.ChainHopsTotal += uint64(msg.Hops) + 1
		n.stats.ChainSamples++
		pong := newMsg(n.cfg.Msgs, wire.KindPong, n.Self(), msg.Src, n.Self())
		n.sh.out = append(n.sh.out[:0], Send{To: msg.Src.Addr, ToID: msg.Src.ID, Msg: pong})
		return n.sh.out
	case wire.KindPing:
		// Fig. 6 lines 41-43: reply to the observed endpoint.
		pong := newMsg(n.cfg.Msgs, wire.KindPong, n.Self(), msg.Src, n.Self())
		n.sh.out = append(n.sh.out[:0], Send{To: from, ToID: msg.Src.ID, Msg: pong})
		return n.sh.out
	case wire.KindPong:
		// Fig. 6 lines 44-46: the hole is open; gossip through it. Only
		// punches from the current period are honoured.
		if !n.pendingPunch(msg.Src.ID) {
			return nil
		}
		n.stats.HolePunchesCompleted++
		req := newMsg(n.cfg.Msgs, wire.KindRequest, n.Self(), msg.Src, n.Self())
		n.reqSent = n.buffer(now, req, n.reqSent[:0])
		n.pendingSent = n.reqSent
		n.sh.out = append(n.sh.out[:0], Send{To: from, ToID: msg.Src.ID, Msg: req})
		return n.sh.out
	default:
		return nil
	}
}

// handleRequest processes a shuffle REQUEST addressed to this peer
// (Fig. 6 lines 15-26).
func (n *Nylon) handleRequest(now int64, from ident.Endpoint, msg *wire.Message, via view.Descriptor, viaH intern.Handle) []Send {
	if via.ID != msg.Src.ID {
		n.stats.ChainHopsTotal += uint64(msg.Hops)
		n.stats.ChainSamples++
	}
	out := n.sh.out[:0]
	var sentResp []view.Descriptor
	if n.cfg.PushPull {
		self := n.Self()
		resp := newMsg(n.cfg.Msgs, wire.KindResponse, self, msg.Src, self)
		n.sh.resp = n.buffer(now, resp, n.sh.resp[:0])
		sentResp = n.sh.resp
		if relayRespond(self, msg.Src) {
			// Fig. 6 lines 20-22: the response must travel back along
			// the chain.
			if hop, ok := n.resolveHop(msg.Src, now); ok {
				if hop.ID != msg.Src.ID {
					n.stats.Relayed++
				}
				out = append(out, Send{To: hop.Addr, ToID: hop.ID, Msg: resp})
			} else {
				n.stats.NoRoute++
				n.cfg.Msgs.Put(resp)
			}
		} else {
			// Fig. 6 lines 23-24. When the request arrived directly the
			// observed endpoint is the right return path; otherwise the
			// initiator punched a hole toward us and awaits us at its
			// advertised address.
			addr := msg.Src.Addr
			if via.ID == msg.Src.ID {
				addr = from
			}
			out = append(out, Send{To: addr, ToID: msg.Src.ID, Msg: resp})
		}
	}
	n.sh.recv = msg.AppendDescriptors(n.sh.recv[:0])
	n.view.ApplyExchange(n.cfg.Merge, n.sh.recv, sentResp, n.cfg.RNG)
	n.view.IncreaseAge()
	n.installRoutes(now, msg.Entries, via, viaH)
	n.stats.ShufflesAnswered++
	n.sh.out = out
	return out
}

// forward relays a datagram one hop along the RVP chain (Fig. 6 lines 17-19,
// 29-31, 39-40), snooping carried view entries so the chain invariant holds
// for routes learned through relayed shuffles.
func (n *Nylon) forward(now int64, msg *wire.Message, via view.Descriptor, viaH intern.Handle) []Send {
	if msg.Hops >= maxForwardHops {
		// Counted as NoRoute (the chain is unusable) and separately as a
		// hop-limit drop, so adversarial forwarding loops are observable.
		n.stats.NoRoute++
		n.stats.HopLimitDrops++
		return nil
	}
	n.installRoutes(now, msg.Entries, via, viaH)
	hop, ok := n.resolveHop(msg.Dst, now)
	if !ok || hop.ID == via.ID {
		// No live chain — or our best route points straight back where
		// the datagram came from, which would only bounce it between
		// the two of us until the hop limit (routes learned from
		// entries circulating in both directions can form such
		// two-cycles). Dropping wastes one gossip round; looping
		// wastes maxForwardHops datagrams.
		n.stats.NoRoute++
		return nil
	}
	n.stats.Forwarded++
	fwd := n.cfg.Msgs.Clone(msg)
	fwd.Hops++
	fwd.Via = n.Self()
	n.sh.out = append(n.sh.out[:0], Send{To: hop.Addr, ToID: hop.ID, Msg: fwd})
	return n.sh.out
}
