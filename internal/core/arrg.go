package core

import (
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// ARRG is the reachable-peer-cache baseline after Drost et al., "ARRG:
// real-world gossiping" (HPDC 2007) — the only prior gossip work addressing
// NATs that the paper cites [6]. It behaves like the Generic engine but keeps
// a bounded cache of peers it recently exchanged datagrams with (whose NAT
// rules toward it are therefore likely still alive). When a shuffle gets no
// answer, the next round retries against a random cache member instead of
// only trusting the view.
//
// The paper's §1 argues this "cannot ensure that the network will remain
// connected"; the A2 ablation benchmark quantifies that claim.
type ARRG struct {
	cfg       Config
	cacheSize int
	view      *view.View
	// cache holds recently-responsive peers with their observed endpoints,
	// most recent last.
	cache []view.Descriptor
	// pending is the target of the not-yet-answered REQUEST, if any;
	// pendingSent is the buffer shipped with it (swapper bookkeeping).
	pending     ident.NodeID
	pendingSent []view.Descriptor
	stats       Stats
	// reqSent backs pendingSent across rounds, so it stays per-engine; the
	// per-call scratch lives in sh, shared across the shard's engines.
	reqSent []view.Descriptor
	sh      *Shared
}

var _ Engine = (*ARRG)(nil)

// NewARRG builds the engine. cacheSize bounds the reachable-peer cache; it
// panics if not positive.
func NewARRG(cfg Config, cacheSize int) *ARRG {
	cfg.validate()
	if cacheSize <= 0 {
		panic("core: ARRG cacheSize must be positive")
	}
	sh := cfg.shared()
	return &ARRG{cfg: cfg, cacheSize: cacheSize, sh: sh, view: view.NewShared(cfg.Self.ID, cfg.ViewSize, sh.View)}
}

// Self implements Engine.
func (a *ARRG) Self() view.Descriptor { return a.cfg.Self.Fresh() }

// View implements Engine.
func (a *ARRG) View() *view.View { return a.view }

// Stats implements Engine.
func (a *ARRG) Stats() *Stats { return &a.stats }

// Bootstrap seeds the view.
func (a *ARRG) Bootstrap(ds []view.Descriptor) {
	for _, d := range ds {
		a.view.Add(d)
	}
}

// CacheLen reports the current cache occupancy, for tests and metrics.
func (a *ARRG) CacheLen() int { return len(a.cache) }

func (a *ARRG) cacheAdd(d view.Descriptor) {
	if d.ID == a.cfg.Self.ID || d.ID.IsNil() {
		return
	}
	for i := range a.cache {
		if a.cache[i].ID == d.ID {
			a.cache = append(a.cache[:i], a.cache[i+1:]...)
			break
		}
	}
	a.cache = append(a.cache, d)
	if len(a.cache) > a.cacheSize {
		a.cache = a.cache[1:]
	}
}

func (a *ARRG) buffer(m *wire.Message, buf []view.Descriptor) []view.Descriptor {
	sent := a.view.PrepareExchangeInto(a.cfg.Merge, a.cfg.RNG, buf)
	m.Entries = append(m.Entries[:0], wire.ViewEntry{Desc: a.Self()})
	for _, d := range sent {
		m.Entries = append(m.Entries, wire.ViewEntry{Desc: d})
	}
	return sent
}

func (a *ARRG) request(target view.Descriptor) Send {
	msg := newMsg(a.cfg.Msgs, wire.KindRequest, a.Self(), target, a.Self())
	// A fallback retry and the regular shuffle may both run this round;
	// only the latest buffer matters for the swapper bookkeeping, so the
	// shared scratch may be overwritten.
	a.reqSent = a.buffer(msg, a.reqSent[:0])
	a.pendingSent = a.reqSent
	return Send{To: target.Addr, ToID: target.ID, Msg: msg}
}

// Tick implements Engine. If the previous round's shuffle went unanswered,
// this round additionally retries against a random cache member.
func (a *ARRG) Tick(now int64) []Send {
	defer a.view.IncreaseAge()
	out := a.sh.out[:0]
	if !a.pending.IsNil() {
		// Last round's target never answered: evict it (ARRG always
		// does — detecting unreachable peers is its point) and retry
		// against a random cache member.
		a.view.Remove(a.pending)
		if len(a.cache) > 0 {
			a.stats.CacheFallbacks++
			fallback := a.cache[a.cfg.RNG.Intn(len(a.cache))]
			out = append(out, a.request(fallback))
		}
	}
	a.pending = ident.Nil
	if target, ok := a.view.Select(a.cfg.Selection, a.cfg.RNG); ok {
		a.stats.ShufflesInitiated++
		a.pending = target.ID
		out = append(out, a.request(target))
	}
	a.sh.out = out
	return out
}

// Receive implements Engine.
func (a *ARRG) Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send {
	// Every datagram proves its sender currently reachable: remember the
	// observed endpoint, which its NAT will keep admitting for a while.
	observed := msg.Src
	observed.Addr = from
	switch msg.Kind {
	case wire.KindRequest:
		a.cacheAdd(observed)
		out := a.sh.out[:0]
		var sentResp []view.Descriptor
		if a.cfg.PushPull {
			resp := newMsg(a.cfg.Msgs, wire.KindResponse, a.Self(), msg.Src, a.Self())
			a.sh.resp = a.buffer(resp, a.sh.resp[:0])
			sentResp = a.sh.resp
			out = append(out, Send{To: from, ToID: msg.Src.ID, Msg: resp})
		}
		a.sh.recv = msg.AppendDescriptors(a.sh.recv[:0])
		a.view.ApplyExchange(a.cfg.Merge, a.sh.recv, sentResp, a.cfg.RNG)
		a.view.IncreaseAge()
		a.stats.ShufflesAnswered++
		a.sh.out = out
		return out
	case wire.KindResponse:
		a.cacheAdd(observed)
		if msg.Src.ID == a.pending {
			a.pending = ident.Nil
		}
		a.sh.recv = msg.AppendDescriptors(a.sh.recv[:0])
		a.view.ApplyExchange(a.cfg.Merge, a.sh.recv, a.pendingSent, a.cfg.RNG)
		a.pendingSent = nil
		a.stats.ShufflesCompleted++
		return nil
	default:
		return nil
	}
}
