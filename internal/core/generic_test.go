package core

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

func gcfg(id uint64, class ident.NATClass, pushPull bool) Config {
	return Config{
		Self: view.Descriptor{
			ID:    ident.NodeID(id),
			Addr:  ident.Endpoint{IP: ident.IP(0x01000000 + uint32(id)), Port: 9000},
			Class: class,
		},
		ViewSize:     4,
		Selection:    view.SelectRand,
		Merge:        view.MergeHealer,
		PushPull:     pushPull,
		HoleTimeout:  90_000,
		LatencyBound: 100,
		RNG:          rand.New(rand.NewSource(int64(id))),
	}
}

func pubDesc(id uint64) view.Descriptor {
	return view.Descriptor{ID: ident.NodeID(id), Addr: ident.Endpoint{IP: ident.IP(0x01000000 + uint32(id)), Port: 9000}, Class: ident.Public}
}

func TestGenericTickEmitsRequest(t *testing.T) {
	g := NewGeneric(gcfg(1, ident.Public, true))
	g.Bootstrap([]view.Descriptor{pubDesc(2)})
	out := g.Tick(0)
	if len(out) != 1 {
		t.Fatalf("Tick emitted %d sends, want 1", len(out))
	}
	s := out[0]
	if s.Msg.Kind != wire.KindRequest || s.ToID != 2 || s.To != pubDesc(2).Addr {
		t.Errorf("unexpected send %+v", s)
	}
	if s.Msg.Src.ID != 1 || s.Msg.Dst.ID != 2 || s.Msg.Via.ID != 1 {
		t.Errorf("bad message header %v", s.Msg)
	}
	// Entries: self (fresh) + view.
	if len(s.Msg.Entries) != 2 || s.Msg.Entries[0].Desc.ID != 1 || s.Msg.Entries[0].Desc.Age != 0 {
		t.Errorf("bad entries %v", s.Msg.Entries)
	}
	// The view aged.
	d, _ := g.View().Get(2)
	if d.Age != 1 {
		t.Errorf("view entry age = %d, want 1 after Tick", d.Age)
	}
	if g.Stats().ShufflesInitiated != 1 {
		t.Errorf("ShufflesInitiated = %d", g.Stats().ShufflesInitiated)
	}
}

func TestGenericTickEmptyView(t *testing.T) {
	g := NewGeneric(gcfg(1, ident.Public, true))
	if out := g.Tick(0); out != nil {
		t.Errorf("Tick on empty view emitted %v", out)
	}
	if g.Stats().ShufflesInitiated != 0 {
		t.Error("empty tick counted as initiated shuffle")
	}
}

func TestGenericRequestResponseCycle(t *testing.T) {
	a := NewGeneric(gcfg(1, ident.Public, true))
	b := NewGeneric(gcfg(2, ident.Public, true))
	a.Bootstrap([]view.Descriptor{pubDesc(2)})
	b.Bootstrap([]view.Descriptor{pubDesc(3)})

	req := a.Tick(0)[0]
	resp := b.Receive(50, req.Msg.Src.Addr, req.Msg)
	if len(resp) != 1 || resp[0].Msg.Kind != wire.KindResponse {
		t.Fatalf("responder emitted %v", resp)
	}
	// The response returns to the observed endpoint.
	if resp[0].To != req.Msg.Src.Addr {
		t.Errorf("response addressed to %v, want observed %v", resp[0].To, req.Msg.Src.Addr)
	}
	// b merged a's self descriptor.
	if !b.View().Contains(1) {
		t.Error("responder did not learn the initiator")
	}
	if out := a.Receive(100, resp[0].Msg.Src.Addr, resp[0].Msg); out != nil {
		t.Errorf("initiator emitted %v on response", out)
	}
	if !a.View().Contains(3) {
		t.Error("initiator did not learn the responder's view entry")
	}
	if a.Stats().ShufflesCompleted != 1 || b.Stats().ShufflesAnswered != 1 {
		t.Error("completion counters wrong")
	}
}

func TestGenericPushModeSendsNoResponse(t *testing.T) {
	b := NewGeneric(gcfg(2, ident.Public, false))
	req := &wire.Message{
		Kind: wire.KindRequest, Src: pubDesc(1), Dst: pubDesc(2), Via: pubDesc(1),
		Entries: []wire.ViewEntry{{Desc: pubDesc(1)}},
	}
	if out := b.Receive(0, pubDesc(1).Addr, req); len(out) != 0 {
		t.Errorf("push-mode responder emitted %v", out)
	}
	if !b.View().Contains(1) {
		t.Error("push-mode responder did not merge")
	}
}

func TestGenericIgnoresForeignKinds(t *testing.T) {
	g := NewGeneric(gcfg(1, ident.Public, true))
	for _, k := range []wire.Kind{wire.KindOpenHole, wire.KindPing, wire.KindPong} {
		msg := &wire.Message{Kind: k, Src: pubDesc(2), Dst: pubDesc(1), Via: pubDesc(2)}
		if out := g.Receive(0, pubDesc(2).Addr, msg); len(out) != 0 {
			t.Errorf("Generic reacted to %v: %v", k, out)
		}
	}
}

func TestGenericViewInvariantsUnderLongRun(t *testing.T) {
	// Two peers shuffling repeatedly must never corrupt their views.
	a := NewGeneric(gcfg(1, ident.Public, true))
	b := NewGeneric(gcfg(2, ident.Public, true))
	a.Bootstrap([]view.Descriptor{pubDesc(2), pubDesc(3)})
	b.Bootstrap([]view.Descriptor{pubDesc(1), pubDesc(4)})
	now := int64(0)
	for i := 0; i < 200; i++ {
		for _, s := range a.Tick(now) {
			if s.ToID == 2 {
				for _, r := range b.Receive(now+50, a.Self().Addr, s.Msg) {
					a.Receive(now+100, b.Self().Addr, r.Msg)
				}
			}
		}
		now += 5000
	}
	if err := a.View().Validate(); err != nil {
		t.Errorf("a's view invalid: %v", err)
	}
	if err := b.View().Validate(); err != nil {
		t.Errorf("b's view invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Self.ID = 0 },
		func(c *Config) { c.ViewSize = 0 },
		func(c *Config) { c.RNG = nil },
	}
	for i, mutate := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewGeneric did not panic", i)
				}
			}()
			cfg := gcfg(1, ident.Public, true)
			mutate(&cfg)
			NewGeneric(cfg)
		}()
	}
}
