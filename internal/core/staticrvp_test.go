package core

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// staticFixture wires a natted peer, its public RVP, and a natted target
// bound to the same RVP.
func staticFixture(t *testing.T, selfClass ident.NATClass) (*StaticRVP, view.Descriptor, view.Descriptor) {
	t.Helper()
	rvp := pubDesc(100)
	resolver := func(id ident.NodeID) (view.Descriptor, bool) {
		if id == 2 || id == 1 {
			return rvp, true
		}
		return view.Descriptor{}, false
	}
	var own view.Descriptor
	if selfClass.Natted() {
		own = rvp
	}
	s := NewStaticRVP(ncfg(1, selfClass), own, resolver)
	target := nattedDesc(2, ident.RestrictedCone)
	return s, rvp, target
}

func TestStaticRVPValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil resolver accepted")
		}
	}()
	NewStaticRVP(ncfg(1, ident.Public), view.Descriptor{}, nil)
}

func TestStaticRVPNattedNeedsRVP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("natted peer without RVP accepted")
		}
	}()
	NewStaticRVP(ncfg(1, ident.RestrictedCone), view.Descriptor{}, func(ident.NodeID) (view.Descriptor, bool) {
		return view.Descriptor{}, false
	})
}

func TestStaticRVPKeepalive(t *testing.T) {
	s, rvp, _ := staticFixture(t, ident.RestrictedCone)
	out := s.Tick(0)
	var pinged bool
	for _, snd := range out {
		if snd.Msg.Kind == wire.KindPing && snd.ToID == rvp.ID {
			pinged = true
		}
	}
	if !pinged {
		t.Errorf("no keepalive PING toward the RVP in %+v", out)
	}
	// Public peers send no keepalive.
	pub, _, _ := staticFixture(t, ident.Public)
	for _, snd := range pub.Tick(0) {
		if snd.Msg.Kind == wire.KindPing {
			t.Error("public peer sent keepalive PING")
		}
	}
}

func TestStaticRVPPunchThroughFixedRVP(t *testing.T) {
	s, rvp, target := staticFixture(t, ident.RestrictedCone)
	s.Bootstrap([]view.Descriptor{target})
	out := s.Tick(0)
	var openHole *Send
	for i := range out {
		if out[i].Msg.Kind == wire.KindOpenHole {
			openHole = &out[i]
		}
	}
	if openHole == nil || openHole.ToID != rvp.ID || openHole.Msg.Dst.ID != target.ID {
		t.Fatalf("OPEN_HOLE not routed through the fixed RVP: %+v", out)
	}
	// PONG arrives: REQUEST goes to the punched endpoint.
	punched := ident.Endpoint{IP: target.Addr.IP, Port: 7777}
	pong := &wire.Message{Kind: wire.KindPong, Src: target, Dst: s.Self(), Via: target}
	reply := s.Receive(200, punched, pong)
	if len(reply) != 1 || reply[0].Msg.Kind != wire.KindRequest || reply[0].To != punched {
		t.Fatalf("PONG handling = %+v", reply)
	}
	if s.Stats().HolePunchesCompleted != 1 {
		t.Error("punch not counted")
	}
}

func TestStaticRVPForwardsAsRVP(t *testing.T) {
	rvpSelf := NewStaticRVP(ncfg(100, ident.Public), view.Descriptor{}, func(ident.NodeID) (view.Descriptor, bool) {
		return view.Descriptor{}, false
	})
	client := nattedDesc(2, ident.RestrictedCone)
	clientEP := ident.Endpoint{IP: 0x40000002, Port: 1111}
	// The client's keepalive teaches the RVP its live endpoint.
	ping := &wire.Message{Kind: wire.KindPing, Src: client, Dst: rvpSelf.Self(), Via: client}
	rvpSelf.Receive(0, clientEP, ping)

	oh := &wire.Message{Kind: wire.KindOpenHole, Src: nattedDesc(4, ident.PortRestrictedCone), Dst: client, Via: nattedDesc(4, ident.PortRestrictedCone)}
	out := rvpSelf.Receive(10, ident.Endpoint{IP: 9, Port: 9}, oh)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindOpenHole {
		t.Fatalf("RVP did not forward OPEN_HOLE: %+v", out)
	}
	if out[0].To != clientEP {
		t.Errorf("forwarded to %v, want learned endpoint %v", out[0].To, clientEP)
	}
	if rvpSelf.Stats().Forwarded != 1 {
		t.Error("Forwarded not counted")
	}
}

func TestStaticRVPSymmetricRelaysWholeExchange(t *testing.T) {
	rvp := pubDesc(100)
	resolver := func(id ident.NodeID) (view.Descriptor, bool) { return rvp, id == 2 }
	s := NewStaticRVP(ncfg(1, ident.Public), view.Descriptor{}, resolver)
	symTarget := nattedDesc(2, ident.Symmetric)
	s.Bootstrap([]view.Descriptor{symTarget})
	out := s.Tick(0)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindRequest || out[0].ToID != rvp.ID {
		t.Fatalf("exchange with symmetric target not relayed: %+v", out)
	}
	if s.Stats().Relayed != 1 {
		t.Error("Relayed not counted")
	}
}

func TestStaticRVPUnresolvableTargetWastesRound(t *testing.T) {
	s := NewStaticRVP(ncfg(1, ident.Public), view.Descriptor{}, func(ident.NodeID) (view.Descriptor, bool) {
		return view.Descriptor{}, false
	})
	s.Bootstrap([]view.Descriptor{nattedDesc(9, ident.RestrictedCone)})
	if out := s.Tick(0); len(out) != 0 {
		t.Errorf("unresolvable target produced %+v", out)
	}
	if s.Stats().NoRoute != 1 {
		t.Errorf("NoRoute = %d", s.Stats().NoRoute)
	}
}

func TestStaticRVPAnswersPingWithPong(t *testing.T) {
	s, _, _ := staticFixture(t, ident.Public)
	src := nattedDesc(2, ident.RestrictedCone)
	fromEP := ident.Endpoint{IP: 0x40000002, Port: 2222}
	ping := &wire.Message{Kind: wire.KindPing, Src: src, Dst: s.Self(), Via: src}
	out := s.Receive(0, fromEP, ping)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindPong || out[0].To != fromEP {
		t.Fatalf("PING handling = %+v", out)
	}
}

func TestStaticRVPOpenHoleAtDestination(t *testing.T) {
	s, rvp, _ := staticFixture(t, ident.RestrictedCone)
	src := pubDesc(5)
	oh := &wire.Message{Kind: wire.KindOpenHole, Src: src, Dst: s.Self(), Via: rvp, Hops: 1}
	out := s.Receive(0, rvp.Addr, oh)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindPong || out[0].To != src.Addr {
		t.Fatalf("OPEN_HOLE at destination = %+v", out)
	}
	if s.Stats().ChainSamples != 1 || s.Stats().ChainHopsTotal != 1 {
		t.Error("chain stats wrong: static RVP chains always have length 1")
	}
}
