package core

import (
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// RVPResolver reports the fixed public rendez-vous peer assigned to a natted
// peer. The second result is false for public peers and unknown IDs.
type RVPResolver func(ident.NodeID) (view.Descriptor, bool)

// StaticRVP is the strawman the paper's Section 4 introduction dismisses:
// every natted peer is bound at join time to one fixed public rendez-vous
// peer (RVP), keeps a hole toward it alive with periodic PINGs, and all hole
// punching toward a natted peer goes through that single RVP.
//
// The paper's two criticisms are observable in this implementation's
// measurements: the relay/keepalive load concentrates on public peers
// (ablation A1), and an RVP's failure orphans every natted peer bound to it.
type StaticRVP struct {
	cfg     Config
	view    *view.View
	ownRVP  view.Descriptor // zero for public peers
	resolve RVPResolver
	// clients maps peer IDs to their observed endpoints, learned from
	// keepalive PINGs and forwarded traffic. An RVP uses it to reach the
	// natted peers bound to it.
	clients       map[ident.NodeID]ident.Endpoint
	pending       []ident.NodeID
	pendingSent   []view.Descriptor
	pendingTarget ident.NodeID
	stats         Stats
	// reqSent backs pendingSent across rounds, so it stays per-engine; the
	// per-call scratch lives in sh, shared across the shard's engines.
	reqSent []view.Descriptor
	sh      *Shared
}

var _ Engine = (*StaticRVP)(nil)

// NewStaticRVP builds the engine. ownRVP must be the zero Descriptor for
// public peers and the assigned public RVP for natted ones; resolve must
// return the RVP of any natted peer in the system.
func NewStaticRVP(cfg Config, ownRVP view.Descriptor, resolve RVPResolver) *StaticRVP {
	cfg.validate()
	if resolve == nil {
		panic("core: StaticRVP requires a resolver")
	}
	if cfg.Self.Class.Natted() && ownRVP.ID.IsNil() {
		panic("core: natted StaticRVP peer requires an RVP")
	}
	sh := cfg.shared()
	return &StaticRVP{
		cfg:     cfg,
		sh:      sh,
		view:    view.NewShared(cfg.Self.ID, cfg.ViewSize, sh.View),
		ownRVP:  ownRVP,
		resolve: resolve,
		clients: make(map[ident.NodeID]ident.Endpoint),
	}
}

// pendingPunch reports whether a hole punch toward id was started this
// period, removing it when found.
func (s *StaticRVP) pendingPunch(id ident.NodeID) bool {
	for i, p := range s.pending {
		if p == id {
			s.pending[i] = s.pending[len(s.pending)-1]
			s.pending = s.pending[:len(s.pending)-1]
			return true
		}
	}
	return false
}

// Self implements Engine.
func (s *StaticRVP) Self() view.Descriptor { return s.cfg.Self.Fresh() }

// OwnRVP returns the fixed rendez-vous peer this peer is bound to (zero for
// public peers). Metrics code uses it to evaluate reachability.
func (s *StaticRVP) OwnRVP() view.Descriptor { return s.ownRVP }

// View implements Engine.
func (s *StaticRVP) View() *view.View { return s.view }

// Stats implements Engine.
func (s *StaticRVP) Stats() *Stats { return &s.stats }

// Bootstrap seeds the view.
func (s *StaticRVP) Bootstrap(ds []view.Descriptor) {
	for _, d := range ds {
		s.view.Add(d)
	}
}

func (s *StaticRVP) buffer(m *wire.Message, buf []view.Descriptor) []view.Descriptor {
	sent := s.view.PrepareExchangeInto(s.cfg.Merge, s.cfg.RNG, buf)
	m.Entries = append(m.Entries[:0], wire.ViewEntry{Desc: s.Self()})
	for _, d := range sent {
		m.Entries = append(m.Entries, wire.ViewEntry{Desc: d})
	}
	return sent
}

// endpointOf returns the best-known transport endpoint for a peer.
func (s *StaticRVP) endpointOf(d view.Descriptor) ident.Endpoint {
	if ep, ok := s.clients[d.ID]; ok {
		return ep
	}
	return d.Addr
}

// Tick implements Engine: keepalive toward the own RVP, then one shuffle.
func (s *StaticRVP) Tick(now int64) []Send {
	defer s.view.IncreaseAge()
	s.pending = s.pending[:0]
	if s.cfg.EvictUnanswered && !s.pendingTarget.IsNil() {
		s.view.Remove(s.pendingTarget)
	}
	s.pendingTarget = ident.Nil
	out := s.sh.out[:0]
	defer func() { s.sh.out = out }()
	self := s.Self()
	if s.cfg.Self.Class.Natted() {
		out = append(out, Send{To: s.ownRVP.Addr, ToID: s.ownRVP.ID,
			Msg: newMsg(s.cfg.Msgs, wire.KindPing, self, s.ownRVP, self)})
	}
	target, ok := s.view.Select(s.cfg.Selection, s.cfg.RNG)
	if !ok {
		return out
	}
	s.stats.ShufflesInitiated++
	s.pendingTarget = target.ID
	if !target.Class.Natted() {
		msg := newMsg(s.cfg.Msgs, wire.KindRequest, self, target, self)
		s.reqSent = s.buffer(msg, s.reqSent[:0])
		s.pendingSent = s.reqSent
		out = append(out, Send{To: target.Addr, ToID: target.ID, Msg: msg})
		return out
	}
	rvp, ok := s.resolve(target.ID)
	if !ok {
		s.stats.NoRoute++
		return out
	}
	if s.cfg.Self.Class == ident.Symmetric || target.Class == ident.Symmetric {
		// Hole punching cannot serve symmetric combinations reliably;
		// relay the whole exchange through the target's RVP.
		s.stats.Relayed++
		msg := newMsg(s.cfg.Msgs, wire.KindRequest, self, target, self)
		s.reqSent = s.buffer(msg, s.reqSent[:0])
		s.pendingSent = s.reqSent
		out = append(out, Send{To: rvp.Addr, ToID: rvp.ID, Msg: msg})
		return out
	}
	s.stats.HolePunchesStarted++
	s.pending = append(s.pending, target.ID)
	out = append(out, Send{To: rvp.Addr, ToID: rvp.ID,
		Msg: newMsg(s.cfg.Msgs, wire.KindOpenHole, self, target, self)})
	if s.cfg.Self.Class.Natted() {
		out = append(out, Send{To: target.Addr, ToID: target.ID,
			Msg: newMsg(s.cfg.Msgs, wire.KindPing, self, target, self)})
	}
	return out
}

// Receive implements Engine.
func (s *StaticRVP) Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send {
	s.clients[msg.Via.ID] = from
	self := s.Self()
	switch msg.Kind {
	case wire.KindRequest:
		if msg.Dst.ID != s.cfg.Self.ID {
			// We are the target's RVP: hand the request over.
			return s.handOver(msg, self)
		}
		out := s.sh.out[:0]
		var sentResp []view.Descriptor
		if s.cfg.PushPull {
			resp := newMsg(s.cfg.Msgs, wire.KindResponse, self, msg.Src, self)
			s.sh.resp = s.buffer(resp, s.sh.resp[:0])
			sentResp = s.sh.resp
			switch {
			case msg.Via.ID == msg.Src.ID:
				// Direct request: the observed endpoint is the open
				// return path.
				out = append(out, Send{To: from, ToID: msg.Src.ID, Msg: resp})
			default:
				// Relayed request: route the response through the
				// initiator's RVP.
				if rvp, ok := s.resolve(msg.Src.ID); ok {
					s.stats.Relayed++
					out = append(out, Send{To: rvp.Addr, ToID: rvp.ID, Msg: resp})
				} else if !msg.Src.Class.Natted() {
					out = append(out, Send{To: msg.Src.Addr, ToID: msg.Src.ID, Msg: resp})
				} else {
					s.stats.NoRoute++
					s.cfg.Msgs.Put(resp)
				}
			}
		}
		s.sh.recv = msg.AppendDescriptors(s.sh.recv[:0])
		s.view.ApplyExchange(s.cfg.Merge, s.sh.recv, sentResp, s.cfg.RNG)
		s.view.IncreaseAge()
		s.stats.ShufflesAnswered++
		s.sh.out = out
		return out
	case wire.KindResponse:
		if msg.Dst.ID != s.cfg.Self.ID {
			return s.handOver(msg, self)
		}
		if msg.Src.ID == s.pendingTarget {
			s.pendingTarget = ident.Nil
		}
		s.sh.recv = msg.AppendDescriptors(s.sh.recv[:0])
		s.view.ApplyExchange(s.cfg.Merge, s.sh.recv, s.pendingSent, s.cfg.RNG)
		s.pendingSent = nil
		s.stats.ShufflesCompleted++
		return nil
	case wire.KindOpenHole:
		if msg.Dst.ID != s.cfg.Self.ID {
			return s.handOver(msg, self)
		}
		s.stats.ChainHopsTotal++ // exactly one RVP by construction
		s.stats.ChainSamples++
		s.sh.out = append(s.sh.out[:0], Send{To: msg.Src.Addr, ToID: msg.Src.ID,
			Msg: newMsg(s.cfg.Msgs, wire.KindPong, self, msg.Src, self)})
		return s.sh.out
	case wire.KindPing:
		s.sh.out = append(s.sh.out[:0], Send{To: from, ToID: msg.Src.ID,
			Msg: newMsg(s.cfg.Msgs, wire.KindPong, self, msg.Src, self)})
		return s.sh.out
	case wire.KindPong:
		if !s.pendingPunch(msg.Src.ID) {
			return nil
		}
		s.stats.HolePunchesCompleted++
		req := newMsg(s.cfg.Msgs, wire.KindRequest, self, msg.Src, self)
		s.reqSent = s.buffer(req, s.reqSent[:0])
		s.pendingSent = s.reqSent
		s.sh.out = append(s.sh.out[:0], Send{To: from, ToID: msg.Src.ID, Msg: req})
		return s.sh.out
	default:
		return nil
	}
}

// handOver forwards a datagram to the natted peer bound to this RVP.
func (s *StaticRVP) handOver(msg *wire.Message, self view.Descriptor) []Send {
	if msg.Hops >= maxForwardHops {
		// Honest static chains are one hop; anything at the limit is a
		// forwarding loop fed by hostile or corrupt traffic.
		s.stats.HopLimitDrops++
		return nil
	}
	s.stats.Forwarded++
	fwd := s.cfg.Msgs.Clone(msg)
	fwd.Hops++
	fwd.Via = self
	s.sh.out = append(s.sh.out[:0], Send{To: s.endpointOf(msg.Dst), ToID: msg.Dst.ID, Msg: fwd})
	return s.sh.out
}
