package core

import (
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// RVPResolver reports the fixed public rendez-vous peer assigned to a natted
// peer. The second result is false for public peers and unknown IDs.
type RVPResolver func(ident.NodeID) (view.Descriptor, bool)

// StaticRVP is the strawman the paper's Section 4 introduction dismisses:
// every natted peer is bound at join time to one fixed public rendez-vous
// peer (RVP), keeps a hole toward it alive with periodic PINGs, and all hole
// punching toward a natted peer goes through that single RVP.
//
// The paper's two criticisms are observable in this implementation's
// measurements: the relay/keepalive load concentrates on public peers
// (ablation A1), and an RVP's failure orphans every natted peer bound to it.
type StaticRVP struct {
	cfg     Config
	view    *view.View
	ownRVP  view.Descriptor // zero for public peers
	resolve RVPResolver
	// clients maps peer IDs to their observed endpoints, learned from
	// keepalive PINGs and forwarded traffic. An RVP uses it to reach the
	// natted peers bound to it.
	clients       map[ident.NodeID]ident.Endpoint
	pending       map[ident.NodeID]bool
	pendingSent   []view.Descriptor
	pendingTarget ident.NodeID
	stats         Stats
}

var _ Engine = (*StaticRVP)(nil)

// NewStaticRVP builds the engine. ownRVP must be the zero Descriptor for
// public peers and the assigned public RVP for natted ones; resolve must
// return the RVP of any natted peer in the system.
func NewStaticRVP(cfg Config, ownRVP view.Descriptor, resolve RVPResolver) *StaticRVP {
	cfg.validate()
	if resolve == nil {
		panic("core: StaticRVP requires a resolver")
	}
	if cfg.Self.Class.Natted() && ownRVP.ID.IsNil() {
		panic("core: natted StaticRVP peer requires an RVP")
	}
	return &StaticRVP{
		cfg:     cfg,
		view:    view.New(cfg.Self.ID, cfg.ViewSize),
		ownRVP:  ownRVP,
		resolve: resolve,
		clients: make(map[ident.NodeID]ident.Endpoint),
		pending: make(map[ident.NodeID]bool),
	}
}

// Self implements Engine.
func (s *StaticRVP) Self() view.Descriptor { return s.cfg.Self.Fresh() }

// OwnRVP returns the fixed rendez-vous peer this peer is bound to (zero for
// public peers). Metrics code uses it to evaluate reachability.
func (s *StaticRVP) OwnRVP() view.Descriptor { return s.ownRVP }

// View implements Engine.
func (s *StaticRVP) View() *view.View { return s.view }

// Stats implements Engine.
func (s *StaticRVP) Stats() *Stats { return &s.stats }

// Bootstrap seeds the view.
func (s *StaticRVP) Bootstrap(ds []view.Descriptor) {
	for _, d := range ds {
		s.view.Add(d)
	}
}

func (s *StaticRVP) buffer() ([]wire.ViewEntry, []view.Descriptor) {
	sent := s.view.PrepareExchange(s.cfg.Merge, s.cfg.RNG)
	entries := make([]wire.ViewEntry, 0, len(sent)+1)
	entries = append(entries, wire.ViewEntry{Desc: s.Self()})
	for _, d := range sent {
		entries = append(entries, wire.ViewEntry{Desc: d})
	}
	return entries, sent
}

// endpointOf returns the best-known transport endpoint for a peer.
func (s *StaticRVP) endpointOf(d view.Descriptor) ident.Endpoint {
	if ep, ok := s.clients[d.ID]; ok {
		return ep
	}
	return d.Addr
}

// Tick implements Engine: keepalive toward the own RVP, then one shuffle.
func (s *StaticRVP) Tick(now int64) []Send {
	defer s.view.IncreaseAge()
	clear(s.pending)
	if s.cfg.EvictUnanswered && !s.pendingTarget.IsNil() {
		s.view.Remove(s.pendingTarget)
	}
	s.pendingTarget = ident.Nil
	var out []Send
	self := s.Self()
	if s.cfg.Self.Class.Natted() {
		out = append(out, Send{To: s.ownRVP.Addr, ToID: s.ownRVP.ID, Msg: &wire.Message{
			Kind: wire.KindPing, Src: self, Dst: s.ownRVP, Via: self,
		}})
	}
	target, ok := s.view.Select(s.cfg.Selection, s.cfg.RNG)
	if !ok {
		return out
	}
	s.stats.ShufflesInitiated++
	s.pendingTarget = target.ID
	if !target.Class.Natted() {
		entries, sent := s.buffer()
		s.pendingSent = sent
		return append(out, Send{To: target.Addr, ToID: target.ID, Msg: &wire.Message{
			Kind: wire.KindRequest, Src: self, Dst: target, Via: self,
			Entries: entries,
		}})
	}
	rvp, ok := s.resolve(target.ID)
	if !ok {
		s.stats.NoRoute++
		return out
	}
	if s.cfg.Self.Class == ident.Symmetric || target.Class == ident.Symmetric {
		// Hole punching cannot serve symmetric combinations reliably;
		// relay the whole exchange through the target's RVP.
		s.stats.Relayed++
		entries, sent := s.buffer()
		s.pendingSent = sent
		return append(out, Send{To: rvp.Addr, ToID: rvp.ID, Msg: &wire.Message{
			Kind: wire.KindRequest, Src: self, Dst: target, Via: self,
			Entries: entries,
		}})
	}
	s.stats.HolePunchesStarted++
	s.pending[target.ID] = true
	out = append(out, Send{To: rvp.Addr, ToID: rvp.ID, Msg: &wire.Message{
		Kind: wire.KindOpenHole, Src: self, Dst: target, Via: self,
	}})
	if s.cfg.Self.Class.Natted() {
		out = append(out, Send{To: target.Addr, ToID: target.ID, Msg: &wire.Message{
			Kind: wire.KindPing, Src: self, Dst: target, Via: self,
		}})
	}
	return out
}

// Receive implements Engine.
func (s *StaticRVP) Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send {
	s.clients[msg.Via.ID] = from
	self := s.Self()
	switch msg.Kind {
	case wire.KindRequest:
		if msg.Dst.ID != s.cfg.Self.ID {
			// We are the target's RVP: hand the request over.
			s.stats.Forwarded++
			fwd := msg.Clone()
			fwd.Hops++
			fwd.Via = self
			return []Send{{To: s.endpointOf(msg.Dst), ToID: msg.Dst.ID, Msg: fwd}}
		}
		var out []Send
		var sentResp []view.Descriptor
		if s.cfg.PushPull {
			var entries []wire.ViewEntry
			entries, sentResp = s.buffer()
			resp := &wire.Message{
				Kind: wire.KindResponse, Src: self, Dst: msg.Src, Via: self,
				Entries: entries,
			}
			switch {
			case msg.Via.ID == msg.Src.ID:
				// Direct request: the observed endpoint is the open
				// return path.
				out = append(out, Send{To: from, ToID: msg.Src.ID, Msg: resp})
			default:
				// Relayed request: route the response through the
				// initiator's RVP.
				if rvp, ok := s.resolve(msg.Src.ID); ok {
					s.stats.Relayed++
					out = append(out, Send{To: rvp.Addr, ToID: rvp.ID, Msg: resp})
				} else if !msg.Src.Class.Natted() {
					out = append(out, Send{To: msg.Src.Addr, ToID: msg.Src.ID, Msg: resp})
				} else {
					s.stats.NoRoute++
				}
			}
		}
		s.view.ApplyExchange(s.cfg.Merge, msg.Descriptors(), sentResp, s.cfg.RNG)
		s.view.IncreaseAge()
		s.stats.ShufflesAnswered++
		return out
	case wire.KindResponse:
		if msg.Dst.ID != s.cfg.Self.ID {
			s.stats.Forwarded++
			fwd := msg.Clone()
			fwd.Hops++
			fwd.Via = self
			return []Send{{To: s.endpointOf(msg.Dst), ToID: msg.Dst.ID, Msg: fwd}}
		}
		if msg.Src.ID == s.pendingTarget {
			s.pendingTarget = ident.Nil
		}
		s.view.ApplyExchange(s.cfg.Merge, msg.Descriptors(), s.pendingSent, s.cfg.RNG)
		s.pendingSent = nil
		s.stats.ShufflesCompleted++
		return nil
	case wire.KindOpenHole:
		if msg.Dst.ID != s.cfg.Self.ID {
			s.stats.Forwarded++
			fwd := msg.Clone()
			fwd.Hops++
			fwd.Via = self
			return []Send{{To: s.endpointOf(msg.Dst), ToID: msg.Dst.ID, Msg: fwd}}
		}
		s.stats.ChainHopsTotal++ // exactly one RVP by construction
		s.stats.ChainSamples++
		return []Send{{To: msg.Src.Addr, ToID: msg.Src.ID, Msg: &wire.Message{
			Kind: wire.KindPong, Src: self, Dst: msg.Src, Via: self,
		}}}
	case wire.KindPing:
		return []Send{{To: from, ToID: msg.Src.ID, Msg: &wire.Message{
			Kind: wire.KindPong, Src: self, Dst: msg.Src, Via: self,
		}}}
	case wire.KindPong:
		if !s.pending[msg.Src.ID] {
			return nil
		}
		delete(s.pending, msg.Src.ID)
		s.stats.HolePunchesCompleted++
		entries, sent := s.buffer()
		s.pendingSent = sent
		return []Send{{To: from, ToID: msg.Src.ID, Msg: &wire.Message{
			Kind: wire.KindRequest, Src: self, Dst: msg.Src, Via: self,
			Entries: entries,
		}}}
	default:
		return nil
	}
}
