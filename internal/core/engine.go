// Package core implements the gossip peer-sampling protocol engines of the
// Nylon paper as sans-IO state machines:
//
//   - Generic: the baseline protocol of Fig. 1, configurable along the three
//     dimensions of Section 3 (target selection, view propagation, view
//     merging). It is NAT-oblivious: its messages get dropped by NAT devices,
//     which is exactly the pathology Figures 2-4 of the paper measure.
//   - Nylon: the NAT-resilient protocol of Fig. 6, with reactive hole
//     punching over chains of rendez-vous peers (RVPs).
//   - ARRG: the reachable-peer-cache baseline of Drost et al. [6], the only
//     prior gossip work handling NATs the paper cites.
//   - StaticRVP: the strawman dismissed in Section 4's introduction, where
//     every natted peer is bound to one fixed public rendez-vous peer.
//
// Engines are driven by a host (the discrete-event simulator or the
// real-time runtime): the host calls Tick once per shuffling period and
// Receive for each delivered datagram; engines return Send commands and never
// perform IO, so the same code runs under virtual and real time.
package core

import (
	"math/rand"

	"repro/internal/ident"
	"repro/internal/intern"
	"repro/internal/view"
	"repro/internal/wire"
)

// Shared is state an engine may share with every other engine whose calls
// are serialized on one goroutine — in the simulator, all engines of one
// shard. It exists purely for memory: at simulation scale the per-engine
// exchange scratch and descriptor copies dominate the heap, and almost all
// of it is only live during a single engine call. Sharing changes nothing
// observable (the per-shard equivalence tests pin it).
//
// A nil Config.Shared gives the engine private instances, which is the right
// default for real nodes and unit tests.
type Shared struct {
	// Intern is the descriptor intern table backing the Nylon routing
	// tables of the shard: one stored copy per distinct descriptor instead
	// of one per routing row.
	Intern *intern.Descriptors
	// View is the view-exchange working scratch.
	View *view.Scratch
	// Per-call scratch: the responder-side swapper buffer, the received
	// descriptors, and the returned command slice. None of them outlive one
	// engine call (the initiator-side buffer, which must survive until the
	// RESPONSE arrives, stays per-engine).
	resp []view.Descriptor
	recv []view.Descriptor
	out  []Send
	// lastVia/lastViaH memoize the last distinct via descriptor any engine
	// of the shard interned (valid because every engine's routing table
	// shares the Intern table above, and Intern is idempotent). Delivery
	// batches arrive grouped by sender, so a sender's whole batch interns
	// its descriptor once for the shard even as it scatters across many
	// destination engines.
	lastVia  view.Descriptor
	lastViaH intern.Handle
}

// NewShared returns an empty Shared ready to hand to every engine of one
// shard.
func NewShared() *Shared {
	return &Shared{Intern: &intern.Descriptors{}, View: &view.Scratch{}}
}

// Send instructs the host to transmit one datagram to a transport endpoint.
type Send struct {
	// To is the transport-level destination of the datagram. It may be a
	// relay rather than Msg.Dst.
	To ident.Endpoint
	// ToID identifies the intended transport-level recipient, for tracing
	// and metrics; the network delivers by endpoint only.
	ToID ident.NodeID
	// Msg is the datagram. The engine relinquishes ownership.
	Msg *wire.Message
}

// Engine is a peer-sampling protocol instance for one peer.
//
// Ownership contract, shared by all implementations: the []Send slice
// returned by Tick and Receive is scratch storage reused by the engine — it
// is valid only until the engine's next method call and must be consumed
// (or copied) before then. The messages it carries are freshly drawn from
// the wire message pool; ownership passes to the host, which may hand them
// to wire.Message.Release once fully consumed. Conversely, the message
// passed to Receive is only borrowed: the engine retains no reference to it
// or to its Entries once Receive returns.
type Engine interface {
	// Self returns the peer's own current descriptor (age zero).
	Self() view.Descriptor
	// View returns the peer's partial view. Callers must treat it as
	// read-only; the engine owns it.
	View() *view.View
	// Tick runs one shuffling period: select a gossip target, emit the
	// messages that start the exchange, age the view.
	Tick(now int64) []Send
	// Receive processes one datagram delivered at the given time from the
	// given transport endpoint.
	Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send
	// Stats exposes the engine's monotonic counters.
	Stats() *Stats
}

// newMsg draws a message from the given pool (nil: the shared wire pool)
// and stamps its routing header.
func newMsg(p *wire.Pool, kind wire.Kind, src, dst, via view.Descriptor) *wire.Message {
	m := p.Get()
	m.Kind, m.Src, m.Dst, m.Via = kind, src, dst, via
	return m
}

// Stats counts protocol events. All counters are monotonic; hosts snapshot
// and diff them. The fields deliberately mirror the metrics of the paper's
// evaluation section.
type Stats struct {
	// ShufflesInitiated counts Tick calls that selected a target.
	ShufflesInitiated uint64
	// ShufflesCompleted counts merged RESPONSEs (push/pull) at the
	// initiator.
	ShufflesCompleted uint64
	// ShufflesAnswered counts REQUESTs merged at the responder.
	ShufflesAnswered uint64
	// NoRoute counts initiations or forwards abandoned because no live RVP
	// route existed.
	NoRoute uint64
	// Forwarded counts datagrams relayed for other peers (RVP load).
	Forwarded uint64
	// HolePunchesStarted counts OPEN_HOLE messages originated.
	HolePunchesStarted uint64
	// HolePunchesCompleted counts PONGs received in response.
	HolePunchesCompleted uint64
	// Relayed counts REQUEST/RESPONSE exchanges that had to be relayed
	// end-to-end (symmetric NAT cases).
	Relayed uint64
	// ChainHopsTotal and ChainSamples accumulate the RVP chain length
	// observed at the destination of OPEN_HOLE and relayed REQUEST
	// messages (Fig. 9: "average number of RVPs towards a natted
	// destination").
	ChainHopsTotal uint64
	ChainSamples   uint64
	// CacheFallbacks counts ARRG shuffle retries served from the cache.
	CacheFallbacks uint64
	// HopLimitDrops counts relayed datagrams discarded at the forwarding
	// hop limit (maxForwardHops) — the loop guard that keeps a lying or
	// misrouting relay from circulating a datagram indefinitely.
	HopLimitDrops uint64
	// RelayDenied counts datagrams an adversarial relay silently refused to
	// forward (internal/adversary's lying-RVP strategy; always zero for
	// honest engines).
	RelayDenied uint64
	// AdversaryDrops counts datagrams an adversarial selective dropper
	// swallowed (internal/adversary; always zero for honest engines).
	AdversaryDrops uint64
}

// Config carries the parameters shared by all engines. The zero value is not
// usable; fill every field.
type Config struct {
	// Self is the peer's own descriptor: identity, advertised contact
	// endpoint (the NAT mapping for natted peers), NAT class.
	Self view.Descriptor
	// ViewSize is the maximum partial view size (paper default: 15).
	ViewSize int
	// Selection is the gossip target selection policy.
	Selection view.Selection
	// Merge is the view merging policy.
	Merge view.Merge
	// PushPull selects push/pull view propagation; false means push only.
	PushPull bool
	// HoleTimeout is the NAT filtering rule lifetime in milliseconds
	// (paper: 90 s). Nylon uses it as the TTL of fresh routing entries.
	HoleTimeout int64
	// LatencyBound is the assumed upper bound on one-way message latency
	// in milliseconds; Nylon discounts relayed route TTLs by it (paper §4:
	// "the TTL mechanism assumes a known upper bound on the latency").
	LatencyBound int64
	// RNG drives every random choice of the engine. Each engine must get
	// its own instance; engines never fall back to global randomness.
	RNG *rand.Rand
	// EvictUnanswered removes a shuffle target from the view when it has
	// not answered by the next period, as the reference implementation of
	// Jelasity et al. (TOCS 2007) does on timeout. The paper's Fig. 1 and
	// Fig. 6 pseudocode omit it, so it defaults off for fidelity; turning
	// it on sharply accelerates recovery from churn (ablation A5).
	EvictUnanswered bool
	// Msgs is the message pool the engine allocates from (and releases
	// to). The sharded simulator hands every engine its shard's
	// single-owner pool so message recycling never crosses cores; nil
	// falls back to the shared concurrency-safe pool.
	Msgs *wire.Pool
	// RefreshRoutesOnTraffic makes Nylon extend the TTL of every route
	// through an RVP whenever a datagram from that RVP arrives (one
	// possible reading of §4's TTL-update rule). Off by default: it keeps
	// routes alive whose onward legs are dead (see ablation A3).
	RefreshRoutesOnTraffic bool
	// Shared, when non-nil, is the per-shard shared scratch and intern
	// state (see Shared). All engines handed the same instance must have
	// their calls serialized on one goroutine.
	Shared *Shared
}

// shared returns the configured Shared or a fresh private one.
func (c Config) shared() *Shared {
	if c.Shared != nil {
		return c.Shared
	}
	return NewShared()
}

func (c Config) validate() {
	if c.Self.ID.IsNil() {
		panic("core: Config.Self.ID is nil")
	}
	if c.ViewSize <= 0 {
		panic("core: Config.ViewSize must be positive")
	}
	if c.RNG == nil {
		panic("core: Config.RNG is nil")
	}
}

// maxForwardHops bounds RVP chain forwarding so that routing loops (possible
// transiently with stale tables) cannot circulate messages forever. The
// paper observes chains of fewer than 4 relays on average; 32 is far beyond
// any useful chain.
const maxForwardHops = 32
