package core

import (
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

func newARRG(t *testing.T, id uint64, cacheSize int) *ARRG {
	t.Helper()
	return NewARRG(gcfg(id, ident.Public, true), cacheSize)
}

func TestARRGCacheSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewARRG with cacheSize 0 did not panic")
		}
	}()
	NewARRG(gcfg(1, ident.Public, true), 0)
}

func TestARRGCachesResponders(t *testing.T) {
	a := newARRG(t, 1, 4)
	src := pubDesc(2)
	fromEP := ident.Endpoint{IP: 99, Port: 99}
	resp := &wire.Message{Kind: wire.KindResponse, Src: src, Dst: a.Self(), Via: src}
	a.Receive(0, fromEP, resp)
	if a.CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", a.CacheLen())
	}
	// The cache stores the observed endpoint, which is what stays
	// reachable.
	if got := a.cache[0].Addr; got != fromEP {
		t.Errorf("cached endpoint = %v, want observed %v", got, fromEP)
	}
}

func TestARRGCacheDedupAndBound(t *testing.T) {
	a := newARRG(t, 1, 3)
	for i := 0; i < 10; i++ {
		src := pubDesc(uint64(2 + i%4))
		req := &wire.Message{Kind: wire.KindRequest, Src: src, Dst: a.Self(), Via: src}
		a.Receive(0, src.Addr, req)
	}
	if a.CacheLen() > 3 {
		t.Errorf("cache grew to %d, bound 3", a.CacheLen())
	}
	seen := map[ident.NodeID]bool{}
	for _, d := range a.cache {
		if seen[d.ID] {
			t.Errorf("duplicate cache entry %v", d.ID)
		}
		seen[d.ID] = true
	}
}

func TestARRGFallbackOnSilence(t *testing.T) {
	a := newARRG(t, 1, 4)
	a.Bootstrap([]view.Descriptor{pubDesc(2)})
	// Cache a known-reachable peer.
	resp := &wire.Message{Kind: wire.KindResponse, Src: pubDesc(5), Dst: a.Self(), Via: pubDesc(5)}
	a.Receive(0, pubDesc(5).Addr, resp)

	// First round: regular shuffle toward n2 (no fallback yet).
	out := a.Tick(0)
	if len(out) != 1 || out[0].ToID != 2 {
		t.Fatalf("first tick = %+v", out)
	}
	// n2 never answers: second round evicts it and retries via the cache.
	out = a.Tick(5000)
	foundFallback := false
	for _, s := range out {
		if s.ToID == 5 {
			foundFallback = true
		}
		if s.ToID == 2 {
			t.Error("evicted target still gossiped with")
		}
	}
	if !foundFallback {
		t.Errorf("no cache fallback in %+v", out)
	}
	if a.View().Contains(2) {
		t.Error("silent target not evicted")
	}
	if a.Stats().CacheFallbacks != 1 {
		t.Errorf("CacheFallbacks = %d", a.Stats().CacheFallbacks)
	}
}

func TestARRGResponseClearsPending(t *testing.T) {
	a := newARRG(t, 1, 4)
	a.Bootstrap([]view.Descriptor{pubDesc(2)})
	a.Tick(0)
	resp := &wire.Message{Kind: wire.KindResponse, Src: pubDesc(2), Dst: a.Self(), Via: pubDesc(2)}
	a.Receive(100, pubDesc(2).Addr, resp)
	// Answered: next tick must not evict or fall back.
	a.Tick(5000)
	if !a.View().Contains(2) {
		t.Error("answered target was evicted")
	}
	if a.Stats().CacheFallbacks != 0 {
		t.Error("fallback despite answer")
	}
}

func TestARRGIgnoresForeignKinds(t *testing.T) {
	a := newARRG(t, 1, 4)
	msg := &wire.Message{Kind: wire.KindOpenHole, Src: pubDesc(2), Dst: a.Self(), Via: pubDesc(2)}
	if out := a.Receive(0, pubDesc(2).Addr, msg); len(out) != 0 {
		t.Errorf("ARRG reacted to OPEN_HOLE: %v", out)
	}
}
