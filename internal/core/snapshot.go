package core

import (
	"sort"

	"repro/internal/ident"
	"repro/internal/snapshot"
	"repro/internal/view"
)

// This file implements checkpoint capture and restore for the four engines.
// Capture runs at a kernel barrier, when no engine call is in flight, so the
// per-call scratch in Shared is dead and never serialized; the same goes for
// pure memo/cache state (Nylon's lastVia memo, the routing table's find memo,
// warmSink), which a restored engine simply re-derives at full fidelity —
// every memo is a strict performance cache whose absence changes no
// observable behaviour, a property the snapshot/resume invariance test pins.
//
// Restore methods assume a freshly constructed engine (same constructor
// arguments as the original: the host re-creates engines structurally from
// the restored roster, then replays state into them). View entries replay
// through View.Add in serialized order so membership observers fire and
// rebuild their accumulators; routing rows replay through rt.LoadRow in
// storage order so deletion swaps behave identically after resume.

// encDescs writes a descriptor slice in order.
func encDescs(enc *snapshot.Encoder, ds []view.Descriptor) {
	enc.U32(uint32(len(ds)))
	for _, d := range ds {
		enc.Desc(d)
	}
}

// descSize is the encoded size of one view.Descriptor.
const descSize = 8 + 6 + 1 + 4

// decDescs reads a descriptor slice written by encDescs. A zero count
// returns nil, matching the pre-snapshot value of never-used buffers.
func decDescs(dec *snapshot.Decoder) []view.Descriptor {
	n := dec.Count(descSize)
	if n == 0 {
		return nil
	}
	ds := make([]view.Descriptor, n)
	for i := range ds {
		ds[i] = dec.Desc()
	}
	return ds
}

// encView writes a view's entries in order.
func encView(enc *snapshot.Encoder, v *view.View) {
	enc.U32(uint32(v.Len()))
	for i := 0; i < v.Len(); i++ {
		enc.Desc(v.At(i))
	}
}

// decView replays serialized entries into a fresh view through Add, firing
// any installed membership observer per entry. Add rejecting an entry means
// the payload violates view invariants (duplicate, owner, overflow): the
// world described is not one a run could produce, so the decode fails.
func decView(dec *snapshot.Decoder, v *view.View) {
	n := dec.Count(descSize)
	for i := 0; i < n; i++ {
		d := dec.Desc()
		if dec.Err() != nil {
			return
		}
		if !v.Add(d) {
			dec.Fail("view entry %v rejected on replay", d.ID)
			return
		}
	}
}

// encStats writes every Stats counter.
func encStats(enc *snapshot.Encoder, s *Stats) {
	enc.U64(s.ShufflesInitiated)
	enc.U64(s.ShufflesCompleted)
	enc.U64(s.ShufflesAnswered)
	enc.U64(s.NoRoute)
	enc.U64(s.Forwarded)
	enc.U64(s.HolePunchesStarted)
	enc.U64(s.HolePunchesCompleted)
	enc.U64(s.Relayed)
	enc.U64(s.ChainHopsTotal)
	enc.U64(s.ChainSamples)
	enc.U64(s.CacheFallbacks)
	enc.U64(s.HopLimitDrops)
	enc.U64(s.RelayDenied)
	enc.U64(s.AdversaryDrops)
}

// decStats reads counters written by encStats.
func decStats(dec *snapshot.Decoder, s *Stats) {
	s.ShufflesInitiated = dec.U64()
	s.ShufflesCompleted = dec.U64()
	s.ShufflesAnswered = dec.U64()
	s.NoRoute = dec.U64()
	s.Forwarded = dec.U64()
	s.HolePunchesStarted = dec.U64()
	s.HolePunchesCompleted = dec.U64()
	s.Relayed = dec.U64()
	s.ChainHopsTotal = dec.U64()
	s.ChainSamples = dec.U64()
	s.CacheFallbacks = dec.U64()
	s.HopLimitDrops = dec.U64()
	s.RelayDenied = dec.U64()
	s.AdversaryDrops = dec.U64()
}

// encPendingSent writes the cross-round REQUEST buffer: the reqSent backing
// slice is serialized only while pendingSent aliases it (the RESPONSE that
// will consume it has not arrived); afterwards its contents are dead scratch,
// overwritten before the next read, so an empty slice restores it.
func encPendingSent(enc *snapshot.Encoder, reqSent, pendingSent []view.Descriptor) {
	valid := pendingSent != nil
	enc.Bool(valid)
	if valid {
		encDescs(enc, reqSent)
	}
}

// decPendingSent reads the buffer written by encPendingSent, returning the
// restored reqSent slice and the pendingSent alias (nil when not pending).
func decPendingSent(dec *snapshot.Decoder) (reqSent, pendingSent []view.Descriptor) {
	if !dec.Bool() {
		return nil, nil
	}
	reqSent = decDescs(dec)
	return reqSent, reqSent
}

// encIDs writes a NodeID slice in order.
func encIDs(enc *snapshot.Encoder, ids []ident.NodeID) {
	enc.U32(uint32(len(ids)))
	for _, id := range ids {
		enc.U64(uint64(id))
	}
}

// decIDs reads a slice written by encIDs (nil when empty).
func decIDs(dec *snapshot.Decoder) []ident.NodeID {
	n := dec.Count(8)
	if n == 0 {
		return nil
	}
	ids := make([]ident.NodeID, n)
	for i := range ids {
		ids[i] = ident.NodeID(dec.U64())
	}
	return ids
}

// SnapshotTo serializes the engine's full protocol state.
func (n *Nylon) SnapshotTo(enc *snapshot.Encoder) {
	encView(enc, n.view)
	enc.U32(uint32(n.routes.Len()))
	n.routes.EachRow(func(dest ident.NodeID, rvp view.Descriptor, expireAt int64) {
		enc.U64(uint64(dest))
		enc.Desc(rvp)
		enc.I64(expireAt)
	})
	enc.I64(n.routes.MinExpireBound())
	encIDs(enc, n.pending)
	enc.U64(uint64(n.pendingTarget))
	encPendingSent(enc, n.reqSent, n.pendingSent)
	enc.U64(n.tick)
	encStats(enc, &n.stats)
}

// RestoreFrom replays state captured by SnapshotTo into a freshly
// constructed engine. On corrupt input the decoder's sticky error is set;
// the engine must then be discarded.
func (n *Nylon) RestoreFrom(dec *snapshot.Decoder) {
	decView(dec, n.view)
	nRows := dec.Count(8 + descSize + 8)
	for i := 0; i < nRows; i++ {
		dest := ident.NodeID(dec.U64())
		rvp := dec.Desc()
		expireAt := dec.I64()
		if dec.Err() != nil {
			return
		}
		n.routes.LoadRow(dest, rvp, expireAt)
	}
	n.routes.RestoreMinExpire(dec.I64())
	n.pending = decIDs(dec)
	n.pendingTarget = ident.NodeID(dec.U64())
	n.reqSent, n.pendingSent = decPendingSent(dec)
	n.tick = dec.U64()
	decStats(dec, &n.stats)
}

// SnapshotTo serializes the engine's full protocol state.
func (g *Generic) SnapshotTo(enc *snapshot.Encoder) {
	encView(enc, g.view)
	enc.U64(uint64(g.pendingTarget))
	encPendingSent(enc, g.reqSent, g.pendingSent)
	encStats(enc, &g.stats)
}

// RestoreFrom replays state captured by SnapshotTo into a freshly
// constructed engine.
func (g *Generic) RestoreFrom(dec *snapshot.Decoder) {
	decView(dec, g.view)
	g.pendingTarget = ident.NodeID(dec.U64())
	g.reqSent, g.pendingSent = decPendingSent(dec)
	decStats(dec, &g.stats)
}

// SnapshotTo serializes the engine's full protocol state. The reachable-peer
// cache is ordered state (eviction is FIFO, fallback picks by index), so it
// serializes in slice order.
func (a *ARRG) SnapshotTo(enc *snapshot.Encoder) {
	encView(enc, a.view)
	encDescs(enc, a.cache)
	enc.U64(uint64(a.pending))
	encPendingSent(enc, a.reqSent, a.pendingSent)
	encStats(enc, &a.stats)
}

// RestoreFrom replays state captured by SnapshotTo into a freshly
// constructed engine.
func (a *ARRG) RestoreFrom(dec *snapshot.Decoder) {
	decView(dec, a.view)
	a.cache = decDescs(dec)
	a.pending = ident.NodeID(dec.U64())
	a.reqSent, a.pendingSent = decPendingSent(dec)
	decStats(dec, &a.stats)
}

// SnapshotTo serializes the engine's full protocol state. The learned client
// endpoints live in a map, so they serialize sorted by peer ID to keep the
// encoding independent of map iteration order.
func (s *StaticRVP) SnapshotTo(enc *snapshot.Encoder) {
	encView(enc, s.view)
	ids := make([]ident.NodeID, 0, len(s.clients))
	for id := range s.clients {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.U32(uint32(len(ids)))
	for _, id := range ids {
		enc.U64(uint64(id))
		enc.Endpoint(s.clients[id])
	}
	encIDs(enc, s.pending)
	enc.U64(uint64(s.pendingTarget))
	encPendingSent(enc, s.reqSent, s.pendingSent)
	encStats(enc, &s.stats)
}

// RestoreFrom replays state captured by SnapshotTo into a freshly
// constructed engine.
func (s *StaticRVP) RestoreFrom(dec *snapshot.Decoder) {
	decView(dec, s.view)
	nClients := dec.Count(8 + 6)
	for i := 0; i < nClients; i++ {
		id := ident.NodeID(dec.U64())
		ep := dec.Endpoint()
		if dec.Err() != nil {
			return
		}
		s.clients[id] = ep
	}
	s.pending = decIDs(dec)
	s.pendingTarget = ident.NodeID(dec.U64())
	s.reqSent, s.pendingSent = decPendingSent(dec)
	decStats(dec, &s.stats)
}
