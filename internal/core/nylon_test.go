package core

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

func ncfg(id uint64, class ident.NATClass) Config {
	c := gcfg(id, class, true)
	c.RNG = rand.New(rand.NewSource(int64(id) * 7))
	return c
}

func nattedDesc(id uint64, class ident.NATClass) view.Descriptor {
	return view.Descriptor{
		ID:    ident.NodeID(id),
		Addr:  ident.Endpoint{IP: ident.IP(0x40000000 + uint32(id)), Port: 1024},
		Class: class,
	}
}

func TestNylonDirectToPublicTarget(t *testing.T) {
	n := NewNylon(ncfg(1, ident.PortRestrictedCone))
	n.Bootstrap(0, []view.Descriptor{pubDesc(2)})
	out := n.Tick(0)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindRequest || out[0].ToID != 2 {
		t.Fatalf("Tick = %+v, want direct REQUEST to n2", out)
	}
}

func TestNylonHolePunchFlow(t *testing.T) {
	// n1 (PRC) wants to gossip with natted n3 (RC), known via RVP n2.
	n1 := NewNylon(ncfg(1, ident.PortRestrictedCone))
	rvp := nattedDesc(2, ident.RestrictedCone)
	target := nattedDesc(3, ident.RestrictedCone)
	n1.View().Add(target)
	n1.Routes().SetDirect(rvp, 90_000)
	n1.Routes().Set(target.ID, rvp, 90_000)

	out := n1.Tick(0)
	if len(out) != 2 {
		t.Fatalf("Tick emitted %d messages, want OPEN_HOLE + PING: %+v", len(out), out)
	}
	var openHole, ping *Send
	for i := range out {
		switch out[i].Msg.Kind {
		case wire.KindOpenHole:
			openHole = &out[i]
		case wire.KindPing:
			ping = &out[i]
		}
	}
	if openHole == nil || ping == nil {
		t.Fatalf("missing OPEN_HOLE or PING: %+v", out)
	}
	if openHole.ToID != rvp.ID || openHole.Msg.Dst.ID != target.ID {
		t.Errorf("OPEN_HOLE misrouted: %+v", openHole)
	}
	if ping.ToID != target.ID || ping.To != target.Addr {
		t.Errorf("PING misrouted: %+v", ping)
	}
	if n1.Stats().HolePunchesStarted != 1 {
		t.Error("HolePunchesStarted not counted")
	}

	// The PONG arrives from the target's punched mapping.
	punched := ident.Endpoint{IP: target.Addr.IP, Port: 2000}
	pong := &wire.Message{Kind: wire.KindPong, Src: target, Dst: n1.Self(), Via: target}
	reply := n1.Receive(150, punched, pong)
	if len(reply) != 1 || reply[0].Msg.Kind != wire.KindRequest {
		t.Fatalf("PONG did not trigger REQUEST: %+v", reply)
	}
	// The REQUEST goes to the observed (punched) endpoint, not the
	// advertised one.
	if reply[0].To != punched {
		t.Errorf("REQUEST to %v, want punched endpoint %v", reply[0].To, punched)
	}
	if n1.Stats().HolePunchesCompleted != 1 {
		t.Error("HolePunchesCompleted not counted")
	}
	// A duplicate PONG must not trigger a second REQUEST.
	if dup := n1.Receive(160, punched, pong); len(dup) != 0 {
		t.Errorf("duplicate PONG triggered %v", dup)
	}
}

func TestNylonStalePongIgnored(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.PortRestrictedCone))
	target := nattedDesc(3, ident.RestrictedCone)
	pong := &wire.Message{Kind: wire.KindPong, Src: target, Dst: n1.Self(), Via: target}
	if out := n1.Receive(0, target.Addr, pong); len(out) != 0 {
		t.Errorf("unsolicited PONG triggered %v", out)
	}
}

func TestNylonNoRouteWastesRound(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.PortRestrictedCone))
	n1.View().Add(nattedDesc(3, ident.RestrictedCone)) // no route installed
	if out := n1.Tick(0); len(out) != 0 {
		t.Errorf("Tick without route emitted %v", out)
	}
	if n1.Stats().NoRoute != 1 {
		t.Errorf("NoRoute = %d, want 1", n1.Stats().NoRoute)
	}
}

func TestNylonRelayInitiationForSymmetric(t *testing.T) {
	// A symmetric initiator relays the whole REQUEST through the chain.
	n1 := NewNylon(ncfg(1, ident.Symmetric))
	rvp := pubDesc(2)
	target := nattedDesc(3, ident.RestrictedCone)
	n1.View().Add(target)
	n1.Routes().Set(target.ID, rvp, 90_000)
	out := n1.Tick(0)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindRequest || out[0].ToID != rvp.ID {
		t.Fatalf("symmetric initiator emitted %+v, want relayed REQUEST via n2", out)
	}
	if out[0].Msg.Dst.ID != target.ID {
		t.Errorf("relayed REQUEST Dst = %v, want target", out[0].Msg.Dst.ID)
	}
	if n1.Stats().Relayed != 1 {
		t.Error("Relayed not counted")
	}
}

func TestNylonPRCToSymmetricRelays(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.PortRestrictedCone))
	rvp := pubDesc(2)
	target := nattedDesc(3, ident.Symmetric)
	n1.View().Add(target)
	n1.Routes().Set(target.ID, rvp, 90_000)
	out := n1.Tick(0)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindRequest {
		t.Fatalf("PRC→SYM emitted %+v, want relayed REQUEST", out)
	}
}

func TestNylonForwardsAlongChain(t *testing.T) {
	// n2 relays an OPEN_HOLE from n4 toward n1 via its own route (n1 direct).
	n2 := NewNylon(ncfg(2, ident.RestrictedCone))
	dest := nattedDesc(1, ident.RestrictedCone)
	n2.Routes().SetDirect(dest, 90_000)
	src := nattedDesc(4, ident.PortRestrictedCone)
	oh := &wire.Message{Kind: wire.KindOpenHole, Src: src, Dst: dest, Via: nattedDesc(3, ident.RestrictedCone), Hops: 1}
	out := n2.Receive(0, ident.Endpoint{IP: 7, Port: 7}, oh)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindOpenHole {
		t.Fatalf("forward = %+v", out)
	}
	if out[0].ToID != dest.ID || out[0].Msg.Hops != 2 || out[0].Msg.Via.ID != 2 {
		t.Errorf("forwarded message wrong: to=%v hops=%d via=%v", out[0].ToID, out[0].Msg.Hops, out[0].Msg.Via.ID)
	}
	if n2.Stats().Forwarded != 1 {
		t.Error("Forwarded not counted")
	}
	// Reverse path learned: n2 can now route toward n4 via n3.
	if _, ok := n2.Routes().Next(src.ID, 0); !ok {
		t.Error("reverse path to originator not learned")
	}
}

func TestNylonOpenHoleAtDestinationPongs(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.RestrictedCone))
	src := nattedDesc(4, ident.PortRestrictedCone)
	oh := &wire.Message{Kind: wire.KindOpenHole, Src: src, Dst: n1.Self(), Via: nattedDesc(2, ident.RestrictedCone), Hops: 2}
	out := n1.Receive(0, ident.Endpoint{IP: 9, Port: 9}, oh)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindPong {
		t.Fatalf("OPEN_HOLE at dest emitted %+v, want PONG", out)
	}
	if out[0].To != src.Addr || out[0].ToID != src.ID {
		t.Errorf("PONG to %v, want %v", out[0].To, src.Addr)
	}
	// Chain metric: hops=2 forwards plus the initial RVP = 3 RVPs.
	st := n1.Stats()
	if st.ChainSamples != 1 || st.ChainHopsTotal != 3 {
		t.Errorf("chain stats = %d/%d, want 3/1", st.ChainHopsTotal, st.ChainSamples)
	}
}

func TestNylonPingGetsPong(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.RestrictedCone))
	src := nattedDesc(4, ident.PortRestrictedCone)
	fromEP := ident.Endpoint{IP: 0x40000004, Port: 3333}
	ping := &wire.Message{Kind: wire.KindPing, Src: src, Dst: n1.Self(), Via: src}
	out := n1.Receive(0, fromEP, ping)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindPong || out[0].To != fromEP {
		t.Fatalf("PING handling = %+v, want PONG to observed endpoint", out)
	}
}

func TestNylonRequestMergesAndRoutes(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.Public))
	src := nattedDesc(4, ident.RestrictedCone)
	carried := nattedDesc(9, ident.PortRestrictedCone)
	req := &wire.Message{
		Kind: wire.KindRequest, Src: src, Dst: n1.Self(), Via: src,
		Entries: []wire.ViewEntry{
			{Desc: src.Fresh()},
			{Desc: carried, RouteTTL: 60_000},
			{Desc: pubDesc(5)},
		},
	}
	fromEP := ident.Endpoint{IP: 0x40000004, Port: 4444}
	out := n1.Receive(0, fromEP, req)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindResponse || out[0].To != fromEP {
		t.Fatalf("REQUEST handling = %+v", out)
	}
	if !n1.View().Contains(src.ID) || !n1.View().Contains(carried.ID) || !n1.View().Contains(5) {
		t.Errorf("view after merge: %v", n1.View())
	}
	// Route to the carried natted entry installed via the sender, with the
	// advertised TTL discounted by the latency bound.
	e, ok := n1.Routes().Get(carried.ID, 0)
	if !ok || e.RVP.ID != src.ID {
		t.Fatalf("route to carried entry = %+v, %v", e, ok)
	}
	if e.ExpireAt != 60_000-100 {
		t.Errorf("route expiry = %d, want 59900", e.ExpireAt)
	}
	// Direct route to the sender uses the observed endpoint.
	d, ok := n1.Routes().Get(src.ID, 0)
	if !ok || d.RVP.Addr != fromEP {
		t.Errorf("sender route = %+v, %v; want observed endpoint", d, ok)
	}
}

func TestNylonRouteTTLCappedByHoleTimeout(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.Public))
	src := nattedDesc(4, ident.RestrictedCone)
	carried := nattedDesc(9, ident.PortRestrictedCone)
	req := &wire.Message{
		Kind: wire.KindRequest, Src: src, Dst: n1.Self(), Via: src,
		Entries: []wire.ViewEntry{{Desc: carried, RouteTTL: 500_000}},
	}
	n1.Receive(0, src.Addr, req)
	e, ok := n1.Routes().Get(carried.ID, 0)
	if !ok || e.ExpireAt != 90_000-100 {
		t.Errorf("route expiry = %+v (%v), want holeTimeout-latencyBound", e, ok)
	}
}

func TestNylonSymmetricResponderRelaysBack(t *testing.T) {
	// A symmetric responder must send its RESPONSE along the chain, not
	// directly (Fig. 6 lines 20-22).
	n3 := NewNylon(ncfg(3, ident.Symmetric))
	src := nattedDesc(4, ident.RestrictedCone)
	relay := nattedDesc(2, ident.RestrictedCone)
	relayEP := ident.Endpoint{IP: 0x40000002, Port: 5555}
	req := &wire.Message{
		Kind: wire.KindRequest, Src: src, Dst: n3.Self(), Via: relay, Hops: 1,
		Entries: []wire.ViewEntry{{Desc: src.Fresh()}},
	}
	out := n3.Receive(0, relayEP, req)
	if len(out) != 1 || out[0].Msg.Kind != wire.KindResponse {
		t.Fatalf("symmetric responder emitted %+v", out)
	}
	// The response's first hop is the relay (reverse path), not src.
	if out[0].ToID != relay.ID || out[0].To != relayEP {
		t.Errorf("response first hop = %v@%v, want relay %v@%v", out[0].ToID, out[0].To, relay.ID, relayEP)
	}
	if out[0].Msg.Dst.ID != src.ID {
		t.Errorf("response Dst = %v, want src", out[0].Msg.Dst.ID)
	}
}

func TestNylonForwardHopLimit(t *testing.T) {
	n2 := NewNylon(ncfg(2, ident.RestrictedCone))
	dest := nattedDesc(1, ident.RestrictedCone)
	n2.Routes().SetDirect(dest, 90_000)
	oh := &wire.Message{Kind: wire.KindOpenHole, Src: nattedDesc(4, ident.RestrictedCone), Dst: dest, Via: nattedDesc(3, ident.RestrictedCone), Hops: maxForwardHops}
	if out := n2.Receive(0, ident.Endpoint{IP: 7, Port: 7}, oh); len(out) != 0 {
		t.Errorf("over-limit message forwarded: %v", out)
	}
}

func TestNylonBootstrapInstallsRoutes(t *testing.T) {
	n1 := NewNylon(ncfg(1, ident.PortRestrictedCone))
	seed := nattedDesc(2, ident.RestrictedCone)
	n1.Bootstrap(0, []view.Descriptor{seed, pubDesc(3)})
	if !n1.Routes().Direct(seed.ID, 0) {
		t.Error("bootstrap did not install direct route to natted seed")
	}
	if n1.View().Len() != 2 {
		t.Errorf("view after bootstrap: %v", n1.View())
	}
}

func TestNylonBufferAdvertisesTTLs(t *testing.T) {
	cfg := ncfg(1, ident.Public)
	cfg.ViewSize = 8 // exchange length 3 covers both entries below
	n1 := NewNylon(cfg)
	natted := nattedDesc(2, ident.RestrictedCone)
	n1.View().Add(natted)
	n1.View().Add(pubDesc(3))
	n1.Routes().Set(natted.ID, pubDesc(5), 40_000)
	msg := wire.NewMessage()
	sent := n1.buffer(10_000, msg, nil)
	entries := msg.Entries
	if len(sent) != 2 || len(entries) != 3 {
		t.Fatalf("buffer shipped %d entries + self (%d total), want both view entries", len(sent), len(entries))
	}
	if entries[0].Desc.ID != 1 || entries[0].Desc.Age != 0 {
		t.Errorf("buffer head is not the fresh self descriptor: %v", entries[0].Desc)
	}
	var nattedTTL, pubTTL uint32
	for _, e := range entries[1:] {
		switch e.Desc.ID {
		case 2:
			nattedTTL = e.RouteTTL
		case 3:
			pubTTL = e.RouteTTL
		}
	}
	if nattedTTL != 30_000 {
		t.Errorf("natted entry RouteTTL = %d, want 30000", nattedTTL)
	}
	if pubTTL != 0 {
		t.Errorf("public entry RouteTTL = %d, want 0", pubTTL)
	}
}

func TestRelayConditions(t *testing.T) {
	pub := pubDesc(1)
	rc := nattedDesc(2, ident.RestrictedCone)
	prc := nattedDesc(3, ident.PortRestrictedCone)
	sym := nattedDesc(4, ident.Symmetric)

	// Fig. 6 line 5.
	initCases := []struct {
		self, target view.Descriptor
		want         bool
	}{
		{prc, sym, true},
		{sym, rc, true},
		{sym, sym, true},
		{rc, sym, false}, // RC→SYM hole punches
		{pub, sym, false},
		{prc, rc, false},
	}
	for _, c := range initCases {
		if got := relayInitiate(c.self, c.target); got != c.want {
			t.Errorf("relayInitiate(%v, %v) = %v, want %v", c.self.Class, c.target.Class, got, c.want)
		}
	}
	// Fig. 6 line 20.
	respCases := []struct {
		self, src view.Descriptor
		want      bool
	}{
		{rc, sym, true},
		{sym, rc, true},
		{pub, sym, false},
		{sym, pub, false},
		{prc, rc, false},
	}
	for _, c := range respCases {
		if got := relayRespond(c.self, c.src); got != c.want {
			t.Errorf("relayRespond(%v, %v) = %v, want %v", c.self.Class, c.src.Class, got, c.want)
		}
	}
}
