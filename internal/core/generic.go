package core

import (
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// Generic is the NAT-oblivious gossip peer-sampling protocol of Fig. 1 of the
// paper, configurable along the selection, propagation and merging
// dimensions. It addresses every message to the target's advertised endpoint
// and has no traversal machinery: NAT devices silently eat its datagrams,
// wasting the round and leaving stale references behind.
type Generic struct {
	cfg  Config
	view *view.View
	// pendingSent remembers the buffer shipped with the round's REQUEST so
	// the swapper policy can discard exactly those entries when the
	// RESPONSE arrives; pendingTarget is who it went to. A target that has
	// not answered by the next period is evicted from the view, as in the
	// reference framework of Jelasity et al. (TOCS 2007) — with NATs in
	// the way this is the only thing that ever clears stale entries, and
	// the resulting view shrinkage is precisely what partitions the
	// overlay in the paper's Fig. 2.
	pendingSent   []view.Descriptor
	pendingTarget ident.NodeID
	stats         Stats
	// reqSent backs pendingSent across rounds, so it must stay per-engine;
	// the per-call scratch (responder swapper buffer, received descriptors,
	// returned command slice) lives in sh, shared across the shard's
	// engines.
	reqSent []view.Descriptor
	sh      *Shared
}

var _ Engine = (*Generic)(nil)

// NewGeneric builds a baseline engine. It panics on an invalid Config.
func NewGeneric(cfg Config) *Generic {
	cfg.validate()
	sh := cfg.shared()
	return &Generic{cfg: cfg, sh: sh, view: view.NewShared(cfg.Self.ID, cfg.ViewSize, sh.View)}
}

// Self implements Engine.
func (g *Generic) Self() view.Descriptor { return g.cfg.Self.Fresh() }

// View implements Engine.
func (g *Generic) View() *view.View { return g.view }

// Stats implements Engine.
func (g *Generic) Stats() *Stats { return &g.stats }

// Bootstrap seeds the view with initial descriptors (at most ViewSize).
func (g *Generic) Bootstrap(ds []view.Descriptor) {
	for _, d := range ds {
		g.view.Add(d)
	}
}

// buffer fills m's entries with the shuffle buffer: the peer's fresh
// descriptor plus the exchange half of its view. The raw descriptors shipped
// are appended to buf and returned (for the swapper bookkeeping).
func (g *Generic) buffer(m *wire.Message, buf []view.Descriptor) []view.Descriptor {
	sent := g.view.PrepareExchangeInto(g.cfg.Merge, g.cfg.RNG, buf)
	m.Entries = append(m.Entries[:0], wire.ViewEntry{Desc: g.Self()})
	for _, d := range sent {
		m.Entries = append(m.Entries, wire.ViewEntry{Desc: d})
	}
	return sent
}

// Tick implements Engine: one shuffling period (Fig. 1, lines 1-7).
func (g *Generic) Tick(now int64) []Send {
	if g.cfg.EvictUnanswered && g.cfg.PushPull && !g.pendingTarget.IsNil() {
		// Last round's target never answered: evict it.
		g.view.Remove(g.pendingTarget)
		g.pendingTarget = ident.Nil
	}
	target, ok := g.view.Select(g.cfg.Selection, g.cfg.RNG)
	// Ages increase once per period whether or not a target exists, so
	// isolated peers do not freeze their view's age structure.
	defer g.view.IncreaseAge()
	if !ok {
		return nil
	}
	g.stats.ShufflesInitiated++
	msg := newMsg(g.cfg.Msgs, wire.KindRequest, g.Self(), target, g.Self())
	g.reqSent = g.buffer(msg, g.reqSent[:0])
	g.pendingSent = g.reqSent
	g.pendingTarget = target.ID
	g.sh.out = append(g.sh.out[:0], Send{To: target.Addr, ToID: target.ID, Msg: msg})
	return g.sh.out
}

// Receive implements Engine (Fig. 1, lines 8-12).
func (g *Generic) Receive(now int64, from ident.Endpoint, msg *wire.Message) []Send {
	switch msg.Kind {
	case wire.KindRequest:
		out := g.sh.out[:0]
		var sent []view.Descriptor
		if g.cfg.PushPull {
			resp := newMsg(g.cfg.Msgs, wire.KindResponse, g.Self(), msg.Src, g.Self())
			g.sh.resp = g.buffer(resp, g.sh.resp[:0])
			sent = g.sh.resp
			// Reply to the observed transport endpoint: the
			// requester's NAT session toward us admits exactly this
			// return path.
			out = append(out, Send{To: from, ToID: msg.Src.ID, Msg: resp})
		}
		g.sh.recv = msg.AppendDescriptors(g.sh.recv[:0])
		g.view.ApplyExchange(g.cfg.Merge, g.sh.recv, sent, g.cfg.RNG)
		g.view.IncreaseAge()
		g.stats.ShufflesAnswered++
		g.sh.out = out
		return out
	case wire.KindResponse:
		if msg.Src.ID == g.pendingTarget {
			g.pendingTarget = ident.Nil
		}
		g.sh.recv = msg.AppendDescriptors(g.sh.recv[:0])
		g.view.ApplyExchange(g.cfg.Merge, g.sh.recv, g.pendingSent, g.cfg.RNG)
		g.pendingSent = nil
		g.stats.ShufflesCompleted++
		return nil
	default:
		// The baseline protocol has no other message kinds; ignore.
		return nil
	}
}
