package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// randMsg builds an arbitrary — possibly nonsensical — protocol message.
func randMsg(rng *rand.Rand, selfID ident.NodeID) *wire.Message {
	randDesc := func() view.Descriptor {
		id := ident.NodeID(rng.Intn(12)) // includes 0 (nil) and selfID
		return view.Descriptor{
			ID:    id,
			Addr:  ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: uint16(rng.Intn(1 << 16))},
			Class: ident.NATClass(rng.Intn(ident.NumClasses + 2)), // includes invalid
			Age:   rng.Uint32() % 100,
		}
	}
	m := &wire.Message{
		Kind: wire.Kind(rng.Intn(8)), // includes invalid kinds
		Hops: uint8(rng.Intn(64)),
		Src:  randDesc(),
		Dst:  randDesc(),
		Via:  randDesc(),
	}
	if rng.Intn(2) == 0 {
		m.Dst.ID = selfID // half the storm is addressed to the engine
	}
	for i := rng.Intn(6); i > 0; i-- {
		m.Entries = append(m.Entries, wire.ViewEntry{Desc: randDesc(), RouteTTL: rng.Uint32() % 200_000})
	}
	return m
}

// stormEngine drives an engine with interleaved random messages and ticks,
// checking that it never panics, never corrupts its view, and never emits a
// send without a destination.
func stormEngine(t *testing.T, build func(seed int64) Engine) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eng := build(seed)
		selfID := eng.Self().ID
		now := int64(0)
		for step := 0; step < 200; step++ {
			var outs []Send
			if rng.Intn(5) == 0 {
				outs = eng.Tick(now)
				now += 5000
			} else {
				from := ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: uint16(rng.Intn(1 << 16))}
				outs = eng.Receive(now, from, randMsg(rng, selfID))
				now += int64(rng.Intn(100))
			}
			for _, s := range outs {
				if s.Msg == nil {
					t.Fatalf("seed %d: nil message emitted", seed)
				}
				if s.To.IsZero() {
					t.Fatalf("seed %d: send without destination: %+v", seed, s)
				}
			}
			if err := eng.View().Validate(); err != nil {
				t.Fatalf("seed %d: view corrupt after step %d: %v", seed, step, err)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func stormCfg(seed int64) Config {
	classes := []ident.NATClass{ident.Public, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric}
	rng := rand.New(rand.NewSource(seed))
	cfg := gcfg(1, classes[rng.Intn(len(classes))], true)
	cfg.Merge = view.Merge(rng.Intn(3))
	cfg.Selection = view.Selection(rng.Intn(2))
	cfg.EvictUnanswered = rng.Intn(2) == 0
	cfg.RNG = rng
	return cfg
}

func TestGenericSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64) Engine {
		g := NewGeneric(stormCfg(seed))
		g.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return g
	})
}

func TestNylonSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64) Engine {
		n := NewNylon(stormCfg(seed))
		n.Bootstrap(0, []view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return n
	})
}

func TestARRGSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64) Engine {
		a := NewARRG(stormCfg(seed), 4)
		a.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return a
	})
}

func TestStaticRVPSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64) Engine {
		cfg := stormCfg(seed)
		rvp := pubDesc(100)
		var own view.Descriptor
		if cfg.Self.Class.Natted() {
			own = rvp
		}
		s := NewStaticRVP(cfg, own, func(id ident.NodeID) (view.Descriptor, bool) {
			return rvp, id%2 == 0
		})
		s.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return s
	})
}

// TestNylonStormNeverLoopsToSender: even under storms, forwarded messages
// never go straight back to their transport-level sender.
func TestNylonStormNeverLoopsToSender(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNylon(stormCfg(seed))
		n.Bootstrap(0, []view.Descriptor{nattedDesc(3, ident.RestrictedCone), nattedDesc(4, ident.PortRestrictedCone)})
		for step := 0; step < 100; step++ {
			msg := randMsg(rng, n.Self().ID)
			msg.Dst.ID = 99 // force the forwarding path
			from := ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: 1}
			for _, s := range n.Receive(int64(step), from, msg) {
				forwarded := s.Msg.Kind == msg.Kind && s.Msg.Hops == msg.Hops+1
				if forwarded && s.ToID == msg.Via.ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
