package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// randMsg builds an arbitrary — possibly nonsensical — protocol message,
// including the patterns a Byzantine peer would craft: buffers stuffed with
// one forever-young descriptor repeated (colluder stuffing), self and nil
// descriptors, and forged route TTLs far beyond any honest hole lifetime.
func randMsg(rng *rand.Rand, selfID ident.NodeID) *wire.Message {
	randDesc := func() view.Descriptor {
		id := ident.NodeID(rng.Intn(12)) // includes 0 (nil) and selfID
		return view.Descriptor{
			ID:    id,
			Addr:  ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: uint16(rng.Intn(1 << 16))},
			Class: ident.NATClass(rng.Intn(ident.NumClasses + 2)), // includes invalid
			Age:   rng.Uint32() % 100,
		}
	}
	m := &wire.Message{
		Kind: wire.Kind(rng.Intn(8)), // includes invalid kinds
		Hops: uint8(rng.Intn(64)),
		Src:  randDesc(),
		Dst:  randDesc(),
		Via:  randDesc(),
	}
	if rng.Intn(2) == 0 {
		m.Dst.ID = selfID // half the storm is addressed to the engine
	}
	switch rng.Intn(4) {
	case 0: // colluder stuffing: one descriptor, age 0, repeated to fill
		d := randDesc()
		d.Age = 0
		for i := rng.Intn(8) + 2; i > 0; i-- {
			m.Entries = append(m.Entries, wire.ViewEntry{Desc: d, RouteTTL: 1 << 30})
		}
	case 1: // self/nil injection with forged TTLs
		for i := rng.Intn(4) + 1; i > 0; i-- {
			d := randDesc()
			if rng.Intn(2) == 0 {
				d.ID = selfID
			} else {
				d.ID = 0
			}
			m.Entries = append(m.Entries, wire.ViewEntry{Desc: d, RouteTTL: rng.Uint32()})
		}
	default:
		for i := rng.Intn(6); i > 0; i-- {
			m.Entries = append(m.Entries, wire.ViewEntry{Desc: randDesc(), RouteTTL: rng.Uint32() % 200_000})
		}
	}
	return m
}

// stormEngine drives an engine with interleaved random messages and ticks,
// checking that it never panics, never corrupts its view, never accepts a
// self or nil descriptor into it, never emits a send without a destination,
// and never leaks pool messages. The engine draws from a private pool and
// the harness — playing the host — returns every emitted message, so any
// balance drift is an engine-side ownership bug.
func stormEngine(t *testing.T, build func(seed int64, pool *wire.Pool) Engine) {
	t.Helper()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pool := &wire.Pool{}
		eng := build(seed, pool)
		selfID := eng.Self().ID
		now := int64(0)
		var entries []view.Descriptor
		for step := 0; step < 200; step++ {
			var outs []Send
			if rng.Intn(5) == 0 {
				outs = eng.Tick(now)
				now += 5000
			} else {
				from := ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: uint16(rng.Intn(1 << 16))}
				outs = eng.Receive(now, from, randMsg(rng, selfID))
				now += int64(rng.Intn(100))
			}
			for _, s := range outs {
				if s.Msg == nil {
					t.Fatalf("seed %d: nil message emitted", seed)
				}
				if s.To.IsZero() {
					t.Fatalf("seed %d: send without destination: %+v", seed, s)
				}
				pool.Put(s.Msg)
			}
			if err := eng.View().Validate(); err != nil {
				t.Fatalf("seed %d: view corrupt after step %d: %v", seed, step, err)
			}
			entries = eng.View().EntriesInto(entries)
			for _, d := range entries {
				if d.ID == 0 || d.ID == selfID {
					t.Fatalf("seed %d: view accepted descriptor %d (self %d) at step %d", seed, d.ID, selfID, step)
				}
			}
			if bal := pool.Balance(); bal != 0 {
				t.Fatalf("seed %d: pool balance %d after step %d (leaked or double-released messages)", seed, bal, step)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func stormCfg(seed int64, pool *wire.Pool) Config {
	classes := []ident.NATClass{ident.Public, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric}
	rng := rand.New(rand.NewSource(seed))
	cfg := gcfg(1, classes[rng.Intn(len(classes))], true)
	cfg.Merge = view.Merge(rng.Intn(3))
	cfg.Selection = view.Selection(rng.Intn(2))
	cfg.EvictUnanswered = rng.Intn(2) == 0
	cfg.RNG = rng
	cfg.Msgs = pool
	return cfg
}

func TestGenericSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64, pool *wire.Pool) Engine {
		g := NewGeneric(stormCfg(seed, pool))
		g.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return g
	})
}

func TestNylonSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64, pool *wire.Pool) Engine {
		n := NewNylon(stormCfg(seed, pool))
		n.Bootstrap(0, []view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return n
	})
}

func TestARRGSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64, pool *wire.Pool) Engine {
		a := NewARRG(stormCfg(seed, pool), 4)
		a.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return a
	})
}

func TestStaticRVPSurvivesMessageStorm(t *testing.T) {
	stormEngine(t, func(seed int64, pool *wire.Pool) Engine {
		cfg := stormCfg(seed, pool)
		rvp := pubDesc(100)
		var own view.Descriptor
		if cfg.Self.Class.Natted() {
			own = rvp
		}
		s := NewStaticRVP(cfg, own, func(id ident.NodeID) (view.Descriptor, bool) {
			return rvp, id%2 == 0
		})
		s.Bootstrap([]view.Descriptor{pubDesc(2), nattedDesc(3, ident.RestrictedCone)})
		return s
	})
}

// TestNylonStormNeverLoopsToSender: even under storms, forwarded messages
// never go straight back to their transport-level sender.
func TestNylonStormNeverLoopsToSender(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := NewNylon(stormCfg(seed, nil))
		n.Bootstrap(0, []view.Descriptor{nattedDesc(3, ident.RestrictedCone), nattedDesc(4, ident.PortRestrictedCone)})
		for step := 0; step < 100; step++ {
			msg := randMsg(rng, n.Self().ID)
			msg.Dst.ID = 99 // force the forwarding path
			from := ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: 1}
			for _, s := range n.Receive(int64(step), from, msg) {
				forwarded := s.Msg.Kind == msg.Kind && s.Msg.Hops == msg.Hops+1
				if forwarded && s.ToID == msg.Via.ID {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
