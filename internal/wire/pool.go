package wire

// Pool is a single-owner message free list. The sharded simulation gives
// each shard its own Pool so that the per-datagram allocate/release cycle —
// the hottest allocation site of a run — never crosses cores: a shard's
// engines draw from the shard's pool, and the network returns every message
// consumed on that shard to the same pool, whichever shard sent it.
//
// A Pool must only be used by its owning shard's events (or at barriers);
// it does no locking. A nil *Pool is valid and falls back to the shared,
// concurrency-safe sync.Pool behind NewMessage/Release, which is what
// engines outside the sharded simulation (real nodes, unit tests) use.
type Pool struct {
	free []*Message
}

// Get returns an empty message, reusing a pooled one (and its Entries
// capacity) when available.
func (p *Pool) Get() *Message {
	if p == nil {
		return NewMessage()
	}
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return m
	}
	return new(Message)
}

// Put resets the message and returns it to the pool. The caller must be the
// sole owner, exactly as for Message.Release.
func (p *Pool) Put(m *Message) {
	if p == nil {
		m.Release()
		return
	}
	entries := m.Entries[:0]
	*m = Message{Entries: entries}
	p.free = append(p.free, m)
}

// Clone returns a deep copy of m drawn from the pool, preserving the pooled
// Entries backing array exactly as Message.Clone does.
func (p *Pool) Clone(m *Message) *Message {
	if p == nil {
		return m.Clone()
	}
	c := p.Get()
	entries := c.Entries
	*c = *m
	c.Entries = append(entries[:0], m.Entries...)
	return c
}
