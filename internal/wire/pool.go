package wire

// Pool is a single-owner message free list. The sharded simulation gives
// each shard its own Pool so that the per-datagram allocate/release cycle —
// the hottest allocation site of a run — never crosses cores: a shard's
// engines draw from the shard's pool, and the network returns every message
// consumed on that shard to the same pool, whichever shard sent it.
//
// A Pool must only be used by its owning shard's events (or at barriers);
// it does no locking. A nil *Pool is valid and falls back to the shared,
// concurrency-safe sync.Pool behind NewMessage/Release, which is what
// engines outside the sharded simulation (real nodes, unit tests) use.
type Pool struct {
	free    []*Message
	balance int64
}

// Get returns an empty message, reusing a pooled one (and its Entries
// capacity) when available.
func (p *Pool) Get() *Message {
	if p == nil {
		return NewMessage()
	}
	p.balance++
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return m
	}
	return new(Message)
}

// Put resets the message and returns it to the pool. The caller must be the
// sole owner, exactly as for Message.Release.
func (p *Pool) Put(m *Message) {
	if p == nil {
		m.Release()
		return
	}
	p.balance--
	entries := m.Entries[:0]
	*m = Message{Entries: entries}
	p.free = append(p.free, m)
}

// Balance reports Gets minus Puts since creation: the number of messages
// currently checked out of the pool. A host that fully owns every message
// lifecycle can assert it returns to zero — a positive balance means leaked
// messages, a negative one means a borrowed (non-pool) message was returned.
// Zero for the nil pool, whose sync.Pool fallback keeps no books.
func (p *Pool) Balance() int64 {
	if p == nil {
		return 0
	}
	return p.balance
}

// Clone returns a deep copy of m drawn from the pool, preserving the pooled
// Entries backing array exactly as Message.Clone does.
func (p *Pool) Clone(m *Message) *Message {
	if p == nil {
		return m.Clone()
	}
	c := p.Get()
	entries := c.Entries
	*c = *m
	c.Entries = append(entries[:0], m.Entries...)
	return c
}
