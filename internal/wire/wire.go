// Package wire defines the messages exchanged by the gossip protocols and a
// compact binary codec for them (encoding/binary, big endian).
//
// Five message kinds exist, exactly those of the Nylon pseudocode (Fig. 6 of
// the paper): REQUEST and RESPONSE carry views during a shuffle, OPEN_HOLE
// asks a natted destination to punch a hole back to the source, and PING /
// PONG open and confirm NAT holes.
//
// Encoded sizes are what the simulator's bandwidth accounting measures
// (Figures 7 and 8 of the paper), so the codec keeps messages small: a
// descriptor is 19 bytes, a view entry 23 bytes (descriptor plus the relayed
// route TTL), and the fixed header 42 bytes.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/ident"
	"repro/internal/view"
)

// Kind discriminates the message types of the protocol.
type Kind uint8

// Message kinds (Fig. 6 of the paper).
const (
	KindRequest Kind = iota + 1
	KindResponse
	KindOpenHole
	KindPing
	KindPong
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "REQUEST"
	case KindResponse:
		return "RESPONSE"
	case KindOpenHole:
		return "OPEN_HOLE"
	case KindPing:
		return "PING"
	case KindPong:
		return "PONG"
	}
	return "kind(" + strconv.Itoa(int(k)) + ")"
}

func (k Kind) valid() bool { return k >= KindRequest && k <= KindPong }

// ViewEntry is one descriptor as shipped during a shuffle, together with the
// sender's remaining route TTL toward that peer in milliseconds (the paper:
// "TTLs are exchanged by peers together with their views"). RouteTTL is zero
// for public peers, which need no route.
type ViewEntry struct {
	Desc     view.Descriptor
	RouteTTL uint32
}

// Message is one protocol datagram.
//
// Src is the originator of the exchange and Dst its final recipient; they
// differ from the transport-level sender and receiver whenever the message is
// forwarded along an RVP chain. Via identifies the transport-level sender of
// this datagram: the originator stamps it with itself and every relay
// overwrites it before forwarding, so the receiver always knows which chain
// neighbour handed it the message (the "p" of the paper's pseudocode). Hops
// counts forwarding steps for the latency metric of Fig. 9.
type Message struct {
	Kind    Kind
	Hops    uint8
	Src     view.Descriptor
	Dst     view.Descriptor
	Via     view.Descriptor
	Entries []ViewEntry

	// OriginSeq and PathHash are the causal stamp maintained by the host
	// network at send time (see internal/trace): (Src.ID, OriginSeq) names
	// the forwarding chain this datagram belongs to — the origin's
	// per-message counter — and PathHash folds in every relay the datagram
	// crossed. The stamp is in-memory forensic state, deliberately NOT part
	// of the wire codec: Marshal ignores it and Unmarshal leaves it zero, so
	// encoded sizes — the paper's bandwidth accounting (Figs. 7/8) — are
	// unchanged. Clone preserves it along forwarding; Release clears it.
	OriginSeq uint32
	PathHash  uint64
}

// Codec constants.
const (
	version = 1

	descSize   = 8 + 4 + 2 + 1 + 4 // ID + IP + Port + Class + Age
	entrySize  = descSize + 4      // + RouteTTL
	headerSize = 1 + 1 + 1 + 3*descSize + 2

	// MaxEntries bounds the entry count accepted by Unmarshal, protecting
	// against hostile or corrupt length fields. Views in this repository
	// are far smaller.
	MaxEntries = 1024
)

// Size returns the encoded size of the message in bytes without encoding it.
func (m *Message) Size() int { return headerSize + len(m.Entries)*entrySize }

func putDesc(b []byte, d view.Descriptor) {
	binary.BigEndian.PutUint64(b[0:], uint64(d.ID))
	binary.BigEndian.PutUint32(b[8:], uint32(d.Addr.IP))
	binary.BigEndian.PutUint16(b[12:], d.Addr.Port)
	b[14] = byte(d.Class)
	binary.BigEndian.PutUint32(b[15:], d.Age)
}

func getDesc(b []byte) (view.Descriptor, error) {
	d := view.Descriptor{
		ID:    ident.NodeID(binary.BigEndian.Uint64(b[0:])),
		Addr:  ident.Endpoint{IP: ident.IP(binary.BigEndian.Uint32(b[8:])), Port: binary.BigEndian.Uint16(b[12:])},
		Class: ident.NATClass(b[14]),
		Age:   binary.BigEndian.Uint32(b[15:]),
	}
	if !d.Class.Valid() {
		return d, fmt.Errorf("wire: invalid NAT class %d", b[14])
	}
	return d, nil
}

// Marshal encodes the message.
func (m *Message) Marshal() ([]byte, error) {
	if !m.Kind.valid() {
		return nil, fmt.Errorf("wire: cannot marshal invalid kind %v", m.Kind)
	}
	if len(m.Entries) > MaxEntries {
		return nil, fmt.Errorf("wire: %d entries exceed limit %d", len(m.Entries), MaxEntries)
	}
	b := make([]byte, m.Size())
	b[0] = version
	b[1] = byte(m.Kind)
	b[2] = m.Hops
	putDesc(b[3:], m.Src)
	putDesc(b[3+descSize:], m.Dst)
	putDesc(b[3+2*descSize:], m.Via)
	binary.BigEndian.PutUint16(b[3+3*descSize:], uint16(len(m.Entries)))
	off := headerSize
	for _, e := range m.Entries {
		putDesc(b[off:], e.Desc)
		binary.BigEndian.PutUint32(b[off+descSize:], e.RouteTTL)
		off += entrySize
	}
	return b, nil
}

// Unmarshal decodes a message. Errors identify truncation, version mismatch,
// and invalid field values; they wrap ErrMalformed.
func Unmarshal(b []byte) (*Message, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes, need at least %d", ErrMalformed, len(b), headerSize)
	}
	if b[0] != version {
		return nil, fmt.Errorf("%w: unknown version %d", ErrMalformed, b[0])
	}
	m := &Message{Kind: Kind(b[1]), Hops: b[2]}
	if !m.Kind.valid() {
		return nil, fmt.Errorf("%w: unknown kind %d", ErrMalformed, b[1])
	}
	var err error
	if m.Src, err = getDesc(b[3:]); err != nil {
		return nil, fmt.Errorf("%w: src: %v", ErrMalformed, err)
	}
	if m.Dst, err = getDesc(b[3+descSize:]); err != nil {
		return nil, fmt.Errorf("%w: dst: %v", ErrMalformed, err)
	}
	if m.Via, err = getDesc(b[3+2*descSize:]); err != nil {
		return nil, fmt.Errorf("%w: via: %v", ErrMalformed, err)
	}
	n := int(binary.BigEndian.Uint16(b[3+3*descSize:]))
	if n > MaxEntries {
		return nil, fmt.Errorf("%w: %d entries exceed limit %d", ErrMalformed, n, MaxEntries)
	}
	if len(b) != headerSize+n*entrySize {
		return nil, fmt.Errorf("%w: %d bytes for %d entries, want %d", ErrMalformed, len(b), n, headerSize+n*entrySize)
	}
	if n > 0 {
		m.Entries = make([]ViewEntry, n)
		off := headerSize
		for i := range m.Entries {
			if m.Entries[i].Desc, err = getDesc(b[off:]); err != nil {
				return nil, fmt.Errorf("%w: entry %d: %v", ErrMalformed, i, err)
			}
			m.Entries[i].RouteTTL = binary.BigEndian.Uint32(b[off+descSize:])
			off += entrySize
		}
	}
	return m, nil
}

// ErrMalformed is wrapped by every Unmarshal error.
var ErrMalformed = errors.New("wire: malformed message")

// msgPool recycles messages together with their Entries backing arrays. At
// simulation scale (millions of datagrams per run) per-message allocation
// dominates the heap profile; hosts that fully own a message's lifecycle
// (the simulated network) return it with Release once consumed.
var msgPool = sync.Pool{New: func() any { return new(Message) }}

// NewMessage returns an empty message, reusing a pooled one (and its Entries
// capacity) when available. Messages obtained here may be handed to Release
// by whichever host consumes them; messages built as plain literals may too.
func NewMessage() *Message {
	return msgPool.Get().(*Message)
}

// Release resets the message and returns it to the pool. The caller must be
// the sole owner: no engine or queue may still reference the message or its
// Entries slice. Release is optional — unreleased messages are simply
// garbage collected.
func (m *Message) Release() {
	entries := m.Entries[:0]
	*m = Message{Entries: entries}
	msgPool.Put(m)
}

// Clone returns a deep copy of the message drawn from the message pool.
// Forwarding code uses it so the mutation of Hops never aliases a message
// still queued elsewhere.
func (m *Message) Clone() *Message {
	c := NewMessage()
	entries := c.Entries
	*c = *m
	// Always keep the pooled Entries backing array, even when cloning an
	// entry-less message (relays clone OPEN_HOLE/PING constantly):
	// dropping it would progressively strip recycled capacity from the
	// pool. A zero-length slice encodes identically to nil.
	c.Entries = append(entries[:0], m.Entries...)
	return c
}

// Descriptors extracts the bare descriptors of the carried entries. Hot
// paths should prefer AppendDescriptors with a reused buffer.
func (m *Message) Descriptors() []view.Descriptor {
	out := make([]view.Descriptor, len(m.Entries))
	for i, e := range m.Entries {
		out[i] = e.Desc
	}
	return out
}

// AppendDescriptors appends the bare descriptors of the carried entries to
// dst and returns the extended slice; with a reused buffer of sufficient
// capacity it performs no allocation.
func (m *Message) AppendDescriptors(dst []view.Descriptor) []view.Descriptor {
	for _, e := range m.Entries {
		dst = append(dst, e.Desc)
	}
	return dst
}

// String implements fmt.Stringer.
func (m *Message) String() string {
	return fmt.Sprintf("%v src=%v dst=%v hops=%d entries=%d", m.Kind, m.Src.ID, m.Dst.ID, m.Hops, len(m.Entries))
}
