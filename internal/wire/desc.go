package wire

import (
	"encoding/binary"
	"fmt"

	"repro/internal/ident"
	"repro/internal/view"
)

// DescriptorSize is the encoded size of one peer descriptor.
const DescriptorSize = descSize

// AppendDescriptor appends the 19-byte encoding of d to b. Sibling protocols
// (e.g. the bootstrap/introducer protocol) reuse it so descriptors have one
// wire form everywhere.
func AppendDescriptor(b []byte, d view.Descriptor) []byte {
	var buf [descSize]byte
	putDesc(buf[:], d)
	return append(b, buf[:]...)
}

// DecodeDescriptor decodes a descriptor from the front of b.
func DecodeDescriptor(b []byte) (view.Descriptor, error) {
	if len(b) < descSize {
		return view.Descriptor{}, fmt.Errorf("%w: %d bytes for descriptor, need %d", ErrMalformed, len(b), descSize)
	}
	d, err := getDesc(b)
	if err != nil {
		return view.Descriptor{}, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return d, nil
}

// AppendEndpoint appends the 6-byte encoding of e to b.
func AppendEndpoint(b []byte, e ident.Endpoint) []byte {
	var buf [6]byte
	binary.BigEndian.PutUint32(buf[0:], uint32(e.IP))
	binary.BigEndian.PutUint16(buf[4:], e.Port)
	return append(b, buf[:]...)
}

// DecodeEndpoint decodes an endpoint from the front of b.
func DecodeEndpoint(b []byte) (ident.Endpoint, error) {
	if len(b) < 6 {
		return ident.Zero, fmt.Errorf("%w: %d bytes for endpoint, need 6", ErrMalformed, len(b))
	}
	return ident.Endpoint{
		IP:   ident.IP(binary.BigEndian.Uint32(b[0:])),
		Port: binary.BigEndian.Uint16(b[4:]),
	}, nil
}
