package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/ident"
	"repro/internal/view"
)

func sampleMsg() *Message {
	return &Message{
		Kind: KindRequest,
		Hops: 3,
		Src:  view.Descriptor{ID: 7, Addr: ident.Endpoint{IP: 0x01020304, Port: 80}, Class: ident.Symmetric, Age: 2},
		Dst:  view.Descriptor{ID: 9, Addr: ident.Endpoint{IP: 0x05060708, Port: 90}, Class: ident.Public, Age: 0},
		Via:  view.Descriptor{ID: 8, Addr: ident.Endpoint{IP: 0x090a0b0c, Port: 70}, Class: ident.RestrictedCone, Age: 1},
		Entries: []ViewEntry{
			{Desc: view.Descriptor{ID: 11, Addr: ident.Endpoint{IP: 1, Port: 2}, Class: ident.RestrictedCone, Age: 5}, RouteTTL: 90_000},
			{Desc: view.Descriptor{ID: 12, Addr: ident.Endpoint{IP: 3, Port: 4}, Class: ident.PortRestrictedCone, Age: 6}, RouteTTL: 0},
		},
	}
}

func TestRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindRequest, KindResponse, KindOpenHole, KindPing, KindPong} {
		m := sampleMsg()
		m.Kind = k
		if k == KindPing || k == KindPong {
			m.Entries = nil
		}
		b, err := m.Marshal()
		if err != nil {
			t.Fatalf("%v: Marshal: %v", k, err)
		}
		if len(b) != m.Size() {
			t.Errorf("%v: encoded %d bytes, Size() says %d", k, len(b), m.Size())
		}
		got, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%v: Unmarshal: %v", k, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%v: round trip mismatch:\n got %+v\nwant %+v", k, got, m)
		}
	}
}

// TestRoundTripProperty fuzzes the codec with arbitrary valid messages.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		randDesc := func() view.Descriptor {
			return view.Descriptor{
				ID:    ident.NodeID(rng.Uint64()),
				Addr:  ident.Endpoint{IP: ident.IP(rng.Uint32()), Port: uint16(rng.Intn(1 << 16))},
				Class: ident.NATClass(rng.Intn(ident.NumClasses)),
				Age:   rng.Uint32(),
			}
		}
		m := &Message{
			Kind: Kind(1 + rng.Intn(5)),
			Hops: uint8(rng.Intn(256)),
			Src:  randDesc(),
			Dst:  randDesc(),
			Via:  randDesc(),
		}
		for i := rng.Intn(40); i > 0; i-- {
			m.Entries = append(m.Entries, ViewEntry{Desc: randDesc(), RouteTTL: rng.Uint32()})
		}
		b, err := m.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		return err == nil && reflect.DeepEqual(got, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := sampleMsg().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(b []byte) []byte) []byte {
		b := make([]byte, len(good))
		copy(b, good)
		return f(b)
	}
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"truncated header", good[:10]},
		{"truncated entries", good[:len(good)-1]},
		{"trailing garbage", append(mutate(func(b []byte) []byte { return b }), 0)},
		{"bad version", mutate(func(b []byte) []byte { b[0] = 9; return b })},
		{"bad kind", mutate(func(b []byte) []byte { b[1] = 0; return b })},
		{"bad src class", mutate(func(b []byte) []byte { b[3+14] = 200; return b })},
		{"bad dst class", mutate(func(b []byte) []byte { b[3+19+14] = 200; return b })},
		{"bad via class", mutate(func(b []byte) []byte { b[3+2*19+14] = 200; return b })},
		{"bad entry class", mutate(func(b []byte) []byte { b[62+14] = 200; return b })},
		{"entry count too large", mutate(func(b []byte) []byte { b[60] = 255; b[61] = 255; return b })},
	}
	for _, tc := range cases {
		if _, err := Unmarshal(tc.b); err == nil {
			t.Errorf("%s: Unmarshal succeeded, want error", tc.name)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: error %v does not wrap ErrMalformed", tc.name, err)
		}
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	m := sampleMsg()
	m.Kind = 0
	if _, err := m.Marshal(); err == nil {
		t.Error("Marshal accepted invalid kind")
	}
	m = sampleMsg()
	m.Entries = make([]ViewEntry, MaxEntries+1)
	if _, err := m.Marshal(); err == nil {
		t.Error("Marshal accepted oversized entry list")
	}
}

func TestClone(t *testing.T) {
	m := sampleMsg()
	c := m.Clone()
	if !reflect.DeepEqual(m, c) {
		t.Fatal("clone differs")
	}
	c.Hops++
	c.Entries[0].RouteTTL = 1
	if m.Hops == c.Hops || m.Entries[0].RouteTTL == 1 {
		t.Error("clone aliases original")
	}
	// Cloning a message without entries yields no entries (the backing
	// array may be a recycled pool buffer, so nil-ness is not guaranteed).
	m.Entries = nil
	if c := m.Clone(); len(c.Entries) != 0 {
		t.Error("clone invented entries")
	}
}

func TestDescriptors(t *testing.T) {
	m := sampleMsg()
	ds := m.Descriptors()
	if len(ds) != 2 || ds[0].ID != 11 || ds[1].ID != 12 {
		t.Errorf("Descriptors = %v", ds)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindRequest:  "REQUEST",
		KindResponse: "RESPONSE",
		KindOpenHole: "OPEN_HOLE",
		KindPing:     "PING",
		KindPong:     "PONG",
		Kind(99):     "kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestMessageString(t *testing.T) {
	if sampleMsg().String() == "" {
		t.Error("String() empty")
	}
}

func TestSizeMatchesPaperScale(t *testing.T) {
	// A shuffle request with a 15-entry view — the paper's default — must
	// stay in the few-hundred-bytes range that makes Fig. 7's <350 B/s
	// plausible at a 5 s period.
	m := &Message{Kind: KindRequest, Entries: make([]ViewEntry, 16)}
	if s := m.Size(); s > 500 {
		t.Errorf("16-entry REQUEST is %d bytes; codec too fat for Fig. 7 scale", s)
	}
}
