// Package cliutil holds the shutdown plumbing the nylon commands share: one
// context-cancellation path that both operator signals (SIGINT/SIGTERM) and
// programmatic stop conditions feed, so "wind down cleanly" means the same
// thing everywhere — a simulation checkpoints at its next round barrier, a
// sweep stops dequeuing jobs and lets the in-flight ones checkpoint.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// RejectResumeOverrides exits with a usage error when any of the named flags
// was set on the command line. The resume-flow commands call it so that a
// flag fixing an experiment parameter a snapshot already carries fails loudly
// instead of being silently ignored.
func RejectResumeOverrides(name string, banned ...string) {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	for _, b := range banned {
		if set[b] {
			fmt.Fprintf(os.Stderr, "%s: -%s cannot be combined with -resume: the snapshot fixes the experiment parameters\n", name, b)
			os.Exit(2)
		}
	}
}

// NotifyStop returns a context cancelled by the first SIGINT or SIGTERM, and
// a predicate suited for exp.CheckpointSpec.Stop (true once the context is
// done, whatever cancelled it). The first signal asks for a graceful exit —
// the caller is expected to checkpoint and return — and says so on w; a
// second signal exits the process immediately with the conventional 128+SIGINT
// status, for operators facing a run that cannot reach a barrier.
func NotifyStop(w io.Writer, name string) (context.Context, func() bool) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-ch
		fmt.Fprintf(w, "%s: %v — checkpointing at the next barrier, signal again to exit immediately\n", name, s)
		cancel()
		<-ch
		fmt.Fprintf(w, "%s: second signal, exiting without a checkpoint\n", name)
		os.Exit(130)
	}()
	return ctx, func() bool { return ctx.Err() != nil }
}
