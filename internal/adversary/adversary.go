// Package adversary implements deterministic Byzantine peer models as
// decorators over the honest protocol engines of internal/core. A wrapper
// intercepts the host-facing Engine surface — it mutates outgoing shuffles
// or swallows incoming datagrams — while the wrapped engine keeps running
// the honest protocol underneath, so an adversarial peer stays a fully
// functioning overlay member in every respect except its attack.
//
// Four strategies are modeled, the classic attacks on gossip peer sampling
// and rendez-vous relaying:
//
//   - PoisonView: stuffs every outgoing REQUEST/RESPONSE with the descriptors
//     of a fixed colluder set (forever-fresh, with forged route TTLs),
//     mounting an eclipse/hub attack on the sampling layer.
//   - LyingRVP: advertises reachability and routes like any honest peer but
//     silently refuses to relay — every datagram not addressed to it is
//     swallowed.
//   - SelectiveDrop: swallows incoming datagrams by message kind and/or by
//     victim (source or final destination).
//   - FreeRide: pulls views but never pushes fresh descriptors beyond its
//     own, starving the dissemination it benefits from.
//
// Every wrapper is a pure function of (Config, per-peer seed): its only
// randomness is a private seed-derived stream, so worker/shard invariance
// and bit-identical replay of the simulation are preserved.
package adversary

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// Strategy selects the attack a wrapper mounts.
type Strategy uint8

// Strategies.
const (
	// None is the honest null strategy; Wrap returns the inner engine
	// unchanged, so honest peers never pay for the adversary layer.
	None Strategy = iota
	// PoisonView stuffs outgoing shuffle buffers with the colluder set.
	PoisonView
	// LyingRVP refuses to forward datagrams addressed to other peers.
	LyingRVP
	// SelectiveDrop swallows incoming datagrams by kind and/or victim.
	SelectiveDrop
	// FreeRide strips every outgoing shuffle buffer down to the peer's own
	// descriptor.
	FreeRide
)

// String implements fmt.Stringer, matching ParseStrategy's names.
func (s Strategy) String() string {
	switch s {
	case None:
		return "none"
	case PoisonView:
		return "poison-view"
	case LyingRVP:
		return "lying-rvp"
	case SelectiveDrop:
		return "selective-drop"
	case FreeRide:
		return "free-ride"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// ParseStrategy parses a strategy name as printed by Strategy.String.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "none":
		return None, nil
	case "poison-view":
		return PoisonView, nil
	case "lying-rvp":
		return LyingRVP, nil
	case "selective-drop":
		return SelectiveDrop, nil
	case "free-ride":
		return FreeRide, nil
	}
	return 0, fmt.Errorf("adversary: unknown strategy %q (want poison-view, lying-rvp, selective-drop or free-ride)", s)
}

// KindMask is a bit set of wire message kinds. The zero mask means "every
// kind" — the natural default for a dropper with no kind filter.
type KindMask uint8

// MaskOf returns the mask selecting exactly the given kinds.
func MaskOf(kinds ...wire.Kind) KindMask {
	var m KindMask
	for _, k := range kinds {
		m |= 1 << (k - 1)
	}
	return m
}

// Has reports whether the mask selects the kind; the zero mask selects all.
func (m KindMask) Has(k wire.Kind) bool {
	return m == 0 || m&(1<<(k-1)) != 0
}

// ParseKinds builds a mask from kind names (request, response, open-hole,
// ping, pong). An empty list yields the zero mask (every kind).
func ParseKinds(names []string) (KindMask, error) {
	var m KindMask
	for _, n := range names {
		switch n {
		case "request":
			m |= MaskOf(wire.KindRequest)
		case "response":
			m |= MaskOf(wire.KindResponse)
		case "open-hole":
			m |= MaskOf(wire.KindOpenHole)
		case "ping":
			m |= MaskOf(wire.KindPing)
		case "pong":
			m |= MaskOf(wire.KindPong)
		default:
			return 0, fmt.Errorf("adversary: unknown message kind %q (want request, response, open-hole, ping or pong)", n)
		}
	}
	return m, nil
}

// ColluderSet is the shared roster of a run's view poisoners: the entries
// every poisoner stuffs into its outgoing shuffles. Descriptors are stored
// forever-young (age zero) with forged route TTLs, which is the attack —
// honest merge policies cannot age them out.
//
// The set is shared, append-only state: the harness appends at barriers
// (peer creation, scenario joins) and wrappers only read it mid-window, so
// sharded simulation needs no locking.
type ColluderSet struct {
	entries []wire.ViewEntry
	ids     map[ident.NodeID]bool
}

// NewColluderSet returns an empty set.
func NewColluderSet() *ColluderSet {
	return &ColluderSet{ids: make(map[ident.NodeID]bool)}
}

// Add registers one colluder: its descriptor (stored at age zero) and the
// route TTL poisoners will advertise for it (zero for public colluders).
// Adding an already-present ID is a no-op.
func (c *ColluderSet) Add(d view.Descriptor, routeTTL uint32) {
	if c.ids[d.ID] {
		return
	}
	d.Age = 0
	c.entries = append(c.entries, wire.ViewEntry{Desc: d, RouteTTL: routeTTL})
	c.ids[d.ID] = true
}

// Contains reports whether the peer is a registered colluder.
func (c *ColluderSet) Contains(id ident.NodeID) bool {
	if c == nil {
		return false
	}
	return c.ids[id]
}

// Len returns the number of registered colluders.
func (c *ColluderSet) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Config parameterizes one adversarial wrapper. Together with the per-peer
// seed handed to Wrap it fully determines the wrapper's behavior.
type Config struct {
	// Strategy selects the attack; None disables wrapping entirely.
	Strategy Strategy
	// ActiveAt is the virtual time (milliseconds) from which the attack is
	// mounted; before it the wrapper is a transparent pass-through, so
	// sleeper cohorts can activate mid-run.
	ActiveAt int64
	// Colluders is the shared roster a PoisonView wrapper stuffs into its
	// shuffles (ignored by other strategies).
	Colluders *ColluderSet
	// DropKinds restricts SelectiveDrop to these kinds (zero: every kind).
	DropKinds KindMask
	// Victims, when non-empty, restricts SelectiveDrop to datagrams whose
	// source or final destination is listed.
	Victims map[ident.NodeID]bool
}

// Engine is the adversarial decorator. It satisfies core.Engine and
// preserves the interface's ownership contract: returned []Send slices are
// the inner engine's scratch (possibly with mutated messages), and swallowed
// incoming messages are simply not acted upon — they stay owned by the host,
// exactly as if the engine had ignored them.
type Engine struct {
	inner core.Engine
	cfg   Config
	rng   *rand.Rand
	// src is rng's underlying source, kept so checkpoints can capture and
	// replay the wrapper's private stream (see RNGState/SetRNGState).
	src  *xrand.SplitMix64
	self ident.NodeID
}

// Wrap decorates an honest engine with the configured strategy, seeding the
// wrapper's private RNG stream from seed. A None strategy returns inner
// itself — the nil-adversary path allocates nothing.
func Wrap(inner core.Engine, cfg Config, seed int64) core.Engine {
	if cfg.Strategy == None {
		return inner
	}
	src := xrand.NewSource(seed)
	return &Engine{inner: inner, cfg: cfg, rng: rand.New(src), src: src, self: inner.Self().ID}
}

// RNGState returns the wrapper's private RNG stream state, for checkpoints.
func (e *Engine) RNGState() uint64 { return e.src.State() }

// SetRNGState restores a stream state captured by RNGState.
func (e *Engine) SetRNGState(v uint64) { e.src.SetState(v) }

// Unwrap returns the honest engine behind e, or e itself when unwrapped.
// Hosts that type-switch on concrete engines (bootstrap, metrics) use it to
// see through the adversary layer.
func Unwrap(e core.Engine) core.Engine {
	if w, ok := e.(*Engine); ok {
		return w.inner
	}
	return e
}

// Inner returns the wrapped honest engine.
func (e *Engine) Inner() core.Engine { return e.inner }

// Strategy returns the wrapper's attack strategy.
func (e *Engine) Strategy() Strategy { return e.cfg.Strategy }

// Self implements core.Engine.
func (e *Engine) Self() view.Descriptor { return e.inner.Self() }

// View implements core.Engine.
func (e *Engine) View() *view.View { return e.inner.View() }

// Stats implements core.Engine. Adversarial drops are counted into the
// inner engine's Stats (RelayDenied, AdversaryDrops), so hosts aggregate
// them like any protocol counter.
func (e *Engine) Stats() *core.Stats { return e.inner.Stats() }

// Tick implements core.Engine: the honest tick, with outgoing shuffles
// mutated once the attack is active.
func (e *Engine) Tick(now int64) []core.Send {
	outs := e.inner.Tick(now)
	if now < e.cfg.ActiveAt {
		return outs
	}
	return e.mutateOutgoing(outs)
}

// Receive implements core.Engine. An active LyingRVP or SelectiveDrop may
// swallow the datagram before the honest engine sees it; everything else is
// processed honestly and the replies mutated like Tick output.
func (e *Engine) Receive(now int64, from ident.Endpoint, msg *wire.Message) []core.Send {
	if now >= e.cfg.ActiveAt && e.swallow(msg) {
		return nil
	}
	outs := e.inner.Receive(now, from, msg)
	if now < e.cfg.ActiveAt {
		return outs
	}
	return e.mutateOutgoing(outs)
}

// swallow decides whether an incoming datagram is silently dropped.
func (e *Engine) swallow(msg *wire.Message) bool {
	switch e.cfg.Strategy {
	case LyingRVP:
		// Refuse every relay: anything whose final recipient is another
		// peer. Traffic addressed to the RVP itself — including the
		// shuffles that keep its routes advertised — is served honestly,
		// which is what makes the lie durable.
		if msg.Dst.ID != e.self {
			e.inner.Stats().RelayDenied++
			return true
		}
	case SelectiveDrop:
		if !e.cfg.DropKinds.Has(msg.Kind) {
			return false
		}
		if len(e.cfg.Victims) > 0 && !e.cfg.Victims[msg.Src.ID] && !e.cfg.Victims[msg.Dst.ID] {
			return false
		}
		e.inner.Stats().AdversaryDrops++
		return true
	}
	return false
}

// mutateOutgoing rewrites the shuffle buffers of the outgoing commands in
// place. Only REQUEST/RESPONSE carry views; everything else passes through.
// Mutating the returned messages is safe under the Engine ownership
// contract: the messages are pool-fresh and owned by whoever consumes the
// slice, and the inner engine's exchange bookkeeping holds its own
// descriptor copies, never the message entries.
func (e *Engine) mutateOutgoing(outs []core.Send) []core.Send {
	if e.cfg.Strategy != PoisonView && e.cfg.Strategy != FreeRide {
		return outs
	}
	for _, s := range outs {
		if s.Msg.Kind != wire.KindRequest && s.Msg.Kind != wire.KindResponse {
			continue
		}
		switch e.cfg.Strategy {
		case PoisonView:
			e.poison(s.Msg)
		case FreeRide:
			s.Msg.Entries = s.Msg.Entries[:selfPrefix(s.Msg, e.self)]
		}
	}
	return outs
}

// selfPrefix returns 1 when the buffer leads with the peer's own descriptor
// (every honest engine puts self first), else 0.
func selfPrefix(m *wire.Message, self ident.NodeID) int {
	if len(m.Entries) > 0 && m.Entries[0].Desc.ID == self {
		return 1
	}
	return 0
}

// poison replaces the message's shuffle buffer (beyond the peer's own
// leading descriptor) with colluder entries: distinct colluders starting at
// a random offset of the roster, up to the honest buffer size — so poisoned
// messages are indistinguishable from honest ones by shape.
func (e *Engine) poison(m *wire.Message) {
	cs := e.cfg.Colluders
	if cs.Len() == 0 {
		return
	}
	keep := selfPrefix(m, e.self)
	want := e.inner.View().ExchangeLen()
	if n := len(m.Entries) - keep; want < n {
		want = n // never shrink: keep the honest buffer's shape
	}
	m.Entries = m.Entries[:keep]
	n := cs.Len()
	off := 0
	if n > 1 {
		off = e.rng.Intn(n)
	}
	for i := 0; i < n && want > 0; i++ {
		ent := cs.entries[(off+i)%n]
		if ent.Desc.ID == e.self {
			continue
		}
		m.Entries = append(m.Entries, ent)
		want--
	}
}
