package adversary

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

func desc(id uint64, class ident.NATClass) view.Descriptor {
	return view.Descriptor{
		ID:    ident.NodeID(id),
		Addr:  ident.Endpoint{IP: ident.IP(0x0a000000 + uint32(id)), Port: 9000},
		Class: class,
	}
}

// honest builds a bootstrapped Generic engine, the simplest honest inner.
func honest(id uint64, seed int64) core.Engine {
	g := core.NewGeneric(core.Config{
		Self:         desc(id, ident.Public),
		ViewSize:     8,
		Selection:    view.SelectRand,
		Merge:        view.MergeHealer,
		PushPull:     true,
		HoleTimeout:  90_000,
		LatencyBound: 100,
		RNG:          rand.New(rand.NewSource(seed)),
	})
	g.Bootstrap([]view.Descriptor{desc(2, ident.Public), desc(3, ident.RestrictedCone), desc(4, ident.Public)})
	return g
}

func colluders(ids ...uint64) *ColluderSet {
	cs := NewColluderSet()
	for _, id := range ids {
		cs.Add(desc(id, ident.Public), 0)
	}
	return cs
}

// tickUntilShuffle ticks the engine until it emits a view-carrying message.
func tickUntilShuffle(t *testing.T, e core.Engine) *wire.Message {
	t.Helper()
	now := int64(0)
	for i := 0; i < 20; i++ {
		for _, s := range e.Tick(now) {
			if s.Msg.Kind == wire.KindRequest || s.Msg.Kind == wire.KindResponse {
				return s.Msg
			}
		}
		now += 5000
	}
	t.Fatal("engine never emitted a shuffle")
	return nil
}

func TestStrategyParseRoundTrip(t *testing.T) {
	for _, s := range []Strategy{None, PoisonView, LyingRVP, SelectiveDrop, FreeRide} {
		got, err := ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v: got %v, %v", s, got, err)
		}
	}
	if _, err := ParseStrategy("eclipse"); err == nil {
		t.Error("unknown strategy parsed without error")
	}
}

func TestKindMask(t *testing.T) {
	var all KindMask
	for _, k := range []wire.Kind{wire.KindRequest, wire.KindResponse, wire.KindOpenHole, wire.KindPing, wire.KindPong} {
		if !all.Has(k) {
			t.Errorf("zero mask should select %v", k)
		}
	}
	m := MaskOf(wire.KindRequest, wire.KindPong)
	if !m.Has(wire.KindRequest) || !m.Has(wire.KindPong) || m.Has(wire.KindResponse) {
		t.Errorf("MaskOf(request, pong) selects wrong kinds: %b", m)
	}
	parsed, err := ParseKinds([]string{"request", "pong"})
	if err != nil || parsed != m {
		t.Errorf("ParseKinds mismatch: %b vs %b, %v", parsed, m, err)
	}
	if _, err := ParseKinds([]string{"shuffle"}); err == nil {
		t.Error("unknown kind parsed without error")
	}
}

// TestWrapNoneIdentity pins the zero-overhead contract: a None wrapper is no
// wrapper at all — the exact inner engine comes back, nothing is allocated.
func TestWrapNoneIdentity(t *testing.T) {
	inner := honest(1, 1)
	if got := Wrap(inner, Config{Strategy: None}, 7); got != inner {
		t.Fatalf("Wrap with None returned %T, want the inner engine itself", got)
	}
	if got := Unwrap(inner); got != inner {
		t.Fatalf("Unwrap of an unwrapped engine returned %T", got)
	}
}

func TestUnwrapSeesThroughWrapper(t *testing.T) {
	inner := honest(1, 1)
	w := Wrap(inner, Config{Strategy: FreeRide}, 7)
	if w == inner {
		t.Fatal("FreeRide wrap returned the inner engine")
	}
	if got := Unwrap(w); got != inner {
		t.Fatalf("Unwrap returned %T, want the inner engine", got)
	}
}

// TestPoisonViewStuffsColluders: every outgoing shuffle keeps the honest
// self-first prefix and shape, but every other entry is a distinct colluder
// at age zero.
func TestPoisonViewStuffsColluders(t *testing.T) {
	cs := colluders(50, 51, 52, 53, 54, 55, 56, 57, 58, 59)
	inner := honest(1, 1)
	w := Wrap(inner, Config{Strategy: PoisonView, Colluders: cs}, 7)
	for round := 0; round < 5; round++ {
		m := tickUntilShuffle(t, w)
		if len(m.Entries) == 0 || m.Entries[0].Desc.ID != inner.Self().ID {
			t.Fatalf("poisoned buffer lost the self prefix: %+v", m.Entries)
		}
		if len(m.Entries) == 1 {
			t.Fatal("poisoned buffer carries no colluders")
		}
		seen := map[ident.NodeID]bool{}
		for _, ent := range m.Entries[1:] {
			if !cs.Contains(ent.Desc.ID) {
				t.Fatalf("non-colluder %d in poisoned buffer", ent.Desc.ID)
			}
			if ent.Desc.Age != 0 {
				t.Fatalf("colluder %d shipped at age %d, want forever-young 0", ent.Desc.ID, ent.Desc.Age)
			}
			if seen[ent.Desc.ID] {
				t.Fatalf("colluder %d repeated in one buffer", ent.Desc.ID)
			}
			seen[ent.Desc.ID] = true
		}
	}
}

// TestFreeRideStripsBuffer: a free-rider's shuffles carry only its own
// descriptor — it pulls but contributes nothing.
func TestFreeRideStripsBuffer(t *testing.T) {
	inner := honest(1, 1)
	w := Wrap(inner, Config{Strategy: FreeRide}, 7)
	m := tickUntilShuffle(t, w)
	if len(m.Entries) != 1 || m.Entries[0].Desc.ID != inner.Self().ID {
		t.Fatalf("free-ride buffer should be exactly [self], got %+v", m.Entries)
	}
}

// TestLyingRVPRefusesRelays: datagrams for other peers vanish (and are
// counted); traffic addressed to the liar itself is served honestly.
func TestLyingRVPRefusesRelays(t *testing.T) {
	inner := honest(1, 1)
	w := Wrap(inner, Config{Strategy: LyingRVP}, 7)
	from := ident.Endpoint{IP: 0x0a000063, Port: 9000}

	relay := &wire.Message{Kind: wire.KindPing, Src: desc(3, ident.RestrictedCone), Dst: desc(9, ident.RestrictedCone), Via: desc(3, ident.RestrictedCone)}
	if outs := w.Receive(0, from, relay); outs != nil {
		t.Fatalf("lying RVP acted on a relay: %+v", outs)
	}
	if w.Stats().RelayDenied != 1 {
		t.Fatalf("RelayDenied = %d, want 1", w.Stats().RelayDenied)
	}

	direct := &wire.Message{Kind: wire.KindRequest, Src: desc(3, ident.RestrictedCone), Dst: inner.Self(), Via: desc(3, ident.RestrictedCone)}
	direct.Entries = append(direct.Entries, wire.ViewEntry{Desc: desc(3, ident.RestrictedCone)})
	if outs := w.Receive(0, from, direct); len(outs) == 0 {
		t.Fatal("lying RVP refused traffic addressed to itself")
	}
}

func TestSelectiveDropFilters(t *testing.T) {
	from := ident.Endpoint{IP: 0x0a000063, Port: 9000}
	ping := func(src, dst uint64) *wire.Message {
		return &wire.Message{Kind: wire.KindPing, Src: desc(src, ident.Public), Dst: desc(dst, ident.Public)}
	}

	// Kind filter: drop pings only, requests pass.
	w := Wrap(honest(1, 1), Config{Strategy: SelectiveDrop, DropKinds: MaskOf(wire.KindPing)}, 7)
	w.Receive(0, from, ping(3, 1))
	if w.Stats().AdversaryDrops != 1 {
		t.Fatalf("kind-filtered ping not dropped: %d", w.Stats().AdversaryDrops)
	}
	req := &wire.Message{Kind: wire.KindRequest, Src: desc(3, ident.Public), Dst: desc(1, ident.Public)}
	req.Entries = append(req.Entries, wire.ViewEntry{Desc: desc(3, ident.Public)})
	if outs := w.Receive(0, from, req); len(outs) == 0 {
		t.Fatal("request dropped despite ping-only mask")
	}

	// Victim filter: only traffic from/to the victim is swallowed.
	w = Wrap(honest(1, 2), Config{Strategy: SelectiveDrop, Victims: map[ident.NodeID]bool{9: true}}, 7)
	w.Receive(0, from, ping(9, 1)) // victim as source: dropped
	w.Receive(0, from, ping(3, 9)) // victim as destination: dropped
	w.Receive(0, from, ping(3, 1)) // uninvolved: passes
	if got := w.Stats().AdversaryDrops; got != 2 {
		t.Fatalf("victim filter dropped %d, want 2", got)
	}
}

// TestActivationGate: before ActiveAt the wrapper is a pass-through; from
// ActiveAt on, the attack mounts.
func TestActivationGate(t *testing.T) {
	cs := colluders(50, 51, 52)
	inner := honest(1, 1)
	w := Wrap(inner, Config{Strategy: PoisonView, ActiveAt: 10_000, Colluders: cs}, 7)
	for _, s := range w.Tick(0) {
		for _, ent := range s.Msg.Entries {
			if cs.Contains(ent.Desc.ID) {
				t.Fatal("sleeper poisoned a shuffle before activation")
			}
		}
	}
	poisoned := false
	for _, s := range w.Tick(10_000) {
		for _, ent := range s.Msg.Entries {
			poisoned = poisoned || cs.Contains(ent.Desc.ID)
		}
	}
	if !poisoned {
		t.Fatal("no colluders in shuffles after activation")
	}
}

// TestWrapperDeterminism: two identically seeded wrappers over identically
// seeded inners emit identical messages — the wrapper adds no randomness
// beyond its private stream.
func TestWrapperDeterminism(t *testing.T) {
	cs := colluders(50, 51, 52, 53, 54)
	run := func() [][]wire.ViewEntry {
		w := Wrap(honest(1, 3), Config{Strategy: PoisonView, Colluders: cs}, 7)
		var log [][]wire.ViewEntry
		for i := 0; i < 10; i++ {
			for _, s := range w.Tick(int64(i) * 5000) {
				log = append(log, append([]wire.ViewEntry(nil), s.Msg.Entries...))
			}
		}
		return log
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Fatal("identically seeded poisoners diverged")
	}
}

func TestColluderSet(t *testing.T) {
	cs := NewColluderSet()
	d := desc(5, ident.RestrictedCone)
	d.Age = 42
	cs.Add(d, 90_000)
	cs.Add(d, 90_000) // duplicate: no-op
	if cs.Len() != 1 {
		t.Fatalf("Len = %d after duplicate Add, want 1", cs.Len())
	}
	if !cs.Contains(5) || cs.Contains(6) {
		t.Fatal("Contains wrong")
	}
	if cs.entries[0].Desc.Age != 0 {
		t.Fatalf("colluder stored at age %d, want forever-young 0", cs.entries[0].Desc.Age)
	}
	var nilSet *ColluderSet
	if nilSet.Contains(1) || nilSet.Len() != 0 {
		t.Fatal("nil ColluderSet not inert")
	}
}
