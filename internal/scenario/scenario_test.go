package scenario

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/xrand"
)

func f64(v float64) *float64 { return &v }
func i64(v int64) *int64     { return &v }

func TestValidateAccepts(t *testing.T) {
	s := &Scenario{
		Name:  "ok",
		Churn: &Churn{JoinsPerRound: 2, LeavesPerRound: 2, StartRound: 5, EndRound: 90},
		Link:  &Link{JitterMs: 30, Loss: 0.1},
		Events: []Event{
			{Round: 10, Kind: KindFlashCrowd, Count: 50},
			{Round: 20, Kind: KindFlashCrowd, Fraction: 0.25},
			{Round: 30, Kind: KindMassLeave, Fraction: 0.5},
			{Round: 40, Kind: KindGatewayFailure, Groups: 3},
			{Round: 50, Kind: KindNATShift, NATRatio: f64(0.9), Mix: &Mix{RC: 0.2, PRC: 0.3, SYM: 0.5}},
			{Round: 60, Kind: KindPartition, Fraction: 0.3, DurationRounds: 10},
			{Round: 80, Kind: KindHeal},
			{Round: 85, Kind: KindSetLink, JitterMs: i64(0), Loss: f64(0)},
		},
	}
	if err := s.Validate(100); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		s    *Scenario
		want string
	}{
		{"loss-one", &Scenario{Link: &Link{Loss: 1.0}}, "loss"},
		{"loss-above", &Scenario{Link: &Link{Loss: 1.5}}, "loss"},
		{"negative-jitter", &Scenario{Link: &Link{JitterMs: -1}}, "jitter"},
		{"negative-rate", &Scenario{Churn: &Churn{JoinsPerRound: -1}}, "rates"},
		{"rate-saturates-poisson", &Scenario{Churn: &Churn{LeavesPerRound: 2000}}, "flash_crowd"},
		{"churn-start-past-horizon", &Scenario{Churn: &Churn{JoinsPerRound: 1, StartRound: 100}}, "start_round"},
		{"event-past-horizon", &Scenario{Events: []Event{{Round: 100, Kind: KindHeal}}}, "horizon"},
		{"event-round-zero", &Scenario{Events: []Event{{Round: 0, Kind: KindHeal}}}, "horizon"},
		{"unknown-kind", &Scenario{Events: []Event{{Round: 1, Kind: "meteor_strike"}}}, "unknown kind"},
		{"flash-crowd-empty", &Scenario{Events: []Event{{Round: 1, Kind: KindFlashCrowd}}}, "count"},
		{"mass-leave-all", &Scenario{Events: []Event{{Round: 1, Kind: KindMassLeave, Fraction: 1}}}, "fraction"},
		{"partition-no-fraction", &Scenario{Events: []Event{{Round: 1, Kind: KindPartition}}}, "fraction"},
		{"partition-negative-duration", &Scenario{Events: []Event{{Round: 1, Kind: KindPartition, Fraction: 0.5, DurationRounds: -2}}}, "duration"},
		{"gateway-no-groups", &Scenario{Events: []Event{{Round: 1, Kind: KindGatewayFailure}}}, "groups"},
		{"shift-empty", &Scenario{Events: []Event{{Round: 1, Kind: KindNATShift}}}, "nat_ratio"},
		{"shift-bad-mix", &Scenario{Events: []Event{{Round: 1, Kind: KindNATShift, Mix: &Mix{RC: 1, PRC: 1}}}}, "sum"},
		{"set-link-lossy", &Scenario{Events: []Event{{Round: 1, Kind: KindSetLink, Loss: f64(1)}}}, "loss"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.s.Validate(100)
			if err == nil {
				t.Fatalf("invalid scenario accepted: %+v", c.s)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestQuiescent(t *testing.T) {
	var nilScenario *Scenario
	if !nilScenario.Quiescent() {
		t.Error("nil scenario not quiescent")
	}
	if !(&Scenario{Name: "idle", GatewayGroupSize: 4}).Quiescent() {
		t.Error("empty scenario not quiescent")
	}
	if (&Scenario{Churn: &Churn{}}).Quiescent() {
		t.Error("scenario with churn model reported quiescent")
	}
	if (&Scenario{Events: []Event{{Round: 1, Kind: KindHeal}}}).Quiescent() {
		t.Error("scenario with events reported quiescent")
	}
}

func TestNeedsLinkPolicy(t *testing.T) {
	if (&Scenario{}).NeedsLinkPolicy() {
		t.Error("empty scenario wants a link policy")
	}
	if !(&Scenario{Link: &Link{Loss: 0.1}}).NeedsLinkPolicy() {
		t.Error("initial link model ignored")
	}
	if !(&Scenario{Events: []Event{{Round: 5, Kind: KindSetLink, Loss: f64(0.1)}}}).NeedsLinkPolicy() {
		t.Error("set_link event ignored")
	}
}

func TestParseRoundTrip(t *testing.T) {
	s := &Scenario{
		Name:             "rt",
		Churn:            &Churn{JoinsPerRound: 1.5, LeavesPerRound: 2.5, StartRound: 3},
		Link:             &Link{JitterMs: 20, Loss: 0.05},
		GatewayGroupSize: 16,
		Events: []Event{
			{Round: 7, Kind: KindPartition, Fraction: 0.4, DurationRounds: 5},
			{Round: 20, Kind: KindSetLink, JitterMs: i64(5), Loss: f64(0.2)},
		},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Errorf("round trip changed scenario:\n in: %s\nout: %s", data, back)
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	if _, err := Parse([]byte(`{"name":"x","chrun":{}}`)); err == nil {
		t.Error("typo'd field accepted")
	}
	if _, err := Parse([]byte(`{"events":[{"round":1,"kind":"heal","frction":0.5}]}`)); err == nil {
		t.Error("typo'd event field accepted")
	}
}

// TestPoissonDeterministicAndCalibrated checks the sampler is a pure
// function of the RNG stream and that its empirical mean and variance match
// the distribution (both ≈ λ).
func TestPoissonDeterministicAndCalibrated(t *testing.T) {
	a, b := xrand.New(7), xrand.New(7)
	for i := 0; i < 1000; i++ {
		if Poisson(a, 3.5) != Poisson(b, 3.5) {
			t.Fatal("same RNG stream produced different Poisson draws")
		}
	}

	rng := xrand.New(11)
	const n, lambda = 20000, 4.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		k := float64(Poisson(rng, lambda))
		sum += k
		sumSq += k * k
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-lambda) > 0.1 {
		t.Errorf("Poisson mean %v, want ≈ %v", mean, lambda)
	}
	if math.Abs(variance-lambda) > 0.3 {
		t.Errorf("Poisson variance %v, want ≈ %v", variance, lambda)
	}
	if Poisson(rng, 0) != 0 || Poisson(rng, -1) != 0 {
		t.Error("non-positive rate must draw 0")
	}
}
