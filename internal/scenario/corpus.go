package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// CorpusEntry is one scenario loaded from a corpus on disk, with enough
// provenance for content addressing: sweep job keys hash Raw, so editing a
// scenario file invalidates exactly the cached results that depend on it.
type CorpusEntry struct {
	// Path is the file the scenario was loaded from.
	Path string
	// Name identifies the scenario in grids and output: the scenario's own
	// Name, or the file's base name without extension when unset.
	Name string
	// Raw is the verbatim file content.
	Raw []byte
	// Scenario is the parsed timeline.
	Scenario *Scenario
}

// LoadCorpus loads every scenario matching the glob patterns, resolved
// relative to baseDir (absolute patterns are taken as-is). Matches are
// deduplicated and returned sorted by path, so a corpus listing is a pure
// function of the directory contents. A pattern matching nothing is an
// error — a corpus silently shrinking to zero hides typos — and so are two
// entries resolving to the same Name, which would collide in result grids.
func LoadCorpus(baseDir string, patterns []string) ([]CorpusEntry, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("scenario: corpus has no patterns")
	}
	seen := make(map[string]bool)
	var paths []string
	for _, pat := range patterns {
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(baseDir, pat)
		}
		matches, err := filepath.Glob(pat)
		if err != nil {
			return nil, fmt.Errorf("scenario: corpus pattern %q: %w", pat, err)
		}
		if len(matches) == 0 {
			return nil, fmt.Errorf("scenario: corpus pattern %q matches no files", pat)
		}
		for _, m := range matches {
			if !seen[m] {
				seen[m] = true
				paths = append(paths, m)
			}
		}
	}
	sort.Strings(paths)

	entries := make([]CorpusEntry, 0, len(paths))
	byName := make(map[string]string, len(paths))
	for _, p := range paths {
		raw, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("scenario: %w", err)
		}
		sc, err := Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("%w (in %s)", err, p)
		}
		name := sc.Name
		if name == "" {
			base := filepath.Base(p)
			name = base[:len(base)-len(filepath.Ext(base))]
		}
		if prev, dup := byName[name]; dup {
			return nil, fmt.Errorf("scenario: corpus name %q used by both %s and %s", name, prev, p)
		}
		byName[name] = p
		entries = append(entries, CorpusEntry{Path: p, Name: name, Raw: raw, Scenario: sc})
	}
	return entries, nil
}
