package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeCorpusFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	writeCorpusFile(t, dir, "b.json", `{"name":"bravo","events":[{"round":2,"kind":"heal"}]}`)
	writeCorpusFile(t, dir, "a.json", `{"churn":{"joins_per_round":1}}`)

	entries, err := LoadCorpus(dir, []string{"*.json"})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("loaded %d entries, want 2", len(entries))
	}
	// Sorted by path; names fall back to the base name without extension.
	if entries[0].Name != "a" || entries[1].Name != "bravo" {
		t.Errorf("names = %q, %q", entries[0].Name, entries[1].Name)
	}
	if entries[0].Scenario.Churn == nil || len(entries[1].Scenario.Events) != 1 {
		t.Error("scenarios not parsed")
	}
	if len(entries[0].Raw) == 0 {
		t.Error("raw content not retained")
	}

	// Overlapping patterns deduplicate.
	entries, err = LoadCorpus(dir, []string{"*.json", "a.json"})
	if err != nil || len(entries) != 2 {
		t.Errorf("overlapping patterns: %d entries, err %v", len(entries), err)
	}
}

func TestLoadCorpusErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadCorpus(dir, nil); err == nil {
		t.Error("empty pattern list accepted")
	}
	if _, err := LoadCorpus(dir, []string{"missing-*.json"}); err == nil || !strings.Contains(err.Error(), "matches no files") {
		t.Errorf("no-match pattern: err = %v", err)
	}

	writeCorpusFile(t, dir, "bad.json", `{"nope":1}`)
	if _, err := LoadCorpus(dir, []string{"bad.json"}); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Errorf("unparseable scenario: err = %v", err)
	}

	// Two files resolving to one grid name collide.
	writeCorpusFile(t, dir, "x.json", `{"name":"same"}`)
	writeCorpusFile(t, dir, "y.json", `{"name":"same"}`)
	if _, err := LoadCorpus(dir, []string{"x.json", "y.json"}); err == nil || !strings.Contains(err.Error(), "same") {
		t.Errorf("duplicate names: err = %v", err)
	}
}
