// Package scenario describes the *environment* of a simulation run as a
// declarative, seed-deterministic timeline: continuous Poisson join/leave
// churn, flash crowds, correlated NAT-gateway failures, NAT-class
// distribution shifts, per-link latency jitter and probabilistic loss, and
// network partitions that split and heal.
//
// A Scenario holds no randomness of its own — it is pure data, loadable from
// JSON. The experiment harness (internal/exp) interprets it against the run
// clock: every stochastic decision draws from RNG streams derived from the
// run seed (see exp's scenario driver), so a run remains a pure function of
// (Config, Scenario, Seed).
//
// Times are expressed in shuffling rounds: an event with Round r fires at
// virtual time r×PeriodMs, after that round's continuous-churn draw and
// after any health-series sample scheduled for the same boundary.
package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/adversary"
)

// Scenario is one declarative environment timeline. The zero Scenario (and a
// nil *Scenario) is quiescent: it perturbs nothing, and the harness
// guarantees a run under it is bit-identical to a run with no scenario at
// all.
type Scenario struct {
	// Name identifies the scenario in output and corpus files.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Churn, when non-nil, drives continuous Poisson join/leave churn.
	Churn *Churn `json:"churn,omitempty"`

	// Link, when non-nil, is the link model in force from the start of the
	// run (set_link events change it later).
	Link *Link `json:"link,omitempty"`

	// GatewayGroupSize is the number of natted peers sharing one logical
	// NAT gateway, for gateway_failure events. The simulated network keeps
	// one NAT device per peer (the paper's setup); groups model the
	// correlation of a shared physical gateway: all members of a failing
	// group die together. 0 means DefaultGatewayGroupSize.
	GatewayGroupSize int `json:"gateway_group_size,omitempty"`

	// Events is the explicit timeline, interpreted in slice order for
	// events sharing a round.
	Events []Event `json:"events,omitempty"`

	// Adversaries declares Byzantine cohorts: deterministic fractions (or
	// explicit IDs) of the population running a hostile engine wrapper (see
	// internal/adversary). Membership is assigned seed-deterministically by
	// the harness, at creation and at every mid-run join; specs are matched
	// in slice order, first match wins.
	Adversaries []Adversary `json:"adversaries,omitempty"`
}

// Adversary declares one Byzantine cohort.
type Adversary struct {
	// Strategy is the attack: poison-view, lying-rvp, selective-drop or
	// free-ride (see internal/adversary).
	Strategy string `json:"strategy"`
	// Fraction is the share of peers (initial population and mid-run
	// arrivals alike) adopting the strategy, in (0,1).
	Fraction float64 `json:"fraction,omitempty"`
	// IDs lists explicit peer IDs instead of a fraction (exactly one of
	// the two must be given).
	IDs []uint64 `json:"ids,omitempty"`
	// FromRound activates the attack at that round boundary; before it the
	// cohort behaves honestly (0 = hostile from the start).
	FromRound int `json:"from_round,omitempty"`
	// DropKinds restricts selective-drop to these message kinds (request,
	// response, open-hole, ping, pong); empty means every kind. Only valid
	// for selective-drop.
	DropKinds []string `json:"drop_kinds,omitempty"`
	// Victims restricts selective-drop to datagrams whose source or final
	// destination is listed; empty means everyone. Only valid for
	// selective-drop.
	Victims []uint64 `json:"victims,omitempty"`
}

// DefaultGatewayGroupSize is the gateway group size when the scenario leaves
// it unset.
const DefaultGatewayGroupSize = 8

// MaxChurnRate bounds the per-round Poisson churn rates. Knuth's sampler
// underflows exp(-λ) around λ ≈ 745 and would silently saturate; rates that
// large are mass events, which flash_crowd and mass_leave model exactly.
const MaxChurnRate = 500

// Churn is continuous Poisson churn: every round in [StartRound, EndRound]
// draws the number of joining and leaving peers from Poisson distributions.
type Churn struct {
	// JoinsPerRound and LeavesPerRound are the Poisson rates (λ), in peers
	// per shuffling round.
	JoinsPerRound  float64 `json:"joins_per_round,omitempty"`
	LeavesPerRound float64 `json:"leaves_per_round,omitempty"`
	// StartRound is the first churning round (0 means round 1).
	StartRound int `json:"start_round,omitempty"`
	// EndRound is the last churning round, inclusive (0 means the end of
	// the run).
	EndRound int `json:"end_round,omitempty"`
}

// Link perturbs individual datagram transmissions.
type Link struct {
	// JitterMs adds a uniformly-drawn extra one-way delay in [0, JitterMs]
	// milliseconds to each datagram. Jittered datagrams leave the
	// constant-latency fast path and go through the scheduler's heap.
	JitterMs int64 `json:"jitter_ms,omitempty"`
	// Loss is the probability, in [0, 1), that a datagram is lost in
	// flight.
	Loss float64 `json:"loss,omitempty"`
}

// Mix is a NAT-class distribution for peers arriving after a nat_shift
// event. Fractions must sum to 1.
type Mix struct {
	RC  float64 `json:"rc"`
	PRC float64 `json:"prc"`
	SYM float64 `json:"sym"`
}

// Kind classifies a scenario event.
type Kind string

// Event kinds.
const (
	// KindFlashCrowd makes Count peers (or Fraction of the initial
	// population) join at once.
	KindFlashCrowd Kind = "flash_crowd"
	// KindMassLeave kills Fraction of the alive peers at once (the
	// generalization of the legacy one-shot ChurnAtRound).
	KindMassLeave Kind = "mass_leave"
	// KindGatewayFailure kills Groups whole NAT-gateway groups: every
	// peer behind a failing gateway dies together.
	KindGatewayFailure Kind = "gateway_failure"
	// KindNATShift changes the NAT ratio and/or class mix that future
	// arrivals draw from.
	KindNATShift Kind = "nat_shift"
	// KindPartition splits the network in two: a minority side holding
	// Fraction of the alive peers, and the rest. Datagrams across the cut
	// are dropped until a heal. DurationRounds > 0 schedules the heal
	// automatically.
	KindPartition Kind = "partition"
	// KindHeal ends the active partition.
	KindHeal Kind = "heal"
	// KindSetLink replaces the link model (jitter, loss) from this round
	// on.
	KindSetLink Kind = "set_link"
)

// Event is one timeline entry. Only the fields its Kind documents are
// interpreted; Validate rejects events missing required ones.
type Event struct {
	// Round is the shuffling round at which the event fires, in
	// [1, Rounds-1] — an event at or past the run horizon could never be
	// observed and is rejected.
	Round int  `json:"round"`
	Kind  Kind `json:"kind"`

	// Count is the number of peers joining (flash_crowd).
	Count int `json:"count,omitempty"`
	// Fraction is the flash-crowd size as a fraction of the initial
	// population (alternative to Count), the killed share (mass_leave), or
	// the minority-side share (partition).
	Fraction float64 `json:"fraction,omitempty"`
	// Groups is the number of gateway groups failing (gateway_failure).
	Groups int `json:"groups,omitempty"`
	// DurationRounds auto-heals a partition that many rounds later
	// (0 = until an explicit heal or the end of the run). A duration
	// reaching the run horizon behaves like 0: the partition stays in
	// force through the final measurement.
	DurationRounds int `json:"duration_rounds,omitempty"`

	// NATRatio and Mix update the arrival distribution (nat_shift); nil
	// leaves the respective dimension unchanged.
	NATRatio *float64 `json:"nat_ratio,omitempty"`
	Mix      *Mix     `json:"mix,omitempty"`

	// JitterMs and Loss define the new link model (set_link); nil means 0.
	JitterMs *int64   `json:"jitter_ms,omitempty"`
	Loss     *float64 `json:"loss,omitempty"`
}

// Quiescent reports whether the scenario perturbs nothing: no churn model,
// no link model, no events. The harness uses it to keep the legacy
// constant-latency fast path bit-identical.
func (s *Scenario) Quiescent() bool {
	if s == nil {
		return true
	}
	return s.Churn == nil && s.Link == nil && len(s.Events) == 0 && len(s.Adversaries) == 0
}

// AdversaryList returns the scenario's adversary specs (nil-safe).
func (s *Scenario) AdversaryList() []Adversary {
	if s == nil {
		return nil
	}
	return s.Adversaries
}

// GroupSize returns the effective gateway group size.
func (s *Scenario) GroupSize() int {
	if s.GatewayGroupSize <= 0 {
		return DefaultGatewayGroupSize
	}
	return s.GatewayGroupSize
}

// NeedsLinkPolicy reports whether the run must install a link-perturbation
// policy up front: either an initial link model or a set_link event exists.
func (s *Scenario) NeedsLinkPolicy() bool {
	if s == nil {
		return false
	}
	if s.Link != nil {
		return true
	}
	for _, e := range s.Events {
		if e.Kind == KindSetLink {
			return true
		}
	}
	return false
}

// Validate checks the scenario against a run of the given number of rounds
// and returns the first problem found, with enough context to fix the
// offending field.
func (s *Scenario) Validate(rounds int) error {
	if s == nil {
		return nil
	}
	if rounds <= 0 {
		return fmt.Errorf("scenario: run horizon must be positive, got %d rounds", rounds)
	}
	if c := s.Churn; c != nil {
		if c.JoinsPerRound < 0 || c.LeavesPerRound < 0 {
			return fmt.Errorf("scenario: churn rates must be non-negative (joins %v, leaves %v)", c.JoinsPerRound, c.LeavesPerRound)
		}
		if math.IsNaN(c.JoinsPerRound) || math.IsNaN(c.LeavesPerRound) {
			return fmt.Errorf("scenario: churn rate is NaN")
		}
		if c.JoinsPerRound > MaxChurnRate || c.LeavesPerRound > MaxChurnRate {
			return fmt.Errorf("scenario: churn rate above %v/round (joins %v, leaves %v) — use flash_crowd/mass_leave for mass events", float64(MaxChurnRate), c.JoinsPerRound, c.LeavesPerRound)
		}
		if c.StartRound < 0 || c.StartRound >= rounds {
			return fmt.Errorf("scenario: churn start_round %d outside [0,%d)", c.StartRound, rounds)
		}
		if c.EndRound < 0 || c.EndRound >= rounds {
			return fmt.Errorf("scenario: churn end_round %d outside [0,%d) (0 means run end)", c.EndRound, rounds)
		}
		if c.EndRound != 0 && c.EndRound < c.StartRound {
			return fmt.Errorf("scenario: churn end_round %d before start_round %d", c.EndRound, c.StartRound)
		}
	}
	if l := s.Link; l != nil {
		if err := validateLink(l.JitterMs, l.Loss); err != nil {
			return err
		}
	}
	if s.GatewayGroupSize < 0 {
		return fmt.Errorf("scenario: gateway_group_size %d is negative", s.GatewayGroupSize)
	}
	for i, e := range s.Events {
		if err := e.validate(rounds); err != nil {
			return fmt.Errorf("scenario: event %d (%s): %w", i, e.Kind, err)
		}
	}
	for i := range s.Adversaries {
		if err := s.Adversaries[i].validate(rounds); err != nil {
			return fmt.Errorf("scenario: adversary %d: %w", i, err)
		}
	}
	return nil
}

func (a *Adversary) validate(rounds int) error {
	strat, err := adversary.ParseStrategy(a.Strategy)
	if err != nil {
		return err
	}
	if strat == adversary.None {
		return fmt.Errorf("strategy %q declares no attack — remove the spec instead", a.Strategy)
	}
	if math.IsNaN(a.Fraction) || a.Fraction < 0 || a.Fraction >= 1 {
		return fmt.Errorf("fraction %v outside [0,1)", a.Fraction)
	}
	if (a.Fraction > 0) == (len(a.IDs) > 0) {
		return fmt.Errorf("needs exactly one of fraction > 0 or a non-empty ids list")
	}
	for _, id := range a.IDs {
		if id == 0 {
			return fmt.Errorf("ids contains the nil peer ID 0")
		}
	}
	if a.FromRound < 0 || a.FromRound >= rounds {
		return fmt.Errorf("from_round %d outside [0,%d)", a.FromRound, rounds)
	}
	if _, err := adversary.ParseKinds(a.DropKinds); err != nil {
		return err
	}
	if strat != adversary.SelectiveDrop && (len(a.DropKinds) > 0 || len(a.Victims) > 0) {
		return fmt.Errorf("drop_kinds/victims only apply to selective-drop, not %s", a.Strategy)
	}
	return nil
}

func validateLink(jitterMs int64, loss float64) error {
	if jitterMs < 0 {
		return fmt.Errorf("scenario: jitter_ms %d is negative", jitterMs)
	}
	if loss < 0 || loss >= 1 || math.IsNaN(loss) {
		return fmt.Errorf("scenario: loss %v outside [0,1)", loss)
	}
	return nil
}

func (e *Event) validate(rounds int) error {
	if e.Round < 1 || e.Round >= rounds {
		return fmt.Errorf("round %d outside [1,%d) — past the run horizon", e.Round, rounds)
	}
	switch e.Kind {
	case KindFlashCrowd:
		if e.Count <= 0 && e.Fraction <= 0 {
			return fmt.Errorf("needs count > 0 or fraction > 0")
		}
		if e.Count < 0 || e.Fraction < 0 || e.Fraction > 10 {
			return fmt.Errorf("implausible size (count %d, fraction %v)", e.Count, e.Fraction)
		}
	case KindMassLeave:
		if e.Fraction <= 0 || e.Fraction >= 1 {
			return fmt.Errorf("fraction %v outside (0,1)", e.Fraction)
		}
	case KindGatewayFailure:
		if e.Groups <= 0 {
			return fmt.Errorf("needs groups > 0")
		}
	case KindNATShift:
		if e.NATRatio == nil && e.Mix == nil {
			return fmt.Errorf("needs nat_ratio and/or mix")
		}
		if e.NATRatio != nil && (*e.NATRatio < 0 || *e.NATRatio > 1) {
			return fmt.Errorf("nat_ratio %v outside [0,1]", *e.NATRatio)
		}
		if m := e.Mix; m != nil {
			if m.RC < 0 || m.PRC < 0 || m.SYM < 0 {
				return fmt.Errorf("mix has negative fraction (%+v)", *m)
			}
			if sum := m.RC + m.PRC + m.SYM; sum < 0.999 || sum > 1.001 {
				return fmt.Errorf("mix fractions sum to %v, want 1", sum)
			}
		}
	case KindPartition:
		if e.Fraction <= 0 || e.Fraction >= 1 {
			return fmt.Errorf("fraction %v outside (0,1)", e.Fraction)
		}
		if e.DurationRounds < 0 {
			return fmt.Errorf("duration_rounds %d is negative", e.DurationRounds)
		}
	case KindHeal:
		// No parameters.
	case KindSetLink:
		var j int64
		var l float64
		if e.JitterMs != nil {
			j = *e.JitterMs
		}
		if e.Loss != nil {
			l = *e.Loss
		}
		if err := validateLink(j, l); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	return nil
}

// Parse decodes a scenario from JSON, rejecting unknown fields so corpus
// typos surface as errors rather than silently-ignored knobs.
func Parse(data []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// Poisson draws a Poisson-distributed count with mean lambda from rng, using
// Knuth's multiplication method — exact, allocation-free, and deterministic
// given the RNG stream. exp(-λ) underflows around λ ≈ 745, where the sampler
// would silently saturate; Validate therefore rejects churn rates above
// MaxChurnRate, and other callers must bound lambda themselves.
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}
