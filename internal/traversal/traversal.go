// Package traversal encodes the NAT traversal decision table of Section 2.2
// of the Nylon paper: given the NAT classes of a source and a destination
// peer, it decides whether the source can contact the destination directly,
// must apply (possibly modified) hole punching through a rendez-vous peer, or
// must fall back to relaying every message through the rendez-vous peer.
package traversal

import (
	"strconv"

	"repro/internal/ident"
)

// Method is the technique a source peer must use to open a message exchange
// with a destination peer.
type Method uint8

const (
	// Direct means the destination accepts unsolicited traffic; no
	// rendez-vous peer is needed.
	Direct Method = iota
	// HolePunch means the standard hole punching handshake (PING +
	// OPEN_HOLE via RVP + PONG) establishes direct connectivity.
	HolePunch
	// HolePunchModified is hole punching where the PONG must travel back
	// through the RVP because the destination does not know the source's
	// per-destination symmetric mapping (paper §2.2, footnote 2).
	HolePunchModified
	// Relay means no hole can be punched; every message of the exchange is
	// forwarded by the rendez-vous peer.
	Relay
)

var methodNames = [...]string{
	Direct:            "direct",
	HolePunch:         "hole-punching",
	HolePunchModified: "modified-hole-punching",
	Relay:             "relaying",
}

// String implements fmt.Stringer.
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return "method(" + strconv.Itoa(int(m)) + ")"
}

// Decide returns the traversal method a peer of class src must use to start
// an exchange with a peer of class dst, per the table in Section 2.2:
//
//	        public  RC             PRC            SYM
//	public  direct  hole punching  hole punching  relay
//	RC      direct  hole punching  hole punching  hole punching
//	PRC     direct  hole punching  hole punching  relaying
//	SYM     direct  mod. hole p.   relaying       relaying
//
// Full-cone destinations behave like public peers as long as their mapping is
// alive (paper §2.2), so they map to Direct; full-cone sources behave like
// public sources. The caller remains responsible for checking that a
// full-cone destination actually has a live mapping.
func Decide(src, dst ident.NATClass) Method {
	// Normalize full cone to public on both sides: a live FC mapping
	// forwards everything, and an FC source has a stable, unrestricted
	// return path just like a public one.
	if src == ident.FullCone {
		src = ident.Public
	}
	if dst == ident.FullCone {
		dst = ident.Public
	}
	switch dst {
	case ident.Public:
		return Direct
	case ident.RestrictedCone:
		if src == ident.Symmetric {
			// The destination filters by IP only, but it cannot learn
			// the source's fresh symmetric mapping from the source, so
			// the PONG travels back through the RVP.
			return HolePunchModified
		}
		return HolePunch
	case ident.PortRestrictedCone:
		if src == ident.Symmetric {
			// The destination's PONG would target a stale port: the
			// symmetric source allocates a new mapping per destination.
			return Relay
		}
		return HolePunch
	case ident.Symmetric:
		if src == ident.RestrictedCone {
			// An RC source filters inbound by IP only, so the PONG
			// from the symmetric destination's fresh mapping still
			// gets through.
			return HolePunch
		}
		// public→SYM, PRC→SYM and SYM→SYM go through the relay: the
		// symmetric destination's per-session port is unknown to the
		// source (and vice versa for SYM→SYM).
		return Relay
	default:
		// Unknown classes get the most conservative treatment.
		return Relay
	}
}

// NeedsRVP reports whether the method involves a rendez-vous peer at all.
func (m Method) NeedsRVP() bool { return m != Direct }

// EstablishesHole reports whether, after the handshake, the two peers can
// exchange messages directly without further relaying.
func (m Method) EstablishesHole() bool { return m == HolePunch || m == HolePunchModified }
