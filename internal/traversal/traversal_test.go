package traversal

import (
	"testing"

	"repro/internal/ident"
)

// TestDecisionMatrix reproduces, cell by cell, the traversal table of Section
// 2.2 of the paper (experiment T1 in DESIGN.md):
//
//	        public  RC             PRC            SYM
//	public  direct  hole punching  hole punching  relay
//	RC      direct  hole punching  hole punching  hole punching
//	PRC     direct  hole punching  hole punching  relaying
//	SYM     direct  mod. hole p.   relaying       relaying
func TestDecisionMatrix(t *testing.T) {
	classes := []ident.NATClass{ident.Public, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric}
	want := [4][4]Method{
		{Direct, HolePunch, HolePunch, Relay},
		{Direct, HolePunch, HolePunch, HolePunch},
		{Direct, HolePunch, HolePunch, Relay},
		{Direct, HolePunchModified, Relay, Relay},
	}
	for i, src := range classes {
		for j, dst := range classes {
			if got := Decide(src, dst); got != want[i][j] {
				t.Errorf("Decide(%v, %v) = %v, want %v", src, dst, got, want[i][j])
			}
		}
	}
}

// TestFullConeNormalization checks that FC endpoints are treated as public on
// both sides, per §2.2 of the paper.
func TestFullConeNormalization(t *testing.T) {
	for _, c := range []ident.NATClass{ident.Public, ident.FullCone, ident.RestrictedCone, ident.PortRestrictedCone, ident.Symmetric} {
		if got := Decide(c, ident.FullCone); got != Direct {
			t.Errorf("Decide(%v, FullCone) = %v, want Direct", c, got)
		}
		if got, want := Decide(ident.FullCone, c), Decide(ident.Public, c); got != want {
			t.Errorf("Decide(FullCone, %v) = %v, want %v (same as public source)", c, got, want)
		}
	}
}

func TestMethodString(t *testing.T) {
	tests := []struct {
		m    Method
		want string
	}{
		{Direct, "direct"},
		{HolePunch, "hole-punching"},
		{HolePunchModified, "modified-hole-punching"},
		{Relay, "relaying"},
		{Method(42), "method(42)"},
	}
	for _, tt := range tests {
		if got := tt.m.String(); got != tt.want {
			t.Errorf("Method(%d).String() = %q, want %q", tt.m, got, tt.want)
		}
	}
}

func TestMethodPredicates(t *testing.T) {
	if Direct.NeedsRVP() {
		t.Error("Direct.NeedsRVP() = true")
	}
	for _, m := range []Method{HolePunch, HolePunchModified, Relay} {
		if !m.NeedsRVP() {
			t.Errorf("%v.NeedsRVP() = false", m)
		}
	}
	if !HolePunch.EstablishesHole() || !HolePunchModified.EstablishesHole() {
		t.Error("hole punching methods must establish holes")
	}
	if Direct.EstablishesHole() || Relay.EstablishesHole() {
		t.Error("Direct/Relay must not claim to establish holes")
	}
}

func TestDecideUnknownClassIsConservative(t *testing.T) {
	if got := Decide(ident.Public, ident.NATClass(200)); got != Relay {
		t.Errorf("Decide(Public, unknown) = %v, want Relay", got)
	}
}
