// Package intern provides an append-only intern table for peer descriptors.
//
// At simulation scale the same descriptor value — one peer's identity,
// advertised endpoint and NAT class — is stored thousands of times across the
// routing tables of every peer that has heard of it (the probe behind
// DESIGN.md §7 measured ~17 stored copies per distinct descriptor at 10k
// peers). Interning collapses those copies to a 4-byte handle into one shared
// per-shard table: the routing rows shrink from a 24-byte descriptor to a
// uint32, and the descriptor bytes exist once per shard instead of once per
// reference.
//
// A Descriptors table is owned by one simulation shard: all engines of the
// shard share it, and only the shard's events (serialized by the kernel's
// phase hand-offs) touch it. Handles are shard-local and never cross shards;
// they are also never part of observable simulation state — only the
// descriptor values resolved through At are — so runs stay bit-identical for
// any shard or worker count even though handle numbering differs.
//
// Per-shard tables alone still cost O(shards × peers): in a well-mixed
// overlay every shard eventually hears about nearly every peer, so each
// shard re-interns almost the whole population. NewLayered removes that
// duplication: a network-wide base table holds every peer's advertised
// descriptor (written only at attach time, in barrier context, so shards may
// read it lock-free), and the per-shard layer keeps only learned variants —
// observed symmetric-NAT mappings, hole-punched endpoints — which are
// naturally shard-local. At 100k peers × 32 shards this turns ~260 MB of
// duplicated intern state into ~4 MB of base plus a few hundred KB per
// shard.
//
// Tables are append-only: descriptors are never removed, matching the
// routing tables' access pattern (rows expire, the distinct-descriptor set
// only grows within a run). Lookup is one open-addressed probe over 8-byte
// {fingerprint, index} slots.
package intern

import (
	"repro/internal/view"
)

// Handle references one interned descriptor. The zero Handle is reserved and
// never returned by Intern. In layered tables the top bit distinguishes
// layer-local handles from base handles; handle values are an internal
// matter between a table and its callers — only the descriptors resolved
// through At are ever observable.
type Handle uint32

// localBit marks a handle minted by a layer rather than its base.
const localBit Handle = 1 << 31

// slot is one index cell: fp is the descriptor hash fingerprint, idx the
// 1-based handle (0 marks an empty cell).
type slot struct {
	fp  uint32
	idx uint32
}

// Descriptors interns view.Descriptor values. The zero value is ready to use.
// It is not safe for concurrent use: one shard owns it (a base table under
// NewLayered is the exception — it is written only in barrier context and
// read lock-free by the layers).
type Descriptors struct {
	// base, when non-nil, is the read-only fallback layer: descriptors
	// found there are returned as base handles and never copied into this
	// table.
	base  *Descriptors
	descs []view.Descriptor // handle h (without localBit) lives at descs[h-1]
	slots []slot
}

// NewLayered returns a table layered over base: Intern first consults base
// (read-only — it never inserts there) and only stores descriptors base does
// not know. base must only be appended to in barrier context, where no layer
// is being read.
func NewLayered(base *Descriptors) *Descriptors {
	if base == nil {
		panic("intern: NewLayered called with nil base")
	}
	return &Descriptors{base: base}
}

// hash mixes every descriptor field (a different Age is a different intern
// entry, so At round-trips exactly).
func hash(d view.Descriptor) uint32 {
	h := uint64(d.ID)
	h ^= uint64(uint32(d.Addr.IP))<<16 | uint64(d.Addr.Port)
	h *= 0x9e3779b97f4a7c15
	h ^= uint64(d.Class)<<32 | uint64(d.Age)
	h *= 0x9e3779b97f4a7c15
	return uint32(h >> 32)
}

// Len returns the number of distinct descriptors interned in this table
// (excluding its base layer).
func (t *Descriptors) Len() int { return len(t.descs) }

// Bytes returns the approximate memory footprint of the table, for
// diagnostics.
func (t *Descriptors) Bytes() int {
	return len(t.descs)*24 + len(t.slots)*8
}

// At returns the descriptor for a handle previously returned by Intern. It
// panics on the zero handle or a handle from another table.
func (t *Descriptors) At(h Handle) view.Descriptor {
	if t.base != nil && h&localBit == 0 {
		return t.base.descs[h-1]
	}
	return t.descs[h&^localBit-1]
}

// lookup returns the handle for d if it is already interned here, without
// inserting.
func (t *Descriptors) lookup(d view.Descriptor) (Handle, bool) {
	if len(t.slots) == 0 {
		return 0, false
	}
	fp := hash(d)
	mask := len(t.slots) - 1
	for j := int(fp) & mask; ; j = (j + 1) & mask {
		s := t.slots[j]
		if s.idx == 0 {
			return 0, false
		}
		if s.fp == fp && t.descs[s.idx-1] == d {
			return Handle(s.idx), true
		}
	}
}

// Intern returns the canonical handle for d, adding it to the table on first
// sight. In a layered table, descriptors the base knows resolve to base
// handles; everything else lands in the layer.
func (t *Descriptors) Intern(d view.Descriptor) Handle {
	if t.base != nil {
		if h, ok := t.base.lookup(d); ok {
			return h
		}
		if h, ok := t.lookup(d); ok {
			return h | localBit
		}
		return t.insert(d) | localBit
	}
	if h, ok := t.lookup(d); ok {
		return h
	}
	return t.insert(d)
}

// insert appends d and indexes it, growing the index at 2/3 load.
func (t *Descriptors) insert(d view.Descriptor) Handle {
	fp := hash(d)
	t.descs = append(t.descs, d)
	idx := uint32(len(t.descs))
	if 3*(len(t.descs)+1) > 2*len(t.slots) {
		t.grow()
		return Handle(idx)
	}
	mask := len(t.slots) - 1
	for j := int(fp) & mask; ; j = (j + 1) & mask {
		if t.slots[j].idx == 0 {
			t.slots[j] = slot{fp: fp, idx: idx}
			return Handle(idx)
		}
	}
}

// grow rebuilds the index twice as large (min 64 slots).
func (t *Descriptors) grow() {
	want := 64
	for 3*(len(t.descs)+1) > 2*want {
		want *= 2
	}
	t.slots = make([]slot, want)
	mask := want - 1
	for i := range t.descs {
		fp := hash(t.descs[i])
		for j := int(fp) & mask; ; j = (j + 1) & mask {
			if t.slots[j].idx == 0 {
				t.slots[j] = slot{fp: fp, idx: uint32(i + 1)}
				break
			}
		}
	}
}
