package intern

import (
	"math/rand"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
)

func desc(id uint64, port uint16, age uint32) view.Descriptor {
	return view.Descriptor{
		ID:    ident.NodeID(id),
		Addr:  ident.Endpoint{IP: ident.IP(id), Port: port},
		Class: ident.NATClass(id % 5),
		Age:   age,
	}
}

func TestInternRoundTrip(t *testing.T) {
	var tab Descriptors
	d1 := desc(1, 9000, 0)
	d2 := desc(2, 9000, 0)
	h1 := tab.Intern(d1)
	h2 := tab.Intern(d2)
	if h1 == 0 || h2 == 0 {
		t.Fatal("Intern returned the reserved zero handle")
	}
	if h1 == h2 {
		t.Fatal("distinct descriptors share a handle")
	}
	if tab.At(h1) != d1 || tab.At(h2) != d2 {
		t.Fatal("At does not round-trip")
	}
	if got := tab.Intern(d1); got != h1 {
		t.Fatalf("re-intern of same descriptor: handle %d, want %d", got, h1)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
}

// TestInternDistinguishesEveryField pins that any field difference — even the
// age — yields a distinct entry, so At round-trips exactly.
func TestInternDistinguishesEveryField(t *testing.T) {
	var tab Descriptors
	base := desc(7, 9000, 0)
	variants := []view.Descriptor{
		base,
		{ID: base.ID + 1, Addr: base.Addr, Class: base.Class, Age: base.Age},
		{ID: base.ID, Addr: ident.Endpoint{IP: base.Addr.IP + 1, Port: base.Addr.Port}, Class: base.Class, Age: base.Age},
		{ID: base.ID, Addr: ident.Endpoint{IP: base.Addr.IP, Port: base.Addr.Port + 1}, Class: base.Class, Age: base.Age},
		{ID: base.ID, Addr: base.Addr, Class: base.Class + 1, Age: base.Age},
		{ID: base.ID, Addr: base.Addr, Class: base.Class, Age: base.Age + 1},
	}
	seen := map[Handle]bool{}
	for _, v := range variants {
		h := tab.Intern(v)
		if seen[h] {
			t.Fatalf("descriptor %v collided with an earlier variant", v)
		}
		seen[h] = true
		if tab.At(h) != v {
			t.Fatalf("At(%d) = %v, want %v", h, tab.At(h), v)
		}
	}
}

// TestInternGrowth drives the table through many growth cycles and verifies
// every handle stays valid and canonical.
func TestInternGrowth(t *testing.T) {
	var tab Descriptors
	const n = 10_000
	handles := make([]Handle, n)
	for i := 0; i < n; i++ {
		handles[i] = tab.Intern(desc(uint64(i+1), uint16(i), uint32(i%3)))
	}
	if tab.Len() != n {
		t.Fatalf("Len = %d, want %d", tab.Len(), n)
	}
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 5000; k++ {
		i := rng.Intn(n)
		d := desc(uint64(i+1), uint16(i), uint32(i%3))
		if got := tab.Intern(d); got != handles[i] {
			t.Fatalf("handle for %v changed after growth: %d, want %d", d, got, handles[i])
		}
		if tab.At(handles[i]) != d {
			t.Fatalf("At(%d) corrupted after growth", handles[i])
		}
	}
	if tab.Len() != n {
		t.Fatalf("re-interning grew the table: Len = %d, want %d", tab.Len(), n)
	}
}

// TestInternAdversarialIDs interns descriptors whose IDs are crafted to
// collide under the hash fingerprint's home slot, exercising long probe
// chains.
func TestInternAdversarialIDs(t *testing.T) {
	var tab Descriptors
	// IDs spaced by large powers of two cluster badly under weak hashes;
	// the fingerprint confirm must still keep every entry distinct.
	var ds []view.Descriptor
	for i := 0; i < 512; i++ {
		ds = append(ds, desc(uint64(i)<<32|1, 9000, 0))
	}
	hs := make([]Handle, len(ds))
	for i, d := range ds {
		hs[i] = tab.Intern(d)
	}
	for i, d := range ds {
		if tab.At(hs[i]) != d {
			t.Fatalf("entry %d corrupted", i)
		}
		if tab.Intern(d) != hs[i] {
			t.Fatalf("entry %d not canonical", i)
		}
	}
	if tab.Len() != len(ds) {
		t.Fatalf("Len = %d, want %d", tab.Len(), len(ds))
	}
}

func TestAllocsSteadyState(t *testing.T) {
	var tab Descriptors
	for i := 0; i < 1000; i++ {
		tab.Intern(desc(uint64(i+1), 1, 0))
	}
	d := desc(500, 1, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		if tab.Intern(d) == 0 {
			t.Fatal("zero handle")
		}
	})
	if allocs != 0 {
		t.Errorf("re-intern allocates %.1f times per op, want 0", allocs)
	}
}

// TestLayeredEquivalence pins that a layered table behaves exactly like a
// flat one through At: whatever mix of base-known and layer-local
// descriptors is interned, every handle resolves to its descriptor.
func TestLayeredEquivalence(t *testing.T) {
	var base Descriptors
	for i := 0; i < 500; i++ {
		base.Intern(desc(uint64(i+1), 9000, 0))
	}
	layers := []*Descriptors{NewLayered(&base), NewLayered(&base)}
	rng := rand.New(rand.NewSource(9))
	type stored struct {
		h Handle
		d view.Descriptor
	}
	var all [][]stored
	distinct := make([]map[view.Descriptor]bool, len(layers))
	for i, l := range layers {
		distinct[i] = map[view.Descriptor]bool{}
		var st []stored
		for k := 0; k < 3000; k++ {
			var d view.Descriptor
			if rng.Intn(2) == 0 {
				d = desc(uint64(rng.Intn(500)+1), 9000, 0) // base hit
			} else {
				d = desc(uint64(rng.Intn(300)+1), uint16(rng.Intn(50)+1), 0) // learned variant
				distinct[i][d] = true
			}
			st = append(st, stored{l.Intern(d), d})
		}
		all = append(all, st)
	}
	// Base-known descriptors must not be duplicated into layers: each layer
	// holds exactly its distinct learned variants.
	for i, l := range layers {
		if l.Len() != len(distinct[i]) {
			t.Fatalf("layer %d holds %d entries, want %d learned variants (base duplicated?)", i, l.Len(), len(distinct[i]))
		}
		for _, s := range all[i] {
			if got := l.At(s.h); got != s.d {
				t.Fatalf("layer %d: At(%d) = %v, want %v", i, s.h, got, s.d)
			}
			if got := l.Intern(s.d); l.At(got) != s.d {
				t.Fatalf("layer %d: re-intern of %v resolves wrong", i, s.d)
			}
		}
	}
	// The base may keep growing (peers joining at barriers); old layer
	// handles must stay valid.
	probe := all[0][0]
	for i := 0; i < 2000; i++ {
		base.Intern(desc(uint64(10_000+i), 9000, 0))
	}
	if layers[0].At(probe.h) != probe.d {
		t.Fatal("layer handle invalidated by base growth")
	}
	// Descriptors interned into the base after a layer existed resolve
	// through the layer too.
	late := desc(10_500, 9000, 0)
	if got := layers[0].At(layers[0].Intern(late)); got != late {
		t.Fatalf("late base descriptor resolves to %v, want %v", got, late)
	}
}
