// Package sim provides a deterministic discrete-event scheduler with a
// virtual millisecond clock. It is the substrate replacing the authors'
// Java event-driven simulator: all protocol experiments in this repository
// run on top of it.
//
// Determinism: events firing at the same virtual time run in scheduling
// order (a monotonically increasing sequence number breaks ties), and all
// randomness must come from RNGs seeded by the experiment, so a run is a
// pure function of its configuration and seed.
//
// The pending queue is a 4-ary min-heap of inline event values. Compared to
// container/heap over boxed *event pointers this removes one allocation and
// one interface conversion per scheduled event and halves the tree depth;
// the slice itself doubles as the free list, since popped slots are reused
// by later pushes.
//
// For event streams whose fire times are already monotone — the simulated
// network's constant-latency deliveries, which are the majority of all
// events — the scheduler additionally offers a lane: a flat FIFO ring that
// is merged with the heap at pop time in exact (time, sequence) order, so
// those events never pay heap costs at all.
//
// Sharded simulations (see ShardedScheduler) run one Scheduler per shard and
// need an event order that does not depend on how many shards or workers
// execute the run. For them every event carries an explicit (actor, seq) key
// — the scheduling peer and its private event counter — instead of the
// scheduler-local sequence number: ties at one virtual time resolve by
// (actor, seq), which is a pure function of the simulated world. The legacy
// At/LaneAt entry points keep the scheduler-local counter (with actor 0), so
// single-scheduler hosts behave exactly as before.
package sim

// event is a scheduled callback, stored inline in the heap slice. A nil fn
// marks a tick event: it runs the scheduler's shared tickFn with the event's
// actor, so periodic per-actor work (every simulated peer's shuffle loop)
// needs no per-actor closure — the event itself is the whole allocation.
type event struct {
	at    int64 // virtual time, ms
	actor uint64
	seq   uint64
	fn    func()
}

// before reports whether e fires before o: earlier time, then earlier
// (actor, seq) key.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	if e.actor != o.actor {
		return e.actor < o.actor
	}
	return e.seq < o.seq
}

// Scheduler is a discrete-event loop over virtual time. The zero Scheduler is
// ready to use. It is not safe for concurrent use: a Scheduler is always
// driven by one goroutine at a time (the whole simulation's, or its shard's
// current worker under a ShardedScheduler).
type Scheduler struct {
	now     int64
	seq     uint64
	pending []event // 4-ary min-heap ordered by (at, actor, seq)
	// lane is the monotone FIFO source (see SetLaneFn); laneFn runs for
	// each of its events.
	lane   Ring[laneEntry]
	laneFn func()
	// tickFn is the shared callback of fn-less tick events (see TickAtKey).
	tickFn func(actor uint64)
	// processed counts executed events, for run statistics.
	processed uint64
	// limit is the deadline of the RunUntil/RunBefore loop currently
	// executing (limitExcl marks RunBefore's strict bound); LaneContinue
	// honours it so a batched lane run never crosses the loop's window.
	// Outside a bounded loop (Step, Drain) limitSet is false and lane runs
	// never extend, preserving one-event-per-Step semantics.
	limit     int64
	limitSet  bool
	limitExcl bool
	// curActor/curSeq are the ordering key of the event currently
	// executing (see CurrentKey).
	curActor uint64
	curSeq   uint64
}

// laneEntry is one lane event: only its firing coordinates are stored, the
// callback is the shared laneFn.
type laneEntry struct {
	at    int64
	actor uint64
	seq   uint64
}

// laneBefore reports whether l fires before the (at, actor, seq) key.
func (l *laneEntry) laneBefore(at int64, actor, seq uint64) bool {
	if l.at != at {
		return l.at < at
	}
	if l.actor != actor {
		return l.actor < actor
	}
	return l.seq < seq
}

// Ring is a growable FIFO ring buffer. Hosts with their own monotone event
// streams (the simulated network's in-flight datagrams) reuse it so the
// grow/wrap logic lives in one place. The zero Ring is ready to use.
type Ring[T any] struct {
	buf     []T
	head, n int
}

// Len returns the number of queued elements.
func (q *Ring[T]) Len() int { return q.n }

// At returns a pointer to the i-th queued element (0 is the head) without
// removing it. Checkpoint capture iterates the ring with it; the pointer is
// valid until the next Push.
func (q *Ring[T]) At(i int) *T { return &q.buf[(q.head+i)%len(q.buf)] }

// Push appends e at the tail.
func (q *Ring[T]) Push(e T) {
	if q.n == len(q.buf) {
		grown := make([]T, max(16, 2*len(q.buf)))
		for i := 0; i < q.n; i++ {
			grown[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head = grown, 0
	}
	q.buf[(q.head+q.n)%len(q.buf)] = e
	q.n++
}

// Pop removes and returns the head element. It panics on an empty ring.
// The vacated slot is zeroed so popped elements can be collected.
func (q *Ring[T]) Pop() T {
	if q.n == 0 {
		panic("sim: Pop on empty ring")
	}
	e := q.buf[q.head]
	var zero T
	q.buf[q.head] = zero
	q.head = (q.head + 1) % len(q.buf)
	q.n--
	return e
}

// Peek returns a pointer to the head element without removing it. It
// panics on an empty ring.
func (q *Ring[T]) Peek() *T {
	if q.n == 0 {
		panic("sim: Peek on empty ring")
	}
	return &q.buf[q.head]
}

// tail returns a pointer to the most recently pushed element.
func (q *Ring[T]) tail() *T {
	return &q.buf[(q.head+q.n-1)%len(q.buf)]
}

// SetLaneFn installs the callback shared by all lane events. It must be set
// (once) before the first LaneAt call; hosts use a method value bound to
// their dispatcher so scheduling stays allocation-free.
func (s *Scheduler) SetLaneFn(fn func()) {
	if fn == nil {
		panic("sim: SetLaneFn called with nil fn")
	}
	s.laneFn = fn
}

// LaneAt schedules one lane event at time t, which must be monotone: not
// earlier than any lane event still pending (constant-latency delivery
// queues satisfy this by construction). The event runs laneFn, interleaved
// with At events in exact (time, scheduling order) — LaneAt draws from the
// same sequence counter as At.
func (s *Scheduler) LaneAt(t int64) {
	if s.laneFn == nil {
		panic("sim: LaneAt without SetLaneFn")
	}
	if t < s.now {
		t = s.now
	}
	if s.lane.Len() > 0 && t < s.lane.tail().at {
		panic("sim: LaneAt time regressed")
	}
	s.seq++
	s.lane.Push(laneEntry{at: t, seq: s.seq})
}

// LaneAtKey schedules one lane event at time t with an explicit (actor, seq)
// ordering key. The full key must be monotone: not before the key of any
// lane event still pending. The sharded network's barrier merge pushes its
// sorted per-window batches through here; batches from successive windows
// never overlap in time, so the invariant holds by construction.
func (s *Scheduler) LaneAtKey(t int64, actor, seq uint64) {
	if s.laneFn == nil {
		panic("sim: LaneAtKey without SetLaneFn")
	}
	if t < s.now {
		t = s.now
	}
	if s.lane.Len() > 0 && !s.lane.tail().laneBefore(t, actor, seq) {
		panic("sim: LaneAtKey key regressed")
	}
	s.lane.Push(laneEntry{at: t, actor: actor, seq: seq})
}

// SetTickFn installs the callback shared by all tick events (see TickAtKey).
// It must be set (once) before the first TickAtKey call; hosts use one method
// value per scheduler so arming ticks stays allocation-free.
func (s *Scheduler) SetTickFn(fn func(actor uint64)) {
	if fn == nil {
		panic("sim: SetTickFn called with nil fn")
	}
	s.tickFn = fn
}

// TickAtKey schedules a tick event at time t with an explicit (actor, seq)
// ordering key, exactly like AtKey — except that instead of carrying its own
// closure the event dispatches to the scheduler's shared tick callback with
// the actor as argument. Periodic per-actor work (every peer's shuffle loop)
// armed this way costs one inline heap entry and no per-actor closure: at a
// million peers that removes a million captured funcs from the heap.
func (s *Scheduler) TickAtKey(t int64, actor, seq uint64) {
	if s.tickFn == nil {
		panic("sim: TickAtKey without SetTickFn")
	}
	if t < s.now {
		t = s.now
	}
	s.pending = append(s.pending, event{at: t, actor: actor, seq: seq})
	s.siftUp(len(s.pending) - 1)
}

// Now returns the current virtual time in milliseconds.
func (s *Scheduler) Now() int64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events not yet executed.
func (s *Scheduler) Pending() int { return len(s.pending) + s.lane.Len() }

// At schedules fn to run at the given virtual time. Times in the past are
// clamped to "immediately after the current event". fn must not be nil.
// Aside from amortized growth of the heap slice, scheduling allocates
// nothing; fn itself should be a reused func value on hot paths.
func (s *Scheduler) At(t int64, fn func()) {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	s.pending = append(s.pending, event{at: t, seq: s.seq, fn: fn})
	s.siftUp(len(s.pending) - 1)
}

// AtKey schedules fn at time t with an explicit (actor, seq) ordering key.
// Sharded hosts use it for every event so that same-time ties resolve by a
// key derived from the simulated world (the scheduling peer and its private
// event counter), never from scheduler-local state: the resulting order is
// invariant under the shard and worker count. Keys must be unique per
// (t, actor); actors 0 is reserved for the legacy At/LaneAt counter.
func (s *Scheduler) AtKey(t int64, actor, seq uint64, fn func()) {
	if fn == nil {
		panic("sim: AtKey called with nil fn")
	}
	if t < s.now {
		t = s.now
	}
	s.pending = append(s.pending, event{at: t, actor: actor, seq: seq, fn: fn})
	s.siftUp(len(s.pending) - 1)
}

// After schedules fn to run d milliseconds from now.
func (s *Scheduler) After(d int64, fn func()) { s.At(s.now+d, fn) }

const heapArity = 4

func (s *Scheduler) siftUp(i int) {
	h := s.pending
	e := h[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !e.before(&h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = e
}

func (s *Scheduler) siftDown(i int) {
	h := s.pending
	n := len(h)
	e := h[i]
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		best := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h[c].before(&h[best]) {
				best = c
			}
		}
		if !h[best].before(&e) {
			break
		}
		h[i] = h[best]
		i = best
	}
	h[i] = e
}

// pop removes and returns the earliest pending event. The vacated slot is
// cleared so the callback can be collected once executed.
func (s *Scheduler) pop() event {
	h := s.pending
	e := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	s.pending = h[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return e
}

// next returns the firing coordinates of the earliest pending event (heap
// or lane) without removing it. ok is false when nothing is pending.
func (s *Scheduler) next() (at int64, fromLane bool, ok bool) {
	heapOK := len(s.pending) > 0
	laneOK := s.lane.Len() > 0
	switch {
	case !heapOK && !laneOK:
		return 0, false, false
	case !heapOK:
		return s.lane.Peek().at, true, true
	case !laneOK:
		return s.pending[0].at, false, true
	}
	h, l := &s.pending[0], s.lane.Peek()
	if l.at < h.at || (l.at == h.at && (l.actor < h.actor || (l.actor == h.actor && l.seq < h.seq))) {
		return l.at, true, true
	}
	return h.at, false, true
}

// NextAt returns the fire time of the earliest pending event without
// executing it; ok is false when nothing is pending.
func (s *Scheduler) NextAt() (at int64, ok bool) {
	at, _, ok = s.next()
	return at, ok
}

// CurrentKey returns the (actor, seq) ordering key of the event currently
// executing. Together with Now it totally orders everything the event does:
// observers (the network's trace rings) stamp their records with it so that
// records from different shards merge back into the exact global execution
// order. During a batched lane run the key tracks the lane entry currently
// being delivered.
func (s *Scheduler) CurrentKey() (actor, seq uint64) { return s.curActor, s.curSeq }

// runNext executes the earliest pending event.
func (s *Scheduler) runNext(fromLane bool) {
	if fromLane {
		e := s.lane.Pop()
		s.now = e.at
		s.curActor, s.curSeq = e.actor, e.seq
		s.processed++
		s.laneFn()
		return
	}
	e := s.pop()
	s.now = e.at
	s.curActor, s.curSeq = e.actor, e.seq
	s.processed++
	if e.fn == nil {
		s.tickFn(e.actor)
		return
	}
	e.fn()
}

// LaneContinue extends the lane event currently executing: it consumes the
// next pending lane event iff it would be the scheduler's very next pick —
// strictly before every heap event in (time, actor, seq) order and within
// the driving loop's deadline — advancing the clock and the processed count
// exactly as the main loop's pop would. Hosts whose laneFn delivers one item
// per event call this in a loop to handle a whole run of back-to-back lane
// events inside one callback, amortizing per-run state (destination
// resolution, device lookups) over the run without changing execution order:
// the batch ends precisely where an interleaved heap event would have
// preempted it, or where the RunUntil/RunBefore loop would have stopped.
// Because the check runs against the live heap, events scheduled by the
// items themselves are honoured mid-run. Outside a bounded loop it always
// declines, so Step still executes exactly one event.
func (s *Scheduler) LaneContinue() bool {
	if !s.limitSet || s.lane.Len() == 0 {
		return false
	}
	l := s.lane.Peek()
	if l.at > s.limit || (l.at == s.limit && s.limitExcl) {
		return false
	}
	if len(s.pending) > 0 {
		h := &s.pending[0]
		if !(l.at < h.at || (l.at == h.at && (l.actor < h.actor || (l.actor == h.actor && l.seq < h.seq)))) {
			return false
		}
	}
	e := s.lane.Pop()
	s.now = e.at
	s.curActor, s.curSeq = e.actor, e.seq
	s.processed++
	return true
}

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. The clock ends at deadline (or at the last
// event, whichever is later) so subsequent scheduling is consistent.
func (s *Scheduler) RunUntil(deadline int64) {
	prevLimit, prevSet, prevExcl := s.limit, s.limitSet, s.limitExcl
	s.limit, s.limitSet, s.limitExcl = deadline, true, false
	for {
		at, fromLane, ok := s.next()
		if !ok || at > deadline {
			break
		}
		s.runNext(fromLane)
	}
	s.limit, s.limitSet, s.limitExcl = prevLimit, prevSet, prevExcl
	if s.now < deadline {
		s.now = deadline
	}
}

// RunBefore executes events in order while they fire strictly before
// deadline, then advances the clock to deadline. It is the window-phase
// primitive of the sharded kernel: events at exactly deadline belong to the
// next window (they run after the barrier's global events).
func (s *Scheduler) RunBefore(deadline int64) {
	prevLimit, prevSet, prevExcl := s.limit, s.limitSet, s.limitExcl
	s.limit, s.limitSet, s.limitExcl = deadline, true, true
	for {
		at, fromLane, ok := s.next()
		if !ok || at >= deadline {
			break
		}
		s.runNext(fromLane)
	}
	s.limit, s.limitSet, s.limitExcl = prevLimit, prevSet, prevExcl
	if s.now < deadline {
		s.now = deadline
	}
}

// EachTick visits every pending tick event (scheduled through TickAtKey) in
// heap-array order, which is not sorted: checkpoint writers sort the
// collected keys themselves. Events carrying their own closure are skipped —
// a closure cannot be serialized, so hosts re-arm those structurally on
// restore (the network's jitter events from its jitter heap, the experiment
// harness's global timeline from the config).
func (s *Scheduler) EachTick(fn func(at int64, actor, seq uint64)) {
	for i := range s.pending {
		if s.pending[i].fn == nil {
			fn(s.pending[i].at, s.pending[i].actor, s.pending[i].seq)
		}
	}
}

// EachLane visits every pending lane event in FIFO (and hence key) order.
// Checkpoint writers pair the keys with the host's own in-flight payload
// queue, which LaneAt-style scheduling keeps in lockstep with the lane.
func (s *Scheduler) EachLane(fn func(at int64, actor, seq uint64)) {
	for i := 0; i < s.lane.n; i++ {
		e := &s.lane.buf[(s.lane.head+i)%len(s.lane.buf)]
		fn(e.at, e.actor, e.seq)
	}
}

// RestoreClock sets the scheduler's virtual clock and processed-event count
// to values captured at a barrier. Restore paths call it after re-arming the
// pending events (arming first keeps At's past-clamping inert: a fresh
// scheduler's clock is zero, so no restored time can be clamped).
func (s *Scheduler) RestoreClock(now int64, processed uint64) {
	s.now, s.processed = now, processed
}

// Step executes exactly one event, if any, and reports whether it did.
func (s *Scheduler) Step() bool {
	_, fromLane, ok := s.next()
	if !ok {
		return false
	}
	s.runNext(fromLane)
	return true
}

// Drain runs every pending event (including ones scheduled while draining).
// Use only in tests with naturally finite event cascades.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
