// Package sim provides a deterministic discrete-event scheduler with a
// virtual millisecond clock. It is the substrate replacing the authors'
// Java event-driven simulator: all protocol experiments in this repository
// run on top of it.
//
// Determinism: events firing at the same virtual time run in scheduling
// order (a monotonically increasing sequence number breaks ties), and all
// randomness must come from RNGs seeded by the experiment, so a run is a
// pure function of its configuration and seed.
package sim

import "container/heap"

// Event is a scheduled callback.
type event struct {
	at  int64 // virtual time, ms
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Scheduler is a discrete-event loop over virtual time. The zero Scheduler is
// ready to use. It is not safe for concurrent use: simulations are
// single-threaded by design.
type Scheduler struct {
	now     int64
	seq     uint64
	pending eventHeap
	// processed counts executed events, for run statistics.
	processed uint64
}

// Now returns the current virtual time in milliseconds.
func (s *Scheduler) Now() int64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// Pending returns the number of events not yet executed.
func (s *Scheduler) Pending() int { return len(s.pending) }

// At schedules fn to run at the given virtual time. Times in the past are
// clamped to "immediately after the current event". fn must not be nil.
func (s *Scheduler) At(t int64, fn func()) {
	if fn == nil {
		panic("sim: At called with nil fn")
	}
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pending, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now.
func (s *Scheduler) After(d int64, fn func()) { s.At(s.now+d, fn) }

// RunUntil executes events in order until the queue is empty or the next
// event is later than deadline. The clock ends at deadline (or at the last
// event, whichever is later) so subsequent scheduling is consistent.
func (s *Scheduler) RunUntil(deadline int64) {
	for len(s.pending) > 0 && s.pending[0].at <= deadline {
		e := heap.Pop(&s.pending).(*event)
		s.now = e.at
		s.processed++
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Step executes exactly one event, if any, and reports whether it did.
func (s *Scheduler) Step() bool {
	if len(s.pending) == 0 {
		return false
	}
	e := heap.Pop(&s.pending).(*event)
	s.now = e.at
	s.processed++
	e.fn()
	return true
}

// Drain runs every pending event (including ones scheduled while draining).
// Use only in tests with naturally finite event cascades.
func (s *Scheduler) Drain() {
	for s.Step() {
	}
}
