package sim

import (
	"reflect"
	"sort"
	"sync/atomic"
	"testing"
)

// TestAtKeyOrderingMatchesSort schedules keyed events with colliding times
// and checks execution order equals a sort by (time, actor, seq) — the
// worker- and shard-count-invariant total order of the sharded kernel.
func TestAtKeyOrderingMatchesSort(t *testing.T) {
	type rec struct {
		at         int64
		actor, seq uint64
	}
	var s Scheduler
	var got []rec
	var want []rec
	// Insertion order deliberately scrambles actors and times.
	seqs := map[uint64]uint64{}
	for i := 0; i < 3000; i++ {
		at := int64((i * 7919) % 23) // dense time collisions
		actor := uint64((i*31)%11 + 1)
		seqs[actor]++
		r := rec{at, actor, seqs[actor]}
		want = append(want, r)
		s.AtKey(at, actor, r.seq, func() { got = append(got, r) })
	}
	sort.Slice(want, func(a, b int) bool {
		if want[a].at != want[b].at {
			return want[a].at < want[b].at
		}
		if want[a].actor != want[b].actor {
			return want[a].actor < want[b].actor
		}
		return want[a].seq < want[b].seq
	})
	s.RunUntil(100)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("keyed execution order diverged from (time, actor, seq) sort")
	}
}

// TestLaneAtKeyMergesWithHeapByKey checks the lane and the heap interleave
// in exact key order, and that a key regression on the lane panics.
func TestLaneAtKeyMergesWithHeapByKey(t *testing.T) {
	var s Scheduler
	var got []uint64
	s.SetLaneFn(func() { got = append(got, 0) })
	s.AtKey(10, 2, 1, func() { got = append(got, 2) })
	s.AtKey(10, 4, 1, func() { got = append(got, 4) })
	s.LaneAtKey(10, 3, 1) // lane event with actor 3: between the heap events
	s.RunUntil(10)
	want := []uint64{2, 0, 4}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merge order = %v, want %v", got, want)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("regressed lane key did not panic")
		}
	}()
	s.LaneAtKey(20, 5, 1)
	s.LaneAtKey(20, 4, 9) // actor regressed at equal time
}

// TestRunBeforeExcludesDeadline checks the window-phase primitive: events
// strictly before the deadline run, events at it wait, and the clock lands
// on the deadline.
func TestRunBeforeExcludesDeadline(t *testing.T) {
	var s Scheduler
	var ran []int64
	for _, at := range []int64{5, 10, 15} {
		at := at
		s.AtKey(at, 1, uint64(at), func() { ran = append(ran, at) })
	}
	s.RunBefore(10)
	if !reflect.DeepEqual(ran, []int64{5}) {
		t.Fatalf("RunBefore(10) ran %v, want [5]", ran)
	}
	if s.Now() != 10 {
		t.Fatalf("Now = %d, want 10", s.Now())
	}
	s.RunUntil(10)
	if !reflect.DeepEqual(ran, []int64{5, 10}) {
		t.Fatalf("RunUntil(10) after RunBefore ran %v, want [5 10]", ran)
	}
}

// TestShardedGlobalBeforeShardEvents pins barrier rule 3: a global event at
// time T runs before any shard event at T, and after shard events before T.
func TestShardedGlobalBeforeShardEvents(t *testing.T) {
	k := NewSharded(2, 1, 10)
	var order []string
	k.Shard(0).AtKey(5, 1, 1, func() { order = append(order, "shard@5") })
	k.Shard(1).AtKey(40, 2, 1, func() { order = append(order, "shard@40") })
	k.Global().At(40, func() { order = append(order, "global@40") })
	k.RunUntil(40)
	want := []string{"shard@5", "global@40", "shard@40"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	if k.Now() != 40 {
		t.Fatalf("Now = %d, want 40", k.Now())
	}
	if k.Processed() != 3 {
		t.Fatalf("Processed = %d, want 3", k.Processed())
	}
}

// TestShardedBarrierFnRunsEveryWindow checks the host hook fires at each
// barrier between the global phase and the next window.
func TestShardedBarrierFnRunsEveryWindow(t *testing.T) {
	k := NewSharded(4, 2, 25)
	var barriers int
	k.SetBarrierFn(func() { barriers++ })
	k.RunUntil(100)
	// Barriers at 0, 25, 50, 75 and the final one at 100.
	if barriers != 5 {
		t.Fatalf("barrier hook ran %d times, want 5", barriers)
	}
}

// TestShardedParallelExecutesAllShards drives many shards with a small
// worker pool and checks every shard's events all ran.
func TestShardedParallelExecutesAllShards(t *testing.T) {
	const shards = 16
	k := NewSharded(shards, 4, 50)
	var ran atomic.Int64
	for i := 0; i < shards; i++ {
		s := k.Shard(i)
		for j := 0; j < 100; j++ {
			s.AtKey(int64(j%7)*40, uint64(i+1), uint64(j+1), func() { ran.Add(1) })
		}
	}
	k.RunUntil(400)
	if got := ran.Load(); got != shards*100 {
		t.Fatalf("ran %d events, want %d", got, shards*100)
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", k.Pending())
	}
}

// TestShardedGlobalEventsSplitWindows checks a global event strictly inside
// a lookahead window becomes its own barrier: shard events after it still
// observe its effect.
func TestShardedGlobalEventsSplitWindows(t *testing.T) {
	k := NewSharded(2, 1, 1000) // window far larger than the timeline
	flag := false
	k.Global().At(30, func() { flag = true })
	var sawFlag bool
	k.Shard(0).AtKey(35, 1, 1, func() { sawFlag = flag })
	k.RunUntil(100)
	if !sawFlag {
		t.Fatal("shard event at 35 ran before the global event at 30")
	}
}

// TestNewShardedValidation pins the constructor's contract.
func TestNewShardedValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero shards", func() { NewSharded(0, 1, 10) })
	mustPanic("no lookahead", func() { NewSharded(2, 1, 0) })
	if k := NewSharded(4, 99, 10); k.Workers() != 4 {
		t.Errorf("workers not clamped to shards: %d", k.Workers())
	}
	if k := NewSharded(1, 1, 0); k.Shards() != 1 {
		t.Errorf("single shard with no lookahead must be allowed")
	}
}
