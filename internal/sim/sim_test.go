package sim

import (
	"fmt"
	"testing"
)

func TestOrderingByTime(t *testing.T) {
	var s Scheduler
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.RunUntil(100)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", got)
	}
	if s.Now() != 100 {
		t.Errorf("Now = %d, want 100", s.Now())
	}
}

func TestFIFOWithinSameInstant(t *testing.T) {
	var s Scheduler
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.RunUntil(5)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events out of scheduling order: %v", got)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	var s Scheduler
	var at int64
	s.At(10, func() {
		s.After(5, func() { at = s.Now() })
	})
	s.RunUntil(100)
	if at != 15 {
		t.Errorf("nested After fired at %d, want 15", at)
	}
}

func TestPastEventsClamped(t *testing.T) {
	var s Scheduler
	fired := false
	s.At(10, func() {
		s.At(3, func() { fired = true }) // in the past: runs "now"
	})
	s.RunUntil(10)
	if !fired {
		t.Error("past-scheduled event did not run at the current instant")
	}
	if s.Now() != 10 {
		t.Errorf("Now = %d, want 10", s.Now())
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	var s Scheduler
	ran := false
	s.At(50, func() { ran = true })
	s.RunUntil(49)
	if ran {
		t.Error("event past deadline executed")
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
	s.RunUntil(50)
	if !ran {
		t.Error("event at deadline not executed")
	}
}

func TestStepAndDrain(t *testing.T) {
	var s Scheduler
	n := 0
	s.At(1, func() { n++; s.At(2, func() { n++ }) })
	if !s.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if n != 1 {
		t.Fatalf("after one step n = %d", n)
	}
	s.Drain()
	if n != 2 {
		t.Errorf("after drain n = %d, want 2", n)
	}
	if s.Step() {
		t.Error("Step on empty queue returned true")
	}
	if s.Processed() != 2 {
		t.Errorf("Processed = %d, want 2", s.Processed())
	}
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	var s Scheduler
	s.At(1, nil)
}

func TestHeavyLoadOrdering(t *testing.T) {
	var s Scheduler
	last := int64(-1)
	// Insert in a scrambled but deterministic pattern.
	for i := 0; i < 10000; i++ {
		at := int64((i * 7919) % 10007)
		s.At(at, func() {
			if at < last {
				t.Fatalf("out of order: %d after %d", at, last)
			}
			last = at
		})
	}
	s.RunUntil(20000)
	if s.Processed() != 10000 {
		t.Errorf("Processed = %d, want 10000", s.Processed())
	}
}

// TestTickEvents pins that fn-less tick events interleave with regular
// events in exact key order and dispatch the right actors.
func TestTickEvents(t *testing.T) {
	var s Scheduler
	var got []string
	s.SetTickFn(func(actor uint64) {
		got = append(got, fmt.Sprintf("tick%d@%d", actor, s.Now()))
		if actor < 3 {
			s.TickAtKey(s.Now()+10, actor, 2)
		}
	})
	s.TickAtKey(5, 2, 1)
	s.TickAtKey(5, 1, 1)
	s.AtKey(5, 3, 1, func() { got = append(got, fmt.Sprintf("fn3@%d", s.Now())) })
	s.TickAtKey(7, 9, 1)
	s.RunUntil(20)
	want := []string{"tick1@5", "tick2@5", "fn3@5", "tick9@7", "tick1@15", "tick2@15"}
	if len(got) != len(want) {
		t.Fatalf("events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("events = %v, want %v", got, want)
		}
	}
}

// TestTickWithoutFnPanics pins the guard against arming ticks before the
// callback exists.
func TestTickWithoutFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TickAtKey without SetTickFn did not panic")
		}
	}()
	var s Scheduler
	s.TickAtKey(1, 1, 1)
}
