package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// TestAtStepZeroAllocs locks in the inline-event heap: once the heap slice
// has grown to its working size, scheduling and executing events allocates
// nothing (the callback must itself be a reused func value, as on the
// simulator's hot paths).
func TestAtStepZeroAllocs(t *testing.T) {
	var s Scheduler
	n := 0
	fn := func() { n++ }
	// Warm the heap slice to its steady-state capacity.
	for i := 0; i < 256; i++ {
		s.After(int64(i%16), fn)
	}
	s.Drain()
	allocs := testing.AllocsPerRun(1000, func() {
		s.After(3, fn)
		s.After(1, fn)
		s.After(2, fn)
		s.Step()
		s.Step()
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("At+Step allocates %.1f times per round, want 0", allocs)
	}
}

// TestHeapOrderingMatchesSort schedules a large batch of events with random
// times (including many collisions) and checks that execution order equals a
// stable sort by (time, scheduling order).
func TestHeapOrderingMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 5000
	type rec struct {
		at  int64
		seq int
	}
	want := make([]rec, n)
	var s Scheduler
	var got []rec
	for i := 0; i < n; i++ {
		at := int64(rng.Intn(97)) // dense: plenty of equal-time ties
		want[i] = rec{at, i}
		r := rec{at, i}
		s.At(at, func() { got = append(got, r) })
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a].at < want[b].at })
	s.RunUntil(1000)
	if len(got) != n {
		t.Fatalf("executed %d events, want %d", len(got), n)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestRingZeroAllocs locks in the inflight ring's arena property: once the
// buffer has grown to its working size, Push/Peek/Pop cycles allocate
// nothing, including across wrap-around. The sharded network stages every
// same-tick delivery through one of these.
func TestRingZeroAllocs(t *testing.T) {
	var q Ring[[3]uint64]
	for i := 0; i < 128; i++ {
		q.Push([3]uint64{uint64(i)})
	}
	for q.Len() > 0 {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 100; i++ { // > capacity/3 per run: exercises wrap
			q.Push([3]uint64{uint64(i)})
			_ = q.Peek()
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("Ring push+peek+pop allocates %.1f times per round, want 0", allocs)
	}
}
