package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedScheduler is the sharded, conservatively-synchronized parallel
// kernel. It partitions the simulated world into S shards, each driven by
// its own Scheduler, and advances virtual time in safe windows derived from
// the minimum cross-shard event latency (classic conservative-PDES
// lookahead: with a constant one-way link latency L, events executed in the
// window [T, T+L) can only schedule cross-shard work at or after T+L, so
// shards never need to look at each other mid-window). Within a window the
// shards run in parallel on a small worker pool; at each barrier the host
// (the simulated network) merges cross-shard traffic in a deterministic
// order and the kernel runs its global events.
//
// Determinism contract: a run is a pure function of the simulated world and
// its seeds — never of the worker count or the shard count. Three rules
// deliver that:
//
//  1. Every shard event carries a (time, actor, per-actor seq) key (see
//     Scheduler.AtKey). Actors are peers; their counters advance only with
//     their own deterministic execution, so keys never depend on scheduler
//     state or on which worker ran the shard.
//  2. Cross-shard messages merge at barriers in sorted key order (the host
//     sorts each batch), so arrival order is the same no matter which shard
//     — or how many shards — staged the messages.
//  3. Global events (round samples, churn, the scenario timeline) run on a
//     single global queue at barrier times, strictly before any shard event
//     at the same virtual time; barrier times themselves depend only on the
//     window size and the global timeline.
//
// Shard state (peers, their engines, NAT devices, per-shard pools) must be
// touched only by the shard's events or at barriers; the kernel's phase
// hand-offs provide the happens-before edges that make barrier-time access
// race-free.
type ShardedScheduler struct {
	window int64 // lookahead: safe window length in virtual ms
	now    int64 // last completed barrier time
	shards []*Scheduler
	global Scheduler
	// barrierFn, when set, runs single-threaded at every barrier after the
	// global events and before the next window's shard events: the network
	// drains its cross-shard mailboxes here.
	barrierFn func()
	// probe, when set, accumulates phase wall times and event counts (see
	// Timing). A nil probe costs nothing; a set one reads the wall clock
	// around phases but never feeds anything back into the simulation.
	probe *Timing
	// checkpointFn, when set, runs single-threaded at every barrier after
	// barrierFn, when all shard events up to the barrier time have executed
	// and the host's staging mailboxes are drained — the one point where
	// the whole world is quiescent and serializable. Returning true aborts
	// the RunUntil loop (checkpoint-then-exit on a signal); the clock stays
	// at the barrier. A nil hook costs one pointer check per barrier.
	checkpointFn func(now int64) (stop bool)

	workers   int
	deadline  int64 // phase parameters, published before waking workers
	inclusive bool
	next      atomic.Int64
	wg        sync.WaitGroup
	wake      []chan struct{}
}

// NewSharded creates a kernel with the given shard and worker counts and
// lookahead window in virtual milliseconds. workers < 1 defaults to
// GOMAXPROCS; it is clamped to the shard count. The shard count and window
// are part of the simulation's structure, not of its observable behavior:
// results are invariant under both (see the determinism contract above),
// so hosts pick them purely for throughput.
func NewSharded(shards, workers int, windowMs int64) *ShardedScheduler {
	if shards < 1 {
		panic("sim: NewSharded needs at least one shard")
	}
	if shards > 1 && windowMs < 1 {
		panic("sim: NewSharded needs a positive lookahead window for more than one shard")
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	k := &ShardedScheduler{window: windowMs, workers: workers}
	k.shards = make([]*Scheduler, shards)
	for i := range k.shards {
		k.shards[i] = &Scheduler{}
	}
	return k
}

// Shards returns the number of shards.
func (k *ShardedScheduler) Shards() int { return len(k.shards) }

// Workers returns the effective worker count.
func (k *ShardedScheduler) Workers() int { return k.workers }

// Shard returns shard i's scheduler. Schedule on it only from the shard's
// own events or at barriers.
func (k *ShardedScheduler) Shard(i int) *Scheduler { return k.shards[i] }

// Global returns the global event queue. Global events run single-threaded
// at barriers, before same-time shard events; schedule on it only from
// setup code or from other global events.
func (k *ShardedScheduler) Global() *Scheduler { return &k.global }

// SetBarrierFn installs the host's barrier hook (cross-shard mailbox
// drain). It runs single-threaded at every barrier, after the barrier's
// global events.
func (k *ShardedScheduler) SetBarrierFn(fn func()) { k.barrierFn = fn }

// SetCheckpointFn installs (or, with nil, removes) the barrier checkpoint
// hook. It runs single-threaded at every barrier, after the global events
// and the host's mailbox drain, so everything scheduled at or before the
// barrier time has fully executed when it fires; returning true stops the
// RunUntil loop at the barrier. Install before RunUntil.
func (k *ShardedScheduler) SetCheckpointFn(fn func(now int64) (stop bool)) { k.checkpointFn = fn }

// RestoreNow sets the kernel's barrier clock to a time captured by a
// checkpoint. Call before RunUntil, after restoring the shard and global
// schedulers (see Scheduler.RestoreClock): the first barrier of the resumed
// run then replays at exactly the captured time, and the window cadence
// continues as the original run's would have.
func (k *ShardedScheduler) RestoreNow(t int64) { k.now = t }

// SetProbe installs (or, with nil, removes) the phase-timing probe. The
// probe must be sized for this kernel's shard count. Install before RunUntil.
func (k *ShardedScheduler) SetProbe(t *Timing) {
	if t != nil && t.Shards() != len(k.shards) {
		panic("sim: SetProbe with a Timing sized for a different shard count")
	}
	k.probe = t
}

// Now returns the last completed barrier time. Between barriers, shard
// clocks may be ahead of it (within the current window).
func (k *ShardedScheduler) Now() int64 { return k.now }

// Processed returns the total number of events executed across all shards
// and the global queue. It is itself deterministic: the same run executes
// the same events whatever the worker or shard count.
func (k *ShardedScheduler) Processed() uint64 {
	total := k.global.Processed()
	for _, s := range k.shards {
		total += s.Processed()
	}
	return total
}

// Pending returns the number of events not yet executed, excluding traffic
// still staged in host mailboxes.
func (k *ShardedScheduler) Pending() int {
	total := k.global.Pending()
	for _, s := range k.shards {
		total += s.Pending()
	}
	return total
}

// RunUntil drives the kernel to the given virtual time: windows of shard
// events bounded by the lookahead, barriers running global events and the
// host's mailbox drain between them. Events at exactly end run (global ones
// first), matching Scheduler.RunUntil.
func (k *ShardedScheduler) RunUntil(end int64) {
	parallel := k.workers > 1 && len(k.shards) > 1
	if parallel {
		k.startWorkers()
		defer k.stopWorkers()
	}
	for {
		var t0 time.Time
		if k.probe != nil {
			t0 = time.Now()
		}
		k.global.RunUntil(k.now)
		if k.barrierFn != nil {
			k.barrierFn()
		}
		if k.probe != nil {
			k.probe.recordBarrier(time.Since(t0).Nanoseconds(), k.now, int64(k.Pending()), k.Processed())
		}
		if k.checkpointFn != nil && k.checkpointFn(k.now) {
			return
		}
		if k.now >= end {
			k.phase(end, true, parallel)
			if k.probe != nil {
				k.probe.recordBarrier(0, end, int64(k.Pending()), k.Processed())
			}
			return
		}
		b := end
		if k.window > 0 && k.now+k.window < b {
			b = k.now + k.window
		}
		// Global events define extra barriers: the next window must not
		// run shard events past one.
		if g, ok := k.global.NextAt(); ok && g < b {
			b = g
		}
		k.phase(b, false, parallel)
		k.now = b
	}
}

// phase executes one window on every shard: events strictly before deadline
// (or up to and including it, for the final phase), advancing each shard
// clock to deadline.
func (k *ShardedScheduler) phase(deadline int64, inclusive bool, parallel bool) {
	k.deadline, k.inclusive = deadline, inclusive
	if k.probe != nil {
		k.probe.recordWindow()
	}
	if !parallel {
		for i := range k.shards {
			k.runShard(i)
		}
		return
	}
	k.next.Store(0)
	k.wg.Add(len(k.wake))
	for _, c := range k.wake {
		c <- struct{}{}
	}
	k.wg.Wait()
}

// runShard executes the current phase on shard i, timing it when a probe is
// installed. Only the claiming worker touches the shard during the phase, so
// the Processed delta needs no synchronization beyond the probe's own slot.
func (k *ShardedScheduler) runShard(i int) {
	s := k.shards[i]
	if p := k.probe; p != nil {
		t0 := time.Now()
		e0 := s.Processed()
		runPhase(s, k.deadline, k.inclusive)
		p.recordShard(i, time.Since(t0).Nanoseconds(), s.Processed()-e0)
		return
	}
	runPhase(s, k.deadline, k.inclusive)
}

func runPhase(s *Scheduler, deadline int64, inclusive bool) {
	if inclusive {
		s.RunUntil(deadline)
	} else {
		s.RunBefore(deadline)
	}
}

// startWorkers spins up the persistent phase workers. Shards are claimed
// through an atomic counter, so any worker may run any shard: shard state
// isolation makes the outcome independent of the assignment.
func (k *ShardedScheduler) startWorkers() {
	k.wake = make([]chan struct{}, k.workers)
	for i := range k.wake {
		c := make(chan struct{}, 1)
		k.wake[i] = c
		go func() {
			for range c {
				for {
					i := int(k.next.Add(1)) - 1
					if i >= len(k.shards) {
						break
					}
					k.runShard(i)
				}
				k.wg.Done()
			}
		}()
	}
}

func (k *ShardedScheduler) stopWorkers() {
	for _, c := range k.wake {
		close(c)
	}
	k.wake = nil
}
