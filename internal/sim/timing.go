package sim

import "sync/atomic"

// Timing is the kernel's phase-timing probe: per-shard execute wall time and
// event counts, aggregate barrier wall time, window count, and the queue
// depth / virtual clock / total events observed at the latest barrier.
// Install with ShardedScheduler.SetProbe.
//
// The probe reads the wall clock but never feeds anything back into the
// kernel, so an instrumented run stays bit-identical to an uninstrumented
// one (the determinism contract of DESIGN.md §5 is about simulation output,
// which wall time is not part of). All fields are atomic: shard workers
// write their own padded slots mid-window and the barrier fields are written
// single-threaded, while an HTTP goroutine may read everything mid-run.
type Timing struct {
	barrierNs atomic.Int64
	windows   atomic.Int64
	events    atomic.Uint64 // total processed, stored at each barrier
	pending   atomic.Int64  // queue depth at the latest barrier
	virtualMs atomic.Int64  // virtual clock at the latest barrier
	exec      []execSlot

	// samples is a bounded ring of per-window phase samples (deltas between
	// consecutive barriers), feeding the flight recorder's kernel swimlane.
	// It is written only from barrier context (single-threaded) and must be
	// read only from barrier context or after the run — unlike the atomic
	// aggregates above it is not safe for mid-run HTTP readers.
	samples    []WindowSample
	sampleNext int
	sampleN    int
	prevExecNs int64
	prevBarNs  int64
	prevEvents uint64
}

// WindowSample is one lookahead window's phase timings: the virtual clock at
// its closing barrier, total shard CPU and barrier wall time spent since the
// previous sample, and events executed in between.
type WindowSample struct {
	VirtualMs int64  `json:"virtual_ms"`
	ExecNs    int64  `json:"exec_ns"`
	BarrierNs int64  `json:"barrier_ns"`
	Events    uint64 `json:"events"`
}

// maxWindowSamples bounds the phase-sample ring; at the default 50 ms window
// this covers the last ~13 virtual seconds of kernel behaviour.
const maxWindowSamples = 256

// execSlot is one shard's execute-phase accumulator, padded so parallel
// shards never share a cache line.
type execSlot struct {
	ns     atomic.Int64
	events atomic.Uint64
	_      [cacheLinePad]byte
}

const cacheLinePad = 64 - 16

// NewTiming creates a probe for a kernel with the given shard count.
func NewTiming(shards int) *Timing {
	if shards < 1 {
		panic("sim: NewTiming needs at least one shard")
	}
	return &Timing{exec: make([]execSlot, shards)}
}

// Shards returns the shard count the probe was sized for.
func (t *Timing) Shards() int { return len(t.exec) }

// ShardExecNs returns shard i's accumulated execute-phase wall time.
func (t *Timing) ShardExecNs(i int) int64 { return t.exec[i].ns.Load() }

// ShardEvents returns the number of events shard i executed.
func (t *Timing) ShardEvents(i int) uint64 { return t.exec[i].events.Load() }

// ExecNs returns the execute-phase wall time summed across shards. With
// parallel workers it exceeds the elapsed wall time — it is total shard CPU.
func (t *Timing) ExecNs() int64 {
	var total int64
	for i := range t.exec {
		total += t.exec[i].ns.Load()
	}
	return total
}

// BarrierNs returns the accumulated single-threaded barrier wall time
// (global events plus the host's mailbox drain).
func (t *Timing) BarrierNs() int64 { return t.barrierNs.Load() }

// Windows returns the number of lookahead windows executed so far.
func (t *Timing) Windows() int64 { return t.windows.Load() }

// Events returns the total events processed as of the latest barrier.
func (t *Timing) Events() uint64 { return t.events.Load() }

// PendingEvents returns the kernel queue depth at the latest barrier.
func (t *Timing) PendingEvents() int64 { return t.pending.Load() }

// VirtualMs returns the virtual clock at the latest barrier.
func (t *Timing) VirtualMs() int64 { return t.virtualMs.Load() }

func (t *Timing) recordShard(i int, ns int64, events uint64) {
	t.exec[i].ns.Add(ns)
	t.exec[i].events.Add(events)
}

func (t *Timing) recordBarrier(ns, virtualMs, pending int64, processed uint64) {
	t.barrierNs.Add(ns)
	t.virtualMs.Store(virtualMs)
	t.pending.Store(pending)
	t.events.Store(processed)

	if t.samples == nil {
		t.samples = make([]WindowSample, maxWindowSamples)
	}
	execNs := t.ExecNs()
	barNs := t.BarrierNs()
	t.samples[t.sampleNext] = WindowSample{
		VirtualMs: virtualMs,
		ExecNs:    execNs - t.prevExecNs,
		BarrierNs: barNs - t.prevBarNs,
		Events:    processed - t.prevEvents,
	}
	t.prevExecNs, t.prevBarNs, t.prevEvents = execNs, barNs, processed
	t.sampleNext = (t.sampleNext + 1) % len(t.samples)
	if t.sampleN < len(t.samples) {
		t.sampleN++
	}
}

// WindowSamples returns the most recent per-window phase samples, oldest
// first. Call only from barrier context (a global event) or after the run;
// mid-run callers on other goroutines would race the barrier writer.
func (t *Timing) WindowSamples() []WindowSample {
	out := make([]WindowSample, 0, t.sampleN)
	start := t.sampleNext - t.sampleN
	if start < 0 {
		start += len(t.samples)
	}
	for i := 0; i < t.sampleN; i++ {
		out = append(out, t.samples[(start+i)%len(t.samples)])
	}
	return out
}

func (t *Timing) recordWindow() { t.windows.Add(1) }
