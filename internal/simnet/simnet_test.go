package simnet

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/sim"
	"repro/internal/view"
	"repro/internal/wire"
)

const (
	holeTimeout = 90_000
	latency     = 50
)

func nylonFactory(seed int64) EngineFactory {
	return func(self view.Descriptor) core.Engine {
		return core.NewNylon(core.Config{
			Self:         self,
			ViewSize:     8,
			Selection:    view.SelectRand,
			Merge:        view.MergeHealer,
			PushPull:     true,
			HoleTimeout:  holeTimeout,
			LatencyBound: 2 * latency,
			RNG:          rand.New(rand.NewSource(seed)),
		})
	}
}

func genericFactory(seed int64) EngineFactory {
	return func(self view.Descriptor) core.Engine {
		return core.NewGeneric(core.Config{
			Self:      self,
			ViewSize:  8,
			Selection: view.SelectRand,
			Merge:     view.MergeHealer,
			PushPull:  true,
			RNG:       rand.New(rand.NewSource(seed)),
		})
	}
}

func newNet() (*sim.Scheduler, *Network) {
	sched := &sim.Scheduler{}
	return sched, New(sched, latency)
}

func TestPublicPeersExchangeDirectly(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	b := net.AddPeer(2, ident.Public, holeTimeout, genericFactory(2))
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{b.Descriptor()})

	net.Tick(a)
	sched.RunUntil(1000)

	if !b.Engine.View().Contains(1) {
		t.Error("responder never learned initiator")
	}
	if a.Engine.Stats().ShufflesCompleted != 1 {
		t.Error("initiator did not complete the shuffle")
	}
	if a.BytesSent == 0 || b.BytesRecv == 0 || b.BytesSent == 0 || a.BytesRecv == 0 {
		t.Errorf("byte accounting missing: a=%d/%d b=%d/%d", a.BytesSent, a.BytesRecv, b.BytesSent, b.BytesRecv)
	}
	if a.BytesSent != b.BytesRecv || b.BytesSent != a.BytesRecv {
		t.Errorf("sent/received mismatch: a=%d/%d b=%d/%d", a.BytesSent, a.BytesRecv, b.BytesSent, b.BytesRecv)
	}
}

// TestBaselineDroppedAtNAT shows the pathology of Section 3: a NAT-oblivious
// REQUEST to a natted peer with no filtering rule is silently eaten.
func TestBaselineDroppedAtNAT(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	b := net.AddPeer(2, ident.PortRestrictedCone, holeTimeout, genericFactory(2))
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{b.Descriptor()})

	net.Tick(a)
	sched.RunUntil(1000)

	if b.MsgsRecv != 0 {
		t.Errorf("natted peer received %d datagrams, want 0", b.MsgsRecv)
	}
	if net.Drops().NATFiltered != 1 {
		t.Errorf("NATFiltered = %d, want 1", net.Drops().NATFiltered)
	}
	if a.Engine.Stats().ShufflesCompleted != 0 {
		t.Error("initiator claims completion despite drop")
	}
}

// TestInstallHoleMakesBootstrapUsable verifies the join-handshake helper.
func TestInstallHoleMakesBootstrapUsable(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	b := net.AddPeer(2, ident.PortRestrictedCone, holeTimeout, genericFactory(2))
	net.InstallHole(a, b)
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{b.Descriptor()})

	net.Tick(a)
	sched.RunUntil(1000)

	if b.MsgsRecv != 1 {
		t.Errorf("natted peer received %d datagrams, want 1", b.MsgsRecv)
	}
	if a.Engine.Stats().ShufflesCompleted != 1 {
		t.Error("shuffle through installed hole did not complete")
	}
}

// TestNylonHolePunchEndToEnd runs the full Fig. 5 scenario over real NAT
// devices: n4 punches a hole to n1 through the chain n3 → n2.
func TestNylonHolePunchEndToEnd(t *testing.T) {
	sched, net := newNet()
	n1 := net.AddPeer(1, ident.RestrictedCone, holeTimeout, nylonFactory(1))
	n2 := net.AddPeer(2, ident.RestrictedCone, holeTimeout, nylonFactory(2))
	n3 := net.AddPeer(3, ident.RestrictedCone, holeTimeout, nylonFactory(3))
	n4 := net.AddPeer(4, ident.PortRestrictedCone, holeTimeout, nylonFactory(4))

	// Holes along the chain, as successive shuffles would have left them:
	// n1<->n2, n2<->n3, n3<->n4.
	for _, pair := range [][2]*Peer{{n1, n2}, {n2, n3}, {n3, n4}} {
		net.InstallHole(pair[0], pair[1])
	}
	e1, e2, e3, e4 := n1.Engine.(*core.Nylon), n2.Engine.(*core.Nylon), n3.Engine.(*core.Nylon), n4.Engine.(*core.Nylon)
	e2.Routes().SetDirect(n1.Descriptor(), holeTimeout)
	e2.Routes().SetDirect(n3.Descriptor(), holeTimeout)
	e3.Routes().SetDirect(n2.Descriptor(), holeTimeout)
	e3.Routes().SetDirect(n4.Descriptor(), holeTimeout)
	e4.Routes().SetDirect(n3.Descriptor(), holeTimeout)
	// Routing chain toward n1: n4 via n3, n3 via n2, n2 direct.
	e4.Routes().Set(1, n3.Descriptor(), holeTimeout)
	e3.Routes().Set(1, n2.Descriptor(), holeTimeout)
	// n4's view contains only n1, so the shuffle targets it.
	e4.View().Add(n1.Descriptor())
	_ = e1

	net.Tick(n4)
	sched.RunUntil(10_000)

	if got := n4.Engine.Stats().HolePunchesCompleted; got != 1 {
		t.Fatalf("hole punch did not complete: %d (drops: %+v)", got, net.Drops())
	}
	if n4.Engine.Stats().ShufflesCompleted != 1 {
		t.Error("shuffle after punch did not complete")
	}
	if !n1.Engine.View().Contains(4) {
		t.Error("target never merged the initiator")
	}
	// Chain length observed at n1: OPEN_HOLE traveled n4→n3→n2→n1 = 2
	// forwards + initial RVP = 3 RVPs.
	st := n1.Engine.Stats()
	if st.ChainSamples != 1 || st.ChainHopsTotal != 3 {
		t.Errorf("chain sample = %d/%d, want 3/1", st.ChainHopsTotal, st.ChainSamples)
	}
	// Relays carried load.
	if n2.Engine.Stats().Forwarded != 1 || n3.Engine.Stats().Forwarded != 1 {
		t.Errorf("forward counts: n2=%d n3=%d, want 1/1", n2.Engine.Stats().Forwarded, n3.Engine.Stats().Forwarded)
	}
	// After the punch, n4 and n1 hold mutual direct routes.
	if !e4.Routes().Direct(1, sched.Now()) {
		t.Error("n4 lacks direct route to n1 after punch")
	}
	if !e1.Routes().Direct(4, sched.Now()) {
		t.Error("n1 lacks direct route to n4 after punch")
	}
}

// TestNylonSymmetricRelayEndToEnd checks that a symmetric initiator completes
// a relayed shuffle with a natted target over real devices.
func TestNylonSymmetricRelayEndToEnd(t *testing.T) {
	sched, net := newNet()
	s := net.AddPeer(1, ident.Symmetric, holeTimeout, nylonFactory(1))
	r := net.AddPeer(2, ident.Public, holeTimeout, nylonFactory(2))
	tgt := net.AddPeer(3, ident.RestrictedCone, holeTimeout, nylonFactory(3))

	net.InstallHole(s, r)
	net.InstallHole(r, tgt)
	es, er := s.Engine.(*core.Nylon), r.Engine.(*core.Nylon)
	er.Routes().SetDirect(tgt.Descriptor(), holeTimeout)
	es.Routes().Set(3, r.Descriptor(), holeTimeout)
	es.View().Add(tgt.Descriptor())

	net.Tick(s)
	sched.RunUntil(10_000)

	if s.Engine.Stats().ShufflesCompleted != 1 {
		t.Fatalf("symmetric relayed shuffle did not complete (drops %+v)", net.Drops())
	}
	if !tgt.Engine.View().Contains(1) {
		t.Error("target did not merge the symmetric initiator")
	}
	if r.Engine.Stats().Forwarded == 0 {
		t.Error("relay forwarded nothing")
	}
}

func TestKillDropsTraffic(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	b := net.AddPeer(2, ident.Public, holeTimeout, genericFactory(2))
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{b.Descriptor()})
	net.Kill(2)
	net.Tick(a)
	sched.RunUntil(1000)
	if net.Drops().DeadPeer != 1 {
		t.Errorf("DeadPeer drops = %d, want 1", net.Drops().DeadPeer)
	}
	if a.Engine.Stats().ShufflesCompleted != 0 {
		t.Error("shuffle with dead peer completed")
	}
	// Ticking a dead peer is a no-op.
	net.Tick(b)
	if b.MsgsSent != 0 {
		t.Error("dead peer sent messages")
	}
}

func TestReachableSemantics(t *testing.T) {
	sched, net := newNet()
	q := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	p := net.AddPeer(2, ident.PortRestrictedCone, holeTimeout, genericFactory(2))
	pub := net.AddPeer(3, ident.Public, holeTimeout, genericFactory(3))

	now := sched.Now()
	if !net.Reachable(now, q, pub.Descriptor()) {
		t.Error("public peer unreachable")
	}
	if net.Reachable(now, q, p.Descriptor()) {
		t.Error("natted peer reachable without rule")
	}
	// After p contacts q, q can reach p (PRC admits exact endpoint).
	p.Device.Outbound(now, p.Priv, q.Addr)
	if !net.Reachable(now, q, p.Descriptor()) {
		t.Error("natted peer unreachable despite rule toward q")
	}
	// But another public peer still cannot.
	if net.Reachable(now, pub, p.Descriptor()) {
		t.Error("rule leaked to unrelated peer")
	}
	// The rule dies with time.
	sched.RunUntil(now + holeTimeout + 1)
	if net.Reachable(sched.Now(), q, p.Descriptor()) {
		t.Error("reachability survived rule expiry")
	}
}

func TestReachableRestrictedConeByIP(t *testing.T) {
	sched, net := newNet()
	q := net.AddPeer(1, ident.PortRestrictedCone, holeTimeout, genericFactory(1))
	p := net.AddPeer(2, ident.RestrictedCone, holeTimeout, genericFactory(2))
	now := sched.Now()
	// p opened a rule toward q's advertised mapping; RC filters by IP, so
	// q remains reachable→p even though q's next mapping port is unknown.
	p.Device.Outbound(now, p.Priv, q.Addr)
	if !net.Reachable(now, q, p.Descriptor()) {
		t.Error("RC destination unreachable despite IP rule")
	}
}

func TestDuplicatePeerPanics(t *testing.T) {
	_, net := newNet()
	net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate AddPeer did not panic")
		}
	}()
	net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
}

func TestUnknownAddressDrop(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	msg := &wire.Message{Kind: wire.KindPing, Src: a.Descriptor(), Dst: a.Descriptor(), Via: a.Descriptor()}
	net.Send(a, core.Send{To: ident.Endpoint{IP: 0x7e000001, Port: 1}, ToID: 99, Msg: msg})
	sched.RunUntil(1000)
	if net.Drops().NoSuchAddr != 1 {
		t.Errorf("NoSuchAddr = %d, want 1", net.Drops().NoSuchAddr)
	}
}

func TestOwnerOfIP(t *testing.T) {
	_, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	b := net.AddPeer(2, ident.Symmetric, holeTimeout, genericFactory(2))
	if got, ok := net.OwnerOfIP(a.Addr.IP); !ok || got != a {
		t.Error("public owner lookup failed")
	}
	if got, ok := net.OwnerOfIP(b.Device.PublicIP()); !ok || got != b {
		t.Error("device owner lookup failed")
	}
	if _, ok := net.OwnerOfIP(0x7e000001); ok {
		t.Error("unknown IP had an owner")
	}
}

// TestFullConeBehavesLikePublic verifies §2.2's observation: a full-cone
// peer with a live mapping accepts unsolicited traffic from anyone.
func TestFullConeBehavesLikePublic(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	fc := net.AddPeer(2, ident.FullCone, holeTimeout, genericFactory(2))
	// The join handshake allocated fc's mapping; a never contacted fc.
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{fc.Descriptor()})
	net.Tick(a)
	sched.RunUntil(1000)
	if fc.MsgsRecv != 1 {
		t.Errorf("full-cone peer received %d datagrams, want 1", fc.MsgsRecv)
	}
	if a.Engine.Stats().ShufflesCompleted != 1 {
		t.Error("shuffle with full-cone peer failed")
	}
	// But the mapping must be alive: after the rule TTL it goes dark (the
	// device still owns the IP, so the drop counts as NAT-filtered).
	sched.RunUntil(sched.Now() + 2*holeTimeout)
	before := net.Drops().NATFiltered
	net.Tick(a)
	sched.RunUntil(sched.Now() + 1000)
	if net.Drops().NATFiltered != before+1 {
		t.Errorf("expired full-cone mapping still routed (drops %d -> %d)", before, net.Drops().NATFiltered)
	}
}

// TestUPnPPeerAcceptsUnsolicited verifies the NAT-PMP/UPnP pinhole: a natted
// peer with an explicit port mapping is reachable like a public one, forever.
func TestUPnPPeerAcceptsUnsolicited(t *testing.T) {
	sched, net := newNet()
	a := net.AddPeer(1, ident.Public, holeTimeout, genericFactory(1))
	u := net.AddPeerUPnP(2, ident.PortRestrictedCone, holeTimeout, genericFactory(2))
	if u.Descriptor().Class != ident.Public {
		t.Fatalf("UPnP peer advertises %v, want public", u.Descriptor().Class)
	}
	a.Engine.(*core.Generic).Bootstrap([]view.Descriptor{u.Descriptor()})

	net.Tick(a)
	sched.RunUntil(1000)
	if a.Engine.Stats().ShufflesCompleted != 1 {
		t.Fatal("shuffle with UPnP peer failed")
	}
	// Unlike a full-cone mapping, a pinhole survives arbitrary idleness.
	sched.RunUntil(sched.Now() + 10*holeTimeout)
	net.Tick(a)
	sched.RunUntil(sched.Now() + 1000)
	if a.Engine.Stats().ShufflesCompleted != 2 {
		t.Error("pinhole expired; UPnP mapping must be permanent")
	}
	if !net.Reachable(sched.Now(), a, u.Descriptor()) {
		t.Error("Reachable reports UPnP peer unreachable")
	}
}

func TestAddPeerUPnPValidation(t *testing.T) {
	_, net := newNet()
	defer func() {
		if recover() == nil {
			t.Fatal("AddPeerUPnP accepted a public class")
		}
	}()
	net.AddPeerUPnP(1, ident.Public, holeTimeout, genericFactory(1))
}

// TestPeerIndexGrowthAndAdversarialIDs exercises the flat ID→slot index that
// replaced the peer map: dense sequential IDs across many growth cycles plus
// IDs crafted to collide in the index's fingerprint home slots must all
// resolve, and misses must stay misses.
func TestPeerIndexGrowthAndAdversarialIDs(t *testing.T) {
	var sched sim.Scheduler
	n := New(&sched, 50)
	factory := func(self view.Descriptor) core.Engine {
		return core.NewGeneric(core.Config{
			Self: self, ViewSize: 4, RNG: rand.New(rand.NewSource(int64(self.ID))),
		})
	}
	var ids []ident.NodeID
	// Dense block (forces several index growths and slab chunk rollovers)...
	for id := uint64(1); id <= 2000; id++ {
		ids = append(ids, ident.NodeID(id))
	}
	// ...then adversarial IDs: high-bit patterns that cluster under the
	// Fibonacci fingerprint's home slot for small table sizes.
	for i := uint64(0); i < 300; i++ {
		ids = append(ids, ident.NodeID(i<<40|0xdead))
	}
	for _, id := range ids {
		class := ident.Public
		if id%3 == 0 {
			class = ident.PortRestrictedCone
		}
		n.AddPeer(id, class, 90_000, factory)
	}
	if n.PeerCount() != len(ids) {
		t.Fatalf("PeerCount = %d, want %d", n.PeerCount(), len(ids))
	}
	for _, id := range ids {
		p := n.Peer(id)
		if p == nil || p.ID != id {
			t.Fatalf("Peer(%v) = %v after growth", id, p)
		}
	}
	// Misses: never-added IDs, including ones adjacent to adversarial keys.
	for _, id := range []ident.NodeID{3000, 1 << 50, 5<<40 | 0xdeae} {
		if p := n.Peer(id); p != nil {
			t.Fatalf("Peer(%v) = %v, want nil", id, p)
		}
	}
	// Slab addresses must be stable: re-resolve the first peer and mutate
	// through the old pointer.
	first := n.Peer(ids[0])
	first.BytesSent = 42
	if n.Peer(ids[0]).BytesSent != 42 {
		t.Fatal("slab pointer not stable across growth")
	}
}
