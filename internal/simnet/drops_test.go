package simnet

import (
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/trace"
	"repro/internal/wire"
)

// TestDropStatFields pins the reflection contract of Drops(): every entry
// of the trace.DropCauses taxonomy table names a real uint64 DropStats
// field, no two causes share a field, and no DropStats field is left
// uncovered. Drops() sets the fields by name, so a rename on either side
// must fail here rather than panic at runtime.
func TestDropStatFields(t *testing.T) {
	typ := reflect.TypeOf(DropStats{})
	seen := make(map[string]bool)
	for _, info := range trace.DropCauses {
		f, ok := typ.FieldByName(info.StatField)
		if !ok {
			t.Fatalf("DropCauses[%s]: DropStats has no field %q", info.OpName, info.StatField)
		}
		if f.Type.Kind() != reflect.Uint64 {
			t.Fatalf("DropStats.%s is %v, want uint64", info.StatField, f.Type)
		}
		if seen[info.StatField] {
			t.Fatalf("DropStats.%s claimed by two drop causes", info.StatField)
		}
		seen[info.StatField] = true
	}
	if typ.NumField() != int(trace.NumDropCauses) {
		t.Fatalf("DropStats has %d fields but the taxonomy declares %d causes — a field is untracked",
			typ.NumField(), trace.NumDropCauses)
	}
}

// TestTraceDisabledZeroAlloc locks in that the tracing hook costs nothing
// when no recorder is installed: the hot delivery path calls sh.trace on
// every datagram, and with a nil ring the call must allocate nothing (and
// touch nothing beyond the nil check). This is what lets tracing stay
// compiled into the 1k-peer benchmark path without moving its guards.
func TestTraceDisabledZeroAlloc(t *testing.T) {
	sh := &netShard{} // tr == nil: the disabled configuration
	msg := wire.NewMessage()
	defer msg.Release()
	from := ident.Endpoint{IP: 1, Port: 1}
	to := ident.Endpoint{IP: 2, Port: 2}
	allocs := testing.AllocsPerRun(1000, func() {
		sh.trace(trace.OpSend, from, to, msg, 62)
		sh.trace(trace.OpDeliver, from, to, msg, 62)
	})
	if allocs != 0 {
		t.Fatalf("disabled trace hook allocates %.1f times per event, want 0", allocs)
	}
}
