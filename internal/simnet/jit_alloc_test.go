package simnet

import (
	"math/rand"
	"sort"
	"testing"
)

// TestJitHeapZeroAllocs locks in the arena property of the link-delay heap:
// once the backing slice has grown to its working size, staging and firing
// jittered deliveries allocates nothing. A regression here would put an
// allocation on every jittered datagram of a lossy-link run.
func TestJitHeapZeroAllocs(t *testing.T) {
	var h jitHeap
	// Warm the slice to its steady-state capacity.
	for i := 0; i < 256; i++ {
		h.push(jitEntry{at: int64(i % 31), seq: uint64(i)})
	}
	for len(h) > 0 {
		h.pop()
	}
	allocs := testing.AllocsPerRun(1000, func() {
		h.push(jitEntry{at: 3, seq: 1})
		h.push(jitEntry{at: 1, seq: 2})
		h.push(jitEntry{at: 2, seq: 3})
		h.pop()
		h.pop()
		h.pop()
	})
	if allocs != 0 {
		t.Errorf("jit heap push+pop allocates %.1f times per round, want 0", allocs)
	}
}

// TestJitHeapOrdering pops a large randomized batch and checks the heap
// yields entries in exactly the scheduler's event order (at, actor, seq) —
// the property that lets jittered deliveries share one reused callback.
func TestJitHeapOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 4000
	var h jitHeap
	want := make([]jitEntry, 0, n)
	for i := 0; i < n; i++ {
		e := jitEntry{
			at:    int64(rng.Intn(53)), // dense: plenty of equal-time ties
			actor: uint64(rng.Intn(7)),
			seq:   uint64(i),
		}
		want = append(want, e)
		h.push(e)
	}
	sort.Slice(want, func(a, b int) bool { return jitLess(&want[a], &want[b]) })
	for i := range want {
		got := h.pop()
		if got.at != want[i].at || got.actor != want[i].actor || got.seq != want[i].seq {
			t.Fatalf("pop %d: got (%d,%d,%d), want (%d,%d,%d)",
				i, got.at, got.actor, got.seq, want[i].at, want[i].actor, want[i].seq)
		}
	}
	if len(h) != 0 {
		t.Fatalf("heap not empty after draining: %d left", len(h))
	}
}
