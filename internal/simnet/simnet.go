// Package simnet is the simulated UDP network of the reproduction: it
// connects protocol engines through NAT devices with a fixed one-way latency,
// and accounts every byte sent and received per peer (the measurement behind
// Figures 7 and 8 of the paper).
//
// The model matches the paper's experimental setup (§5): event-driven, one
// peer per NAT device, message latency 50 ms by default, and NAT rules that
// expire 90 s after the last activity. Datagrams addressed to a natted peer
// traverse its NAT device, which admits or silently drops them according to
// its class and current filtering rules.
//
// Scenario runs may perturb the base model through a LinkPolicy (per-datagram
// latency jitter and probabilistic loss) and a partition mask (cross-side
// deliveries dropped at the cut). Without them the network stays on the
// constant-latency, allocation-free delivery lane.
package simnet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/nat"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/view"
	"repro/internal/wire"
)

// Peer is one simulated node: an engine plus its network attachment.
type Peer struct {
	ID    ident.NodeID
	Class ident.NATClass
	// Advertised is the class the peer's descriptor carries. It equals
	// Class except for UPnP/NAT-PMP peers, which sit behind a NAT but are
	// publicly reachable through an explicit port mapping and therefore
	// advertise Public.
	Advertised ident.NATClass
	Priv       ident.Endpoint // private endpoint (equals Addr for public peers)
	Addr       ident.Endpoint // advertised contact endpoint
	Device     *nat.Device    // nil for public peers
	Engine     core.Engine
	Alive      bool
	// Side is the peer's partition side. It only matters while a
	// partition is active (see SetPartitionActive): deliveries between
	// peers on different sides are dropped.
	Side uint8

	// Traffic counters, in bytes and datagrams. Sent counts every datagram
	// the engine emitted; Recv counts only datagrams actually delivered
	// (NAT drops never reach the peer).
	BytesSent, BytesRecv uint64
	MsgsSent, MsgsRecv   uint64
}

// Descriptor returns the peer's self-descriptor (age zero).
func (p *Peer) Descriptor() view.Descriptor {
	return view.Descriptor{ID: p.ID, Addr: p.Addr, Class: p.Advertised}
}

// DropStats counts datagrams that never reached an engine, by cause.
type DropStats struct {
	// NATFiltered datagrams were refused by the destination NAT device.
	NATFiltered uint64
	// NoSuchAddr datagrams targeted an endpoint no live mapping or public
	// peer owns (e.g. an expired mapping).
	NoSuchAddr uint64
	// DeadPeer datagrams reached a departed peer.
	DeadPeer uint64
	// LinkLost datagrams were lost in flight by the link model.
	LinkLost uint64
	// Partitioned datagrams were dropped at a partition cut.
	Partitioned uint64
}

// LinkPolicy perturbs individual datagram transmissions: a scenario's link
// model implements it to add per-datagram latency jitter and probabilistic
// loss. Transmit is consulted once per datagram at send time and returns the
// extra one-way delay in milliseconds (≥ 0) and whether the datagram is lost
// in flight. Implementations draw all randomness from their own
// deterministic stream; the network calls Transmit in a deterministic order,
// so runs stay reproducible.
type LinkPolicy interface {
	Transmit(now int64, srcEP, to ident.Endpoint, size uint64) (extraDelayMs int64, drop bool)
}

// Network is the simulated network. It is not safe for concurrent use; all
// access happens from scheduler callbacks.
type Network struct {
	sched   *sim.Scheduler
	latency int64

	peers map[ident.NodeID]*Peer
	// The simulator allocates public and private IPs densely from fixed
	// bases, so endpoint resolution indexes two slot arrays instead of
	// hashing endpoints — a measurable win on the per-datagram hot path.
	// pubs[ip-pubIPBase] holds whichever owns the public IP: a public peer
	// or a NAT device (never both); privs[ip-privIPBase] holds the natted
	// peer behind each private IP.
	pubs  []pubSlot
	privs []*Peer

	nextPublicIP  uint32
	nextPrivateIP uint32

	// In-flight datagrams wait in a FIFO ring and fire through the
	// scheduler's lane (one-way latency is constant, so deliveries
	// complete in exactly the order they were enqueued): transmitting a
	// datagram allocates nothing and never touches the event heap.
	//
	// Datagrams the link policy delays beyond the base latency are the
	// exception: their fire times are not monotone, so they go through
	// the scheduler's heap instead (see Send).
	inflight sim.Ring[delivery]

	// policy, when non-nil, perturbs transmissions (jitter, loss). The
	// nil-policy path is the allocation-free fast path.
	policy LinkPolicy
	// partitionOn activates the partition mask: deliveries between peers
	// whose Side differs are dropped at the cut.
	partitionOn bool

	Drops DropStats
	// Trace, when non-nil, records every transmission, delivery and drop.
	Trace *trace.Ring
}

// delivery is one in-flight datagram.
type delivery struct {
	srcEP, to ident.Endpoint
	msg       *wire.Message
	size      uint64
}

// bootstrapDst is the well-known endpoint natted peers "contact" at join time
// to allocate their first NAT mapping, standing in for a STUN-style
// introducer.
var bootstrapDst = ident.Endpoint{IP: 0x7f000001, Port: 3478}

// IP allocation bases: 1.0.0.0/8 hosts public peers and NAT boxes,
// 10.0.0.0/8 hosts private endpoints.
const (
	pubIPBase  = 0x01000001
	privIPBase = 0x0a000001
)

// pubSlot is the owner of one public IP.
type pubSlot struct {
	peer  *Peer       // public peer owning the IP directly, or nil
	dev   *nat.Device // NAT device owning the IP, or nil
	owner *Peer       // the peer behind dev
}

func (n *Network) pubSlotFor(ip ident.IP) *pubSlot {
	i := int(uint32(ip) - pubIPBase)
	if i < 0 || i >= len(n.pubs) {
		return nil
	}
	return &n.pubs[i]
}

// publicPeerAt returns the public peer owning exactly the endpoint ep.
func (n *Network) publicPeerAt(ep ident.Endpoint) *Peer {
	if s := n.pubSlotFor(ep.IP); s != nil && s.peer != nil && s.peer.Addr == ep {
		return s.peer
	}
	return nil
}

// deviceAt returns the NAT device owning the public IP, or nil.
func (n *Network) deviceAt(ip ident.IP) *nat.Device {
	if s := n.pubSlotFor(ip); s != nil {
		return s.dev
	}
	return nil
}

// privatePeerAt returns the natted peer owning exactly the private endpoint.
func (n *Network) privatePeerAt(ep ident.Endpoint) *Peer {
	i := int(uint32(ep.IP) - privIPBase)
	if i < 0 || i >= len(n.privs) {
		return nil
	}
	if p := n.privs[i]; p != nil && p.Priv == ep {
		return p
	}
	return nil
}

// New creates an empty network driven by the given scheduler with the given
// one-way latency in milliseconds.
func New(sched *sim.Scheduler, latencyMs int64) *Network {
	if latencyMs < 0 {
		panic("simnet: negative latency")
	}
	n := &Network{
		sched:         sched,
		latency:       latencyMs,
		peers:         make(map[ident.NodeID]*Peer),
		nextPublicIP:  pubIPBase,
		nextPrivateIP: privIPBase,
	}
	sched.SetLaneFn(n.deliverNext)
	return n
}

// Latency returns the one-way delivery latency in milliseconds.
func (n *Network) Latency() int64 { return n.latency }

// SetLinkPolicy installs (or, with nil, removes) the transmission
// perturbation policy. With no policy the constant-latency lane fast path is
// used exclusively.
func (n *Network) SetLinkPolicy(p LinkPolicy) { n.policy = p }

// SetPartitionActive toggles the partition mask. Callers assign peers'
// Side fields before activating; healing deactivates the mask (sides may be
// left as-is, they are ignored while inactive).
func (n *Network) SetPartitionActive(active bool) { n.partitionOn = active }

// PartitionActive reports whether a partition is in force.
func (n *Network) PartitionActive() bool { return n.partitionOn }

// Scheduler returns the scheduler driving the network.
func (n *Network) Scheduler() *sim.Scheduler { return n.sched }

// EngineFactory builds a peer's engine once the network has assigned its
// descriptor.
type EngineFactory func(self view.Descriptor) core.Engine

// AddPeer attaches a new peer of the given NAT class. For natted classes a
// dedicated NAT device is created (one peer per NAT, as in the paper) and the
// peer's advertised endpoint is the mapping allocated by a join-time
// handshake with the bootstrap introducer. ruleTTL is the NAT rule lifetime
// in milliseconds (ignored for public peers).
func (n *Network) AddPeer(id ident.NodeID, class ident.NATClass, ruleTTL int64, f EngineFactory) *Peer {
	if _, dup := n.peers[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate peer %v", id))
	}
	p := &Peer{ID: id, Class: class, Advertised: class, Alive: true}
	if class == ident.Public {
		ip := ident.IP(n.nextPublicIP)
		n.nextPublicIP++
		p.Priv = ident.Endpoint{IP: ip, Port: 9000}
		p.Addr = p.Priv
		n.pubs = append(n.pubs, pubSlot{peer: p})
	} else {
		privIP := ident.IP(n.nextPrivateIP)
		n.nextPrivateIP++
		pubIP := ident.IP(n.nextPublicIP)
		n.nextPublicIP++
		p.Priv = ident.Endpoint{IP: privIP, Port: 9000}
		p.Device = nat.NewDevice(class, pubIP, ruleTTL)
		n.pubs = append(n.pubs, pubSlot{dev: p.Device, owner: p})
		n.privs = append(n.privs, p)
		// Join handshake: allocate the advertised mapping.
		p.Addr = p.Device.Outbound(n.sched.Now(), p.Priv, bootstrapDst)
	}
	p.Engine = f(p.Descriptor())
	n.peers[id] = p
	return p
}

// AddPeerUPnP attaches a natted peer whose NAT device honours an explicit
// port-mapping protocol (NAT-PMP / UPnP IGD, discussed in the paper's
// related work): the advertised endpoint is a permanent pinhole that accepts
// unsolicited traffic, so the peer advertises itself as Public even though
// its outbound traffic still traverses the device.
func (n *Network) AddPeerUPnP(id ident.NodeID, class ident.NATClass, ruleTTL int64, f EngineFactory) *Peer {
	if !class.Natted() {
		panic("simnet: AddPeerUPnP requires a natted class")
	}
	if _, dup := n.peers[id]; dup {
		panic(fmt.Sprintf("simnet: duplicate peer %v", id))
	}
	p := &Peer{ID: id, Class: class, Advertised: ident.Public, Alive: true}
	privIP := ident.IP(n.nextPrivateIP)
	n.nextPrivateIP++
	pubIP := ident.IP(n.nextPublicIP)
	n.nextPublicIP++
	p.Priv = ident.Endpoint{IP: privIP, Port: 9000}
	p.Device = nat.NewDevice(class, pubIP, ruleTTL)
	n.pubs = append(n.pubs, pubSlot{dev: p.Device, owner: p})
	n.privs = append(n.privs, p)
	p.Addr = p.Device.Pinhole(p.Priv)
	p.Engine = f(p.Descriptor())
	n.peers[id] = p
	return p
}

// Peer returns the peer with the given ID, or nil.
func (n *Network) Peer(id ident.NodeID) *Peer { return n.peers[id] }

// Peers returns the peer map. Callers must not mutate it.
func (n *Network) Peers() map[ident.NodeID]*Peer { return n.peers }

// InstallHole simulates a completed join-time handshake between a and b:
// both NAT devices (if any) get filtering rules admitting the other side,
// as if each had sent the other one datagram through an introducer. The
// experiment runners use it to realize the paper's bootstrap, in which
// initial views are usable.
func (n *Network) InstallHole(a, b *Peer) {
	now := n.sched.Now()
	if a.Device != nil {
		a.Device.Outbound(now, a.Priv, b.Addr)
	}
	if b.Device != nil {
		b.Device.Outbound(now, b.Priv, a.Addr)
	}
}

// Kill marks the peer as departed: it stops ticking (the runner checks
// Alive) and every datagram addressed to it is dropped. Its NAT device state
// remains, as a real abandoned NAT box's would.
func (n *Network) Kill(id ident.NodeID) {
	if p := n.peers[id]; p != nil {
		p.Alive = false
	}
}

// Send transmits one engine command from the given peer: the datagram leaves
// through the peer's NAT device (allocating/refreshing the mapping) and is
// delivered — or dropped — one latency later. The network takes ownership of
// the message and recycles it into the wire pool once consumed.
func (n *Network) Send(from *Peer, s core.Send) {
	if !from.Alive {
		s.Msg.Release()
		return
	}
	size := uint64(s.Msg.Size())
	from.BytesSent += size
	from.MsgsSent++

	now := n.sched.Now()
	srcEP := from.Priv
	if from.Device != nil {
		srcEP = from.Device.Outbound(now, from.Priv, s.To)
	}
	if n.Trace != nil {
		n.Trace.Record(trace.Event{At: now, Op: trace.OpSend, From: srcEP, To: s.To, Kind: uint8(s.Msg.Kind), Size: int(size)})
	}
	if n.policy != nil {
		extra, drop := n.policy.Transmit(now, srcEP, s.To, size)
		if drop {
			// In-flight loss, accounted at send time: the sender paid
			// the bytes, nobody receives them.
			n.Drops.LinkLost++
			if n.Trace != nil {
				n.Trace.Record(trace.Event{At: now, Op: trace.OpDropLink, From: srcEP, To: s.To, Kind: uint8(s.Msg.Kind), Size: int(size)})
			}
			s.Msg.Release()
			return
		}
		if extra > 0 {
			// Jittered deliveries are not monotone, so they cannot ride
			// the lane: route through the scheduler's heap. The closure
			// allocates — acceptable, only perturbed datagrams pay it.
			d := delivery{srcEP: srcEP, to: s.To, msg: s.Msg, size: size}
			n.sched.At(now+n.latency+extra, func() {
				n.deliver(d.srcEP, d.to, d.msg, d.size)
				d.msg.Release()
			})
			return
		}
	}
	n.inflight.Push(delivery{srcEP: srcEP, to: s.To, msg: s.Msg, size: size})
	n.sched.LaneAt(now + n.latency)
}

// deliverNext completes the oldest in-flight datagram: with a constant
// latency, delivery events fire in enqueue order, so the queue head is
// always the datagram the event belongs to.
func (n *Network) deliverNext() {
	d := n.inflight.Pop()
	n.deliver(d.srcEP, d.to, d.msg, d.size)
	d.msg.Release()
}

func (n *Network) deliver(srcEP, to ident.Endpoint, msg *wire.Message, size uint64) {
	now := n.sched.Now()
	target, ok := n.resolve(now, srcEP, to)
	if !ok {
		return
	}
	if n.partitionOn {
		// The cut is evaluated at delivery time: datagrams in flight when
		// the partition strikes are swallowed by it too.
		if src, ok := n.OwnerOfIP(srcEP.IP); ok && src.Side != target.Side {
			n.Drops.Partitioned++
			if n.Trace != nil {
				n.Trace.Record(trace.Event{At: now, Op: trace.OpDropPartition, From: srcEP, To: to, Kind: uint8(msg.Kind), Size: int(size)})
			}
			return
		}
	}
	if !target.Alive {
		n.Drops.DeadPeer++
		if n.Trace != nil {
			n.Trace.Record(trace.Event{At: now, Op: trace.OpDropDead, From: srcEP, To: to, Kind: uint8(msg.Kind), Size: int(size)})
		}
		return
	}
	target.BytesRecv += size
	target.MsgsRecv++
	if n.Trace != nil {
		n.Trace.Record(trace.Event{At: now, Op: trace.OpDeliver, From: srcEP, To: to, Kind: uint8(msg.Kind), Size: int(size)})
	}
	outs := target.Engine.Receive(now, srcEP, msg)
	for _, out := range outs {
		n.Send(target, out)
	}
}

// resolve finds the live owner of a destination endpoint, applying NAT
// admission. It updates drop statistics and the trace on failure.
func (n *Network) resolve(now int64, srcEP, to ident.Endpoint) (*Peer, bool) {
	var dev *nat.Device
	if s := n.pubSlotFor(to.IP); s != nil {
		if s.peer != nil && s.peer.Addr == to {
			return s.peer, true
		}
		dev = s.dev
	}
	if dev == nil {
		n.Drops.NoSuchAddr++
		if n.Trace != nil {
			n.Trace.Record(trace.Event{At: now, Op: trace.OpDropAddr, From: srcEP, To: to})
		}
		return nil, false
	}
	priv, ok := dev.Inbound(now, srcEP, to)
	if !ok {
		n.Drops.NATFiltered++
		if n.Trace != nil {
			n.Trace.Record(trace.Event{At: now, Op: trace.OpDropNAT, From: srcEP, To: to})
		}
		return nil, false
	}
	p := n.privatePeerAt(priv)
	if p == nil {
		n.Drops.NoSuchAddr++
		if n.Trace != nil {
			n.Trace.Record(trace.Event{At: now, Op: trace.OpDropAddr, From: srcEP, To: to})
		}
		return nil, false
	}
	return p, true
}

// Tick runs one shuffling period for the peer and transmits the resulting
// messages. The runner schedules it periodically.
func (n *Network) Tick(p *Peer) {
	if !p.Alive {
		return
	}
	for _, s := range p.Engine.Tick(n.sched.Now()) {
		n.Send(p, s)
	}
}

// Reachable reports whether a datagram sent now by q to the descriptor d
// would be admitted by d's NAT (or d is public). It never mutates NAT state:
// it is the paper's "stale reference" test (a reference is stale when
// communication with it is impossible).
func (n *Network) Reachable(now int64, q *Peer, d view.Descriptor) bool {
	if !d.Class.Natted() {
		return true
	}
	dev := n.deviceAt(d.Addr.IP)
	if dev == nil {
		return false
	}
	src, ok := n.wouldSendFrom(now, q, d.Addr)
	if !ok {
		// q would allocate a fresh, unpredictable mapping; only
		// IP-level filters can match it. Model it as port 0, which no
		// installed port-specific rule equals.
		src = ident.Endpoint{IP: n.publicIPOf(q)}
	}
	return dev.WouldAdmit(now, src, d.Addr)
}

// ReachableEndpoint is Reachable for a raw endpoint (e.g. a learned,
// hole-punched mapping rather than an advertised one): it reports whether a
// datagram sent now by q to addr would reach a live mapping or public peer.
func (n *Network) ReachableEndpoint(now int64, q *Peer, addr ident.Endpoint) bool {
	if n.publicPeerAt(addr) != nil {
		return true
	}
	dev := n.deviceAt(addr.IP)
	if dev == nil {
		return false
	}
	src, ok := n.wouldSendFrom(now, q, addr)
	if !ok {
		src = ident.Endpoint{IP: n.publicIPOf(q)}
	}
	return dev.WouldAdmit(now, src, addr)
}

// wouldSendFrom returns the source endpoint q's next datagram toward dst
// would carry, if that can be predicted from live state.
func (n *Network) wouldSendFrom(now int64, q *Peer, dst ident.Endpoint) (ident.Endpoint, bool) {
	if q.Device == nil {
		return q.Priv, true
	}
	return q.Device.PublicMapping(now, q.Priv, dst)
}

func (n *Network) publicIPOf(q *Peer) ident.IP {
	if q.Device != nil {
		return q.Device.PublicIP()
	}
	return q.Priv.IP
}

// OwnerOfIP returns the peer owning the given public IP (either directly or
// through its NAT device), for diagnostics.
func (n *Network) OwnerOfIP(ip ident.IP) (*Peer, bool) {
	s := n.pubSlotFor(ip)
	if s == nil {
		return nil, false
	}
	if s.peer != nil {
		return s.peer, true
	}
	return s.owner, s.owner != nil
}
