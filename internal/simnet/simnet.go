// Package simnet is the simulated UDP network of the reproduction: it
// connects protocol engines through NAT devices with a fixed one-way latency,
// and accounts every byte sent and received per peer (the measurement behind
// Figures 7 and 8 of the paper).
//
// The model matches the paper's experimental setup (§5): event-driven, one
// peer per NAT device, message latency 50 ms by default, and NAT rules that
// expire 90 s after the last activity. Datagrams addressed to a natted peer
// traverse its NAT device, which admits or silently drops them according to
// its class and current filtering rules.
//
// Scenario runs may perturb the base model through a LinkPolicy (per-datagram
// latency jitter and probabilistic loss) and a partition mask (cross-side
// deliveries dropped at the cut). Without them the network stays on the
// constant-latency, allocation-free delivery lane.
//
// The network is sharded to match the kernel it runs on (see
// sim.ShardedScheduler and DESIGN.md §5): peers partition across shards by
// NodeID, each shard owns a constant-latency delivery lane, a wire message
// pool and its own drop counters, and cross-shard traffic stages in per-shard
// outboxes that the kernel's barrier drains in deterministic
// (time, sender, per-sender seq) order. A peer's state — engine, NAT device,
// traffic counters — is touched only by its own shard's events or at
// barriers, so windows run lock-free.
//
// The standalone constructor New attaches a single-shard network directly to
// one sim.Scheduler with immediate (non-staged) delivery; unit tests and
// small hosts drive that exactly as before the kernel existed.
package simnet

import (
	"fmt"
	"reflect"
	"slices"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/intern"
	"repro/internal/nat"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/view"
	"repro/internal/wire"
)

// Peer is one simulated node: an engine plus its network attachment.
type Peer struct {
	ID    ident.NodeID
	Class ident.NATClass
	// Advertised is the class the peer's descriptor carries. It equals
	// Class except for UPnP/NAT-PMP peers, which sit behind a NAT but are
	// publicly reachable through an explicit port mapping and therefore
	// advertise Public.
	Advertised ident.NATClass
	Priv       ident.Endpoint // private endpoint (equals Addr for public peers)
	Addr       ident.Endpoint // advertised contact endpoint
	Device     *nat.Device    // nil for public peers
	Engine     core.Engine
	Alive      bool
	// Side is the peer's partition side. It only matters while a
	// partition is active (see SetPartitionActive): deliveries between
	// peers on different sides are dropped.
	Side uint8
	// Shard is the index of the shard owning the peer (NodeID mod shard
	// count). Only the owning shard's events touch the peer's state
	// between barriers.
	Shard int
	// Seq is the peer's private event counter: every event the peer
	// schedules (a periodic tick, a datagram transmission) draws the next
	// value as its ordering key, making same-time tie-breaks a pure
	// function of the simulated world (see sim.Scheduler.AtKey).
	Seq uint64
	// StampSeq counts the messages the peer originated (hop 0), numbering
	// its causal chains: (ID, StampSeq) names every forwarding chain the
	// peer starts (see internal/trace). Advanced unconditionally at send
	// time so traced and untraced runs stay bit-identical.
	StampSeq uint32

	// Traffic counters, in bytes and datagrams. Sent counts every datagram
	// the engine emitted; Recv counts only datagrams actually delivered
	// (NAT drops never reach the peer).
	BytesSent, BytesRecv uint64
	MsgsSent, MsgsRecv   uint64
}

// Descriptor returns the peer's self-descriptor (age zero).
func (p *Peer) Descriptor() view.Descriptor {
	return view.Descriptor{ID: p.ID, Addr: p.Addr, Class: p.Advertised}
}

// DropStats counts datagrams that never reached an engine, by cause.
type DropStats struct {
	// NATFiltered datagrams were refused by the destination NAT device.
	NATFiltered uint64
	// NoSuchAddr datagrams targeted an endpoint no live mapping or public
	// peer owns (e.g. an expired mapping).
	NoSuchAddr uint64
	// DeadPeer datagrams reached a departed peer.
	DeadPeer uint64
	// LinkLost datagrams were lost in flight by the link model.
	LinkLost uint64
	// Partitioned datagrams were dropped at a partition cut.
	Partitioned uint64
}

// LinkPolicy perturbs individual datagram transmissions: a scenario's link
// model implements it to add per-datagram latency jitter and probabilistic
// loss. Transmit is consulted once per datagram at send time and returns the
// extra one-way delay in milliseconds (≥ 0) and whether the datagram is lost
// in flight. from identifies the sending peer: implementations must draw all
// randomness from deterministic per-sender streams, because under the
// sharded kernel senders on different shards transmit concurrently — only
// the per-sender call order is deterministic, the interleaving across
// senders is not.
type LinkPolicy interface {
	Transmit(now int64, from ident.NodeID, srcEP, to ident.Endpoint, size uint64) (extraDelayMs int64, drop bool)
}

// slab is chunked stable storage for peer-lifetime objects: chunks never
// move once allocated, so pointers into them stay valid while the backing
// memory is contiguous per chunk and costs one allocation per thousands of
// objects instead of one each. Chunks double in size up to a cap, so small
// unit-test networks stay small and million-peer runs stay at a few dozen
// chunks.
type slab[T any] struct {
	chunks [][]T
}

// slabChunk sizing: first chunk, doubling cap.
const (
	slabFirstChunk = 256
	slabMaxChunk   = 65536
)

// alloc returns a pointer to a fresh zero T with a stable address.
func (s *slab[T]) alloc() *T {
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == cap(s.chunks[n-1]) {
		size := slabFirstChunk
		if n > 0 {
			size = 2 * cap(s.chunks[n-1])
			if size > slabMaxChunk {
				size = slabMaxChunk
			}
		}
		s.chunks = append(s.chunks, make([]T, 0, size))
		n++
	}
	c := &s.chunks[n-1]
	*c = append(*c, *new(T))
	return &(*c)[len(*c)-1]
}

// peerIndex is the flat open-addressed NodeID → peer-slot index replacing the
// generic peer map: 8-byte {fingerprint, slot} cells, linear probing, no
// deletion (peers are never removed from a network — departure is Alive =
// false — so the index never needs tombstones).
type peerIndex struct {
	slots []pslot
	used  int
}

// pslot is one cell; slot is 1-based, 0 marks an empty cell.
type pslot struct {
	fp   uint32
	slot int32
}

func peerFP(id ident.NodeID) uint32 {
	return uint32((uint64(id) * 0x9e3779b97f4a7c15) >> 32)
}

// get returns the 0-based peer slot for id, or -1.
func (x *peerIndex) get(id ident.NodeID, bySlot []*Peer) int {
	if len(x.slots) == 0 {
		return -1
	}
	fp := peerFP(id)
	mask := len(x.slots) - 1
	for j := int(fp) & mask; ; j = (j + 1) & mask {
		s := x.slots[j]
		if s.slot == 0 {
			return -1
		}
		if s.fp == fp && bySlot[s.slot-1].ID == id {
			return int(s.slot - 1)
		}
	}
}

// put records id at the given 0-based slot, growing at 2/3 load.
func (x *peerIndex) put(id ident.NodeID, slot int, bySlot []*Peer) {
	if 3*(x.used+1) > 2*len(x.slots) {
		x.grow(bySlot)
	}
	fp := peerFP(id)
	mask := len(x.slots) - 1
	for j := int(fp) & mask; ; j = (j + 1) & mask {
		if x.slots[j].slot == 0 {
			x.slots[j] = pslot{fp: fp, slot: int32(slot + 1)}
			x.used++
			return
		}
	}
}

func (x *peerIndex) grow(bySlot []*Peer) {
	want := 64
	for 3*(x.used+1) > 2*want {
		want *= 2
	}
	x.slots = make([]pslot, want)
	x.used = 0
	mask := want - 1
	for i, p := range bySlot {
		fp := peerFP(p.ID)
		for j := int(fp) & mask; ; j = (j + 1) & mask {
			if x.slots[j].slot == 0 {
				x.slots[j] = pslot{fp: fp, slot: int32(i + 1)}
				x.used++
				break
			}
		}
	}
}

// Network is the simulated network. Global state (the address arrays, the
// peer index) is mutated only at barriers; everything on the per-datagram
// path lives in per-shard state, so shards run lock-free between barriers.
//
// Peer state lives in slot-indexed slab storage rather than a map of
// individually allocated peers: bySlot[i] points into the peer slab (stable
// addresses, contiguous chunks), idx resolves NodeID → slot through a flat
// open-addressed table, and NAT devices sit in their own slab. At 1M peers
// this removes two heap objects per peer plus the map's bucket overhead, and
// keeps neighbouring peers' counters on neighbouring cache lines.
type Network struct {
	kern    *sim.ShardedScheduler // nil in standalone mode
	latency int64

	idx      peerIndex
	bySlot   []*Peer // slot (attachment order) → peer
	peerSlab slab[Peer]
	devSlab  slab[nat.Device]
	// baseIntern holds every peer's advertised descriptor, interned once at
	// attach time (barrier context). Each shard's engine intern table is
	// layered over it, so the shards' tables hold only learned endpoint
	// variants instead of each re-interning the whole population.
	baseIntern *intern.Descriptors
	// The simulator allocates public and private IPs densely from fixed
	// bases, so endpoint resolution indexes two slot arrays instead of
	// hashing endpoints — a measurable win on the per-datagram hot path.
	// pubs[ip-pubIPBase] holds whichever owns the public IP: a public peer
	// or a NAT device (never both); privs[ip-privIPBase] holds the natted
	// peer behind each private IP.
	pubs  []pubSlot
	privs []*Peer

	nextPublicIP  uint32
	nextPrivateIP uint32

	shards []netShard

	// policy, when non-nil, perturbs transmissions (jitter, loss). The
	// nil-policy path is the allocation-free fast path.
	policy LinkPolicy
	// partitionOn activates the partition mask: deliveries between peers
	// whose Side differs are dropped at the cut.
	partitionOn bool

	// traces, when non-nil, records every transmission, delivery and drop
	// into per-shard rings (see SetTrace): each shard writes only its own
	// ring, lock-free, and the rings merge back into the global event order
	// by scheduler key. Works at any worker and shard count.
	traces *trace.Sharded

	// counters, when non-nil, mirrors traffic and drop accounting into a
	// metrics registry for the live ops endpoint (see SetObs).
	counters *NetCounters

	// prefSink accumulates the values loaded by delivery prefetching (see
	// prefetchNext) so the compiler cannot elide the loads. Its value is
	// meaningless and never read.
	prefSink uint64

	// perDatagram disables batched lane delivery: every lane event delivers
	// exactly one datagram, as the pre-batching engine did. The batched and
	// per-datagram paths are bit-identical by construction — LaneContinue
	// only consumes events the scheduler would have dispatched next anyway —
	// and TestBatchedDeliveryInvariance pins that equivalence; the knob
	// exists for that test and for bisecting.
	perDatagram bool
}

// SetPerDatagramDelivery forces one-datagram-per-event delivery dispatch
// (true) or restores batched lane runs (false, the default).
func (n *Network) SetPerDatagramDelivery(v bool) { n.perDatagram = v }

// LeakCheck verifies the wire-message books: every message drawn from the
// shard pools must either have been returned or still be queued for
// delivery (the in-flight ring, the jit heap, or a staged cross-shard run).
// Messages cross shards — drawn on the sender's pool, returned to the
// destination's — so only the summed balance is meaningful. A surplus means
// a delivery path leaked messages; a deficit means a double release.
func (n *Network) LeakCheck() error {
	var bal, queued int64
	for i := range n.shards {
		sh := &n.shards[i]
		bal += sh.pool.Balance()
		queued += int64(sh.inflight.Len()) + int64(len(sh.jit))
		for _, run := range sh.out {
			queued += int64(len(run))
		}
	}
	if bal != queued {
		return fmt.Errorf("simnet: wire pool balance %d with %d datagrams queued (leaked or double-released messages)", bal, queued)
	}
	return nil
}

// netShard is the per-shard half of the network. Only the shard's events
// (and barrier code) touch it.
type netShard struct {
	idx   int
	sched *sim.Scheduler
	// pool recycles wire messages consumed on this shard. It is nil in
	// standalone mode, where the shared wire pool serves (a nil *wire.Pool
	// delegates to it).
	pool *wire.Pool
	// shared is the per-shard engine state (descriptor intern table,
	// exchange scratch) handed to every engine of the shard's peers.
	shared *core.Shared

	// In-flight constant-latency datagrams wait in a FIFO ring and fire
	// through the shard scheduler's lane in exact key order: delivering
	// allocates nothing and never touches the event heap. Datagrams the
	// link policy delays beyond the base latency are the exception: their
	// fire times are not monotone, so they go through the shard's heap.
	inflight sim.Ring[delivery]

	// jit stores link-delayed deliveries inline, ordered by the same
	// (at, actor, seq) key as their scheduler events, so the heap head is
	// always the datagram of the jit event firing now. jitFire is the one
	// reused callback those events carry — replacing the per-datagram
	// closure both in standalone sends and at barrier merges — and jitSeq
	// orders standalone entries the way the scheduler's internal sequence
	// orders their events (both count the same At calls).
	jit     jitHeap
	jitFire func()
	jitSeq  uint64

	// resolvedPriv/resolvedPeer memoize the last NAT-admitted private
	// endpoint → peer resolution. Private endpoints are allocated once and
	// never reassigned, so the memo can never go stale; it turns the
	// back-to-back deliveries of a batched lane run into one lookup.
	resolvedPriv ident.Endpoint
	resolvedPeer *Peer

	// out stages datagrams sent by this shard's peers, one slice per
	// destination shard; the barrier drains them (see flush). outUnsorted
	// flags a run whose keys regressed at append time (link-delayed
	// arrivals): sorted runs merge at the barrier, unsorted ones re-sort.
	// Unused in standalone mode, which delivers immediately.
	out         [][]outEntry
	outUnsorted []bool
	// merge is the barrier's reusable gather-and-sort scratch; runScratch,
	// mergeCur and mergeHeap are the sorted-run merge's reusable cursors.
	merge      []outEntry
	runScratch [][]outEntry
	mergeCur   []int
	mergeHeap  []int32

	// tr is this shard's trace ring (nil when tracing is off — the
	// zero-cost fast path, one nil check per event).
	tr *trace.Ring

	// drops counts dropped datagrams per cause; DropStats and the obs
	// counters are derived from the same trace.DropCauses table.
	drops [trace.NumDropCauses]uint64
}

// trace records one event on the shard's ring, stamped with the scheduler
// key of the event currently executing so per-shard rings merge back into
// the exact global order. No-op (one nil check) when tracing is off.
func (sh *netShard) trace(op trace.Op, from, to ident.Endpoint, msg *wire.Message, size uint64) {
	tr := sh.tr
	if tr == nil {
		return
	}
	actor, seq := sh.sched.CurrentKey()
	tr.Record(trace.Event{
		At:        sh.sched.Now(),
		Actor:     actor,
		Seq:       seq,
		Op:        op,
		Kind:      uint8(msg.Kind),
		Hop:       msg.Hops,
		Src:       msg.Src.ID,
		Dst:       msg.Dst.ID,
		OriginSeq: msg.OriginSeq,
		Path:      msg.PathHash,
		From:      from,
		To:        to,
		Size:      uint32(size),
	})
}

// drop accounts one dropped datagram across all three views of the drop
// taxonomy — the per-cause stats, the obs counter, and the trace — driven
// by the single trace.DropCauses table.
func (n *Network) drop(sh *netShard, cause trace.DropCause, from, to ident.Endpoint, msg *wire.Message, size uint64) {
	sh.drops[cause]++
	if c := n.counters; c != nil {
		c.drops[cause].Inc(sh.idx)
	}
	sh.trace(trace.DropCauses[cause].Op, from, to, msg, size)
}

// jitEntry is one link-delayed delivery waiting in a shard's jit heap.
type jitEntry struct {
	at         int64
	actor, seq uint64
	d          delivery
}

// jitLess orders jit entries exactly like the scheduler orders their events.
func jitLess(a, b *jitEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.actor != b.actor {
		return a.actor < b.actor
	}
	return a.seq < b.seq
}

// jitHeap is a 4-ary min-heap of link-delayed deliveries, mirroring the
// scheduler's inline event heap: entries are stored by value and the backing
// slice is reused across pushes, so a jittered datagram costs no allocation
// beyond amortized growth.
type jitHeap []jitEntry

func (h *jitHeap) push(e jitEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !jitLess(&e, &s[parent]) {
			break
		}
		s[i] = s[parent]
		i = parent
	}
	s[i] = e
}

func (h *jitHeap) pop() jitEntry {
	s := *h
	top := s[0]
	n := len(s) - 1
	e := s[n]
	s[n] = jitEntry{}
	s = s[:n]
	*h = s
	if n > 0 {
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			best := first
			last := min(first+4, n)
			for c := first + 1; c < last; c++ {
				if jitLess(&s[c], &s[best]) {
					best = c
				}
			}
			if !jitLess(&s[best], &e) {
				break
			}
			s[i] = s[best]
			i = best
		}
		s[i] = e
	}
	return top
}

// delivery is one in-flight datagram.
type delivery struct {
	srcEP, to ident.Endpoint
	msg       *wire.Message
	size      uint64
}

// outEntry is one staged cross-barrier datagram: the delivery plus its
// deterministic ordering key and arrival time.
type outEntry struct {
	at         int64 // arrival time, including any link-policy delay
	actor, seq uint64
	jittered   bool // true: arrives later than the base latency → heap
	d          delivery
}

// keyCompare orders staged datagrams by (arrival, sender, per-sender seq) —
// the worker- and shard-count-invariant merge order of the barrier.
func keyCompare(a, b outEntry) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.actor != b.actor:
		if a.actor < b.actor {
			return -1
		}
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// bootstrapDst is the well-known endpoint natted peers "contact" at join time
// to allocate their first NAT mapping, standing in for a STUN-style
// introducer.
var bootstrapDst = ident.Endpoint{IP: 0x7f000001, Port: 3478}

// IP allocation bases: 1.0.0.0/8 hosts public peers and NAT boxes,
// 10.0.0.0/8 hosts private endpoints.
const (
	pubIPBase  = 0x01000001
	privIPBase = 0x0a000001
)

// pubSlot is the owner of one public IP.
type pubSlot struct {
	peer  *Peer       // public peer owning the IP directly, or nil
	dev   *nat.Device // NAT device owning the IP, or nil
	owner *Peer       // the peer behind dev
}

func (n *Network) pubSlotFor(ip ident.IP) *pubSlot {
	i := int(uint32(ip) - pubIPBase)
	if i < 0 || i >= len(n.pubs) {
		return nil
	}
	return &n.pubs[i]
}

// publicPeerAt returns the public peer owning exactly the endpoint ep.
func (n *Network) publicPeerAt(ep ident.Endpoint) *Peer {
	if s := n.pubSlotFor(ep.IP); s != nil && s.peer != nil && s.peer.Addr == ep {
		return s.peer
	}
	return nil
}

// deviceAt returns the NAT device owning the public IP, or nil.
func (n *Network) deviceAt(ip ident.IP) *nat.Device {
	if s := n.pubSlotFor(ip); s != nil {
		return s.dev
	}
	return nil
}

// privatePeerAt returns the natted peer owning exactly the private endpoint.
func (n *Network) privatePeerAt(ep ident.Endpoint) *Peer {
	i := int(uint32(ep.IP) - privIPBase)
	if i < 0 || i >= len(n.privs) {
		return nil
	}
	if p := n.privs[i]; p != nil && p.Priv == ep {
		return p
	}
	return nil
}

// New creates an empty standalone network driven directly by the given
// scheduler with the given one-way latency in milliseconds: one shard,
// immediate delivery scheduling, the shared wire pool. Unit tests and
// single-threaded hosts use it; experiment runs go through NewSharded.
func New(sched *sim.Scheduler, latencyMs int64) *Network {
	n := newNetwork(nil, []*sim.Scheduler{sched}, latencyMs)
	return n
}

// NewSharded creates an empty network over the sharded kernel: one network
// shard per kernel shard, per-shard wire pools, and cross-shard traffic
// staged in outboxes that drain at the kernel's barriers.
func NewSharded(kern *sim.ShardedScheduler, latencyMs int64) *Network {
	scheds := make([]*sim.Scheduler, kern.Shards())
	for i := range scheds {
		scheds[i] = kern.Shard(i)
	}
	n := newNetwork(kern, scheds, latencyMs)
	kern.SetBarrierFn(n.flush)
	return n
}

func newNetwork(kern *sim.ShardedScheduler, scheds []*sim.Scheduler, latencyMs int64) *Network {
	if latencyMs < 0 {
		panic("simnet: negative latency")
	}
	n := &Network{
		kern:          kern,
		latency:       latencyMs,
		nextPublicIP:  pubIPBase,
		nextPrivateIP: privIPBase,
		shards:        make([]netShard, len(scheds)),
		baseIntern:    &intern.Descriptors{},
	}
	for i := range n.shards {
		sh := &n.shards[i]
		sh.idx = i
		sh.sched = scheds[i]
		sh.shared = core.NewShared()
		sh.shared.Intern = intern.NewLayered(n.baseIntern)
		if kern != nil {
			sh.pool = &wire.Pool{}
			sh.out = make([][]outEntry, len(scheds))
			sh.outUnsorted = make([]bool, len(scheds))
		}
		i := i
		sh.sched.SetLaneFn(func() { n.deliverNext(i) })
		sh.jitFire = func() { n.jitNext(i) }
	}
	return n
}

// Latency returns the one-way delivery latency in milliseconds.
func (n *Network) Latency() int64 { return n.latency }

// Shards returns the shard count.
func (n *Network) Shards() int { return len(n.shards) }

// ShardOf returns the shard index owning the given peer ID. The mapping is
// a pure function of (ID, shard count), so consecutive IDs spread
// round-robin and population growth stays balanced.
func (n *Network) ShardOf(id ident.NodeID) int {
	return int(uint64(id-1) % uint64(len(n.shards)))
}

// ShardPool returns shard i's wire message pool (nil in standalone mode,
// meaning the shared pool). Engines built for a shard's peers must allocate
// from it.
func (n *Network) ShardPool(i int) *wire.Pool { return n.shards[i].pool }

// ShardShared returns shard i's shared engine state (descriptor intern
// table, exchange scratch). Engines built for a shard's peers should use it:
// all of a shard's engine calls are serialized, which is exactly the sharing
// contract of core.Shared.
func (n *Network) ShardShared(i int) *core.Shared { return n.shards[i].shared }

// Drops returns the datagram drop counters aggregated across shards. The
// DropStats fields are populated from the trace.DropCauses table (the
// single source of the drop taxonomy); TestDropStatFields pins that every
// table entry names a real field.
func (n *Network) Drops() DropStats {
	causes := n.DropTotals()
	var d DropStats
	v := reflect.ValueOf(&d).Elem()
	for c := range trace.DropCauses {
		v.FieldByName(trace.DropCauses[c].StatField).SetUint(causes[c])
	}
	return d
}

// DropTotals returns the per-cause drop counters aggregated across shards,
// indexed by trace.DropCause. Call at setup or barrier context.
func (n *Network) DropTotals() [trace.NumDropCauses]uint64 {
	var causes [trace.NumDropCauses]uint64
	for i := range n.shards {
		for c, v := range n.shards[i].drops {
			causes[c] += v
		}
	}
	return causes
}

// SetTrace installs (or, with nil, removes) the sharded trace recorder,
// which must be sized for the network's shard count. Call at setup or
// barrier context. Recording costs one nil check per event when installed
// rings are absent; every barrier additionally serves at most one pending
// live tap (see trace.Sharded.RequestTail).
func (n *Network) SetTrace(ts *trace.Sharded) {
	if ts != nil && ts.Shards() != len(n.shards) {
		panic("simnet: SetTrace with a recorder sized for a different shard count")
	}
	n.traces = ts
	for i := range n.shards {
		n.shards[i].tr = ts.Shard(i)
	}
}

// Trace returns the installed sharded trace recorder, or nil.
func (n *Network) Trace() *trace.Sharded { return n.traces }

// SetLinkPolicy installs (or, with nil, removes) the transmission
// perturbation policy. With no policy the constant-latency lane fast path is
// used exclusively.
func (n *Network) SetLinkPolicy(p LinkPolicy) { n.policy = p }

// SetPartitionActive toggles the partition mask. Callers assign peers'
// Side fields before activating; healing deactivates the mask (sides may be
// left as-is, they are ignored while inactive).
func (n *Network) SetPartitionActive(active bool) { n.partitionOn = active }

// PartitionActive reports whether a partition is in force.
func (n *Network) PartitionActive() bool { return n.partitionOn }

// Scheduler returns shard 0's scheduler — the scheduler, in standalone mode.
func (n *Network) Scheduler() *sim.Scheduler { return n.shards[0].sched }

// barrierNow returns the current virtual time for barrier-context and setup
// code (all shard clocks agree there).
func (n *Network) barrierNow() int64 { return n.shards[0].sched.Now() }

// EngineFactory builds a peer's engine once the network has assigned its
// descriptor.
type EngineFactory func(self view.Descriptor) core.Engine

// AddPeer attaches a new peer of the given NAT class. For natted classes a
// dedicated NAT device is created (one peer per NAT, as in the paper) and the
// peer's advertised endpoint is the mapping allocated by a join-time
// handshake with the bootstrap introducer. ruleTTL is the NAT rule lifetime
// in milliseconds (ignored for public peers). Peers may only be added at
// barriers (or before the run starts).
func (n *Network) AddPeer(id ident.NodeID, class ident.NATClass, ruleTTL int64, f EngineFactory) *Peer {
	p := n.newPeer(id, class)
	if class == ident.Public {
		ip := ident.IP(n.nextPublicIP)
		n.nextPublicIP++
		p.Priv = ident.Endpoint{IP: ip, Port: 9000}
		p.Addr = p.Priv
		n.pubs = append(n.pubs, pubSlot{peer: p})
	} else {
		privIP := ident.IP(n.nextPrivateIP)
		n.nextPrivateIP++
		pubIP := ident.IP(n.nextPublicIP)
		n.nextPublicIP++
		p.Priv = ident.Endpoint{IP: privIP, Port: 9000}
		p.Device = n.newDevice(class, pubIP, ruleTTL)
		n.pubs = append(n.pubs, pubSlot{dev: p.Device, owner: p})
		n.privs = append(n.privs, p)
		// Join handshake: allocate the advertised mapping.
		p.Addr = p.Device.Outbound(n.barrierNow(), p.Priv, bootstrapDst)
	}
	n.baseIntern.Intern(p.Descriptor())
	p.Engine = f(p.Descriptor())
	return p
}

// newPeer allocates a peer in the slab and registers it in the slot index.
func (n *Network) newPeer(id ident.NodeID, class ident.NATClass) *Peer {
	if n.idx.get(id, n.bySlot) >= 0 {
		panic(fmt.Sprintf("simnet: duplicate peer %v", id))
	}
	p := n.peerSlab.alloc()
	*p = Peer{ID: id, Class: class, Advertised: class, Alive: true, Shard: n.ShardOf(id)}
	n.bySlot = append(n.bySlot, p)
	n.idx.put(id, len(n.bySlot)-1, n.bySlot)
	return p
}

// newDevice allocates a NAT device in the device slab.
func (n *Network) newDevice(class ident.NATClass, pubIP ident.IP, ruleTTL int64) *nat.Device {
	d := n.devSlab.alloc()
	*d = nat.MakeDevice(class, pubIP, ruleTTL)
	return d
}

// AddPeerUPnP attaches a natted peer whose NAT device honours an explicit
// port-mapping protocol (NAT-PMP / UPnP IGD, discussed in the paper's
// related work): the advertised endpoint is a permanent pinhole that accepts
// unsolicited traffic, so the peer advertises itself as Public even though
// its outbound traffic still traverses the device.
func (n *Network) AddPeerUPnP(id ident.NodeID, class ident.NATClass, ruleTTL int64, f EngineFactory) *Peer {
	if !class.Natted() {
		panic("simnet: AddPeerUPnP requires a natted class")
	}
	p := n.newPeer(id, class)
	p.Advertised = ident.Public
	privIP := ident.IP(n.nextPrivateIP)
	n.nextPrivateIP++
	pubIP := ident.IP(n.nextPublicIP)
	n.nextPublicIP++
	p.Priv = ident.Endpoint{IP: privIP, Port: 9000}
	p.Device = n.newDevice(class, pubIP, ruleTTL)
	n.pubs = append(n.pubs, pubSlot{dev: p.Device, owner: p})
	n.privs = append(n.privs, p)
	p.Addr = p.Device.Pinhole(p.Priv)
	n.baseIntern.Intern(p.Descriptor())
	p.Engine = f(p.Descriptor())
	return p
}

// Peer returns the peer with the given ID, or nil.
func (n *Network) Peer(id ident.NodeID) *Peer {
	if i := n.idx.get(id, n.bySlot); i >= 0 {
		return n.bySlot[i]
	}
	return nil
}

// PeerCount returns the number of peers ever attached.
func (n *Network) PeerCount() int { return len(n.bySlot) }

// InstallHole simulates a completed join-time handshake between a and b:
// both NAT devices (if any) get filtering rules admitting the other side,
// as if each had sent the other one datagram through an introducer. The
// experiment runners use it to realize the paper's bootstrap, in which
// initial views are usable. Barrier-context only: it touches both peers'
// devices.
func (n *Network) InstallHole(a, b *Peer) {
	now := n.barrierNow()
	if a.Device != nil {
		a.Device.Outbound(now, a.Priv, b.Addr)
	}
	if b.Device != nil {
		b.Device.Outbound(now, b.Priv, a.Addr)
	}
}

// Kill marks the peer as departed: it stops ticking (the runner checks
// Alive) and every datagram addressed to it is dropped. Its NAT device state
// remains, as a real abandoned NAT box's would. Barrier-context only.
func (n *Network) Kill(id ident.NodeID) {
	if p := n.Peer(id); p != nil {
		p.Alive = false
	}
}

// Send transmits one engine command from the given peer: the datagram leaves
// through the peer's NAT device (allocating/refreshing the mapping) and is
// delivered — or dropped — one latency later. The network takes ownership of
// the message and recycles it into the consuming shard's pool once consumed.
// Send runs in the sending peer's shard context.
func (n *Network) Send(from *Peer, s core.Send) {
	sh := &n.shards[from.Shard]
	if !from.Alive {
		sh.pool.Put(s.Msg)
		return
	}
	size := uint64(s.Msg.Size())
	from.BytesSent += size
	from.MsgsSent++
	if c := n.counters; c != nil {
		c.Sent.Inc(from.Shard)
		c.BytesSent.Add(from.Shard, size)
	}

	// Causal stamp (see internal/trace): a hop-0 send opens a fresh chain
	// numbered by the origin's private counter; a relayed send folds the
	// relay into the path hash. Stamps live in in-memory message fields the
	// protocol never reads and are maintained unconditionally, so traced
	// and untraced runs execute identically.
	if s.Msg.Hops == 0 {
		from.StampSeq++
		s.Msg.OriginSeq = from.StampSeq
		s.Msg.PathHash = trace.PathRoot(from.ID, from.StampSeq)
	} else {
		s.Msg.PathHash = trace.PathExtend(s.Msg.PathHash, from.ID)
	}

	now := sh.sched.Now()
	srcEP := from.Priv
	if from.Device != nil {
		srcEP = from.Device.Outbound(now, from.Priv, s.To)
	}
	sh.trace(trace.OpSend, srcEP, s.To, s.Msg, size)
	var extra int64
	if n.policy != nil {
		var dropped bool
		extra, dropped = n.policy.Transmit(now, from.ID, srcEP, s.To, size)
		if dropped {
			// In-flight loss, accounted at send time: the sender paid
			// the bytes, nobody receives them.
			n.drop(sh, trace.DropLink, srcEP, s.To, s.Msg, size)
			sh.pool.Put(s.Msg)
			return
		}
	}
	at := now + n.latency + extra
	d := delivery{srcEP: srcEP, to: s.To, msg: s.Msg, size: size}

	if n.kern == nil {
		// Standalone mode: schedule delivery immediately on the single
		// scheduler, exactly as before the kernel existed.
		if extra > 0 {
			// Jittered deliveries are not monotone, so they cannot ride
			// the lane: the datagram waits in the jit heap and a reused
			// callback goes through the scheduler's heap. jitSeq tracks
			// the scheduler's internal sequence across these At calls, so
			// the jit heap pops in exactly the event firing order.
			sh.jitSeq++
			sh.jit.push(jitEntry{at: at, seq: sh.jitSeq, d: d})
			sh.sched.At(at, sh.jitFire)
			return
		}
		sh.inflight.Push(d)
		sh.sched.LaneAt(at)
		return
	}

	// Sharded mode: stage into the destination shard's mailbox; the
	// barrier merges and schedules it. The destination shard is the
	// endpoint owner's — ownership never changes once an IP is allocated,
	// so resolving the shard at send time is safe (NAT admission still
	// happens at delivery time, on the owning shard).
	from.Seq++
	owner, ok := n.OwnerOfIP(s.To.IP)
	if !ok {
		// No owner now means none ever: IPs are allocated once and never
		// reassigned. Account the drop at send time.
		n.drop(sh, trace.DropAddr, srcEP, s.To, s.Msg, size)
		sh.pool.Put(s.Msg)
		return
	}
	e := outEntry{at: at, actor: uint64(from.ID), seq: from.Seq, jittered: extra > 0, d: d}
	q := sh.out[owner.Shard]
	if k := len(q); k > 0 && keyCompare(q[k-1], e) > 0 {
		// A link-delayed arrival regressed the run's key order; the
		// barrier will sort this run instead of merging it.
		sh.outUnsorted[owner.Shard] = true
	}
	sh.out[owner.Shard] = append(q, e)
}

// flush is the kernel's barrier hook: it drains every outbox into its
// destination shard in deterministic (arrival, sender, per-sender seq)
// order. Constant-latency datagrams append to the shard's lane — batches
// from successive windows never overlap in time, so the lane stays monotone
// — and jittered ones wait in the shard's jit heap behind reused heap
// events with the same key.
//
// Each source run is already key-sorted by construction — virtual time
// advances monotonically within a window and same-instant events execute in
// (actor, seq) order, which is also the order staged sends draw their keys —
// so the runs k-way merge straight into the destination's queues, with
// ~log(runs) comparisons per datagram instead of a sort's log(total) and no
// gather copy. A run whose producer saw a key regression at append time
// (link-delayed arrivals) falls back to the gather-and-sort path; both
// produce the identical keyCompare order, which the invariance tests pin.
func (n *Network) flush() {
	// Barrier context: no shard worker is running, so this is the one safe
	// place to serve a live trace read posted by another goroutine.
	n.traces.ServeTap()
	for di := range n.shards {
		dst := &n.shards[di]
		runs := dst.runScratch[:0]
		sorted := true
		for si := range n.shards {
			src := &n.shards[si]
			if len(src.out[di]) > 0 {
				runs = append(runs, src.out[di])
				if src.outUnsorted[di] {
					sorted = false
				}
			}
		}
		if len(runs) > 0 {
			if sorted {
				n.mergeSortedRuns(dst, runs)
			} else {
				batch := dst.merge[:0]
				for _, run := range runs {
					batch = append(batch, run...)
				}
				slices.SortFunc(batch, keyCompare)
				for i := range batch {
					n.scheduleEntry(dst, &batch[i])
				}
				// Drop message references from the scratch so stale slots
				// never alias live pool entries.
				for i := range batch {
					batch[i].d.msg = nil
				}
				dst.merge = batch[:0]
			}
			for si := range n.shards {
				src := &n.shards[si]
				if run := src.out[di]; len(run) > 0 {
					for i := range run {
						run[i].d.msg = nil
					}
					src.out[di] = run[:0]
					src.outUnsorted[di] = false
				}
			}
		}
		dst.runScratch = runs[:0]
	}
}

// scheduleEntry queues one merged datagram on its destination shard.
func (n *Network) scheduleEntry(dst *netShard, e *outEntry) {
	if e.jittered {
		dst.jit.push(jitEntry{at: e.at, actor: e.actor, seq: e.seq, d: e.d})
		dst.sched.AtKey(e.at, e.actor, e.seq, dst.jitFire)
	} else {
		dst.inflight.Push(e.d)
		dst.sched.LaneAtKey(e.at, e.actor, e.seq)
	}
}

// mergeSortedRuns schedules the key-sorted source runs in exact merged key
// order, using a small binary heap of run cursors. Keys never collide across
// runs (a sender stages on exactly one shard and its seq is unique), so the
// merge needs no stability tie-break.
func (n *Network) mergeSortedRuns(dst *netShard, runs [][]outEntry) {
	if len(runs) == 1 {
		run := runs[0]
		for i := range run {
			n.scheduleEntry(dst, &run[i])
		}
		return
	}
	cur := dst.mergeCur[:0]
	for range runs {
		cur = append(cur, 0)
	}
	h := dst.mergeHeap[:0]
	for r := range runs {
		h = append(h, int32(r))
		for i := len(h) - 1; i > 0; {
			p := (i - 1) / 2
			if keyCompare(runs[h[i]][cur[h[i]]], runs[h[p]][cur[h[p]]]) >= 0 {
				break
			}
			h[i], h[p] = h[p], h[i]
			i = p
		}
	}
	for len(h) > 0 {
		r := h[0]
		n.scheduleEntry(dst, &runs[r][cur[r]])
		cur[r]++
		if cur[r] == len(runs[r]) {
			h[0] = h[len(h)-1]
			h = h[:len(h)-1]
		}
		for i := 0; ; {
			c := 2*i + 1
			if c >= len(h) {
				break
			}
			if c+1 < len(h) && keyCompare(runs[h[c+1]][cur[h[c+1]]], runs[h[c]][cur[h[c]]]) < 0 {
				c++
			}
			if keyCompare(runs[h[c]][cur[h[c]]], runs[h[i]][cur[h[i]]]) >= 0 {
				break
			}
			h[i], h[c] = h[c], h[i]
			i = c
		}
	}
	dst.mergeCur, dst.mergeHeap = cur[:0], h[:0]
}

// deliverNext completes shard i's oldest in-flight datagrams: lane events
// fire in exact key order, which is the order the ring was filled, so the
// queue head is always the datagram the event belongs to. After each
// delivery the loop asks the scheduler to extend the run (LaneContinue):
// back-to-back lane events — the overwhelming majority under constant
// latency — are handled as one batch event, amortizing dispatch and keeping
// the shard's resolve memo hot, while every datagram still advances the
// clock and the processed count individually and any interleaved heap event
// ends the batch exactly where per-datagram execution would have run it.
func (n *Network) deliverNext(i int) {
	sh := &n.shards[i]
	for {
		d := sh.inflight.Pop()
		if sh.inflight.Len() > 0 {
			// Warm the next datagram's destination state while this one is
			// processed: deliveries in a batch hop between unrelated peers,
			// so each destination's lines are cold random accesses the
			// out-of-order window can otherwise only start fetching once
			// the current Receive retires.
			n.prefetchNext(sh.inflight.Peek())
		}
		n.deliver(i, d.srcEP, d.to, d.msg, d.size)
		sh.pool.Put(d.msg)
		if n.perDatagram || !sh.sched.LaneContinue() {
			return
		}
	}
}

// prefetchNext touches the destination state of a queued delivery with pure
// loads — the public slot, the owning peer, and for natted destinations the
// NAT session, its filter slot and the private peer — so those cache lines
// are warm when the datagram is actually delivered. It mutates nothing;
// resolution still happens in resolve, and prefSink only keeps the loads
// observable to the compiler.
func (n *Network) prefetchNext(d *delivery) {
	s := n.pubSlotFor(d.to.IP)
	if s == nil {
		return
	}
	if p := s.peer; p != nil {
		n.prefSink += uint64(p.Addr.Port) + p.Seq
		return
	}
	if s.dev != nil {
		priv, v := s.dev.Prefetch(d.srcEP, d.to)
		n.prefSink += v
		if p := n.privatePeerAt(priv); p != nil {
			n.prefSink += uint64(p.Addr.Port) + p.Seq
		}
	}
}

// jitNext completes shard i's earliest link-delayed delivery: jit events and
// jit heap entries carry identical keys, so the heap head is always the
// datagram of the event firing now.
func (n *Network) jitNext(i int) {
	sh := &n.shards[i]
	e := sh.jit.pop()
	n.deliver(i, e.d.srcEP, e.d.to, e.d.msg, e.d.size)
	sh.pool.Put(e.d.msg)
}

// deliver completes one datagram on shard si (the destination's shard).
func (n *Network) deliver(si int, srcEP, to ident.Endpoint, msg *wire.Message, size uint64) {
	sh := &n.shards[si]
	now := sh.sched.Now()
	target, ok := n.resolve(sh, now, srcEP, to, msg, size)
	if !ok {
		return
	}
	if n.partitionOn {
		// The cut is evaluated at delivery time: datagrams in flight when
		// the partition strikes are swallowed by it too.
		if src, ok := n.OwnerOfIP(srcEP.IP); ok && src.Side != target.Side {
			n.drop(sh, trace.DropPartition, srcEP, to, msg, size)
			return
		}
	}
	if !target.Alive {
		n.drop(sh, trace.DropDead, srcEP, to, msg, size)
		return
	}
	target.BytesRecv += size
	target.MsgsRecv++
	if c := n.counters; c != nil {
		c.Delivered.Inc(sh.idx)
	}
	sh.trace(trace.OpDeliver, srcEP, to, msg, size)
	outs := target.Engine.Receive(now, srcEP, msg)
	for _, out := range outs {
		n.Send(target, out)
	}
}

// resolve finds the live owner of a destination endpoint, applying NAT
// admission. It updates the shard's drop statistics and the trace on
// failure.
func (n *Network) resolve(sh *netShard, now int64, srcEP, to ident.Endpoint, msg *wire.Message, size uint64) (*Peer, bool) {
	var dev *nat.Device
	if s := n.pubSlotFor(to.IP); s != nil {
		if s.peer != nil && s.peer.Addr == to {
			return s.peer, true
		}
		dev = s.dev
	}
	if dev == nil {
		n.drop(sh, trace.DropAddr, srcEP, to, msg, size)
		return nil, false
	}
	priv, ok := dev.Inbound(now, srcEP, to)
	if !ok {
		n.drop(sh, trace.DropNAT, srcEP, to, msg, size)
		return nil, false
	}
	if priv == sh.resolvedPriv && sh.resolvedPeer != nil {
		return sh.resolvedPeer, true
	}
	p := n.privatePeerAt(priv)
	if p == nil {
		n.drop(sh, trace.DropAddr, srcEP, to, msg, size)
		return nil, false
	}
	sh.resolvedPriv, sh.resolvedPeer = priv, p
	return p, true
}

// Tick runs one shuffling period for the peer and transmits the resulting
// messages. The runner schedules it on the peer's shard.
func (n *Network) Tick(p *Peer) {
	if !p.Alive {
		return
	}
	for _, s := range p.Engine.Tick(n.shards[p.Shard].sched.Now()) {
		n.Send(p, s)
	}
}

// Reachable reports whether a datagram sent now by q to the descriptor d
// would be admitted by d's NAT (or d is public). It never mutates NAT state:
// it is the paper's "stale reference" test (a reference is stale when
// communication with it is impossible). Barrier-context only: it reads both
// peers' devices.
func (n *Network) Reachable(now int64, q *Peer, d view.Descriptor) bool {
	if !d.Class.Natted() {
		return true
	}
	dev := n.deviceAt(d.Addr.IP)
	if dev == nil {
		return false
	}
	src, ok := n.wouldSendFrom(now, q, d.Addr)
	if !ok {
		// q would allocate a fresh, unpredictable mapping; only
		// IP-level filters can match it. Model it as port 0, which no
		// installed port-specific rule equals.
		src = ident.Endpoint{IP: n.publicIPOf(q)}
	}
	return dev.WouldAdmit(now, src, d.Addr)
}

// ReachableEndpoint is Reachable for a raw endpoint (e.g. a learned,
// hole-punched mapping rather than an advertised one): it reports whether a
// datagram sent now by q to addr would reach a live mapping or public peer.
func (n *Network) ReachableEndpoint(now int64, q *Peer, addr ident.Endpoint) bool {
	if n.publicPeerAt(addr) != nil {
		return true
	}
	dev := n.deviceAt(addr.IP)
	if dev == nil {
		return false
	}
	src, ok := n.wouldSendFrom(now, q, addr)
	if !ok {
		src = ident.Endpoint{IP: n.publicIPOf(q)}
	}
	return dev.WouldAdmit(now, src, addr)
}

// wouldSendFrom returns the source endpoint q's next datagram toward dst
// would carry, if that can be predicted from live state.
func (n *Network) wouldSendFrom(now int64, q *Peer, dst ident.Endpoint) (ident.Endpoint, bool) {
	if q.Device == nil {
		return q.Priv, true
	}
	return q.Device.PublicMapping(now, q.Priv, dst)
}

func (n *Network) publicIPOf(q *Peer) ident.IP {
	if q.Device != nil {
		return q.Device.PublicIP()
	}
	return q.Priv.IP
}

// OwnerOfIP returns the peer owning the given public IP (either directly or
// through its NAT device).
func (n *Network) OwnerOfIP(ip ident.IP) (*Peer, bool) {
	s := n.pubSlotFor(ip)
	if s == nil {
		return nil, false
	}
	if s.peer != nil {
		return s.peer, true
	}
	return s.owner, s.owner != nil
}
