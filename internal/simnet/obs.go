package simnet

import "repro/internal/obs"

// NetCounters mirrors the network's per-shard traffic and drop accounting
// into a metrics registry so the live ops endpoint can expose it mid-run.
// The counters are a one-way copy of state the network already maintains
// (Peer byte counters, netShard.drops); nothing reads them back, so an
// instrumented run is bit-identical to an uninstrumented one.
type NetCounters struct {
	Sent, Delivered    *obs.Counter
	BytesSent          *obs.Counter
	DropNAT, DropAddr  *obs.Counter
	DropDead, DropLink *obs.Counter
	DropPart           *obs.Counter
}

// SetObs attaches traffic counters from the given registry, which must be
// sized for the network's shard count (each shard writes only its own slot).
// Call at setup or barrier context, before traffic flows.
func (n *Network) SetObs(reg *obs.Registry) {
	if reg.Shards() != len(n.shards) {
		panic("simnet: SetObs with a registry sized for a different shard count")
	}
	n.counters = &NetCounters{
		Sent:      reg.Counter("nylon_net_datagrams_sent_total", "datagrams transmitted (after NAT egress)"),
		Delivered: reg.Counter("nylon_net_datagrams_delivered_total", "datagrams delivered to an engine"),
		BytesSent: reg.Counter("nylon_net_bytes_sent_total", "payload bytes transmitted"),
		DropNAT:   reg.Counter("nylon_net_drops_nat_total", "datagrams refused by the destination NAT"),
		DropAddr:  reg.Counter("nylon_net_drops_addr_total", "datagrams to endpoints with no live mapping"),
		DropDead:  reg.Counter("nylon_net_drops_dead_total", "datagrams to departed peers"),
		DropLink:  reg.Counter("nylon_net_drops_link_total", "datagrams lost in flight by the link model"),
		DropPart:  reg.Counter("nylon_net_drops_partition_total", "datagrams dropped at a partition cut"),
	}
}
