package simnet

import (
	"repro/internal/obs"
	"repro/internal/trace"
)

// NetCounters mirrors the network's per-shard traffic and drop accounting
// into a metrics registry so the live ops endpoint can expose it mid-run.
// The counters are a one-way copy of state the network already maintains
// (Peer byte counters, netShard.drops); nothing reads them back, so an
// instrumented run is bit-identical to an uninstrumented one. The per-cause
// drop counters are registered from the trace.DropCauses taxonomy table —
// one source of truth with the trace ops and DropStats fields.
type NetCounters struct {
	Sent, Delivered *obs.Counter
	BytesSent       *obs.Counter
	drops           [trace.NumDropCauses]*obs.Counter
}

// DropCounter returns the counter for one drop cause.
func (c *NetCounters) DropCounter(cause trace.DropCause) *obs.Counter {
	return c.drops[cause]
}

// SetObs attaches traffic counters from the given registry, which must be
// sized for the network's shard count (each shard writes only its own slot).
// Call at setup or barrier context, before traffic flows.
func (n *Network) SetObs(reg *obs.Registry) {
	if reg.Shards() != len(n.shards) {
		panic("simnet: SetObs with a registry sized for a different shard count")
	}
	c := &NetCounters{
		Sent:      reg.Counter("nylon_net_datagrams_sent_total", "datagrams transmitted (after NAT egress)"),
		Delivered: reg.Counter("nylon_net_datagrams_delivered_total", "datagrams delivered to an engine"),
		BytesSent: reg.Counter("nylon_net_bytes_sent_total", "payload bytes transmitted"),
	}
	for cause, info := range trace.DropCauses {
		c.drops[cause] = reg.Counter(info.Metric, info.Help)
	}
	n.counters = c
}
