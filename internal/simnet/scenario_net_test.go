package simnet

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/view"
	"repro/internal/wire"
)

// sinkEngine counts deliveries and never replies — it isolates network
// behaviour from protocol behaviour.
type sinkEngine struct {
	self     view.Descriptor
	received int
	stats    core.Stats
}

func (e *sinkEngine) Self() view.Descriptor { return e.self }
func (e *sinkEngine) View() *view.View      { return view.New(e.self.ID, 4) }
func (e *sinkEngine) Tick(int64) []core.Send {
	return nil
}
func (e *sinkEngine) Receive(int64, ident.Endpoint, *wire.Message) []core.Send {
	e.received++
	return nil
}
func (e *sinkEngine) Stats() *core.Stats { return &e.stats }

func sinkFactory() (EngineFactory, *[]*sinkEngine) {
	engines := &[]*sinkEngine{}
	return func(self view.Descriptor) core.Engine {
		e := &sinkEngine{self: self}
		*engines = append(*engines, e)
		return e
	}, engines
}

func ping(net *Network, from, to *Peer) {
	msg := wire.NewMessage()
	msg.Kind = wire.KindPing
	msg.Src, msg.Dst, msg.Via = from.Descriptor(), to.Descriptor(), from.Descriptor()
	net.Send(from, core.Send{To: to.Addr, ToID: to.ID, Msg: msg})
}

// scriptedPolicy replays fixed (delay, drop) decisions in send order.
type scriptedPolicy struct {
	delays []int64
	drops  []bool
	calls  int
}

func (p *scriptedPolicy) Transmit(int64, ident.NodeID, ident.Endpoint, ident.Endpoint, uint64) (int64, bool) {
	i := p.calls
	p.calls++
	var d int64
	var drop bool
	if i < len(p.delays) {
		d = p.delays[i]
	}
	if i < len(p.drops) {
		drop = p.drops[i]
	}
	return d, drop
}

func TestLinkPolicyLossDropsInFlight(t *testing.T) {
	sched, net := newNet()
	factory, engines := sinkFactory()
	a := net.AddPeer(1, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	b := net.AddPeer(2, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })

	net.SetLinkPolicy(&scriptedPolicy{drops: []bool{true, false, true}})
	ping(net, a, b)
	ping(net, a, b)
	ping(net, a, b)
	sched.RunUntil(1000)

	if got := (*engines)[1].received; got != 1 {
		t.Errorf("delivered %d datagrams, want 1 (two lost)", got)
	}
	if net.Drops().LinkLost != 2 {
		t.Errorf("LinkLost = %d, want 2", net.Drops().LinkLost)
	}
	if a.MsgsSent != 3 || b.MsgsRecv != 1 {
		t.Errorf("sent/recv counters = %d/%d, want 3/1 (lost datagrams still cost the sender)", a.MsgsSent, b.MsgsRecv)
	}
}

func TestLinkPolicyJitterRoutesThroughHeap(t *testing.T) {
	sched, net := newNet()
	factory, engines := sinkFactory()
	a := net.AddPeer(1, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	b := net.AddPeer(2, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })

	// Non-monotone delays: a lane-only implementation would panic on the
	// regressed fire time; the heap path must absorb them and deliver all.
	net.SetLinkPolicy(&scriptedPolicy{delays: []int64{200, 0, 40}})
	ping(net, a, b)
	ping(net, a, b)
	ping(net, a, b)

	sched.RunUntil(latency + 1)
	if got := (*engines)[1].received; got != 1 {
		t.Fatalf("at base latency: delivered %d, want only the unjittered datagram", got)
	}
	sched.RunUntil(latency + 100)
	if got := (*engines)[1].received; got != 2 {
		t.Fatalf("at +100ms: delivered %d, want 2", got)
	}
	sched.RunUntil(1000)
	if got := (*engines)[1].received; got != 3 {
		t.Fatalf("finally delivered %d, want all 3", got)
	}
	if net.Drops() != (DropStats{}) {
		t.Errorf("unexpected drops: %+v", net.Drops())
	}
}

func TestPartitionMaskDropsAcrossCut(t *testing.T) {
	sched, net := newNet()
	factory, engines := sinkFactory()
	a := net.AddPeer(1, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	b := net.AddPeer(2, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	c := net.AddPeer(3, ident.RestrictedCone, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })

	a.Side, b.Side, c.Side = 0, 1, 0
	net.SetPartitionActive(true)

	ping(net, a, b) // across the cut: dropped
	ping(net, c, a) // same side, natted sender: delivered
	sched.RunUntil(1000)

	if got := (*engines)[1].received; got != 0 {
		t.Errorf("cross-cut datagram delivered (%d)", got)
	}
	if got := (*engines)[0].received; got != 1 {
		t.Errorf("same-side datagram not delivered (%d)", got)
	}
	if net.Drops().Partitioned != 1 {
		t.Errorf("Partitioned = %d, want 1", net.Drops().Partitioned)
	}

	// Healing restores delivery; stale Side values are ignored.
	net.SetPartitionActive(false)
	ping(net, a, b)
	sched.RunUntil(2000)
	if got := (*engines)[1].received; got != 1 {
		t.Errorf("post-heal datagram not delivered (%d)", got)
	}
}

// TestPartitionAppliesToInFlight pins the delivery-time semantics: a
// datagram already in flight when the partition strikes is swallowed by it.
func TestPartitionAppliesToInFlight(t *testing.T) {
	sched, net := newNet()
	factory, engines := sinkFactory()
	a := net.AddPeer(1, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	b := net.AddPeer(2, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })

	ping(net, a, b)
	b.Side = 1
	sched.At(latency/2, func() { net.SetPartitionActive(true) })
	sched.RunUntil(1000)

	if got := (*engines)[1].received; got != 0 {
		t.Errorf("in-flight datagram crossed a partition that struck before delivery")
	}
	if net.Drops().Partitioned != 1 {
		t.Errorf("Partitioned = %d, want 1", net.Drops().Partitioned)
	}
}

// TestQuiescentSendZeroAlloc locks in that the scenario hooks cost the
// nil-policy fast path nothing: steady-state send+deliver with no link
// policy and no active partition allocates zero.
func TestQuiescentSendZeroAlloc(t *testing.T) {
	sched, net := newNet()
	factory, _ := sinkFactory()
	a := net.AddPeer(1, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })
	b := net.AddPeer(2, ident.Public, holeTimeout, func(d view.Descriptor) core.Engine { return factory(d) })

	// Warm the inflight ring and the scheduler lane.
	for i := 0; i < 64; i++ {
		ping(net, a, b)
	}
	sched.RunUntil(sched.Now() + 1000)

	allocs := testing.AllocsPerRun(1000, func() {
		ping(net, a, b)
		sched.RunUntil(sched.Now() + latency)
	})
	// The ping's wire message round-trips through the pool, so the whole
	// cycle must be allocation-free.
	if allocs > 0 {
		t.Errorf("quiescent send+deliver allocates %.1f per round, want 0", allocs)
	}
}
