package simnet

import (
	"sort"

	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/nat"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/wire"
)

// This file implements checkpoint capture and restore for the simulated
// network. Capture runs at a kernel barrier (see sim.ShardedScheduler's
// checkpoint hook): every shard event at or before the barrier time has
// executed and the cross-shard staging outboxes are drained, so the whole
// in-flight state of the network is exactly the shards' delivery lanes and
// jit heaps.
//
// The encoding is shard-count-invariant — the same world state serializes to
// the same bytes whether the writing run used 1 shard or 16 — because
// everything shard-scoped is merged into a global canonical order before
// encoding: peers serialize in attachment (slot) order, which is a pure
// function of the run; in-flight datagrams merge across shards sorted by
// their (arrival, sender, per-sender seq) scheduler key; drop counters
// serialize as per-cause totals. On restore the state redistributes to
// however many shards the resuming run uses: each shard's sub-sequence of
// the globally key-sorted datagram list is itself key-sorted, so lane
// monotonicity holds whatever the new shard count.
//
// Deliberately not serialized: per-shard intern tables and resolve memos
// (performance caches re-derived on demand), trace rings and flight
// recorders (forensic state; a resumed run's trace starts at the resume
// point), and observability counters (live-ops surface, not simulation
// state). The snapshot/resume invariance test pins that none of these
// omissions is observable in results.

// Section tags of the network payload.
const (
	secNet  = "net!"
	secMsgs = "msg!"
	secDrop = "drp!"
)

// EachPeer visits every peer ever attached, in attachment order. The host
// uses it to serialize engine state in an order both sides of a checkpoint
// agree on.
func (n *Network) EachPeer(fn func(p *Peer)) {
	for _, p := range n.bySlot {
		fn(p)
	}
}

// flightEntry is one in-flight datagram in canonical (key-sorted) order.
type flightEntry struct {
	at         int64
	actor, seq uint64
	jittered   bool
	d          delivery
}

// SnapshotTo serializes the network's complete state: address allocators,
// the partition flag, every peer (with its NAT device and traffic counters)
// in attachment order, every in-flight datagram in scheduler-key order, and
// the drop totals. Sharded networks only; capture must run at a barrier.
func (n *Network) SnapshotTo(enc *snapshot.Encoder) {
	if n.kern == nil {
		panic("simnet: SnapshotTo on a standalone network")
	}
	enc.Section(secNet)
	enc.U32(n.nextPublicIP)
	enc.U32(n.nextPrivateIP)
	enc.Bool(n.partitionOn)
	enc.U32(uint32(len(n.bySlot)))
	for _, p := range n.bySlot {
		enc.U64(uint64(p.ID))
		enc.U8(uint8(p.Class))
		enc.U8(uint8(p.Advertised))
		enc.Endpoint(p.Priv)
		enc.Endpoint(p.Addr)
		enc.Bool(p.Alive)
		enc.U8(p.Side)
		enc.U64(p.Seq)
		enc.U32(p.StampSeq)
		enc.U64(p.BytesSent)
		enc.U64(p.BytesRecv)
		enc.U64(p.MsgsSent)
		enc.U64(p.MsgsRecv)
		if p.Device != nil {
			p.Device.SnapshotTo(enc)
		}
	}

	enc.Section(secMsgs)
	var flight []flightEntry
	for i := range n.shards {
		sh := &n.shards[i]
		// Lane events fire in exact ring order: pair the scheduler's lane
		// keys with the ring's deliveries positionally.
		j := 0
		sh.sched.EachLane(func(at int64, actor, seq uint64) {
			flight = append(flight, flightEntry{at: at, actor: actor, seq: seq, d: *sh.inflight.At(j)})
			j++
		})
		if j != sh.inflight.Len() {
			panic("simnet: lane events and in-flight ring out of step")
		}
		for _, e := range sh.jit {
			flight = append(flight, flightEntry{at: e.at, actor: e.actor, seq: e.seq, jittered: true, d: e.d})
		}
	}
	sort.Slice(flight, func(a, b int) bool {
		x, y := &flight[a], &flight[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.actor != y.actor {
			return x.actor < y.actor
		}
		return x.seq < y.seq
	})
	enc.U32(uint32(len(flight)))
	for i := range flight {
		e := &flight[i]
		enc.I64(e.at)
		enc.U64(e.actor)
		enc.U64(e.seq)
		enc.Bool(e.jittered)
		enc.Endpoint(e.d.srcEP)
		enc.Endpoint(e.d.to)
		m := e.d.msg
		enc.U8(uint8(m.Kind))
		enc.U8(m.Hops)
		enc.Desc(m.Src)
		enc.Desc(m.Dst)
		enc.Desc(m.Via)
		enc.U32(m.OriginSeq)
		enc.U64(m.PathHash)
		enc.U32(uint32(len(m.Entries)))
		for _, ve := range m.Entries {
			enc.Desc(ve.Desc)
			enc.U32(ve.RouteTTL)
		}
	}

	enc.Section(secDrop)
	totals := n.DropTotals()
	for _, v := range totals {
		enc.U64(v)
	}
}

// RestoreFrom rebuilds the state captured by SnapshotTo into this freshly
// constructed, empty sharded network. engineFor is called once per restored
// peer, in attachment order, to build its engine (the host restores engine
// state afterwards via EachPeer in the same order). On corrupt input the
// decoder's sticky error is set and the network must be discarded — the
// caller checks the error before letting the world run.
func (n *Network) RestoreFrom(dec *snapshot.Decoder, engineFor func(p *Peer) core.Engine) {
	if n.kern == nil {
		panic("simnet: RestoreFrom on a standalone network")
	}
	if len(n.bySlot) != 0 {
		panic("simnet: RestoreFrom on a non-empty network")
	}
	dec.Section(secNet)
	nextPublicIP := dec.U32()
	nextPrivateIP := dec.U32()
	n.partitionOn = dec.Bool()
	nPeers := dec.Count(8 + 2 + 6 + 6 + 2 + 8 + 4 + 4*8)
	for i := 0; i < nPeers; i++ {
		id := ident.NodeID(dec.U64())
		class := ident.NATClass(dec.U8())
		advertised := ident.NATClass(dec.U8())
		priv := dec.Endpoint()
		addr := dec.Endpoint()
		alive := dec.Bool()
		side := dec.U8()
		seq := dec.U64()
		stampSeq := dec.U32()
		bytesSent, bytesRecv := dec.U64(), dec.U64()
		msgsSent, msgsRecv := dec.U64(), dec.U64()
		if dec.Err() != nil {
			return
		}
		if id.IsNil() || !class.Valid() {
			dec.Fail("peer %d with id %v class %d", i, id, class)
			return
		}
		// IDs of a valid snapshot form a permutation of 1..nPeers (peers are
		// numbered densely at creation; only the attachment order varies), so
		// anything out of range or repeated is hostile — and the range check
		// also bounds what the host's ID-indexed rosters will allocate.
		if uint64(id) > uint64(nPeers) {
			dec.Fail("peer id %v exceeds the %d-peer roster", id, nPeers)
			return
		}
		if n.Peer(id) != nil {
			dec.Fail("duplicate peer %v", id)
			return
		}
		p := n.newPeer(id, class)
		p.Advertised = advertised
		p.Priv, p.Addr = priv, addr
		p.Alive, p.Side = alive, side
		p.Seq, p.StampSeq = seq, stampSeq
		p.BytesSent, p.BytesRecv = bytesSent, bytesRecv
		p.MsgsSent, p.MsgsRecv = msgsSent, msgsRecv
		if class.Natted() {
			dev := nat.RestoreDevice(dec)
			if dec.Err() != nil {
				return
			}
			// The endpoint resolution arrays are dense by construction —
			// pubs[i] owns IP pubIPBase+i — so the serialized allocation
			// order must reproduce it exactly or lookups would misroute.
			if uint32(dev.PublicIP()) != pubIPBase+uint32(len(n.pubs)) ||
				uint32(priv.IP) != privIPBase+uint32(len(n.privs)) ||
				dev.Class() != class {
				dec.Fail("peer %v breaks dense address allocation", id)
				return
			}
			d := n.devSlab.alloc()
			*d = dev
			p.Device = d
			n.pubs = append(n.pubs, pubSlot{dev: d, owner: p})
			n.privs = append(n.privs, p)
		} else {
			if uint32(priv.IP) != pubIPBase+uint32(len(n.pubs)) || addr != priv {
				dec.Fail("public peer %v breaks dense address allocation", id)
				return
			}
			n.pubs = append(n.pubs, pubSlot{peer: p})
		}
		n.baseIntern.Intern(p.Descriptor())
		p.Engine = engineFor(p)
	}
	if uint32(len(n.pubs)) != nextPublicIP-pubIPBase || uint32(len(n.privs)) != nextPrivateIP-privIPBase {
		dec.Fail("address allocators disagree with the roster (%d pubs, %d privs)", len(n.pubs), len(n.privs))
		return
	}
	n.nextPublicIP, n.nextPrivateIP = nextPublicIP, nextPrivateIP

	dec.Section(secMsgs)
	nMsgs := dec.Count(8 + 8 + 8 + 1 + 6 + 6 + 2 + 3*19 + 4 + 8 + 4)
	var prevAt int64
	var prevActor, prevSeq uint64
	for i := 0; i < nMsgs; i++ {
		at := dec.I64()
		actor, seq := dec.U64(), dec.U64()
		jittered := dec.Bool()
		// The writer sorts entries by strictly increasing key; enforce that
		// before any shard-lane push, because a lane rejects (by design, with
		// a panic — it is a host-bug detector) keys that regress. Hostile
		// input must fail the decode, not trip the detector.
		if i > 0 && (at < prevAt || (at == prevAt && (actor < prevActor ||
			(actor == prevActor && seq <= prevSeq)))) {
			dec.Fail("in-flight datagram %d out of key order", i)
			return
		}
		prevAt, prevActor, prevSeq = at, actor, seq
		srcEP, to := dec.Endpoint(), dec.Endpoint()
		kind := wire.Kind(dec.U8())
		hops := dec.U8()
		src, dst, via := dec.Desc(), dec.Desc(), dec.Desc()
		originSeq := dec.U32()
		pathHash := dec.U64()
		nEntries := dec.Count(19 + 4)
		if dec.Err() != nil {
			return
		}
		owner, ok := n.OwnerOfIP(to.IP)
		if !ok {
			dec.Fail("in-flight datagram to %v, an endpoint nobody owns", to)
			return
		}
		sh := &n.shards[owner.Shard]
		m := sh.pool.Get()
		m.Kind, m.Hops = kind, hops
		m.Src, m.Dst, m.Via = src, dst, via
		m.OriginSeq, m.PathHash = originSeq, pathHash
		m.Entries = m.Entries[:0]
		for j := 0; j < nEntries; j++ {
			m.Entries = append(m.Entries, wire.ViewEntry{Desc: dec.Desc(), RouteTTL: dec.U32()})
		}
		if dec.Err() != nil {
			sh.pool.Put(m)
			return
		}
		d := delivery{srcEP: srcEP, to: to, msg: m, size: uint64(m.Size())}
		// Keys re-distribute to the resuming run's shards: this shard's
		// sub-sequence of the globally sorted list stays sorted, so the lane
		// accepts every key and fires in the original global order.
		if jittered {
			sh.jit.push(jitEntry{at: at, actor: actor, seq: seq, d: d})
			sh.sched.AtKey(at, actor, seq, sh.jitFire)
		} else {
			sh.inflight.Push(d)
			sh.sched.LaneAtKey(at, actor, seq)
		}
	}

	dec.Section(secDrop)
	for c := 0; c < int(trace.NumDropCauses); c++ {
		// Totals restore into shard 0; every read aggregates across shards.
		n.shards[0].drops[c] = dec.U64()
	}
}
