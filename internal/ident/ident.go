// Package ident defines the basic identity and addressing model shared by
// every other package in this repository: node identifiers, IPv4-style
// endpoints, and NAT classes.
//
// The model follows Section 2 of the Nylon paper (Kermarrec et al., ICDCS
// 2009): a peer is either public or sits behind exactly one NAT device of one
// of four classes (full cone, restricted cone, port-restricted cone,
// symmetric). Nested NATs are out of scope, as in the paper.
package ident

import (
	"fmt"
	"strconv"
	"strings"
)

// NodeID uniquely identifies a peer in the overlay. IDs are assigned once at
// join time and never reused.
type NodeID uint64

// Nil is the zero NodeID; it never identifies a real peer.
const Nil NodeID = 0

// String implements fmt.Stringer.
func (id NodeID) String() string { return "n" + strconv.FormatUint(uint64(id), 10) }

// IsNil reports whether id is the zero NodeID.
func (id NodeID) IsNil() bool { return id == Nil }

// IP is an IPv4 address packed into a uint32 (network byte order when
// serialized). The simulated network allocates these densely; the UDP
// transport converts real addresses to and from this form.
type IP uint32

// String renders the address in dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// ParseIP parses a dotted-quad IPv4 address. It returns an error for any
// malformed input, including out-of-range octets.
func ParseIP(s string) (IP, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("ident: invalid IPv4 address %q", s)
	}
	var ip uint32
	for _, p := range parts {
		v, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("ident: invalid IPv4 address %q: %v", s, err)
		}
		ip = ip<<8 | uint32(v)
	}
	return IP(ip), nil
}

// Endpoint is a transport address: an IP plus a UDP-style port.
type Endpoint struct {
	IP   IP
	Port uint16
}

// Zero is the zero Endpoint, used to mean "no address".
var Zero Endpoint

// String implements fmt.Stringer.
func (e Endpoint) String() string { return e.IP.String() + ":" + strconv.Itoa(int(e.Port)) }

// IsZero reports whether e is the zero endpoint.
func (e Endpoint) IsZero() bool { return e == Zero }

// ParseEndpoint parses "a.b.c.d:port".
func ParseEndpoint(s string) (Endpoint, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return Zero, fmt.Errorf("ident: endpoint %q missing port", s)
	}
	ip, err := ParseIP(s[:i])
	if err != nil {
		return Zero, err
	}
	port, err := strconv.ParseUint(s[i+1:], 10, 16)
	if err != nil {
		return Zero, fmt.Errorf("ident: endpoint %q: invalid port: %v", s, err)
	}
	return Endpoint{IP: ip, Port: uint16(port)}, nil
}

// NATClass describes the connectivity class of a peer: either directly
// reachable (Public) or behind one of the four NAT behaviours of Section 2.1
// of the paper.
type NATClass uint8

// NAT classes, ordered from most permissive to most restrictive.
const (
	// Public peers have a globally reachable address and accept unsolicited
	// traffic.
	Public NATClass = iota
	// FullCone NATs reuse one mapping per private endpoint and forward all
	// inbound traffic addressed to it.
	FullCone
	// RestrictedCone NATs reuse one mapping per private endpoint and forward
	// inbound traffic only from IP addresses previously contacted.
	RestrictedCone
	// PortRestrictedCone NATs reuse one mapping per private endpoint and
	// forward inbound traffic only from IP:port pairs previously contacted.
	PortRestrictedCone
	// Symmetric NATs allocate a distinct mapping per destination and filter
	// like port-restricted cones.
	Symmetric

	numClasses
)

// NumClasses is the number of distinct NATClass values.
const NumClasses = int(numClasses)

var classNames = [...]string{
	Public:             "public",
	FullCone:           "fc",
	RestrictedCone:     "rc",
	PortRestrictedCone: "prc",
	Symmetric:          "sym",
}

// String implements fmt.Stringer.
func (c NATClass) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "natclass(" + strconv.Itoa(int(c)) + ")"
}

// ParseNATClass parses the short names produced by String ("public", "fc",
// "rc", "prc", "sym").
func ParseNATClass(s string) (NATClass, error) {
	for i, n := range classNames {
		if n == s {
			return NATClass(i), nil
		}
	}
	return 0, fmt.Errorf("ident: unknown NAT class %q", s)
}

// Valid reports whether c is one of the defined classes.
func (c NATClass) Valid() bool { return int(c) < NumClasses }

// Natted reports whether the peer sits behind a NAT device of any kind.
func (c NATClass) Natted() bool { return c != Public }
