package ident

import (
	"testing"
	"testing/quick"
)

func TestIPString(t *testing.T) {
	tests := []struct {
		ip   IP
		want string
	}{
		{0, "0.0.0.0"},
		{0x01020304, "1.2.3.4"},
		{0xffffffff, "255.255.255.255"},
		{0x0a000001, "10.0.0.1"},
	}
	for _, tt := range tests {
		if got := tt.ip.String(); got != tt.want {
			t.Errorf("IP(%#x).String() = %q, want %q", uint32(tt.ip), got, tt.want)
		}
	}
}

func TestParseIPRoundTrip(t *testing.T) {
	f := func(ip uint32) bool {
		parsed, err := ParseIP(IP(ip).String())
		return err == nil && parsed == IP(ip)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseIPErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d", "1.2.3.-4"} {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestParseEndpointRoundTrip(t *testing.T) {
	f := func(ip uint32, port uint16) bool {
		e := Endpoint{IP: IP(ip), Port: port}
		parsed, err := ParseEndpoint(e.String())
		return err == nil && parsed == e
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseEndpointErrors(t *testing.T) {
	for _, s := range []string{"", "1.2.3.4", "1.2.3.4:", "1.2.3.4:99999", "1.2.3:80", "x:80"} {
		if _, err := ParseEndpoint(s); err == nil {
			t.Errorf("ParseEndpoint(%q) succeeded, want error", s)
		}
	}
}

func TestEndpointZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if (Endpoint{IP: 1}).IsZero() {
		t.Error("non-zero endpoint reported as zero")
	}
}

func TestNATClassString(t *testing.T) {
	tests := []struct {
		c    NATClass
		want string
	}{
		{Public, "public"},
		{FullCone, "fc"},
		{RestrictedCone, "rc"},
		{PortRestrictedCone, "prc"},
		{Symmetric, "sym"},
		{NATClass(99), "natclass(99)"},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("NATClass(%d).String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestParseNATClassRoundTrip(t *testing.T) {
	for c := Public; c.Valid(); c++ {
		got, err := ParseNATClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseNATClass(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if _, err := ParseNATClass("bogus"); err == nil {
		t.Error("ParseNATClass(bogus) succeeded, want error")
	}
}

func TestNatted(t *testing.T) {
	if Public.Natted() {
		t.Error("Public.Natted() = true")
	}
	for _, c := range []NATClass{FullCone, RestrictedCone, PortRestrictedCone, Symmetric} {
		if !c.Natted() {
			t.Errorf("%v.Natted() = false", c)
		}
	}
}

func TestNodeIDString(t *testing.T) {
	if got := NodeID(42).String(); got != "n42" {
		t.Errorf("NodeID(42).String() = %q, want n42", got)
	}
	if !Nil.IsNil() || NodeID(1).IsNil() {
		t.Error("IsNil misbehaves")
	}
}
