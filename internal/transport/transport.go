// Package transport abstracts datagram IO for the real-time Nylon node: the
// same protocol engine runs over an in-memory switch (tests, examples, NAT
// labs) or UDP sockets (deployments).
package transport

import "repro/internal/ident"

// Packet is one received datagram.
type Packet struct {
	// From is the source endpoint as observed by the receiver — for a
	// natted sender, its NAT mapping. Nylon's endpoint learning feeds on
	// it.
	From ident.Endpoint
	Data []byte
}

// Transport is a datagram transport. Implementations must be safe for
// concurrent use of Send with one reader of Packets.
type Transport interface {
	// LocalAddr returns the endpoint the transport receives on. For
	// natted deployments this is the private endpoint; the advertised
	// endpoint is discovered separately (e.g. via an introducer).
	LocalAddr() ident.Endpoint
	// Send transmits one datagram. Sends never block indefinitely; errors
	// are local (closed transport, oversized datagram).
	Send(to ident.Endpoint, data []byte) error
	// Packets returns the receive channel. It is closed by Close.
	Packets() <-chan Packet
	// Close releases resources and closes the Packets channel.
	Close() error
}

// MaxDatagram is the largest datagram any transport must carry: a full
// shuffle buffer is far below a safe UDP payload size.
const MaxDatagram = 1400
