package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/ident"
)

// UDPTransport carries protocol datagrams over an IPv4 UDP socket.
type UDPTransport struct {
	conn  *net.UDPConn
	local ident.Endpoint
	recv  chan Packet

	closeOnce sync.Once
	closeErr  error
}

var _ Transport = (*UDPTransport)(nil)

// ListenUDP opens a UDP socket on the given address ("ip:port"; ":0" picks a
// free port on all interfaces) and starts its read loop.
func ListenUDP(addr string) (*UDPTransport, error) {
	udpAddr, err := net.ResolveUDPAddr("udp4", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp4", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", addr, err)
	}
	local, err := toEndpoint(conn.LocalAddr())
	if err != nil {
		conn.Close()
		return nil, err
	}
	t := &UDPTransport{conn: conn, local: local, recv: make(chan Packet, 256)}
	go t.readLoop()
	return t, nil
}

// toEndpoint converts a net.Addr carrying an IPv4 UDP address.
func toEndpoint(a net.Addr) (ident.Endpoint, error) {
	ua, ok := a.(*net.UDPAddr)
	if !ok {
		return ident.Zero, fmt.Errorf("transport: not a UDP address: %v", a)
	}
	ip4 := ua.IP.To4()
	if ip4 == nil {
		// A wildcard listen reports "::" or 0.0.0.0; represent as zero IP.
		ip4 = net.IPv4zero.To4()
	}
	return ident.Endpoint{
		IP:   ident.IP(uint32(ip4[0])<<24 | uint32(ip4[1])<<16 | uint32(ip4[2])<<8 | uint32(ip4[3])),
		Port: uint16(ua.Port),
	}, nil
}

// toUDPAddr converts back to the net representation.
func toUDPAddr(e ident.Endpoint) *net.UDPAddr {
	return &net.UDPAddr{
		IP:   net.IPv4(byte(e.IP>>24), byte(e.IP>>16), byte(e.IP>>8), byte(e.IP)),
		Port: int(e.Port),
	}
}

func (t *UDPTransport) readLoop() {
	defer close(t.recv)
	buf := make([]byte, MaxDatagram)
	for {
		n, from, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed or fatal; channel closure signals the node
		}
		ep, err := toEndpoint(from)
		if err != nil {
			continue
		}
		data := make([]byte, n)
		copy(data, buf[:n])
		select {
		case t.recv <- Packet{From: ep, Data: data}:
		default:
			// Reader too slow: drop, as the kernel buffer would.
		}
	}
}

// LocalAddr implements Transport.
func (t *UDPTransport) LocalAddr() ident.Endpoint { return t.local }

// Packets implements Transport.
func (t *UDPTransport) Packets() <-chan Packet { return t.recv }

// Send implements Transport.
func (t *UDPTransport) Send(to ident.Endpoint, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("transport: datagram of %d bytes exceeds limit %d", len(data), MaxDatagram)
	}
	_, err := t.conn.WriteToUDP(data, toUDPAddr(to))
	if err != nil && errors.Is(err, net.ErrClosed) {
		return errClosed
	}
	return err
}

// Close implements Transport.
func (t *UDPTransport) Close() error {
	t.closeOnce.Do(func() { t.closeErr = t.conn.Close() })
	return t.closeErr
}
