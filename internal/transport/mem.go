package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ident"
	"repro/internal/nat"
)

// Switch is an in-memory datagram network. Endpoints attach with Attach (a
// public peer) or AttachNAT (a peer behind a simulated NAT device built from
// internal/nat). Delivery is asynchronous with an optional fixed latency, so
// node-level code experiences the same reordering-free UDP-like semantics as
// the discrete-event simulator.
type Switch struct {
	latency time.Duration

	mu     sync.Mutex
	ports  map[ident.Endpoint]*MemTransport // by receive endpoint (private for natted)
	nats   map[ident.IP]*natAttachment      // by NAT public IP
	nextIP uint32
	closed bool
}

type natAttachment struct {
	dev *nat.Device
	tr  *MemTransport
}

// NewSwitch creates an empty switch with the given one-way delivery latency
// (zero is allowed and keeps delivery asynchronous).
func NewSwitch(latency time.Duration) *Switch {
	return &Switch{
		latency: latency,
		ports:   make(map[ident.Endpoint]*MemTransport),
		nats:    make(map[ident.IP]*natAttachment),
		nextIP:  0x0a000001,
	}
}

// errClosed is returned by operations on closed transports.
var errClosed = errors.New("transport: closed")

// MemTransport is one attachment to a Switch.
type MemTransport struct {
	sw    *Switch
	local ident.Endpoint
	dev   *nat.Device // nil for public attachments
	start time.Time

	mu     sync.Mutex
	closed bool
	recv   chan Packet
}

var _ Transport = (*MemTransport)(nil)

// Attach adds a public endpoint to the switch and returns its transport.
func (s *Switch) Attach() *MemTransport {
	s.mu.Lock()
	defer s.mu.Unlock()
	ep := ident.Endpoint{IP: ident.IP(s.nextIP), Port: 9000}
	s.nextIP++
	t := &MemTransport{sw: s, local: ep, start: time.Now(), recv: make(chan Packet, 256)}
	s.ports[ep] = t
	return t
}

// AttachSibling adds a second public endpoint on the same IP as t but a
// different port. Introducer-style services use it to test port-sensitive
// NAT filtering (RC vs PRC). It panics if t is natted or the port is taken.
func (s *Switch) AttachSibling(t *MemTransport, port uint16) *MemTransport {
	s.mu.Lock()
	defer s.mu.Unlock()
	if t.dev != nil {
		panic("transport: AttachSibling on a natted attachment")
	}
	ep := ident.Endpoint{IP: t.local.IP, Port: port}
	if _, taken := s.ports[ep]; taken {
		panic(fmt.Sprintf("transport: sibling endpoint %v already attached", ep))
	}
	sib := &MemTransport{sw: s, local: ep, start: time.Now(), recv: make(chan Packet, 256)}
	s.ports[ep] = sib
	return sib
}

// AttachNAT adds an endpoint behind a fresh NAT device of the given class and
// returns its transport together with the advertised public endpoint (the
// mapping a join handshake with an introducer would have allocated).
func (s *Switch) AttachNAT(class ident.NATClass, ruleTTL time.Duration) (*MemTransport, ident.Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	priv := ident.Endpoint{IP: ident.IP(s.nextIP), Port: 9000}
	s.nextIP++
	pubIP := ident.IP(s.nextIP)
	s.nextIP++
	dev := nat.NewDevice(class, pubIP, ruleTTL.Milliseconds())
	t := &MemTransport{sw: s, local: priv, dev: dev, start: time.Now(), recv: make(chan Packet, 256)}
	s.ports[priv] = t
	s.nats[pubIP] = &natAttachment{dev: dev, tr: t}
	// Join handshake: allocate the advertised mapping toward a well-known
	// introducer endpoint.
	adv := dev.Outbound(0, priv, ident.Endpoint{IP: 0x7f000001, Port: 3478})
	return t, adv
}

// OpenHole installs mutual NAT rules between two attachments, standing in
// for an introducer-mediated join handshake (the analogue of the simulator's
// InstallHole).
func (s *Switch) OpenHole(a, b *MemTransport, aAdv, bAdv ident.Endpoint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a.dev != nil {
		a.dev.Outbound(time.Since(a.start).Milliseconds(), a.local, bAdv)
	}
	if b.dev != nil {
		b.dev.Outbound(time.Since(b.start).Milliseconds(), b.local, aAdv)
	}
}

// LocalAddr implements Transport.
func (t *MemTransport) LocalAddr() ident.Endpoint { return t.local }

// Packets implements Transport.
func (t *MemTransport) Packets() <-chan Packet { return t.recv }

// Send implements Transport: the datagram leaves through the sender's NAT
// (if any), traverses the switch, and is admitted or dropped by the
// receiver's NAT.
func (t *MemTransport) Send(to ident.Endpoint, data []byte) error {
	if len(data) > MaxDatagram {
		return fmt.Errorf("transport: datagram of %d bytes exceeds limit %d", len(data), MaxDatagram)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errClosed
	}
	t.mu.Unlock()

	from := t.local
	if t.dev != nil {
		// NAT devices are not concurrency-safe; the switch mutex
		// serializes all device access (here and in deliver).
		t.sw.mu.Lock()
		from = t.dev.Outbound(time.Since(t.start).Milliseconds(), t.local, to)
		t.sw.mu.Unlock()
	}
	buf := make([]byte, len(data))
	copy(buf, data)

	deliver := func() {
		t.sw.deliver(from, to, buf)
	}
	if t.sw.latency > 0 {
		time.AfterFunc(t.sw.latency, deliver)
	} else {
		go deliver()
	}
	return nil
}

func (s *Switch) deliver(from, to ident.Endpoint, data []byte) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	target, ok := s.ports[to]
	if !ok {
		// A NAT mapping?
		if att, natted := s.nats[to.IP]; natted {
			now := time.Since(att.tr.start).Milliseconds()
			priv, admitted := att.dev.Inbound(now, from, to)
			if admitted {
				target, ok = s.ports[priv]
			}
		}
	}
	s.mu.Unlock()
	if !ok || target == nil {
		return // silently dropped, as UDP through a NAT would be
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if target.closed {
		return
	}
	select {
	case target.recv <- Packet{From: from, Data: data}:
	default:
		// Receiver queue full: drop, as a socket buffer would.
	}
}

// Close implements Transport.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	close(t.recv)
	t.sw.detach(t)
	return nil
}

func (s *Switch) detach(t *MemTransport) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.ports, t.local)
	if t.dev != nil {
		delete(s.nats, t.dev.PublicIP())
	}
}

// Close shuts the switch down; subsequent deliveries are dropped.
func (s *Switch) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
