package transport

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/ident"
)

func recvOne(t *testing.T, tr Transport) Packet {
	t.Helper()
	select {
	case p, ok := <-tr.Packets():
		if !ok {
			t.Fatal("packet channel closed")
		}
		return p
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for packet")
	}
	return Packet{}
}

func TestMemPublicToPublic(t *testing.T) {
	sw := NewSwitch(0)
	defer sw.Close()
	a, b := sw.Attach(), sw.Attach()
	defer a.Close()
	defer b.Close()

	if err := a.Send(b.LocalAddr(), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if string(p.Data) != "hello" || p.From != a.LocalAddr() {
		t.Errorf("packet = %+v", p)
	}
}

func TestMemNATBlocksUnsolicited(t *testing.T) {
	sw := NewSwitch(0)
	defer sw.Close()
	pub := sw.Attach()
	natted, adv := sw.AttachNAT(ident.PortRestrictedCone, time.Minute)
	defer pub.Close()
	defer natted.Close()

	// Unsolicited: dropped.
	if err := pub.Send(adv, []byte("knock")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-natted.Packets():
		t.Fatalf("NAT admitted unsolicited packet %+v", p)
	case <-time.After(100 * time.Millisecond):
	}

	// After the natted peer sends out, the return path is open.
	if err := natted.Send(pub.LocalAddr(), []byte("ping")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, pub)
	if p.From != adv {
		t.Errorf("observed mapping %v, want advertised %v", p.From, adv)
	}
	if err := pub.Send(p.From, []byte("pong")); err != nil {
		t.Fatal(err)
	}
	back := recvOne(t, natted)
	if string(back.Data) != "pong" {
		t.Errorf("reply = %q", back.Data)
	}
}

func TestMemOpenHole(t *testing.T) {
	sw := NewSwitch(0)
	defer sw.Close()
	a, aAdv := sw.AttachNAT(ident.RestrictedCone, time.Minute)
	b, bAdv := sw.AttachNAT(ident.RestrictedCone, time.Minute)
	defer a.Close()
	defer b.Close()

	sw.OpenHole(a, b, aAdv, bAdv)
	if err := a.Send(bAdv, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if string(p.Data) != "direct" {
		t.Errorf("data = %q", p.Data)
	}
}

func TestMemLatency(t *testing.T) {
	sw := NewSwitch(50 * time.Millisecond)
	defer sw.Close()
	a, b := sw.Attach(), sw.Attach()
	defer a.Close()
	defer b.Close()

	start := time.Now()
	if err := a.Send(b.LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	recvOne(t, b)
	if d := time.Since(start); d < 45*time.Millisecond {
		t.Errorf("delivered after %v, want ≥ 50ms", d)
	}
}

func TestMemCloseSemantics(t *testing.T) {
	sw := NewSwitch(0)
	defer sw.Close()
	a, b := sw.Attach(), sw.Attach()
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal("double close errored:", err)
	}
	// Sending to a detached endpoint silently drops.
	if err := a.Send(b.LocalAddr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Sending from a closed transport errors.
	if err := b.Send(a.LocalAddr(), []byte("x")); err == nil {
		t.Error("send on closed transport succeeded")
	}
	if _, ok := <-b.Packets(); ok {
		t.Error("packet channel not closed")
	}
}

func TestMemOversizedDatagram(t *testing.T) {
	sw := NewSwitch(0)
	defer sw.Close()
	a, b := sw.Attach(), sw.Attach()
	defer a.Close()
	defer b.Close()
	if err := a.Send(b.LocalAddr(), make([]byte, MaxDatagram+1)); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestUDPRoundTrip(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	msg := []byte("over the wire")
	if err := a.Send(b.LocalAddr(), msg); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if !bytes.Equal(p.Data, msg) {
		t.Errorf("data = %q", p.Data)
	}
	if p.From != a.LocalAddr() {
		t.Errorf("from = %v, want %v", p.From, a.LocalAddr())
	}
}

func TestUDPCloseClosesChannel(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-a.Packets():
		if ok {
			t.Error("received packet after close")
		}
	case <-time.After(2 * time.Second):
		t.Error("channel not closed after Close")
	}
	if err := a.Close(); err != nil {
		t.Error("double close errored:", err)
	}
	if err := a.Send(a.LocalAddr(), []byte("x")); err == nil {
		t.Error("send after close succeeded")
	}
}

func TestUDPOversized(t *testing.T) {
	a, err := ListenUDP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Send(a.LocalAddr(), make([]byte, MaxDatagram+1)); err == nil {
		t.Error("oversized datagram accepted")
	}
}

func TestEndpointConversion(t *testing.T) {
	e := ident.Endpoint{IP: 0x7f000001, Port: 4242}
	ua := toUDPAddr(e)
	if ua.String() != "127.0.0.1:4242" {
		t.Errorf("toUDPAddr = %v", ua)
	}
	back, err := toEndpoint(ua)
	if err != nil || back != e {
		t.Errorf("round trip = %v, %v", back, err)
	}
	if _, err := toEndpoint(&net.TCPAddr{}); err == nil {
		t.Error("non-UDP addr accepted")
	}
}
