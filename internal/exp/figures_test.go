package exp

import (
	"strings"
	"testing"
)

// tinyParams keeps figure generation fast enough for the unit test suite
// while still running every code path.
var tinyParams = Params{
	N:         120,
	Rounds:    45,
	Seeds:     []int64{1},
	NATPcts:   []int{40, 80},
	ViewSizes: []int{8},
}

func TestEveryFigureGenerates(t *testing.T) {
	for _, id := range FigureOrder {
		id := id
		t.Run("fig"+id, func(t *testing.T) {
			t.Parallel()
			gen, ok := Figures[id]
			if !ok {
				t.Fatalf("figure %q missing from Figures", id)
			}
			tables, err := gen(tinyParams)
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if tb.Title == "" || len(tb.Columns) < 2 {
					t.Errorf("malformed table %+v", tb)
				}
				if len(tb.Rows) == 0 {
					t.Error("table has no rows")
				}
				for _, r := range tb.Rows {
					if len(r.Values) != len(tb.Columns)-1 {
						t.Errorf("row %q has %d values for %d columns", r.Label, len(r.Values), len(tb.Columns))
					}
				}
				// Both renderings must mention every column.
				text, csv := tb.String(), tb.CSV()
				for _, c := range tb.Columns {
					if !strings.Contains(text, c) || !strings.Contains(csv, c) {
						t.Errorf("column %q missing from output", c)
					}
				}
			}
		})
	}
}

func TestFigureOrderMatchesMap(t *testing.T) {
	if len(FigureOrder) != len(Figures) {
		t.Errorf("FigureOrder has %d entries, Figures %d", len(FigureOrder), len(Figures))
	}
	for _, id := range FigureOrder {
		if _, ok := Figures[id]; !ok {
			t.Errorf("FigureOrder entry %q missing from Figures", id)
		}
	}
}

func TestParamsDefaults(t *testing.T) {
	p := Params{}.defaults()
	if p.N == 0 || p.Rounds == 0 || len(p.Seeds) == 0 || len(p.NATPcts) == 0 || len(p.ViewSizes) == 0 {
		t.Errorf("defaults incomplete: %+v", p)
	}
	// Explicit values survive.
	p = Params{N: 42}.defaults()
	if p.N != 42 {
		t.Error("explicit N overwritten")
	}
}
