package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/trace"
)

// flightState is the run-side half of the flight recorder: it feeds the
// periodic health samples to the trigger evaluator (internal/obs) and, when
// a trigger fires, freezes a forensic bundle from barrier context — the one
// place where the trace rings, health accumulators, and kernel sample ring
// may all be read coherently.
type flightState struct {
	spec *obs.FlightSpec
	rec  *obs.FlightRecorder
	// bundles lists the files written so far (raw JSON; each has a Chrome
	// trace_event sibling not listed here).
	bundles []string
	// err holds the first bundle-write failure; sampling runs inside
	// kernel callbacks that cannot return errors, so Run surfaces it after
	// the simulation ends.
	err error
}

func newFlightState(spec *obs.FlightSpec) *flightState {
	return &flightState{spec: spec, rec: obs.NewFlightRecorder(spec.Triggers)}
}

// observeFlight feeds one health sample to the trigger evaluator and
// captures a bundle per newly fired trigger. Called from the series sampler
// (a global event, hence barrier context). Determinism: evaluation is a
// pure function of the sample sequence, bundle filenames derive from
// (trigger, round), and nothing here feeds back into the simulation.
func (st *runState) observeFlight(pt SamplePoint, series []SamplePoint) {
	f := st.flight
	if f == nil {
		return
	}
	o := obs.Observation{
		Round:   pt.Round,
		Alive:   pt.AlivePeers,
		Cluster: pt.BiggestCluster,
		Stale:   pt.StaleFraction,
		Eclipse: pt.Eclipse,
	}
	if f.rec.Triggers().LeakCheck {
		// At a barrier no shard is mid-event, so every pooled message is
		// either queued or released and the books must balance.
		o.LeakErr = st.net.LeakCheck()
	}
	for _, trig := range f.rec.Observe(o) {
		path, err := st.captureBundle(trig, series)
		if err != nil {
			if f.err == nil {
				f.err = err
			}
			continue
		}
		f.bundles = append(f.bundles, path)
	}
}

// captureBundle freezes the forensic evidence for one fired trigger into
// <dir>/bundle-<trigger>-r<round>.json plus a Chrome trace_event sibling
// (.trace.json) loadable in Perfetto. Must run at barrier context.
func (st *runState) captureBundle(trig obs.Trigger, series []SamplePoint) (string, error) {
	f := st.flight
	cfgJSON, err := json.Marshal(st.cfg)
	if err != nil {
		return "", fmt.Errorf("exp: flight: marshal config: %w", err)
	}
	seriesJSON, err := json.Marshal(series)
	if err != nil {
		return "", fmt.Errorf("exp: flight: marshal series: %w", err)
	}
	b := obs.Bundle{
		Schema:  obs.BundleSchema,
		Trigger: trig,
		Run: obs.RunDescriptor{
			Protocol: st.cfg.Protocol.String(),
			Seed:     st.cfg.Seed,
			N:        st.cfg.N,
			Rounds:   st.cfg.Rounds,
			PeriodMs: st.cfg.PeriodMs,
			Shards:   st.cfg.Shards,
			Workers:  st.cfg.Workers,
			Config:   cfgJSON,
		},
		Health: obs.SnapshotHealth(st.health),
		Series: seriesJSON,
	}
	if st.cfg.Scenario != nil {
		b.Run.Scenario = st.cfg.Scenario.Name
	}
	if st.cfg.Obs != nil {
		b.Kernel = obs.SnapshotKernel(st.cfg.Obs.Timing())
	}
	if ts := st.net.Trace(); ts != nil {
		b.Trace = ts.Merged()
	}
	totals := st.net.DropTotals()
	b.Drops = make(map[string]uint64, len(totals))
	for cause, info := range trace.DropCauses {
		b.Drops[info.Metric] = totals[cause]
	}

	if err := os.MkdirAll(f.spec.Dir, 0o755); err != nil {
		return "", fmt.Errorf("exp: flight: %w", err)
	}
	base := fmt.Sprintf("bundle-%s-r%04d", trig.Name, trig.Round)
	path := filepath.Join(f.spec.Dir, base+".json")
	if err := b.Write(path); err != nil {
		return "", fmt.Errorf("exp: flight: %w", err)
	}
	cf, err := os.Create(filepath.Join(f.spec.Dir, base+".trace.json"))
	if err != nil {
		return "", fmt.Errorf("exp: flight: %w", err)
	}
	if err := obs.WriteChromeTrace(cf, &b); err != nil {
		cf.Close()
		return "", fmt.Errorf("exp: flight: chrome export: %w", err)
	}
	if err := cf.Close(); err != nil {
		return "", fmt.Errorf("exp: flight: %w", err)
	}
	return path, nil
}
