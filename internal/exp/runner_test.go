package exp

import (
	"reflect"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
)

// fastCfg is a small configuration that still exhibits the paper's
// qualitative behaviours.
func fastCfg(proto Protocol, natRatio float64) Config {
	return Config{
		N: 250, Rounds: 90, NATRatio: natRatio, Protocol: proto,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		Seed: 42,
		// The §5 Nylon experiments run with no-reply eviction, like any
		// deployable implementation; the §3 baseline figures disable it
		// explicitly where fidelity to Fig. 1 matters.
		EvictUnanswered: proto != ProtoGeneric,
	}
}

func mustRun(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestDeterminism: a run is a pure function of its configuration.
func TestDeterminism(t *testing.T) {
	cfg := fastCfg(ProtoNylon, 0.7)
	cfg.N, cfg.Rounds = 120, 50
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs with the same seed differ:\n%+v\n%+v", a, b)
	}
	cfg.Seed = 43
	c := mustRun(t, cfg)
	if reflect.DeepEqual(a.BytesPerSecAll, c.BytesPerSecAll) && a.StaleFraction == c.StaleFraction && a.ChiSquareStat == c.ChiSquareStat {
		t.Error("different seeds produced identical metrics; RNG likely not wired through")
	}
}

// TestNylonPreservesSamplingUnderNATs checks the paper's headline claims at
// 80% NATs: no partition, few stale references, natted peers represented in
// views near their population share, high shuffle completion.
func TestNylonPreservesSamplingUnderNATs(t *testing.T) {
	res := mustRun(t, fastCfg(ProtoNylon, 0.8))
	if res.BiggestCluster < 0.99 {
		t.Errorf("biggest cluster = %.2f, want ~1.0", res.BiggestCluster)
	}
	if res.StaleFraction > 0.15 {
		t.Errorf("stale fraction = %.2f, want < 0.15", res.StaleFraction)
	}
	if res.NattedNonStale < 0.6 {
		t.Errorf("natted share of non-stale refs = %.2f, want ≈ 0.8", res.NattedNonStale)
	}
	if res.CompletionRate < 0.85 {
		t.Errorf("completion rate = %.2f, want > 0.85", res.CompletionRate)
	}
	if res.AvgChainLen <= 0 || res.AvgChainLen > 5 {
		t.Errorf("chain length = %.2f, want within (0,5] per Fig. 9", res.AvgChainLen)
	}
}

// TestBaselineDegradesUnderNATs checks the Section 3 pathologies at 80% PRC
// NATs: many stale references and natted peers starkly under-represented.
func TestBaselineDegradesUnderNATs(t *testing.T) {
	cfg := fastCfg(ProtoGeneric, 0.8)
	cfg.Mix = prcOnly
	res := mustRun(t, cfg)
	if res.StaleFraction < 0.2 {
		t.Errorf("baseline stale fraction = %.2f, want > 0.2", res.StaleFraction)
	}
	// 80% of peers natted but far fewer of the usable references.
	if res.NattedNonStale > 0.3 {
		t.Errorf("baseline natted non-stale share = %.2f, want « 0.8", res.NattedNonStale)
	}
	if res.CompletionRate > 0.8 {
		t.Errorf("baseline completion = %.2f, want well below Nylon's", res.CompletionRate)
	}
}

// TestBaselinePartitionsAtFullNAT: with every peer natted the baseline
// overlay falls apart entirely (Fig. 2's right edge).
func TestBaselinePartitionsAtFullNAT(t *testing.T) {
	cfg := fastCfg(ProtoGeneric, 1.0)
	cfg.Mix = prcOnly
	// Decay takes several hole-timeout windows (18 rounds each) to erase
	// the bootstrap holes.
	cfg.Rounds = 200
	res := mustRun(t, cfg)
	if res.BiggestCluster > 0.5 {
		t.Errorf("baseline biggest cluster at 100%% NAT = %.2f, want < 0.5", res.BiggestCluster)
	}
	// Nylon survives the same setting.
	nylon := mustRun(t, fastCfg(ProtoNylon, 1.0))
	if nylon.BiggestCluster < 0.9 {
		t.Errorf("nylon biggest cluster at 100%% NAT = %.2f, want > 0.9", nylon.BiggestCluster)
	}
}

// TestNylonChurnResilience reproduces Fig. 10's headline: Nylon tolerates
// the departure of half the peers without partitioning.
func TestNylonChurnResilience(t *testing.T) {
	cfg := fastCfg(ProtoNylon, 0.6)
	cfg.Rounds = 120
	cfg.ChurnAtRound = 30
	cfg.ChurnFraction = 0.5
	res := mustRun(t, cfg)
	if res.AlivePeers != 125 {
		t.Fatalf("alive peers = %d, want 125", res.AlivePeers)
	}
	if res.BiggestCluster < 0.95 {
		t.Errorf("biggest cluster after 50%% churn = %.2f, want > 0.95", res.BiggestCluster)
	}
}

// TestNylonRandomnessComparableToNATFree: the chi-square statistic of the
// sample stream under heavy NATs stays within 2x of the NAT-free overlay's,
// while the NAT-oblivious baseline blows up (the §5 randomness check).
func TestNylonRandomnessComparableToNATFree(t *testing.T) {
	free := mustRun(t, fastCfg(ProtoGeneric, 0))
	nylon := mustRun(t, fastCfg(ProtoNylon, 0.8))
	base := mustRun(t, fastCfg(ProtoGeneric, 0.8))
	if free.ChiSquareStat <= 0 || nylon.ChiSquareStat <= 0 {
		t.Fatalf("chi-square stats missing: free=%v nylon=%v", free.ChiSquareStat, nylon.ChiSquareStat)
	}
	if nylon.ChiSquareStat > 2*free.ChiSquareStat {
		t.Errorf("nylon chi2/dof = %.1f vs NAT-free %.1f; randomness not preserved", nylon.ChiSquareStat, free.ChiSquareStat)
	}
	if base.ChiSquareStat < 2*nylon.ChiSquareStat {
		t.Errorf("baseline chi2/dof = %.1f should far exceed nylon's %.1f under NATs", base.ChiSquareStat, nylon.ChiSquareStat)
	}
}

// TestARRGBetterThanGenericWorseThanNylon places the cache baseline between
// the extremes, as the paper's §1 discussion predicts.
func TestARRGBetterThanGenericWorseThanNylon(t *testing.T) {
	cfgA := fastCfg(ProtoARRG, 0.9)
	cfgA.Mix = prcOnly
	arrg := mustRun(t, cfgA)
	cfgG := fastCfg(ProtoGeneric, 0.9)
	cfgG.Mix = prcOnly
	gen := mustRun(t, cfgG)
	if arrg.CompletionRate <= gen.CompletionRate {
		t.Errorf("ARRG completion %.2f not better than generic %.2f", arrg.CompletionRate, gen.CompletionRate)
	}
	nylon := mustRun(t, fastCfg(ProtoNylon, 0.9))
	if arrg.NattedNonStale >= nylon.NattedNonStale {
		t.Errorf("ARRG natted representation %.2f should trail Nylon's %.2f", arrg.NattedNonStale, nylon.NattedNonStale)
	}
}

// TestStaticRVPLoadImbalance verifies the §4 strawman's pathology: public
// peers carry a large traffic multiple of natted peers' load, while Nylon
// keeps the two within a narrow band.
func TestStaticRVPLoadImbalance(t *testing.T) {
	cfg := fastCfg(ProtoStaticRVP, 0.8)
	res := mustRun(t, cfg)
	if res.BytesPerSecPublic < 1.5*res.BytesPerSecNatted {
		t.Errorf("static RVP public load %.0f B/s not ≫ natted %.0f B/s", res.BytesPerSecPublic, res.BytesPerSecNatted)
	}
	nylon := mustRun(t, fastCfg(ProtoNylon, 0.8))
	if nylon.BytesPerSecPublic > 1.3*nylon.BytesPerSecNatted {
		t.Errorf("nylon public load %.0f B/s vs natted %.0f B/s: not evenly spread", nylon.BytesPerSecPublic, nylon.BytesPerSecNatted)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{N: -1},
		{NATRatio: 1.5},
		{Mix: NATMix{RC: 0.5}},
		{ChurnFraction: -0.1},
		{ChurnFraction: 1.0},
		{ChurnAtRound: 1000, Rounds: 100, ChurnFraction: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
}

func TestNATMixClasses(t *testing.T) {
	cs := DefaultMix.classes(100)
	if len(cs) != 100 {
		t.Fatalf("classes returned %d entries", len(cs))
	}
	counts := map[ident.NATClass]int{}
	for _, c := range cs {
		counts[c]++
	}
	if counts[ident.RestrictedCone] != 50 || counts[ident.PortRestrictedCone] != 40 || counts[ident.Symmetric] != 10 {
		t.Errorf("mix counts = %v", counts)
	}
	if got := DefaultMix.classes(0); got != nil {
		t.Errorf("classes(0) = %v", got)
	}
	// Remainders fall to RC.
	cs = DefaultMix.classes(3)
	if len(cs) != 3 {
		t.Errorf("classes(3) returned %d", len(cs))
	}
}

func TestProtocolString(t *testing.T) {
	for p, want := range map[Protocol]string{
		ProtoGeneric: "generic", ProtoNylon: "nylon", ProtoARRG: "arrg",
		ProtoStaticRVP: "static-rvp", Protocol(9): "protocol(9)",
	} {
		if got := p.String(); got != want {
			t.Errorf("Protocol(%d).String() = %q, want %q", p, got, want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		Title:   "test",
		Columns: []string{"x", "a", "b"},
		Rows:    []Row{{Label: "1", Values: []float64{2.5, 3}}},
	}
	if s := tb.String(); s == "" || s[0] != '#' {
		t.Errorf("String() = %q", s)
	}
	want := "x,a,b\n1,2.5,3\n"
	if got := tb.CSV(); got != want {
		t.Errorf("CSV() = %q, want %q", got, want)
	}
}

func TestMeanResult(t *testing.T) {
	rs := []Result{
		{BiggestCluster: 1, StaleFraction: 0.2, ChiSquareOK: true},
		{BiggestCluster: 0.5, StaleFraction: 0.4, ChiSquareOK: false},
	}
	m := meanResult(rs)
	if m.BiggestCluster != 0.75 || m.StaleFraction < 0.299 || m.StaleFraction > 0.301 {
		t.Errorf("meanResult = %+v", m)
	}
	if m.ChiSquareOK {
		t.Error("ChiSquareOK should AND across seeds")
	}
	if zero := meanResult(nil); zero.BiggestCluster != 0 || zero.Series != nil {
		t.Error("meanResult(nil) not zero")
	}
}

func TestRunSeedsAverages(t *testing.T) {
	cfg := fastCfg(ProtoGeneric, 0.5)
	cfg.N, cfg.Rounds = 100, 40
	res, err := NewExecutor(2).Submit(cfg, []int64{1, 2}).Get()
	if err != nil {
		t.Fatal(err)
	}
	if res.BytesPerSecAll <= 0 {
		t.Error("averaged result lost bandwidth metric")
	}
}

// TestExecutorRunPoint pins the shared executor's contract: per-seed results
// in seed order, each bit-identical to a direct single-worker Run, and the
// submitted Future agreeing with their mean.
func TestExecutorRunPoint(t *testing.T) {
	cfg := fastCfg(ProtoGeneric, 0.5)
	cfg.N, cfg.Rounds = 100, 40
	seeds := []int64{3, 1}
	ex := NewExecutor(2)
	results, err := ex.RunPoint(cfg, seeds)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(seeds) {
		t.Fatalf("RunPoint returned %d results for %d seeds", len(results), len(seeds))
	}
	for i, seed := range seeds {
		direct := cfg
		direct.Seed = seed
		direct.Workers = 1
		want, err := Run(direct)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], want) {
			t.Errorf("seed %d result differs from direct run", seed)
		}
	}
	mean, err := ex.Submit(cfg, seeds).Get()
	if err != nil {
		t.Fatal(err)
	}
	if want := meanResult(results); mean.BiggestCluster != want.BiggestCluster || mean.BytesPerSecAll != want.BytesPerSecAll {
		t.Errorf("Submit mean %+v differs from meanResult %+v", mean, want)
	}
}

func TestSeedList(t *testing.T) {
	if got := SeedList(3); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("SeedList(3) = %v", got)
	}
	if got := SeedList(0); len(got) != 0 {
		t.Errorf("SeedList(0) = %v", got)
	}
	if got := SeedList(-1); len(got) != 0 {
		t.Errorf("SeedList(-1) = %v", got)
	}
}

func TestFilterMin(t *testing.T) {
	got := filterMin([]int{0, 40, 90}, 40)
	if len(got) != 2 || got[0] != 40 {
		t.Errorf("filterMin = %v", got)
	}
}

// TestSeriesSampling checks the periodic overlay snapshots: one per interval,
// monotone rounds, and a visible churn dip followed by recovery.
func TestSeriesSampling(t *testing.T) {
	cfg := fastCfg(ProtoNylon, 0.6)
	cfg.Rounds = 80
	cfg.SampleEveryRounds = 10
	cfg.ChurnAtRound = 40
	cfg.ChurnFraction = 0.5
	res := mustRun(t, cfg)
	if len(res.Series) != 8 {
		t.Fatalf("series has %d points, want 8", len(res.Series))
	}
	for i, pt := range res.Series {
		if pt.Round != (i+1)*10 {
			t.Errorf("point %d at round %d, want %d", i, pt.Round, (i+1)*10)
		}
		if pt.BiggestCluster < 0 || pt.BiggestCluster > 1 {
			t.Errorf("point %d cluster %v out of range", i, pt.BiggestCluster)
		}
	}
	// Population halves at round 40.
	if res.Series[2].AlivePeers != 250 || res.Series[5].AlivePeers != 125 {
		t.Errorf("alive counts: %d then %d, want 250 then 125",
			res.Series[2].AlivePeers, res.Series[5].AlivePeers)
	}
	// Stale refs spike right after churn and recover by the end.
	afterChurn := res.Series[4].StaleFraction
	atEnd := res.Series[7].StaleFraction
	if afterChurn <= atEnd {
		t.Errorf("no churn spike: stale %.3f after churn vs %.3f at end", afterChurn, atEnd)
	}
}
