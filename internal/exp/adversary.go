package exp

import (
	"fmt"
	"sort"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/xrand"
)

// Adversary RNG stream salts, companions of the scenario salts in
// scenario_driver.go. Assignment draws from per-(spec, peer index) streams so
// cohort membership is a pure function of (Seed, spec order, peer index) —
// identical at build time and at mid-run joins, invariant to worker and
// shard counts.
const (
	saltAdversaryAssign uint64 = 0xc4a2_0000_0000_0004 // cohort membership
	saltAdversaryRNG    uint64 = 0xc4a2_0000_0000_0005 // wrapper-private randomness
)

// AdversaryStats holds the attack-centric metrics of a run. All fields stay
// zero for runs without adversaries. "Honest" peers are those assigned no
// strategy; "colluders" are the poison-view cohort whose descriptors every
// poisoner advertises. View-content metrics (eclipse, colluder shares) are
// computed over the raw views of alive honest peers — eclipse by departed
// colluders still counts, because the victim's sampling is still captured.
type AdversaryStats struct {
	// AdversaryCount is the number of peers ever assigned a strategy;
	// ColluderCount the subset running poison-view.
	AdversaryCount int
	ColluderCount  int
	// EclipseFraction is the fraction of alive honest peers whose
	// non-empty view consists entirely of colluders — the attack's
	// success probability.
	EclipseFraction float64
	// ColluderViewFraction is the fraction of alive honest peers whose
	// view contains at least one colluder (attack reach).
	ColluderViewFraction float64
	// ColluderIndegreeShare is the share of honest view entries that
	// reference colluders; under unbiased sampling it approaches the
	// colluder population share.
	ColluderIndegreeShare float64
	// TopKIndegreeShare is the share of honest view references held by the
	// k most-referenced peers, k = ColluderCount (or AdversaryCount when
	// no colluders exist) — hub concentration whoever the hubs are.
	TopKIndegreeShare float64
	// HonestCluster is the biggest-cluster fraction of the honest-only
	// subgraph of usable edges: partition resistance once every
	// adversarial peer and edge is discounted.
	HonestCluster float64
	// RelayDenied, AdversaryDrops and HopLimitDrops aggregate the
	// corresponding core.Stats counters across all engines.
	RelayDenied    uint64
	AdversaryDrops uint64
	HopLimitDrops  uint64
}

// advSpec is one parsed adversary cohort.
type advSpec struct {
	strategy  adversary.Strategy
	fraction  float64
	ids       map[ident.NodeID]bool
	activeAt  int64
	dropKinds adversary.KindMask
	victims   map[ident.NodeID]bool
}

// adversaryState carries a run's Byzantine wiring: the parsed cohort specs,
// the shared colluder roster, and the assigned strategies (for metrics).
// Mutation happens only at barrier context — peer creation and scenario
// joins — so mid-window reads from shard goroutines are race-free.
type adversaryState struct {
	seed       int64
	specs      []advSpec
	specRoots  []int64 // per-spec assignment stream roots
	colluders  *adversary.ColluderSet
	strategies map[ident.NodeID]adversary.Strategy
	count      int
}

// newAdversaryState parses the scenario's adversary specs; nil when there
// are none (the zero-overhead fast path). cfg must be validated.
func newAdversaryState(cfg Config) *adversaryState {
	list := cfg.Scenario.AdversaryList()
	if len(list) == 0 {
		return nil
	}
	a := &adversaryState{
		seed:       cfg.Seed,
		colluders:  adversary.NewColluderSet(),
		strategies: make(map[ident.NodeID]adversary.Strategy),
	}
	root := xrand.Mix(cfg.Seed, saltAdversaryAssign)
	for j, spec := range list {
		strat, err := adversary.ParseStrategy(spec.Strategy)
		if err != nil {
			panic(fmt.Sprintf("exp: unvalidated adversary spec: %v", err)) // Config.validate runs first
		}
		mask, err := adversary.ParseKinds(spec.DropKinds)
		if err != nil {
			panic(fmt.Sprintf("exp: unvalidated adversary spec: %v", err))
		}
		sp := advSpec{
			strategy:  strat,
			fraction:  spec.Fraction,
			activeAt:  int64(spec.FromRound) * cfg.PeriodMs,
			dropKinds: mask,
		}
		if len(spec.IDs) > 0 {
			sp.ids = make(map[ident.NodeID]bool, len(spec.IDs))
			for _, id := range spec.IDs {
				sp.ids[ident.NodeID(id)] = true
			}
		}
		if len(spec.Victims) > 0 {
			sp.victims = make(map[ident.NodeID]bool, len(spec.Victims))
			for _, id := range spec.Victims {
				sp.victims[ident.NodeID(id)] = true
			}
		}
		a.specs = append(a.specs, sp)
		a.specRoots = append(a.specRoots, xrand.Mix(root, uint64(j)))
	}
	return a
}

// specFor decides which cohort (if any) the peer at the given index joins:
// specs are matched in order, first match wins. Fractional membership draws
// one value from a stream derived solely from (seed, spec, peer index), so
// the decision is identical wherever and whenever the peer is created.
func (a *adversaryState) specFor(idx int, id ident.NodeID) *advSpec {
	for j := range a.specs {
		sp := &a.specs[j]
		if sp.ids != nil {
			if sp.ids[id] {
				return sp
			}
			continue
		}
		if xrand.New(xrand.Mix(a.specRoots[j], uint64(idx))).Float64() < sp.fraction {
			return sp
		}
	}
	return nil
}

// wrap decorates a freshly built honest engine when its peer belongs to a
// cohort, registering colluders and the assigned strategy. Called from the
// engine factory, i.e. at barrier context only.
func (a *adversaryState) wrap(idx int, holeTimeoutMs int64, eng core.Engine) core.Engine {
	self := eng.Self()
	sp := a.specFor(idx, self.ID)
	if sp == nil {
		return eng
	}
	a.strategies[self.ID] = sp.strategy
	a.count++
	if sp.strategy == adversary.PoisonView {
		var ttl uint32
		if self.Class.Natted() {
			ttl = uint32(holeTimeoutMs)
		}
		a.colluders.Add(self, ttl)
	}
	return adversary.Wrap(eng, adversary.Config{
		Strategy:  sp.strategy,
		ActiveAt:  sp.activeAt,
		Colluders: a.colluders,
		DropKinds: sp.dropKinds,
		Victims:   sp.victims,
	}, xrand.Mix(xrand.Mix(a.seed, uint64(idx)), saltAdversaryRNG))
}

// honest reports whether the peer was assigned no strategy.
func (a *adversaryState) honest(id ident.NodeID) bool {
	return a.strategies[id] == adversary.None
}

// advViewSample is one walk over the raw views of alive honest peers.
type advViewSample struct {
	honest          int
	eclipsed        int
	withColluder    int
	entriesTotal    int
	entriesColluder int
	// refs counts, per target, how often honest views reference it (only
	// filled when withRefs is requested — the final measurement needs it,
	// the periodic series does not).
	refs map[ident.NodeID]int
}

func (s advViewSample) eclipseFraction() float64 {
	if s.honest == 0 {
		return 0
	}
	return float64(s.eclipsed) / float64(s.honest)
}

func (s advViewSample) colluderViewFraction() float64 {
	if s.honest == 0 {
		return 0
	}
	return float64(s.withColluder) / float64(s.honest)
}

func (s advViewSample) colluderShare() float64 {
	if s.entriesTotal == 0 {
		return 0
	}
	return float64(s.entriesColluder) / float64(s.entriesTotal)
}

// topKShare returns the share of references held by the k most-referenced
// targets (0 when no references were collected).
func (s advViewSample) topKShare(k int) float64 {
	if k <= 0 || len(s.refs) == 0 || s.entriesTotal == 0 {
		return 0
	}
	counts := make([]int, 0, len(s.refs))
	for _, c := range s.refs {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if k > len(counts) {
		k = len(counts)
	}
	top := 0
	for _, c := range counts[:k] {
		top += c
	}
	return float64(top) / float64(s.entriesTotal)
}

// sampleAdversary walks the raw views of alive honest peers, counting
// colluder penetration. Runs at barrier context (series samples, final
// measurement).
func (st *runState) sampleAdversary(withRefs bool) advViewSample {
	s := advViewSample{}
	if withRefs {
		s.refs = make(map[ident.NodeID]int)
	}
	for _, p := range st.peers {
		if !p.Alive || !st.adv.honest(p.ID) {
			continue
		}
		s.honest++
		v := p.Engine.View()
		n := v.Len()
		colluder := 0
		for j := 0; j < n; j++ {
			d := v.At(j)
			if st.adv.colluders.Contains(d.ID) {
				colluder++
			}
			if s.refs != nil {
				s.refs[d.ID]++
			}
		}
		s.entriesTotal += n
		s.entriesColluder += colluder
		if colluder > 0 {
			s.withColluder++
			if colluder == n {
				s.eclipsed++
			}
		}
	}
	return s
}

// measureAdversary fills the Result's adversary block: view penetration,
// indegree concentration, and the honest-only partition resistance over the
// already-computed usable edges.
func (st *runState) measureAdversary(res *Result, aliveIDs []ident.NodeID, edges []graph.Edge) {
	a := st.adv
	s := st.sampleAdversary(true)
	res.Adversary.AdversaryCount = a.count
	res.Adversary.ColluderCount = a.colluders.Len()
	res.Adversary.EclipseFraction = s.eclipseFraction()
	res.Adversary.ColluderViewFraction = s.colluderViewFraction()
	res.Adversary.ColluderIndegreeShare = s.colluderShare()
	k := a.colluders.Len()
	if k == 0 {
		k = a.count
	}
	res.Adversary.TopKIndegreeShare = s.topKShare(k)

	honestIDs := make([]ident.NodeID, 0, len(aliveIDs))
	for _, id := range aliveIDs {
		if a.honest(id) {
			honestIDs = append(honestIDs, id)
		}
	}
	honestEdges := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		if a.honest(e.From) && a.honest(e.To) {
			honestEdges = append(honestEdges, e)
		}
	}
	res.Adversary.HonestCluster = graph.BiggestClusterFraction(honestIDs, honestEdges)
}
