package exp

import (
	"fmt"
	"strings"
)

// Table is a printable result grid: one labelled row per sweep point.
type Table struct {
	Title   string
	Columns []string // Columns[0] labels the row key
	Rows    []Row
}

// Row is one sweep point.
type Row struct {
	Label  string
	Values []float64
}

// String renders the table as aligned text with a '#'-prefixed header,
// gnuplot-friendly.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Title)
	fmt.Fprintf(&b, "# %-10s", t.Columns[0])
	for _, c := range t.Columns[1:] {
		fmt.Fprintf(&b, " %14s", c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "  %-10s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, " %14.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		b.WriteString(r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
