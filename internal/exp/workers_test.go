package exp

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/view"
)

// The cross-worker determinism corpus: the satellite acceptance tests of the
// sharded kernel. A run must be a pure function of (Config, Scenario, Seed)
// — bit-identical Results (including ScenarioStats, the recovery series and
// the executed event count) whatever the worker count, and even whatever the
// shard count.

// corpusCfg is the shared corpus configuration: big enough that every shard
// owns a meaningful population and the partition/churn machinery engages,
// small enough for the test budget.
func corpusCfg() Config {
	return Config{
		N: 240, Rounds: 40, NATRatio: 0.7, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 99, SampleEveryRounds: 5,
		ChurnAtRound: 25, ChurnFraction: 0.3,
	}
}

// normalize strips the echoed Cfg (it carries the Workers/Shards knobs that
// legitimately differ between corpus legs) so DeepEqual compares only
// measured quantities.
func normalize(r Result) Result {
	r.Cfg = Config{}
	return r
}

func runCorpus(t *testing.T, cfg Config) Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.EventsProcessed == 0 {
		t.Fatal("run executed no events")
	}
	return normalize(res)
}

// TestWorkerCountInvariance locks in the kernel's headline guarantee: the
// same (Config, Scenario, Seed) at workers = 1, 2 and 8 produces a
// bit-identical Result, for a quiescent run and for the storm corpus
// scenario (continuous churn, mid-run joins, a partition/heal cycle, and
// lossy jittered links — every stochastic dimension at once).
func TestWorkerCountInvariance(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []struct {
		name     string
		scenario *scenario.Scenario
		rounds   int
	}{
		{"quiescent", nil, 0},
		{"storm", storm, 80}, // past the round-70 flash crowd
	} {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			cfg := corpusCfg()
			cfg.Scenario = leg.scenario
			if leg.rounds > 0 {
				cfg.Rounds = leg.rounds
			}
			cfg.Workers = 1
			want := runCorpus(t, cfg)
			for _, workers := range []int{2, 8} {
				cfg.Workers = workers
				got := runCorpus(t, cfg)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("workers=%d diverged from workers=1:\n 1: %+v\n%2d: %+v", workers, want, workers, got)
				}
			}
		})
	}
}

// TestShardCountInvariance pins the stronger property the stable event keys
// buy: the shard count is pure structure, not behavior — results are
// bit-identical whether the world runs on one shard or sixteen.
func TestShardCountInvariance(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpusCfg()
	cfg.Rounds = 80 // past the round-70 flash crowd
	cfg.Scenario = storm
	cfg.Workers = 2
	cfg.Shards = 1
	want := runCorpus(t, cfg)
	for _, shards := range []int{3, 16} {
		cfg.Shards = shards
		got := runCorpus(t, cfg)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("shards=%d diverged from shards=1:\n  1: %+v\n %2d: %+v", shards, want, shards, got)
		}
	}
}
