// Package exp is the experiment harness of the reproduction: it builds
// simulated overlays per the paper's setup (§5), runs them on the
// discrete-event simulator, and measures every quantity the paper plots —
// biggest cluster, stale references, sampling randomness, bandwidth, RVP
// chain lengths, and churn resilience.
package exp

import (
	"fmt"
	"runtime"

	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/view"
)

// Protocol selects the engine under test.
type Protocol int

// Protocols.
const (
	// ProtoGeneric is the NAT-oblivious baseline of Fig. 1.
	ProtoGeneric Protocol = iota
	// ProtoNylon is the paper's contribution (Fig. 6).
	ProtoNylon
	// ProtoARRG is the reachable-peer-cache baseline of Drost et al. [6].
	ProtoARRG
	// ProtoStaticRVP is the fixed-public-rendez-vous strawman of §4.
	ProtoStaticRVP
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoGeneric:
		return "generic"
	case ProtoNylon:
		return "nylon"
	case ProtoARRG:
		return "arrg"
	case ProtoStaticRVP:
		return "static-rvp"
	}
	return fmt.Sprintf("protocol(%d)", int(p))
}

// ParseProtocol parses a protocol name as printed by Protocol.String.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "generic":
		return ProtoGeneric, nil
	case "nylon":
		return ProtoNylon, nil
	case "arrg":
		return ProtoARRG, nil
	case "static-rvp":
		return ProtoStaticRVP, nil
	}
	return 0, fmt.Errorf("exp: unknown protocol %q (want generic, nylon, arrg or static-rvp)", s)
}

// NATMix describes how the natted population splits across NAT classes.
// Fractions must sum to 1.
type NATMix struct {
	RC, PRC, SYM float64
}

// DefaultMix is the paper's distribution: 50% RC, 40% PRC, 10% SYM (§5).
var DefaultMix = NATMix{RC: 0.5, PRC: 0.4, SYM: 0.1}

// classes deterministically expands the mix into per-peer classes for n
// natted peers, preserving exact proportions (largest remainder on the
// truncation).
func (m NATMix) classes(n int) []ident.NATClass {
	if n == 0 {
		return nil
	}
	nRC := int(m.RC * float64(n))
	nPRC := int(m.PRC * float64(n))
	nSYM := int(m.SYM * float64(n))
	out := make([]ident.NATClass, 0, n)
	for i := 0; i < nRC; i++ {
		out = append(out, ident.RestrictedCone)
	}
	for i := 0; i < nPRC; i++ {
		out = append(out, ident.PortRestrictedCone)
	}
	for i := 0; i < nSYM; i++ {
		out = append(out, ident.Symmetric)
	}
	for len(out) < n {
		out = append(out, ident.RestrictedCone)
	}
	return out
}

// Config is one experiment point.
type Config struct {
	// N is the number of peers (paper: 10,000; defaults here are smaller).
	N int
	// ViewSize is the partial view size (paper: 15 unless stated).
	ViewSize int
	// NATRatio is the fraction of peers behind NATs, in [0,1].
	NATRatio float64
	// Mix splits the natted population across classes.
	Mix NATMix
	// Protocol selects the engine.
	Protocol Protocol
	// Selection, Merge and PushPull configure the gossip dimensions.
	Selection view.Selection
	Merge     view.Merge
	PushPull  bool
	// PeriodMs is the shuffling period (paper: 5 s).
	PeriodMs int64
	// LatencyMs is the one-way message latency (paper: 50 ms).
	LatencyMs int64
	// HoleTimeoutMs is the NAT rule lifetime (paper: 90 s).
	HoleTimeoutMs int64
	// Rounds is the number of shuffling periods to simulate.
	Rounds int
	// Seed drives all randomness of the run.
	Seed int64

	// ChurnAtRound, when positive, removes ChurnFraction of the peers
	// (uniformly, hence proportionally to the public/natted split, as in
	// the paper) after that many rounds.
	ChurnAtRound  int
	ChurnFraction float64

	// Scenario, when non-nil and non-quiescent, drives a declarative
	// environment timeline over the run: continuous Poisson churn, flash
	// crowds, gateway failures, NAT-mix shifts, link jitter/loss, and
	// partitions (see internal/scenario). All scenario randomness draws
	// from streams derived from Seed, so the run stays a pure function of
	// (Config, Scenario, Seed). A nil or quiescent scenario leaves the run
	// bit-identical to one with no scenario at all.
	Scenario *scenario.Scenario

	// CacheSize is the reachable-peer cache size for ProtoARRG (default 8).
	CacheSize int

	// EvictUnanswered enables Jelasity-style eviction of shuffle targets
	// that fail to answer within one period. Off by default, matching the
	// paper's pseudocode; ablation A5 measures its effect on churn
	// recovery.
	EvictUnanswered bool

	// SampleEveryRounds, when positive, snapshots the overlay's health
	// (biggest cluster, stale fraction) every that many rounds into
	// Result.Series — e.g. for churn recovery curves.
	SampleEveryRounds int

	// TraceCapacity, when positive, records the last that many network
	// events (sends, deliveries, drops) per shard into per-shard trace
	// rings, merged into Result.Trace / Result.TraceDump in global
	// scheduler-key order. Tracing works at any worker and shard count and
	// never perturbs the run (TestTraceEffectInvariance pins both).
	TraceCapacity int

	// UPnPFraction is the fraction of natted peers whose NAT honours an
	// explicit port-mapping protocol (NAT-PMP / UPnP, the paper's §6
	// alternative): they keep their device but advertise a permanent
	// pinhole, making them publicly reachable. Ablation A6 sweeps it.
	UPnPFraction float64

	// Shards is the number of simulation shards (default 8, a fixed
	// constant — never derived from the machine). Results are invariant
	// under the shard count (see DESIGN.md §5): it is purely a throughput
	// knob bounding how many workers can help.
	Shards int
	// Workers is the number of OS threads executing shards in parallel
	// (default GOMAXPROCS, clamped to Shards). Results are bit-identical
	// for any worker count.
	Workers int

	// Obs, when non-nil, receives the run's observability surface: the
	// runner binds the hub to the run (per-shard metrics registry, health
	// accumulators, kernel timing probe) and hosts read it live or at the
	// end. Instrumentation never feeds back into the simulation, so an
	// observed run stays bit-identical to an unobserved one. A Hub binds to
	// exactly one run; give each run its own. Excluded from serialization:
	// it is host wiring, not an experiment parameter.
	Obs *obs.Hub `json:"-"`

	// Flight, when non-nil, arms the anomaly-triggered flight recorder: the
	// run's periodic health samples feed the spec's triggers, and each
	// trigger that fires freezes a forensic bundle (merged trace tail,
	// health and kernel snapshots, drop counters, series so far) into
	// Flight.Dir; Result.Bundles lists the files written. A flight-armed
	// run implies tracing (see traceCapacity) and health sampling
	// (SampleEveryRounds defaults to 1) and, like Obs, never feeds back
	// into the simulation. Host wiring, not an experiment parameter:
	// excluded from serialization.
	Flight *obs.FlightSpec `json:"-"`

	// PerDatagramDelivery disables the network's batched lane delivery:
	// every delivery event dispatches exactly one datagram, as the
	// pre-batching engine did. Results are bit-identical either way —
	// TestBatchedDeliveryInvariance pins it — so this is a debugging and
	// bisection knob, not an experiment parameter; excluded from
	// serialization so sweep cache keys ignore it.
	PerDatagramDelivery bool `json:"-"`

	// VerifySamples re-derives every periodic series sample through the
	// legacy full-copy EntriesInto sweep and cross-checks the zero-copy
	// sampler and the incremental health accumulators against it, panicking
	// on divergence. A debugging and CI cross-check: it restores the O(N)
	// copying cost the sampler exists to avoid.
	VerifySamples bool

	// Checkpoint, when non-nil, arms crash-survivable checkpointing: the
	// run serializes its complete state into Dir at round boundaries (see
	// internal/snapshot and Resume). Host wiring like Obs — a checkpointed
	// run's simulation is bit-identical to an unchecked one — and excluded
	// from serialization, so a snapshot never embeds its own spec.
	Checkpoint *CheckpointSpec `json:"-"`
}

// CheckpointSpec configures checkpoint writing for one run.
type CheckpointSpec struct {
	// Dir receives the snapshot files (created if missing), one per
	// checkpoint, named by round (see SnapshotFileName).
	Dir string
	// EveryRounds, when positive, writes a snapshot at the first kernel
	// barrier at or past every EveryRounds-round mark. Zero writes no
	// periodic snapshots (useful with Stop alone).
	EveryRounds int
	// Stop, when non-nil, is polled at every kernel barrier; returning true
	// makes the run write a final snapshot and exit with an
	// *InterruptedError carrying its path — the graceful-shutdown hook the
	// CLIs wire to SIGINT/SIGTERM.
	Stop func() bool
}

// Defaults fills unset fields with the paper's parameters scaled to a
// laptop-sized run and returns the result.
func (c Config) Defaults() Config {
	if c.N == 0 {
		c.N = 1000
	}
	if c.ViewSize == 0 {
		c.ViewSize = 15
	}
	if c.Mix == (NATMix{}) {
		c.Mix = DefaultMix
	}
	if c.PeriodMs == 0 {
		c.PeriodMs = 5000
	}
	if c.LatencyMs == 0 {
		c.LatencyMs = 50
	}
	if c.HoleTimeoutMs == 0 {
		c.HoleTimeoutMs = 90_000
	}
	if c.Rounds == 0 {
		c.Rounds = 300
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.CacheSize == 0 {
		c.CacheSize = 8
	}
	if c.Shards == 0 {
		c.Shards = 8
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	// Zero-valued Selection/Merge already mean rand/blind; the paper's
	// reference configuration is (rand, healer, push/pull), which callers
	// set explicitly.
	return c
}

// DefaultFlightTraceCapacity is the per-shard trace ring capacity a
// flight-armed run records with when TraceCapacity is unset: bundles embed
// the merged trace tail, so the recorder needs rings to freeze.
const DefaultFlightTraceCapacity = 16384

// traceCapacity returns the effective per-shard trace ring capacity:
// TraceCapacity when set, else the flight default when the flight recorder
// is armed, else zero (tracing off).
func (c Config) traceCapacity() int {
	if c.TraceCapacity > 0 {
		return c.TraceCapacity
	}
	if c.Flight != nil {
		return DefaultFlightTraceCapacity
	}
	return 0
}

func (c Config) validate() error {
	if c.N <= 0 || c.ViewSize <= 0 || c.Rounds <= 0 {
		return fmt.Errorf("exp: N, ViewSize and Rounds must be positive (got %d, %d, %d)", c.N, c.ViewSize, c.Rounds)
	}
	if c.NATRatio < 0 || c.NATRatio > 1 {
		return fmt.Errorf("exp: NATRatio %v outside [0,1]", c.NATRatio)
	}
	if s := c.Mix.RC + c.Mix.PRC + c.Mix.SYM; s < 0.999 || s > 1.001 {
		return fmt.Errorf("exp: NAT mix fractions sum to %v, want 1", s)
	}
	if c.UPnPFraction < 0 || c.UPnPFraction > 1 {
		return fmt.Errorf("exp: UPnPFraction %v outside [0,1]", c.UPnPFraction)
	}
	if c.ChurnFraction < 0 || c.ChurnFraction >= 1 {
		return fmt.Errorf("exp: ChurnFraction %v outside [0,1)", c.ChurnFraction)
	}
	if c.ChurnAtRound < 0 || c.ChurnAtRound >= c.Rounds {
		if c.ChurnAtRound != 0 {
			return fmt.Errorf("exp: ChurnAtRound %d outside (0,Rounds)", c.ChurnAtRound)
		}
	}
	if c.Shards < 1 || c.Shards > 4096 {
		return fmt.Errorf("exp: Shards %d outside [1,4096]", c.Shards)
	}
	if c.Workers < 1 {
		return fmt.Errorf("exp: Workers must be positive (got %d)", c.Workers)
	}
	if err := c.Scenario.Validate(c.Rounds); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	if ck := c.Checkpoint; ck != nil {
		if ck.Dir == "" {
			return fmt.Errorf("exp: CheckpointSpec needs a directory")
		}
		if ck.EveryRounds < 0 {
			return fmt.Errorf("exp: CheckpointSpec.EveryRounds %d is negative", ck.EveryRounds)
		}
	}
	return nil
}
