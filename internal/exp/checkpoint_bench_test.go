package exp

import (
	"path/filepath"
	"testing"

	"repro/internal/snapshot"
	"repro/internal/view"
)

// BenchmarkSnapshot100kPeers measures what one checkpoint of the headline
// 100k-peer world costs: the canonical payload serialization plus the
// enveloped (sha256) atomic file write — exactly what the barrier hook pays
// per checkpoint. The world is built once and run to its horizon outside the
// timer; each iteration captures and writes one snapshot. payload-bytes
// reports the capture size (the on-disk file adds the 54-byte envelope).
// Skipped under -short like the other 100k benchmarks.
func BenchmarkSnapshot100kPeers(b *testing.B) {
	if testing.Short() {
		b.Skip("100k-peer snapshot skipped in -short mode")
	}
	cfg := Config{
		N: 100_000, Rounds: 20, NATRatio: 0.7, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 1, Shards: 32,
	}.Defaults()
	if err := cfg.validate(); err != nil {
		b.Fatal(err)
	}
	st := newRunState(cfg)
	st.build()
	st.bootstrap()
	st.schedule()
	st.armGlobals(-1)
	end := int64(cfg.Rounds) * cfg.PeriodMs
	st.kern.RunUntil(end)

	path := filepath.Join(b.TempDir(), SnapshotFileName(cfg.Rounds))
	var size int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		payload := st.snapshotPayload(end)
		size = len(payload)
		if err := snapshot.WriteFile(path, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(size), "payload-bytes")
}
