package exp

import (
	"runtime"
	"sync"

	"repro/internal/stats"
)

// Executor bounds how many simulation runs execute at once. It is the one
// execution path shared by every sweep-shaped caller — the figure
// reproductions (internal/exp), the scenario sweep orchestrator
// (internal/sweep), and their CLIs — so the worker-budget policy lives in
// exactly one place: outer parallelism saturates the slots while every
// individual run executes its sharded kernel at Workers=1. Inner and outer
// parallelism share one budget instead of multiplying into oversubscription,
// and since results are worker-count-invariant this is purely a scheduling
// choice.
type Executor struct {
	slots chan struct{}
}

// NewExecutor returns an executor running at most workers simulations at
// once; workers <= 0 means one per core.
func NewExecutor(workers int) *Executor {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Executor{slots: make(chan struct{}, workers)}
}

// defaultExecutor is the shared machine-wide pool used when callers do not
// size their own: every figure of a default nylon-figs run drains through it,
// so the sweep saturates the machine even when a figure's points are unevenly
// sized or a point has fewer seeds than there are cores.
var defaultExecutor = NewExecutor(0)

// Workers returns the pool's concurrency bound.
func (e *Executor) Workers() int { return cap(e.slots) }

// Run executes one simulation through the pool: it blocks for a slot, forces
// the run's kernel to a single worker (see the type comment), and runs it.
func (e *Executor) Run(cfg Config) (Result, error) {
	e.slots <- struct{}{}
	defer func() { <-e.slots }()
	cfg.Workers = 1
	return Run(cfg)
}

// ResumeFile resumes a snapshot through the pool under the same worker-budget
// policy as Run: one slot, single-worker kernel. Results are bit-identical to
// Run for any slot or worker count, so callers may mix fresh and resumed
// executions of the same grid freely.
func (e *Executor) ResumeFile(path string, opt ResumeOptions) (Result, error) {
	e.slots <- struct{}{}
	defer func() { <-e.slots }()
	opt.Workers = 1
	return ResumeFile(path, opt)
}

// RunPoint executes one configuration across all seeds through the pool and
// returns the per-seed results in seed order.
func (e *Executor) RunPoint(cfg Config, seeds []int64) ([]Result, error) {
	results := make([]Result, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		i, seed := i, seed
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := cfg
			c.Seed = seed
			results[i], errs[i] = e.Run(c)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Future is the deferred Result of one experiment point. Each peer gets an
// independently derived RNG stream (see xrand.Mix in the runner), so which
// worker executes a point cannot influence its outcome.
type Future struct {
	wg  sync.WaitGroup
	res Result
	err error
}

// Submit starts one experiment point (all its seeds) in the background.
// Figures submit every point of a sweep first and only then collect, which
// is what parallelizes independent points across the pool.
func (e *Executor) Submit(cfg Config, seeds []int64) *Future {
	f := &Future{}
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		var results []Result
		results, f.err = e.RunPoint(cfg, seeds)
		if f.err == nil {
			f.res = meanResult(results)
		}
	}()
	return f
}

// Get blocks until the point has run and returns its mean result.
func (f *Future) Get() (Result, error) {
	f.wg.Wait()
	return f.res, f.err
}

// SeedList returns the canonical seed list {1, …, n} used by the sweep CLIs
// (empty for n ≤ 0).
func SeedList(n int) []int64 {
	if n < 0 {
		n = 0
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(i + 1)
	}
	return out
}

// meanResult averages the scalar metrics of a point's per-seed results.
func meanResult(rs []Result) Result {
	if len(rs) == 0 {
		return Result{}
	}
	out := rs[0]
	vals := make([]float64, len(rs))
	mean := func(f func(Result) float64) float64 {
		for i, r := range rs {
			vals[i] = f(r)
		}
		return stats.Mean(vals)
	}
	out.BiggestCluster = mean(func(r Result) float64 { return r.BiggestCluster })
	out.StaleFraction = mean(func(r Result) float64 { return r.StaleFraction })
	out.NattedNonStale = mean(func(r Result) float64 { return r.NattedNonStale })
	out.BytesPerSecAll = mean(func(r Result) float64 { return r.BytesPerSecAll })
	out.BytesPerSecPublic = mean(func(r Result) float64 { return r.BytesPerSecPublic })
	out.BytesPerSecNatted = mean(func(r Result) float64 { return r.BytesPerSecNatted })
	out.AvgChainLen = mean(func(r Result) float64 { return r.AvgChainLen })
	out.ChiSquareStat = mean(func(r Result) float64 { return r.ChiSquareStat })
	out.CompletionRate = mean(func(r Result) float64 { return r.CompletionRate })
	out.NoRouteRate = mean(func(r Result) float64 { return r.NoRouteRate })
	ok := true
	for _, r := range rs {
		ok = ok && r.ChiSquareOK
	}
	out.ChiSquareOK = ok
	return out
}
