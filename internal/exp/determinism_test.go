package exp

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/view"
)

// TestRunDeterministic locks in that a run is a pure function of its
// configuration and seed after the zero-allocation hot-path rework: the
// same (Config, Seed) must produce a bit-identical Result, for every
// protocol. This is the guarantee that lets the parallel figure sweep hand
// experiment points to arbitrary workers.
func TestRunDeterministic(t *testing.T) {
	// The scenario leg stresses every stochastic scenario dimension at
	// once: continuous churn, mid-run joins, a partition, and lossy
	// jittered links — each must draw only from seed-derived streams.
	storm := &scenario.Scenario{
		Churn: &scenario.Churn{JoinsPerRound: 1, LeavesPerRound: 1, StartRound: 5},
		Link:  &scenario.Link{JitterMs: 15, Loss: 0.05},
		Events: []scenario.Event{
			{Round: 10, Kind: scenario.KindFlashCrowd, Count: 20},
			{Round: 15, Kind: scenario.KindPartition, Fraction: 0.25, DurationRounds: 5},
		},
	}
	for _, c := range []struct {
		name     string
		proto    Protocol
		scenario *scenario.Scenario
	}{
		{"generic", ProtoGeneric, nil},
		{"nylon", ProtoNylon, nil},
		{"arrg", ProtoARRG, nil},
		{"static-rvp", ProtoStaticRVP, nil},
		{"nylon-storm-scenario", ProtoNylon, storm},
		{"static-rvp-storm-scenario", ProtoStaticRVP, storm},
	} {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				N: 120, Rounds: 30, NATRatio: 0.7, Protocol: c.proto,
				Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
				EvictUnanswered: true, Seed: 42,
				ChurnAtRound: 20, ChurnFraction: 0.3,
				SampleEveryRounds: 10,
				Scenario:          c.scenario,
			}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed produced different results:\n a: %+v\n b: %+v", a, b)
			}
		})
	}
}
