package exp

import (
	"reflect"
	"testing"

	"repro/internal/view"
)

// TestRunDeterministic locks in that a run is a pure function of its
// configuration and seed after the zero-allocation hot-path rework: the
// same (Config, Seed) must produce a bit-identical Result, for every
// protocol. This is the guarantee that lets the parallel figure sweep hand
// experiment points to arbitrary workers.
func TestRunDeterministic(t *testing.T) {
	for _, proto := range []Protocol{ProtoGeneric, ProtoNylon, ProtoARRG, ProtoStaticRVP} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				N: 120, Rounds: 30, NATRatio: 0.7, Protocol: proto,
				Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
				EvictUnanswered: true, Seed: 42,
				ChurnAtRound: 20, ChurnFraction: 0.3,
				SampleEveryRounds: 10,
			}
			a, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed produced different results:\n a: %+v\n b: %+v", a, b)
			}
		})
	}
}
