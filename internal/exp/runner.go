package exp

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/simnet"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/view"
	"repro/internal/wire"
	"repro/internal/xrand"
)

// Result holds every metric measured at the end of a run. Fractions are in
// [0,1]; the printers convert to percent.
type Result struct {
	Cfg Config

	// BiggestCluster is the fraction of alive peers inside the largest
	// weakly-connected component of usable view edges (Figures 2, 10).
	BiggestCluster float64
	// StaleFraction is the average fraction of view entries that cannot be
	// contacted (Fig. 3).
	StaleFraction float64
	// NattedNonStale is the average fraction of non-stale view entries
	// that point to natted peers (Fig. 4); under uniform sampling it
	// equals the natted population share.
	NattedNonStale float64

	// Bandwidth in bytes per second per peer, sent+received, measured
	// after a warmup of one third of the run (Figures 7, 8).
	BytesPerSecAll    float64
	BytesPerSecPublic float64
	BytesPerSecNatted float64

	// AvgChainLen is the mean number of RVPs traversed to open an exchange
	// with a natted destination (Fig. 9).
	AvgChainLen float64

	// ChiSquareOK reports whether in-view representation passes the
	// chi-square uniformity test (the correctness/randomness check of §5);
	// ChiSquareStat is the statistic normalized by degrees of freedom.
	ChiSquareOK   bool
	ChiSquareStat float64
	// InDegree summarizes how often each alive peer is referenced.
	InDegree graph.DegreeSummary

	// CompletionRate is completed/initiated shuffles; NoRouteRate is the
	// fraction of initiations abandoned without a live RVP route.
	CompletionRate float64
	NoRouteRate    float64

	// Drops aggregates datagrams lost in the network.
	Drops simnet.DropStats
	// AlivePeers is the population after churn.
	AlivePeers int
	// TotalPeers is the total number of peers ever attached, including
	// scenario-driven arrivals.
	TotalPeers int
	// Scenario summarizes the environment timeline a scenario drove
	// (zero without one).
	Scenario ScenarioStats
	// Adversary holds the attack-centric metrics of a run with Byzantine
	// cohorts (zero without adversaries).
	Adversary AdversaryStats
	// Series holds the periodic snapshots requested by
	// Config.SampleEveryRounds, in round order.
	Series []SamplePoint
	// Recovery condenses Series into a recovery curve summary (zero when
	// no series was sampled).
	Recovery Recovery
	// Trace holds the merged network event trace when Config.TraceCapacity
	// is set: the most recent TraceCapacity events across all shards, in
	// global scheduler-key order. Bit-identical for any worker or shard
	// count. TraceDump is its rendered form (one event per line).
	Trace     []trace.Event
	TraceDump string
	// Bundles lists the forensic bundle files written by the flight
	// recorder (see Config.Flight), in trigger order.
	Bundles []string
	// EventsProcessed is the total number of simulator events the run
	// executed. It is part of the determinism contract: the same
	// (Config, Scenario, Seed) executes the same events for any worker or
	// shard count.
	EventsProcessed uint64
}

// ThroughputLine renders the run's one-line throughput summary for the given
// wall-clock duration. Every host prints this instead of computing events/s
// its own way.
func (r Result) ThroughputLine(wall time.Duration) string {
	return obs.ThroughputLine(r.EventsProcessed, wall, r.Cfg.Workers, r.Cfg.Shards)
}

// runState carries the wiring of one simulation run.
type runState struct {
	cfg   Config
	rng   *xrand.Stream
	kern  *sim.ShardedScheduler
	net   *simnet.Network
	peers []*simnet.Peer // index i holds NodeID i+1

	// engineSrcs[i] is peer index i's engine RNG source, held so a
	// checkpoint can capture each engine's stream state (the engine itself
	// only sees the *rand.Rand draw surface).
	engineSrcs []*xrand.SplitMix64

	// warmup and series collect the round-boundary measurements armed on
	// the global queue (see armGlobals); fields rather than Run locals so
	// checkpoints can serialize and restore them.
	warmup *[]uint64
	series *[]SamplePoint

	// ck carries checkpoint wiring; nil without Config.Checkpoint.
	ck *ckState

	// selections counts, per peer, how often it was chosen as a gossip
	// target during the measurement window — the sample stream whose
	// uniformity stands in for the paper's diehard check. One shared array
	// indexed by NodeID, updated with atomic adds from the shard workers:
	// the final sums are order-independent, so a single int32 per peer
	// replaces what used to be one int per peer *per shard*. The slice is
	// replaced only at barriers (scenario joins).
	selections   []int32
	measureAfter int64

	// scn drives the environment timeline; nil when the scenario is nil
	// or quiescent (the legacy fast path).
	scn *scenarioDriver

	// adv carries the Byzantine wiring; nil when the scenario declares no
	// adversaries — honest runs never touch the adversary layer.
	adv *adversaryState

	// health, when Config.Obs is set, accumulates overlay health from
	// view-mutation hooks; nil otherwise (the unobserved fast path).
	health *obs.Health
	// flight, when Config.Flight is set, watches the health samples for
	// anomalies and freezes forensic bundles; nil otherwise.
	flight *flightState
	// sampleIDs and sampleEdges are the periodic sampler's run-lifetime
	// scratch (see sampleOverlay).
	sampleIDs   []ident.NodeID
	sampleEdges []graph.Edge

	// Static-RVP assignment state, kept on the run so scenario joins can
	// extend it: rvpOf pins each natted peer to its fixed public RVP,
	// publicIDs is the assignment pool, resolver resolves live
	// descriptors against the network.
	rvpOf     map[ident.NodeID]ident.NodeID
	publicIDs []ident.NodeID
	resolver  core.RVPResolver
}

// Run executes one experiment point and returns its measurements. The run
// is a pure function of (Config, Scenario, Seed): the worker count — and
// even the shard count — change only how fast it finishes.
func Run(cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	st := newRunState(cfg)
	st.build()
	st.bootstrap()
	st.schedule()
	st.armGlobals(-1)
	st.installCheckpoint(-1)

	end := int64(st.cfg.Rounds) * st.cfg.PeriodMs
	st.kern.RunUntil(end)
	return st.finish(end)
}

// newRunState wires the kernel, the network and the observability surface of
// one run. It performs no world construction: the fresh path follows with
// build/bootstrap/schedule, the resume path with a snapshot restore.
func newRunState(cfg Config) *runState {
	if cfg.Flight != nil {
		// Flight bundles freeze health and kernel snapshots and are fed by
		// the periodic health samples: arm both when the host didn't.
		if cfg.Obs == nil {
			cfg.Obs = obs.NewHub()
		}
		if cfg.SampleEveryRounds <= 0 {
			cfg.SampleEveryRounds = 1
		}
	}
	shards := cfg.Shards
	st := &runState{
		cfg:  cfg,
		rng:  xrand.NewStream(cfg.Seed),
		kern: sim.NewSharded(shards, cfg.Workers, cfg.LatencyMs),
	}
	// Echo the effective execution shape (workers clamp to shards) so
	// Result.Cfg reports what actually ran.
	st.cfg.Workers = st.kern.Workers()
	st.net = simnet.NewSharded(st.kern, cfg.LatencyMs)
	st.net.SetPerDatagramDelivery(cfg.PerDatagramDelivery)
	if cap := cfg.traceCapacity(); cap > 0 {
		// Per-shard rings written lock-free from the delivery path, merged
		// on demand in scheduler-key order: tracing works at any worker and
		// shard count and never perturbs the run.
		st.net.SetTrace(trace.NewSharded(shards, cap))
	}
	if cfg.Obs != nil {
		// Bind the observability surface before any peer exists: health
		// hooks must see every view mutation from the first bootstrap on.
		cfg.Obs.BindSim(obs.RunInfo{
			Shards: shards, Workers: st.cfg.Workers,
			N: cfg.N, Rounds: cfg.Rounds, PeriodMs: cfg.PeriodMs,
		})
		st.health = cfg.Obs.Health()
		st.kern.SetProbe(cfg.Obs.Timing())
		st.net.SetObs(cfg.Obs.Registry())
		if ts := st.net.Trace(); ts != nil {
			// Expose the rings on the hub so the live ops endpoint can
			// serve /debug/trace through the barrier tap.
			cfg.Obs.SetTrace(ts)
		}
	}
	if cfg.Flight != nil {
		st.flight = newFlightState(cfg.Flight)
	}
	st.measureAfter = int64(cfg.Rounds) / 3 * cfg.PeriodMs
	st.adv = newAdversaryState(cfg)
	// The static-RVP resolver resolves live descriptors lazily against the
	// network; the assignment map it reads is filled by build (fresh runs)
	// or the snapshot restore.
	st.resolver = func(id ident.NodeID) (view.Descriptor, bool) {
		rid, ok := st.rvpOf[id]
		if !ok {
			return view.Descriptor{}, false
		}
		p := st.net.Peer(rid)
		if p == nil {
			return view.Descriptor{}, false
		}
		return p.Descriptor(), true
	}
	return st
}

// armGlobals schedules the round-boundary work — the warmup byte snapshot,
// series samples, legacy churn, the scenario timeline — on the kernel's
// global queue: at a barrier, global events fire before any shard event of
// the same round, in arming order (which is therefore part of the
// determinism contract; resume re-arms in the same order). Only events
// strictly after the given time are armed: fresh runs pass -1 (arm
// everything), resumed runs the snapshot time, whose past events are already
// reflected in the restored state.
func (st *runState) armGlobals(after int64) {
	cfg := st.cfg
	warmupAt := int64(cfg.Rounds) / 3 * cfg.PeriodMs
	if warmupAt > after {
		st.warmup = st.snapshotBytesAt(warmupAt)
	} else if st.warmup == nil {
		st.warmup = &[]uint64{}
	}
	st.scheduleSeries(after)

	if cfg.ChurnAtRound > 0 {
		churnAt := int64(cfg.ChurnAtRound) * cfg.PeriodMs
		if churnAt > after {
			st.kern.Global().At(churnAt, func() { st.applyChurn() })
		}
	}
	// The scenario driver is armed last: at a shared round boundary the
	// health sample and the legacy churn fire before that round's scenario
	// events. A quiescent scenario installs nothing, keeping the run
	// bit-identical to the no-scenario path.
	if !cfg.Scenario.Quiescent() {
		if st.scn == nil {
			st.scn = newScenarioDriver(st)
		}
		st.scn.arm(after)
	}
}

// finish closes the books of a run that reached its RunUntil exit and
// computes the Result.
func (st *runState) finish(end int64) (Result, error) {
	cfg := st.cfg
	// Message-pool books must balance at the end of every run: each message
	// drawn from a shard pool is either back in a pool or still queued as an
	// undelivered datagram. Batched delivery recycles messages on the hot
	// path, so a leak here would otherwise only surface as slow memory
	// growth.
	if err := st.net.LeakCheck(); err != nil {
		return Result{}, err
	}
	if st.flight != nil && st.flight.err != nil {
		return Result{}, st.flight.err
	}
	if st.ck != nil {
		if st.ck.err != nil {
			return Result{}, st.ck.err
		}
		if st.ck.interrupted != nil {
			// Checkpoint-then-exit: the world stopped at a barrier short of
			// the horizon, so no final measurement exists. The error carries
			// the snapshot to resume from.
			return Result{}, st.ck.interrupted
		}
	}
	if cfg.Obs != nil {
		// Barriers no longer fire: let the live endpoint read the trace
		// rings directly instead of waiting on the tap.
		cfg.Obs.MarkSimDone()
	}

	res := st.measure(end, *st.warmup)
	res.Series = *st.series
	res.Recovery = recoveryFrom(res.Series)
	res.EventsProcessed = st.kern.Processed()
	if st.scn != nil {
		res.Scenario = st.scn.finishStats()
	}
	if ts := st.net.Trace(); ts != nil {
		res.Trace = ts.Merged()
		res.TraceDump = trace.Format(res.Trace)
	}
	if st.flight != nil {
		res.Bundles = st.flight.bundles
	}
	return res, nil
}

// build creates the peers: classes assigned by NATRatio and Mix, shuffled
// deterministically so classes and IDs are uncorrelated.
func (st *runState) build() {
	cfg := st.cfg
	nNat := int(cfg.NATRatio*float64(cfg.N) + 0.5)
	classes := make([]ident.NATClass, 0, cfg.N)
	for i := 0; i < cfg.N-nNat; i++ {
		classes = append(classes, ident.Public)
	}
	classes = append(classes, cfg.Mix.classes(nNat)...)
	st.rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })

	// Static-RVP needs a global assignment natted peer -> public RVP. The
	// descriptors do not exist yet, so resolve lazily against the network
	// (see the resolver in newRunState). The assignment state lives on the
	// run so scenario joins can extend it mid-run.
	if cfg.Protocol == ProtoStaticRVP {
		st.rvpOf = make(map[ident.NodeID]ident.NodeID)
		for i, c := range classes {
			if c == ident.Public {
				st.publicIDs = append(st.publicIDs, ident.NodeID(i+1))
			}
		}
		if len(st.publicIDs) == 0 {
			// Degenerate but allowed: nobody can be assigned an RVP;
			// natted peers will fail construction, so refuse earlier.
			panic("exp: static-rvp requires at least one public peer")
		}
		for i, c := range classes {
			if c != ident.Public {
				st.rvpOf[ident.NodeID(i+1)] = st.publicIDs[st.rng.Intn(len(st.publicIDs))]
			}
		}
	}

	st.peers = make([]*simnet.Peer, cfg.N)
	// Two passes: public peers first, so the static-RVP resolver can hand
	// natted peers their already-constructed rendez-vous descriptors.
	// UPnP capabilities are drawn per ID up front so they do not depend on
	// construction order.
	upnp := make([]bool, cfg.N)
	for i := range upnp {
		upnp[i] = classes[i].Natted() && st.rng.Float64() < cfg.UPnPFraction
	}
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < cfg.N; i++ {
			if (classes[i] == ident.Public) != (pass == 0) {
				continue
			}
			st.addPeer(ident.NodeID(i+1), classes[i], upnp[i])
		}
	}
}

// now returns the current barrier-context virtual time (setup time, or the
// global event being executed).
func (st *runState) now() int64 { return st.kern.Global().Now() }

// buildEngine constructs the honest engine for the peer at the given index.
// The engine RNG seed is derived independently from the run seed and the
// peer index (not drawn from a shared RNG chain), so each peer's stream is
// reproducible regardless of construction order — and of which worker of a
// parallel sweep runs this experiment point; the source is recorded in
// engineSrcs so checkpoints can capture the stream's position.
func (st *runState) buildEngine(idx int, self view.Descriptor) core.Engine {
	cfg := st.cfg
	id := ident.NodeID(idx + 1)
	src := xrand.NewSource(xrand.Mix(cfg.Seed, uint64(idx)))
	for len(st.engineSrcs) <= idx {
		st.engineSrcs = append(st.engineSrcs, nil)
	}
	st.engineSrcs[idx] = src
	ecfg := core.Config{
		Self:            self,
		ViewSize:        cfg.ViewSize,
		Selection:       cfg.Selection,
		Merge:           cfg.Merge,
		PushPull:        cfg.PushPull,
		HoleTimeout:     cfg.HoleTimeoutMs,
		LatencyBound:    2 * cfg.LatencyMs,
		RNG:             rand.New(src),
		EvictUnanswered: cfg.EvictUnanswered,
		// The engine allocates from (and releases to) its shard's
		// message pool, so recycling never crosses shard boundaries —
		// and shares its shard's scratch and descriptor intern state,
		// since all of a shard's engine calls are serialized.
		Msgs:   st.net.ShardPool(st.net.ShardOf(id)),
		Shared: st.net.ShardShared(st.net.ShardOf(id)),
	}
	switch cfg.Protocol {
	case ProtoNylon:
		return core.NewNylon(ecfg)
	case ProtoARRG:
		return core.NewARRG(ecfg, cfg.CacheSize)
	case ProtoStaticRVP:
		var own view.Descriptor
		if self.Class.Natted() {
			own, _ = st.resolver(self.ID)
		}
		return core.NewStaticRVP(ecfg, own, st.resolver)
	default:
		return core.NewGeneric(ecfg)
	}
}

// engineFor builds the full engine for peer index idx: the honest engine,
// decorated with its adversarial wrapper when the peer belongs to a cohort
// (registering colluders and strategies — barrier context only). Checkpoint
// restore calls it per restored peer in attachment order, which replays
// cohort registration identically to the original construction.
func (st *runState) engineFor(idx int, self view.Descriptor) core.Engine {
	eng := st.buildEngine(idx, self)
	if st.adv != nil {
		eng = st.adv.wrap(idx, st.cfg.HoleTimeoutMs, eng)
	}
	return eng
}

func (st *runState) addPeer(id ident.NodeID, class ident.NATClass, upnp bool) {
	cfg := st.cfg
	factory := func(self view.Descriptor) core.Engine {
		return st.engineFor(int(id)-1, self)
	}
	if int(id) == len(st.peers)+1 {
		// Scenario joins extend the population one peer at a time.
		st.peers = append(st.peers, nil)
	}
	if upnp {
		st.peers[id-1] = st.net.AddPeerUPnP(id, class, cfg.HoleTimeoutMs, factory)
	} else {
		st.peers[id-1] = st.net.AddPeer(id, class, cfg.HoleTimeoutMs, factory)
	}
	if st.health != nil {
		p := st.peers[id-1]
		st.health.AddPeer(id)
		p.Engine.View().SetObserver(st.health.Observer(p.Shard))
	}
}

// kill departs one peer through every layer that tracks life: the health
// accumulators first (they need the view length before it freezes), then the
// network. Barrier-context only, like Network.Kill.
func (st *runState) kill(id ident.NodeID) {
	if st.health != nil {
		if p := st.net.Peer(id); p != nil && p.Alive {
			st.health.Kill(id, p.Engine.View().Len())
		}
	}
	st.net.Kill(id)
}

// bootstrap fills every view with random public peers (the paper's §5 setup)
// and installs the join-time NAT holes that make those initial references
// usable. When no public peers exist (100% NAT), random natted peers are
// used instead, with holes installed through the simulated introducer.
func (st *runState) bootstrap() {
	var publics []*simnet.Peer
	for _, p := range st.peers {
		if p.Class == ident.Public {
			publics = append(publics, p)
		}
	}
	pool := publics
	if len(pool) == 0 {
		pool = st.peers
	}
	// Scratch reused across peers: seen is indexed by NodeID (IDs are
	// 1..N), picked records which entries to clear afterwards.
	seen := make([]bool, st.cfg.N+1)
	seeds := make([]view.Descriptor, 0, st.cfg.ViewSize)
	picked := make([]ident.NodeID, 0, st.cfg.ViewSize+1)
	for _, p := range st.peers {
		seeds = seeds[:0]
		for _, id := range picked {
			seen[id] = false
		}
		picked = append(picked[:0], p.ID)
		seen[p.ID] = true
		// Cap attempts so tiny pools terminate.
		for attempts := 0; len(seeds) < st.cfg.ViewSize && attempts < 20*st.cfg.ViewSize; attempts++ {
			cand := pool[st.rng.Intn(len(pool))]
			if seen[cand.ID] {
				continue
			}
			seen[cand.ID] = true
			picked = append(picked, cand.ID)
			seeds = append(seeds, cand.Descriptor())
			st.net.InstallHole(p, cand)
		}
		st.bootstrapEngine(p, seeds)
	}
}

// bootstrapEngine hands a peer its initial view seeds. Adversarial wrappers
// are transparent here: the honest engine underneath is bootstrapped.
func (st *runState) bootstrapEngine(p *simnet.Peer, seeds []view.Descriptor) {
	switch e := adversary.Unwrap(p.Engine).(type) {
	case *core.Nylon:
		e.Bootstrap(st.now(), seeds)
	case *core.Generic:
		e.Bootstrap(seeds)
	case *core.ARRG:
		e.Bootstrap(seeds)
	case *core.StaticRVP:
		e.Bootstrap(seeds)
	default:
		panic(fmt.Sprintf("exp: unknown engine %T", p.Engine))
	}
}

// seedPeer fills a newly joined peer's view with up to ViewSize distinct
// alive peers — public preferred, exactly like the time-zero bootstrap —
// and installs the join-time NAT holes that make those references usable.
// All randomness comes from rng (the scenario's topology stream).
func (st *runState) seedPeer(p *simnet.Peer, rng *rand.Rand) {
	pool := make([]*simnet.Peer, 0, len(st.peers))
	for _, q := range st.peers {
		if q != p && q.Alive && q.Class == ident.Public {
			pool = append(pool, q)
		}
	}
	if len(pool) == 0 {
		for _, q := range st.peers {
			if q != p && q.Alive {
				pool = append(pool, q)
			}
		}
	}
	if len(pool) == 0 {
		return
	}
	seeds := make([]view.Descriptor, 0, st.cfg.ViewSize)
	seen := make(map[ident.NodeID]bool, st.cfg.ViewSize)
	for attempts := 0; len(seeds) < st.cfg.ViewSize && attempts < 20*st.cfg.ViewSize; attempts++ {
		cand := pool[rng.Intn(len(pool))]
		if seen[cand.ID] {
			continue
		}
		seen[cand.ID] = true
		seeds = append(seeds, cand.Descriptor())
		st.net.InstallHole(p, cand)
	}
	st.bootstrapEngine(p, seeds)
}

// schedule arms the periodic shuffle of every peer with a random phase, so
// ticks interleave rather than firing in lockstep. The runner drives engines
// itself (rather than through Network.Tick) to observe the selected targets.
// Ticks are fn-less indexed events (see sim.Scheduler.TickAtKey) dispatched
// to one shared per-run callback: arming a peer's shuffle loop stores no
// closure, so a million peers cost a million 40-byte heap entries instead of
// a million captured funcs.
func (st *runState) schedule() {
	st.selections = make([]int32, st.cfg.N+1)
	for i := 0; i < st.kern.Shards(); i++ {
		st.kern.Shard(i).SetTickFn(st.tickActor)
	}
	for _, p := range st.peers {
		st.armTick(p, st.rng.Int63n(st.cfg.PeriodMs))
	}
}

// armTick starts a peer's periodic shuffle loop at the given absolute time,
// on the peer's shard. Every (re)arming draws the peer's next private event
// counter value as the ordering key, so tick tie-breaks are a pure function
// of the simulated world (see sim.Scheduler.AtKey).
func (st *runState) armTick(p *simnet.Peer, firstAt int64) {
	p.Seq++
	st.kern.Shard(p.Shard).TickAtKey(firstAt, uint64(p.ID), p.Seq)
}

// tickActor runs one shuffling period for the peer with NodeID actor and
// re-arms its next tick. It is the shared callback behind every tick event,
// running on the peer's shard (peer index slots and NodeIDs are aligned:
// peer i+1 lives at peers[i], including scenario joins).
func (st *runState) tickActor(actor uint64) {
	p := st.peers[actor-1]
	sched := st.kern.Shard(p.Shard)
	if p.Alive {
		outs := p.Engine.Tick(sched.Now())
		st.recordSelection(sched.Now(), outs)
		for _, s := range outs {
			st.net.Send(p, s)
		}
	}
	p.Seq++
	sched.TickAtKey(sched.Now()+st.cfg.PeriodMs, uint64(p.ID), p.Seq)
}

// recordSelection extracts the gossip target of a Tick's output — the final
// destination of its REQUEST or OPEN_HOLE, whichever appears first — into
// the shared selection counters. The adds are atomic because shards tick in
// parallel; sums are order-independent, so the result is deterministic.
func (st *runState) recordSelection(now int64, outs []core.Send) {
	if now < st.measureAfter {
		return
	}
	for _, s := range outs {
		k := s.Msg.Kind
		if k != wire.KindRequest && k != wire.KindOpenHole {
			continue
		}
		id := int(s.Msg.Dst.ID)
		if id >= 1 && id < len(st.selections) {
			atomic.AddInt32(&st.selections[id], 1)
		}
		return
	}
}

// applyChurn removes ChurnFraction of the alive peers uniformly at random,
// which removes public and natted peers proportionally to their numbers, as
// in the paper's Fig. 10 setup.
func (st *runState) applyChurn() {
	n := len(st.peers)
	perm := st.rng.Perm(n)
	kill := int(st.cfg.ChurnFraction * float64(n))
	for _, idx := range perm[:kill] {
		st.kill(st.peers[idx].ID)
	}
}

// snapshotBytesAt schedules a per-peer byte-counter snapshot at the given
// time (as a global barrier event — it reads every shard's peers) and
// returns the slice that will hold it. The slice is sized at fire time, so
// the population may have grown since scheduling; peers joining after the
// snapshot simply have a zero baseline.
func (st *runState) snapshotBytesAt(at int64) *[]uint64 {
	snap := &[]uint64{}
	st.kern.Global().At(at, func() {
		*snap = make([]uint64, len(st.peers))
		for i, p := range st.peers {
			(*snap)[i] = p.BytesSent + p.BytesRecv
		}
	})
	return snap
}

// usableEdge reports whether q could, right now, open an exchange with the
// view entry d — the negation of the paper's "stale reference".
func (st *runState) usableEdge(now int64, q *simnet.Peer, d view.Descriptor) bool {
	target := st.net.Peer(d.ID)
	if target == nil || !target.Alive {
		return false
	}
	// While a partition holds, no datagram crosses the cut: references to
	// the other side are stale by the paper's definition (communication
	// with them is impossible), which is what makes the health series
	// show the split and the heal.
	if st.net.PartitionActive() && q.Side != target.Side {
		return false
	}
	switch st.cfg.Protocol {
	case ProtoNylon:
		return st.nylonUsable(now, q, d)
	case ProtoStaticRVP:
		if !d.Class.Natted() {
			return true
		}
		// Usable iff the target's fixed RVP is alive: the target keeps
		// its hole toward it alive with keepalive PINGs for as long as
		// it lives, so the RVP is the single point of failure.
		if rvpID, ok := st.staticRVPOf(d.ID); ok {
			rvp := st.net.Peer(rvpID)
			return rvp != nil && rvp.Alive
		}
		return false
	default: // Generic, ARRG: plain reachability
		return st.net.Reachable(now, q, d)
	}
}

// staticRVPOf recovers the RVP assignment for static-RVP runs by asking the
// target's own engine.
func (st *runState) staticRVPOf(id ident.NodeID) (ident.NodeID, bool) {
	p := st.net.Peer(id)
	if p == nil {
		return 0, false
	}
	e, ok := adversary.Unwrap(p.Engine).(*core.StaticRVP)
	if !ok {
		return 0, false
	}
	d := e.OwnRVP()
	if d.ID.IsNil() {
		return 0, false
	}
	return d.ID, true
}

// nylonUsable walks the RVP chain from q toward d, checking at every hop
// that the datagram would actually be admitted by the hop's NAT, mirroring
// how an OPEN_HOLE (or relayed REQUEST) would travel.
func (st *runState) nylonUsable(now int64, q *simnet.Peer, d view.Descriptor) bool {
	if !d.Class.Natted() {
		return true
	}
	cur := q
	for depth := 0; depth < 16; depth++ {
		// See through adversary wrappers: a lying RVP's routing table still
		// advertises the chain — the edge *looks* usable, which is exactly
		// the lie the relay-denial metrics then expose.
		eng, ok := adversary.Unwrap(cur.Engine).(*core.Nylon)
		if !ok {
			return false
		}
		rvp, ok := eng.Routes().Next(d.ID, now)
		if !ok {
			return false
		}
		hop := st.net.Peer(rvp.ID)
		if hop == nil || !hop.Alive {
			return false
		}
		// A relay chain cannot cross a partition cut either.
		if st.net.PartitionActive() && hop.Side != cur.Side {
			return false
		}
		if !st.net.ReachableEndpoint(now, cur, rvp.Addr) {
			return false
		}
		if rvp.ID == d.ID {
			return true
		}
		cur = hop
	}
	return false
}

// measure computes the Result at simulation end, merging the per-shard
// worlds (selection counts, drop statistics) without any locking: the run
// is over, every shard has quiesced.
func (st *runState) measure(end int64, warmupBytes []uint64) Result {
	now := st.kern.Now()
	res := Result{Cfg: st.cfg, Drops: st.net.Drops()}
	selections := st.selections

	aliveIDs := make([]ident.NodeID, 0, len(st.peers))
	edges := make([]graph.Edge, 0, len(st.peers)*st.cfg.ViewSize)
	nattedRatios := make([]float64, 0, len(st.peers))
	var staleSum, staleCount float64
	var initiated, completed, noroute, chainHops, chainSamples uint64
	var relayDenied, advDrops, hopLimitDrops uint64

	var alive, alivePublic, aliveNatted int
	var bytesAll, bytesPublic, bytesNatted float64
	warmupAt := int64(st.cfg.Rounds) / 3 * st.cfg.PeriodMs
	seconds := float64(end-warmupAt) / 1000

	for i, p := range st.peers {
		if !p.Alive {
			continue
		}
		alive++
		aliveIDs = append(aliveIDs, p.ID)
		delta := float64(p.BytesSent + p.BytesRecv)
		if i < len(warmupBytes) {
			delta -= float64(warmupBytes[i])
		}
		bytesAll += delta
		if p.Class == ident.Public {
			alivePublic++
			bytesPublic += delta
		} else {
			aliveNatted++
			bytesNatted += delta
		}

		s := p.Engine.Stats()
		initiated += s.ShufflesInitiated
		completed += s.ShufflesCompleted
		noroute += s.NoRoute
		chainHops += s.ChainHopsTotal
		chainSamples += s.ChainSamples
		relayDenied += s.RelayDenied
		advDrops += s.AdversaryDrops
		hopLimitDrops += s.HopLimitDrops

		v := p.Engine.View()
		var nonStale, nonStaleNatted int
		for j, l := 0, v.Len(); j < l; j++ {
			d := v.At(j)
			// Entries referencing departed peers count as stale only
			// in churn scenarios; graph edges always require life.
			usable := st.usableEdge(now, p, d)
			if usable {
				nonStale++
				if d.Class.Natted() {
					nonStaleNatted++
				}
				edges = append(edges, graph.Edge{From: p.ID, To: d.ID})
			}
			staleCount++
			if !usable {
				staleSum++
			}
		}
		if nonStale > 0 {
			nattedRatios = append(nattedRatios, float64(nonStaleNatted)/float64(nonStale))
		}
	}

	res.AlivePeers = alive
	res.TotalPeers = len(st.peers)
	if staleCount > 0 {
		res.StaleFraction = staleSum / staleCount
	}
	res.NattedNonStale = stats.Mean(nattedRatios)
	res.BiggestCluster = graph.BiggestClusterFraction(aliveIDs, edges)
	if seconds > 0 && alive > 0 {
		res.BytesPerSecAll = bytesAll / seconds / float64(alive)
		if alivePublic > 0 {
			res.BytesPerSecPublic = bytesPublic / seconds / float64(alivePublic)
		}
		if aliveNatted > 0 {
			res.BytesPerSecNatted = bytesNatted / seconds / float64(aliveNatted)
		}
	}
	if chainSamples > 0 {
		res.AvgChainLen = float64(chainHops) / float64(chainSamples)
	}
	if initiated > 0 {
		res.CompletionRate = float64(completed) / float64(initiated)
		res.NoRouteRate = float64(noroute) / float64(initiated)
	}

	if st.adv != nil {
		st.measureAdversary(&res, aliveIDs, edges)
		res.Adversary.RelayDenied = relayDenied
		res.Adversary.AdversaryDrops = advDrops
		res.Adversary.HopLimitDrops = hopLimitDrops
	}

	deg := graph.InDegrees(aliveIDs, edges)
	res.InDegree = graph.Summarize(deg)
	// Randomness: chi-square over how often each alive peer was selected
	// as a gossip target during the measurement window (the sample stream;
	// the paper uses the diehard suite on the same stream).
	counts := make([]int, 0, len(aliveIDs))
	for _, id := range aliveIDs {
		counts = append(counts, int(selections[id]))
	}
	if len(counts) > 1 {
		if chi2, dof, err := stats.ChiSquareUniform(counts); err == nil && dof > 0 {
			res.ChiSquareStat = chi2 / float64(dof)
		}
		res.ChiSquareOK, _ = stats.ChiSquareUniformOK(counts)
	}
	return res
}
