package exp

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/view"
)

// advScenario is the invariance corpus's hostile environment: a 20%
// poison-view cohort on top of continuous churn, so adversary assignment is
// exercised both at build time and at mid-run joins.
func advScenario() *scenario.Scenario {
	return &scenario.Scenario{
		Name:  "adversary-invariance",
		Churn: &scenario.Churn{JoinsPerRound: 1, LeavesPerRound: 1, StartRound: 5},
		Adversaries: []scenario.Adversary{
			{Strategy: "poison-view", Fraction: 0.2, FromRound: 5},
		},
	}
}

// TestAdversaryInvariance extends the kernel's determinism contract to the
// Byzantine layer: a 1000-peer run with 20% view poisoners is bit-identical
// — attack metrics, series and all — across worker counts 1, 2, 8 and shard
// counts 1 and 16. Cohort membership and wrapper randomness must therefore
// be pure functions of (Seed, peer index), never of scheduling.
func TestAdversaryInvariance(t *testing.T) {
	cfg := Config{
		N: 1000, Rounds: 40, NATRatio: 0.7, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 99, SampleEveryRounds: 10,
		Scenario: advScenario(),
	}
	cfg.Workers = 1
	cfg.Shards = 1
	want := runCorpus(t, cfg)
	if want.Adversary.AdversaryCount == 0 {
		t.Fatal("adversary corpus assigned no adversaries")
	}
	if want.Adversary.ColluderIndegreeShare == 0 {
		t.Fatal("poison-view cohort captured no view entries — attack not engaged")
	}
	for _, leg := range []struct{ workers, shards int }{{2, 1}, {8, 1}, {1, 16}, {8, 16}} {
		cfg.Workers, cfg.Shards = leg.workers, leg.shards
		got := runCorpus(t, cfg)
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d shards=%d diverged from workers=1 shards=1:\nwant: %+v\n got: %+v",
				leg.workers, leg.shards, want, got)
		}
	}
}

// TestNilAdversaryZeroOverhead pins the fast path: a scenario with no
// adversary block produces a Result bit-identical to the same run with no
// scenario-level adversary machinery at all — no wrapper, no metric, no
// perturbation of a single RNG stream.
func TestNilAdversaryZeroOverhead(t *testing.T) {
	cfg := corpusCfg()
	plain := runCorpus(t, cfg)

	cfg.Scenario = &scenario.Scenario{Name: "empty"}
	withEmpty := runCorpus(t, cfg)
	// The scenario echo differs by design; measured quantities must not.
	withEmpty.Scenario = plain.Scenario
	if !reflect.DeepEqual(plain, withEmpty) {
		t.Errorf("empty scenario perturbed the run:\nplain: %+v\n with: %+v", plain, withEmpty)
	}
	if plain.Adversary != (AdversaryStats{}) {
		t.Errorf("honest run carries adversary stats: %+v", plain.Adversary)
	}
}

// TestAdversaryAssignmentStable: cohort membership is a pure function of
// (seed, spec order, peer index) — the same seed always drafts the same
// peers, and different specs draw from independent streams.
func TestAdversaryAssignmentStable(t *testing.T) {
	sc := &scenario.Scenario{
		Adversaries: []scenario.Adversary{
			{Strategy: "lying-rvp", Fraction: 0.1},
			{Strategy: "free-ride", Fraction: 0.1},
		},
	}
	if err := sc.Validate(40); err != nil {
		t.Fatal(err)
	}
	mk := func() *adversaryState {
		return newAdversaryState(Config{Seed: 7, PeriodMs: 5000, Scenario: sc}.Defaults())
	}
	a, b := mk(), mk()
	firsts := 0
	for idx := 0; idx < 500; idx++ {
		sa, sb := a.specFor(idx, 0), b.specFor(idx, 0)
		if (sa == nil) != (sb == nil) {
			t.Fatalf("peer %d drafted in one state only", idx)
		}
		if sa == nil {
			continue
		}
		if sa.strategy != sb.strategy {
			t.Fatalf("peer %d drafted into different cohorts", idx)
		}
		if sa.strategy == a.specs[0].strategy {
			firsts++
		}
	}
	if firsts == 0 {
		t.Fatal("first spec drafted nobody at fraction 0.1 over 500 peers")
	}
}
