package exp

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/trace"
	"repro/internal/view"
)

// adversaryCorpus is the hostile leg of the trace corpus: a 20% poison-view
// cohort active from the start.
func adversaryCorpus() *scenario.Scenario {
	return &scenario.Scenario{
		Name:        "trace-adversary",
		Adversaries: []scenario.Adversary{{Strategy: "poison-view", Fraction: 0.2}},
	}
}

// TestTraceEffectInvariance is the tentpole acceptance check of the causal
// tracing layer. For a quiescent run, the storm scenario, and a 20%
// adversary cohort it asserts two things across worker/shard shapes:
//
//  1. Observer effect: a traced run's measured Result is bit-identical to
//     the untraced baseline — recording can never perturb the simulation.
//  2. Shape invariance: the merged trace itself is byte-identical for any
//     worker AND shard count, because events carry their global scheduler
//     key and every per-shard ring keeps full capacity.
func TestTraceEffectInvariance(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []struct {
		name     string
		scenario *scenario.Scenario
		rounds   int
	}{
		{"quiescent", nil, 0},
		{"storm", storm, 80},
		{"adversary-20pct", adversaryCorpus(), 0},
	} {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			base := corpusCfg()
			base.Scenario = leg.scenario
			if leg.rounds > 0 {
				base.Rounds = leg.rounds
			}
			base.Workers = 1
			want := runCorpus(t, base) // untraced baseline

			var wantTrace []trace.Event
			for _, shape := range []struct{ workers, shards int }{
				{1, 1},
				{1, 16},
				{8, 1},
				{8, 16},
			} {
				cfg := base
				cfg.Workers = shape.workers
				cfg.Shards = shape.shards
				cfg.TraceCapacity = 2048
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Trace) == 0 {
					t.Fatalf("workers=%d shards=%d: traced run recorded no events", shape.workers, shape.shards)
				}
				gotTrace := res.Trace
				res.Trace, res.TraceDump = nil, ""
				got := normalize(res)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("traced run diverged from untraced baseline at workers=%d shards=%d",
						shape.workers, shape.shards)
				}
				if wantTrace == nil {
					wantTrace = gotTrace
				} else if !reflect.DeepEqual(wantTrace, gotTrace) {
					t.Errorf("merged trace diverged at workers=%d shards=%d (%d vs %d events)",
						shape.workers, shape.shards, len(wantTrace), len(gotTrace))
				}
			}
		})
	}
}

// traceCorpusRun executes a run whose trace capacity exceeds its event
// count, so no ring ever evicts and the merged trace is complete.
func traceCorpusRun(t *testing.T, cfg Config) Result {
	t.Helper()
	cfg.TraceCapacity = 1 << 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("run recorded no trace events")
	}
	if len(res.Trace) >= 1<<20 {
		t.Fatalf("trace hit capacity (%d events) — the completeness assumptions below do not hold", len(res.Trace))
	}
	return res
}

// TestTraceChainIntegrity checks the causal stamps on a complete trace of a
// small heavily-natted overlay: every chain must verify (key order, hop
// monotonicity, head PathRoot), every delivery's chain must start at its
// origin's hop-0 send, and the run must actually exercise multi-hop RVP
// forwarding — otherwise the test would pass vacuously.
func TestTraceChainIntegrity(t *testing.T) {
	res := traceCorpusRun(t, Config{
		N: 60, Rounds: 12, NATRatio: 0.8, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		Seed: 7,
	})
	order, byID := trace.Chains(res.Trace)
	if len(order) == 0 {
		t.Fatal("no chains in trace")
	}
	multiHop := 0
	deliveries := 0
	for _, id := range order {
		chain := byID[id]
		headSurvived, err := trace.VerifyChain(chain)
		if err != nil {
			t.Fatalf("chain %v: %v", id, err)
		}
		if !headSurvived {
			t.Fatalf("chain %v lost its head send despite unbounded capacity", id)
		}
		for _, e := range chain {
			if e.Op == trace.OpDeliver {
				deliveries++
			}
			if e.Hop >= 2 {
				multiHop++
			}
		}
	}
	if deliveries == 0 {
		t.Error("no deliveries in trace")
	}
	if multiHop == 0 {
		t.Error("no multi-hop RVP forwarding in a heavily natted nylon run")
	}
}

// TestTraceChainGolden pins the hop-by-hop shape of the deepest forwarding
// chain of a tiny fixed-seed topology: alternating send/deliver pairs with
// hop indices climbing one relay at a time, a single chain identity
// throughout, and the head carrying exactly PathRoot(origin, seq). The
// chain's content is a pure function of (Config, Seed) — if this test
// breaks, the protocol's forwarding behaviour changed, not the tracer.
func TestTraceChainGolden(t *testing.T) {
	res := traceCorpusRun(t, Config{
		N: 60, Rounds: 12, NATRatio: 0.8, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		Seed: 7,
	})
	order, byID := trace.Chains(res.Trace)
	var deepest []trace.Event
	var deepestID trace.ChainID
	for _, id := range order {
		chain := byID[id]
		if len(chain) > len(deepest) {
			deepest, deepestID = chain, id
		}
	}
	if len(deepest) < 4 {
		t.Fatalf("deepest chain %v has only %d events", deepestID, len(deepest))
	}
	if deepest[0].Path != trace.PathRoot(deepestID.Origin, deepestID.Seq) {
		t.Errorf("head path %#x != PathRoot %#x", deepest[0].Path, trace.PathRoot(deepestID.Origin, deepestID.Seq))
	}
	// Hop-by-hop structure: hop h's send is followed by its deliver (or a
	// drop, which ends the chain), and each relay extends the path hash.
	wantHop := uint8(0)
	for i := 0; i < len(deepest); i += 2 {
		send := deepest[i]
		if send.Op != trace.OpSend || send.Hop != wantHop {
			t.Fatalf("event %d: want hop-%d send, got %v", i, wantHop, send)
		}
		if i+1 >= len(deepest) {
			break
		}
		next := deepest[i+1]
		if next.Hop != wantHop {
			t.Fatalf("event %d: hop %d after hop-%d send", i+1, next.Hop, wantHop)
		}
		if next.Op != trace.OpDeliver {
			if !next.Op.IsDrop() || i+2 != len(deepest) {
				t.Fatalf("event %d: want deliver or terminal drop, got %v", i+1, next)
			}
			break
		}
		if next.From != send.From || next.To != send.To || next.Path != send.Path {
			t.Fatalf("deliver %d does not match its send: %v vs %v", i+1, next, send)
		}
		wantHop++
	}
	if wantHop < 2 {
		t.Errorf("deepest chain only reached hop %d — expected an RVP relay chain", wantHop)
	}
}

// TestTraceDropCrossCheck is the drop-taxonomy unification check: for a
// deterministic storm run (lossy links, partitions, churn — every drop
// cause exercised), the per-cause drop counts seen by the merged trace, the
// network's DropStats, and the scraped nylon_net_drops_* counters must
// agree exactly. All three views derive from trace.DropCauses; this pins
// that they can never drift.
func TestTraceDropCrossCheck(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	cfg := corpusCfg()
	cfg.Scenario = storm
	cfg.Rounds = 80
	cfg.Obs = obs.NewHub()
	res := traceCorpusRun(t, cfg)

	counts := make(map[trace.Op]uint64)
	for _, e := range res.Trace {
		counts[e.Op]++
	}
	vals := cfg.Obs.Registry().JSONValues()
	stats := reflect.ValueOf(res.Drops)
	total := uint64(0)
	for _, info := range trace.DropCauses {
		fromTrace := counts[info.Op]
		fromStats := stats.FieldByName(info.StatField).Uint()
		metric, ok := vals[info.Metric].(uint64)
		if !ok {
			t.Fatalf("%s: counter missing from registry scrape", info.Metric)
		}
		if fromTrace != fromStats || fromStats != metric {
			t.Errorf("%s: trace %d, DropStats.%s %d, counter %d — taxonomy views diverged",
				info.OpName, fromTrace, info.StatField, fromStats, metric)
		}
		total += fromTrace
	}
	if total == 0 {
		t.Error("storm run produced no drops — cross-check is vacuous")
	}
	if counts[trace.OpDropNAT] == 0 || counts[trace.OpDropLink] == 0 || counts[trace.OpDropPartition] == 0 {
		t.Errorf("expected NAT, link and partition drops, got %v", counts)
	}
}
