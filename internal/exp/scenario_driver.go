package exp

import (
	"math/rand"

	"repro/internal/ident"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/xrand"
)

// Scenario RNG stream salts. Peer engine seeds are derived with the peer
// *index* as salt (see build), so the scenario streams sit at high constants
// no population count can collide with. Three independent streams keep the
// scenario dimensions decoupled: changing the link model does not shift
// which peers churn, and vice versa.
const (
	saltScenarioChurn uint64 = 0xc4a2_0000_0000_0001 // how many join/leave, who dies
	saltScenarioTopo  uint64 = 0xc4a2_0000_0000_0002 // who newcomers are, partition sides
	saltScenarioLink  uint64 = 0xc4a2_0000_0000_0003 // per-datagram jitter and loss
)

// ScenarioStats summarizes the environment timeline a scenario drove. All
// fields stay zero for runs without a (non-quiescent) scenario.
type ScenarioStats struct {
	// Joins and Leaves count scenario-driven arrivals and departures
	// (continuous churn, flash crowds, mass leaves, gateway failures).
	Joins, Leaves uint64
	// GatewayFailures counts failed gateway groups.
	GatewayFailures uint64
	// PartitionRounds is the total number of rounds a partition was in
	// force (clamped to the run horizon).
	PartitionRounds int
}

// scenarioDriver interprets a Scenario against the run clock. It owns every
// stochastic scenario decision, drawing from xrand.Mix-derived streams so a
// run stays a pure function of (Config, Scenario, Seed). It also implements
// simnet.LinkPolicy for the jitter/loss dimension.
//
// Everything except Transmit runs at barriers (on the kernel's global
// queue), where the whole world may be touched single-threaded. Transmit
// runs on shard goroutines mid-window, so its randomness comes from
// per-sender streams: each peer's jitter/loss draws depend only on that
// peer's own deterministic send sequence, never on the interleaving of
// senders across shards.
type scenarioDriver struct {
	st *runState
	sc *scenario.Scenario

	// The streams are capturable (xrand.Stream) so checkpoints can record
	// and replay exactly where each one stands.
	churnRNG *xrand.Stream
	topoRNG  *xrand.Stream
	// linkSeed is the root of the per-sender link streams; linkRNGs[i]
	// drives peer index i's jitter and loss draws. The slice is extended
	// at barriers when peers join and only indexed mid-window, so shards
	// never contend on it.
	linkSeed int64
	linkRNGs []*xrand.Stream

	// Live link model (mutated by set_link events).
	jitterMs int64
	loss     float64

	// Arrival distribution for new peers (mutated by nat_shift events).
	natRatio float64
	mix      NATMix

	// Active partition bookkeeping: partSince is the round the current
	// partition started, -1 when none; partFraction assigns sides to
	// peers joining mid-partition; partGen identifies the current
	// partition so a pending auto-heal cannot end a later one; healRound
	// is the round of the current partition's scheduled auto-heal (0 when
	// none) — checkpoints serialize it so a resumed run can re-arm the
	// heal, which lives in an unserializable closure.
	partSince    int
	partFraction float64
	partGen      int
	healRound    int

	stats ScenarioStats

	// aliveScratch is reused by the kill paths.
	aliveScratch []*simnet.Peer
}

func newScenarioDriver(st *runState) *scenarioDriver {
	cfg := st.cfg
	d := &scenarioDriver{
		st:        st,
		sc:        cfg.Scenario,
		churnRNG:  xrand.NewStream(xrand.Mix(cfg.Seed, saltScenarioChurn)),
		topoRNG:   xrand.NewStream(xrand.Mix(cfg.Seed, saltScenarioTopo)),
		linkSeed:  xrand.Mix(cfg.Seed, saltScenarioLink),
		natRatio:  cfg.NATRatio,
		mix:       cfg.Mix,
		partSince: -1,
	}
	if d.sc.NeedsLinkPolicy() {
		d.growLinkRNGs()
	}
	return d
}

// growLinkRNGs extends the per-sender link streams to cover the current
// population. Stream i is derived from (seed, link salt, i) alone, so a
// peer's draws are independent of when it joined and of every other peer.
func (d *scenarioDriver) growLinkRNGs() {
	for len(d.linkRNGs) < len(d.st.peers) {
		i := len(d.linkRNGs)
		d.linkRNGs = append(d.linkRNGs, xrand.NewStream(xrand.Mix(d.linkSeed, uint64(i))))
	}
}

// arm schedules the timeline from strictly after the given time onward
// (fresh runs pass -1): within one round boundary, events run in scheduling
// order — the health-series sample (armed earlier) first, then the round's
// continuous-churn draw, then explicit events in corpus order. Resumed runs
// pass the snapshot time; its past events already happened in the captured
// world, and the restored driver state (link model, partition bookkeeping)
// is overlaid after arming, so the init below stays overridable.
func (d *scenarioDriver) arm(after int64) {
	cfg := d.st.cfg
	period := cfg.PeriodMs

	if d.sc.NeedsLinkPolicy() {
		if l := d.sc.Link; l != nil {
			d.jitterMs, d.loss = l.JitterMs, l.Loss
		}
		d.st.net.SetLinkPolicy(d)
	}

	if c := d.sc.Churn; c != nil && (c.JoinsPerRound > 0 || c.LeavesPerRound > 0) {
		start := c.StartRound
		if start < 1 {
			start = 1
		}
		end := c.EndRound
		if end == 0 {
			end = cfg.Rounds - 1
		}
		fn := d.churnRound
		for r := start; r <= end; r++ {
			if int64(r)*period > after {
				d.st.kern.Global().At(int64(r)*period, fn)
			}
		}
	}

	for i := range d.sc.Events {
		ev := d.sc.Events[i]
		if int64(ev.Round)*period > after {
			d.st.kern.Global().At(int64(ev.Round)*period, func() { d.apply(ev) })
		}
	}
}

// Transmit implements simnet.LinkPolicy: uniform extra delay in
// [0, jitterMs], then an independent loss draw, both from the sender's
// private stream. The per-call draw order is part of the determinism
// contract — do not reorder.
func (d *scenarioDriver) Transmit(now int64, from ident.NodeID, srcEP, to ident.Endpoint, size uint64) (int64, bool) {
	rng := d.linkRNGs[int(from)-1]
	var extra int64
	if d.jitterMs > 0 {
		extra = rng.Int63n(d.jitterMs + 1)
	}
	drop := d.loss > 0 && rng.Float64() < d.loss
	return extra, drop
}

// churnRound applies one round of continuous Poisson churn.
func (d *scenarioDriver) churnRound() {
	c := d.sc.Churn
	joins := scenario.Poisson(d.churnRNG.Rand, c.JoinsPerRound)
	for i := 0; i < joins; i++ {
		d.join()
	}
	d.kill(scenario.Poisson(d.churnRNG.Rand, c.LeavesPerRound))
}

// apply dispatches one explicit timeline event.
func (d *scenarioDriver) apply(ev scenario.Event) {
	switch ev.Kind {
	case scenario.KindFlashCrowd:
		count := ev.Count
		if count <= 0 {
			count = int(ev.Fraction*float64(d.st.cfg.N) + 0.5)
		}
		for i := 0; i < count; i++ {
			d.join()
		}
	case scenario.KindMassLeave:
		d.kill(int(ev.Fraction*float64(d.countAlive()) + 0.5))
	case scenario.KindGatewayFailure:
		d.failGateways(ev.Groups)
	case scenario.KindNATShift:
		if ev.NATRatio != nil {
			d.natRatio = *ev.NATRatio
		}
		if ev.Mix != nil {
			d.mix = NATMix{RC: ev.Mix.RC, PRC: ev.Mix.PRC, SYM: ev.Mix.SYM}
		}
	case scenario.KindPartition:
		d.partition(ev)
	case scenario.KindHeal:
		d.heal(ev.Round)
	case scenario.KindSetLink:
		d.jitterMs, d.loss = 0, 0
		if ev.JitterMs != nil {
			d.jitterMs = *ev.JitterMs
		}
		if ev.Loss != nil {
			d.loss = *ev.Loss
		}
	}
}

// join attaches one new peer mid-run: class and capabilities drawn from the
// current arrival distribution, engine seed derived from the peer index
// exactly as at build time, view seeded like the time-zero bootstrap, and a
// periodic shuffle armed with a random phase.
func (d *scenarioDriver) join() {
	st := d.st
	cfg := st.cfg
	idx := len(st.peers)
	id := ident.NodeID(idx + 1)

	class := ident.Public
	upnp := false
	if d.topoRNG.Float64() < d.natRatio {
		class = drawClass(d.topoRNG.Rand, d.mix)
		upnp = d.topoRNG.Float64() < cfg.UPnPFraction
	}
	if cfg.Protocol == ProtoStaticRVP {
		if class == ident.Public {
			st.publicIDs = append(st.publicIDs, id)
		} else if len(st.publicIDs) > 0 {
			// The strawman pins each natted peer to one fixed public RVP
			// for life — possibly one that has already departed, which is
			// exactly its weakness.
			st.rvpOf[id] = st.publicIDs[d.topoRNG.Intn(len(st.publicIDs))]
		}
	}

	st.addPeer(id, class, upnp)
	p := st.peers[idx]
	// Joins happen at barriers, so growing the shared selection counters
	// (and the per-sender link streams) is race-free.
	for len(st.selections) < len(st.peers)+1 {
		st.selections = append(st.selections, 0)
	}
	if d.sc.NeedsLinkPolicy() {
		d.growLinkRNGs()
	}
	if d.partSince >= 0 && d.topoRNG.Float64() < d.partFraction {
		p.Side = 1
	}
	st.seedPeer(p, d.topoRNG.Rand)
	st.armTick(p, st.now()+d.topoRNG.Int63n(cfg.PeriodMs))
	d.stats.Joins++
}

// drawClass samples a NAT class from the mix.
func drawClass(rng *rand.Rand, m NATMix) ident.NATClass {
	r := rng.Float64()
	switch {
	case r < m.RC:
		return ident.RestrictedCone
	case r < m.RC+m.PRC:
		return ident.PortRestrictedCone
	default:
		return ident.Symmetric
	}
}

// alive rebuilds the scratch list of alive peers, in peer-index order.
func (d *scenarioDriver) alive() []*simnet.Peer {
	d.aliveScratch = d.aliveScratch[:0]
	for _, p := range d.st.peers {
		if p.Alive {
			d.aliveScratch = append(d.aliveScratch, p)
		}
	}
	return d.aliveScratch
}

func (d *scenarioDriver) countAlive() int { return len(d.alive()) }

// kill removes up to k uniformly-drawn alive peers, always sparing at least
// one so the run keeps a measurable overlay.
func (d *scenarioDriver) kill(k int) {
	alive := d.alive()
	if k > len(alive)-1 {
		k = len(alive) - 1
	}
	for i := 0; i < k; i++ {
		j := d.churnRNG.Intn(len(alive))
		d.st.kill(alive[j].ID)
		alive[j] = alive[len(alive)-1]
		alive = alive[:len(alive)-1]
		d.stats.Leaves++
	}
}

// failGateways kills whole NAT-gateway groups: alive natted peers are
// chunked, in peer-index order, into logical groups of the scenario's
// gateway group size (the simulated network keeps one NAT device per peer,
// so the group models the shared physical gateway), and every member of each
// failing group dies together.
func (d *scenarioDriver) failGateways(groups int) {
	var natted []*simnet.Peer
	for _, p := range d.st.peers {
		if p.Alive && p.Class.Natted() {
			natted = append(natted, p)
		}
	}
	size := d.sc.GroupSize()
	numGroups := (len(natted) + size - 1) / size
	if numGroups == 0 {
		return
	}
	if groups > numGroups {
		groups = numGroups
	}
	perm := d.churnRNG.Perm(numGroups)
	for _, g := range perm[:groups] {
		lo, hi := g*size, (g+1)*size
		if hi > len(natted) {
			hi = len(natted)
		}
		for _, p := range natted[lo:hi] {
			d.st.kill(p.ID)
			d.stats.Leaves++
		}
		d.stats.GatewayFailures++
	}
}

// partition splits the alive population: a minority side of ev.Fraction
// (clamped to keep both sides non-empty), the rest on side 0. Peers joining
// while the partition holds are assigned a side with the same bias.
func (d *scenarioDriver) partition(ev scenario.Event) {
	alive := d.alive()
	if len(alive) < 2 {
		return
	}
	if d.partSince >= 0 {
		// A new partition while one holds: close the first interval's
		// books, then re-cut.
		d.stats.PartitionRounds += ev.Round - d.partSince
	}
	k := int(ev.Fraction*float64(len(alive)) + 0.5)
	if k < 1 {
		k = 1
	}
	if k > len(alive)-1 {
		k = len(alive) - 1
	}
	perm := d.topoRNG.Perm(len(alive))
	for i, j := range perm {
		if i < k {
			alive[j].Side = 1
		} else {
			alive[j].Side = 0
		}
	}
	d.st.net.SetPartitionActive(true)
	d.partSince = ev.Round
	d.partFraction = ev.Fraction
	d.partGen++
	d.healRound = 0
	if ev.DurationRounds > 0 {
		healRound := ev.Round + ev.DurationRounds
		// A duration reaching past the run horizon behaves exactly like
		// duration 0: the partition stays in force through the final
		// measurement (a heal at the end boundary would fire just before
		// measure() and misreport a healed overlay).
		if healRound < d.st.cfg.Rounds {
			d.armHeal(healRound)
		}
	}
}

// armHeal schedules the active partition's auto-heal and records the round so
// a checkpoint can capture it (the scheduled closure itself cannot be
// serialized; a resumed run re-arms from healRound).
func (d *scenarioDriver) armHeal(round int) {
	d.healRound = round
	gen := d.partGen
	d.st.kern.Global().At(int64(round)*d.st.cfg.PeriodMs, func() {
		// Only heal the partition that scheduled this; a later cut owns
		// its own lifetime.
		if d.partGen == gen {
			d.heal(round)
		}
	})
}

// heal ends the active partition (idempotent).
func (d *scenarioDriver) heal(round int) {
	if d.partSince < 0 {
		return
	}
	d.stats.PartitionRounds += round - d.partSince
	d.partSince = -1
	d.healRound = 0
	d.st.net.SetPartitionActive(false)
	for _, p := range d.st.peers {
		p.Side = 0
	}
}

// finishStats closes open bookkeeping (a partition still active at the end
// of the run) and returns the run's scenario summary.
func (d *scenarioDriver) finishStats() ScenarioStats {
	if d.partSince >= 0 {
		d.stats.PartitionRounds += d.st.cfg.Rounds - d.partSince
		d.partSince = -1
	}
	return d.stats
}
