package exp

import (
	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/stats"
	"repro/internal/view"
)

// SamplePoint is one mid-run measurement of the overlay's health, taken with
// the same usable-edge semantics as the end-of-run Result. Samples fire at
// round boundaries before that round's scenario events, so a point reflects
// the overlay as the round begins.
type SamplePoint struct {
	// Round is the shuffling round at which the snapshot was taken.
	Round int
	// BiggestCluster is the usable-edge largest-component fraction.
	BiggestCluster float64
	// StaleFraction is the stale share of view entries.
	StaleFraction float64
	// AlivePeers is the population at the snapshot.
	AlivePeers int
	// Joins and Leaves are the cumulative scenario-driven arrivals and
	// departures up to the snapshot (zero without a scenario).
	Joins, Leaves uint64
	// Eclipse is the fraction of alive honest peers whose non-empty view
	// consists entirely of colluders; ColluderShare is the share of honest
	// view entries referencing colluders. Both zero without adversaries
	// (see AdversaryStats for the definitions).
	Eclipse       float64
	ColluderShare float64
}

// RecoveryThreshold is the biggest-cluster fraction at which the overlay
// counts as recovered from a disruption.
const RecoveryThreshold = 0.95

// Recovery condenses a health series into a recovery curve: how deep the
// overlay sank and how long it took to knit itself back together.
type Recovery struct {
	// WorstCluster is the lowest sampled biggest-cluster fraction, and
	// WorstRound the round it was observed.
	WorstCluster float64
	WorstRound   int
	// RecoveredRound is the first sampled round after the worst point at
	// which the cluster regained RecoveryThreshold; -1 if it never did.
	RecoveredRound int
	// ClusterSummary summarizes the sampled biggest-cluster fractions.
	ClusterSummary stats.Summary
}

// recoveryFrom computes the recovery summary of a series. An empty series
// yields the zero Recovery.
func recoveryFrom(series []SamplePoint) Recovery {
	if len(series) == 0 {
		return Recovery{}
	}
	r := Recovery{WorstCluster: series[0].BiggestCluster, WorstRound: series[0].Round, RecoveredRound: -1}
	clusters := make([]float64, len(series))
	for i, pt := range series {
		clusters[i] = pt.BiggestCluster
		if pt.BiggestCluster < r.WorstCluster {
			r.WorstCluster = pt.BiggestCluster
			r.WorstRound = pt.Round
		}
	}
	for _, pt := range series {
		if pt.Round > r.WorstRound && pt.BiggestCluster >= RecoveryThreshold {
			r.RecoveredRound = pt.Round
			break
		}
	}
	if r.WorstCluster >= RecoveryThreshold {
		// Never disrupted below the threshold: recovered from the start.
		r.RecoveredRound = r.WorstRound
	}
	r.ClusterSummary = stats.Summarize(clusters)
	return r
}

// overlaySnapshot walks every alive peer's view once and returns the usable
// edge set plus the stale fraction. Both the periodic series sampler and the
// final measurement build on it.
func (st *runState) overlaySnapshot(now int64) (aliveIDs []ident.NodeID, edges []graph.Edge, staleFraction float64) {
	var stale, total float64
	aliveIDs = make([]ident.NodeID, 0, len(st.peers))
	edges = make([]graph.Edge, 0, len(st.peers)*st.cfg.ViewSize)
	var entries []view.Descriptor
	for _, p := range st.peers {
		if !p.Alive {
			continue
		}
		aliveIDs = append(aliveIDs, p.ID)
		entries = p.Engine.View().EntriesInto(entries)
		for _, d := range entries {
			total++
			if st.usableEdge(now, p, d) {
				edges = append(edges, graph.Edge{From: p.ID, To: d.ID})
			} else {
				stale++
			}
		}
	}
	if total > 0 {
		staleFraction = stale / total
	}
	return aliveIDs, edges, staleFraction
}

// scheduleSeries arms periodic snapshots every SampleEveryRounds rounds (as
// global barrier events: a snapshot walks every shard's peers) and returns
// the slice the run will fill.
func (st *runState) scheduleSeries() *[]SamplePoint {
	series := &[]SamplePoint{}
	if st.cfg.SampleEveryRounds <= 0 {
		return series
	}
	for r := st.cfg.SampleEveryRounds; r <= st.cfg.Rounds; r += st.cfg.SampleEveryRounds {
		r := r
		st.kern.Global().At(int64(r)*st.cfg.PeriodMs, func() {
			now := st.now()
			aliveIDs, edges, stale := st.overlaySnapshot(now)
			pt := SamplePoint{
				Round:          r,
				BiggestCluster: graph.BiggestClusterFraction(aliveIDs, edges),
				StaleFraction:  stale,
				AlivePeers:     len(aliveIDs),
			}
			if st.scn != nil {
				pt.Joins, pt.Leaves = st.scn.stats.Joins, st.scn.stats.Leaves
			}
			if st.adv != nil {
				s := st.sampleAdversary(false)
				pt.Eclipse = s.eclipseFraction()
				pt.ColluderShare = s.colluderShare()
			}
			*series = append(*series, pt)
		})
	}
	return series
}
