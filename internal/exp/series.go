package exp

import (
	"fmt"
	"slices"

	"repro/internal/graph"
	"repro/internal/ident"
	"repro/internal/stats"
	"repro/internal/view"
)

// SamplePoint is one mid-run measurement of the overlay's health, taken with
// the same usable-edge semantics as the end-of-run Result. Samples fire at
// round boundaries before that round's scenario events, so a point reflects
// the overlay as the round begins.
type SamplePoint struct {
	// Round is the shuffling round at which the snapshot was taken.
	Round int
	// BiggestCluster is the usable-edge largest-component fraction.
	BiggestCluster float64
	// StaleFraction is the stale share of view entries.
	StaleFraction float64
	// AlivePeers is the population at the snapshot.
	AlivePeers int
	// Joins and Leaves are the cumulative scenario-driven arrivals and
	// departures up to the snapshot (zero without a scenario).
	Joins, Leaves uint64
	// Eclipse is the fraction of alive honest peers whose non-empty view
	// consists entirely of colluders; ColluderShare is the share of honest
	// view entries referencing colluders. Both zero without adversaries
	// (see AdversaryStats for the definitions).
	Eclipse       float64
	ColluderShare float64
}

// RecoveryThreshold is the biggest-cluster fraction at which the overlay
// counts as recovered from a disruption.
const RecoveryThreshold = 0.95

// Recovery condenses a health series into a recovery curve: how deep the
// overlay sank and how long it took to knit itself back together.
type Recovery struct {
	// WorstCluster is the lowest sampled biggest-cluster fraction, and
	// WorstRound the round it was observed.
	WorstCluster float64
	WorstRound   int
	// RecoveredRound is the first sampled round after the worst point at
	// which the cluster regained RecoveryThreshold; -1 if it never did.
	RecoveredRound int
	// ClusterSummary summarizes the sampled biggest-cluster fractions.
	ClusterSummary stats.Summary
}

// recoveryFrom computes the recovery summary of a series. An empty series
// yields the zero Recovery.
func recoveryFrom(series []SamplePoint) Recovery {
	if len(series) == 0 {
		return Recovery{}
	}
	r := Recovery{WorstCluster: series[0].BiggestCluster, WorstRound: series[0].Round, RecoveredRound: -1}
	clusters := make([]float64, len(series))
	for i, pt := range series {
		clusters[i] = pt.BiggestCluster
		if pt.BiggestCluster < r.WorstCluster {
			r.WorstCluster = pt.BiggestCluster
			r.WorstRound = pt.Round
		}
	}
	for _, pt := range series {
		if pt.Round > r.WorstRound && pt.BiggestCluster >= RecoveryThreshold {
			r.RecoveredRound = pt.Round
			break
		}
	}
	if r.WorstCluster >= RecoveryThreshold {
		// Never disrupted below the threshold: recovered from the start.
		r.RecoveredRound = r.WorstRound
	}
	r.ClusterSummary = stats.Summarize(clusters)
	return r
}

// sampleOverlay is the periodic sampler: the same usable-edge semantics as
// overlaySnapshot, but reading views in place (view.At) into run-lifetime
// scratch, so a sample copies no descriptors and allocates only while the
// population outgrows the scratch. Exact staleness depends on the viewing
// peer (NAT admission, RVP chain walks — see DESIGN.md §9), so the walk
// itself cannot move into the incremental accumulators; what could, did.
func (st *runState) sampleOverlay(now int64) (aliveIDs []ident.NodeID, edges []graph.Edge, staleFraction float64) {
	aliveIDs = st.sampleIDs[:0]
	edges = st.sampleEdges[:0]
	var stale, total int
	for _, p := range st.peers {
		if !p.Alive {
			continue
		}
		aliveIDs = append(aliveIDs, p.ID)
		v := p.Engine.View()
		for j, l := 0, v.Len(); j < l; j++ {
			d := v.At(j)
			total++
			if st.usableEdge(now, p, d) {
				edges = append(edges, graph.Edge{From: p.ID, To: d.ID})
			} else {
				stale++
			}
		}
	}
	st.sampleIDs, st.sampleEdges = aliveIDs, edges
	if total > 0 {
		staleFraction = float64(stale) / float64(total)
	}
	return aliveIDs, edges, staleFraction
}

// verifySample cross-checks one zero-copy sample against the legacy
// full-copy sweep (overlaySnapshot) and the incremental health accumulators.
// Divergence means a bug in the observability layer, so it panics rather
// than letting the series silently skew.
func (st *runState) verifySample(now int64, aliveIDs []ident.NodeID, edges []graph.Edge, stale float64) {
	refIDs, refEdges, refStale := st.overlaySnapshot(now)
	if !slices.Equal(aliveIDs, refIDs) || !slices.Equal(edges, refEdges) || stale != refStale {
		panic(fmt.Sprintf("exp: sample diverges from reference sweep (%d vs %d ids, %d vs %d edges, stale %v vs %v)",
			len(aliveIDs), len(refIDs), len(edges), len(refEdges), stale, refStale))
	}
	st.verifyAccumulators()
}

// verifyAccumulators recounts the health accumulators from scratch — every
// view of every peer, dead ones included — and panics on any mismatch with
// the incrementally maintained values.
func (st *runState) verifyAccumulators() {
	h := st.health
	if h == nil {
		return
	}
	var alive, entries, deadEntries, deadRefs int64
	refs := make(map[ident.NodeID]int64, len(st.peers))
	for _, p := range st.peers {
		v := p.Engine.View()
		n := int64(v.Len())
		entries += n
		if p.Alive {
			alive++
		} else {
			deadEntries += n
		}
		for j, l := 0, v.Len(); j < l; j++ {
			d := v.At(j)
			refs[d.ID]++
			if q := st.net.Peer(d.ID); q == nil || !q.Alive {
				deadRefs++
			}
		}
	}
	if h.Alive() != alive || h.Entries() != entries || h.DeadEntries() != deadEntries || h.DeadRefs() != deadRefs {
		panic(fmt.Sprintf("exp: health accumulators diverge from recount: alive %d vs %d, entries %d vs %d, dead entries %d vs %d, dead refs %d vs %d",
			h.Alive(), alive, h.Entries(), entries, h.DeadEntries(), deadEntries, h.DeadRefs(), deadRefs))
	}
	for id, want := range refs {
		if got := int64(h.Indegree(id)); got != want {
			panic(fmt.Sprintf("exp: indegree accumulator for peer %d diverges: %d vs recount %d", id, got, want))
		}
	}
}

// overlaySnapshot walks every alive peer's view once and returns the usable
// edge set plus the stale fraction, copying entries out through EntriesInto.
// The final measurement builds on the same semantics; the periodic series
// uses the zero-copy sampleOverlay, for which this remains the
// independently-coded reference (Config.VerifySamples).
func (st *runState) overlaySnapshot(now int64) (aliveIDs []ident.NodeID, edges []graph.Edge, staleFraction float64) {
	var stale, total float64
	aliveIDs = make([]ident.NodeID, 0, len(st.peers))
	edges = make([]graph.Edge, 0, len(st.peers)*st.cfg.ViewSize)
	var entries []view.Descriptor
	for _, p := range st.peers {
		if !p.Alive {
			continue
		}
		aliveIDs = append(aliveIDs, p.ID)
		entries = p.Engine.View().EntriesInto(entries)
		for _, d := range entries {
			total++
			if st.usableEdge(now, p, d) {
				edges = append(edges, graph.Edge{From: p.ID, To: d.ID})
			} else {
				stale++
			}
		}
	}
	if total > 0 {
		staleFraction = stale / total
	}
	return aliveIDs, edges, staleFraction
}

// scheduleSeries arms periodic snapshots every SampleEveryRounds rounds (as
// global barrier events: a snapshot walks every shard's peers) into
// st.series. Only rounds strictly after the given time are armed: resumed
// runs restore the earlier points from the snapshot and pass its time here.
func (st *runState) scheduleSeries(after int64) {
	if st.series == nil {
		st.series = &[]SamplePoint{}
	}
	series := st.series
	if st.cfg.SampleEveryRounds <= 0 {
		return
	}
	for r := st.cfg.SampleEveryRounds; r <= st.cfg.Rounds; r += st.cfg.SampleEveryRounds {
		r := r
		if int64(r)*st.cfg.PeriodMs <= after {
			continue
		}
		st.kern.Global().At(int64(r)*st.cfg.PeriodMs, func() {
			now := st.now()
			aliveIDs, edges, stale := st.sampleOverlay(now)
			if st.cfg.VerifySamples {
				st.verifySample(now, aliveIDs, edges, stale)
			}
			pt := SamplePoint{
				Round:          r,
				BiggestCluster: graph.BiggestClusterFraction(aliveIDs, edges),
				StaleFraction:  stale,
				AlivePeers:     len(aliveIDs),
			}
			if st.scn != nil {
				pt.Joins, pt.Leaves = st.scn.stats.Joins, st.scn.stats.Leaves
			}
			if st.adv != nil {
				s := st.sampleAdversary(false)
				pt.Eclipse = s.eclipseFraction()
				pt.ColluderShare = s.colluderShare()
			}
			*series = append(*series, pt)
			if st.cfg.Obs != nil {
				st.cfg.Obs.PublishSample(r, pt.AlivePeers, pt.BiggestCluster, pt.StaleFraction)
			}
			st.observeFlight(pt, *series)
		})
	}
}
