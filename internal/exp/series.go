package exp

import (
	"repro/internal/graph"
	"repro/internal/ident"
)

// SamplePoint is one mid-run measurement of the overlay's health, taken with
// the same usable-edge semantics as the end-of-run Result.
type SamplePoint struct {
	// Round is the shuffling round at which the snapshot was taken.
	Round int
	// BiggestCluster is the usable-edge largest-component fraction.
	BiggestCluster float64
	// StaleFraction is the stale share of view entries.
	StaleFraction float64
	// AlivePeers is the population at the snapshot.
	AlivePeers int
}

// overlaySnapshot walks every alive peer's view once and returns the usable
// edge set plus the stale fraction. Both the periodic series sampler and the
// final measurement build on it.
func (st *runState) overlaySnapshot(now int64) (aliveIDs []ident.NodeID, edges []graph.Edge, staleFraction float64) {
	var stale, total float64
	for _, p := range st.peers {
		if !p.Alive {
			continue
		}
		aliveIDs = append(aliveIDs, p.ID)
		for _, d := range p.Engine.View().Entries() {
			total++
			if st.usableEdge(now, p, d) {
				edges = append(edges, graph.Edge{From: p.ID, To: d.ID})
			} else {
				stale++
			}
		}
	}
	if total > 0 {
		staleFraction = stale / total
	}
	return aliveIDs, edges, staleFraction
}

// scheduleSeries arms periodic snapshots every SampleEveryRounds rounds and
// returns the slice the run will fill.
func (st *runState) scheduleSeries() *[]SamplePoint {
	series := &[]SamplePoint{}
	if st.cfg.SampleEveryRounds <= 0 {
		return series
	}
	for r := st.cfg.SampleEveryRounds; r <= st.cfg.Rounds; r += st.cfg.SampleEveryRounds {
		r := r
		st.sched.At(int64(r)*st.cfg.PeriodMs, func() {
			now := st.sched.Now()
			aliveIDs, edges, stale := st.overlaySnapshot(now)
			*series = append(*series, SamplePoint{
				Round:          r,
				BiggestCluster: graph.BiggestClusterFraction(aliveIDs, edges),
				StaleFraction:  stale,
				AlivePeers:     len(aliveIDs),
			})
		})
	}
	return series
}
