package exp

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/view"
)

func baseScenarioCfg() Config {
	return Config{
		N: 150, Rounds: 40, NATRatio: 0.7, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 42, SampleEveryRounds: 10,
	}
}

// stormScenario is the full-surface scenario: Poisson churn, a flash crowd,
// a partition/heal cycle, link loss and jitter, a gateway failure, and a
// NAT-mix shift.
func stormScenario() *scenario.Scenario {
	natRatio := 0.9
	return &scenario.Scenario{
		Name:  "storm",
		Churn: &scenario.Churn{JoinsPerRound: 1.5, LeavesPerRound: 1.5, StartRound: 5},
		Link:  &scenario.Link{JitterMs: 20, Loss: 0.1},
		Events: []scenario.Event{
			{Round: 8, Kind: scenario.KindFlashCrowd, Count: 30},
			{Round: 12, Kind: scenario.KindPartition, Fraction: 0.3, DurationRounds: 8},
			{Round: 22, Kind: scenario.KindGatewayFailure, Groups: 2},
			{Round: 25, Kind: scenario.KindNATShift, NATRatio: &natRatio},
		},
	}
}

// TestQuiescentScenarioBitIdentical locks in the determinism contract's
// degenerate case: a non-nil but quiescent scenario must produce the exact
// same Result as no scenario at all — same RNG streams, same event order,
// same delivery path.
func TestQuiescentScenarioBitIdentical(t *testing.T) {
	for _, proto := range []Protocol{ProtoGeneric, ProtoNylon} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			cfg := baseScenarioCfg()
			cfg.Protocol = proto
			cfg.ChurnAtRound, cfg.ChurnFraction = 20, 0.3

			bare, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Scenario = &scenario.Scenario{Name: "idle", GatewayGroupSize: 4}
			quiet, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Only the echoed Cfg may differ (it carries the scenario
			// pointer); every measured quantity must be bit-identical.
			bare.Cfg, quiet.Cfg = Config{}, Config{}
			if !reflect.DeepEqual(bare, quiet) {
				t.Errorf("quiescent scenario changed the run:\n bare: %+v\nquiet: %+v", bare, quiet)
			}
		})
	}
}

// TestScenarioRunDeterministic: a scenario-laden run is a pure function of
// (Config, Scenario, Seed).
func TestScenarioRunDeterministic(t *testing.T) {
	cfg := baseScenarioCfg()
	cfg.Scenario = stormScenario()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same (Config, Scenario, Seed) produced different results:\n a: %+v\n b: %+v", a, b)
	}
	if a.Scenario.Joins == 0 || a.Scenario.Leaves == 0 {
		t.Errorf("storm scenario drove no churn: %+v", a.Scenario)
	}
	if a.Scenario.PartitionRounds != 8 {
		t.Errorf("PartitionRounds = %d, want 8", a.Scenario.PartitionRounds)
	}
	if a.Scenario.GatewayFailures != 2 {
		t.Errorf("GatewayFailures = %d, want 2", a.Scenario.GatewayFailures)
	}
	if a.Drops.LinkLost == 0 {
		t.Error("10% link loss lost no datagrams")
	}
	if a.Drops.Partitioned == 0 {
		t.Error("partition dropped no datagrams")
	}
	if a.TotalPeers <= cfg.N {
		t.Errorf("TotalPeers = %d, want > %d (joins occurred)", a.TotalPeers, cfg.N)
	}
}

// TestScenarioAcceptance1k is the acceptance-criteria run: Poisson churn, a
// partition/heal cycle and 10% link loss at 1,000 peers must be
// seed-deterministic.
func TestScenarioAcceptance1k(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-peer scenario run skipped in -short mode")
	}
	cfg := Config{
		N: 1000, Rounds: 30, NATRatio: 0.8, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 7, SampleEveryRounds: 5,
		Scenario: &scenario.Scenario{
			Name:  "acceptance",
			Churn: &scenario.Churn{JoinsPerRound: 3, LeavesPerRound: 3},
			Link:  &scenario.Link{Loss: 0.1},
			Events: []scenario.Event{
				{Round: 10, Kind: scenario.KindPartition, Fraction: 0.3, DurationRounds: 10},
			},
		},
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("1k-peer scenario run is not seed-deterministic")
	}
	if a.BiggestCluster < 0.9 {
		t.Errorf("Nylon fell apart under the acceptance scenario: cluster %.2f", a.BiggestCluster)
	}
}

// TestScenarioJoinsGrowPopulation drives a pure flash-crowd scenario and
// checks the newcomers really join the overlay: they are alive, measured,
// and absorbed into the connected component.
func TestScenarioJoinsGrowPopulation(t *testing.T) {
	cfg := baseScenarioCfg()
	cfg.Scenario = &scenario.Scenario{
		Events: []scenario.Event{{Round: 10, Kind: scenario.KindFlashCrowd, Fraction: 0.5}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.N + cfg.N/2
	if res.TotalPeers != want {
		t.Errorf("TotalPeers = %d, want %d", res.TotalPeers, want)
	}
	if res.AlivePeers != want {
		t.Errorf("AlivePeers = %d, want %d (nobody departed)", res.AlivePeers, want)
	}
	if res.Scenario.Joins != uint64(cfg.N/2) {
		t.Errorf("Joins = %d, want %d", res.Scenario.Joins, cfg.N/2)
	}
	if res.BiggestCluster < 0.95 {
		t.Errorf("flash crowd not absorbed: cluster %.2f", res.BiggestCluster)
	}
	// The series must show the population step.
	var before, after int
	for _, pt := range res.Series {
		if pt.Round == 10 {
			before = pt.AlivePeers
		}
		if pt.Round == 20 {
			after = pt.AlivePeers
		}
	}
	if before != cfg.N || after != want {
		t.Errorf("series population step %d -> %d, want %d -> %d", before, after, cfg.N, want)
	}
}

// TestScenarioMassLeaveMatchesLegacyShape checks mass_leave behaves like the
// legacy one-shot churn: the overlay loses the requested fraction and the
// recovery summary registers the disruption.
func TestScenarioMassLeaveMatchesLegacyShape(t *testing.T) {
	cfg := baseScenarioCfg()
	cfg.Rounds = 60
	cfg.SampleEveryRounds = 5
	cfg.Scenario = &scenario.Scenario{
		Events: []scenario.Event{{Round: 20, Kind: scenario.KindMassLeave, Fraction: 0.5}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantAlive := cfg.N - int(0.5*float64(cfg.N)+0.5)
	if res.AlivePeers != wantAlive {
		t.Errorf("AlivePeers = %d, want %d", res.AlivePeers, wantAlive)
	}
	if res.Recovery.WorstRound <= 20 {
		t.Errorf("recovery worst round %d, want after the leave at 20", res.Recovery.WorstRound)
	}
	if res.Recovery.RecoveredRound < 0 {
		t.Error("Nylon never recovered from a 50% mass leave")
	}
}

// TestPartitionLifetimes pins the partition edge cases: an auto-heal
// belongs to the partition that scheduled it (a later cut owns its own
// lifetime), and a duration reaching the run horizon keeps the partition in
// force through the final measurement, exactly like duration 0.
func TestPartitionLifetimes(t *testing.T) {
	base := baseScenarioCfg()
	base.Rounds = 40

	// Partition at 10 with duration 5; a second, run-long partition at 12.
	// The gen-tagged heal at 15 must not end the second cut, so the final
	// measurement sees a split overlay.
	cfg := base
	cfg.Scenario = &scenario.Scenario{
		Events: []scenario.Event{
			{Round: 10, Kind: scenario.KindPartition, Fraction: 0.3, DurationRounds: 5},
			{Round: 12, Kind: scenario.KindPartition, Fraction: 0.3},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.BiggestCluster > 0.8 {
		t.Errorf("stale auto-heal ended the second partition: final cluster %.2f", res.BiggestCluster)
	}
	// First interval (10..12) plus second (12..40).
	if res.Scenario.PartitionRounds != 30 {
		t.Errorf("PartitionRounds = %d, want 30", res.Scenario.PartitionRounds)
	}

	// Duration past the horizon ≡ duration 0: both must report the split.
	overlong, end := base, base
	overlong.Scenario = &scenario.Scenario{
		Events: []scenario.Event{{Round: 30, Kind: scenario.KindPartition, Fraction: 0.3, DurationRounds: 100}},
	}
	end.Scenario = &scenario.Scenario{
		Events: []scenario.Event{{Round: 30, Kind: scenario.KindPartition, Fraction: 0.3}},
	}
	a, err := Run(overlong)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(end)
	if err != nil {
		t.Fatal(err)
	}
	if a.BiggestCluster > 0.8 {
		t.Errorf("overlong partition reported healed at measurement: cluster %.2f", a.BiggestCluster)
	}
	a.Cfg, b.Cfg = Config{}, Config{}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("duration past horizon differs from duration 0:\n a: %+v\n b: %+v", a, b)
	}
}

// TestScenarioValidationSurfacesInRun checks Config.validate wires scenario
// validation through with a useful message.
func TestScenarioValidationSurfacesInRun(t *testing.T) {
	cfg := baseScenarioCfg()
	cfg.Scenario = &scenario.Scenario{Link: &scenario.Link{Loss: 1.0}}
	if _, err := Run(cfg); err == nil {
		t.Error("loss = 1 accepted")
	}
	cfg = baseScenarioCfg()
	cfg.Scenario = &scenario.Scenario{Events: []scenario.Event{{Round: cfg.Rounds + 5, Kind: scenario.KindHeal}}}
	if _, err := Run(cfg); err == nil {
		t.Error("event past the run horizon accepted")
	}
	cfg = baseScenarioCfg()
	cfg.Scenario = &scenario.Scenario{Link: &scenario.Link{JitterMs: -3}}
	if _, err := Run(cfg); err == nil {
		t.Error("negative jitter accepted")
	}
}

// TestQuiescentScenarioNoExtraAllocs guards the fast path: a quiescent
// scenario must not add steady-state allocations — the driver is never even
// constructed, so the whole run allocates exactly what the legacy path does.
func TestQuiescentScenarioNoExtraAllocs(t *testing.T) {
	cfg := baseScenarioCfg()
	cfg.N, cfg.Rounds, cfg.SampleEveryRounds = 60, 12, 0

	run := func(c Config) func() {
		return func() {
			if _, err := Run(c); err != nil {
				t.Fatal(err)
			}
		}
	}
	bare := testing.AllocsPerRun(3, run(cfg))
	quiet := cfg
	quiet.Scenario = &scenario.Scenario{Name: "idle"}
	withScenario := testing.AllocsPerRun(3, run(quiet))
	if diff := withScenario - bare; diff > 8 || diff < -8 {
		t.Errorf("quiescent scenario changed allocations by %.0f (bare %.0f, quiescent %.0f)", diff, bare, withScenario)
	}
}

// TestHighChurnSlotGrowthDeterminism drives a membership meat-grinder whose
// joins outnumber the initial population several times over — pushing the
// peer slabs, the ID→slot index, the tick wheel and the shared selection
// counters through many growth cycles mid-run — and requires bit-identical
// results across runs and worker counts. This is the unit-sized version of
// examples/scenario-lab/slot-churn-50k.json.
func TestHighChurnSlotGrowthDeterminism(t *testing.T) {
	base := Config{
		N: 150, Rounds: 50, NATRatio: 0.8, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 42, SampleEveryRounds: 5,
		Scenario: &scenario.Scenario{
			Name:  "slot-grinder",
			Churn: &scenario.Churn{JoinsPerRound: 20, LeavesPerRound: 12, StartRound: 2},
			Events: []scenario.Event{
				{Round: 15, Kind: scenario.KindMassLeave, Fraction: 0.3},
				{Round: 25, Kind: scenario.KindFlashCrowd, Fraction: 0.5},
			},
		},
	}
	run := func(workers int) Result {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	ref.Cfg.Workers = 0
	if ref.TotalPeers <= 2*base.N {
		t.Fatalf("scenario too tame: %d total peers from %d initial — wanted several slab growth cycles", ref.TotalPeers, base.N)
	}
	for _, workers := range []int{1, 4} {
		got := run(workers)
		got.Cfg.Workers = 0 // the echoed effective worker count legitimately differs
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("workers=%d diverged from reference:\n ref %+v\n got %+v", workers, got, ref)
		}
	}
}
