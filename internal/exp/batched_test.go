package exp

import (
	"reflect"
	"testing"

	"repro/internal/scenario"
)

// TestBatchedDeliveryInvariance pins the throughput engine's core contract:
// batched lane delivery (the default) and strict per-datagram delivery are
// the same machine. For every corpus leg — quiescent, the storm scenario
// (continuous churn, flash crowd, partition/heal, lossy jittered links) and
// the adversary-churn scenario (Byzantine peers under churn) — the batched
// run must be bit-identical to the per-datagram run at every worker × shard
// combination, because batching only coalesces scheduler pops; it never
// reorders deliveries relative to the event keys.
func TestBatchedDeliveryInvariance(t *testing.T) {
	load := func(name string) *scenario.Scenario {
		s, err := scenario.Load("../../examples/scenario-lab/" + name)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// The adversary corpus file carries the churn timeline; the Byzantine
	// cohort itself is injected by the harness (as cmd/nylon-scenario's
	// -adversary flag does), so wrapped engines and relay denials are on
	// the delivery path under test.
	adv := load("adversary-churn.json")
	adv.Adversaries = []scenario.Adversary{{Strategy: "lying-rvp", Fraction: 0.2}}
	legs := []struct {
		name     string
		scenario *scenario.Scenario
		rounds   int
	}{
		{"quiescent", nil, 0},
		{"storm", load("storm.json"), 80}, // past the round-70 flash crowd
		{"adversary", adv, 0},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			for _, grid := range []struct{ workers, shards int }{
				{1, 1}, {1, 16}, {8, 1}, {8, 16},
			} {
				cfg := corpusCfg()
				cfg.Scenario = leg.scenario
				if leg.rounds > 0 {
					cfg.Rounds = leg.rounds
				}
				cfg.Workers = grid.workers
				cfg.Shards = grid.shards
				batched := runCorpus(t, cfg)
				cfg.PerDatagramDelivery = true
				perDatagram := runCorpus(t, cfg)
				if !reflect.DeepEqual(batched, perDatagram) {
					t.Errorf("workers=%d shards=%d: batched delivery diverged from per-datagram:\nbatched:      %+v\nper-datagram: %+v",
						grid.workers, grid.shards, batched, perDatagram)
				}
			}
		})
	}
}
