package exp

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/scenario"
	"repro/internal/snapshot"
	"repro/internal/view"
)

// ckTestConfig is the shared experiment point of the checkpoint tests: small
// enough to run many times, big enough to have in-flight traffic, NAT state,
// scenario churn and adversaries in every snapshot.
func ckTestConfig(sc *scenario.Scenario) Config {
	return Config{
		N: 120, Rounds: 40, NATRatio: 0.7, Protocol: ProtoNylon,
		Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		EvictUnanswered: true, Seed: 42,
		SampleEveryRounds: 10,
		Scenario:          sc,
	}
}

func ckStorm() *scenario.Scenario {
	return &scenario.Scenario{
		Name:  "ck-storm",
		Churn: &scenario.Churn{JoinsPerRound: 1, LeavesPerRound: 1, StartRound: 5},
		Link:  &scenario.Link{JitterMs: 15, Loss: 0.05},
		Events: []scenario.Event{
			{Round: 10, Kind: scenario.KindFlashCrowd, Count: 20},
			// The partition heals at round 25, after the round-20 snapshot:
			// resume must re-arm the auto-heal from the serialized healRound.
			{Round: 15, Kind: scenario.KindPartition, Fraction: 0.25, DurationRounds: 10},
		},
	}
}

func ckAdversarial() *scenario.Scenario {
	return &scenario.Scenario{
		Name:  "ck-adversary",
		Churn: &scenario.Churn{JoinsPerRound: 1, LeavesPerRound: 1, StartRound: 5},
		Adversaries: []scenario.Adversary{
			{Strategy: "poison-view", Fraction: 0.2, FromRound: 5},
		},
	}
}

// normalizeResult strips the config echo (which legitimately differs across
// execution shapes and checkpoint wiring) so everything measured remains.
func normalizeResult(r Result) Result {
	r.Cfg = Config{}
	return r
}

// runCheckpointed runs cfg with checkpoints every everyRounds rounds into a
// fresh directory and returns the result and the directory.
func runCheckpointed(t *testing.T, cfg Config, everyRounds int) (Result, string) {
	t.Helper()
	dir := t.TempDir()
	cfg.Checkpoint = &CheckpointSpec{Dir: dir, EveryRounds: everyRounds}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	return res, dir
}

// TestSnapshotResumeInvariance pins the tentpole contract: a run that
// snapshots at round k and resumes is bit-identical to one that ran straight
// through — across worker and shard counts on the resuming side, for a
// quiescent run, a full scenario storm, and an adversarial cohort.
func TestSnapshotResumeInvariance(t *testing.T) {
	legs := []struct {
		name string
		sc   *scenario.Scenario
	}{
		{"quiescent", nil},
		{"storm", ckStorm()},
		{"adversary", ckAdversarial()},
	}
	for _, leg := range legs {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			cfg := ckTestConfig(leg.sc)
			straight, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := normalizeResult(straight)

			withCk, dir := runCheckpointed(t, cfg, 10)
			if !reflect.DeepEqual(normalizeResult(withCk), want) {
				t.Fatalf("enabling checkpoints perturbed the run")
			}
			names, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
			if len(names) < 3 {
				t.Fatalf("expected snapshots every 10 rounds, found %v", names)
			}

			// Resume from round 10 (before the warmup baseline is taken) and
			// round 20 (after it), across execution shapes.
			for _, round := range []int{10, 20} {
				path := filepath.Join(dir, SnapshotFileName(round))
				for _, shape := range []struct{ workers, shards int }{
					{1, 1}, {8, 1}, {1, 16}, {8, 16},
				} {
					res, err := ResumeFile(path, ResumeOptions{
						Workers: shape.workers, Shards: shape.shards,
					})
					if err != nil {
						t.Fatalf("resume round %d (%d workers, %d shards): %v",
							round, shape.workers, shape.shards, err)
					}
					if !reflect.DeepEqual(normalizeResult(res), want) {
						t.Errorf("resume from round %d with %d workers, %d shards diverges from straight-through",
							round, shape.workers, shape.shards)
					}
				}
			}
		})
	}
}

// TestSnapshotResumeFromCheckpointOfResume pins that resuming is closed under
// itself: a snapshot written by a resumed run resumes to the same result.
func TestSnapshotResumeFromCheckpointOfResume(t *testing.T) {
	cfg := ckTestConfig(ckStorm())
	straight, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, dir := runCheckpointed(t, cfg, 10)

	dir2 := t.TempDir()
	res2, err := ResumeFile(filepath.Join(dir, SnapshotFileName(10)), ResumeOptions{
		Checkpoint: &CheckpointSpec{Dir: dir2, EveryRounds: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeResult(res2), normalizeResult(straight)) {
		t.Fatalf("checkpointed resume diverges from straight-through")
	}
	// The resumed run's first periodic target is strictly after round 10, so
	// it must not rewrite its own source round but cover the rest.
	res3, err := ResumeFile(filepath.Join(dir2, SnapshotFileName(30)), ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeResult(res3), normalizeResult(straight)) {
		t.Fatalf("second-generation resume diverges from straight-through")
	}
}

// TestSnapshotBranchedResume pins branch semantics: replaying from round 20
// with a different adversary fraction is deterministic (two branched replays
// agree bit for bit) and actually branches (the cohort shows up in the
// result).
func TestSnapshotBranchedResume(t *testing.T) {
	cfg := ckTestConfig(ckStorm())
	_, dir := runCheckpointed(t, cfg, 10)
	path := filepath.Join(dir, SnapshotFileName(20))

	branch := ckStorm()
	branch.Adversaries = []scenario.Adversary{
		{Strategy: "poison-view", Fraction: 0.3, FromRound: 25},
	}
	a, err := ResumeFile(path, ResumeOptions{Scenario: branch})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ResumeFile(path, ResumeOptions{Scenario: branch, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalizeResult(a), normalizeResult(b)) {
		t.Fatalf("branched replays diverge from each other")
	}
	if a.Adversary.AdversaryCount == 0 {
		t.Fatalf("branched scenario assigned no adversaries")
	}
	straightBranch := a
	plain, err := ResumeFile(path, ResumeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(normalizeResult(straightBranch), normalizeResult(plain)) {
		t.Fatalf("branch with adversaries is identical to the unbranched resume")
	}
}

// TestResumeConfigGuard pins the sweep's cache-trust guard: resuming against
// an expectation that differs in a simulated parameter fails typed, while
// execution-shape differences pass.
func TestResumeConfigGuard(t *testing.T) {
	cfg := ckTestConfig(nil)
	_, dir := runCheckpointed(t, cfg, 10)
	path := filepath.Join(dir, SnapshotFileName(10))

	wrong := cfg
	wrong.Seed = 43
	if _, err := ResumeFile(path, ResumeOptions{Config: &wrong}); !errors.Is(err, ErrConfigMismatch) {
		t.Fatalf("seed mismatch: got %v, want ErrConfigMismatch", err)
	}
	ok := cfg
	ok.Workers = 3
	ok.Shards = 2
	if _, err := ResumeFile(path, ResumeOptions{Config: &ok}); err != nil {
		t.Fatalf("execution-shape difference must match: %v", err)
	}
}

// TestResumeRejectsHostileSnapshots drives the restore path with damaged
// inputs — truncations, bit flips, a wrong version, and payload corruptions
// re-sealed under a valid checksum — and requires a typed error every time.
func TestResumeRejectsHostileSnapshots(t *testing.T) {
	cfg := ckTestConfig(ckStorm())
	_, dir := runCheckpointed(t, cfg, 10)
	path := filepath.Join(dir, SnapshotFileName(20))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeFile(path, ResumeOptions{}); err != nil {
		t.Fatalf("pristine snapshot must resume: %v", err)
	}

	writeTemp := func(b []byte) string {
		p := filepath.Join(t.TempDir(), "bad.snap")
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	t.Run("truncated", func(t *testing.T) {
		for _, n := range []int{0, 5, len(snapshot.Magic), len(snapshot.Magic) + 8,
			len(data) / 2, len(data) - 1} {
			_, err := ResumeFile(writeTemp(data[:n]), ResumeOptions{})
			if !errors.Is(err, snapshot.ErrTruncated) {
				t.Errorf("truncation to %d bytes: got %v, want ErrTruncated", n, err)
			}
		}
	})

	t.Run("bit-flipped", func(t *testing.T) {
		// Flip one bit at positions spread across the payload and the
		// trailing checksum; every flip must fail the checksum.
		for _, pos := range []int{len(snapshot.Magic) + 8, len(data) / 3,
			len(data) / 2, len(data) - 10} {
			bad := append([]byte(nil), data...)
			bad[pos] ^= 0x40
			_, err := ResumeFile(writeTemp(bad), ResumeOptions{})
			if !errors.Is(err, snapshot.ErrChecksum) {
				t.Errorf("bit flip at %d: got %v, want ErrChecksum", pos, err)
			}
		}
	})

	t.Run("wrong-version", func(t *testing.T) {
		bad := append([]byte(nil), data...)
		copy(bad, "nylon-snap/v9\n")
		_, err := ResumeFile(writeTemp(bad), ResumeOptions{})
		if !errors.Is(err, snapshot.ErrVersion) {
			t.Fatalf("got %v, want ErrVersion", err)
		}
	})

	// The remaining cases corrupt the payload and re-seal it under a fresh,
	// valid envelope: the decode itself must reject them, typed, without the
	// checksum's help.
	payload, err := snapshot.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	resealed := func(mutate func(p []byte) []byte) error {
		_, err := Resume(mutate(append([]byte(nil), payload...)), ResumeOptions{})
		return err
	}

	t.Run("payload-truncated", func(t *testing.T) {
		for frac := 1; frac < 10; frac++ {
			err := resealed(func(p []byte) []byte { return p[:len(p)*frac/10] })
			if !errors.Is(err, snapshot.ErrCorrupt) {
				t.Errorf("payload truncated to %d/10: got %v, want ErrCorrupt", frac, err)
			}
		}
	})

	t.Run("payload-trailing-garbage", func(t *testing.T) {
		err := resealed(func(p []byte) []byte { return append(p, 0xff, 0xfe) })
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("wrong-section-tag", func(t *testing.T) {
		err := resealed(func(p []byte) []byte {
			copy(p[:4], "nope")
			return p
		})
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("config-garbage", func(t *testing.T) {
		err := resealed(func(p []byte) []byte {
			// The config JSON starts after the exp! tag and the I64 time,
			// length-prefixed; stomp its opening brace.
			p[4+8+4] = '!'
			return p
		})
		if !errors.Is(err, snapshot.ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("byte-blasts", func(t *testing.T) {
		// Blast 0xff swaths across the whole payload under a valid envelope.
		// Some swaths land in fields where any bits are a legal value (RNG
		// states, traffic counters) and decode into a world that merely
		// measures differently — that is fine. What must never happen is a
		// panic or an untyped error: every rejection goes through the
		// decoder's sticky ErrCorrupt (this is what keeps a hostile snapshot
		// from crashing a sweep instead of falling back to a re-run).
		step := len(payload) / 24
		for at := step; at < len(payload); at += step {
			at := at
			err := resealed(func(p []byte) []byte {
				for i := at; i < at+64 && i < len(p); i++ {
					p[i] = 0xff
				}
				return p
			})
			if err != nil && !errors.Is(err, snapshot.ErrCorrupt) {
				t.Errorf("garbage at %d: untyped error %v", at, err)
			}
		}
	})
}
