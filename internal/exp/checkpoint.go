package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/ident"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/simnet"
	"repro/internal/snapshot"
)

// This file implements crash-survivable checkpointing for experiment runs:
// capturing the complete world state at a kernel barrier into the
// nylon-snap/v1 container (see internal/snapshot) and resuming a run — or a
// deliberate branch of it — from such a capture.
//
// The invariant the whole design serves: a run that checkpoints at round k
// and resumes is bit-identical to one that ran straight through, for any
// worker or shard count on either side. Everything the simulation's future
// depends on is either serialized verbatim (peer and NAT state, views,
// routing tables, in-flight datagrams, RNG stream positions, accumulated
// measurements) or re-armed structurally from the config in the same
// relative order the fresh path arms it (the global timeline: warmup
// snapshot, series samples, churn, scenario events — closures cannot be
// serialized, but they are pure functions of the config and the round).
//
// Payload layout, in section order:
//
//	exp!  snapshot time, config JSON, static-RVP assignments
//	krn!  processed-event count, pending shuffle ticks (globally key-sorted)
//	net!  the simulated network (see simnet.SnapshotTo): peers, NAT devices
//	msg!  in-flight datagrams in scheduler-key order
//	drp!  drop totals
//	eng!  per-peer engine state in attachment order: adversary wrapper and
//	      engine RNG stream positions, then the protocol state
//	run!  harness state: root RNG, selection counters, warmup baseline,
//	      health series so far
//	scn!  scenario driver state: stream positions, live link model,
//	      partition bookkeeping, timeline stats
//
// Nothing in the payload depends on map iteration order, worker count or
// shard count: map-derived data is sorted before encoding, per-shard state is
// merged into canonical global orders (attachment order for peers, scheduler
// keys for events).

// Section tags of the experiment payload (the network's live in
// internal/simnet).
const (
	secExp  = "exp!"
	secKern = "krn!"
	secEng  = "eng!"
	secRun  = "run!"
	secScn  = "scn!"
)

// ErrConfigMismatch reports a Resume whose caller-expected config does not
// match the snapshot's (ResumeOptions.Config). The sweep's prefix cache
// treats it — like every snapshot error — as "re-run from scratch".
var ErrConfigMismatch = errors.New("exp: snapshot config mismatch")

// InterruptedError is returned by a run whose CheckpointSpec.Stop asked it to
// exit: the world was checkpointed at the barrier and abandoned short of the
// horizon, so no Result exists. It carries what a host needs to resume.
type InterruptedError struct {
	// Path is the final snapshot written before exiting.
	Path string
	// Round is the (floor) round of the snapshot's barrier time.
	Round int
}

func (e *InterruptedError) Error() string {
	return fmt.Sprintf("exp: run interrupted at round %d, checkpoint at %s", e.Round, e.Path)
}

// SnapshotFileName names the snapshot written at the given round. The fixed
// width keeps lexicographic directory order equal to round order, so "the
// latest snapshot" is the last name in a sorted listing.
func SnapshotFileName(round int) string {
	return fmt.Sprintf("round-%08d.snap", round)
}

// ckState is the live checkpoint wiring of one run.
type ckState struct {
	spec *CheckpointSpec
	// everyMs is the periodic cadence (0: none); next the virtual time at or
	// past which the next periodic snapshot fires. Targets are strictly after
	// the resume point, so a resumed run never rewrites its source snapshot.
	everyMs int64
	next    int64
	// err aborts the run at the next barrier (snapshot write failures);
	// interrupted records a Stop-triggered exit. finish surfaces both.
	err         error
	interrupted *InterruptedError
}

// installCheckpoint arms the barrier checkpoint hook when the config asks for
// one. resumedFrom is the snapshot time for resumed runs, -1 for fresh ones.
func (st *runState) installCheckpoint(resumedFrom int64) {
	spec := st.cfg.Checkpoint
	if spec == nil {
		return
	}
	c := &ckState{spec: spec}
	if spec.EveryRounds > 0 {
		c.everyMs = int64(spec.EveryRounds) * st.cfg.PeriodMs
		c.next = (resumedFrom/c.everyMs + 1) * c.everyMs
	}
	st.ck = c
	st.kern.SetCheckpointFn(st.checkpointBarrier)
}

// checkpointBarrier is the kernel's checkpoint hook: at this barrier every
// event at or before now has executed and the staging mailboxes are drained,
// so the world is exactly serializable. Returning true stops the run.
func (st *runState) checkpointBarrier(now int64) bool {
	c := st.ck
	if c.spec.Stop != nil && c.spec.Stop() {
		path, err := st.writeSnapshot(now)
		if err != nil {
			c.err = err
		} else {
			c.interrupted = &InterruptedError{Path: path, Round: int(now / st.cfg.PeriodMs)}
		}
		return true
	}
	if c.everyMs > 0 && now >= c.next {
		c.next = (now/c.everyMs + 1) * c.everyMs
		if _, err := st.writeSnapshot(now); err != nil {
			c.err = err
			return true
		}
	}
	return false
}

// writeSnapshot captures the world at the given barrier time and writes it
// atomically (temp file plus rename: a kill mid-write never leaves a partial
// file under the final name) into the checkpoint directory.
func (st *runState) writeSnapshot(now int64) (string, error) {
	if err := os.MkdirAll(st.ck.spec.Dir, 0o755); err != nil {
		return "", fmt.Errorf("exp: checkpoint dir: %w", err)
	}
	path := filepath.Join(st.ck.spec.Dir, SnapshotFileName(int(now/st.cfg.PeriodMs)))
	if err := snapshot.WriteFile(path, st.snapshotPayload(now)); err != nil {
		return "", err
	}
	return path, nil
}

// tickKey is one pending shuffle-tick event.
type tickKey struct {
	at         int64
	actor, seq uint64
}

// snapshotPayload serializes the complete world state at barrier time now.
func (st *runState) snapshotPayload(now int64) []byte {
	enc := &snapshot.Encoder{}

	enc.Section(secExp)
	enc.I64(now)
	cfgJSON, err := json.Marshal(st.cfg)
	if err != nil {
		panic(fmt.Sprintf("exp: config does not marshal: %v", err)) // static shape, cannot fail
	}
	enc.Bytes32(cfgJSON)
	ids := make([]ident.NodeID, 0, len(st.rvpOf))
	for id := range st.rvpOf {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	enc.U32(uint32(len(ids)))
	for _, id := range ids {
		enc.U64(uint64(id))
		enc.U64(uint64(st.rvpOf[id]))
	}
	enc.U32(uint32(len(st.publicIDs)))
	for _, id := range st.publicIDs {
		enc.U64(uint64(id))
	}

	enc.Section(secKern)
	enc.U64(st.kern.Processed())
	var ticks []tickKey
	for i := 0; i < st.kern.Shards(); i++ {
		st.kern.Shard(i).EachTick(func(at int64, actor, seq uint64) {
			ticks = append(ticks, tickKey{at: at, actor: actor, seq: seq})
		})
	}
	// Global key order: shard-count-invariant bytes, and the resuming run's
	// per-shard subsequences stay sorted whatever its shard count.
	sort.Slice(ticks, func(a, b int) bool {
		x, y := &ticks[a], &ticks[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.actor != y.actor {
			return x.actor < y.actor
		}
		return x.seq < y.seq
	})
	enc.U32(uint32(len(ticks)))
	for _, tk := range ticks {
		enc.I64(tk.at)
		enc.U64(tk.actor)
		enc.U64(tk.seq)
	}

	st.net.SnapshotTo(enc)

	enc.Section(secEng)
	st.net.EachPeer(func(p *simnet.Peer) {
		// Adversary wrappers are rebuilt structurally on restore (cohort
		// membership is a pure function of seed and peer index); only the
		// wrapper's private RNG position is state.
		if w, ok := p.Engine.(*adversary.Engine); ok {
			enc.Bool(true)
			enc.U64(w.RNGState())
		} else {
			enc.Bool(false)
		}
		enc.U64(st.engineSrcs[int(p.ID)-1].State())
		switch e := adversary.Unwrap(p.Engine).(type) {
		case *core.Nylon:
			e.SnapshotTo(enc)
		case *core.Generic:
			e.SnapshotTo(enc)
		case *core.ARRG:
			e.SnapshotTo(enc)
		case *core.StaticRVP:
			e.SnapshotTo(enc)
		default:
			panic(fmt.Sprintf("exp: unknown engine %T", p.Engine))
		}
	})

	enc.Section(secRun)
	enc.U64(st.rng.Src.State())
	enc.U32(uint32(len(st.selections)))
	for _, v := range st.selections {
		enc.U32(uint32(v))
	}
	warmupAt := int64(st.cfg.Rounds) / 3 * st.cfg.PeriodMs
	warmupTaken := now >= warmupAt
	enc.Bool(warmupTaken)
	if warmupTaken {
		enc.U32(uint32(len(*st.warmup)))
		for _, b := range *st.warmup {
			enc.U64(b)
		}
	}
	enc.U32(uint32(len(*st.series)))
	for _, pt := range *st.series {
		enc.U32(uint32(pt.Round))
		enc.F64(pt.BiggestCluster)
		enc.F64(pt.StaleFraction)
		enc.U32(uint32(pt.AlivePeers))
		enc.U64(pt.Joins)
		enc.U64(pt.Leaves)
		enc.F64(pt.Eclipse)
		enc.F64(pt.ColluderShare)
	}

	enc.Section(secScn)
	if st.scn == nil {
		enc.Bool(false)
	} else {
		d := st.scn
		enc.Bool(true)
		enc.U64(d.churnRNG.Src.State())
		enc.U64(d.topoRNG.Src.State())
		enc.U32(uint32(len(d.linkRNGs)))
		for _, r := range d.linkRNGs {
			enc.U64(r.Src.State())
		}
		enc.I64(d.jitterMs)
		enc.F64(d.loss)
		enc.F64(d.natRatio)
		enc.F64(d.mix.RC)
		enc.F64(d.mix.PRC)
		enc.F64(d.mix.SYM)
		enc.I64(int64(d.partSince))
		enc.F64(d.partFraction)
		enc.U32(uint32(d.partGen))
		enc.I64(int64(d.healRound))
		enc.U64(d.stats.Joins)
		enc.U64(d.stats.Leaves)
		enc.U64(d.stats.GatewayFailures)
		enc.I64(int64(d.stats.PartitionRounds))
	}
	return enc.Bytes()
}

// ResumeOptions parameterizes Resume. The zero value resumes the snapshot
// exactly as captured.
type ResumeOptions struct {
	// Workers and Shards, when positive, override the snapshot's execution
	// shape. Both are pure throughput knobs: results are bit-identical.
	Workers int
	Shards  int
	// Scenario, when non-nil, replaces the snapshot's scenario from the
	// resume point on — the branch entry point ("replay from round 400 with a
	// different adversary fraction"). Past timeline effects are baked into
	// the restored state; only events strictly after the snapshot time follow
	// the new scenario, and cohort membership is recomputed against it.
	// Branching away from an active partition leaves the cut in force with
	// nothing scheduled to heal it unless the new scenario heals explicitly.
	Scenario *scenario.Scenario
	// Checkpoint, when non-nil, arms checkpointing for the resumed run
	// (snapshots never embed their own checkpoint spec).
	Checkpoint *CheckpointSpec
	// Obs, when non-nil, attaches an observability hub to the resumed run.
	// Like Checkpoint it is host wiring a snapshot never carries.
	Obs *obs.Hub
	// Config, when non-nil, is the config the caller expects the snapshot to
	// carry. Resume fails with ErrConfigMismatch unless they agree on
	// everything but execution shape, scenario and host wiring — the guard
	// that keeps the sweep's prefix cache from resuming the wrong world.
	Config *Config
}

// normalizeForMatch zeroes every Config field two runs may disagree on while
// still being resumable from one another's snapshots: execution shape
// (throughput knobs), the scenario (branching), and host wiring that never
// reaches the simulation.
func normalizeForMatch(c Config) Config {
	c.Workers = 0
	c.Shards = 0
	c.Scenario = nil
	c.Obs = nil
	c.Flight = nil
	c.Checkpoint = nil
	c.PerDatagramDelivery = false
	c.TraceCapacity = 0
	c.VerifySamples = false
	return c
}

// configsMatch compares two configs after defaulting (Run defaults before
// storing, callers may hand a sparse config) and normalization.
func configsMatch(a, b Config) bool {
	aj, errA := json.Marshal(normalizeForMatch(a.Defaults()))
	bj, errB := json.Marshal(normalizeForMatch(b.Defaults()))
	return errA == nil && errB == nil && string(aj) == string(bj)
}

// ResumeFile resumes a run from a snapshot file (see Resume).
func ResumeFile(path string, opt ResumeOptions) (Result, error) {
	payload, err := snapshot.ReadFile(path)
	if err != nil {
		return Result{}, err
	}
	return Resume(payload, opt)
}

// Resume reconstructs the world from a verified snapshot payload and runs it
// to the horizon. The resumed run is bit-identical to the capturing run
// having continued (for any worker or shard count), unless opt branches it.
//
// Corrupt, truncated or semantically invalid payloads fail with a typed error
// (snapshot.ErrCorrupt and friends) before any events run: the world under
// construction is discarded whole, never half-resumed.
func Resume(payload []byte, opt ResumeOptions) (Result, error) {
	dec := snapshot.NewDecoder(payload)
	dec.Section(secExp)
	resumeT := dec.I64()
	cfgJSON := append([]byte(nil), dec.Bytes32()...)
	if dec.Err() != nil {
		return Result{}, dec.Err()
	}
	var cfg Config
	if err := json.Unmarshal(cfgJSON, &cfg); err != nil {
		return Result{}, fmt.Errorf("%w: config: %v", snapshot.ErrCorrupt, err)
	}
	if opt.Config != nil && !configsMatch(cfg, *opt.Config) {
		return Result{}, fmt.Errorf("%w: snapshot is of a different experiment point", ErrConfigMismatch)
	}
	if opt.Workers > 0 {
		cfg.Workers = opt.Workers
	}
	if opt.Shards > 0 {
		cfg.Shards = opt.Shards
	}
	if opt.Scenario != nil {
		cfg.Scenario = opt.Scenario
	}
	cfg.Checkpoint = opt.Checkpoint
	cfg.Obs = opt.Obs
	cfg = cfg.Defaults()
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if resumeT < 0 || resumeT > int64(cfg.Rounds)*cfg.PeriodMs {
		return Result{}, fmt.Errorf("%w: snapshot time %d outside the run horizon", snapshot.ErrCorrupt, resumeT)
	}

	st := newRunState(cfg)
	if err := st.restore(dec, resumeT); err != nil {
		return Result{}, err
	}
	end := int64(st.cfg.Rounds) * st.cfg.PeriodMs
	st.kern.RunUntil(end)
	return st.finish(end)
}

// drvState is the decoded scenario-driver state, held until the payload fully
// validates.
type drvState struct {
	churn, topo                    uint64
	link                           []uint64
	jitterMs                       int64
	loss                           float64
	natRatio                       float64
	rc, prc, sym                   float64
	partSince                      int64
	partFraction                   float64
	partGen                        uint32
	healRound                      int64
	joins, leaves, gatewayFailures uint64
	partitionRounds                int64
}

// restore rebuilds the world from the decoder (positioned after the exp!
// header) into this freshly wired run state. The whole payload decodes and
// validates before any event is armed with side effects beyond st itself, so
// a failure leaves nothing half-resumed — the caller discards st.
func (st *runState) restore(dec *snapshot.Decoder, resumeT int64) error {
	// Remainder of exp!: static-RVP assignment state.
	nRVP := dec.Count(16)
	if nRVP > 0 {
		st.rvpOf = make(map[ident.NodeID]ident.NodeID, nRVP)
	}
	for i := 0; i < nRVP; i++ {
		id := ident.NodeID(dec.U64())
		st.rvpOf[id] = ident.NodeID(dec.U64())
	}
	nPub := dec.Count(8)
	for i := 0; i < nPub; i++ {
		st.publicIDs = append(st.publicIDs, ident.NodeID(dec.U64()))
	}

	dec.Section(secKern)
	processed := dec.U64()
	nTicks := dec.Count(8 + 8 + 8)
	ticks := make([]tickKey, nTicks)
	for i := range ticks {
		ticks[i] = tickKey{at: dec.I64(), actor: dec.U64(), seq: dec.U64()}
	}
	if dec.Err() != nil {
		return dec.Err()
	}

	// The network restores peers in attachment order, calling back once per
	// peer to build its engine — which replays adversary cohort registration
	// in the original registration order — and wire the health accumulators
	// before the eng! section replays views through their mutation hooks.
	st.net.RestoreFrom(dec, func(p *simnet.Peer) core.Engine {
		idx := int(p.ID) - 1
		for len(st.peers) <= idx {
			st.peers = append(st.peers, nil)
		}
		st.peers[idx] = p
		eng := st.engineFor(idx, p.Descriptor())
		if st.health != nil {
			st.health.AddPeer(p.ID)
			eng.View().SetObserver(st.health.Observer(p.Shard))
		}
		return eng
	})
	if dec.Err() != nil {
		return dec.Err()
	}
	if len(st.peers) == 0 {
		return fmt.Errorf("%w: empty peer roster", snapshot.ErrCorrupt)
	}
	for i, p := range st.peers {
		if p == nil {
			return fmt.Errorf("%w: peer roster has a hole at id %d", snapshot.ErrCorrupt, i+1)
		}
	}

	dec.Section(secEng)
	st.net.EachPeer(func(p *simnet.Peer) {
		if dec.Err() != nil {
			return
		}
		wrapped := dec.Bool()
		var wrapState uint64
		if wrapped {
			wrapState = dec.U64()
		}
		srcState := dec.U64()
		if dec.Err() != nil {
			return
		}
		st.engineSrcs[int(p.ID)-1].SetState(srcState)
		// A branch may change cohorts: apply the wrapper state only when the
		// resumed engine is wrapped too. A newly wrapped peer keeps its fresh
		// seed-derived stream; a newly honest peer drops the old state.
		if w, ok := p.Engine.(*adversary.Engine); ok && wrapped {
			w.SetRNGState(wrapState)
		}
		switch e := adversary.Unwrap(p.Engine).(type) {
		case *core.Nylon:
			e.RestoreFrom(dec)
		case *core.Generic:
			e.RestoreFrom(dec)
		case *core.ARRG:
			e.RestoreFrom(dec)
		case *core.StaticRVP:
			e.RestoreFrom(dec)
		default:
			dec.Fail("unknown engine %T", p.Engine)
		}
	})
	if dec.Err() != nil {
		return dec.Err()
	}
	if st.health != nil {
		// Close the books on dead peers: their replayed views froze at kill
		// time, and Kill folds each one's entry count and accumulated
		// indegree into the dead-side accumulators, exactly as the live run's
		// incremental path did.
		st.net.EachPeer(func(p *simnet.Peer) {
			if !p.Alive {
				st.health.Kill(p.ID, p.Engine.View().Len())
			}
		})
	}

	dec.Section(secRun)
	rootState := dec.U64()
	nSel := dec.Count(4)
	selections := make([]int32, nSel)
	for i := range selections {
		selections[i] = int32(dec.U32())
	}
	warmupTaken := dec.Bool()
	var warmup []uint64
	if warmupTaken {
		warmup = make([]uint64, dec.Count(8))
		for i := range warmup {
			warmup[i] = dec.U64()
		}
	}
	nPts := dec.Count(4 + 8 + 8 + 4 + 8 + 8 + 8 + 8)
	series := make([]SamplePoint, nPts)
	for i := range series {
		series[i] = SamplePoint{
			Round:          int(dec.U32()),
			BiggestCluster: dec.F64(),
			StaleFraction:  dec.F64(),
			AlivePeers:     int(dec.U32()),
			Joins:          dec.U64(),
			Leaves:         dec.U64(),
			Eclipse:        dec.F64(),
			ColluderShare:  dec.F64(),
		}
	}

	dec.Section(secScn)
	scnPresent := dec.Bool()
	var drv drvState
	if scnPresent {
		drv.churn = dec.U64()
		drv.topo = dec.U64()
		drv.link = make([]uint64, dec.Count(8))
		for i := range drv.link {
			drv.link[i] = dec.U64()
		}
		drv.jitterMs = dec.I64()
		drv.loss = dec.F64()
		drv.natRatio = dec.F64()
		drv.rc, drv.prc, drv.sym = dec.F64(), dec.F64(), dec.F64()
		drv.partSince = dec.I64()
		drv.partFraction = dec.F64()
		drv.partGen = dec.U32()
		drv.healRound = dec.I64()
		drv.joins, drv.leaves, drv.gatewayFailures = dec.U64(), dec.U64(), dec.U64()
		drv.partitionRounds = dec.I64()
	}
	if err := dec.Finish(); err != nil {
		return err
	}

	// Semantic validation: a payload can parse and still describe an
	// impossible world. Everything below must hold before arming anything.
	if nSel != len(st.peers)+1 {
		return fmt.Errorf("%w: %d selection counters for %d peers", snapshot.ErrCorrupt, nSel, len(st.peers))
	}
	for i, tk := range ticks {
		if tk.actor < 1 || tk.actor > uint64(len(st.peers)) {
			return fmt.Errorf("%w: tick %d names actor %d outside the roster", snapshot.ErrCorrupt, i, tk.actor)
		}
		if tk.at < resumeT {
			return fmt.Errorf("%w: tick %d at %d predates the snapshot time %d", snapshot.ErrCorrupt, i, tk.at, resumeT)
		}
		if i > 0 {
			prev := ticks[i-1]
			if tk.at < prev.at || (tk.at == prev.at && (tk.actor < prev.actor ||
				(tk.actor == prev.actor && tk.seq <= prev.seq))) {
				return fmt.Errorf("%w: tick %d out of key order", snapshot.ErrCorrupt, i)
			}
		}
	}

	// Adopt the decoded harness state and re-arm the world. Shard and global
	// clocks are still at zero, so no At-style arming can clamp a restored
	// time; the clocks jump to the barrier time last.
	st.rng.Src.SetState(rootState)
	st.selections = selections
	if warmupTaken {
		st.warmup = &warmup
	}
	st.series = &series

	for i := 0; i < st.kern.Shards(); i++ {
		st.kern.Shard(i).SetTickFn(st.tickActor)
	}
	for _, tk := range ticks {
		p := st.peers[tk.actor-1]
		st.kern.Shard(p.Shard).TickAtKey(tk.at, tk.actor, tk.seq)
	}
	st.armGlobals(resumeT)
	if st.scn != nil && scnPresent {
		d := st.scn
		d.churnRNG.Src.SetState(drv.churn)
		d.topoRNG.Src.SetState(drv.topo)
		// A branch may change the population's link-policy need; apply what
		// overlaps, keep fresh seed-derived streams for the rest.
		for i := 0; i < len(d.linkRNGs) && i < len(drv.link); i++ {
			d.linkRNGs[i].Src.SetState(drv.link[i])
		}
		// Overlay the live model after arm()'s init so the snapshot's current
		// values win over the scenario's initial ones.
		d.jitterMs, d.loss = drv.jitterMs, drv.loss
		d.natRatio = drv.natRatio
		d.mix = NATMix{RC: drv.rc, PRC: drv.prc, SYM: drv.sym}
		d.partSince = int(drv.partSince)
		d.partFraction = drv.partFraction
		d.partGen = int(drv.partGen)
		d.stats = ScenarioStats{
			Joins: drv.joins, Leaves: drv.leaves,
			GatewayFailures: drv.gatewayFailures,
			PartitionRounds: int(drv.partitionRounds),
		}
		if d.partSince >= 0 && drv.healRound > 0 && drv.healRound*st.cfg.PeriodMs > resumeT {
			d.armHeal(int(drv.healRound))
		}
	}

	for i := 0; i < st.kern.Shards(); i++ {
		st.kern.Shard(i).RestoreClock(resumeT, 0)
	}
	// The processed-event total restores into the global clock alone: the
	// per-shard split depends on the writing run's shard count, the total
	// does not — and Processed() is what the determinism contract pins.
	st.kern.Global().RestoreClock(resumeT, processed)
	st.kern.RestoreNow(resumeT)
	st.installCheckpoint(resumeT)
	return nil
}
