package exp

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/trace"
)

// TestFlightRecorderBundle arms the flight recorder on the storm corpus
// with triggers the disruption is guaranteed to cross, and checks the full
// forensic path: bundles land in the directory with deterministic names,
// parse back through obs.ReadBundle, and carry a verifiable trace tail,
// drop counters matching the run's DropStats, the health series up to the
// trigger, and the run descriptor. The Chrome sibling must be valid JSON.
func TestFlightRecorderBundle(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := corpusCfg()
	cfg.Scenario = storm
	cfg.Rounds = 80
	cfg.Flight = &obs.FlightSpec{
		Dir:      dir,
		Triggers: obs.Triggers{StallRounds: 1, StallBelow: 0.97, LeakCheck: true},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bundles) == 0 {
		t.Fatal("storm run with a 0.97 stall threshold fired no trigger")
	}
	// Flight implies tracing even though TraceCapacity was never set.
	if len(res.Trace) == 0 {
		t.Fatal("flight-armed run recorded no trace")
	}

	path := res.Bundles[0]
	if filepath.Dir(path) != dir {
		t.Fatalf("bundle %s not in %s", path, dir)
	}
	b, err := obs.ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Trigger.Name != obs.TriggerStall {
		t.Errorf("trigger %q, want %q", b.Trigger.Name, obs.TriggerStall)
	}
	if want := filepath.Join(dir, "bundle-recovery-stall-r0000.json"); b.Trigger.Round > 0 {
		want = filepath.Join(dir, "bundle-recovery-stall-r"+padRound(b.Trigger.Round)+".json")
		if path != want {
			t.Errorf("bundle path %s, want deterministic %s", path, want)
		}
	}
	if b.Run.Seed != cfg.Seed || b.Run.N != cfg.N || b.Run.Protocol != cfg.Protocol.String() || b.Run.Scenario != storm.Name {
		t.Errorf("run descriptor %+v does not pin the config", b.Run)
	}
	if len(b.Run.Config) == 0 {
		t.Error("bundle carries no serialized config")
	}
	if len(b.Trace) == 0 {
		t.Error("bundle carries no trace tail")
	}
	if b.Health == nil || b.Health.AlivePeers == 0 {
		t.Errorf("bundle health snapshot empty: %+v", b.Health)
	}
	if b.Kernel == nil || b.Kernel.Events == 0 || len(b.Kernel.WindowSamples) == 0 {
		t.Error("bundle kernel snapshot empty")
	}
	var series []SamplePoint
	if err := json.Unmarshal(b.Series, &series); err != nil {
		t.Fatalf("bundle series does not parse as []SamplePoint: %v", err)
	}
	if len(series) == 0 || series[len(series)-1].Round != b.Trigger.Round {
		t.Errorf("series ends at round %d, trigger fired at %d", series[len(series)-1].Round, b.Trigger.Round)
	}
	for _, info := range trace.DropCauses {
		if _, ok := b.Drops[info.Metric]; !ok {
			t.Errorf("bundle drops missing %s", info.Metric)
		}
	}

	// The frozen trace tail must be internally consistent.
	_, byID := trace.Chains(b.Trace)
	for id, chain := range byID {
		if _, err := trace.VerifyChain(chain); err != nil {
			t.Fatalf("bundle chain %v: %v", id, err)
		}
	}

	// Chrome sibling: valid trace_event JSON next to the raw bundle.
	chrome := path[:len(path)-len(".json")] + ".trace.json"
	data, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(data, &events); err != nil {
		t.Fatalf("chrome export invalid: %v", err)
	}
	if len(events) < len(b.Trace) {
		t.Errorf("chrome export has %d events for a %d-event tail", len(events), len(b.Trace))
	}
}

// TestFlightDeterministic pins that the recorder itself is deterministic:
// the same (Config, Scenario, Seed) fires the same triggers at the same
// rounds, producing the same bundle filenames and byte-identical measured
// results, at different worker/shard shapes.
func TestFlightDeterministic(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	base := corpusCfg()
	base.Scenario = storm
	base.Rounds = 80
	run := func(workers, shards int) ([]string, Result) {
		t.Helper()
		dir := t.TempDir()
		cfg := base
		cfg.Workers, cfg.Shards = workers, shards
		cfg.Flight = &obs.FlightSpec{Dir: dir, Triggers: obs.Triggers{StallRounds: 1, StallBelow: 0.97}}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		names := make([]string, len(res.Bundles))
		for i, b := range res.Bundles {
			names[i] = filepath.Base(b)
		}
		res.Bundles = nil
		return names, normalize(res)
	}
	wantNames, wantRes := run(1, 8)
	if len(wantNames) == 0 {
		t.Fatal("no bundles fired")
	}
	gotNames, gotRes := run(8, 16)
	if !reflect.DeepEqual(wantNames, gotNames) {
		t.Errorf("bundle names differ across shapes: %v vs %v", wantNames, gotNames)
	}
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Error("flight-armed results differ across shapes")
	}
}

func padRound(r int) string {
	s := ""
	for d := 1000; d >= 1; d /= 10 {
		s += string(rune('0' + (r/d)%10))
	}
	return s
}
