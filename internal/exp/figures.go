package exp

import (
	"fmt"

	"repro/internal/view"
)

// Params scales a figure reproduction. The zero value reproduces the paper's
// curves at laptop scale; set N=10000, Rounds≈2000 and 30 seeds to match the
// paper's setup exactly.
type Params struct {
	N      int
	Rounds int
	Seeds  []int64
	// NATPcts are the x-axis points (percent of natted peers).
	NATPcts []int
	// ViewSizes are the view sizes compared (paper: 15 and 27).
	ViewSizes []int
	// Workers bounds how many simulations run at once (0 = one per core).
	// Results are identical for any value.
	Workers int
}

func (p Params) defaults() Params {
	if p.N == 0 {
		p.N = 600
	}
	if p.Rounds == 0 {
		p.Rounds = 210
	}
	if len(p.Seeds) == 0 {
		p.Seeds = []int64{1, 2, 3}
	}
	if len(p.NATPcts) == 0 {
		p.NATPcts = []int{0, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	if len(p.ViewSizes) == 0 {
		p.ViewSizes = []int{15, 27}
	}
	return p
}

// executor picks the pool figure points run through: the shared machine-wide
// default, or a private one when the caller bounded Workers explicitly.
func (p Params) executor() *Executor {
	if p.Workers <= 0 {
		return defaultExecutor
	}
	return NewExecutor(p.Workers)
}

// combo names one baseline configuration of Fig. 2.
type combo struct {
	sel view.Selection
	mrg view.Merge
}

func (c combo) String() string { return c.sel.String() + "/" + c.mrg.String() }

var fig2Combos = []combo{
	{view.SelectRand, view.MergeHealer},
	{view.SelectRand, view.MergeBlind},
	{view.SelectRand, view.MergeSwapper},
	{view.SelectTail, view.MergeHealer},
	{view.SelectTail, view.MergeBlind},
	{view.SelectTail, view.MergeSwapper},
}

// prcOnly is the NAT mix of the paper's Section 3 experiments ("for the sake
// of simplicity, only PRC NATs are considered").
var prcOnly = NATMix{PRC: 1.0}

// Fig2 reproduces Figure 2: biggest-cluster size of the six baseline
// configurations versus NAT percentage, one table per view size.
func Fig2(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	nats := filterMin(p.NATPcts, 40) // the paper's x-axis starts at 40%
	// Submit every point of the sweep, then collect in presentation order.
	var futures []*Future
	for _, vs := range p.ViewSizes {
		for _, nat := range nats {
			for _, c := range fig2Combos {
				futures = append(futures, ex.Submit(Config{
					N: p.N, Rounds: p.Rounds, ViewSize: vs,
					NATRatio: float64(nat) / 100, Mix: prcOnly,
					Protocol: ProtoGeneric, Selection: c.sel, Merge: c.mrg, PushPull: true,
				}, p.Seeds))
			}
		}
	}
	var tables []Table
	k := 0
	for _, vs := range p.ViewSizes {
		t := Table{
			Title:   fmt.Sprintf("Fig. 2 — biggest cluster (%%) vs NAT%%, view size %d", vs),
			Columns: []string{"nat%"},
		}
		for _, c := range fig2Combos {
			t.Columns = append(t.Columns, c.String())
		}
		for _, nat := range nats {
			row := Row{Label: fmt.Sprintf("%d", nat)}
			for range fig2Combos {
				res, err := futures[k].Get()
				k++
				if err != nil {
					return nil, err
				}
				row.Values = append(row.Values, res.BiggestCluster*100)
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig3 reproduces Figure 3: percentage of stale references of the
// (push/pull, rand, healer) baseline versus NAT percentage, per view size.
func Fig3(p Params) ([]Table, error) {
	return baselineSweep(p, "Fig. 3 — stale references (%) vs NAT%",
		func(r Result) float64 { return r.StaleFraction * 100 })
}

// Fig4 reproduces Figure 4: ratio of non-stale references pointing at natted
// peers versus NAT percentage, per view size.
func Fig4(p Params) ([]Table, error) {
	return baselineSweep(p, "Fig. 4 — non-stale natted references (%) vs NAT%",
		func(r Result) float64 { return r.NattedNonStale * 100 })
}

func baselineSweep(p Params, title string, metric func(Result) float64) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{Title: title, Columns: []string{"nat%"}}
	for _, vs := range p.ViewSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("view=%d", vs))
	}
	var futures []*Future
	for _, nat := range p.NATPcts {
		for _, vs := range p.ViewSizes {
			futures = append(futures, ex.Submit(Config{
				N: p.N, Rounds: p.Rounds, ViewSize: vs,
				NATRatio: float64(nat) / 100, Mix: prcOnly,
				Protocol: ProtoGeneric, Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
			}, p.Seeds))
		}
	}
	k := 0
	for _, nat := range p.NATPcts {
		row := Row{Label: fmt.Sprintf("%d", nat)}
		for range p.ViewSizes {
			res, err := futures[k].Get()
			k++
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, metric(res))
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Correctness reproduces the §5 "Correctness" checks for Nylon: no
// partitions, no stale references, and sampling randomness comparable to the
// NAT-free baseline, across NAT percentages.
func Correctness(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "§5 Correctness — Nylon: partitions, stale refs, randomness",
		Columns: []string{"nat%", "cluster%", "stale%", "natted-nonstale%", "chi2/dof", "completion%"},
	}
	var futures []*Future
	for _, nat := range p.NATPcts {
		futures = append(futures, ex.Submit(nylonCfg(p, nat, 15), p.Seeds))
	}
	for i, nat := range p.NATPcts {
		res, err := futures[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", nat),
			Values: []float64{
				res.BiggestCluster * 100, res.StaleFraction * 100,
				res.NattedNonStale * 100, res.ChiSquareStat, res.CompletionRate * 100,
			},
		})
	}
	return []Table{t}, nil
}

func nylonCfg(p Params, natPct, viewSize int) Config {
	return Config{
		N: p.N, Rounds: p.Rounds, ViewSize: viewSize,
		NATRatio: float64(natPct) / 100, Mix: DefaultMix,
		Protocol: ProtoNylon, Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
		// Deployable peer samplers evict unanswered targets (Jelasity et
		// al.'s reference implementation does); the paper's churn
		// results are only reachable with it. Ablation A5 isolates the
		// effect.
		EvictUnanswered: true,
	}
}

// Fig7 reproduces Figure 7: average bytes per second sent+received per peer,
// Nylon versus the (push/pull, rand, healer) reference, versus NAT
// percentage.
func Fig7(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "Fig. 7 — bytes/s per peer vs NAT%",
		Columns: []string{"nat%", "nylon", "reference"},
	}
	var nylonF, refF []*Future
	for _, nat := range p.NATPcts {
		nylonF = append(nylonF, ex.Submit(nylonCfg(p, nat, 15), p.Seeds))
		refCfg := nylonCfg(p, nat, 15)
		refCfg.Protocol = ProtoGeneric
		refF = append(refF, ex.Submit(refCfg, p.Seeds))
	}
	for i, nat := range p.NATPcts {
		nylon, err := nylonF[i].Get()
		if err != nil {
			return nil, err
		}
		ref, err := refF[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d", nat),
			Values: []float64{nylon.BytesPerSecAll, ref.BytesPerSecAll},
		})
	}
	return []Table{t}, nil
}

// Fig8 reproduces Figure 8: bytes per second of public versus natted peers
// under Nylon, versus NAT percentage.
func Fig8(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "Fig. 8 — bytes/s public vs natted peers (Nylon)",
		Columns: []string{"nat%", "public", "natted"},
	}
	var futures []*Future
	var nats []int
	for _, nat := range p.NATPcts {
		if nat == 0 || nat == 100 {
			continue // both populations must exist
		}
		nats = append(nats, nat)
		futures = append(futures, ex.Submit(nylonCfg(p, nat, 15), p.Seeds))
	}
	for i, nat := range nats {
		res, err := futures[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d", nat),
			Values: []float64{res.BytesPerSecPublic, res.BytesPerSecNatted},
		})
	}
	return []Table{t}, nil
}

// Fig9 reproduces Figure 9: average RVP chain length toward natted
// destinations versus NAT percentage, per view size.
func Fig9(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{Title: "Fig. 9 — average number of RVPs vs NAT%", Columns: []string{"nat%"}}
	for _, vs := range p.ViewSizes {
		t.Columns = append(t.Columns, fmt.Sprintf("view=%d", vs))
	}
	var futures []*Future
	var nats []int
	for _, nat := range p.NATPcts {
		if nat == 0 {
			continue // no natted destinations to punch toward
		}
		nats = append(nats, nat)
		for _, vs := range p.ViewSizes {
			futures = append(futures, ex.Submit(nylonCfg(p, nat, vs), p.Seeds))
		}
	}
	k := 0
	for _, nat := range nats {
		row := Row{Label: fmt.Sprintf("%d", nat)}
		for range p.ViewSizes {
			res, err := futures[k].Get()
			k++
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, res.AvgChainLen)
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// Fig10 reproduces Figure 10: biggest-cluster size after massive churn. The
// paper removes the peers after 500 shuffles and measures 1500 shuffles
// later; the same 1:3 split is applied to the configured round budget.
func Fig10(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	natPcts := []int{40, 50, 60, 70, 80}
	departures := []int{50, 60, 70, 75, 80}
	t := Table{Title: "Fig. 10 — biggest cluster (%) after massive churn", Columns: []string{"departed%"}}
	for _, nat := range natPcts {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%% NATs", nat))
	}
	var futures []*Future
	for _, dep := range departures {
		for _, nat := range natPcts {
			cfg := nylonCfg(p, nat, 15)
			cfg.ChurnAtRound = p.Rounds / 4
			cfg.ChurnFraction = float64(dep) / 100
			futures = append(futures, ex.Submit(cfg, p.Seeds))
		}
	}
	k := 0
	for _, dep := range departures {
		row := Row{Label: fmt.Sprintf("%d", dep)}
		for range natPcts {
			res, err := futures[k].Get()
			k++
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, res.BiggestCluster*100)
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

// AblationStaticRVP compares the load balance of Nylon against the
// fixed-public-RVP strawman of §4 (ablation A1): bytes/s for public and
// natted peers under both schemes.
func AblationStaticRVP(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "A1 — load balance: Nylon vs static public RVPs (bytes/s)",
		Columns: []string{"nat%", "nylon-public", "nylon-natted", "static-public", "static-natted"},
	}
	var nylonF, staticF []*Future
	var nats []int
	for _, nat := range p.NATPcts {
		if nat == 0 || nat == 100 {
			continue
		}
		nats = append(nats, nat)
		nylonF = append(nylonF, ex.Submit(nylonCfg(p, nat, 15), p.Seeds))
		cfg := nylonCfg(p, nat, 15)
		cfg.Protocol = ProtoStaticRVP
		staticF = append(staticF, ex.Submit(cfg, p.Seeds))
	}
	for i, nat := range nats {
		nylon, err := nylonF[i].Get()
		if err != nil {
			return nil, err
		}
		static, err := staticF[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", nat),
			Values: []float64{
				nylon.BytesPerSecPublic, nylon.BytesPerSecNatted,
				static.BytesPerSecPublic, static.BytesPerSecNatted,
			},
		})
	}
	return []Table{t}, nil
}

// AblationARRG compares Nylon's connectivity and stale-reference rate with
// the ARRG-style reachable-cache baseline (ablation A2), quantifying the
// paper's §1 claim that a cache "cannot ensure that the network will remain
// connected".
func AblationARRG(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "A2 — Nylon vs ARRG cache: cluster% and stale%",
		Columns: []string{"nat%", "nylon-cluster", "arrg-cluster", "nylon-stale", "arrg-stale"},
	}
	var nylonF, arrgF []*Future
	for _, nat := range p.NATPcts {
		nylonF = append(nylonF, ex.Submit(nylonCfg(p, nat, 15), p.Seeds))
		cfg := nylonCfg(p, nat, 15)
		cfg.Protocol = ProtoARRG
		cfg.Mix = prcOnly
		arrgF = append(arrgF, ex.Submit(cfg, p.Seeds))
	}
	for i, nat := range p.NATPcts {
		nylon, err := nylonF[i].Get()
		if err != nil {
			return nil, err
		}
		arrg, err := arrgF[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", nat),
			Values: []float64{
				nylon.BiggestCluster * 100, arrg.BiggestCluster * 100,
				nylon.StaleFraction * 100, arrg.StaleFraction * 100,
			},
		})
	}
	return []Table{t}, nil
}

// AblationHoleTimeout sweeps the NAT rule lifetime (ablation A3): shorter
// hole timeouts shrink the window in which relayed route TTLs stay valid,
// degrading Nylon's completion rate.
func AblationHoleTimeout(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	timeouts := []int64{15_000, 30_000, 60_000, 90_000, 180_000}
	t := Table{
		Title:   "A3 — Nylon sensitivity to the hole timeout (80% NATs)",
		Columns: []string{"timeout_s", "cluster%", "stale%", "completion%", "chain"},
	}
	var futures []*Future
	for _, timeout := range timeouts {
		cfg := nylonCfg(p, 80, 15)
		cfg.HoleTimeoutMs = timeout
		futures = append(futures, ex.Submit(cfg, p.Seeds))
	}
	for i, timeout := range timeouts {
		res, err := futures[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", timeout/1000),
			Values: []float64{
				res.BiggestCluster * 100, res.StaleFraction * 100,
				res.CompletionRate * 100, res.AvgChainLen,
			},
		})
	}
	return []Table{t}, nil
}

// AblationPush compares push-only against push/pull propagation for the
// baseline (the paper states push "consistently exhibits significantly worse
// performances", ablation A4).
func AblationPush(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title: "A4 — push vs push/pull baseline (PRC NATs): cluster% and sampling chi2/dof",
		Columns: []string{
			"nat%", "pushpull-cluster", "push-cluster", "pushpull-chi2", "push-chi2",
		},
	}
	var futures []*Future
	for _, nat := range p.NATPcts {
		for _, pushPull := range []bool{true, false} {
			futures = append(futures, ex.Submit(Config{
				N: p.N, Rounds: p.Rounds, ViewSize: 15,
				NATRatio: float64(nat) / 100, Mix: prcOnly,
				Protocol: ProtoGeneric, Selection: view.SelectRand, Merge: view.MergeHealer,
				PushPull: pushPull,
			}, p.Seeds))
		}
	}
	k := 0
	for _, nat := range p.NATPcts {
		var clusters, chis []float64
		for range []bool{true, false} {
			res, err := futures[k].Get()
			k++
			if err != nil {
				return nil, err
			}
			clusters = append(clusters, res.BiggestCluster*100)
			chis = append(chis, res.ChiSquareStat)
		}
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d", nat),
			Values: []float64{clusters[0], clusters[1], chis[0], chis[1]},
		})
	}
	return []Table{t}, nil
}

// AblationEviction measures the effect of no-reply eviction on Nylon's churn
// recovery (ablation A5): the biggest cluster after 80% of the peers depart,
// with and without eviction.
func AblationEviction(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "A5 — no-reply eviction vs churn recovery (80% departures, 60% NATs)",
		Columns: []string{"evict", "cluster%", "stale%", "completion%"},
	}
	var futures []*Future
	for _, evict := range []bool{false, true} {
		cfg := nylonCfg(p, 60, 15)
		cfg.EvictUnanswered = evict
		cfg.ChurnAtRound = p.Rounds / 4
		cfg.ChurnFraction = 0.8
		futures = append(futures, ex.Submit(cfg, p.Seeds))
	}
	for i, evict := range []bool{false, true} {
		res, err := futures[i].Get()
		if err != nil {
			return nil, err
		}
		label := "off"
		if evict {
			label = "on"
		}
		t.Rows = append(t.Rows, Row{
			Label:  label,
			Values: []float64{res.BiggestCluster * 100, res.StaleFraction * 100, res.CompletionRate * 100},
		})
	}
	return []Table{t}, nil
}

// AblationUPnP sweeps the fraction of natted peers with explicit port
// mappings (NAT-PMP / UPnP — the alternative the paper's related work
// discusses and dismisses for coverage and security reasons): how much
// deployment would it take to rescue the NAT-oblivious baseline at 80 %
// PRC NATs, compared to Nylon needing none?
func AblationUPnP(p Params) ([]Table, error) {
	p = p.defaults()
	ex := p.executor()
	t := Table{
		Title:   "A6 — baseline rescue by UPnP deployment (80% PRC NATs)",
		Columns: []string{"upnp%", "cluster%", "stale%", "natted-nonstale%", "completion%"},
	}
	pcts := []int{0, 25, 50, 75, 100}
	var futures []*Future
	for _, pct := range pcts {
		futures = append(futures, ex.Submit(Config{
			N: p.N, Rounds: p.Rounds, ViewSize: 15,
			NATRatio: 0.8, Mix: prcOnly,
			Protocol: ProtoGeneric, Selection: view.SelectRand, Merge: view.MergeHealer, PushPull: true,
			UPnPFraction: float64(pct) / 100,
		}, p.Seeds))
	}
	for i, pct := range pcts {
		res, err := futures[i].Get()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			Label: fmt.Sprintf("%d", pct),
			Values: []float64{
				res.BiggestCluster * 100, res.StaleFraction * 100,
				res.NattedNonStale * 100, res.CompletionRate * 100,
			},
		})
	}
	return []Table{t}, nil
}

// Figures maps figure identifiers to their generators, as used by the
// nylon-figs command.
var Figures = map[string]func(Params) ([]Table, error){
	"2":  Fig2,
	"3":  Fig3,
	"4":  Fig4,
	"c":  Correctness,
	"7":  Fig7,
	"8":  Fig8,
	"9":  Fig9,
	"10": Fig10,
	"a1": AblationStaticRVP,
	"a2": AblationARRG,
	"a3": AblationHoleTimeout,
	"a4": AblationPush,
	"a5": AblationEviction,
	"a6": AblationUPnP,
}

// FigureOrder lists figure identifiers in presentation order.
var FigureOrder = []string{"2", "3", "4", "c", "7", "8", "9", "10", "a1", "a2", "a3", "a4", "a5", "a6"}

func filterMin(xs []int, minVal int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		if x >= minVal {
			out = append(out, x)
		}
	}
	return out
}
