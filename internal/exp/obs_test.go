package exp

import (
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// TestObserverEffectInvariance pins the observability layer's determinism
// contract (DESIGN.md §9): attaching the full instrumentation stack — metrics
// registry, health accumulators, kernel timing probe — must leave the Result
// bit-identical to an uninstrumented run, at every worker and shard count,
// quiescent and under the storm scenario. VerifySamples rides along on the
// observed legs, so the zero-copy sampler and the incremental accumulators
// are cross-checked against the legacy full sweep at every sample point.
func TestObserverEffectInvariance(t *testing.T) {
	storm, err := scenario.Load("../../examples/scenario-lab/storm.json")
	if err != nil {
		t.Fatal(err)
	}
	for _, leg := range []struct {
		name     string
		scenario *scenario.Scenario
		rounds   int
	}{
		{"quiescent", nil, 0},
		{"storm", storm, 80},
	} {
		leg := leg
		t.Run(leg.name, func(t *testing.T) {
			t.Parallel()
			base := corpusCfg()
			base.Scenario = leg.scenario
			if leg.rounds > 0 {
				base.Rounds = leg.rounds
			}
			base.Workers = 1
			want := runCorpus(t, base)
			for _, shape := range []struct{ workers, shards int }{
				{1, 1},
				{1, 16},
				{8, 1},
				{8, 16},
			} {
				cfg := base
				cfg.Workers = shape.workers
				cfg.Shards = shape.shards
				cfg.Obs = obs.NewHub() // a hub observes exactly one run
				cfg.VerifySamples = true
				got := runCorpus(t, cfg)
				if !reflect.DeepEqual(want, got) {
					t.Errorf("metrics-on run diverged at workers=%d shards=%d:\noff: %+v\n on: %+v",
						shape.workers, shape.shards, want, got)
				}
				if cfg.Obs.Health() == nil || cfg.Obs.Health().Alive() == 0 {
					t.Errorf("workers=%d shards=%d: hub was not bound or saw no peers", shape.workers, shape.shards)
				}
				if cfg.Obs.Timing() == nil || cfg.Obs.Timing().Events() == 0 {
					t.Errorf("workers=%d shards=%d: timing probe recorded no events", shape.workers, shape.shards)
				}
			}
		})
	}
}

// TestHubHealthMatchesResult cross-checks the end-of-run accumulator state
// against the Result's own final sample.
func TestHubHealthMatchesResult(t *testing.T) {
	cfg := corpusCfg()
	cfg.Obs = obs.NewHub()
	cfg.VerifySamples = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := cfg.Obs.Health()
	if got, want := h.Alive(), int64(res.AlivePeers); got != want {
		t.Errorf("Health.Alive = %d, Result.AlivePeers = %d", got, want)
	}
	if h.Total() != int64(cfg.N) {
		t.Errorf("Health.Total = %d, want N = %d", h.Total(), cfg.N)
	}
	if h.Entries() == 0 || h.AliveEntries() > h.Entries() {
		t.Errorf("implausible entry tallies: %d total, %d alive", h.Entries(), h.AliveEntries())
	}
}
