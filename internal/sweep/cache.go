package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/exp"
)

// JobResult is the cached outcome of one job: the slice of exp.Result a
// sweep aggregates, in a stable JSON shape. One file per job lives under
// <run dir>/results/<key>.json; because the file is named by the job's
// content address, a restarted sweep can trust any file it finds.
type JobResult struct {
	Key      string `json:"key"`
	Scenario string `json:"scenario"`
	Variant  string `json:"variant"`
	Seed     int64  `json:"seed"`

	// End-of-run health (fractions in [0,1]).
	BiggestCluster float64 `json:"biggest_cluster"`
	StaleFraction  float64 `json:"stale_fraction"`
	CompletionRate float64 `json:"completion_rate"`
	AlivePeers     int     `json:"alive_peers"`
	TotalPeers     int     `json:"total_peers"`

	// Scenario bookkeeping.
	Joins           uint64 `json:"joins"`
	Leaves          uint64 `json:"leaves"`
	GatewayFailures uint64 `json:"gateway_failures"`
	PartitionRounds int    `json:"partition_rounds"`

	// Recovery curve condensed from the series.
	WorstCluster   float64 `json:"worst_cluster"`
	WorstRound     int     `json:"worst_round"`
	RecoveredRound int     `json:"recovered_round"`

	// Series is the periodic health series the per-round bands aggregate.
	Series []SeriesPoint `json:"series"`

	// EventsProcessed pins the run's determinism contract into the cache:
	// re-running the job must reproduce it exactly.
	EventsProcessed uint64 `json:"events_processed"`

	// Adversary block, filled only when the job's scenario declares
	// adversary cohorts. Every field is omitempty so the cached JSON of
	// honest runs stays byte-identical to the pre-adversary format (and so
	// do their keys — see jobKey.Adversaries).
	HasAdversaries     bool    `json:"has_adversaries,omitempty"`
	Adversaries        int     `json:"adversaries,omitempty"`
	Colluders          int     `json:"colluders,omitempty"`
	FinalEclipse       float64 `json:"final_eclipse,omitempty"`
	FinalColluderView  float64 `json:"final_colluder_view,omitempty"`
	FinalColluderShare float64 `json:"final_colluder_share,omitempty"`
	TopKShare          float64 `json:"topk_share,omitempty"`
	HonestCluster      float64 `json:"honest_cluster,omitempty"`
	RelayDenied        uint64  `json:"relay_denied,omitempty"`
	AdversaryDrops     uint64  `json:"adversary_drops,omitempty"`

	// Sum is the hex SHA-256 of the result's compact JSON with Sum itself
	// empty. The content address in the file name authenticates which job a
	// file answers for; Sum authenticates the answer — a bit flipped at rest
	// (or a result written by a buggy build that then crashed) turns into a
	// recomputed miss instead of silently skewing the aggregate.
	Sum string `json:"sum,omitempty"`
}

// checksum computes the Sum value of jr: the hex SHA-256 of its compact JSON
// form with the Sum field empty, so the stored value never hashes itself.
func (jr *JobResult) checksum() string {
	saved := jr.Sum
	jr.Sum = ""
	data, err := json.Marshal(jr)
	jr.Sum = saved
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal result: %v", err)) // plain struct, cannot fail
	}
	return hashHex(data)
}

// SeriesPoint is one sampled round in the cached series. The adversary pair
// is omitempty for the same byte-identity reason as JobResult's block.
type SeriesPoint struct {
	Round         int     `json:"round"`
	Alive         int     `json:"alive"`
	Cluster       float64 `json:"cluster"`
	Stale         float64 `json:"stale"`
	Eclipse       float64 `json:"eclipse,omitempty"`
	ColluderShare float64 `json:"colluder_share,omitempty"`
}

// resultOf condenses a run's Result into the cacheable JobResult.
func resultOf(job Job, res exp.Result) *JobResult {
	jr := &JobResult{
		Key:             job.Key,
		Scenario:        job.Scenario,
		Variant:         job.Variant,
		Seed:            job.Seed,
		BiggestCluster:  res.BiggestCluster,
		StaleFraction:   res.StaleFraction,
		CompletionRate:  res.CompletionRate,
		AlivePeers:      res.AlivePeers,
		TotalPeers:      res.TotalPeers,
		Joins:           res.Scenario.Joins,
		Leaves:          res.Scenario.Leaves,
		GatewayFailures: res.Scenario.GatewayFailures,
		PartitionRounds: res.Scenario.PartitionRounds,
		WorstCluster:    res.Recovery.WorstCluster,
		WorstRound:      res.Recovery.WorstRound,
		RecoveredRound:  res.Recovery.RecoveredRound,
		Series:          make([]SeriesPoint, len(res.Series)),
		EventsProcessed: res.EventsProcessed,
	}
	for i, pt := range res.Series {
		jr.Series[i] = SeriesPoint{Round: pt.Round, Alive: pt.AlivePeers, Cluster: pt.BiggestCluster, Stale: pt.StaleFraction}
	}
	if len(job.Cfg.Scenario.AdversaryList()) > 0 {
		jr.HasAdversaries = true
		jr.Adversaries = res.Adversary.AdversaryCount
		jr.Colluders = res.Adversary.ColluderCount
		jr.FinalEclipse = res.Adversary.EclipseFraction
		jr.FinalColluderView = res.Adversary.ColluderViewFraction
		jr.FinalColluderShare = res.Adversary.ColluderIndegreeShare
		jr.TopKShare = res.Adversary.TopKIndegreeShare
		jr.HonestCluster = res.Adversary.HonestCluster
		jr.RelayDenied = res.Adversary.RelayDenied
		jr.AdversaryDrops = res.Adversary.AdversaryDrops
		for i, pt := range res.Series {
			jr.Series[i].Eclipse = pt.Eclipse
			jr.Series[i].ColluderShare = pt.ColluderShare
		}
	}
	return jr
}

// Cache is the content-addressed result store of one run directory.
type Cache struct {
	dir string
	// Log, when non-nil, receives one line per integrity anomaly (a cached
	// file failing its checksum, a stale snapshot discarded).
	Log io.Writer
}

func (c *Cache) logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// OpenCache opens (creating if needed) the result store under dir.
func OpenCache(dir string) (*Cache, error) {
	if err := os.MkdirAll(filepath.Join(dir, "results"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return &Cache{dir: dir}, nil
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, "results", key+".json")
}

// Load returns the cached result for key, or (nil, false) when absent,
// unreadable or failing verification — a truncated file from a killed run, a
// file missing its checksum (pre-checksum cache format) and a file whose
// checksum disagrees with its content are all treated as misses and
// recomputed, never trusted.
func (c *Cache) Load(key string) (*JobResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var jr JobResult
	if err := json.Unmarshal(data, &jr); err != nil || jr.Key != key {
		return nil, false
	}
	if jr.Sum == "" {
		c.logf("sweep: cached result %s has no checksum (old format?), recomputing", key)
		return nil, false
	}
	if sum := jr.checksum(); sum != jr.Sum {
		c.logf("sweep: cached result %s fails its checksum (stored %.12s…, computed %.12s…), recomputing", key, jr.Sum, sum)
		return nil, false
	}
	return &jr, true
}

// Store persists one result atomically (write-temp + rename), so a kill
// mid-write leaves a miss, not a corrupt hit. The result's Sum is (re)stamped
// here: what hits the disk always verifies.
func (c *Cache) Store(jr *JobResult) error {
	jr.Sum = jr.checksum()
	data, err := json.MarshalIndent(jr, "", "  ")
	if err != nil {
		return fmt.Errorf("sweep: marshal result: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Join(c.dir, "results"), "."+jr.Key+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: %w", err)
	}
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(jr.Key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: %w", err)
	}
	return nil
}

// SnapshotDir returns the job's checkpoint directory: mid-job world snapshots
// of key live under <run dir>/snapshots/<key>/, content-addressed exactly like
// the results, so a restarted sweep resumes each partially-run job from its
// latest barrier instead of from round zero.
func (c *Cache) SnapshotDir(key string) string {
	return filepath.Join(c.dir, "snapshots", key)
}

// Snapshots lists the job's snapshot files newest-first (the fixed-width
// names of exp.SnapshotFileName make lexicographic order round order). A
// missing directory is simply no snapshots.
func (c *Cache) Snapshots(key string) []string {
	dir := c.SnapshotDir(key)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".snap" {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(paths)))
	return paths
}

// DropSnapshots removes the job's snapshot directory. Called once the final
// result is persisted: the mid-job state has nothing left to protect, and a
// completed grid leaves no snapshot litter behind.
func (c *Cache) DropSnapshots(key string) {
	if err := os.RemoveAll(c.SnapshotDir(key)); err != nil {
		c.logf("sweep: dropping snapshots of %s: %v", key, err)
	}
}
