package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/scenario"
)

// testCorpus writes a tiny two-scenario corpus and returns its directory.
func testCorpus(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"crash.json": `{
			"name": "crash",
			"events": [{"round": 4, "kind": "mass_leave", "fraction": 0.5}]
		}`,
		"split.json": `{
			"name": "split",
			"events": [{"round": 3, "kind": "partition", "fraction": 0.3, "duration_rounds": 4}]
		}`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// testSpec is a 2 scenarios × 2 variants × 2 seeds sweep small enough for
// the unit suite: 8 jobs of 60 peers × 12 rounds.
func testSpec() *Spec {
	nat := 60.0
	return &Spec{
		Name:      "unit",
		Scenarios: []string{"*.json"},
		SeedList:  []int64{1, 2},
		Base: Overrides{
			N: 60, Rounds: 12, ViewSize: 6, NATPct: &nat, SampleEvery: 3,
		},
		Variants: []Variant{
			{Name: "nylon", Overrides: Overrides{Protocol: "nylon"}},
			{Name: "generic", Overrides: Overrides{Protocol: "generic"}},
		},
	}
}

func TestExpandDeterministic(t *testing.T) {
	dir := testCorpus(t)
	a, err := Expand(testSpec(), dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Expand(testSpec(), dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != 8 {
		t.Fatalf("expanded %d jobs, want 8", len(a.Jobs))
	}
	if a.SpecHash != b.SpecHash {
		t.Error("same spec produced different hashes")
	}
	keys := make(map[string]bool)
	for i, job := range a.Jobs {
		if job.Key != b.Jobs[i].Key {
			t.Errorf("job %d key differs between expansions", i)
		}
		if keys[job.Key] {
			t.Errorf("duplicate job key %s", job.Key)
		}
		keys[job.Key] = true
	}
	// Grid order is scenario-major (corpus sorted by path), then variant
	// (spec order), then seed.
	want := []struct {
		sc, v string
		seed  int64
	}{
		{"crash", "nylon", 1}, {"crash", "nylon", 2},
		{"crash", "generic", 1}, {"crash", "generic", 2},
		{"split", "nylon", 1}, {"split", "nylon", 2},
		{"split", "generic", 1}, {"split", "generic", 2},
	}
	for i, w := range want {
		j := a.Jobs[i]
		if j.Scenario != w.sc || j.Variant != w.v || j.Seed != w.seed {
			t.Errorf("job %d = (%s, %s, %d), want (%s, %s, %d)", i, j.Scenario, j.Variant, j.Seed, w.sc, w.v, w.seed)
		}
	}
}

func TestKeySensitivity(t *testing.T) {
	dir := testCorpus(t)
	base, err := Expand(testSpec(), dir)
	if err != nil {
		t.Fatal(err)
	}

	// Editing a scenario file changes exactly that scenario's job keys.
	if err := os.WriteFile(filepath.Join(dir, "crash.json"),
		[]byte(`{"name":"crash","events":[{"round":4,"kind":"mass_leave","fraction":0.6}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, err := Expand(testSpec(), dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base.Jobs {
		same := base.Jobs[i].Key == edited.Jobs[i].Key
		if base.Jobs[i].Scenario == "crash" && same {
			t.Errorf("job %d (crash) key survived a scenario edit", i)
		}
		if base.Jobs[i].Scenario == "split" && !same {
			t.Errorf("job %d (split) key changed by an unrelated scenario edit", i)
		}
	}
	if base.SpecHash == edited.SpecHash {
		t.Error("spec hash survived a scenario edit")
	}

	// Changing a variant knob changes only that variant's keys.
	spec := testSpec()
	spec.Variants[0].ViewSize = 8
	varied, err := Expand(spec, testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	baseAgain, err := Expand(testSpec(), testCorpus(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range baseAgain.Jobs {
		same := baseAgain.Jobs[i].Key == varied.Jobs[i].Key
		if baseAgain.Jobs[i].Variant == "nylon" && same {
			t.Errorf("job %d (nylon) key survived a variant edit", i)
		}
		if baseAgain.Jobs[i].Variant == "generic" && !same {
			t.Errorf("job %d (generic) key changed by an unrelated variant edit", i)
		}
	}
}

// sweepOnce expands and executes the test sweep in dir, returning the
// artifact JSON and the execution stats.
func sweepOnce(t *testing.T, corpus, run string, opts Options) ([]byte, Stats) {
	t.Helper()
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := Execute(g, run, opts)
	if err != nil {
		t.Fatal(err)
	}
	art, err := Aggregate(g, results)
	if err != nil {
		t.Fatal(err)
	}
	data, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return data, st
}

func TestSweepArtifactByteIdentical(t *testing.T) {
	corpus := testCorpus(t)
	a, stA := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 4})
	b, stB := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 1})
	if !bytes.Equal(a, b) {
		t.Errorf("fresh runs produced different artifacts:\n%s\n---\n%s", a, b)
	}
	if stA.Ran != 8 || stA.Cached != 0 || stB.Ran != 8 {
		t.Errorf("fresh runs: stats %+v, %+v", stA, stB)
	}

	// Sanity on content: every cell and band present, cluster fractions in
	// range.
	s := string(a)
	for _, want := range []string{`"crash"`, `"split"`, `"nylon"`, `"generic"`, `"p10"`, `"p50"`, `"p90"`} {
		if !strings.Contains(s, want) {
			t.Errorf("artifact missing %s", want)
		}
	}
}

func TestSweepResume(t *testing.T) {
	corpus := testCorpus(t)
	run := t.TempDir()

	// A sweep killed after 3 of 8 jobs: exactly the first three missing
	// jobs (workers=1 dequeues in grid order) are persisted.
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := Execute(g, run, Options{Workers: 1, StopAfter: 3})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("StopAfter run: err = %v, want ErrStopped", err)
	}
	if st.Ran != 3 || st.Cached != 0 {
		t.Fatalf("StopAfter run stats %+v, want 3 ran", st)
	}

	// The rerun completes the remaining 5 without touching the first 3 and
	// aggregates to the same bytes as an uninterrupted sweep.
	resumed, st := sweepOnce(t, corpus, run, Options{Workers: 2})
	if st.Ran != 5 || st.Cached != 3 {
		t.Errorf("resume stats %+v, want 5 ran / 3 cached", st)
	}
	fresh, _ := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 4})
	if !bytes.Equal(resumed, fresh) {
		t.Error("resumed artifact differs from an uninterrupted sweep")
	}

	// A third invocation re-runs nothing and re-aggregates instantly.
	again, st := sweepOnce(t, corpus, run, Options{Workers: 2})
	if st.Ran != 0 || st.Cached != 8 {
		t.Errorf("warm rerun stats %+v, want 0 ran / 8 cached", st)
	}
	if !bytes.Equal(again, fresh) {
		t.Error("warm rerun artifact differs")
	}
}

func TestCacheIgnoresCorruptFiles(t *testing.T) {
	run := t.TempDir()
	cache, err := OpenCache(run)
	if err != nil {
		t.Fatal(err)
	}
	jr := &JobResult{Key: "k1", Scenario: "s", Variant: "v", Seed: 1, BiggestCluster: 0.5}
	if err := cache.Store(jr); err != nil {
		t.Fatal(err)
	}
	got, ok := cache.Load("k1")
	if !ok || got.BiggestCluster != 0.5 {
		t.Fatalf("round trip failed: %+v, %v", got, ok)
	}
	if _, ok := cache.Load("absent"); ok {
		t.Error("absent key reported as hit")
	}
	// A truncated file (killed mid-write without the atomic rename) and a
	// file whose content does not match its name are both misses.
	if err := os.WriteFile(filepath.Join(run, "results", "k2.json"), []byte(`{"key":"k2","scen`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("k2"); ok {
		t.Error("truncated file reported as hit")
	}
	if err := os.WriteFile(filepath.Join(run, "results", "k3.json"), []byte(`{"key":"other"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("k3"); ok {
		t.Error("mismatched key reported as hit")
	}
}

func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no scenarios", `{"variants":[{"name":"a"}],"seeds":1}`},
		{"no variants", `{"scenarios":["*.json"],"seeds":1}`},
		{"no seeds", `{"scenarios":["*.json"],"variants":[{"name":"a"}]}`},
		{"negative seeds", `{"scenarios":["*.json"],"seeds":-1,"variants":[{"name":"a"}]}`},
		{"unnamed variant", `{"scenarios":["*.json"],"seeds":1,"variants":[{}]}`},
		{"duplicate variant", `{"scenarios":["*.json"],"seeds":1,"variants":[{"name":"a"},{"name":"a"}]}`},
		{"duplicate seed", `{"scenarios":["*.json"],"seed_list":[1,1],"variants":[{"name":"a"}]}`},
		{"unknown field", `{"scenarios":["*.json"],"seeds":1,"variants":[{"name":"a"}],"typo":1}`},
		{"bad protocol", `{"scenarios":["*.json"],"seeds":1,"variants":[{"name":"a","protocol":"nope"}]}`},
	}
	for _, c := range cases {
		spec, err := ParseSpec([]byte(c.json))
		if err == nil {
			// Protocol names are resolved at expansion.
			if _, err = Expand(spec, t.TempDir()); err == nil {
				t.Errorf("%s: accepted", c.name)
			}
		}
	}
}

func TestExpandRejectsHorizonViolation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "late.json"),
		[]byte(`{"name":"late","events":[{"round":50,"kind":"heal"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := testSpec() // rounds 12 < event round 50
	spec.Scenarios = []string{"late.json"}
	if _, err := Expand(spec, dir); err == nil || !strings.Contains(err.Error(), "late") {
		t.Errorf("horizon violation: err = %v", err)
	}
}

func TestReportRenderings(t *testing.T) {
	corpus := testCorpus(t)
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	results, _, err := Execute(g, t.TempDir(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	art, err := Aggregate(g, results)
	if err != nil {
		t.Fatal(err)
	}

	text := art.Text()
	for _, want := range []string{"crash", "split", "nylon", "generic", "p10", "p50", "p90", "band ("} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q", want)
		}
	}
	summary := art.SummaryCSV()
	if lines := strings.Count(summary, "\n"); lines != 1+len(art.Cells) {
		t.Errorf("summary CSV has %d lines, want %d", lines, 1+len(art.Cells))
	}
	bands := art.BandsCSV()
	wantRows := 0
	for _, c := range art.Cells {
		wantRows += len(c.Series)
	}
	if lines := strings.Count(bands, "\n"); lines != 1+wantRows {
		t.Errorf("bands CSV has %d lines, want %d", lines, 1+wantRows)
	}
	if wantRows == 0 {
		t.Error("no band rows at all — series sampling broken")
	}
}

// advSpec returns the unit spec with an adversary variant alongside the
// honest ones.
func advTestSpec() *Spec {
	spec := testSpec()
	spec.Variants = append(spec.Variants, Variant{
		Name: "nylon-poison20",
		Overrides: Overrides{
			Protocol: "nylon",
			Adversaries: []scenario.Adversary{
				{Strategy: "poison-view", Fraction: 0.2, FromRound: 2},
			},
		},
	})
	return spec
}

// TestAdversaryAxis covers the sweep's Byzantine dimension end to end:
// injected cohorts change only their own variant's job keys, the scenario
// shared by sibling cells is never mutated, and the aggregated artifact
// carries eclipse/honest-cluster bands exactly for the adversary cells.
func TestAdversaryAxis(t *testing.T) {
	corpus := testCorpus(t)
	honest, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Expand(advTestSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}

	// Honest cells keep their exact pre-adversary keys: the axis is purely
	// additive and existing result caches stay valid.
	honestKeys := make(map[string]bool, len(honest.Jobs))
	for _, j := range honest.Jobs {
		honestKeys[j.Key] = true
	}
	for _, j := range g.Jobs {
		if j.Variant == "nylon-poison20" {
			if honestKeys[j.Key] {
				t.Errorf("adversary job (%s, seed %d) collides with an honest key", j.Scenario, j.Seed)
			}
			if len(j.Cfg.Scenario.AdversaryList()) == 0 {
				t.Errorf("adversary job (%s, seed %d) lost its cohorts", j.Scenario, j.Seed)
			}
		} else {
			if !honestKeys[j.Key] {
				t.Errorf("honest job (%s, %s, seed %d) key changed by the adversary variant", j.Scenario, j.Variant, j.Seed)
			}
			if len(j.Cfg.Scenario.AdversaryList()) != 0 {
				t.Errorf("cohorts leaked into honest job (%s, %s)", j.Scenario, j.Variant)
			}
		}
	}
	for _, ent := range g.Scenarios {
		if len(ent.Scenario.Adversaries) != 0 {
			t.Errorf("corpus scenario %q mutated by variant injection", ent.Name)
		}
	}

	results, _, err := Execute(g, t.TempDir(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	art, err := Aggregate(g, results)
	if err != nil {
		t.Fatal(err)
	}
	for i := range art.Cells {
		c := &art.Cells[i]
		hostile := c.Variant == "nylon-poison20"
		if hostile != (c.Eclipse != nil) || hostile != (c.HonestCluster != nil) {
			t.Errorf("cell (%s, %s): adversary bands presence wrong (eclipse %v)", c.Scenario, c.Variant, c.Eclipse)
		}
	}
	for _, want := range []string{"eclipse%p50", "eclipse probability"} {
		if !strings.Contains(art.Text(), want) {
			t.Errorf("adversary report missing %q", want)
		}
	}
	if !strings.Contains(art.SummaryCSV(), ",eclipse_p10,") || !strings.Contains(art.BandsCSV(), ",eclipse_p10,") {
		t.Error("adversary CSVs missing eclipse columns")
	}

	// Honest sweeps keep their pre-adversary renderings: no adversary
	// column anywhere.
	honestResults, _, err := Execute(honest, t.TempDir(), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	honestArt, err := Aggregate(honest, honestResults)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range []string{honestArt.Text(), honestArt.SummaryCSV(), honestArt.BandsCSV()} {
		if strings.Contains(out, "eclipse") {
			t.Error("honest sweep output gained adversary columns")
		}
	}
	data, err := honestArt.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "eclipse") {
		t.Error("honest artifact JSON gained adversary fields")
	}
}

// assertNoGoroutineLeak fails the test if goroutines created during it are
// still alive at cleanup — the executor and sweep workers must all terminate
// on every path, including interrupted ones. Run with -race to catch the
// leaked goroutine's unsynchronized writes too.
func assertNoGoroutineLeak(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d at start, %d at cleanup\n%s",
					base, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestCacheChecksum pins the result files' integrity layer: stored files
// carry a checksum over their own content, and any file that fails it — or
// predates it — is a logged miss, never a trusted hit.
func TestCacheChecksum(t *testing.T) {
	run := t.TempDir()
	cache, err := OpenCache(run)
	if err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	cache.Log = &log

	jr := &JobResult{Key: "k1", Scenario: "s", Variant: "v", Seed: 1, BiggestCluster: 0.5}
	if err := cache.Store(jr); err != nil {
		t.Fatal(err)
	}
	if jr.Sum == "" {
		t.Fatal("Store left the checksum unstamped")
	}
	if _, ok := cache.Load("k1"); !ok {
		t.Fatal("freshly stored result fails its own checksum")
	}

	// Valid JSON, correct key, silently altered payload: the classic
	// bit-rot/wrong-build case the key alone cannot catch.
	path := filepath.Join(run, "results", "k1.json")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"biggest_cluster": 0.5`), []byte(`"biggest_cluster": 0.9`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper target not found in stored JSON")
	}
	if err := os.WriteFile(path, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("k1"); ok {
		t.Error("tampered result reported as hit")
	}
	if !strings.Contains(log.String(), "fails its checksum") {
		t.Errorf("tampered miss not logged: %q", log.String())
	}

	// A pre-checksum file (no sum at all) is a miss too.
	log.Reset()
	if err := os.WriteFile(filepath.Join(run, "results", "k2.json"),
		[]byte(`{"key":"k2","scenario":"s","variant":"v","seed":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cache.Load("k2"); ok {
		t.Error("checksum-less result reported as hit")
	}
	if !strings.Contains(log.String(), "no checksum") {
		t.Errorf("checksum-less miss not logged: %q", log.String())
	}
}

// seedJobSnapshots runs job's world directly (outside the sweep) with
// checkpointing into the job's snapshot directory, leaving mid-job snapshots
// behind without a cached result — the disk state of a sweep killed mid-job.
func seedJobSnapshots(t *testing.T, cache *Cache, job Job, everyRounds int) {
	t.Helper()
	cfg := job.Cfg
	cfg.Workers = 1
	cfg.Checkpoint = &exp.CheckpointSpec{Dir: cache.SnapshotDir(job.Key), EveryRounds: everyRounds}
	if _, err := exp.Run(cfg); err != nil {
		t.Fatal(err)
	}
	if len(cache.Snapshots(job.Key)) == 0 {
		t.Fatal("seeding left no snapshots")
	}
}

// TestSweepMidJobResume pins the per-prefix snapshot cache: a job whose
// snapshot directory holds a checkpoint resumes from it (including from the
// final barrier — the kill window between the last snapshot and the result
// store), produces a byte-identical artifact, and drops its snapshots once
// the result is persisted.
func TestSweepMidJobResume(t *testing.T) {
	assertNoGoroutineLeak(t)
	corpus := testCorpus(t)
	run := t.TempDir()
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(run)
	if err != nil {
		t.Fatal(err)
	}

	// Job 0: snapshots at rounds 3, 6, 9 and 12 — the newest sits exactly at
	// the 12-round horizon. Job 1: newest strictly inside the run.
	seedJobSnapshots(t, cache, g.Jobs[0], 3)
	seedJobSnapshots(t, cache, g.Jobs[1], 5)

	var log bytes.Buffer
	results, st, err := Execute(g, run, Options{Workers: 1, CheckpointEveryRounds: 3, Log: &log})
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, log.String())
	}
	if st.Ran != 8 || st.Resumed != 2 || st.Cached != 0 {
		t.Errorf("stats %+v, want 8 ran / 2 resumed / 0 cached", st)
	}
	for _, job := range g.Jobs[:2] {
		if left := cache.Snapshots(job.Key); len(left) != 0 {
			t.Errorf("job %s finished but kept %d snapshots", job.Key[:12], len(left))
		}
	}

	// The artifact must not betray which jobs resumed and which ran fresh.
	art, err := Aggregate(g, results)
	if err != nil {
		t.Fatal(err)
	}
	got, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 4})
	if !bytes.Equal(got, fresh) {
		t.Error("resumed-mid-job artifact differs from an uninterrupted sweep")
	}
}

// TestSweepSnapshotFallback pins the hostile-snapshot path: a corrupt
// snapshot and one captured from a different experiment point are both
// rejected with a logged warning, falling back to older snapshots and
// finally to a fresh run — never an error, never a wrong result.
func TestSweepSnapshotFallback(t *testing.T) {
	assertNoGoroutineLeak(t)
	corpus := testCorpus(t)
	run := t.TempDir()
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(run)
	if err != nil {
		t.Fatal(err)
	}

	// Job 0's snapshot directory: a truncated file as the newest snapshot,
	// and below it a perfectly valid snapshot of job 1 — a different seed,
	// which the config guard must reject rather than resume.
	seedJobSnapshots(t, cache, g.Jobs[1], 5)
	wrong := cache.Snapshots(g.Jobs[1].Key)[0]
	data, err := os.ReadFile(wrong)
	if err != nil {
		t.Fatal(err)
	}
	dir := cache.SnapshotDir(g.Jobs[0].Key)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, exp.SnapshotFileName(7)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, exp.SnapshotFileName(9)), data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	results, st, err := Execute(g, run, Options{Workers: 1, CheckpointEveryRounds: 3, Log: &log})
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, log.String())
	}
	// Job 1 resumes from its own (valid) snapshot; job 0 falls back to a
	// fresh run after rejecting both planted files.
	if st.Ran != 8 || st.Resumed != 1 {
		t.Errorf("stats %+v, want 8 ran / 1 resumed", st)
	}
	if n := strings.Count(log.String(), "unusable"); n != 2 {
		t.Errorf("want 2 rejected-snapshot warnings, got %d:\n%s", n, log.String())
	}
	art, err := Aggregate(g, results)
	if err != nil {
		t.Fatal(err)
	}
	got, err := art.JSON()
	if err != nil {
		t.Fatal(err)
	}
	fresh, _ := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 4})
	if !bytes.Equal(got, fresh) {
		t.Error("fallback artifact differs from an uninterrupted sweep")
	}
}

// TestSweepShutdownContext pins the one-cancellation-path contract: a
// cancelled Options.Ctx stops the sweep like StopAfter does (ErrStopped,
// partial results persisted), in-flight jobs checkpoint at their next
// barrier, and a rerun completes the grid byte-identically. All worker
// goroutines terminate on the interrupted path.
func TestSweepShutdownContext(t *testing.T) {
	assertNoGoroutineLeak(t)
	corpus := testCorpus(t)
	run := t.TempDir()
	g, err := Expand(testSpec(), corpus)
	if err != nil {
		t.Fatal(err)
	}

	// Cancelled before the first dequeue: nothing runs, ErrStopped reports
	// the shutdown.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := Execute(g, run, Options{Workers: 2, Ctx: ctx})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("pre-cancelled ctx: err = %v, want ErrStopped", err)
	}
	if st.Ran != 0 {
		t.Errorf("pre-cancelled ctx ran %d jobs", st.Ran)
	}

	// Cancelled mid-run: a watcher cancels as soon as the first mid-job
	// snapshot lands on disk, so some job is very likely interrupted at a
	// barrier. Whatever the interleaving, the rerun must complete the grid
	// and aggregate to the uninterrupted bytes.
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	cache, err := OpenCache(run)
	if err != nil {
		t.Fatal(err)
	}
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		for ctx.Err() == nil {
			for _, job := range g.Jobs {
				if len(cache.Snapshots(job.Key)) > 0 {
					cancel()
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()
	_, _, err = Execute(g, run, Options{Workers: 2, Ctx: ctx, CheckpointEveryRounds: 1})
	cancel()
	<-watcherDone
	if err != nil && !errors.Is(err, ErrStopped) {
		t.Fatalf("interrupted run: err = %v", err)
	}

	resumed, st := sweepOnce(t, corpus, run, Options{Workers: 2, CheckpointEveryRounds: 1})
	if st.Ran+st.Cached != 8 {
		t.Errorf("rerun stats %+v, want 8 jobs accounted for", st)
	}
	fresh, _ := sweepOnce(t, corpus, t.TempDir(), Options{Workers: 4})
	if !bytes.Equal(resumed, fresh) {
		t.Error("artifact after interrupt+resume differs from an uninterrupted sweep")
	}
}
