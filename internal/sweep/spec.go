// Package sweep is the scenario-diversity orchestrator: it expands a
// declarative sweep specification — a scenario corpus × a seed set ×
// protocol/configuration variants — into a deterministic grid of simulation
// jobs, executes them through the shared experiment executor with
// content-addressed result caching (a killed sweep restarts without
// recomputing), and aggregates the per-run health series into per-cell
// recovery summaries and per-round p10/p50/p90 quantile bands.
//
// The whole pipeline is a pure function of (spec, scenario files, seeds):
// the same inputs produce a byte-identical JSON artifact, regardless of
// worker count, cache state, or how many times the sweep was interrupted.
package sweep

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/exp"
	"repro/internal/scenario"
	"repro/internal/view"
)

// Spec is one declarative sweep: which scenarios, which seeds, which
// protocol variants. It is pure data, loadable from JSON; unknown fields are
// rejected so typos fail loudly.
type Spec struct {
	// Name identifies the sweep in artifacts and run directories.
	Name string `json:"name,omitempty"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`

	// Scenarios are glob patterns naming the scenario corpus, resolved
	// relative to the spec file's directory (see scenario.LoadCorpus).
	Scenarios []string `json:"scenarios"`

	// Seeds is the number of seeds per cell (the canonical list 1..Seeds);
	// SeedList replaces it with an explicit list.
	Seeds    int     `json:"seeds,omitempty"`
	SeedList []int64 `json:"seed_list,omitempty"`

	// Base is the configuration shared by every variant.
	Base Overrides `json:"base,omitempty"`

	// Variants are the protocol/configuration variants; each (scenario,
	// variant) pair is one cell of the output grid. Variant fields override
	// Base.
	Variants []Variant `json:"variants"`
}

// Variant is one named configuration column of the grid.
type Variant struct {
	Name string `json:"name"`
	Overrides
}

// Overrides is the subset of the experiment configuration a sweep can set.
// Zero (or nil) fields inherit: variant ← base ← defaults.
type Overrides struct {
	// N is the initial number of peers (default 300).
	N int `json:"n,omitempty"`
	// Rounds is the run horizon in shuffling rounds (default 120).
	Rounds int `json:"rounds,omitempty"`
	// ViewSize is the partial view size (default 15).
	ViewSize int `json:"view_size,omitempty"`
	// NATPct is the percentage of natted peers (default 80; pointer so 0%
	// is expressible).
	NATPct *float64 `json:"nat_pct,omitempty"`
	// Protocol is one of nylon, generic, arrg, static-rvp (default nylon).
	Protocol string `json:"protocol,omitempty"`
	// Selection is rand or tail (default rand).
	Selection string `json:"selection,omitempty"`
	// Merge is blind, healer or swapper (default healer).
	Merge string `json:"merge,omitempty"`
	// PushOnly disables pull replies (default false: push/pull; pointer so
	// a variant can reset a base override).
	PushOnly *bool `json:"push_only,omitempty"`
	// Mix splits the natted population across NAT classes (default the
	// paper's 50/40/10).
	Mix *scenario.Mix `json:"nat_mix,omitempty"`
	// SampleEvery is the health-series sampling interval in rounds
	// (default rounds/20, at least 1). The series is what the per-round
	// bands aggregate, so it must stay identical across a cell's seeds.
	SampleEvery int `json:"sample_every,omitempty"`
	// Adversaries injects Byzantine cohorts into every scenario of the
	// grid for this variant (see scenario.Adversary), replacing any
	// adversaries the scenario files declare — the sweep's adversary
	// axis: strategy × fraction grids live in the variant list. nil
	// inherits the base; an explicit empty list resets a base override.
	Adversaries []scenario.Adversary `json:"adversaries,omitempty"`
}

// merge returns o with unset fields filled from base.
func (o Overrides) merge(base Overrides) Overrides {
	if o.N == 0 {
		o.N = base.N
	}
	if o.Rounds == 0 {
		o.Rounds = base.Rounds
	}
	if o.ViewSize == 0 {
		o.ViewSize = base.ViewSize
	}
	if o.NATPct == nil {
		o.NATPct = base.NATPct
	}
	if o.Protocol == "" {
		o.Protocol = base.Protocol
	}
	if o.Selection == "" {
		o.Selection = base.Selection
	}
	if o.Merge == "" {
		o.Merge = base.Merge
	}
	if o.PushOnly == nil {
		o.PushOnly = base.PushOnly
	}
	if o.Mix == nil {
		o.Mix = base.Mix
	}
	if o.SampleEvery == 0 {
		o.SampleEvery = base.SampleEvery
	}
	if o.Adversaries == nil {
		o.Adversaries = base.Adversaries
	}
	return o
}

// resolve turns a fully merged Overrides into an experiment configuration
// (without scenario and seed, which the grid attaches per job).
func (o Overrides) resolve() (exp.Config, error) {
	cfg := exp.Config{
		N:        300,
		Rounds:   120,
		ViewSize: 15,
		NATRatio: 0.8,
		PushPull: true,
		Protocol: exp.ProtoNylon,
		// Deployable peer samplers evict unanswered targets (see
		// exp.nylonCfg); adversity scenarios are exactly the regime where
		// that matters.
		EvictUnanswered: true,
	}
	if o.N != 0 {
		cfg.N = o.N
	}
	if o.Rounds != 0 {
		cfg.Rounds = o.Rounds
	}
	if o.ViewSize != 0 {
		cfg.ViewSize = o.ViewSize
	}
	if o.NATPct != nil {
		cfg.NATRatio = *o.NATPct / 100
	}
	var err error
	if o.Protocol != "" {
		if cfg.Protocol, err = exp.ParseProtocol(o.Protocol); err != nil {
			return exp.Config{}, err
		}
	}
	if o.Selection != "" {
		if cfg.Selection, err = view.ParseSelection(o.Selection); err != nil {
			return exp.Config{}, err
		}
	}
	cfg.Merge = view.MergeHealer
	if o.Merge != "" {
		if cfg.Merge, err = view.ParseMerge(o.Merge); err != nil {
			return exp.Config{}, err
		}
	}
	if o.PushOnly != nil {
		cfg.PushPull = !*o.PushOnly
	}
	if o.Mix != nil {
		cfg.Mix = exp.NATMix{RC: o.Mix.RC, PRC: o.Mix.PRC, SYM: o.Mix.SYM}
	}
	cfg.SampleEveryRounds = o.SampleEvery
	if cfg.SampleEveryRounds == 0 {
		cfg.SampleEveryRounds = cfg.Rounds / 20
		if cfg.SampleEveryRounds < 1 {
			cfg.SampleEveryRounds = 1
		}
	}
	return cfg, nil
}

// EffectiveSeeds returns the sweep's seed list: SeedList verbatim, or the
// canonical 1..Seeds.
func (s *Spec) EffectiveSeeds() []int64 {
	if len(s.SeedList) > 0 {
		return s.SeedList
	}
	return exp.SeedList(s.Seeds)
}

// Validate checks the spec's shape; per-job configuration problems (bad
// protocol names, scenarios past the horizon) surface during expansion with
// the offending cell named.
func (s *Spec) Validate() error {
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("sweep: spec has no scenario patterns")
	}
	if len(s.Variants) == 0 {
		return fmt.Errorf("sweep: spec has no variants")
	}
	names := make(map[string]bool, len(s.Variants))
	for i, v := range s.Variants {
		if v.Name == "" {
			return fmt.Errorf("sweep: variant %d has no name", i)
		}
		if names[v.Name] {
			return fmt.Errorf("sweep: duplicate variant name %q", v.Name)
		}
		names[v.Name] = true
	}
	if s.Seeds < 0 {
		return fmt.Errorf("sweep: seeds %d is negative", s.Seeds)
	}
	if len(s.EffectiveSeeds()) == 0 {
		return fmt.Errorf("sweep: spec needs seeds > 0 or a non-empty seed_list")
	}
	seen := make(map[int64]bool, len(s.SeedList))
	for _, seed := range s.SeedList {
		if seen[seed] {
			return fmt.Errorf("sweep: duplicate seed %d in seed_list", seed)
		}
		seen[seed] = true
	}
	return nil
}

// ParseSpec decodes a sweep spec from JSON, rejecting unknown fields.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parse spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses a sweep spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// hashHex returns the hex SHA-256 of data.
func hashHex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}
