package sweep

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// band quantiles: the p10/p50/p90 triple every cell reports.
var bandQs = []float64{0.10, 0.50, 0.90}

// Band is a p10/p50/p90 quantile triple.
type Band struct {
	P10 float64 `json:"p10"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
}

func bandOf(xs []float64) Band {
	q := stats.Quantiles(xs, bandQs)
	return Band{P10: clean(q[0]), P50: clean(q[1]), P90: clean(q[2])}
}

// clean maps NaN to 0 so the artifact stays valid JSON (encoding/json
// rejects NaN). Cells are aggregated from at least one seed, so NaN only
// arises for defined-empty distributions (e.g. recovery rounds when no seed
// recovered), where the companion count/fraction field disambiguates.
func clean(x float64) float64 {
	if math.IsNaN(x) {
		return 0
	}
	return x
}

// BandPoint is one sampled round of a cell's aggregated health series.
type BandPoint struct {
	Round int `json:"round"`
	// Cluster is the biggest-cluster fraction band across seeds.
	Cluster Band `json:"cluster"`
	// StaleP50 is the median stale-reference fraction.
	StaleP50 float64 `json:"stale_p50"`
	// AliveP50 is the median alive population.
	AliveP50 float64 `json:"alive_p50"`
	// Eclipse is the eclipse-probability band across seeds, present only
	// for adversary cells (pointer + omitempty keeps honest artifacts
	// byte-identical to the pre-adversary format).
	Eclipse *Band `json:"eclipse,omitempty"`
}

// Cell is the aggregate of one (scenario, variant) pair across seeds.
type Cell struct {
	Scenario string  `json:"scenario"`
	Variant  string  `json:"variant"`
	Seeds    []int64 `json:"seeds"`

	// FinalCluster and WorstCluster are biggest-cluster fraction bands at
	// the end of the run and at each seed's worst sampled point.
	FinalCluster Band `json:"final_cluster"`
	WorstCluster Band `json:"worst_cluster"`
	// FinalStaleP50 is the median end-of-run stale fraction.
	FinalStaleP50 float64 `json:"final_stale_p50"`
	// CompletionP50 is the median shuffle completion rate.
	CompletionP50 float64 `json:"completion_p50"`

	// RecoveredFraction is the share of seeds whose overlay regained the
	// recovery threshold after its worst point; RecoveryRounds summarizes
	// worst→recovered durations over those seeds (all-zero when none
	// recovered — check RecoveredFraction first).
	RecoveredFraction float64 `json:"recovered_fraction"`
	RecoveryRounds    Band    `json:"recovery_rounds"`

	// Series is the per-round quantile band of the cell's health series.
	Series []BandPoint `json:"series"`

	// Adversary bands across seeds, present only when the cell's jobs ran
	// with adversary cohorts (pointers + omitempty: honest sweeps keep
	// producing byte-identical artifacts). Eclipse is the end-of-run
	// eclipse probability; ColluderShare the colluder indegree share;
	// HonestCluster the honest-subgraph partition resistance.
	Eclipse       *Band `json:"eclipse,omitempty"`
	ColluderShare *Band `json:"colluder_share,omitempty"`
	HonestCluster *Band `json:"honest_cluster,omitempty"`
}

// Artifact is the aggregated output of one sweep — a pure function of
// (spec, scenario files, seeds), marshaled deterministically: running the
// same sweep twice yields byte-identical JSON.
type Artifact struct {
	Name      string   `json:"name"`
	SpecHash  string   `json:"spec_hash"`
	Scenarios []string `json:"scenarios"`
	Variants  []string `json:"variants"`
	Seeds     []int64  `json:"seeds"`
	Cells     []Cell   `json:"cells"`
}

// Aggregate folds the grid's results (in grid order, as returned by
// Execute) into per-cell summaries and per-round bands.
func Aggregate(g *Grid, results []*JobResult) (*Artifact, error) {
	if len(results) != len(g.Jobs) {
		return nil, fmt.Errorf("sweep: %d results for %d jobs", len(results), len(g.Jobs))
	}
	art := &Artifact{
		Name:      g.Spec.Name,
		SpecHash:  g.SpecHash,
		Scenarios: g.ScenarioNames(),
		Variants:  g.VariantNames(),
		Seeds:     g.Seeds,
	}
	nSeeds := len(g.Seeds)
	k := 0
	for _, sc := range art.Scenarios {
		for _, v := range art.Variants {
			cellResults := results[k : k+nSeeds]
			k += nSeeds
			cell, err := aggregateCell(sc, v, g.Seeds, cellResults)
			if err != nil {
				return nil, err
			}
			art.Cells = append(art.Cells, cell)
		}
	}
	return art, nil
}

func aggregateCell(scenarioName, variant string, seeds []int64, results []*JobResult) (Cell, error) {
	cell := Cell{Scenario: scenarioName, Variant: variant, Seeds: seeds}
	var (
		finals, worsts, stales, completions []float64
		recoveryRounds                      []float64
		recovered                           int
	)
	clusterRuns := make([][]float64, len(results))
	staleRuns := make([][]float64, len(results))
	aliveRuns := make([][]float64, len(results))
	var rounds []int
	hasAdv := false
	var eclipses, shares, honests []float64
	eclipseRuns := make([][]float64, len(results))
	for i, jr := range results {
		if jr == nil {
			return Cell{}, fmt.Errorf("sweep: cell (%s, %s) missing result for seed %d", scenarioName, variant, seeds[i])
		}
		finals = append(finals, jr.BiggestCluster)
		worsts = append(worsts, jr.WorstCluster)
		stales = append(stales, jr.StaleFraction)
		completions = append(completions, jr.CompletionRate)
		if jr.RecoveredRound >= 0 {
			recovered++
			recoveryRounds = append(recoveryRounds, float64(jr.RecoveredRound-jr.WorstRound))
		}
		// Series alignment: every seed of a cell runs the same config, so
		// the sampled rounds must agree; a mismatch means the cache holds
		// results from a different spec and must not be averaged silently.
		if i == 0 {
			rounds = make([]int, len(jr.Series))
			for j, pt := range jr.Series {
				rounds[j] = pt.Round
			}
		} else if len(jr.Series) != len(rounds) {
			return Cell{}, fmt.Errorf("sweep: cell (%s, %s): seed %d sampled %d rounds, seed %d sampled %d",
				scenarioName, variant, seeds[0], len(rounds), seeds[i], len(jr.Series))
		}
		clusterRuns[i] = make([]float64, len(jr.Series))
		staleRuns[i] = make([]float64, len(jr.Series))
		aliveRuns[i] = make([]float64, len(jr.Series))
		eclipseRuns[i] = make([]float64, len(jr.Series))
		for j, pt := range jr.Series {
			if pt.Round != rounds[j] {
				return Cell{}, fmt.Errorf("sweep: cell (%s, %s): seed %d sampled round %d where seed %d sampled %d",
					scenarioName, variant, seeds[i], pt.Round, seeds[0], rounds[j])
			}
			clusterRuns[i][j] = pt.Cluster
			staleRuns[i][j] = pt.Stale
			aliveRuns[i][j] = float64(pt.Alive)
			eclipseRuns[i][j] = pt.Eclipse
		}
		if jr.HasAdversaries {
			hasAdv = true
			eclipses = append(eclipses, jr.FinalEclipse)
			shares = append(shares, jr.FinalColluderShare)
			honests = append(honests, jr.HonestCluster)
		}
	}
	cell.FinalCluster = bandOf(finals)
	cell.WorstCluster = bandOf(worsts)
	cell.FinalStaleP50 = clean(stats.Quantile(stales, 0.5))
	cell.CompletionP50 = clean(stats.Quantile(completions, 0.5))
	cell.RecoveredFraction = float64(recovered) / float64(len(results))
	cell.RecoveryRounds = bandOf(recoveryRounds)

	clusterBand := stats.PerRoundQuantiles(clusterRuns, bandQs)
	staleBand := stats.PerRoundQuantiles(staleRuns, []float64{0.5})
	aliveBand := stats.PerRoundQuantiles(aliveRuns, []float64{0.5})
	cell.Series = make([]BandPoint, len(rounds))
	for j, r := range rounds {
		cell.Series[j] = BandPoint{
			Round:    r,
			Cluster:  Band{P10: clean(clusterBand[j][0]), P50: clean(clusterBand[j][1]), P90: clean(clusterBand[j][2])},
			StaleP50: clean(staleBand[j][0]),
			AliveP50: clean(aliveBand[j][0]),
		}
	}
	if hasAdv {
		eb, sb, hb := bandOf(eclipses), bandOf(shares), bandOf(honests)
		cell.Eclipse, cell.ColluderShare, cell.HonestCluster = &eb, &sb, &hb
		eclipseBand := stats.PerRoundQuantiles(eclipseRuns, bandQs)
		for j := range cell.Series {
			b := Band{P10: clean(eclipseBand[j][0]), P50: clean(eclipseBand[j][1]), P90: clean(eclipseBand[j][2])}
			cell.Series[j].Eclipse = &b
		}
	}
	return cell, nil
}
