package sweep

import (
	"encoding/json"
	"fmt"

	"repro/internal/exp"
	"repro/internal/scenario"
)

// Job is one point of the grid: one scenario × variant × seed, fully
// resolved into a runnable configuration and content-addressed by Key.
type Job struct {
	// Scenario and Variant name the cell; Seed the point within it.
	Scenario string
	Variant  string
	Seed     int64
	// Cfg is the resolved configuration (Seed and Scenario attached;
	// Workers/Shards left to the executor, which results are invariant to).
	Cfg exp.Config
	// Key is the hex SHA-256 of the job descriptor: every result-affecting
	// configuration field, the scenario file's content hash, and the seed.
	// Equal keys ⇒ bit-identical results, which is what makes the result
	// cache safe to reuse across runs and spec edits.
	Key string
}

// Grid is an expanded sweep: the loaded corpus and the deterministic job
// list, scenario-major, then variant, then seed — the iteration order every
// consumer (executor, aggregator, printers) shares.
type Grid struct {
	Spec      *Spec
	Scenarios []scenario.CorpusEntry
	Seeds     []int64
	// SpecHash fingerprints the effective sweep: the re-marshaled spec plus
	// every scenario file's content hash. Two grids with equal SpecHash
	// expand to identical jobs.
	SpecHash string
	Jobs     []Job
}

// jobKey is the canonical descriptor hashed into Job.Key. Field order is
// fixed by the struct; bump Version when the meaning of any field changes so
// stale cached results are orphaned rather than misread.
type jobKey struct {
	Version      int     `json:"v"`
	ScenarioHash string  `json:"scenario"`
	Seed         int64   `json:"seed"`
	N            int     `json:"n"`
	Rounds       int     `json:"rounds"`
	ViewSize     int     `json:"view_size"`
	NATRatio     float64 `json:"nat_ratio"`
	MixRC        float64 `json:"mix_rc"`
	MixPRC       float64 `json:"mix_prc"`
	MixSYM       float64 `json:"mix_sym"`
	Protocol     string  `json:"protocol"`
	Selection    string  `json:"selection"`
	Merge        string  `json:"merge"`
	PushPull     bool    `json:"push_pull"`
	PeriodMs     int64   `json:"period_ms"`
	LatencyMs    int64   `json:"latency_ms"`
	HoleTimeout  int64   `json:"hole_timeout_ms"`
	CacheSize    int     `json:"cache_size"`
	Evict        bool    `json:"evict_unanswered"`
	UPnP         float64 `json:"upnp_fraction"`
	SampleEvery  int     `json:"sample_every"`
	// Adversaries is the canonical JSON of the variant-injected adversary
	// specs. Scenario-file adversaries are already covered by ScenarioHash;
	// omitempty keeps every pre-adversary job key byte-identical, so
	// existing caches stay valid.
	Adversaries string `json:"adversaries,omitempty"`
}

// keyVersion is the current job-descriptor format.
const keyVersion = 1

// keyOf computes the content address of one job. cfg must already carry its
// defaults so that implicit and explicit parameter choices hash equally.
func keyOf(cfg exp.Config, scenarioHash string, seed int64, adversaries string) string {
	desc := jobKey{
		Adversaries:  adversaries,
		Version:      keyVersion,
		ScenarioHash: scenarioHash,
		Seed:         seed,
		N:            cfg.N,
		Rounds:       cfg.Rounds,
		ViewSize:     cfg.ViewSize,
		NATRatio:     cfg.NATRatio,
		MixRC:        cfg.Mix.RC,
		MixPRC:       cfg.Mix.PRC,
		MixSYM:       cfg.Mix.SYM,
		Protocol:     cfg.Protocol.String(),
		Selection:    cfg.Selection.String(),
		Merge:        cfg.Merge.String(),
		PushPull:     cfg.PushPull,
		PeriodMs:     cfg.PeriodMs,
		LatencyMs:    cfg.LatencyMs,
		HoleTimeout:  cfg.HoleTimeoutMs,
		CacheSize:    cfg.CacheSize,
		Evict:        cfg.EvictUnanswered,
		UPnP:         cfg.UPnPFraction,
		SampleEvery:  cfg.SampleEveryRounds,
	}
	data, err := json.Marshal(desc)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal job key: %v", err)) // plain struct, cannot fail
	}
	return hashHex(data)
}

// Expand loads the corpus and expands the spec into the deterministic job
// grid. Every job's configuration is validated here — a scenario event past
// a variant's horizon, say, fails fast with the cell named, before any
// simulation runs.
func Expand(spec *Spec, baseDir string) (*Grid, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	entries, err := scenario.LoadCorpus(baseDir, spec.Scenarios)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	seeds := spec.EffectiveSeeds()

	g := &Grid{Spec: spec, Scenarios: entries, Seeds: seeds}
	g.Jobs = make([]Job, 0, len(entries)*len(spec.Variants)*len(seeds))

	// One resolved config per variant, shared across the corpus. A variant
	// injecting adversaries also carries their canonical JSON, which joins
	// the job key (the scenario file hash cannot see injected cohorts).
	cfgs := make([]exp.Config, len(spec.Variants))
	advs := make([][]scenario.Adversary, len(spec.Variants))
	advKeys := make([]string, len(spec.Variants))
	for i, v := range spec.Variants {
		merged := v.Overrides.merge(spec.Base)
		cfg, err := merged.resolve()
		if err != nil {
			return nil, fmt.Errorf("sweep: variant %q: %w", v.Name, err)
		}
		cfgs[i] = cfg.Defaults()
		if len(merged.Adversaries) > 0 {
			advs[i] = merged.Adversaries
			data, err := json.Marshal(merged.Adversaries)
			if err != nil {
				return nil, fmt.Errorf("sweep: variant %q: marshal adversaries: %w", v.Name, err)
			}
			advKeys[i] = string(data)
		}
	}

	for _, ent := range entries {
		scenarioHash := hashHex(ent.Raw)
		for i, v := range spec.Variants {
			cfg := cfgs[i]
			cfg.Scenario = ent.Scenario
			if len(advs[i]) > 0 {
				// Clone the shared scenario before injecting the variant's
				// cohorts: other cells keep the file's verbatim timeline.
				var sc scenario.Scenario
				if ent.Scenario != nil {
					sc = *ent.Scenario
				}
				sc.Adversaries = advs[i]
				cfg.Scenario = &sc
			}
			if err := cfg.Scenario.Validate(cfg.Rounds); err != nil {
				return nil, fmt.Errorf("sweep: cell (%s, %s): %w", ent.Name, v.Name, err)
			}
			for _, seed := range seeds {
				jobCfg := cfg
				jobCfg.Seed = seed
				g.Jobs = append(g.Jobs, Job{
					Scenario: ent.Name,
					Variant:  v.Name,
					Seed:     seed,
					Cfg:      jobCfg,
					Key:      keyOf(jobCfg, scenarioHash, seed, advKeys[i]),
				})
			}
		}
	}

	g.SpecHash = g.hashSpec()
	return g, nil
}

// hashSpec fingerprints the effective sweep. It re-marshals the spec (not
// the source bytes, so formatting-only edits do not change the hash) and
// folds in every scenario's content hash.
func (g *Grid) hashSpec() string {
	specJSON, err := json.Marshal(g.Spec)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	h := append([]byte{}, specJSON...)
	for _, ent := range g.Scenarios {
		h = append(h, '\n')
		h = append(h, ent.Name...)
		h = append(h, ':')
		h = append(h, hashHex(ent.Raw)...)
	}
	return hashHex(h)
}

// VariantNames lists the variant names in spec order.
func (g *Grid) VariantNames() []string {
	out := make([]string, len(g.Spec.Variants))
	for i, v := range g.Spec.Variants {
		out[i] = v.Name
	}
	return out
}

// ScenarioNames lists the corpus names in grid order.
func (g *Grid) ScenarioNames() []string {
	out := make([]string, len(g.Scenarios))
	for i, e := range g.Scenarios {
		out[i] = e.Name
	}
	return out
}
