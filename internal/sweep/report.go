package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/exp"
)

// JSON renders the artifact deterministically (indented, trailing newline).
func (a *Artifact) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: marshal artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// cell looks up one cell of the grid (grid order guarantees presence).
func (a *Artifact) cell(scenarioName, variant string) *Cell {
	for i := range a.Cells {
		if a.Cells[i].Scenario == scenarioName && a.Cells[i].Variant == variant {
			return &a.Cells[i]
		}
	}
	return nil
}

// GridTables renders the cross-variant recovery grid: one table per metric,
// scenarios as rows, variants as columns.
func (a *Artifact) GridTables() []exp.Table {
	metrics := []struct {
		title string
		value func(*Cell) float64
	}{
		{"sweep — final biggest cluster (%) p50", func(c *Cell) float64 { return c.FinalCluster.P50 * 100 }},
		{"sweep — worst sampled cluster (%) p50", func(c *Cell) float64 { return c.WorstCluster.P50 * 100 }},
		{"sweep — recovered seeds (%)", func(c *Cell) float64 { return c.RecoveredFraction * 100 }},
		{"sweep — recovery rounds (worst→recovered) p50", func(c *Cell) float64 { return c.RecoveryRounds.P50 }},
	}
	tables := make([]exp.Table, 0, len(metrics))
	for _, m := range metrics {
		t := exp.Table{Title: m.title, Columns: append([]string{"scenario"}, a.Variants...)}
		for _, sc := range a.Scenarios {
			row := exp.Row{Label: sc}
			for _, v := range a.Variants {
				row.Values = append(row.Values, m.value(a.cell(sc, v)))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// SummaryTables renders one per-scenario table with the quantile bands:
// variants as rows, the cell summary statistics as columns.
func (a *Artifact) SummaryTables() []exp.Table {
	tables := make([]exp.Table, 0, len(a.Scenarios))
	for _, sc := range a.Scenarios {
		t := exp.Table{
			Title: fmt.Sprintf("scenario %q — per-variant summary over %d seeds", sc, len(a.Seeds)),
			Columns: []string{"variant",
				"final%p10", "final%p50", "final%p90",
				"worst%p50", "stale%p50", "recov%", "recov-rounds-p50"},
		}
		for _, v := range a.Variants {
			c := a.cell(sc, v)
			t.Rows = append(t.Rows, exp.Row{Label: v, Values: []float64{
				c.FinalCluster.P10 * 100, c.FinalCluster.P50 * 100, c.FinalCluster.P90 * 100,
				c.WorstCluster.P50 * 100, c.FinalStaleP50 * 100,
				c.RecoveredFraction * 100, c.RecoveryRounds.P50,
			}})
		}
		tables = append(tables, t)
	}
	return tables
}

// BandTables renders each cell's per-round quantile band as a table
// (round, cluster p10/p50/p90, stale p50, alive p50).
func (a *Artifact) BandTables() []exp.Table {
	tables := make([]exp.Table, 0, len(a.Cells))
	for i := range a.Cells {
		c := &a.Cells[i]
		t := exp.Table{
			Title:   fmt.Sprintf("band (%s, %s) — biggest cluster (%%) per round", c.Scenario, c.Variant),
			Columns: []string{"round", "p10", "p50", "p90", "stale%p50", "alive-p50"},
		}
		for _, pt := range c.Series {
			t.Rows = append(t.Rows, exp.Row{Label: fmt.Sprintf("%d", pt.Round), Values: []float64{
				pt.Cluster.P10 * 100, pt.Cluster.P50 * 100, pt.Cluster.P90 * 100,
				pt.StaleP50 * 100, pt.AliveP50,
			}})
		}
		tables = append(tables, t)
	}
	return tables
}

// Text renders the full aligned-text report: the cross-variant grids, the
// per-scenario summaries, then the per-cell bands.
func (a *Artifact) Text() string {
	var b strings.Builder
	for _, t := range a.GridTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, t := range a.SummaryTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, t := range a.BandTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SummaryCSV renders one row per cell with the summary statistics.
func (a *Artifact) SummaryCSV() string {
	var b strings.Builder
	b.WriteString("scenario,variant,seeds,final_cluster_p10,final_cluster_p50,final_cluster_p90," +
		"worst_cluster_p10,worst_cluster_p50,worst_cluster_p90,final_stale_p50,completion_p50," +
		"recovered_fraction,recovery_rounds_p10,recovery_rounds_p50,recovery_rounds_p90\n")
	for i := range a.Cells {
		c := &a.Cells[i]
		fmt.Fprintf(&b, "%s,%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g\n",
			c.Scenario, c.Variant, len(c.Seeds),
			c.FinalCluster.P10, c.FinalCluster.P50, c.FinalCluster.P90,
			c.WorstCluster.P10, c.WorstCluster.P50, c.WorstCluster.P90,
			c.FinalStaleP50, c.CompletionP50,
			c.RecoveredFraction, c.RecoveryRounds.P10, c.RecoveryRounds.P50, c.RecoveryRounds.P90)
	}
	return b.String()
}

// BandsCSV renders one row per (cell, round) with the per-round band.
func (a *Artifact) BandsCSV() string {
	var b strings.Builder
	b.WriteString("scenario,variant,round,cluster_p10,cluster_p50,cluster_p90,stale_p50,alive_p50\n")
	for i := range a.Cells {
		c := &a.Cells[i]
		for _, pt := range c.Series {
			fmt.Fprintf(&b, "%s,%s,%d,%g,%g,%g,%g,%g\n",
				c.Scenario, c.Variant, pt.Round,
				pt.Cluster.P10, pt.Cluster.P50, pt.Cluster.P90, pt.StaleP50, pt.AliveP50)
		}
	}
	return b.String()
}
