package sweep

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/exp"
)

// JSON renders the artifact deterministically (indented, trailing newline).
func (a *Artifact) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("sweep: marshal artifact: %w", err)
	}
	return append(data, '\n'), nil
}

// cell looks up one cell of the grid (grid order guarantees presence).
func (a *Artifact) cell(scenarioName, variant string) *Cell {
	for i := range a.Cells {
		if a.Cells[i].Scenario == scenarioName && a.Cells[i].Variant == variant {
			return &a.Cells[i]
		}
	}
	return nil
}

// hasAdversary reports whether any cell carries adversary bands; every
// adversary-aware table and CSV column is gated on it so honest sweeps keep
// rendering byte-identical reports.
func (a *Artifact) hasAdversary() bool {
	for i := range a.Cells {
		if a.Cells[i].Eclipse != nil {
			return true
		}
	}
	return false
}

// bandP50 reads an optional band's median (0 when absent — a mixed grid can
// hold honest and adversary cells side by side).
func bandP50(b *Band) float64 {
	if b == nil {
		return 0
	}
	return b.P50
}

// GridTables renders the cross-variant recovery grid: one table per metric,
// scenarios as rows, variants as columns. Adversary grids additionally get
// the attack metrics — the "how much Byzantine load survives" view.
func (a *Artifact) GridTables() []exp.Table {
	metrics := []struct {
		title string
		value func(*Cell) float64
	}{
		{"sweep — final biggest cluster (%) p50", func(c *Cell) float64 { return c.FinalCluster.P50 * 100 }},
		{"sweep — worst sampled cluster (%) p50", func(c *Cell) float64 { return c.WorstCluster.P50 * 100 }},
		{"sweep — recovered seeds (%)", func(c *Cell) float64 { return c.RecoveredFraction * 100 }},
		{"sweep — recovery rounds (worst→recovered) p50", func(c *Cell) float64 { return c.RecoveryRounds.P50 }},
	}
	if a.hasAdversary() {
		metrics = append(metrics, []struct {
			title string
			value func(*Cell) float64
		}{
			{"sweep — eclipse probability (%) p50", func(c *Cell) float64 { return bandP50(c.Eclipse) * 100 }},
			{"sweep — colluder indegree share (%) p50", func(c *Cell) float64 { return bandP50(c.ColluderShare) * 100 }},
			{"sweep — honest-subgraph cluster (%) p50", func(c *Cell) float64 { return bandP50(c.HonestCluster) * 100 }},
		}...)
	}
	tables := make([]exp.Table, 0, len(metrics))
	for _, m := range metrics {
		t := exp.Table{Title: m.title, Columns: append([]string{"scenario"}, a.Variants...)}
		for _, sc := range a.Scenarios {
			row := exp.Row{Label: sc}
			for _, v := range a.Variants {
				row.Values = append(row.Values, m.value(a.cell(sc, v)))
			}
			t.Rows = append(t.Rows, row)
		}
		tables = append(tables, t)
	}
	return tables
}

// SummaryTables renders one per-scenario table with the quantile bands:
// variants as rows, the cell summary statistics as columns.
func (a *Artifact) SummaryTables() []exp.Table {
	tables := make([]exp.Table, 0, len(a.Scenarios))
	adv := a.hasAdversary()
	for _, sc := range a.Scenarios {
		cols := []string{"variant",
			"final%p10", "final%p50", "final%p90",
			"worst%p50", "stale%p50", "recov%", "recov-rounds-p50"}
		if adv {
			cols = append(cols, "eclipse%p50", "colluder%p50", "honest%p50")
		}
		t := exp.Table{
			Title:   fmt.Sprintf("scenario %q — per-variant summary over %d seeds", sc, len(a.Seeds)),
			Columns: cols,
		}
		for _, v := range a.Variants {
			c := a.cell(sc, v)
			vals := []float64{
				c.FinalCluster.P10 * 100, c.FinalCluster.P50 * 100, c.FinalCluster.P90 * 100,
				c.WorstCluster.P50 * 100, c.FinalStaleP50 * 100,
				c.RecoveredFraction * 100, c.RecoveryRounds.P50,
			}
			if adv {
				vals = append(vals, bandP50(c.Eclipse)*100, bandP50(c.ColluderShare)*100, bandP50(c.HonestCluster)*100)
			}
			t.Rows = append(t.Rows, exp.Row{Label: v, Values: vals})
		}
		tables = append(tables, t)
	}
	return tables
}

// BandTables renders each cell's per-round quantile band as a table
// (round, cluster p10/p50/p90, stale p50, alive p50).
func (a *Artifact) BandTables() []exp.Table {
	tables := make([]exp.Table, 0, len(a.Cells))
	for i := range a.Cells {
		c := &a.Cells[i]
		cols := []string{"round", "p10", "p50", "p90", "stale%p50", "alive-p50"}
		if c.Eclipse != nil {
			cols = append(cols, "eclipse%p50", "eclipse%p90")
		}
		t := exp.Table{
			Title:   fmt.Sprintf("band (%s, %s) — biggest cluster (%%) per round", c.Scenario, c.Variant),
			Columns: cols,
		}
		for _, pt := range c.Series {
			vals := []float64{
				pt.Cluster.P10 * 100, pt.Cluster.P50 * 100, pt.Cluster.P90 * 100,
				pt.StaleP50 * 100, pt.AliveP50,
			}
			if c.Eclipse != nil {
				var p50, p90 float64
				if pt.Eclipse != nil {
					p50, p90 = pt.Eclipse.P50*100, pt.Eclipse.P90*100
				}
				vals = append(vals, p50, p90)
			}
			t.Rows = append(t.Rows, exp.Row{Label: fmt.Sprintf("%d", pt.Round), Values: vals})
		}
		tables = append(tables, t)
	}
	return tables
}

// Text renders the full aligned-text report: the cross-variant grids, the
// per-scenario summaries, then the per-cell bands.
func (a *Artifact) Text() string {
	var b strings.Builder
	for _, t := range a.GridTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, t := range a.SummaryTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, t := range a.BandTables() {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// SummaryCSV renders one row per cell with the summary statistics. Adversary
// columns appear only when the sweep ran with adversaries, so honest sweeps
// keep producing byte-identical CSVs.
func (a *Artifact) SummaryCSV() string {
	adv := a.hasAdversary()
	var b strings.Builder
	b.WriteString("scenario,variant,seeds,final_cluster_p10,final_cluster_p50,final_cluster_p90," +
		"worst_cluster_p10,worst_cluster_p50,worst_cluster_p90,final_stale_p50,completion_p50," +
		"recovered_fraction,recovery_rounds_p10,recovery_rounds_p50,recovery_rounds_p90")
	if adv {
		b.WriteString(",eclipse_p10,eclipse_p50,eclipse_p90,colluder_share_p50,honest_cluster_p10,honest_cluster_p50,honest_cluster_p90")
	}
	b.WriteByte('\n')
	for i := range a.Cells {
		c := &a.Cells[i]
		fmt.Fprintf(&b, "%s,%s,%d,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g,%g",
			c.Scenario, c.Variant, len(c.Seeds),
			c.FinalCluster.P10, c.FinalCluster.P50, c.FinalCluster.P90,
			c.WorstCluster.P10, c.WorstCluster.P50, c.WorstCluster.P90,
			c.FinalStaleP50, c.CompletionP50,
			c.RecoveredFraction, c.RecoveryRounds.P10, c.RecoveryRounds.P50, c.RecoveryRounds.P90)
		if adv {
			var e, h Band
			if c.Eclipse != nil {
				e = *c.Eclipse
			}
			if c.HonestCluster != nil {
				h = *c.HonestCluster
			}
			fmt.Fprintf(&b, ",%g,%g,%g,%g,%g,%g,%g",
				e.P10, e.P50, e.P90, bandP50(c.ColluderShare), h.P10, h.P50, h.P90)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BandsCSV renders one row per (cell, round) with the per-round band,
// gaining eclipse columns only for adversary sweeps.
func (a *Artifact) BandsCSV() string {
	adv := a.hasAdversary()
	var b strings.Builder
	b.WriteString("scenario,variant,round,cluster_p10,cluster_p50,cluster_p90,stale_p50,alive_p50")
	if adv {
		b.WriteString(",eclipse_p10,eclipse_p50,eclipse_p90")
	}
	b.WriteByte('\n')
	for i := range a.Cells {
		c := &a.Cells[i]
		for _, pt := range c.Series {
			fmt.Fprintf(&b, "%s,%s,%d,%g,%g,%g,%g,%g",
				c.Scenario, c.Variant, pt.Round,
				pt.Cluster.P10, pt.Cluster.P50, pt.Cluster.P90, pt.StaleP50, pt.AliveP50)
			if adv {
				var e Band
				if pt.Eclipse != nil {
					e = *pt.Eclipse
				}
				fmt.Fprintf(&b, ",%g,%g,%g", e.P10, e.P50, e.P90)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
