package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/exp"
	"repro/internal/obs"
)

// Options tunes one sweep execution.
type Options struct {
	// Workers is the outer parallelism: how many jobs execute at once
	// (0 = one per core). Each job's kernel runs at Workers=1 through the
	// shared experiment executor, so outer parallelism alone saturates the
	// machine without oversubscribing it. Results are identical for any
	// value.
	Workers int
	// StopAfter, when positive, stops dequeuing new jobs after that many
	// have been executed (cache hits do not count). The run returns
	// ErrStopped with the completed jobs persisted — the test hook that
	// simulates a killed sweep deterministically.
	StopAfter int
	// Ctx, when non-nil, winds the sweep down when cancelled: no new jobs
	// are dequeued, and — with CheckpointEveryRounds armed — every job in
	// flight checkpoints at its next round barrier and exits. This is the
	// one shutdown path; a CLI's signal handler and StopAfter both end up
	// here, so graceful shutdown means the same thing for both. The run
	// returns ErrStopped.
	Ctx context.Context
	// CheckpointEveryRounds, when positive, checkpoints every running job's
	// world state every N rounds into <run dir>/snapshots/<job key>/. A
	// restarted sweep then resumes each unfinished job from its latest valid
	// snapshot instead of from round zero — a killed grid loses at most N
	// rounds per in-flight job. Snapshots are dropped as soon as the job's
	// final result is persisted. Results are bit-identical with or without
	// checkpointing, resumed or straight through.
	CheckpointEveryRounds int
	// Log, when non-nil, receives one line per executed job, with running
	// progress (done/total, jobs/s, ETA) over the jobs the cache did not
	// already cover.
	Log io.Writer
	// Obs, when non-nil, publishes sweep progress (job counts, job wall
	// times) to the hub's registry so a live ops endpoint can watch the
	// sweep. The hub is host-level here: individual jobs stay unobserved
	// (each exp run would need its own hub).
	Obs *obs.Hub
}

// Stats reports how a sweep execution went.
type Stats struct {
	// Total is the grid size; Ran were executed this invocation; Cached
	// were reused from the run directory.
	Total, Ran, Cached int
	// Resumed counts the Ran jobs that continued from a mid-job snapshot
	// rather than starting at round zero.
	Resumed int
	// Workers is the resolved outer parallelism the execution actually
	// used (Options.Workers with 0 resolved to one per core).
	Workers int
}

func (s Stats) String() string {
	if s.Resumed > 0 {
		return fmt.Sprintf("jobs: %d total, %d ran (%d resumed mid-job), %d cached", s.Total, s.Ran, s.Resumed, s.Cached)
	}
	return fmt.Sprintf("jobs: %d total, %d ran, %d cached", s.Total, s.Ran, s.Cached)
}

// ErrStopped reports a sweep that hit Options.StopAfter before finishing.
var ErrStopped = errors.New("sweep: stopped before completing the grid")

// Execute runs every job of the grid, reusing the run directory's
// content-addressed cache, and returns the results in grid order. A job
// found in the cache is not re-run; a job executed is persisted before it
// counts as done, so killing the process at any point loses at most the
// jobs in flight and a rerun completes the remainder without recomputing.
func Execute(g *Grid, dir string, opts Options) ([]*JobResult, Stats, error) {
	cache, err := OpenCache(dir)
	if err != nil {
		return nil, Stats{}, err
	}
	cache.Log = opts.Log
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	stats := Stats{Total: len(g.Jobs)}
	results := make([]*JobResult, len(g.Jobs))

	// Resolve cache hits first, so StopAfter counts executed jobs only and
	// the progress log reflects real work.
	var missing []int
	for i, job := range g.Jobs {
		if jr, ok := cache.Load(job.Key); ok {
			results[i] = jr
			stats.Cached++
		} else {
			missing = append(missing, i)
		}
	}

	ex := exp.NewExecutor(opts.Workers)
	workers := ex.Workers()
	stats.Workers = workers

	var tracker *obs.JobTracker
	if opts.Log != nil || opts.Obs != nil {
		tracker = obs.NewJobTracker(len(missing))
	}
	var gRan, gCached *obs.Gauge
	var hJob *obs.Histogram
	if opts.Obs != nil {
		reg := opts.Obs.EnsureRegistry()
		reg.Gauge("nylon_sweep_jobs_total", "sweep grid size").Set(float64(stats.Total))
		gCached = reg.Gauge("nylon_sweep_jobs_cached", "jobs reused from the run directory cache")
		gCached.Set(float64(stats.Cached))
		gRan = reg.Gauge("nylon_sweep_jobs_ran", "jobs executed this invocation")
		hJob = reg.Histogram("nylon_sweep_job_seconds", "per-job wall time",
			[]float64{1, 2, 5, 10, 30, 60, 120, 300, 600})
	}

	jobs := make(chan int)
	var (
		mu       sync.Mutex
		started  int
		firstErr error
		stopped  bool
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				job := g.Jobs[i]
				t0 := time.Now()
				res, resumed, err := runJob(ctx, ex, cache, job, opts)
				var ie *exp.InterruptedError
				if errors.As(err, &ie) {
					// The shutdown context fired mid-job: the job checkpointed
					// at its barrier and its snapshot stays for the next
					// invocation to resume.
					mu.Lock()
					stopped = true
					mu.Unlock()
					if opts.Log != nil {
						fmt.Fprintf(opts.Log, "interrupted (%s, %s, seed %d) at round %d, snapshot kept\n",
							job.Scenario, job.Variant, job.Seed, ie.Round)
					}
					continue
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("sweep: job (%s, %s, seed %d): %w", job.Scenario, job.Variant, job.Seed, err)
					}
					mu.Unlock()
					continue
				}
				jr := resultOf(job, res)
				if err := cache.Store(jr); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				cache.DropSnapshots(job.Key)
				mu.Lock()
				results[i] = jr
				stats.Ran++
				if resumed {
					stats.Resumed++
				}
				mu.Unlock()
				if hJob != nil {
					hJob.Observe(0, time.Since(t0).Seconds())
				}
				var done int64
				var rate float64
				var eta time.Duration
				if tracker != nil {
					done, rate, eta = tracker.Done()
				}
				if gRan != nil {
					gRan.Set(float64(done))
				}
				if opts.Log != nil {
					verb := "ran"
					if resumed {
						verb = "resumed"
					}
					fmt.Fprintf(opts.Log, "%s (%s, %s, seed %d) → cluster %.1f%% [%d/%d, %.2f jobs/s, eta %s]\n",
						verb, job.Scenario, job.Variant, job.Seed, jr.BiggestCluster*100,
						done, tracker.Total(), rate, eta)
				}
			}
		}()
	}
	for _, i := range missing {
		mu.Lock()
		abort := firstErr != nil || stopped
		if ctx.Err() != nil {
			// The shared shutdown path: a cancelled context stops dequeuing
			// exactly like StopAfter, while jobs in flight checkpoint through
			// their CheckpointSpec.Stop watching the same context.
			stopped = true
			abort = true
		}
		if opts.StopAfter > 0 && started >= opts.StopAfter {
			stopped = true
			abort = true
		}
		started++
		mu.Unlock()
		if abort {
			break
		}
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	if firstErr != nil {
		return nil, stats, firstErr
	}
	if stopped {
		return nil, stats, ErrStopped
	}
	return results, stats, nil
}

// runJob executes one job through the pool. With checkpointing armed it first
// tries to resume the job's newest persisted snapshot, falling back through
// older ones — and finally to a fresh round-zero run — when a snapshot is
// rejected (corrupt, truncated, or of a different experiment point after a
// spec edit; every rejection is typed and logged, never trusted). The bool
// reports whether the returned result came from a resumed run.
func runJob(ctx context.Context, ex *exp.Executor, cache *Cache, job Job, opts Options) (exp.Result, bool, error) {
	cfg := job.Cfg
	var spec *exp.CheckpointSpec
	if opts.CheckpointEveryRounds > 0 {
		spec = &exp.CheckpointSpec{
			Dir:         cache.SnapshotDir(job.Key),
			EveryRounds: opts.CheckpointEveryRounds,
			Stop:        func() bool { return ctx.Err() != nil },
		}
		for _, path := range cache.Snapshots(job.Key) {
			res, err := ex.ResumeFile(path, exp.ResumeOptions{Checkpoint: spec, Config: &cfg})
			var ie *exp.InterruptedError
			if err == nil || errors.As(err, &ie) {
				return res, true, err
			}
			cache.logf("sweep: snapshot %s unusable (%v), falling back", path, err)
		}
	}
	cfg.Checkpoint = spec
	res, err := ex.Run(cfg)
	return res, false, err
}
