package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/trace"
)

// chromeEvent is one entry of the Chrome trace_event JSON array format
// (loadable in Perfetto and chrome://tracing). Only the fields the export
// uses are declared.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TsUs  int64          `json:"ts"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Process/thread layout of the export: pid 0 is the kernel swimlane (counter
// tracks fed by the window samples), pid 1 the protocol swimlanes (one lane
// per trace op, instant events from the bundle's trace tail).
const (
	chromeKernelPid   = 0
	chromeProtocolPid = 1
)

// WriteChromeTrace renders a bundle as Chrome trace_event JSON. Timestamps
// are the simulation's virtual clock in microseconds (virtual ms × 1000), so
// the timeline is deterministic — wall time never appears. The kernel lane
// plots per-window exec/barrier wall time and event counts as counter
// tracks; the protocol lanes show every event of the frozen trace tail as an
// instant event carrying its causal stamp in args.
func WriteChromeTrace(w io.Writer, b *Bundle) error {
	events := make([]chromeEvent, 0, len(b.Trace)+64)
	meta := func(pid, tid int, kind, name string) {
		events = append(events, chromeEvent{
			Name: kind, Phase: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromeKernelPid, 0, "process_name", "kernel")
	meta(chromeProtocolPid, 0, "process_name", "protocol")
	for op := trace.OpSend; int(op) < trace.NumOps(); op++ {
		meta(chromeProtocolPid, int(op), "thread_name", op.String())
	}

	if k := b.Kernel; k != nil {
		for _, s := range k.WindowSamples {
			ts := s.VirtualMs * 1000
			events = append(events,
				chromeEvent{Name: "kernel phase (ms)", Phase: "C", TsUs: ts, Pid: chromeKernelPid,
					Args: map[string]any{
						"exec":    float64(s.ExecNs) / 1e6,
						"barrier": float64(s.BarrierNs) / 1e6,
					}},
				chromeEvent{Name: "events per window", Phase: "C", TsUs: ts, Pid: chromeKernelPid,
					Args: map[string]any{"events": s.Events}},
			)
		}
	}

	for _, e := range b.Trace {
		events = append(events, chromeEvent{
			Name:  fmt.Sprintf("%s %s %v→%v", e.Op, wireKindName(e.Kind), e.Src, e.Dst),
			Phase: "i", TsUs: e.At * 1000,
			Pid: chromeProtocolPid, Tid: int(e.Op), Scope: "t",
			Args: map[string]any{
				"kind": wireKindName(e.Kind),
				"hop":  e.Hop,
				"src":  e.Src.String(),
				"dst":  e.Dst.String(),
				"oseq": e.OriginSeq,
				"path": fmt.Sprintf("%016x", e.Path),
				"from": e.From.String(),
				"to":   e.To.String(),
				"size": e.Size,
			},
		})
	}

	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// wireKindName names a wire.Message kind without importing the wire package
// (obs sits below it in the dependency order). The numbering is pinned by
// the wire codec and cross-checked by TestChromeKindNames.
func wireKindName(k uint8) string {
	switch k {
	case 1:
		return "REQUEST"
	case 2:
		return "RESPONSE"
	case 3:
		return "OPEN_HOLE"
	case 4:
		return "PING"
	case 5:
		return "PONG"
	}
	return fmt.Sprintf("kind(%d)", k)
}
