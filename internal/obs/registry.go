// Package obs is the observability layer of the reproduction: a per-shard
// metrics registry, incremental overlay-health accumulators fed by view
// mutation hooks, the kernel's phase-timing probe, and a live HTTP ops
// endpoint serving Prometheus text, expvar-style JSON, and pprof.
//
// Everything here obeys one contract (DESIGN.md §9): observing a simulation
// never changes it. Instrumentation writes are one-way — counters, gauges
// and tallies absorb values from the run, and nothing in the simulation ever
// reads them back — so enabling metrics is bit-identity-safe for any worker
// and shard count. Hot-path writes (Counter.Add, Gauge.Set,
// Histogram.Observe, the health hooks) perform no allocation; they are
// atomic because the HTTP goroutine reads mid-run, but each shard writes its
// own cache-line-padded slot, so the atomics are uncontended.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

const cacheLine = 64

// slot64 is one shard's private counter cell, padded so neighbouring shards
// never share a cache line.
type slot64 struct {
	v atomic.Uint64
	_ [cacheLine - 8]byte
}

// Counter is a monotone per-shard counter. Shards add to their own slot;
// Total merges at read time (order-independent sums, so the merged value is
// deterministic once the run has quiesced).
type Counter struct {
	name, help string
	slots      []slot64
}

// Add adds d to the shard's slot.
func (c *Counter) Add(shard int, d uint64) { c.slots[shard].v.Add(d) }

// Inc adds one to the shard's slot.
func (c *Counter) Inc(shard int) { c.slots[shard].v.Add(1) }

// Total merges every shard's slot.
func (c *Counter) Total() uint64 {
	var t uint64
	for i := range c.slots {
		t += c.slots[i].v.Load()
	}
	return t
}

// Gauge is a float64 gauge with a single writer at a time (barrier context
// or a CLI's report loop); readers may load concurrently.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value loads the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket per-shard histogram. Bounds are upper bucket
// edges in ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	name, help string
	bounds     []float64
	shards     []histShard
}

type histShard struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-accumulated
	buckets []atomic.Uint64
	_       [cacheLine - 40]byte
}

// Observe records v into the shard's slot.
func (h *Histogram) Observe(shard int, v float64) {
	s := &h.shards[shard]
	s.count.Add(1)
	addFloat(&s.sum, v)
	for i, b := range h.bounds {
		if v <= b {
			s.buckets[i].Add(1)
			return
		}
	}
	s.buckets[len(h.bounds)].Add(1)
}

// Count merges the observation count across shards.
func (h *Histogram) Count() uint64 {
	var t uint64
	for i := range h.shards {
		t += h.shards[i].count.Load()
	}
	return t
}

// Sum merges the observed sum across shards.
func (h *Histogram) Sum() float64 {
	var t float64
	for i := range h.shards {
		t += math.Float64frombits(h.shards[i].sum.Load())
	}
	return t
}

// bucketTotals merges per-bucket counts across shards (non-cumulative).
func (h *Histogram) bucketTotals() []uint64 {
	out := make([]uint64, len(h.bounds)+1)
	for i := range h.shards {
		for j := range out {
			out[j] += h.shards[i].buckets[j].Load()
		}
	}
	return out
}

// addFloat accumulates a float64 into atomic bits (uncontended per shard, so
// the CAS loop almost never retries).
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Registry holds a run's metrics, keyed by Prometheus-style names. Metric
// registration takes a lock and may allocate; it happens at setup or barrier
// context, never on the event hot path. Lookups are idempotent: asking for
// an existing name returns the existing metric (and panics if the kind
// differs — that is a programming error, not a runtime condition).
type Registry struct {
	shards int
	mu     sync.Mutex
	byName map[string]any
	order  []string
}

// NewRegistry creates a registry whose per-shard metrics have the given
// number of slots. Hosts with no shard structure pass 1.
func NewRegistry(shards int) *Registry {
	if shards < 1 {
		panic("obs: NewRegistry needs at least one shard")
	}
	return &Registry{shards: shards, byName: make(map[string]any)}
}

// Shards returns the slot count per-shard metrics are created with.
func (r *Registry) Shards() int { return r.shards }

func checkName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

func (r *Registry) lookup(name string, make func() any) any {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		return m
	}
	m := make()
	r.byName[name] = m
	r.order = append(r.order, name)
	return m
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, func() any {
		return &Counter{name: name, help: help, slots: make([]slot64, r.shards)}
	})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, func() any { return &Gauge{name: name, help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return g
}

// Histogram returns the named histogram, creating it on first use with the
// given ascending bucket upper bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
	}
	m := r.lookup(name, func() any {
		h := &Histogram{name: name, help: help, bounds: append([]float64(nil), bounds...)}
		h.shards = make([]histShard, r.shards)
		for i := range h.shards {
			h.shards[i].buckets = make([]atomic.Uint64, len(bounds)+1)
		}
		return h
	})
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as %T", name, m))
	}
	return h
}

// snapshot returns the registered metrics in registration order.
func (r *Registry) snapshot() []any {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]any, len(r.order))
	for i, name := range r.order {
		out[i] = r.byName[name]
	}
	return out
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, shards merged at read time.
func (r *Registry) WritePrometheus(w io.Writer) {
	for _, m := range r.snapshot() {
		switch m := m.(type) {
		case *Counter:
			promHeader(w, m.name, m.help, "counter")
			fmt.Fprintf(w, "%s %d\n", m.name, m.Total())
		case *Gauge:
			promHeader(w, m.name, m.help, "gauge")
			fmt.Fprintf(w, "%s %g\n", m.name, m.Value())
		case *Histogram:
			promHeader(w, m.name, m.help, "histogram")
			var cum uint64
			totals := m.bucketTotals()
			for i, b := range m.bounds {
				cum += totals[i]
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, fmt.Sprintf("%g", b), cum)
			}
			cum += totals[len(m.bounds)]
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, cum)
			fmt.Fprintf(w, "%s_sum %g\n", m.name, m.Sum())
			fmt.Fprintf(w, "%s_count %d\n", m.name, m.Count())
		}
	}
}

func promHeader(w io.Writer, name, help, kind string) {
	if help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
}

// JSONValues returns the merged metric values as a name → value map:
// counters as integers, gauges as floats, histograms as {count, sum,
// buckets} objects.
func (r *Registry) JSONValues() map[string]any {
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		switch m := m.(type) {
		case *Counter:
			out[m.name] = m.Total()
		case *Gauge:
			out[m.name] = m.Value()
		case *Histogram:
			buckets := make(map[string]uint64, len(m.bounds)+1)
			totals := m.bucketTotals()
			for i, b := range m.bounds {
				buckets[fmt.Sprintf("%g", b)] = totals[i]
			}
			buckets["+Inf"] = totals[len(m.bounds)]
			out[m.name] = map[string]any{"count": m.Count(), "sum": m.Sum(), "buckets": buckets}
		}
	}
	return out
}

// WriteJSON renders JSONValues as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.JSONValues())
}
