package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

func TestFlightRecorderStall(t *testing.T) {
	rec := NewFlightRecorder(Triggers{StallRounds: 3})
	if got := rec.Triggers().StallBelow; got != 0.95 {
		t.Fatalf("StallBelow default %v, want 0.95", got)
	}
	obs := func(round int, cluster float64) []Trigger {
		return rec.Observe(Observation{Round: round, Cluster: cluster})
	}
	if f := obs(1, 0.5); f != nil {
		t.Fatalf("fired after 1 low sample: %v", f)
	}
	if f := obs(2, 0.5); f != nil {
		t.Fatalf("fired after 2 low samples: %v", f)
	}
	// A healthy sample resets the streak.
	if f := obs(3, 0.99); f != nil {
		t.Fatalf("fired on healthy sample: %v", f)
	}
	obs(4, 0.5)
	obs(5, 0.5)
	f := obs(6, 0.5)
	if len(f) != 1 || f[0].Name != TriggerStall || f[0].Round != 6 {
		t.Fatalf("want stall at round 6, got %v", f)
	}
	// Fires at most once per run.
	if f := obs(7, 0.5); f != nil {
		t.Fatalf("stall fired twice: %v", f)
	}
}

func TestFlightRecorderEclipseCollapseLeak(t *testing.T) {
	rec := NewFlightRecorder(Triggers{EclipseAbove: 0.3, ClusterBelow: 0.6, LeakCheck: true})
	f := rec.Observe(Observation{Round: 9, Cluster: 0.5, Eclipse: 0.35, LeakErr: errors.New("imbalance")})
	if len(f) != 3 {
		t.Fatalf("want 3 triggers, got %v", f)
	}
	// Fixed evaluation order: eclipse, collapse, leak (stall disarmed).
	for i, name := range []string{TriggerEclipse, TriggerCollapse, TriggerLeak} {
		if f[i].Name != name {
			t.Fatalf("trigger %d: want %s, got %s", i, name, f[i].Name)
		}
	}
	if f := rec.Observe(Observation{Round: 10, Cluster: 0.1, Eclipse: 0.9, LeakErr: errors.New("x")}); f != nil {
		t.Fatalf("triggers refired: %v", f)
	}
}

func TestTriggersZero(t *testing.T) {
	if !(Triggers{}).Zero() {
		t.Error("empty Triggers not Zero")
	}
	for _, trig := range []Triggers{
		{StallRounds: 1}, {EclipseAbove: 0.1}, {ClusterBelow: 0.1}, {LeakCheck: true},
	} {
		if trig.Zero() {
			t.Errorf("%+v reported Zero", trig)
		}
	}
}

func testBundle() *Bundle {
	return &Bundle{
		Schema:  BundleSchema,
		Trigger: Trigger{Name: TriggerEclipse, Round: 42, Detail: "test"},
		Run:     RunDescriptor{Protocol: "nylon", Seed: 7, N: 100, Shards: 8, Workers: 2},
		Drops:   map[string]uint64{"nylon_net_drops_nat_total": 3},
		Trace: []trace.Event{
			{At: 100, Op: trace.OpSend, Kind: 1, Src: 3, Dst: 9, OriginSeq: 1, Path: trace.PathRoot(3, 1)},
			{At: 150, Op: trace.OpDeliver, Kind: 1, Src: 3, Dst: 9, OriginSeq: 1, Path: trace.PathRoot(3, 1)},
		},
	}
}

func TestBundleRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bundle.json")
	b := testBundle()
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trigger != b.Trigger || got.Run.Protocol != "nylon" || len(got.Trace) != 2 {
		t.Fatalf("round trip mangled bundle: %+v", got)
	}
	if got.Trace[0] != b.Trace[0] {
		t.Fatalf("trace event round trip: %v vs %v", got.Trace[0], b.Trace[0])
	}

	// Unknown schemas are rejected, not misparsed.
	bad := testBundle()
	bad.Schema = "nylon-flight-bundle/v999"
	badPath := filepath.Join(dir, "bad.json")
	if err := bad.Write(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBundle(badPath); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	b := testBundle()
	b.Kernel = &KernelSnapshot{
		Events: 10, ExecNs: 5e6, BarrierNs: 1e6, Windows: 2, VirtualMs: 200,
		WindowSamples: []sim.WindowSample{
			{VirtualMs: 50, ExecNs: 2e6, BarrierNs: 4e5, Events: 5},
			{VirtualMs: 100, ExecNs: 3e6, BarrierNs: 6e5, Events: 5},
		},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome export is not a JSON array: %v", err)
	}
	var instants, metas int
	for _, e := range events {
		switch e["ph"] {
		case "i":
			instants++
			if e["ts"].(float64) == 0 {
				t.Error("instant event with zero timestamp")
			}
		case "M":
			metas++
		}
	}
	if instants != len(b.Trace) {
		t.Errorf("%d instant events for %d trace events", instants, len(b.Trace))
	}
	if metas == 0 {
		t.Error("no metadata (process/thread name) events")
	}
}

// TestChromeKindNames pins the obs-local wire kind names against the wire
// package itself (obs cannot import wire in non-test code: it sits below it
// in the dependency order).
func TestChromeKindNames(t *testing.T) {
	for k := wire.KindRequest; k <= wire.KindPong; k++ {
		if got, want := wireKindName(uint8(k)), k.String(); got != want {
			t.Errorf("wireKindName(%d) = %q, want %q", k, got, want)
		}
	}
}
