package obs

import (
	"sync"
	"testing"

	"repro/internal/ident"
	"repro/internal/view"
)

func desc(id int) view.Descriptor {
	return view.Descriptor{ID: ident.NodeID(id)}
}

func TestHealthTallies(t *testing.T) {
	h := NewHealth(2, 4)
	for id := 1; id <= 4; id++ {
		h.AddPeer(ident.NodeID(id))
	}
	o0, o1 := h.Observer(0), h.Observer(1)

	// Peer 1 (shard 0) views {2, 3}; peer 2 (shard 1) views {3}.
	o0.ViewEntryAdded(1, desc(2))
	o0.ViewEntryAdded(1, desc(3))
	o1.ViewEntryAdded(2, desc(3))

	if h.Entries() != 3 || h.ShardEntries(0) != 2 || h.ShardEntries(1) != 1 {
		t.Fatalf("entries = %d (shards %d, %d), want 3 (2, 1)", h.Entries(), h.ShardEntries(0), h.ShardEntries(1))
	}
	if h.Indegree(3) != 2 || h.Indegree(2) != 1 || h.Indegree(4) != 0 {
		t.Fatalf("indegrees = %d,%d,%d, want 2,1,0", h.Indegree(3), h.Indegree(2), h.Indegree(4))
	}
	maxDeg, isolated := h.IndegreeStats()
	if maxDeg != 2 || isolated != 2 { // peers 1 and 4 unreferenced
		t.Fatalf("IndegreeStats = (%d, %d), want (2, 2)", maxDeg, isolated)
	}

	// Kill peer 3 (its own view holds 1 entry): its indegree moves to the
	// dead-reference total, its view freezes into DeadEntries.
	o1.ViewEntryAdded(3, desc(1))
	h.Kill(3, 1)
	if h.Alive() != 3 || h.Total() != 4 {
		t.Fatalf("alive/total = %d/%d, want 3/4", h.Alive(), h.Total())
	}
	if h.DeadRefs() != 2 {
		t.Fatalf("DeadRefs = %d, want 2", h.DeadRefs())
	}
	if h.DeadEntries() != 1 || h.AliveEntries() != 3 {
		t.Fatalf("DeadEntries/AliveEntries = %d/%d, want 1/3", h.DeadEntries(), h.AliveEntries())
	}

	// Referencing a dead peer counts immediately; dropping the reference
	// uncounts it.
	o0.ViewEntryAdded(4, desc(3))
	if h.DeadRefs() != 3 {
		t.Fatalf("DeadRefs after add = %d, want 3", h.DeadRefs())
	}
	o0.ViewEntryRemoved(1, desc(3))
	if h.DeadRefs() != 2 {
		t.Fatalf("DeadRefs after remove = %d, want 2", h.DeadRefs())
	}

	// Killing twice (or an unknown ID) is a no-op.
	h.Kill(3, 99)
	h.Kill(0, 1)
	if h.Alive() != 3 || h.DeadEntries() != 1 {
		t.Fatalf("double-kill changed state: alive %d, deadEntries %d", h.Alive(), h.DeadEntries())
	}
}

func TestHealthGrowsPastCapacity(t *testing.T) {
	h := NewHealth(1, 2)
	for id := 1; id <= 40; id++ {
		h.AddPeer(ident.NodeID(id))
	}
	o := h.Observer(0)
	o.ViewEntryAdded(1, desc(40))
	if h.Indegree(40) != 1 {
		t.Fatalf("Indegree(40) = %d after growth, want 1", h.Indegree(40))
	}
	if h.Total() != 40 {
		t.Fatalf("Total = %d, want 40", h.Total())
	}
}

// TestHealthConcurrentHooks hammers the hooks from parallel goroutines (one
// per shard, as the kernel would) so the race detector can vet the
// accumulators' synchronization story.
func TestHealthConcurrentHooks(t *testing.T) {
	const shards, peers, rounds = 4, 64, 500
	h := NewHealth(shards, peers)
	for id := 1; id <= peers; id++ {
		h.AddPeer(ident.NodeID(id))
	}
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			o := h.Observer(s)
			for i := 0; i < rounds; i++ {
				target := desc(1 + (s*rounds+i)%peers)
				o.ViewEntryAdded(ident.NodeID(s+1), target)
				o.ViewEntryRemoved(ident.NodeID(s+1), target)
			}
		}(s)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Concurrent scrape, as the HTTP handler would.
		for i := 0; i < 100; i++ {
			_ = h.Entries()
			_ = h.DeadRefs()
			h.IndegreeStats()
		}
	}()
	wg.Wait()
	<-done
	if h.Entries() != 0 {
		t.Fatalf("Entries = %d after balanced add/remove, want 0", h.Entries())
	}
	if maxDeg, _ := h.IndegreeStats(); maxDeg != 0 {
		t.Fatalf("max indegree = %d after balanced add/remove, want 0", maxDeg)
	}
}

// TestHookAllocs pins the view-mutation hooks at zero allocations.
func TestHookAllocs(t *testing.T) {
	h := NewHealth(2, 16)
	for id := 1; id <= 16; id++ {
		h.AddPeer(ident.NodeID(id))
	}
	o := h.Observer(1)
	d := desc(7)
	if n := testing.AllocsPerRun(1000, func() {
		o.ViewEntryAdded(1, d)
		o.ViewEntryRemoved(1, d)
	}); n != 0 {
		t.Errorf("hooks allocate %v per add/remove pair, want 0", n)
	}
}
