package obs

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"time"
)

// StartProgress spawns a goroutine that writes one status line to w every
// `every` interval: simulated round, alive population, a rolling events/s
// over the interval, and the heap size. It reads only atomics published by
// the probe and the accumulators, so it never perturbs the run. The returned
// stop function halts the reporter and waits for it to exit.
func StartProgress(w io.Writer, hub *Hub, every time.Duration) (stop func()) {
	if every <= 0 {
		every = 10 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		var lastEvents uint64
		lastAt := time.Now()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
			}
			t := hub.Timing()
			if t == nil {
				continue // run not bound yet
			}
			now := time.Now()
			ev := t.Events()
			rate := EventsPerSec(ev-lastEvents, now.Sub(lastAt))
			lastEvents, lastAt = ev, now
			info := hub.Info()
			round := int64(-1)
			if info.PeriodMs > 0 {
				round = t.VirtualMs() / info.PeriodMs
			}
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			line := fmt.Sprintf("progress: t=%dms", t.VirtualMs())
			if round >= 0 {
				line += fmt.Sprintf(" round %d/%d", round, info.Rounds)
			}
			if h := hub.Health(); h != nil {
				line += fmt.Sprintf(" alive %d/%d", h.Alive(), h.Total())
			}
			line += fmt.Sprintf(" | %d events (%.0f/s) | heap %dMB\n",
				ev, rate, ms.HeapAlloc>>20)
			fmt.Fprint(w, line)
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// JobTracker tracks completion of a known-size batch of jobs (the sweep
// grid): done count, rolling jobs/s, and a naive linear ETA.
type JobTracker struct {
	start time.Time
	total int64
	done  atomic.Int64
}

// NewJobTracker starts tracking a batch of total jobs.
func NewJobTracker(total int) *JobTracker {
	return &JobTracker{start: time.Now(), total: int64(total)}
}

// Total returns the batch size.
func (t *JobTracker) Total() int64 { return t.total }

// Done records one finished job and returns the completion count, the
// overall jobs/s so far, and the estimated time remaining.
func (t *JobTracker) Done() (done int64, rate float64, eta time.Duration) {
	done = t.done.Add(1)
	elapsed := time.Since(t.start)
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}
	if rate > 0 && done < t.total {
		eta = time.Duration(float64(t.total-done) / rate * float64(time.Second)).Round(time.Second)
	}
	return done, rate, eta
}
