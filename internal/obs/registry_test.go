package obs

import (
	"strings"
	"testing"
)

func TestCounterMergesShards(t *testing.T) {
	r := NewRegistry(4)
	c := r.Counter("test_ops_total", "ops")
	c.Add(0, 5)
	c.Inc(1)
	c.Inc(1)
	c.Add(3, 10)
	if got := c.Total(); got != 17 {
		t.Fatalf("Total = %d, want 17", got)
	}
}

func TestGaugeRoundTrips(t *testing.T) {
	r := NewRegistry(1)
	g := r.Gauge("test_level", "level")
	for _, v := range []float64{0, 1.5, -3.25, 1e12} {
		g.Set(v)
		if got := g.Value(); got != v {
			t.Fatalf("Value = %v, want %v", got, v)
		}
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry(2)
	h := r.Histogram("test_latency_seconds", "latency", []float64{1, 10})
	h.Observe(0, 0.5)  // bucket le=1
	h.Observe(1, 5)    // bucket le=10
	h.Observe(0, 100)  // +Inf
	h.Observe(1, 0.25) // bucket le=1
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got := h.Sum(); got != 105.75 {
		t.Fatalf("Sum = %v, want 105.75", got)
	}
	if got := h.bucketTotals(); got[0] != 2 || got[1] != 1 || got[2] != 1 {
		t.Fatalf("bucketTotals = %v, want [2 1 1]", got)
	}
}

func TestLookupIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry(2)
	a := r.Counter("test_x_total", "x")
	b := r.Counter("test_x_total", "x")
	if a != b {
		t.Fatal("second Counter lookup returned a different metric")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Gauge on a counter name did not panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

func TestCheckNameRejectsInvalid(t *testing.T) {
	for _, bad := range []string{"", "9leading", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q did not panic", bad)
				}
			}()
			checkName(bad)
		}()
	}
	for _, good := range []string{"nylon_net_drops_nat_total", "a:b", "x9"} {
		checkName(good)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(2)
	r.Counter("test_ops_total", "operations").Add(1, 3)
	r.Gauge("test_level", "level").Set(2.5)
	h := r.Histogram("test_dur_seconds", "duration", []float64{1})
	h.Observe(0, 0.5)
	h.Observe(0, 2)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total operations",
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"test_level 2.5",
		`test_dur_seconds_bucket{le="1"} 1`,
		`test_dur_seconds_bucket{le="+Inf"} 2`,
		"test_dur_seconds_sum 2.5",
		"test_dur_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestHotPathAllocs pins the instrumentation hot path at zero allocations:
// a counter bump, a gauge store, or a histogram observation inside a shard
// event must never touch the heap.
func TestHotPathAllocs(t *testing.T) {
	r := NewRegistry(8)
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_dur_seconds", "duration", []float64{1, 10, 100})
	if n := testing.AllocsPerRun(1000, func() { c.Add(3, 7) }); n != 0 {
		t.Errorf("Counter.Add allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1.5) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(5, 42) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op, want 0", n)
	}
}
