package obs

import (
	"sync/atomic"

	"repro/internal/ident"
	"repro/internal/view"
)

// Health maintains the overlay-health accumulators incrementally: view
// occupancy per shard, a per-peer indegree tally, alive/dead population
// counts, and dead-reference totals. View-mutation hooks (view.Observer)
// feed it from the shard goroutines, so the periodic series and the live
// endpoint no longer need full-network EntriesInto sweeps to know how full
// and how stale-leaning views are.
//
// Concurrency: hooks fire mid-window on shard goroutines and only touch the
// firing shard's padded occupancy slot plus target-indexed atomics, so
// shards never contend. Population changes (AddPeer, Kill) happen at
// barriers, where shards are quiesced — growing the ID-indexed arrays swaps
// in a fresh copy, so a concurrent HTTP reader sees either the old or the
// new snapshot, never a torn one. All counters are write-only from the
// simulation's perspective: nothing here ever feeds back into it.
//
// Semantics: a departed peer's view freezes at death (dead peers neither
// tick nor receive), so its entries stay in the occupancy and indegree
// tallies; DeadEntries tracks how many of the total are frozen that way,
// and DeadRefs how many entries (in any view) point at departed peers —
// the incremental upper layer of the paper's stale-reference count. Exact
// staleness additionally depends on NAT state and on the viewing peer (see
// DESIGN.md §9), which is why the sampled series keeps its graph walk.
type Health struct {
	shards []healthShard
	state  atomic.Pointer[healthState]

	alive       atomic.Int64
	total       atomic.Int64
	deadRefs    atomic.Int64
	deadEntries atomic.Int64

	obs []ShardObserver
}

type healthShard struct {
	entries atomic.Int64
	_       [cacheLine - 8]byte
}

// healthState holds the NodeID-indexed arrays, replaced wholesale when the
// population outgrows them (barrier context only).
type healthState struct {
	refs []atomic.Int32 // refs[id]: how many views reference peer id
	dead []atomic.Bool  // dead[id]: the peer departed
}

// ShardObserver is one shard's view.Observer handle into a Health.
type ShardObserver struct {
	h     *Health
	shard int
}

var _ view.Observer = (*ShardObserver)(nil)

// NewHealth creates the accumulators for a world of the given shard count,
// sized for capacity peers (growing as the population does).
func NewHealth(shards, capacity int) *Health {
	if shards < 1 {
		panic("obs: NewHealth needs at least one shard")
	}
	if capacity < 1 {
		capacity = 1
	}
	h := &Health{shards: make([]healthShard, shards)}
	h.state.Store(&healthState{
		refs: make([]atomic.Int32, capacity+1),
		dead: make([]atomic.Bool, capacity+1),
	})
	h.obs = make([]ShardObserver, shards)
	for i := range h.obs {
		h.obs[i] = ShardObserver{h: h, shard: i}
	}
	return h
}

// Observer returns the hook handle views owned by the given shard attach.
func (h *Health) Observer(shard int) *ShardObserver { return &h.obs[shard] }

// AddPeer registers a peer (barrier context), growing the ID-indexed arrays
// as needed.
func (h *Health) AddPeer(id ident.NodeID) {
	st := h.state.Load()
	if int(id) >= len(st.refs) {
		n := 2 * len(st.refs)
		if n <= int(id) {
			n = int(id) + 1
		}
		ns := &healthState{refs: make([]atomic.Int32, n), dead: make([]atomic.Bool, n)}
		for i := range st.refs {
			ns.refs[i].Store(st.refs[i].Load())
			ns.dead[i].Store(st.dead[i].Load())
		}
		h.state.Store(ns)
	}
	h.alive.Add(1)
	h.total.Add(1)
}

// Kill marks a peer departed (barrier context): its indegree tally moves to
// the dead-reference total and its frozen view entries to DeadEntries.
// Killing an unknown or already-dead peer is a no-op.
func (h *Health) Kill(id ident.NodeID, viewLen int) {
	st := h.state.Load()
	i := int(id)
	if i <= 0 || i >= len(st.dead) || st.dead[i].Load() {
		return
	}
	st.dead[i].Store(true)
	h.alive.Add(-1)
	h.deadRefs.Add(int64(st.refs[i].Load()))
	h.deadEntries.Add(int64(viewLen))
}

// ViewEntryAdded implements view.Observer.
func (o *ShardObserver) ViewEntryAdded(owner ident.NodeID, d view.Descriptor) {
	h := o.h
	h.shards[o.shard].entries.Add(1)
	st := h.state.Load()
	if i := int(d.ID); i > 0 && i < len(st.refs) {
		st.refs[i].Add(1)
		if st.dead[i].Load() {
			h.deadRefs.Add(1)
		}
	}
}

// ViewEntryRemoved implements view.Observer.
func (o *ShardObserver) ViewEntryRemoved(owner ident.NodeID, d view.Descriptor) {
	h := o.h
	h.shards[o.shard].entries.Add(-1)
	st := h.state.Load()
	if i := int(d.ID); i > 0 && i < len(st.refs) {
		st.refs[i].Add(-1)
		if st.dead[i].Load() {
			h.deadRefs.Add(-1)
		}
	}
}

// Alive returns the alive population.
func (h *Health) Alive() int64 { return h.alive.Load() }

// Total returns the total population ever attached.
func (h *Health) Total() int64 { return h.total.Load() }

// Entries returns view occupancy across every view, alive and dead owners
// alike (dead views are frozen, not cleared).
func (h *Health) Entries() int64 {
	var t int64
	for i := range h.shards {
		t += h.shards[i].entries.Load()
	}
	return t
}

// ShardEntries returns shard i's share of the occupancy.
func (h *Health) ShardEntries(i int) int64 { return h.shards[i].entries.Load() }

// DeadEntries returns the entries frozen inside departed peers' views.
func (h *Health) DeadEntries() int64 { return h.deadEntries.Load() }

// AliveEntries returns the occupancy of alive peers' views.
func (h *Health) AliveEntries() int64 { return h.Entries() - h.DeadEntries() }

// DeadRefs returns how many view entries (in any view) reference departed
// peers.
func (h *Health) DeadRefs() int64 { return h.deadRefs.Load() }

// Indegree returns the current reference tally for one peer.
func (h *Health) Indegree(id ident.NodeID) int {
	st := h.state.Load()
	if i := int(id); i > 0 && i < len(st.refs) {
		return int(st.refs[i].Load())
	}
	return 0
}

// IndegreeStats scans the tallies (O(population), scrape-time only) and
// returns the maximum indegree and how many alive peers no view references
// — isolated peers are the canary of partition and eclipse trouble.
func (h *Health) IndegreeStats() (maxDeg int, isolated int) {
	st := h.state.Load()
	// Peers occupy the dense ID range 1..Total; the arrays may be larger
	// after growth doubling.
	top := int(h.total.Load())
	if top >= len(st.refs) {
		top = len(st.refs) - 1
	}
	for i := 1; i <= top; i++ {
		d := int(st.refs[i].Load())
		if d > maxDeg {
			maxDeg = d
		}
		if d == 0 && !st.dead[i].Load() {
			isolated++
		}
	}
	return maxDeg, isolated
}
