package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"repro/internal/trace"
)

// Server is the live ops endpoint: Prometheus text on /metrics, an
// expvar-style JSON dump on /debug/vars, pprof under /debug/pprof/, and a
// trivial /healthz. It reads only atomics (registry slots, timing probe,
// health accumulators), so scraping a run in flight never perturbs it.
type Server struct {
	Addr string // the bound address, resolved from the requested one (":0" works)
	ln   net.Listener
	srv  *http.Server
}

// Serve binds addr and serves the hub's ops endpoint in the background.
func Serve(addr string, hub *Hub) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{
		Addr: ln.Addr().String(),
		ln:   ln,
		srv:  &http.Server{Handler: NewMux(hub)},
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// NewMux builds the ops endpoint's handler tree. Exposed separately so hosts
// with their own HTTP server can mount it.
func NewMux(hub *Hub) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, hub)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(MetricsJSON(hub))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		writeTraceTail(w, r, hub)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// writeTraceTail serves /debug/trace: a bounded JSON tail of the merged
// event trace (?n=, default 256, capped at 4096). Mid-run it posts a tap
// request answered at the next kernel barrier — the only context allowed to
// read the rings — so a scrape never races the shard writers; once the run
// has finished (Hub.MarkSimDone) it reads the rings directly. 404 when
// tracing is off, 503 when no barrier serves the tap in time.
func writeTraceTail(w http.ResponseWriter, r *http.Request, hub *Hub) {
	ts := hub.Trace()
	if ts == nil {
		http.Error(w, "tracing is off (run with -trace)", http.StatusNotFound)
		return
	}
	n := 256
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 1 {
			http.Error(w, "invalid n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if n > 4096 {
		n = 4096
	}
	var events []trace.Event
	if hub.SimDone() {
		events = ts.MergedTail(n)
	} else {
		var ok bool
		events, ok = ts.RequestTail(n, 2*time.Second)
		if !ok {
			http.Error(w, "trace tap not served (no kernel barrier within 2s)", http.StatusServiceUnavailable)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	_ = enc.Encode(map[string]any{
		"total":  ts.Total(),
		"events": events,
	})
}

// writePrometheus emits the registry's series followed by the synthesized
// kernel, health, and process series.
func writePrometheus(w io.Writer, hub *Hub) {
	if reg := hub.Registry(); reg != nil {
		reg.WritePrometheus(w)
	}
	if t := hub.Timing(); t != nil {
		promHeader(w, "nylon_kernel_events_total", "events processed as of the latest barrier", "counter")
		fmt.Fprintf(w, "nylon_kernel_events_total %d\n", t.Events())
		promHeader(w, "nylon_kernel_exec_seconds_total", "shard execute-phase wall time (summed across shards)", "counter")
		fmt.Fprintf(w, "nylon_kernel_exec_seconds_total %g\n", float64(t.ExecNs())/1e9)
		promHeader(w, "nylon_kernel_barrier_seconds_total", "single-threaded barrier wall time", "counter")
		fmt.Fprintf(w, "nylon_kernel_barrier_seconds_total %g\n", float64(t.BarrierNs())/1e9)
		promHeader(w, "nylon_kernel_windows_total", "lookahead windows executed", "counter")
		fmt.Fprintf(w, "nylon_kernel_windows_total %d\n", t.Windows())
		promHeader(w, "nylon_kernel_pending_events", "kernel queue depth at the latest barrier", "gauge")
		fmt.Fprintf(w, "nylon_kernel_pending_events %d\n", t.PendingEvents())
		promHeader(w, "nylon_kernel_virtual_time_ms", "virtual clock at the latest barrier", "gauge")
		fmt.Fprintf(w, "nylon_kernel_virtual_time_ms %d\n", t.VirtualMs())
		promHeader(w, "nylon_kernel_shard_exec_seconds_total", "per-shard execute-phase wall time", "counter")
		for i := 0; i < t.Shards(); i++ {
			fmt.Fprintf(w, "nylon_kernel_shard_exec_seconds_total{shard=\"%d\"} %g\n", i, float64(t.ShardExecNs(i))/1e9)
		}
		promHeader(w, "nylon_kernel_shard_events_total", "per-shard events executed", "counter")
		for i := 0; i < t.Shards(); i++ {
			fmt.Fprintf(w, "nylon_kernel_shard_events_total{shard=\"%d\"} %d\n", i, t.ShardEvents(i))
		}
	}
	if h := hub.Health(); h != nil {
		maxDeg, isolated := h.IndegreeStats()
		promHeader(w, "nylon_health_alive_peers", "alive peer population", "gauge")
		fmt.Fprintf(w, "nylon_health_alive_peers %d\n", h.Alive())
		promHeader(w, "nylon_health_total_peers", "total peers ever attached", "gauge")
		fmt.Fprintf(w, "nylon_health_total_peers %d\n", h.Total())
		promHeader(w, "nylon_health_view_entries", "view occupancy across all views (dead views freeze)", "gauge")
		fmt.Fprintf(w, "nylon_health_view_entries %d\n", h.Entries())
		promHeader(w, "nylon_health_view_entries_alive", "view occupancy of alive peers' views", "gauge")
		fmt.Fprintf(w, "nylon_health_view_entries_alive %d\n", h.AliveEntries())
		promHeader(w, "nylon_health_dead_refs", "view entries referencing departed peers", "gauge")
		fmt.Fprintf(w, "nylon_health_dead_refs %d\n", h.DeadRefs())
		promHeader(w, "nylon_health_indegree_max", "maximum indegree across peers", "gauge")
		fmt.Fprintf(w, "nylon_health_indegree_max %d\n", maxDeg)
		promHeader(w, "nylon_health_isolated_peers", "alive peers no view references", "gauge")
		fmt.Fprintf(w, "nylon_health_isolated_peers %d\n", isolated)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	promHeader(w, "nylon_heap_alloc_bytes", "process heap in use", "gauge")
	fmt.Fprintf(w, "nylon_heap_alloc_bytes %d\n", ms.HeapAlloc)
	promHeader(w, "nylon_goroutines", "live goroutines", "gauge")
	fmt.Fprintf(w, "nylon_goroutines %d\n", runtime.NumGoroutine())
	promHeader(w, "nylon_uptime_seconds", "seconds since the hub was created", "gauge")
	fmt.Fprintf(w, "nylon_uptime_seconds %g\n", hub.Uptime().Seconds())
}

// WriteMetricsJSON writes the full metrics document (see MetricsJSON) to w,
// indented — the -metrics-json dump of the CLIs.
func WriteMetricsJSON(w io.Writer, hub *Hub) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MetricsJSON(hub))
}

// MetricsJSON assembles the /debug/vars document: registry values plus the
// kernel, health, run, and process sections.
func MetricsJSON(hub *Hub) map[string]any {
	doc := map[string]any{}
	if reg := hub.Registry(); reg != nil {
		doc["metrics"] = reg.JSONValues()
	}
	if t := hub.Timing(); t != nil {
		shardExec := make([]float64, t.Shards())
		shardEvents := make([]uint64, t.Shards())
		for i := 0; i < t.Shards(); i++ {
			shardExec[i] = float64(t.ShardExecNs(i)) / 1e9
			shardEvents[i] = t.ShardEvents(i)
		}
		doc["kernel"] = map[string]any{
			"events_processed":   t.Events(),
			"exec_seconds":       float64(t.ExecNs()) / 1e9,
			"barrier_seconds":    float64(t.BarrierNs()) / 1e9,
			"windows":            t.Windows(),
			"pending_events":     t.PendingEvents(),
			"virtual_time_ms":    t.VirtualMs(),
			"shard_exec_seconds": shardExec,
			"shard_events":       shardEvents,
		}
	}
	if h := hub.Health(); h != nil {
		maxDeg, isolated := h.IndegreeStats()
		doc["health"] = map[string]any{
			"alive_peers":        h.Alive(),
			"total_peers":        h.Total(),
			"view_entries":       h.Entries(),
			"view_entries_alive": h.AliveEntries(),
			"dead_entries":       h.DeadEntries(),
			"dead_refs":          h.DeadRefs(),
			"indegree_max":       maxDeg,
			"isolated_peers":     isolated,
		}
	}
	if info := hub.Info(); info.Shards > 0 {
		doc["run"] = map[string]any{
			"shards":    info.Shards,
			"workers":   info.Workers,
			"peers":     info.N,
			"rounds":    info.Rounds,
			"period_ms": info.PeriodMs,
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	doc["process"] = map[string]any{
		"heap_alloc_bytes": ms.HeapAlloc,
		"goroutines":       runtime.NumGoroutine(),
		"uptime_seconds":   hub.Uptime().Seconds(),
	}
	return doc
}
