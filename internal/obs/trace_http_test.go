package obs

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/trace"
)

// TestDebugTraceEndpoint exercises /debug/trace in its three states: no
// recorder (404), mid-run (served through the barrier tap), and after the
// run (direct merged read).
func TestDebugTraceEndpoint(t *testing.T) {
	hub := boundHub()
	srv, err := Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr + "/debug/trace"

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("no recorder: status %d, want 404", resp.StatusCode)
	}

	ts := trace.NewSharded(2, 64)
	for i := 0; i < 10; i++ {
		ts.Shard(i % 2).Record(trace.Event{At: int64(i), Actor: uint64(i), Op: trace.OpSend, Src: 1, Dst: 2})
	}
	hub.SetTrace(ts)

	// Mid-run: a reader goroutine's tap is served at the next "barrier"
	// (here simulated by a ServeTap loop, as the network's flush does).
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				ts.ServeTap()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	body := get(t, url+"?n=4")
	done <- struct{}{}
	var doc struct {
		Total  uint64        `json:"total"`
		Events []trace.Event `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/trace is not JSON: %v", err)
	}
	if doc.Total != 10 || len(doc.Events) != 4 {
		t.Fatalf("mid-run tail: total %d (want 10), %d events (want 4)", doc.Total, len(doc.Events))
	}
	if doc.Events[3].At != 9 {
		t.Errorf("tail does not end at the latest event: %+v", doc.Events)
	}

	// After the run no barrier will serve taps; MarkSimDone switches the
	// handler to direct reads.
	hub.MarkSimDone()
	if err := json.Unmarshal([]byte(get(t, url)), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Events) != 10 {
		t.Fatalf("post-run read returned %d events, want 10", len(doc.Events))
	}
}
