package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// RunInfo describes the execution shape of the simulation a Hub observes.
type RunInfo struct {
	Shards, Workers int
	N, Rounds       int
	PeriodMs        int64
}

// Hub bundles one process's observability surface: a metrics registry and —
// once bound to a simulation run — the health accumulators and the kernel
// timing probe. CLIs create a Hub, hand it to the HTTP server and (via
// exp.Config.Obs) to the experiment runner; the runner binds it. Standalone
// hosts (nylon-sweep's job loop, nylon-node's report loop) skip binding and
// use EnsureRegistry directly.
//
// A Hub observes at most one simulation run: BindSim panics on a second
// bind, because per-shard slots and ID-indexed tallies are sized per run.
type Hub struct {
	mu     sync.Mutex
	reg    *Registry
	health *Health
	timing *sim.Timing
	info   RunInfo
	bound  bool
	start  time.Time

	traces  *trace.Sharded
	simDone bool

	gRound, gAlive, gCluster, gStale *Gauge
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{start: time.Now()} }

// BindSim sizes the hub for one simulation run: a per-shard registry, the
// health accumulators, and the kernel timing probe. The experiment runner
// calls it when Config.Obs is set; hosts only read the results.
func (h *Hub) BindSim(info RunInfo) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.bound {
		panic("obs: Hub already bound to a run (a Hub observes exactly one simulation)")
	}
	h.bound = true
	h.info = info
	h.reg = NewRegistry(info.Shards)
	h.health = NewHealth(info.Shards, info.N)
	h.timing = sim.NewTiming(info.Shards)
	h.gRound = h.reg.Gauge("nylon_overlay_sample_round", "round of the latest health sample")
	h.gAlive = h.reg.Gauge("nylon_overlay_sample_alive_peers", "alive population at the latest health sample")
	h.gCluster = h.reg.Gauge("nylon_overlay_cluster_fraction", "biggest-cluster fraction at the latest health sample")
	h.gStale = h.reg.Gauge("nylon_overlay_stale_fraction", "stale view-entry fraction at the latest health sample")
}

// EnsureRegistry returns the hub's registry, creating a single-slot one for
// hosts with no shard structure (sweep and live-node loops).
func (h *Hub) EnsureRegistry() *Registry {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.reg == nil {
		h.reg = NewRegistry(1)
	}
	return h.reg
}

// Registry returns the current registry (nil before BindSim/EnsureRegistry).
func (h *Hub) Registry() *Registry { h.mu.Lock(); defer h.mu.Unlock(); return h.reg }

// Health returns the health accumulators (nil until BindSim).
func (h *Hub) Health() *Health { h.mu.Lock(); defer h.mu.Unlock(); return h.health }

// Timing returns the kernel timing probe (nil until BindSim).
func (h *Hub) Timing() *sim.Timing { h.mu.Lock(); defer h.mu.Unlock(); return h.timing }

// Info returns the bound run's execution shape (zero until BindSim).
func (h *Hub) Info() RunInfo { h.mu.Lock(); defer h.mu.Unlock(); return h.info }

// SetTrace hands the hub the run's sharded trace recorder so the live
// endpoint can serve /debug/trace. The runner calls it when tracing is on.
func (h *Hub) SetTrace(ts *trace.Sharded) { h.mu.Lock(); defer h.mu.Unlock(); h.traces = ts }

// Trace returns the run's trace recorder (nil when tracing is off).
func (h *Hub) Trace() *trace.Sharded { h.mu.Lock(); defer h.mu.Unlock(); return h.traces }

// MarkSimDone records that the bound simulation has returned: barriers no
// longer fire, so /debug/trace switches from the live tap to direct reads.
func (h *Hub) MarkSimDone() { h.mu.Lock(); defer h.mu.Unlock(); h.simDone = true }

// SimDone reports whether MarkSimDone was called.
func (h *Hub) SimDone() bool { h.mu.Lock(); defer h.mu.Unlock(); return h.simDone }

// Uptime returns the time since the hub was created.
func (h *Hub) Uptime() time.Duration { return time.Since(h.start) }

// PublishSample exposes the latest periodic health sample on the live
// endpoint. Called from the runner's sampler at barrier context; pure
// gauge stores, so it can never perturb the run.
func (h *Hub) PublishSample(round, alive int, cluster, stale float64) {
	h.mu.Lock()
	gr, ga, gc, gs := h.gRound, h.gAlive, h.gCluster, h.gStale
	h.mu.Unlock()
	if gr == nil {
		return
	}
	gr.Set(float64(round))
	ga.Set(float64(alive))
	gc.Set(cluster)
	gs.Set(stale)
}

// KernelTable renders the end-of-run phase-timing and overlay-health table
// (the -metrics output of nylon-sim and nylon-scenario).
func KernelTable(h *Hub) string {
	t, he := h.Timing(), h.Health()
	if t == nil {
		return "kernel timing       (run was not instrumented)\n"
	}
	var b strings.Builder
	exec, barrier := time.Duration(t.ExecNs()), time.Duration(t.BarrierNs())
	total := exec + barrier
	pct := func(d time.Duration) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * float64(d) / float64(total)
	}
	fmt.Fprintf(&b, "kernel timing       exec %v (%.1f%%), barrier %v (%.1f%%), %d windows\n",
		exec.Round(time.Millisecond), pct(exec), barrier.Round(time.Millisecond), pct(barrier), t.Windows())
	fmt.Fprintf(&b, "kernel events       %d processed, %d pending at the last barrier, virtual clock %dms\n",
		t.Events(), t.PendingEvents(), t.VirtualMs())
	if w := t.Windows(); w > 0 {
		fmt.Fprintf(&b, "window occupancy    %.1f events per shard-window\n",
			float64(t.Events())/float64(w*int64(t.Shards())))
	}
	for i := 0; i < t.Shards(); i++ {
		ns := t.ShardExecNs(i)
		ev := t.ShardEvents(i)
		rate := 0.0
		if ns > 0 {
			rate = float64(ev) / (float64(ns) / 1e9)
		}
		fmt.Fprintf(&b, "  shard %-3d         exec %v, %d events (%.0f events/s while executing)\n",
			i, time.Duration(ns).Round(time.Millisecond), ev, rate)
	}
	if he != nil {
		maxDeg, isolated := he.IndegreeStats()
		fmt.Fprintf(&b, "overlay health      %d/%d alive, %d view entries (%d in live views), %d dead refs\n",
			he.Alive(), he.Total(), he.Entries(), he.AliveEntries(), he.DeadRefs())
		fmt.Fprintf(&b, "indegree            max %d, %d isolated alive peers\n", maxDeg, isolated)
	}
	return b.String()
}
