package obs

import (
	"fmt"
	"time"
)

// EventsPerSec converts an event count over a wall-clock span into a rate,
// guarding the zero-duration edge (a run too fast to measure reports 0).
func EventsPerSec(events uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(events) / wall.Seconds()
}

// ThroughputLine renders the canonical one-line run-throughput summary the
// CLIs print; exp.Result wraps it so nylon-sim, nylon-scenario, and the
// experiment runner all compute events/s in exactly one place.
func ThroughputLine(events uint64, wall time.Duration, workers, shards int) string {
	return fmt.Sprintf("%d events in %v (%.0f events/s, %d workers × %d shards)",
		events, wall.Round(time.Millisecond), EventsPerSec(events, wall), workers, shards)
}
