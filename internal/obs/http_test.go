package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ident"
)

// boundHub builds a hub bound to a small fake run with a little traffic in
// every subsystem, so each synthesized series has something to report.
func boundHub() *Hub {
	hub := NewHub()
	hub.BindSim(RunInfo{Shards: 2, Workers: 1, N: 8, Rounds: 10, PeriodMs: 1000})
	hub.Registry().Counter("nylon_net_datagrams_sent_total", "datagrams handed to the network").Add(0, 42)
	h := hub.Health()
	for id := 1; id <= 8; id++ {
		h.AddPeer(ident.NodeID(id))
	}
	h.Observer(0).ViewEntryAdded(1, desc(2))
	hub.PublishSample(5, 8, 1.0, 0.25)
	return hub
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return string(body)
}

func TestServeScrapesMidRun(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", boundHub())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr

	metrics := get(t, base+"/metrics")
	for _, series := range []string{
		"nylon_net_datagrams_sent_total 42",
		"nylon_overlay_sample_round 5",
		"nylon_overlay_stale_fraction 0.25",
		"nylon_kernel_events_total",
		"nylon_kernel_exec_seconds_total",
		"nylon_kernel_barrier_seconds_total",
		`nylon_kernel_shard_events_total{shard="1"}`,
		"nylon_health_alive_peers 8",
		"nylon_health_view_entries 1",
		"nylon_health_dead_refs 0",
		"nylon_heap_alloc_bytes",
		"nylon_uptime_seconds",
	} {
		if !strings.Contains(metrics, series) {
			t.Errorf("/metrics missing %q", series)
		}
	}

	var doc map[string]any
	if err := json.Unmarshal([]byte(get(t, base+"/debug/vars")), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	for _, section := range []string{"metrics", "kernel", "health", "run", "process"} {
		if _, ok := doc[section]; !ok {
			t.Errorf("/debug/vars missing section %q", section)
		}
	}
	if run, ok := doc["run"].(map[string]any); !ok || run["peers"] != float64(8) {
		t.Errorf("/debug/vars run section = %v, want peers=8", doc["run"])
	}

	if body := get(t, base+"/healthz"); body != "ok\n" {
		t.Errorf("/healthz = %q, want \"ok\\n\"", body)
	}
	if body := get(t, base+"/debug/pprof/cmdline"); body == "" {
		t.Error("/debug/pprof/cmdline returned an empty body")
	}
}

func TestServeUnboundHub(t *testing.T) {
	// A hub that never saw BindSim (nylon-sweep, nylon-node) must still
	// serve: registry-only metrics plus the process series.
	hub := NewHub()
	hub.EnsureRegistry().Gauge("nylon_sweep_jobs_total", "jobs in the sweep").Set(12)
	srv, err := Serve("127.0.0.1:0", hub)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	metrics := get(t, "http://"+srv.Addr+"/metrics")
	if !strings.Contains(metrics, "nylon_sweep_jobs_total 12") {
		t.Error("/metrics missing the registry gauge")
	}
	if strings.Contains(metrics, "nylon_kernel_events_total") {
		t.Error("/metrics reports kernel series for an unbound hub")
	}
	if !strings.Contains(metrics, "nylon_goroutines") {
		t.Error("/metrics missing process series")
	}
}

func TestHubDoubleBindPanics(t *testing.T) {
	hub := NewHub()
	hub.BindSim(RunInfo{Shards: 1, N: 1, Rounds: 1, PeriodMs: 1000})
	defer func() {
		if recover() == nil {
			t.Fatal("second BindSim did not panic")
		}
	}()
	hub.BindSim(RunInfo{Shards: 1, N: 1, Rounds: 1, PeriodMs: 1000})
}
