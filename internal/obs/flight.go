package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sim"
	"repro/internal/trace"
)

// BundleSchema identifies the forensic bundle format written by the flight
// recorder (Bundle.Schema). Bump it on any incompatible change.
const BundleSchema = "nylon-flight-bundle/v1"

// Trigger names, as they appear in Trigger.Name and bundle filenames.
const (
	TriggerStall    = "recovery-stall"
	TriggerEclipse  = "eclipse"
	TriggerCollapse = "cluster-collapse"
	TriggerLeak     = "pool-leak"
)

// Triggers declares the anomaly conditions the flight recorder watches. Each
// condition is evaluated against the run's periodic health samples; a zero
// field disarms its trigger. Trigger evaluation is a pure function of the
// sample sequence, so an armed recorder fires at the same round for any
// worker or shard count.
type Triggers struct {
	// StallRounds arms the recovery-stall trigger: fire after that many
	// consecutive samples whose biggest-cluster fraction stays below
	// StallBelow — the overlay sank and is not knitting itself back.
	StallRounds int
	// StallBelow is the cluster fraction below which a sample counts as
	// stalled. Zero defaults to 0.95, the harness's recovery threshold
	// (exp.RecoveryThreshold).
	StallBelow float64
	// EclipseAbove arms the eclipse trigger: fire when the eclipsed
	// fraction of honest peers reaches it.
	EclipseAbove float64
	// ClusterBelow arms the collapse trigger: fire the moment the
	// biggest-cluster fraction drops below it (no persistence required —
	// a collapse is an emergency, not a trend).
	ClusterBelow float64
	// LeakCheck arms the pool-imbalance trigger: the host runs the wire
	// message-pool leak check at every sample and any imbalance fires.
	LeakCheck bool
}

// Zero reports whether no trigger is armed.
func (t Triggers) Zero() bool {
	return t.StallRounds <= 0 && t.EclipseAbove <= 0 && t.ClusterBelow <= 0 && !t.LeakCheck
}

func (t Triggers) withDefaults() Triggers {
	if t.StallBelow == 0 {
		t.StallBelow = 0.95
	}
	return t
}

// FlightSpec configures the flight recorder a host arms on an experiment
// run: where to write bundles and which anomalies to watch for.
type FlightSpec struct {
	// Dir receives the forensic bundles (created if absent).
	Dir string
	// Triggers are the armed anomaly conditions.
	Triggers Triggers
}

// Observation is one periodic health sample as fed to the recorder.
type Observation struct {
	// Round is the shuffling round of the sample.
	Round int
	// Alive is the population and Cluster the biggest-cluster fraction.
	Alive   int
	Cluster float64
	// Stale is the stale view-entry fraction.
	Stale float64
	// Eclipse is the eclipsed fraction of honest peers (zero without
	// adversaries).
	Eclipse float64
	// LeakErr is the message-pool leak-check result (nil when balanced or
	// when Triggers.LeakCheck is off).
	LeakErr error
}

// Trigger records one fired anomaly condition.
type Trigger struct {
	// Name is one of the Trigger* constants.
	Name string `json:"name"`
	// Round is the sample round at which the condition fired.
	Round int `json:"round"`
	// Detail is a human-readable account of the threshold crossing.
	Detail string `json:"detail"`
}

// FlightRecorder evaluates armed triggers against the run's health samples.
// Each trigger kind fires at most once per run — the first crossing is the
// forensically interesting one, and one bundle per kind bounds the disk
// footprint of a run that stays unhealthy for thousands of rounds.
type FlightRecorder struct {
	trig     Triggers
	stallRun int
	fired    map[string]bool
}

// NewFlightRecorder creates a recorder with the given triggers armed.
func NewFlightRecorder(t Triggers) *FlightRecorder {
	return &FlightRecorder{trig: t.withDefaults(), fired: make(map[string]bool)}
}

// Triggers returns the armed conditions, defaults applied.
func (f *FlightRecorder) Triggers() Triggers { return f.trig }

// Observe feeds one health sample and returns the triggers that newly fired
// on it, in a fixed evaluation order (stall, eclipse, collapse, leak). The
// caller captures one bundle per returned trigger.
func (f *FlightRecorder) Observe(o Observation) []Trigger {
	var fired []Trigger
	add := func(name, detail string) {
		if f.fired[name] {
			return
		}
		f.fired[name] = true
		fired = append(fired, Trigger{Name: name, Round: o.Round, Detail: detail})
	}
	if f.trig.StallRounds > 0 {
		if o.Cluster < f.trig.StallBelow {
			f.stallRun++
		} else {
			f.stallRun = 0
		}
		if f.stallRun >= f.trig.StallRounds {
			add(TriggerStall, fmt.Sprintf("biggest cluster below %.2f for %d consecutive samples (now %.3f)",
				f.trig.StallBelow, f.stallRun, o.Cluster))
		}
	}
	if f.trig.EclipseAbove > 0 && o.Eclipse >= f.trig.EclipseAbove {
		add(TriggerEclipse, fmt.Sprintf("eclipsed fraction %.3f reached threshold %.2f", o.Eclipse, f.trig.EclipseAbove))
	}
	if f.trig.ClusterBelow > 0 && o.Cluster < f.trig.ClusterBelow {
		add(TriggerCollapse, fmt.Sprintf("biggest cluster %.3f fell below %.2f", o.Cluster, f.trig.ClusterBelow))
	}
	if f.trig.LeakCheck && o.LeakErr != nil {
		add(TriggerLeak, o.LeakErr.Error())
	}
	return fired
}

// RunDescriptor pins the run a bundle was captured from: enough to reproduce
// it bit-identically (the simulator is a pure function of the config and
// seed). Config carries the host's full serialized experiment config as an
// opaque document so obs needs no dependency on the experiment package.
type RunDescriptor struct {
	Protocol string          `json:"protocol"`
	Seed     int64           `json:"seed"`
	N        int             `json:"n"`
	Rounds   int             `json:"rounds"`
	PeriodMs int64           `json:"period_ms"`
	Shards   int             `json:"shards"`
	Workers  int             `json:"workers"`
	Scenario string          `json:"scenario,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
}

// HealthSnapshot is the overlay-health accumulators frozen at capture time.
type HealthSnapshot struct {
	AlivePeers   int64 `json:"alive_peers"`
	TotalPeers   int64 `json:"total_peers"`
	ViewEntries  int64 `json:"view_entries"`
	AliveEntries int64 `json:"view_entries_alive"`
	DeadEntries  int64 `json:"dead_entries"`
	DeadRefs     int64 `json:"dead_refs"`
	IndegreeMax  int   `json:"indegree_max"`
	Isolated     int   `json:"isolated_peers"`
}

// SnapshotHealth freezes the health accumulators (nil in, nil out).
func SnapshotHealth(h *Health) *HealthSnapshot {
	if h == nil {
		return nil
	}
	maxDeg, isolated := h.IndegreeStats()
	return &HealthSnapshot{
		AlivePeers:   h.Alive(),
		TotalPeers:   h.Total(),
		ViewEntries:  h.Entries(),
		AliveEntries: h.AliveEntries(),
		DeadEntries:  h.DeadEntries(),
		DeadRefs:     h.DeadRefs(),
		IndegreeMax:  maxDeg,
		Isolated:     isolated,
	}
}

// KernelSnapshot is the kernel timing probe frozen at capture time:
// aggregates plus the recent per-window phase samples (the kernel swimlane
// of the Chrome export).
type KernelSnapshot struct {
	Events        uint64             `json:"events"`
	ExecNs        int64              `json:"exec_ns"`
	BarrierNs     int64              `json:"barrier_ns"`
	Windows       int64              `json:"windows"`
	VirtualMs     int64              `json:"virtual_ms"`
	WindowSamples []sim.WindowSample `json:"window_samples,omitempty"`
}

// SnapshotKernel freezes the timing probe (nil in, nil out). Call only from
// barrier context or after the run: WindowSamples reads the barrier-owned
// sample ring.
func SnapshotKernel(t *sim.Timing) *KernelSnapshot {
	if t == nil {
		return nil
	}
	return &KernelSnapshot{
		Events:        t.Events(),
		ExecNs:        t.ExecNs(),
		BarrierNs:     t.BarrierNs(),
		Windows:       t.Windows(),
		VirtualMs:     t.VirtualMs(),
		WindowSamples: t.WindowSamples(),
	}
}

// Bundle is one forensic capture: the trigger that fired, the run it fired
// in, and the frozen evidence — merged trace tail, health and kernel
// snapshots, drop counters, and the health series up to the trigger. Series
// is an opaque document (the host's sample type) for the same reason as
// RunDescriptor.Config.
type Bundle struct {
	Schema  string            `json:"schema"`
	Trigger Trigger           `json:"trigger"`
	Run     RunDescriptor     `json:"run"`
	Health  *HealthSnapshot   `json:"health,omitempty"`
	Kernel  *KernelSnapshot   `json:"kernel,omitempty"`
	Drops   map[string]uint64 `json:"drops,omitempty"`
	Series  json.RawMessage   `json:"series,omitempty"`
	Trace   []trace.Event     `json:"trace"`
}

// Write writes the bundle as indented JSON to path.
func (b *Bundle) Write(path string) error {
	if b.Schema == "" {
		b.Schema = BundleSchema
	}
	data, err := json.MarshalIndent(b, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshal bundle: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadBundle loads a bundle written by Write, rejecting unknown schemas.
func ReadBundle(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	if b.Schema != BundleSchema {
		return nil, fmt.Errorf("obs: %s: schema %q, want %q", path, b.Schema, BundleSchema)
	}
	return &b, nil
}
