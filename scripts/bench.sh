#!/usr/bin/env sh
# Runs the tracked performance benchmarks and emits benchstat-comparable
# output (one line per run, Go's standard benchmark format).
#
# Usage:
#   scripts/bench.sh                  # tracked set, 5 runs each
#   scripts/bench.sh -bench Sim       # filter by name
#   COUNT=10 scripts/bench.sh         # more runs for tighter intervals
#
# Typical workflow for the BENCH_*.json trajectory / before-after tables:
#   scripts/bench.sh > old.txt
#   ... apply a change ...
#   scripts/bench.sh > new.txt
#   benchstat old.txt new.txt
set -eu

cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCH='BenchmarkSimulation1kPeers|BenchmarkScenarioChurn1k|BenchmarkViewExchange|BenchmarkNylonTick|BenchmarkWireMarshal'
BENCHTIME="${BENCHTIME:-5x}"

while [ $# -gt 0 ]; do
  case "$1" in
    -bench) BENCH="$2"; shift 2 ;;
    -benchtime) BENCHTIME="$2"; shift 2 ;;
    *) echo "usage: $0 [-bench regex] [-benchtime N(x)]" >&2; exit 2 ;;
  esac
done

exec go test -run '^$' -bench "$BENCH" -benchmem \
  -benchtime "$BENCHTIME" -count "$COUNT" .
