#!/usr/bin/env sh
# Guards the tracked simulation benchmarks against regressions:
#
#   1. Wall time: BenchmarkSimulation1kPeers, median ns/op over COUNT runs,
#      compared against the committed baseline (>TOLERANCE% slower fails).
#   2. Memory: BenchmarkSimulation10kPeers, total allocated bytes per peer
#      (the B/op of one run divided by the population), compared the same
#      way (>TOLERANCE% more fails). Allocation totals are deterministic up
#      to runtime noise, so a single run suffices.
#   3. Throughput: events/s (executed simulator events per wall-clock
#      second, the delivery engine's headline — see reportEventsPerSec in
#      bench_test.go) from both benchmarks above, guarded by a FLOOR:
#      dropping more than TOLERANCE% below the baseline fails. Events
#      processed is part of the determinism contract, so only wall time can
#      move this number; like the wall-time baseline it is
#      hardware-dependent.
#
#   scripts/bench_check.sh            # compare against the baseline
#   scripts/bench_check.sh -update    # re-measure and rewrite the baseline
#   TOLERANCE=25 scripts/bench_check.sh
#
# The wall-time baseline is hardware-dependent; the bytes baseline is not
# (allocation counts only drift with code changes). Regenerate both with
# -update when the reference machine changes; CI uses the committed numbers
# as a coarse guard (the median over several runs plus a generous tolerance
# absorbs runner noise, not runner generations — bump TOLERANCE in ci.yml if
# the fleet changes).
#
# Both tracked benchmarks run without adversaries, so this guard also pins
# the nil-adversary fast path: scenarios without Byzantine cohorts build no
# adversary state and wrap no engine (adversary.Wrap with strategy "none"
# returns the inner engine itself — see TestWrapNoneIdentity and
# TestNilAdversaryZeroOverhead), and any per-peer or per-message overhead
# sneaking into the honest path shows up here as a wall/alloc regression.
#
# The 1k benchmark runs with the observability stack attached (metrics
# registry, health accumulators, timing probe — see bench_test.go), so the
# wall-time baseline also guards the instrumentation overhead; the 10k
# memory benchmark runs uninstrumented so B/peer tracks the simulation
# proper.
set -eu

cd "$(dirname "$0")/.."

BENCH='BenchmarkSimulation1kPeers'
MEMBENCH='BenchmarkSimulation10kPeers'
MEMPEERS=10000
BASELINE="${BASELINE:-scripts/bench_baseline.txt}"
TOLERANCE="${TOLERANCE:-15}"
COUNT="${COUNT:-5}"

update=0
[ "${1:-}" = "-update" ] && update=1

out="$(COUNT="$COUNT" scripts/bench.sh -bench "$BENCH\$")"
echo "$out"

# Median ns/op across the benchmark lines (field 3 of Go's bench format).
# Parse failures must be loud: an awk `exit 1` inside the substitution would
# just kill the script via set -e with no diagnostic, so check the result
# explicitly instead.
median="$(echo "$out" | awk -v b="$BENCH" '$1 ~ "^"b {print $3}' | sort -n |
  awk '{v[NR]=$1} END {if (NR) print v[int((NR+1)/2)]}')" || true
if [ -z "$median" ]; then
  echo "bench_check: no $BENCH result lines in bench output — did the benchmark fail to run?" >&2
  exit 2
fi

# Median events/s across the same runs (the field before the "events/s"
# unit). Higher is better: this one is guarded as a floor below.
eps="$(echo "$out" | awk -v b="$BENCH" '
  $1 ~ "^"b { for (i = 2; i < NF; i++) if ($(i+1) == "events/s") print $i }' | sort -n |
  awk '{v[NR]=$1} END {if (NR) print v[int((NR+1)/2)]}')" || true
if [ -z "$eps" ]; then
  echo "bench_check: no events/s metric in $BENCH output" >&2
  exit 2
fi

memout="$(COUNT=1 BENCHTIME=1x scripts/bench.sh -bench "$MEMBENCH\$")"
echo "$memout"

memeps="$(echo "$memout" | awk -v b="$MEMBENCH" '
  $1 ~ "^"b { for (i = 2; i < NF; i++) if ($(i+1) == "events/s") print $i }' |
  head -1)"
if [ -z "$memeps" ]; then
  echo "bench_check: no events/s metric in $MEMBENCH output" >&2
  exit 2
fi

# B/op is the field before "B/op"; divide by the population for B/peer.
bpp="$(echo "$memout" | awk -v b="$MEMBENCH" -v n="$MEMPEERS" '
  $1 ~ "^"b { for (i = 2; i < NF; i++) if ($(i+1) == "B/op") printf "%.0f\n", $i / n }' |
  head -1)"
if [ -z "$bpp" ]; then
  echo "bench_check: could not parse B/op from $MEMBENCH output" >&2
  exit 2
fi

if [ "$update" = 1 ]; then
  printf '%s %s\n%s-B/peer %s\n%s-events/s %s\n%s-events/s %s\n' \
    "$BENCH" "$median" "$MEMBENCH" "$bpp" \
    "$BENCH" "$eps" "$MEMBENCH" "$memeps" > "$BASELINE"
  echo "bench_check: baseline updated: $BENCH $median ns/op ($eps events/s), $MEMBENCH $bpp B/peer ($memeps events/s)"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_check: no baseline at $BASELINE (run with -update first)" >&2
  exit 2
fi

base="$(awk -v b="$BENCH" '$1 == b {print $2}' "$BASELINE")"
membase="$(awk -v b="$MEMBENCH-B/peer" '$1 == b {print $2}' "$BASELINE")"
epsbase="$(awk -v b="$BENCH-events/s" '$1 == b {print $2}' "$BASELINE")"
memepsbase="$(awk -v b="$MEMBENCH-events/s" '$1 == b {print $2}' "$BASELINE")"
if [ -z "$base" ] || [ -z "$membase" ] || [ -z "$epsbase" ] || [ -z "$memepsbase" ]; then
  echo "bench_check: $BENCH, $MEMBENCH-B/peer or an events/s floor missing from $BASELINE (run with -update)" >&2
  exit 2
fi

fail=0
awk -v new="$median" -v old="$base" -v tol="$TOLERANCE" 'BEGIN {
  pct = (new - old) * 100.0 / old
  printf "bench_check: %s median %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %s%%)\n",
         "'"$BENCH"'", new, old, pct, tol
  exit (pct > tol) ? 1 : 0
}' || { echo "bench_check: FAIL — wall-time regression beyond tolerance" >&2; fail=1; }

awk -v new="$bpp" -v old="$membase" -v tol="$TOLERANCE" 'BEGIN {
  pct = (new - old) * 100.0 / old
  printf "bench_check: %s %.0f B/peer vs baseline %.0f B/peer (%+.1f%%, tolerance %s%%)\n",
         "'"$MEMBENCH"'", new, old, pct, tol
  exit (pct > tol) ? 1 : 0
}' || { echo "bench_check: FAIL — bytes-per-peer regression beyond tolerance" >&2; fail=1; }

# Throughput floors: events/s is better when higher, so the guard trips when
# the new number falls more than TOLERANCE% below the baseline.
awk -v new="$eps" -v old="$epsbase" -v tol="$TOLERANCE" 'BEGIN {
  pct = (new - old) * 100.0 / old
  printf "bench_check: %s median %.0f events/s vs floor baseline %.0f events/s (%+.1f%%, tolerance -%s%%)\n",
         "'"$BENCH"'", new, old, pct, tol
  exit (pct < -tol) ? 1 : 0
}' || { echo "bench_check: FAIL — 1k events/s dropped below the floor" >&2; fail=1; }

awk -v new="$memeps" -v old="$memepsbase" -v tol="$TOLERANCE" 'BEGIN {
  pct = (new - old) * 100.0 / old
  printf "bench_check: %s %.0f events/s vs floor baseline %.0f events/s (%+.1f%%, tolerance -%s%%)\n",
         "'"$MEMBENCH"'", new, old, pct, tol
  exit (pct < -tol) ? 1 : 0
}' || { echo "bench_check: FAIL — 10k events/s dropped below the floor" >&2; fail=1; }

exit "$fail"
