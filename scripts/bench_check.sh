#!/usr/bin/env sh
# Guards the tracked 1k-peer simulation benchmark against wall-time
# regressions: runs it several times through scripts/bench.sh, takes the
# median ns/op, and compares it against the committed baseline
# (scripts/bench_baseline.txt), failing when the median is more than
# TOLERANCE percent slower.
#
#   scripts/bench_check.sh            # compare against the baseline
#   scripts/bench_check.sh -update    # re-measure and rewrite the baseline
#   TOLERANCE=25 scripts/bench_check.sh
#
# The baseline is hardware-dependent. Regenerate it with -update when the
# reference machine changes; CI uses the committed number as a coarse guard
# (the median over several runs plus a generous tolerance absorbs runner
# noise, not runner generations — bump TOLERANCE in ci.yml if the fleet
# changes).
set -eu

cd "$(dirname "$0")/.."

BENCH='BenchmarkSimulation1kPeers'
BASELINE="${BASELINE:-scripts/bench_baseline.txt}"
TOLERANCE="${TOLERANCE:-15}"
COUNT="${COUNT:-5}"

update=0
[ "${1:-}" = "-update" ] && update=1

out="$(COUNT="$COUNT" scripts/bench.sh -bench "$BENCH\$")"
echo "$out"

# Median ns/op across the benchmark lines (field 3 of Go's bench format).
median="$(echo "$out" | awk -v b="$BENCH" '$1 ~ "^"b {print $3}' | sort -n |
  awk '{v[NR]=$1} END {if (NR==0) exit 1; print v[int((NR+1)/2)]}')"

if [ "$update" = 1 ]; then
  printf '%s %s\n' "$BENCH" "$median" > "$BASELINE"
  echo "bench_check: baseline updated: $BENCH $median ns/op"
  exit 0
fi

if [ ! -f "$BASELINE" ]; then
  echo "bench_check: no baseline at $BASELINE (run with -update first)" >&2
  exit 2
fi

base="$(awk -v b="$BENCH" '$1 == b {print $2}' "$BASELINE")"
if [ -z "$base" ]; then
  echo "bench_check: $BENCH missing from $BASELINE" >&2
  exit 2
fi

awk -v new="$median" -v old="$base" -v tol="$TOLERANCE" 'BEGIN {
  pct = (new - old) * 100.0 / old
  printf "bench_check: %s median %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %s%%)\n",
         "'"$BENCH"'", new, old, pct, tol
  exit (pct > tol) ? 1 : 0
}' || { echo "bench_check: FAIL — wall-time regression beyond tolerance" >&2; exit 1; }
