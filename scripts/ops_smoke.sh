#!/usr/bin/env sh
# Smoke-tests the live ops endpoint end to end: builds nylon-sim, starts a
# run with -http on an ephemeral port, scrapes /metrics mid-run, and checks
# the kernel, health, and network series are all present. Exercises the real
# HTTP path a dashboard would use, not just the unit-tested handlers.
#
#   scripts/ops_smoke.sh
#
# Exits 0 on success, 1 on a missing series or scrape failure.
set -eu

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT INT TERM

go build -o "$tmp/nylon-sim" ./cmd/nylon-sim

# A run big enough to still be in flight when we scrape; -trace arms the
# per-shard rings so /debug/trace has something to serve.
"$tmp/nylon-sim" -n 2000 -rounds 300 -protocol nylon -nat 80 -trace \
  -http 127.0.0.1:0 >"$tmp/out.log" 2>"$tmp/err.log" &
pid=$!

# The CLI prints "ops endpoint listening on http://ADDR" to stderr once bound.
addr=""
for _ in $(seq 1 50); do
  addr="$(sed -n 's#^ops endpoint listening on http://##p' "$tmp/err.log" | head -1)"
  [ -n "$addr" ] && break
  kill -0 "$pid" 2>/dev/null || { echo "ops_smoke: nylon-sim exited early:" >&2; cat "$tmp/err.log" >&2; exit 1; }
  sleep 0.1
done
if [ -z "$addr" ]; then
  echo "ops_smoke: endpoint never announced itself" >&2
  cat "$tmp/err.log" >&2
  exit 1
fi

scrape() {
  if command -v curl >/dev/null 2>&1; then
    curl -fsS "http://$addr$1"
  else
    wget -qO- "http://$addr$1"
  fi
}

# Give the kernel a moment to process events, then scrape mid-run.
sleep 1
metrics="$(scrape /metrics)"

fail=0
for series in \
  nylon_kernel_events_total \
  nylon_kernel_exec_seconds_total \
  nylon_kernel_barrier_seconds_total \
  nylon_kernel_windows_total \
  nylon_health_alive_peers \
  nylon_health_view_entries \
  nylon_net_datagrams_sent_total \
  nylon_heap_alloc_bytes \
; do
  if ! printf '%s\n' "$metrics" | grep -q "^$series "; then
    echo "ops_smoke: /metrics missing series $series" >&2
    fail=1
  fi
done

# The health endpoint and the JSON dump must answer too.
[ "$(scrape /healthz)" = "ok" ] || { echo "ops_smoke: /healthz did not answer ok" >&2; fail=1; }
scrape /debug/vars | grep -q '"kernel"' || { echo "ops_smoke: /debug/vars missing kernel section" >&2; fail=1; }

# /debug/trace must serve a bounded JSON tail through the live barrier tap.
tracebody="$(scrape '/debug/trace?n=16')" || { echo "ops_smoke: /debug/trace did not answer" >&2; fail=1; tracebody=""; }
printf '%s' "$tracebody" | grep -q '"events"' || { echo "ops_smoke: /debug/trace missing events array" >&2; fail=1; }
printf '%s' "$tracebody" | grep -q '"op"' || { echo "ops_smoke: /debug/trace tail holds no events" >&2; fail=1; }

# Alive peers must be non-zero mid-run.
alive="$(printf '%s\n' "$metrics" | awk '$1 == "nylon_health_alive_peers" {print $2}')"
case "$alive" in
  ''|0) echo "ops_smoke: nylon_health_alive_peers = '$alive', want > 0" >&2; fail=1 ;;
esac

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

if [ "$fail" = 0 ]; then
  echo "ops_smoke: OK — scraped $(printf '%s\n' "$metrics" | grep -c '^nylon_') nylon series from http://$addr/metrics mid-run"
fi
exit "$fail"
