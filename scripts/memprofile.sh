#!/usr/bin/env sh
# Captures allocation (and optionally CPU) profiles of one simulation run so
# memory work starts from a pprof diff instead of guesswork.
#
# Usage:
#   scripts/memprofile.sh                         # 10k peers, 20 rounds
#   scripts/memprofile.sh -n 100000 -rounds 20    # any nylon-sim flags
#   OUT=/tmp/prof scripts/memprofile.sh           # choose the output dir
#
# Typical before/after workflow:
#   scripts/memprofile.sh && cp "$OUT"/mem.pprof /tmp/before.pprof
#   ... apply a change ...
#   scripts/memprofile.sh
#   go tool pprof -top -alloc_space -diff_base /tmp/before.pprof "$OUT"/mem.pprof
set -eu

cd "$(dirname "$0")/.."

OUT="${OUT:-/tmp/nylon-prof}"
mkdir -p "$OUT"

# Default run shape: the 10k-peer paper-scale point the tracked benchmarks
# use. Any explicit flags append after (later flags win in package flag).
set -- -n 10000 -nat 80 -rounds 20 -protocol nylon "$@"

go run ./cmd/nylon-sim "$@" \
  -memprofile "$OUT/mem.pprof" -cpuprofile "$OUT/cpu.pprof"

echo
echo "--- top allocators (go tool pprof -top -alloc_space) ---"
go tool pprof -top -alloc_space -nodecount=15 "$OUT/mem.pprof" | sed -n '1,22p'
echo
echo "profiles: $OUT/mem.pprof $OUT/cpu.pprof"
echo "explore:  go tool pprof -http=:8080 $OUT/mem.pprof"
